// Ratedelay: regenerate a compact Figure 3 — the rate-delay graphs that
// make delay-convergence visible. For each CCA, a single flow runs on
// ideal paths of increasing rate and the equilibrium RTT band
// [dmin(C), dmax(C)] is measured.
//
//	go run ./examples/ratedelay
//
// Vegas and FAST collapse to a line (δ(C) = 0); Copa's band shrinks with
// C; BBR and Vivace hold bands proportional to Rm; Algorithm 1 keeps its
// oscillation ≥ D/2 by design — the paper's prescription for starvation
// resistance.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/algo1"
	"starvation/internal/cca/bbr"
	"starvation/internal/cca/copa"
	"starvation/internal/cca/fast"
	"starvation/internal/cca/vegas"
	"starvation/internal/cca/vivace"
	"starvation/internal/core"
	"starvation/internal/units"
)

func main() {
	const rm = 100 * time.Millisecond
	rates := core.LogSpace(units.Mbps(1.5), units.Mbps(96), 5)
	opts := core.MeasureOpts{Duration: 20 * time.Second}

	factories := []struct {
		name string
		mk   core.Factory
	}{
		{"vegas", func() cca.Algorithm { return vegas.New(vegas.Config{}) }},
		{"fast", func() cca.Algorithm { return fast.New(fast.Config{}) }},
		{"copa", func() cca.Algorithm { return copa.New(copa.Config{}) }},
		{"bbr", func() cca.Algorithm { return bbr.New(bbr.Config{Rng: rand.New(rand.NewSource(7))}) }},
		{"vivace", func() cca.Algorithm { return vivace.New(vivace.Config{Rng: rand.New(rand.NewSource(7))}) }},
		{"algo1", func() cca.Algorithm { return algo1.New(algo1.Config{Rm: rm}) }},
	}

	for _, f := range factories {
		sweep := core.RateDelaySweep(f.name, f.mk, rm, rates, opts)
		fmt.Println(sweep)
		dm := sweep.DeltaMax(rates[0])
		fmt.Printf("  δmax = %v -> starvation threshold D > %v\n\n",
			dm.Round(10*time.Microsecond),
			core.StarvationThreshold(dm).Round(10*time.Microsecond))
	}

	fmt.Println("Smaller δmax means less jitter suffices for starvation (Theorem 1).")
	fmt.Println("Algorithm 1's large designed oscillation is the price of s-fairness.")
}
