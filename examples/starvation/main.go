// Starvation: the paper's §5 experiments back to back — Copa poisoned by a
// single 59 ms RTT sample, BBR with unequal propagation delays, PCC Vivace
// under ACK quantization, and PCC Allegro with asymmetric random loss.
//
//	go run ./examples/starvation
//
// Each case prints the paper's measured numbers next to this emulator's.
// Absolute rates differ from the authors' Mahimahi testbed; the shape —
// which flow starves and by roughly what factor — is the reproduction.
package main

import (
	"fmt"

	"starvation/internal/scenario"
)

func main() {
	for _, name := range []string{"copa-single", "copa-two", "bbr-two", "vivace-ackagg", "allegro-loss"} {
		res := scenario.Registry[name](scenario.Opts{})
		fmt.Println(res)
	}

	fmt.Println(`All four delay-bounding CCAs starve under per-flow signal asymmetries far
smaller than anything a user would call an outage: a 1 ms measurement
error, a doubled propagation delay, 60 ms ACK batching, 2% random loss.
Theorem 1 says this is not four coincidences — any f-efficient CCA that
converges to a delay range δmax < D/2 has such a failure mode.`)
}
