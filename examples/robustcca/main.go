// Robustcca: the paper's way out (§6.3). Algorithm 1 maps rates to delays
// exponentially — rates a factor s apart are mapped to delays at least D
// apart — so bounded delay ambiguity can cost at most a factor s of
// unfairness over the supported range [μ−, μ+].
//
//	go run ./examples/robustcca
//
// The same adversarial jitter (≤ 10 ms on one flow's path) starves Vegas
// but leaves Algorithm 1 s-fair, at the designed-in cost of larger and
// deliberately oscillating queueing delay.
package main

import (
	"fmt"
	"time"

	"starvation/internal/cca/algo1"
	"starvation/internal/core"
	"starvation/internal/scenario"
	"starvation/internal/units"
)

func main() {
	fmt.Println("the rate-delay design space (D = 10ms, Rmax-Rm = 100ms):")
	rm := time.Duration(0)
	rmax := 100 * time.Millisecond
	d := 10 * time.Millisecond
	fmt.Printf("%6s %22s %22s\n", "s", "Vegas family μ+/μ−", "exponential μ+/μ−")
	for _, s := range []float64{2, 4} {
		fmt.Printf("%6.0f %22.1f %22.3g\n", s,
			core.VegasFigureOfMerit(rmax, rm, d, s),
			core.ExponentialFigureOfMerit(rmax, rm, d, s))
	}

	a := algo1.New(algo1.Config{Rm: 50 * time.Millisecond, D: d, S: 2})
	fmt.Printf("\nAlgorithm 1 instance: μ− = %v, μ+ = %v\n",
		units.Kbps(100), a.MuPlus())

	fmt.Println("\nhead to head under adversarial jitter (one flow, ≤ 10ms):")
	fair := scenario.Algo1Fairness(scenario.Opts{})
	fmt.Println(fair)
	veg := scenario.VegasUnderJitter(scenario.Opts{})
	fmt.Println(veg)

	fmt.Printf("Algorithm 1 ratio %.2f stays within its s=%.0f bound;"+
		" Vegas ratio %.1f is starvation.\n",
		fair.Observables["ratio"], fair.Observables["s_bound"], veg.Observables["ratio"])
}
