// Emulate: Theorem 1's constructive proof executed end to end.
//
//	go run ./examples/emulate
//
// Step 1-2: run Vegas alone on ideal links of 12 and 384 Mbit/s and record
// the delay/rate trajectories. The pigeonhole of Theorem 1 guarantees such
// a pair exists whose equilibrium delays collide within ε although the
// rates are a factor 32 apart.
//
// Step 3: run both flows on one 396 Mbit/s link. A bounded non-congestive
// delay element (≤ D per packet, never reordering) replays each flow's
// recorded trajectory, so each deterministic sender repeats its single-flow
// behaviour — one at 12 Mbit/s, one at 384 Mbit/s. Starvation, on a
// symmetric topology with equal propagation delays.
package main

import (
	"fmt"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/vegas"
	"starvation/internal/core"
	"starvation/internal/units"
)

func mkVegas(conv *core.Convergence) cca.Algorithm {
	if conv == nil {
		return vegas.New(vegas.Config{})
	}
	v := vegas.New(vegas.Config{BaseRTT: conv.Rm})
	v.SetCwndPkts(conv.FinalCwndPkts)
	return v
}

func main() {
	spec := core.EmulationSpec{
		Make:     mkVegas,
		Rm:       50 * time.Millisecond,
		C1:       units.Mbps(12),
		C2:       units.Mbps(384),
		D:        20 * time.Millisecond,
		Measure:  core.MeasureOpts{Duration: 30 * time.Second},
		Duration: 30 * time.Second,
	}

	fmt.Println("Theorem 1, live. Measuring single-flow trajectories...")
	res := core.EmulateTwoFlow(spec)

	fmt.Printf("step 1-2: C1=%v converges to dmax=%v; C2=%v converges to dmax=%v\n",
		res.Conv1.C, res.Conv1.DMax.Round(10*time.Microsecond),
		res.Conv2.C, res.Conv2.DMax.Round(10*time.Microsecond))
	fmt.Printf("          delay ranges collide: gap=%v within δmax+ε=%v\n",
		res.DelayGap.Round(10*time.Microsecond), (res.DeltaMax + res.Epsilon).Round(10*time.Microsecond))
	fmt.Printf("step 3:   shared link %v, initial queue delay d*(0)=%v\n",
		spec.C1+spec.C2, res.DStar0.Round(10*time.Microsecond))
	fmt.Println()
	fmt.Print(res.TwoFlow)
	fmt.Printf("\nstarvation ratio: %.1f (adversary clamp: %.2f%% / %.2f%% of packets,\n"+
		"max clamp magnitudes %v / %v — all delays within [0, D=%v])\n",
		res.Ratio,
		100*res.Shaper1.ViolationFraction(), 100*res.Shaper2.ViolationFraction(),
		res.Shaper1.MaxNegative.Round(time.Microsecond),
		res.Shaper2.MaxNegative.Round(time.Microsecond), spec.D)

	// The same machinery proves Theorem 2: emulate the 12 Mbit/s
	// trajectory on a 50× link and the flow never finds out.
	fmt.Println("\nTheorem 2, live. Same trajectory, 50× bigger link...")
	under := core.UnderutilizationConstruction(core.UnderutilizationSpec{
		Make:       mkVegas,
		Rm:         50 * time.Millisecond,
		C:          units.Mbps(12),
		Multiplier: 50,
		Measure:    core.MeasureOpts{Duration: 20 * time.Second},
		Duration:   20 * time.Second,
	})
	fmt.Printf("utilization on %v: %.4f — arbitrary under-utilization when dmax(C) ≤ D\n",
		under.BigLink, under.Utilization)
}
