// Jittersources: §2.1's catalog of non-congestive delay, one source at a
// time. The same Vegas flow runs on the same 24 Mbit/s path while the
// path's delay element cycles through the real-world mechanisms the paper
// lists — ACK aggregation, token bucket filters, bursty link-layer holds,
// scheduler spikes, plain scheduling noise — plus the ideal path as the
// control.
//
//	go run ./examples/jittersources
//
// The point of the table: mechanisms with completely different physics all
// become the same thing to the sender — RTT variation it cannot attribute
// — and a delay-convergent CCA prices every unattributed millisecond as
// congestion. D is what matters, not where D came from.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

func main() {
	mkJitter := func(name string) jitter.Policy {
		rng := rand.New(rand.NewSource(11))
		switch name {
		case "ideal":
			return jitter.None{}
		case "os-noise (uniform ≤5ms)":
			return &jitter.Uniform{Max: 5 * time.Millisecond, Rng: rng}
		case "ack-aggregation (20ms)":
			return jitter.PeriodicAggregation{Period: 20 * time.Millisecond}
		case "wifi-bursts (GE, 10ms)":
			return &jitter.GilbertElliott{
				PGoodToBad: 0.02, PBadToGood: 0.2,
				BadDelay: 10 * time.Millisecond, Rng: rng,
			}
		case "scheduler-spikes (10ms/100ms)":
			return jitter.PeriodicSpike{Period: 100 * time.Millisecond, SpikeLen: 10 * time.Millisecond}
		case "token-bucket (2MB/s, 15KB)":
			return &jitter.TokenBucket{RateBytesPerSec: 4e6, BurstBytes: 15000}
		}
		panic("unknown " + name)
	}

	names := []string{
		"ideal",
		"os-noise (uniform ≤5ms)",
		"ack-aggregation (20ms)",
		"wifi-bursts (GE, 10ms)",
		"scheduler-spikes (10ms/100ms)",
		"token-bucket (2MB/s, 15KB)",
	}

	fmt.Println("one Vegas flow, 24 Mbit/s, Rm = 60ms, 30s, per jitter source:")
	fmt.Printf("%-30s %8s %12s %12s %12s\n", "source", "bound D", "throughput", "rtt mean", "rtt max")
	for _, name := range names {
		pol := mkJitter(name)
		// The jitter switches on at t=10s so the CCA first learns the true
		// floor — persistent delay from t=0 would just look like a longer
		// path (see §5.1).
		delayed := &jitter.Scripted{
			Max: pol.Bound() + time.Millisecond,
			Fn: func(now time.Duration) time.Duration {
				if now < 10*time.Second {
					return 0
				}
				return pol.Delay(now, 0)
			},
		}
		n := network.New(
			network.Config{Rate: units.Mbps(24), Seed: 4},
			network.FlowSpec{Name: name, Alg: vegas.New(vegas.Config{}),
				Rm: 60 * time.Millisecond, FwdJitter: delayed},
		)
		res := n.RunWindow(30*time.Second, 15*time.Second, 30*time.Second)
		st := res.Flows[0].Stat
		fmt.Printf("%-30s %8v %12v %12v %12v\n",
			name, pol.Bound(), st.SteadyThpt,
			st.MeanRTT.Round(100*time.Microsecond),
			st.MaxRTT.Round(100*time.Microsecond))
	}

	fmt.Println(`
The table splits along the line the paper draws in §3. Intermittent
sources (noise, bursts, spikes) leave windows where some packet passes
unheld, and Vegas's per-epoch minimum filter finds those packets: the cost
stays small. ACK aggregation holds EVERY packet to the next boundary —
persistent, non-zero-mean delay that no filter can see through — and Vegas
prices all of it as queueing: 87% of the link gone. That is the paper's
point about filtering: it works only against delay patterns that happen to
expose the truth, and the adversarial model's D covers the ones that
don't. (The two-flow versions of these scenarios starve instead of just
slowing: see examples/starvation.)`)
}
