// Quickstart: build a two-flow scenario against the emulator's public
// pieces, run it, and print fairness statistics.
//
//	go run ./examples/quickstart
//
// Two TCP Vegas flows share a 48 Mbit/s bottleneck with an 80 ms
// propagation RTT; the second flow joins five seconds late. On this clean
// path they converge to an even split — the baseline that every other
// example perturbs.
package main

import (
	"fmt"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/network"
	"starvation/internal/trace"
	"starvation/internal/units"
)

func main() {
	net := network.New(
		network.Config{
			Rate: units.Mbps(48),
			Seed: 1,
		},
		network.FlowSpec{
			Name: "early",
			Alg:  vegas.New(vegas.Config{}),
			Rm:   80 * time.Millisecond,
		},
		network.FlowSpec{
			Name:    "late",
			Alg:     vegas.New(vegas.Config{}),
			Rm:      80 * time.Millisecond,
			StartAt: 5 * time.Second,
		},
	)
	res := net.Run(60 * time.Second)

	fmt.Println("two Vegas flows on a clean 48 Mbit/s path:")
	fmt.Println(res)
	fmt.Println("late flow's rate over time:")
	fmt.Print(trace.ASCIIPlot(res.Flows[1].Rate, 72, 10, "rate (bit/s)"))

	if res.Jain() > 0.95 {
		fmt.Println("\n-> fair: on an ideal path, delay-convergent CCAs share evenly.")
		fmt.Println("   The starvation examples show what bounded delay ambiguity does to this.")
	}
}
