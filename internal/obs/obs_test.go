package obs

import (
	"bytes"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestEventTypeNamesRoundTrip(t *testing.T) {
	for et := EventType(0); et < numEventTypes; et++ {
		got, ok := ParseEventType(et.String())
		if !ok || got != et {
			t.Errorf("ParseEventType(%q) = %v, %v; want %v", et.String(), got, ok, et)
		}
	}
	if _, ok := ParseEventType("bogus"); ok {
		t.Error("ParseEventType accepted an unknown name")
	}
}

func TestMultiDropsNils(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live probes should be nil (disabled)")
	}
	r := NewRegistry()
	if Multi(nil, r, nil) != Probe(r) {
		t.Error("Multi of one live probe should unwrap it")
	}
	r2 := NewRegistry()
	m := Multi(r, r2)
	m.Emit(Event{Type: EvDeliver, Flow: 0, Bytes: 100})
	if r.snap.Global.PacketsDelivered != 1 || r2.snap.Global.PacketsDelivered != 1 {
		t.Error("Multi did not fan out to both probes")
	}
}

func TestRegistryAccumulates(t *testing.T) {
	r := NewRegistry()
	events := []Event{
		{Type: EvEnqueue, Flow: 0, Seq: 0, Bytes: 1500, Queue: 1500},
		{Type: EvMark, Flow: 0, Seq: 0, Bytes: 1500, Queue: 1500},
		{Type: EvEnqueue, Flow: 1, Seq: 0, Bytes: 1500, Queue: 3000},
		{Type: EvDrop, Flow: 0, Seq: 1500, Bytes: 1500, Queue: 3000},
		{Type: EvDrop, Flow: 0, Seq: 1500, Bytes: 1500, Queue: -1, Retx: true},
		{Type: EvDequeue, Flow: 0, Seq: 0, Bytes: 1500, Queue: 1500},
		{Type: EvDeliver, Flow: 0, Seq: 0, Bytes: 1500},
		{Type: EvAckRecv, Flow: 0, Seq: 1500, Bytes: 1500},
		{Type: EvCwndUpdate, Flow: 0, Bytes: 3000},
		{Type: EvRateSample, Flow: 1, Seq: 12_000_000, Queue: 1500},
	}
	for _, e := range events {
		r.Emit(e)
	}
	snap := r.Snapshot()
	f0 := snap.Flows[0]
	if f0.PacketsSent != 3 || f0.PacketsEnqueued != 1 || f0.PacketsDropped != 2 {
		t.Errorf("flow0 sent/enq/drop = %d/%d/%d, want 3/1/2",
			f0.PacketsSent, f0.PacketsEnqueued, f0.PacketsDropped)
	}
	if f0.Retransmits != 1 || f0.PacketsMarked != 1 || f0.PacketsDelivered != 1 {
		t.Errorf("flow0 retx/marked/delivered = %d/%d/%d, want 1/1/1",
			f0.Retransmits, f0.PacketsMarked, f0.PacketsDelivered)
	}
	if f0.BytesSent != 4500 || f0.BytesEnqueued != 1500 || f0.BytesAcked != 1500 {
		t.Errorf("flow0 bytes sent/enq/acked = %d/%d/%d, want 4500/1500/1500",
			f0.BytesSent, f0.BytesEnqueued, f0.BytesAcked)
	}
	if f0.AcksReceived != 1 || f0.CwndUpdates != 1 {
		t.Errorf("flow0 acks/cwnd-updates = %d/%d, want 1/1", f0.AcksReceived, f0.CwndUpdates)
	}
	if snap.Flows[1].RateSamples != 1 || snap.Flows[1].PacketsSent != 1 {
		t.Errorf("flow1 = %+v, want 1 rate sample, 1 sent", snap.Flows[1])
	}
	g := snap.Global
	if g.PacketsEnqueued != 2 || g.PacketsDropped != 2 || g.PacketsDequeued != 1 ||
		g.PacketsDelivered != 1 || g.MaxQueueBytes != 3000 {
		t.Errorf("global = %+v", g)
	}

	// Snapshot is a deep copy: mutating it must not touch the registry.
	snap.Flows[0].PacketsSent = 999
	if r.snap.Flows[0].PacketsSent != 3 {
		t.Error("Snapshot aliases registry state")
	}
}

func TestJSONLRoundTripExact(t *testing.T) {
	events := []Event{
		{Type: EvEnqueue, At: 1234567, Flow: 0, Seq: 0, Bytes: 1500, Queue: 1500},
		{Type: EvDrop, At: 2 * time.Millisecond, Flow: 1, Seq: 4500, Bytes: 1500, Queue: -1, Retx: true},
		{Type: EvRateSample, At: time.Second, Flow: 0, Seq: 48_000_000, Queue: 0},
	}
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf)
	for _, e := range events {
		jw.Emit(e)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, events)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"type\":\"enqueue\"}\nnot json\n")); err == nil {
		t.Error("want error for malformed line")
	}
	if _, err := ReadJSONL(strings.NewReader("{\"type\":\"warp\"}\n")); err == nil {
		t.Error("want error for unknown event type")
	}
}

// promSample matches one sample line of the text exposition format.
var promSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// ValidatePrometheus checks every line of a text-format exposition: only
// HELP/TYPE comments and well-formed sample lines are allowed. Shared by
// the CLI round-trip tests.
func ValidatePrometheus(t *testing.T, text string) {
	t.Helper()
	seenType := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge") {
				t.Errorf("line %d: bad TYPE line %q", i+1, line)
			}
			if seenType[fields[2]] {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, fields[2])
			}
			seenType[fields[2]] = true
		default:
			if !promSample.MatchString(line) {
				t.Errorf("line %d: malformed sample %q", i+1, line)
			}
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Emit(Event{Type: EvEnqueue, Flow: 0, Bytes: 1500, Queue: 1500})
	r.Emit(Event{Type: EvEnqueue, Flow: 1, Bytes: 1500, Queue: 3000})
	r.Emit(Event{Type: EvDeliver, Flow: 1, Bytes: 1500})
	snap := r.Snapshot()
	snap.Flows[0].Name = "rtt40"
	snap.Global.SimEventsFired = 42

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, &snap); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ValidatePrometheus(t, out)
	for _, want := range []string{
		`starvesim_packets_sent_total{flow="rtt40"} 1`,
		`starvesim_packets_delivered_total{flow="flow1"} 1`,
		`starvesim_queue_depth_max_bytes 3000`,
		`starvesim_sim_events_fired_total 42`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q", want)
		}
	}
}
