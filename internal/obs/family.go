package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// FamilySet is a thread-safe group of labelled metric families for
// long-running components. Registry is deliberately single-writer and
// per-run (it mirrors the simulator feeding it); a daemon serving many
// concurrent batches needs the opposite contract — counters that
// accumulate across runs and accept increments from any goroutine. The
// experiment service keeps its per-client and per-batch families here and
// appends them to /metrics after the per-run registries.
type FamilySet struct {
	mu       sync.Mutex
	families map[string]*Family
	order    []string // registration order, for stable exposition
}

// NewFamilySet returns an empty set.
func NewFamilySet() *FamilySet {
	return &FamilySet{families: map[string]*Family{}}
}

// Family is one named metric family: a set of samples distinguished by a
// single label. The empty label value emits an unlabelled sample, so a
// family can also hold a plain scalar.
type Family struct {
	name, help, label string
	gauge             bool

	mu   sync.Mutex
	vals map[string]int64
}

// Counter registers (or retrieves) a counter family. Registering an
// existing name returns the same family; the first registration's help,
// label, and kind win — families are declared once at startup, and a
// conflicting redeclaration is a programming error reported loudly.
func (s *FamilySet) Counter(name, help, label string) *Family {
	return s.family(name, help, label, false)
}

// Gauge registers (or retrieves) a gauge family.
func (s *FamilySet) Gauge(name, help, label string) *Family {
	return s.family(name, help, label, true)
}

func (s *FamilySet) family(name, help, label string, gauge bool) *Family {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.families[name]; ok {
		if f.gauge != gauge || f.label != label {
			panic(fmt.Sprintf("obs: metric family %q redeclared with different kind or label", name))
		}
		return f
	}
	f := &Family{name: name, help: help, label: label, gauge: gauge, vals: map[string]int64{}}
	s.families[name] = f
	s.order = append(s.order, name)
	return f
}

// Add increments the sample for the label value (creating it at zero).
func (f *Family) Add(labelValue string, delta int64) {
	f.mu.Lock()
	f.vals[labelValue] += delta
	f.mu.Unlock()
}

// Set replaces the sample for the label value (gauges).
func (f *Family) Set(labelValue string, v int64) {
	f.mu.Lock()
	f.vals[labelValue] = v
	f.mu.Unlock()
}

// Value returns the current sample for the label value.
func (f *Family) Value(labelValue string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.vals[labelValue]
}

// Forget drops the sample for the label value — a completed batch's gauge
// should leave the exposition rather than linger at its final value.
func (f *Family) Forget(labelValue string) {
	f.mu.Lock()
	delete(f.vals, labelValue)
	f.mu.Unlock()
}

// WritePrometheus renders every family in the text exposition format:
// families in registration order, samples sorted by label value so the
// output is diffable run to run.
func (s *FamilySet) WritePrometheus(w io.Writer) error {
	s.mu.Lock()
	fams := make([]*Family, len(s.order))
	for i, name := range s.order {
		fams[i] = s.families[name]
	}
	s.mu.Unlock()
	for _, f := range fams {
		typ := "counter"
		if f.gauge {
			typ = "gauge"
		}
		if err := header(w, f.name, f.help, typ); err != nil {
			return err
		}
		f.mu.Lock()
		labels := make([]string, 0, len(f.vals))
		for lv := range f.vals {
			labels = append(labels, lv)
		}
		sort.Strings(labels)
		lines := make([]string, len(labels))
		for i, lv := range labels {
			if lv == "" {
				lines[i] = fmt.Sprintf("%s %d\n", f.name, f.vals[lv])
			} else {
				lines[i] = fmt.Sprintf("%s{%s=%q} %d\n", f.name, f.label, lv, f.vals[lv])
			}
		}
		f.mu.Unlock()
		for _, line := range lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
