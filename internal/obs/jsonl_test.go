package obs

import (
	"errors"
	"testing"
)

// failWriter fails every write after the first n bytes have been accepted.
type failWriter struct {
	n   int
	err error
}

func (fw *failWriter) Write(p []byte) (int, error) {
	if fw.n <= 0 {
		return 0, fw.err
	}
	if len(p) > fw.n {
		n := fw.n
		fw.n = 0
		return n, fw.err
	}
	fw.n -= len(p)
	return len(p), nil
}

func TestJSONLWriterSurfacesWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	jw := NewJSONLWriter(&failWriter{n: 0, err: wantErr})

	// Buffered: the first emits succeed, the error appears at Flush.
	jw.Emit(Event{Type: EvEnqueue, Flow: 0, Bytes: 1500, Queue: 1500})
	if jw.Err() != nil {
		t.Fatalf("premature error before flush: %v", jw.Err())
	}
	if err := jw.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush = %v, want %v", err, wantErr)
	}

	// Errors are sticky: later emits are no-ops, Close repeats the error.
	jw.Emit(Event{Type: EvDeliver, Flow: 0, Bytes: 1500})
	if err := jw.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close = %v, want %v", err, wantErr)
	}
	if !errors.Is(jw.Err(), wantErr) {
		t.Fatalf("Err = %v, want sticky %v", jw.Err(), wantErr)
	}
}

func TestJSONLWriterMidRunFlushFailure(t *testing.T) {
	// A writer that accepts a little then fails models an export sink
	// dying mid-run; periodic Flush is how long runs notice before Close.
	wantErr := errors.New("pipe closed")
	jw := NewJSONLWriter(&failWriter{n: 100, err: wantErr})
	for i := 0; i < 4; i++ {
		jw.Emit(Event{Type: EvDeliver, Flow: 0, Seq: int64(i), Bytes: 1500})
	}
	if err := jw.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("mid-run Flush = %v, want %v", err, wantErr)
	}
}
