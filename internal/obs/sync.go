package obs

import "sync"

// Synchronized is the guarded mode of the probe layer: it serializes Emit
// calls and reader access to one probe behind a mutex.
//
// Probes themselves follow the simulator's single-writer discipline — a
// Registry, sampler, or JSONL writer is owned by the one goroutine running
// its simulation, and needs no locking there (see Registry). Two places
// legitimately break that discipline: a live view (starvesim -watch)
// reading flow state from a wall-clock goroutine while the simulation
// emits, and tooling that funnels several concurrent sweeps into one
// shared sink. Wrapping the shared probe in Synchronized makes both safe;
// the focused -race CI step covers this type.
//
// Do NOT wrap per-run probes used by a parallel sweep where each run has
// its own probe — that is already race-free and the lock only costs time.
type Synchronized struct {
	mu sync.Mutex
	p  Probe
}

// NewSynchronized wraps p; a nil p yields a probe that only serializes Do.
func NewSynchronized(p Probe) *Synchronized {
	return &Synchronized{p: p}
}

// Emit implements Probe, holding the lock across the wrapped emission.
func (s *Synchronized) Emit(e Event) {
	s.mu.Lock()
	if s.p != nil {
		s.p.Emit(e)
	}
	s.mu.Unlock()
}

// Do runs fn under the same lock Emit takes, so a reader goroutine can
// inspect the wrapped probe's state (snapshot a registry, render a live
// view, flush a writer) without racing the emitting goroutine.
func (s *Synchronized) Do(fn func(p Probe)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.p)
}
