package obs

import (
	"reflect"
	"testing"
	"time"
)

// feedRegistry replays a fixed event mix covering every counter path.
func feedRegistry(r *Registry) {
	events := []Event{
		{Type: EvEnqueue, Flow: 0, Bytes: 1500, Queue: 3000},
		{Type: EvEnqueue, Flow: 1, Bytes: 1500, Queue: 4500, Retx: true},
		{Type: EvDrop, Flow: 1, Bytes: 1500, Queue: -1},
		{Type: EvMark, Flow: 0},
		{Type: EvDequeue, Flow: 0},
		{Type: EvDup, Flow: 1},
		{Type: EvReorder, Flow: 0},
		{Type: EvDeliver, Flow: 0, Bytes: 1500, At: 5 * time.Millisecond},
		{Type: EvAckRecv, Flow: 0, Bytes: 1500},
		{Type: EvCwndUpdate, Flow: 1},
		{Type: EvRateSample, Flow: 0},
		{Type: EvLinkRate, Flow: -1},
	}
	for _, e := range events {
		r.Emit(e)
	}
}

// TestRegistryResetIndistinguishableFromFresh pins satellite 1's contract
// for the registry: after Reset, refeeding the same event stream yields a
// snapshot deep-equal to a fresh registry's — including the per-flow slice
// length, which must not retain ghost flows from the previous run.
func TestRegistryResetIndistinguishableFromFresh(t *testing.T) {
	fresh := NewRegistry()
	feedRegistry(fresh)
	want := fresh.Snapshot()

	reused := NewRegistry()
	feedRegistry(reused)
	// Dirty it further: a third flow the next run does not have.
	reused.Emit(Event{Type: EvDeliver, Flow: 7, Bytes: 1500})
	reused.Reset()
	if snap := reused.Snapshot(); len(snap.Flows) != 0 || snap.Global != (Counters{}) {
		t.Fatalf("reset registry not empty: %+v", snap)
	}
	feedRegistry(reused)
	if got := reused.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("reset registry diverged from fresh:\n got %+v\nwant %+v", got, want)
	}
}
