package timeseries

import (
	"testing"
	"time"

	"starvation/internal/obs"
	"starvation/internal/packet"
)

const stride = 100 * time.Millisecond

func newTestSampler(nflows int, on OnWindow) *Sampler {
	return NewSampler(Config{Stride: stride, OnWindow: on}, nflows)
}

func TestSamplerFoldsEvents(t *testing.T) {
	s := newTestSampler(1, nil)
	s.Reserve(time.Second)
	at := 10 * time.Millisecond
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: at, Flow: 0, Bytes: 1500})
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: at * 2, Flow: 0, Bytes: 1500})
	s.Emit(obs.Event{Type: obs.EvDeliver, At: at * 3, Flow: 0, Bytes: 1500})
	s.Emit(obs.Event{Type: obs.EvDrop, At: at * 4, Flow: 0, Queue: -1})
	s.Emit(obs.Event{Type: obs.EvDrop, At: at * 5, Flow: 0, Queue: 3000})
	s.Emit(obs.Event{Type: obs.EvCwndUpdate, At: at * 6, Flow: 0, Bytes: 30000})
	s.Emit(obs.Event{Type: obs.EvRTTSample, At: at * 7, Flow: 0, Seq: int64(40 * time.Millisecond)})
	s.Emit(obs.Event{Type: obs.EvRTTSample, At: at * 8, Flow: 0, Seq: int64(60 * time.Millisecond)})
	s.Emit(obs.Event{Type: obs.EvRateSample, At: at * 9, Flow: 0, Queue: 4500})
	s.Flush(stride)

	fs := s.Flow(0)
	if fs.Len() != 1 {
		t.Fatalf("windows = %d, want 1", fs.Len())
	}
	w := fs.At(0)
	if w.AckedBytes != 3000 || w.DeliveredPkts != 1 || w.DeliveredBytes != 1500 {
		t.Errorf("acked/delivered = %d/%d/%d, want 3000/1/1500",
			w.AckedBytes, w.DeliveredPkts, w.DeliveredBytes)
	}
	if w.Drops != 2 || w.GateDrops != 1 {
		t.Errorf("drops/gate = %d/%d, want 2/1", w.Drops, w.GateDrops)
	}
	if w.CwndBytes != 30000 || w.QueueBytes != 4500 {
		t.Errorf("cwnd/queue = %d/%d, want 30000/4500", w.CwndBytes, w.QueueBytes)
	}
	if w.RTTCount != 2 || w.MeanRTT() != 50*time.Millisecond {
		t.Errorf("rtt count/mean = %d/%v, want 2/50ms", w.RTTCount, w.MeanRTT())
	}
	if fs.MinRTT() != 40*time.Millisecond {
		t.Errorf("min rtt = %v, want 40ms", fs.MinRTT())
	}
	// Delivery rate comes from receiver arrivals, not cumulative-ACK
	// progress (a frozen SACK hole must not zero the goodput series).
	if got := w.RateBps(stride); got != 1500*8/0.1 {
		t.Errorf("rate = %g, want %g", got, 1500*8/0.1)
	}
}

func TestSamplerAdvancesAcrossEmptyWindows(t *testing.T) {
	var closed []time.Duration
	s := newTestSampler(1, func(_ packet.FlowID, w *Window, elapsed time.Duration) {
		if elapsed != stride {
			t.Errorf("interior window elapsed = %v, want stride", elapsed)
		}
		closed = append(closed, w.Start)
	})
	s.Reserve(time.Second)
	s.Emit(obs.Event{Type: obs.EvCwndUpdate, At: 10 * time.Millisecond, Flow: 0, Bytes: 20000})
	s.Emit(obs.Event{Type: obs.EvFaultState, At: 20 * time.Millisecond, Flow: 0, Seq: 1})
	// Jump 4 strides ahead: three interior windows must close in order,
	// each carrying the cwnd gauge and the sticky fault state.
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: 410 * time.Millisecond, Flow: 0, Bytes: 1500})

	want := []time.Duration{0, stride, 2 * stride, 3 * stride}
	if len(closed) != len(want) {
		t.Fatalf("closed %d windows, want %d", len(closed), len(want))
	}
	for i, st := range want {
		if closed[i] != st {
			t.Errorf("window %d start = %v, want %v", i, closed[i], st)
		}
	}
	fs := s.Flow(0)
	for i := 1; i < fs.Len(); i++ {
		w := fs.At(i)
		if w.CwndBytes != 20000 {
			t.Errorf("empty window %d lost cwnd: %d", i, w.CwndBytes)
		}
		if !w.FaultBad {
			t.Errorf("empty window %d lost fault state", i)
		}
		if w.AckedBytes != 0 {
			t.Errorf("empty window %d has acked bytes %d", i, w.AckedBytes)
		}
	}
}

func TestSamplerFlowThatNeverSends(t *testing.T) {
	s := newTestSampler(2, nil)
	s.Reserve(time.Second)
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: 50 * time.Millisecond, Flow: 0, Bytes: 1500})
	s.Flush(200 * time.Millisecond)

	fs := s.Flow(1)
	if fs == nil {
		t.Fatal("allocated flow slot missing")
	}
	if fs.Len() != 0 || fs.Closed() != 0 || fs.MinRTT() != 0 {
		t.Errorf("silent flow series = len %d closed %d minRTT %v, want all zero",
			fs.Len(), fs.Closed(), fs.MinRTT())
	}
	if s.Flow(99) != nil {
		t.Error("Flow beyond slot table should be nil")
	}
}

func TestSamplerRunShorterThanOneWindow(t *testing.T) {
	var gotElapsed time.Duration
	s := newTestSampler(1, func(_ packet.FlowID, w *Window, elapsed time.Duration) {
		gotElapsed = elapsed
	})
	s.Reserve(30 * time.Millisecond)
	s.Emit(obs.Event{Type: obs.EvDeliver, At: 5 * time.Millisecond, Flow: 0, Bytes: 1500})
	s.Flush(30 * time.Millisecond)

	fs := s.Flow(0)
	if fs.Len() != 1 {
		t.Fatalf("windows = %d, want 1 partial", fs.Len())
	}
	if gotElapsed != 30*time.Millisecond {
		t.Errorf("partial elapsed = %v, want 30ms (true extent, not stride)", gotElapsed)
	}
	// Rate over the true extent, not the stride: 1500 B in 30 ms.
	w := fs.At(0)
	if got, want := float64(w.DeliveredBytes)*8/gotElapsed.Seconds(), 1500*8/0.03; got != want {
		t.Errorf("true rate = %g, want %g", got, want)
	}
}

func TestSamplerEmptyWindowNoEvents(t *testing.T) {
	s := newTestSampler(1, func(_ packet.FlowID, _ *Window, _ time.Duration) {
		t.Error("OnWindow fired for a flow with no events")
	})
	s.Reserve(time.Second)
	s.Flush(time.Second)
	if fs := s.Flow(0); fs.Len() != 0 {
		t.Errorf("windows = %d, want 0", fs.Len())
	}
}

func TestSamplerRingEviction(t *testing.T) {
	s := NewSampler(Config{Stride: stride, MaxWindows: 4}, 1)
	s.Reserve(10 * time.Second) // horizon wants 102 windows; cap wins
	for i := 0; i < 10; i++ {
		s.Emit(obs.Event{Type: obs.EvAckRecv,
			At: time.Duration(i) * stride, Flow: 0, Bytes: int(1500 + i)})
	}
	s.Flush(time.Second)

	fs := s.Flow(0)
	if fs.Len() != 4 {
		t.Fatalf("retained = %d, want ring cap 4", fs.Len())
	}
	if fs.Closed() != 10 {
		t.Errorf("closed = %d, want 10", fs.Closed())
	}
	if fs.Evicted != 6 {
		t.Errorf("evicted = %d, want 6", fs.Evicted)
	}
	// The ring keeps the newest windows, oldest first.
	for i := 0; i < 4; i++ {
		if want := time.Duration(6+i) * stride; fs.At(i).Start != want {
			t.Errorf("retained window %d start = %v, want %v", i, fs.At(i).Start, want)
		}
	}
	ws := fs.Windows()
	if len(ws) != 4 || ws[0].AckedBytes != 1506 || ws[3].AckedBytes != 1509 {
		t.Errorf("Windows() = %+v", ws)
	}
}

func TestSamplerFlushIdempotent(t *testing.T) {
	closes := 0
	s := newTestSampler(1, func(_ packet.FlowID, _ *Window, _ time.Duration) { closes++ })
	s.Reserve(time.Second)
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: 10 * time.Millisecond, Flow: 0, Bytes: 1500})
	s.Flush(time.Second)
	// One close per stride to the horizon: the active window plus the
	// empty interior windows a starved flow still produces.
	if closes != 10 {
		t.Errorf("closes = %d, want 10 (one per stride to the horizon)", closes)
	}
	s.Flush(time.Second)
	if closes != 10 {
		t.Errorf("closes = %d after second Flush, want 10 (must be a no-op)", closes)
	}
}

func TestSamplerIgnoresLinkEvents(t *testing.T) {
	s := newTestSampler(1, nil)
	s.Emit(obs.Event{Type: obs.EvLinkRate, At: time.Second, Flow: -1, Seq: 1_000_000})
	s.Flush(2 * time.Second)
	if fs := s.Flow(0); fs.Len() != 0 {
		t.Errorf("flow-less event opened a window")
	}
}

func TestSamplerZeroSteadyStateAllocs(t *testing.T) {
	s := newTestSampler(2, nil)
	s.Reserve(10 * time.Second)
	// Prime both flows so rings exist.
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: 0, Flow: 0, Bytes: 1500})
	s.Emit(obs.Event{Type: obs.EvAckRecv, At: 0, Flow: 1, Bytes: 1500})
	allocs := testing.AllocsPerRun(1000, func() {
		s.Emit(obs.Event{Type: obs.EvAckRecv, At: 50 * time.Millisecond, Flow: 0, Bytes: 1500})
		s.Emit(obs.Event{Type: obs.EvRTTSample, At: 60 * time.Millisecond, Flow: 1, Seq: 1000})
	})
	if allocs != 0 {
		t.Errorf("steady-state allocs/op = %g, want 0", allocs)
	}
}
