// Package timeseries folds the packet-lifecycle event stream into
// fixed-capacity, windowed per-flow series: delivery rate, smoothed
// RTT/queueing delay, congestion window, and drop counts, one Window per
// fixed stride of virtual time.
//
// The sampler is an obs.Probe and follows the observation-only contract:
// it schedules nothing and draws no randomness, so a run with a sampler
// attached is event-for-event identical to one without. Windows close on
// event arrival — the emulator's periodic rate samples reach every flow
// (including a fully starved one) at the trace-sampling cadence, so every
// flow's windows advance without the sampler owning a timer; Flush closes
// the partial window at the horizon.
//
// Memory discipline matches trace.Series.Reserve: rings are pre-sized
// from the run horizon (Reserve), flow slots from the flow count, so the
// steady state allocates nothing. When a run outlives its ring capacity
// the ring keeps the most recent windows and counts the evicted ones.
package timeseries

import (
	"time"

	"starvation/internal/obs"
	"starvation/internal/packet"
)

// Window is one stride of a flow's series: event counts and gauges folded
// over [Start, Start+stride). A window an event never reached has Empty
// semantics — all counters zero and gauges carried from the previous
// window where noted.
type Window struct {
	// Start is the window's opening virtual time (aligned to the stride).
	Start time.Duration `json:"start_ns"`
	// AckedBytes is payload newly covered by the cumulative ACK. Under
	// SACK a long-unrepaired hole freezes this while data keeps flowing,
	// so it measures cumulative-ACK progress, not goodput.
	AckedBytes int64 `json:"acked_bytes"`
	// DeliveredPkts/DeliveredBytes count receiver arrivals — the goodput
	// numerator for the window's delivery rate, matching the emulator's
	// own throughput traces.
	DeliveredPkts  int64 `json:"delivered_pkts"`
	DeliveredBytes int64 `json:"delivered_bytes"`
	// Drops counts discards anywhere on the path; GateDrops isolates the
	// pre-queue fault-gate share.
	Drops     int64 `json:"drops"`
	GateDrops int64 `json:"gate_drops"`
	// RTTSum/RTTCount accumulate the sender's RTT samples (ns).
	RTTSum   int64 `json:"rtt_sum_ns"`
	RTTCount int64 `json:"rtt_count"`
	// CwndBytes is the last observed congestion window (carried across
	// empty windows: a silent flow still has a window).
	CwndBytes int `json:"cwnd_bytes"`
	// QueueBytes is the bottleneck depth at the last rate sample.
	QueueBytes int `json:"queue_bytes"`
	// FaultBursts counts fault-state Good→Bad transitions inside the
	// window; FaultBad records the gate state at the window's close.
	FaultBursts int64 `json:"fault_bursts"`
	FaultBad    bool  `json:"fault_bad"`
}

// RateBps returns the window's delivery (goodput) rate over the stride;
// partial horizon windows are scaled by elapsed in Flush before export.
func (w *Window) RateBps(stride time.Duration) float64 {
	if stride <= 0 {
		return 0
	}
	return float64(w.DeliveredBytes) * 8 / stride.Seconds()
}

// MeanRTT returns the window's mean RTT sample, 0 when none landed.
func (w *Window) MeanRTT() time.Duration {
	if w.RTTCount == 0 {
		return 0
	}
	return time.Duration(w.RTTSum / w.RTTCount)
}

// FlowSeries is one flow's ring of closed windows plus the accumulating
// current window.
type FlowSeries struct {
	ring  []Window
	head  int // index of the oldest retained window
	count int // retained windows (<= cap(ring))
	// Evicted counts windows pushed out of a full ring — the series'
	// silent-truncation disclosure.
	Evicted int64

	cur      Window
	curSet   bool // cur has an assigned Start
	closed   int64
	minRTTNs int64

	faultBad bool // gate state carried across window boundaries
	cwnd     int  // last window, carried into empty windows
}

// Len returns the number of retained closed windows.
func (fs *FlowSeries) Len() int { return fs.count }

// At returns the i-th retained window, oldest first.
func (fs *FlowSeries) At(i int) *Window { return &fs.ring[(fs.head+i)%len(fs.ring)] }

// Windows copies the retained windows, oldest first.
func (fs *FlowSeries) Windows() []Window {
	out := make([]Window, fs.count)
	for i := range out {
		out[i] = *fs.At(i)
	}
	return out
}

// Closed returns the total number of windows closed over the run,
// including evicted ones.
func (fs *FlowSeries) Closed() int64 { return fs.closed }

// MinRTT returns the smallest RTT sample seen over the whole run (the
// propagation-delay estimate queueing delay is measured against), 0 when
// the flow produced no samples.
func (fs *FlowSeries) MinRTT() time.Duration { return time.Duration(fs.minRTTNs) }

func (fs *FlowSeries) push(w Window) {
	if len(fs.ring) == 0 {
		return
	}
	if fs.count == len(fs.ring) {
		fs.ring[fs.head] = w
		fs.head = (fs.head + 1) % len(fs.ring)
		fs.Evicted++
	} else {
		fs.ring[(fs.head+fs.count)%len(fs.ring)] = w
		fs.count++
	}
	fs.closed++
}

// OnWindow observes every closed window in stride order. elapsed is the
// window's true extent — the stride, except for a partial final window
// closed by Flush.
type OnWindow func(flow packet.FlowID, w *Window, elapsed time.Duration)

// Config parameterizes a Sampler.
type Config struct {
	// Stride is the window width (required, > 0).
	Stride time.Duration
	// MaxWindows caps each flow's ring; 0 selects DefaultMaxWindows.
	// Reserve may lower the actual allocation when the horizon needs less.
	MaxWindows int
	// OnWindow, when non-nil, observes each closed window (the online
	// detector's feed).
	OnWindow OnWindow
}

// DefaultMaxWindows bounds per-flow ring memory when no horizon is given:
// 10 minutes of 100 ms windows.
const DefaultMaxWindows = 6000

// Sampler folds obs events into per-flow windowed series. It is an
// obs.Probe; like every probe it is single-writer (wrap in
// obs.Synchronized to share across goroutines).
type Sampler struct {
	cfg   Config
	flows []FlowSeries
	// horizon caps ring pre-sizing once Reserve is called.
	reserved int
}

// NewSampler returns a sampler for nflows flows (flow IDs beyond nflows
// grow the slot table on first sight — an allocation, so size correctly
// for the zero-steady-state-allocation guarantee).
func NewSampler(cfg Config, nflows int) *Sampler {
	if cfg.Stride <= 0 {
		cfg.Stride = 100 * time.Millisecond
	}
	if cfg.MaxWindows <= 0 {
		cfg.MaxWindows = DefaultMaxWindows
	}
	return &Sampler{cfg: cfg, flows: make([]FlowSeries, nflows)}
}

// Stride returns the configured window width.
func (s *Sampler) Stride() time.Duration { return s.cfg.Stride }

// Reserve pre-sizes every flow's ring for a run of the given horizon, so
// the run itself never grows a buffer (the trace.Series.Reserve idiom).
// Call before the first event; flows discovered later get the same size.
func (s *Sampler) Reserve(horizon time.Duration) {
	n := int(horizon/s.cfg.Stride) + 2
	if n > s.cfg.MaxWindows {
		n = s.cfg.MaxWindows
	}
	s.reserved = n
	for i := range s.flows {
		if cap(s.flows[i].ring) < n {
			s.flows[i].ring = make([]Window, n)
		}
	}
}

func (s *Sampler) ringSize() int {
	if s.reserved > 0 {
		return s.reserved
	}
	return s.cfg.MaxWindows
}

// Flow returns the series of flow id, nil when the flow never appeared.
func (s *Sampler) Flow(id packet.FlowID) *FlowSeries {
	if int(id) >= len(s.flows) {
		return nil
	}
	return &s.flows[id]
}

// NumFlows returns the flow-slot count.
func (s *Sampler) NumFlows() int { return len(s.flows) }

// Emit implements obs.Probe: fold one event into its flow's current
// window, closing windows the event's timestamp has passed.
func (s *Sampler) Emit(e obs.Event) {
	if e.Flow < 0 {
		return
	}
	for int(e.Flow) >= len(s.flows) {
		s.flows = append(s.flows, FlowSeries{})
	}
	fs := &s.flows[e.Flow]
	if fs.ring == nil {
		fs.ring = make([]Window, s.ringSize())
	}
	s.advance(e.Flow, fs, e.At)
	w := &fs.cur
	switch e.Type {
	case obs.EvAckRecv:
		w.AckedBytes += int64(e.Bytes)
	case obs.EvDeliver:
		w.DeliveredPkts++
		w.DeliveredBytes += int64(e.Bytes)
	case obs.EvDrop:
		w.Drops++
		if e.Queue < 0 {
			w.GateDrops++
		}
	case obs.EvCwndUpdate:
		w.CwndBytes = e.Bytes
		fs.cwnd = e.Bytes
	case obs.EvRateSample:
		w.QueueBytes = e.Queue
	case obs.EvRTTSample:
		w.RTTSum += e.Seq
		w.RTTCount++
		if fs.minRTTNs == 0 || e.Seq < fs.minRTTNs {
			fs.minRTTNs = e.Seq
		}
	case obs.EvFaultState:
		if e.Seq != 0 {
			w.FaultBursts++
			fs.faultBad = true
		} else {
			fs.faultBad = false
		}
		w.FaultBad = fs.faultBad
	}
}

// advance closes every window that ends at or before at, in order, and
// opens the window containing at.
func (s *Sampler) advance(id packet.FlowID, fs *FlowSeries, at time.Duration) {
	stride := s.cfg.Stride
	if !fs.curSet {
		fs.cur.Start = (at / stride) * stride
		fs.cur.CwndBytes = fs.cwnd
		fs.cur.FaultBad = fs.faultBad
		fs.curSet = true
		return
	}
	for at >= fs.cur.Start+stride {
		s.close(id, fs, stride)
		next := fs.cur.Start + stride
		fs.cur = Window{Start: next, CwndBytes: fs.cwnd, FaultBad: fs.faultBad}
	}
}

func (s *Sampler) close(id packet.FlowID, fs *FlowSeries, elapsed time.Duration) {
	fs.cur.FaultBad = fs.faultBad
	if s.cfg.OnWindow != nil {
		s.cfg.OnWindow(id, &fs.cur, elapsed)
	}
	fs.push(fs.cur)
}

// Flush closes every flow's partial window at the horizon. A flow whose
// current window opened before the horizon closes it with the true
// elapsed extent, so delivery rates of short runs (shorter than one
// stride) stay honest. Idempotent for a given horizon.
func (s *Sampler) Flush(horizon time.Duration) {
	for i := range s.flows {
		fs := &s.flows[i]
		if !fs.curSet {
			continue
		}
		// Close any whole windows the run left behind, then the partial.
		s.advance(packet.FlowID(i), fs, horizon)
		elapsed := horizon - fs.cur.Start
		if elapsed <= 0 {
			fs.curSet = false
			continue
		}
		s.close(packet.FlowID(i), fs, elapsed)
		fs.curSet = false
	}
}
