package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestFamilySetExposition: registration order for families, sorted label
// values within one, unlabelled samples for the empty value.
func TestFamilySetExposition(t *testing.T) {
	s := NewFamilySet()
	jobs := s.Counter("svc_jobs_total", "Jobs completed per client.", "client")
	depth := s.Gauge("svc_queue_depth", "Queued jobs.", "")
	jobs.Add("zeta", 3)
	jobs.Add("alpha", 1)
	jobs.Add("alpha", 1)
	depth.Set("", 7)

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# HELP svc_jobs_total Jobs completed per client.\n" +
		"# TYPE svc_jobs_total counter\n" +
		"svc_jobs_total{client=\"alpha\"} 2\n" +
		"svc_jobs_total{client=\"zeta\"} 3\n" +
		"# HELP svc_queue_depth Queued jobs.\n" +
		"# TYPE svc_queue_depth gauge\n" +
		"svc_queue_depth 7\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestFamilyReregister: re-declaring a family returns the same one;
// changing its kind or label is a loud programming error.
func TestFamilyReregister(t *testing.T) {
	s := NewFamilySet()
	a := s.Counter("svc_x_total", "x", "client")
	if b := s.Counter("svc_x_total", "ignored", "client"); b != a {
		t.Fatal("re-registration returned a different family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting redeclaration did not panic")
		}
	}()
	s.Gauge("svc_x_total", "x", "client")
}

// TestFamilyForget: a forgotten label value leaves the exposition.
func TestFamilyForget(t *testing.T) {
	s := NewFamilySet()
	g := s.Gauge("svc_batch_inflight", "In-flight jobs per batch.", "batch")
	g.Set("b1", 4)
	g.Set("b2", 2)
	g.Forget("b1")
	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "b1") {
		t.Fatalf("forgotten sample still exposed:\n%s", b.String())
	}
	if g.Value("b2") != 2 {
		t.Fatal("Forget disturbed a sibling sample")
	}
}

// TestFamilyConcurrent: the multi-writer contract Registry refuses —
// increments from many goroutines while another renders the exposition.
func TestFamilyConcurrent(t *testing.T) {
	s := NewFamilySet()
	c := s.Counter("svc_ops_total", "ops", "client")
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := string(rune('a' + w%4))
			for i := 0; i < perWriter; i++ {
				c.Add(client, 1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := s.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	total := int64(0)
	for _, client := range []string{"a", "b", "c", "d"} {
		total += c.Value(client)
	}
	if total != writers*perWriter {
		t.Fatalf("lost updates: total %d, want %d", total, writers*perWriter)
	}
}
