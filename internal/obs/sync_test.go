package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistrySingleWriterOwnership documents and verifies the ownership
// contract stated on Registry: a probe is owned by the one goroutine
// driving its simulation, and handing the finished registry to another
// goroutine is safe as long as the handoff happens-before the reads (here
// via channel send). No locking is needed because the writer is done.
func TestRegistrySingleWriterOwnership(t *testing.T) {
	done := make(chan *Registry)
	go func() {
		r := NewRegistry()
		for seq := int64(0); seq < 1000; seq++ {
			r.Emit(Event{Type: EvEnqueue, Flow: 0, Seq: seq, Bytes: 1500, Queue: 1500})
			r.Emit(Event{Type: EvDeliver, Flow: 0, Seq: seq, Bytes: 1500})
		}
		done <- r // handoff: all writes happen-before this send
	}()
	r := <-done
	snap := r.Snapshot()
	if snap.Global.PacketsDelivered != 1000 {
		t.Errorf("delivered = %d, want 1000", snap.Global.PacketsDelivered)
	}
}

// TestSynchronizedConcurrentEmit is the guarded mode's race check: many
// goroutines emit through one Synchronized probe while a reader snapshots
// the wrapped registry under Do. Run under -race by the focused CI step.
func TestSynchronizedConcurrentEmit(t *testing.T) {
	r := NewRegistry()
	s := NewSynchronized(r)

	const writers, perWriter = 8, 500
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() { // concurrent reader, as -watch would run one
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Do(func(p Probe) {
				_ = p.(*Registry).Snapshot()
			})
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				s.Emit(Event{Type: EvDeliver, Flow: 0, Seq: int64(i),
					Bytes: 1500, At: time.Duration(w)})
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	var delivered int64
	s.Do(func(p Probe) {
		delivered = p.(*Registry).Snapshot().Global.PacketsDelivered
	})
	if want := int64(writers * perWriter); delivered != want {
		t.Errorf("delivered = %d, want %d", delivered, want)
	}
}

// TestSynchronizedNilProbe checks the nil-probe wrapper still serializes
// Do and drops Emit safely.
func TestSynchronizedNilProbe(t *testing.T) {
	s := NewSynchronized(nil)
	s.Emit(Event{Type: EvDeliver}) // must not panic
	called := false
	s.Do(func(p Probe) {
		if p != nil {
			t.Error("Do passed a non-nil probe for a nil wrapper")
		}
		called = true
	})
	if !called {
		t.Error("Do did not run fn")
	}
}
