package obs

import (
	"reflect"
	"testing"
)

func TestCohortsAggregates(t *testing.T) {
	r := NewRegistry()
	events := []Event{
		{Type: EvEnqueue, Flow: 0, Bytes: 1500, Queue: 1500},
		{Type: EvDeliver, Flow: 0, Bytes: 1500},
		{Type: EvAckRecv, Flow: 0, Seq: 1500, Bytes: 1500},
		{Type: EvEnqueue, Flow: 1, Bytes: 1500, Queue: 3000},
		{Type: EvDrop, Flow: 1, Bytes: 1500, Queue: -1},
		{Type: EvEnqueue, Flow: 2, Bytes: 1500, Queue: 4500},
	}
	for _, e := range events {
		r.Emit(e)
	}
	snap := r.Snapshot()
	snap.Flows[0].Cohort = "bbr"
	snap.Flows[1].Cohort = "vegas"
	snap.Flows[2].Cohort = "bbr"

	got := snap.Cohorts()
	if len(got) != 2 {
		t.Fatalf("cohorts = %d, want 2", len(got))
	}
	// Sorted by label.
	if got[0].Cohort != "bbr" || got[1].Cohort != "vegas" {
		t.Fatalf("order = [%s %s], want [bbr vegas]", got[0].Cohort, got[1].Cohort)
	}
	bbr, vegas := got[0], got[1]
	if bbr.Flows != 2 || vegas.Flows != 1 {
		t.Errorf("flow counts = %d/%d, want 2/1", bbr.Flows, vegas.Flows)
	}
	if bbr.Sum.PacketsEnqueued != 2 || bbr.Sum.PacketsDelivered != 1 ||
		bbr.Sum.BytesAcked != 1500 || bbr.Sum.AcksReceived != 1 {
		t.Errorf("bbr sum = %+v", bbr.Sum)
	}
	if vegas.Sum.PacketsDropped != 1 || vegas.Sum.DroppedAtGate != 1 {
		t.Errorf("vegas sum = %+v", vegas.Sum)
	}
	// Identity fields stay empty in sums.
	if bbr.Sum.Name != "" {
		t.Errorf("sum Name = %q, want empty", bbr.Sum.Name)
	}
}

func TestCohortsEmptyLabelAndStability(t *testing.T) {
	r := NewRegistry()
	r.Emit(Event{Type: EvDeliver, Flow: 0, Bytes: 1500})
	r.Emit(Event{Type: EvDeliver, Flow: 1, Bytes: 1500})
	snap := r.Snapshot()
	snap.Flows[1].Cohort = "zz"

	a := snap.Cohorts()
	b := snap.Cohorts()
	if !reflect.DeepEqual(a, b) {
		t.Error("Cohorts is not deterministic across calls")
	}
	if a[0].Cohort != "" || a[1].Cohort != "zz" {
		t.Fatalf("order = [%q %q], want empty label first", a[0].Cohort, a[1].Cohort)
	}
	if a[0].Flows != 1 || a[0].Sum.PacketsDelivered != 1 {
		t.Errorf("uncohorted group = %+v", a[0])
	}
}

func TestCohortsEmptySnapshot(t *testing.T) {
	var snap Snapshot
	if got := snap.Cohorts(); len(got) != 0 {
		t.Errorf("Cohorts of empty snapshot = %v, want none", got)
	}
}
