package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"starvation/internal/packet"
)

// jsonEvent is the JSONL wire form of an Event. Timestamps are integer
// nanoseconds so a write/read round trip is exact.
type jsonEvent struct {
	Type  string `json:"type"`
	TNs   int64  `json:"t_ns"`
	Flow  int    `json:"flow"`
	Seq   int64  `json:"seq"`
	Bytes int    `json:"bytes"`
	Queue int    `json:"queue"`
	Retx  bool   `json:"retx,omitempty"`
	Dup   bool   `json:"dup,omitempty"`
	Hop   uint8  `json:"hop,omitempty"`
}

// JSONLWriter is a Probe that streams events as one JSON object per line,
// buffered. Errors are sticky: the first write failure is remembered and
// later Emits become no-ops, so the simulation hot path never has to
// handle I/O errors inline. Check Close (or Err) at the end of the run.
type JSONLWriter struct {
	bw  *bufio.Writer
	err error
}

// NewJSONLWriter wraps w in a buffered event writer. The caller retains
// ownership of w (Close flushes but does not close it).
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Emit implements Probe.
func (jw *JSONLWriter) Emit(e Event) {
	if jw.err != nil {
		return
	}
	line, err := json.Marshal(jsonEvent{
		Type:  e.Type.String(),
		TNs:   int64(e.At),
		Flow:  int(e.Flow),
		Seq:   e.Seq,
		Bytes: e.Bytes,
		Queue: e.Queue,
		Retx:  e.Retx,
		Dup:   e.Dup,
		Hop:   e.Hop,
	})
	if err != nil {
		jw.err = err
		return
	}
	if _, err := jw.bw.Write(line); err != nil {
		jw.err = err
		return
	}
	jw.err = jw.bw.WriteByte('\n')
}

// Err returns the first error encountered while writing, if any.
func (jw *JSONLWriter) Err() error { return jw.err }

// Flush pushes buffered events to the underlying writer and returns the
// first error seen, without ending the stream. Long-running consumers
// (the -watch live view, batch drivers checkpointing mid-run) call it
// periodically so an export failure surfaces while the run can still
// report it as a structured error instead of dying silently at Close.
func (jw *JSONLWriter) Flush() error {
	if err := jw.bw.Flush(); err != nil && jw.err == nil {
		jw.err = err
	}
	return jw.err
}

// Close flushes buffered events and returns the first error seen.
func (jw *JSONLWriter) Close() error { return jw.Flush() }

// ReadJSONL parses an event trace written by JSONLWriter. Blank lines are
// skipped; any malformed line aborts with an error naming its number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", lineNo, err)
		}
		t, ok := ParseEventType(je.Type)
		if !ok {
			return nil, fmt.Errorf("obs: jsonl line %d: unknown event type %q", lineNo, je.Type)
		}
		out = append(out, Event{
			Type:  t,
			At:    time.Duration(je.TNs),
			Flow:  packet.FlowID(je.Flow),
			Seq:   je.Seq,
			Bytes: je.Bytes,
			Queue: je.Queue,
			Retx:  je.Retx,
			Dup:   je.Dup,
			Hop:   je.Hop,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading jsonl: %w", err)
	}
	return out, nil
}
