package obs

import "sort"

// CohortCounters aggregates the FlowCounters of every flow sharing a
// cohort label. Population experiments label each flow with its cohort
// (typically the CCA name, or an RTT class) so a 1000-flow snapshot
// summarizes into a handful of rows instead of a thousand.
type CohortCounters struct {
	// Cohort is the shared label; flows with an empty label aggregate
	// under "" (rendered as "uncohorted" by exporters).
	Cohort string `json:"cohort"`
	// Flows is the number of flows aggregated.
	Flows int `json:"flows"`
	// Sum holds the field-wise sums of the member flows' counters. Name
	// is left empty (it has no meaningful sum).
	Sum FlowCounters `json:"sum"`
}

// Cohorts folds the per-flow counters into per-cohort sums, sorted by
// cohort label so the output is stable for diffing and hashing.
func (s *Snapshot) Cohorts() []CohortCounters {
	byLabel := make(map[string]*CohortCounters)
	order := make([]string, 0, 4)
	for i := range s.Flows {
		f := &s.Flows[i]
		c, ok := byLabel[f.Cohort]
		if !ok {
			c = &CohortCounters{Cohort: f.Cohort}
			byLabel[f.Cohort] = c
			order = append(order, f.Cohort)
		}
		c.Flows++
		addCounters(&c.Sum, f)
	}
	sort.Strings(order)
	out := make([]CohortCounters, 0, len(order))
	for _, label := range order {
		out = append(out, *byLabel[label])
	}
	return out
}

// addCounters accumulates src's numeric fields into dst, leaving the
// identity fields (Name, Cohort) alone.
func addCounters(dst, src *FlowCounters) {
	dst.PacketsSent += src.PacketsSent
	dst.PacketsEnqueued += src.PacketsEnqueued
	dst.PacketsDropped += src.PacketsDropped
	dst.PacketsMarked += src.PacketsMarked
	dst.PacketsDelivered += src.PacketsDelivered
	dst.Retransmits += src.Retransmits
	dst.AcksReceived += src.AcksReceived
	dst.PacketsDequeued += src.PacketsDequeued
	dst.DroppedAtGate += src.DroppedAtGate
	dst.PacketsDuplicated += src.PacketsDuplicated
	dst.PacketsReordered += src.PacketsReordered
	dst.BytesSent += src.BytesSent
	dst.BytesEnqueued += src.BytesEnqueued
	dst.BytesAcked += src.BytesAcked
	dst.BytesDelivered += src.BytesDelivered
	dst.CwndUpdates += src.CwndUpdates
	dst.RateSamples += src.RateSamples
}
