// Package obs is the emulator's observability layer: a structured
// packet-lifecycle event stream, a counters/gauges registry, and exporters
// (JSONL event traces, Prometheus-text counter summaries).
//
// Every network element accepts an optional Probe and emits one Event per
// lifecycle transition of a packet (enqueue, drop, mark, dequeue, deliver,
// ack receipt) plus per-flow control-state samples (cwnd updates, rate
// samples). A nil Probe disables instrumentation entirely: call sites guard
// with a nil check and Event is a value type, so the disabled path costs one
// predictable branch and zero allocations (BenchmarkNoopProbe in
// internal/network bounds the enabled-path overhead).
//
// The Registry is a Probe that folds the event stream into per-flow and
// global counters; internal/network also assembles the same Snapshot shape
// directly from element counters at the end of every run, so results carry
// a registry snapshot even when no probe was installed. The round-trip
// tests reconcile the two constructions.
package obs

import (
	"fmt"
	"time"

	"starvation/internal/packet"
)

// EventType enumerates the packet-lifecycle transitions and control-state
// samples the emulator reports.
type EventType uint8

const (
	// EvEnqueue: the bottleneck accepted a packet into its FIFO. Queue is
	// the depth in bytes after the packet was added.
	EvEnqueue EventType = iota
	// EvDrop: a packet was discarded, either by the bottleneck's drop-tail
	// check (Queue is the depth that rejected it) or by a random-loss gate
	// (Queue is -1: the gate sits before the queue).
	EvDrop
	// EvMark: the bottleneck set the ECN congestion-experienced codepoint.
	// Emitted in addition to the EvEnqueue of the same packet.
	EvMark
	// EvDequeue: a packet finished serialization and left the bottleneck.
	// Queue is the depth after removal.
	EvDequeue
	// EvDeliver: the packet arrived at the receiver endpoint.
	EvDeliver
	// EvAckRecv: the sender processed an acknowledgment. Seq is the
	// cumulative ACK point, Bytes the newly acknowledged payload.
	EvAckRecv
	// EvCwndUpdate: the flow's congestion window changed; Bytes is the new
	// window in bytes.
	EvCwndUpdate
	// EvRateSample: periodic per-flow throughput sample; Seq is the
	// windowed delivery rate in bit/s, Queue the bottleneck depth.
	EvRateSample
	// EvDup: a duplication element emitted an extra copy of a packet. The
	// copy's own lifecycle events (enqueue/drop/deliver) carry Dup=true.
	EvDup
	// EvReorder: a reordering element deferred a packet, letting packets
	// sent after it overtake. Queue is -1 (the element sits before the
	// bottleneck queue).
	EvReorder
	// EvLinkRate: the bottleneck's drain rate changed. Seq is the new rate
	// in bit/s, Queue the depth at the change, and Flow is -1: the event is
	// global, not owned by any flow.
	EvLinkRate
	// EvRTTSample: the sender took a valid RTT measurement (Karn's rule).
	// Seq is the RTT in nanoseconds. Emitted only on the instrumented path;
	// the ACK-paced cadence makes it the raw material for windowed
	// RTT/queueing-delay series.
	EvRTTSample
	// EvFaultState: a fault element's internal state changed. Seq is 1 when
	// a Gilbert–Elliott gate enters its Bad (bursty-loss) state and 0 when
	// it returns to Good, so detectors can attribute starvation onsets to
	// co-occurring loss bursts.
	EvFaultState
	// EvPhase: a run-phase span began. Seq indexes the phase (0 setup,
	// 1 warmup, 2 measure) and Flow is -1: phases are properties of the
	// run, not of any flow. Emitted from the trace-sampling tick, so
	// enabling phases never schedules additional simulator events.
	EvPhase
	// EvStarveOnset: the online detector opened a starvation episode for
	// the flow. At is the onset (start of the first starved window of the
	// streak); Seq is the windowed delivery rate in bit/s at onset.
	EvStarveOnset
	// EvStarveEnd: the detector closed the flow's open episode. At is the
	// end of the episode; Seq is its duration in nanoseconds.
	EvStarveEnd

	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	"enqueue", "drop", "mark", "dequeue", "deliver",
	"ack_recv", "cwnd_update", "rate_sample",
	"dup", "reorder", "link_rate",
	"rtt_sample", "fault_state", "phase",
	"starve_onset", "starve_end",
}

// String returns the stable wire name of the event type.
func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return fmt.Sprintf("event(%d)", uint8(t))
}

// ParseEventType inverts String; ok is false for unknown names.
func ParseEventType(s string) (EventType, bool) {
	for i, n := range eventTypeNames {
		if n == s {
			return EventType(i), true
		}
	}
	return 0, false
}

// Run phases carried in EvPhase's Seq payload.
const (
	// PhaseSetup: topology assembly; spans only the instant before the
	// first event (flows may still be waiting on StartAt).
	PhaseSetup = iota
	// PhaseWarmup: the run before the steady-state window opens.
	PhaseWarmup
	// PhaseMeasure: the steady-state statistics window.
	PhaseMeasure

	NumPhases
)

// PhaseName returns the stable name of a run phase index.
func PhaseName(p int) string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseWarmup:
		return "warmup"
	case PhaseMeasure:
		return "measure"
	}
	return fmt.Sprintf("phase(%d)", p)
}

// Event is one observation. It is a plain value: emitting one never
// allocates, and probes may retain copies freely.
type Event struct {
	Type EventType
	// At is the virtual timestamp of the observation.
	At time.Duration
	// Flow is the owning flow.
	Flow packet.FlowID
	// Seq is the event's sequence/offset payload: the packet's first byte
	// offset for lifecycle events, the cumulative ACK for EvAckRecv, and
	// the rate in bit/s for EvRateSample.
	Seq int64
	// Bytes is the byte count involved: segment size for lifecycle events,
	// newly acked payload for EvAckRecv, the new window for EvCwndUpdate.
	Bytes int
	// Queue is the bottleneck queue depth in bytes observed with the event
	// (-1 when the emitting element has no queue view, e.g. a loss gate).
	Queue int
	// Retx marks events about retransmitted segments.
	Retx bool
	// Dup marks events about duplicate copies injected by a duplication
	// element. Registries count such enqueues and drops into queue-level
	// counters but not into PacketsSent, which tracks sender transmissions.
	Dup bool
	// Hop is the packet's position on a multi-link path when the event was
	// emitted: 0 at the first bottleneck, 1 after it, and so on. Registries
	// count hop > 0 enqueues and drops into queue-level counters but not
	// into PacketsSent (the packet was transmitted once, at hop 0).
	Hop uint8
}

// Probe consumes the event stream. Implementations must be cheap: probes
// run inline in the simulation hot path. A nil Probe means disabled.
type Probe interface {
	Emit(e Event)
}

// Nop is an enabled probe that discards every event. It exists to measure
// the pure dispatch overhead of instrumentation (BenchmarkNoopProbe).
type Nop struct{}

// Emit implements Probe.
func (Nop) Emit(Event) {}

type multiProbe []Probe

func (m multiProbe) Emit(e Event) {
	for _, p := range m {
		p.Emit(e)
	}
}

// Multi fans one event stream out to several probes. Nil members are
// dropped; Multi of zero live probes returns nil (disabled), of one
// returns it unwrapped.
func Multi(probes ...Probe) Probe {
	live := make(multiProbe, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
