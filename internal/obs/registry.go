package obs

import "starvation/internal/packet"

// FlowCounters is the per-flow section of a Snapshot. All fields are
// derivable from the event stream: PacketsSent is enqueues plus drops
// (every transmitted segment either enters the bottleneck or is discarded
// on the way in), so an event-fed Registry and the emulator's own element
// counters agree exactly.
type FlowCounters struct {
	Name string `json:"name"`
	// Cohort labels the flow's population cohort (e.g. its CCA name in a
	// mixed-CCA experiment). It travels via the emulator like Name, not via
	// events; Snapshot.Cohorts aggregates per-flow counters under it.
	Cohort string `json:"cohort,omitempty"`

	PacketsSent      int64 `json:"packets_sent"`
	PacketsEnqueued  int64 `json:"packets_enqueued"`
	PacketsDropped   int64 `json:"packets_dropped"`
	PacketsMarked    int64 `json:"packets_marked"`
	PacketsDelivered int64 `json:"packets_delivered"`
	Retransmits      int64 `json:"retransmits"`
	AcksReceived     int64 `json:"acks_received"`

	// Fault-element counters. PacketsDropped already includes gate drops;
	// DroppedAtGate isolates the pre-queue share (Bernoulli and
	// Gilbert–Elliott gates). PacketsDuplicated counts extra copies created
	// by a duplicator (their enqueues/drops are excluded from PacketsSent);
	// PacketsReordered counts deliberate deferrals by a reorder element.
	PacketsDequeued   int64 `json:"packets_dequeued"`
	DroppedAtGate     int64 `json:"dropped_at_gate"`
	PacketsDuplicated int64 `json:"packets_duplicated"`
	PacketsReordered  int64 `json:"packets_reordered"`

	BytesSent      int64 `json:"bytes_sent"`
	BytesEnqueued  int64 `json:"bytes_enqueued"`
	BytesAcked     int64 `json:"bytes_acked"`
	BytesDelivered int64 `json:"bytes_delivered"`

	CwndUpdates int64 `json:"cwnd_updates"`
	RateSamples int64 `json:"rate_samples"`
}

// Counters is the global section of a Snapshot.
type Counters struct {
	PacketsEnqueued  int64 `json:"packets_enqueued"`
	PacketsDequeued  int64 `json:"packets_dequeued"`
	PacketsDropped   int64 `json:"packets_dropped"`
	PacketsMarked    int64 `json:"packets_marked"`
	PacketsDelivered int64 `json:"packets_delivered"`
	AcksReceived     int64 `json:"acks_received"`
	BytesEnqueued    int64 `json:"bytes_enqueued"`
	MaxQueueBytes    int64 `json:"max_queue_bytes"`

	PacketsDuplicated int64 `json:"packets_duplicated"`
	LinkRateChanges   int64 `json:"link_rate_changes"`

	// Event-loop gauges, filled only by the emulator's end-of-run snapshot
	// (the packet event stream does not carry them).
	SimEventsScheduled uint64 `json:"sim_events_scheduled"`
	SimEventsFired     uint64 `json:"sim_events_fired"`
}

// Snapshot is a point-in-time copy of the registry: global counters plus
// one FlowCounters per flow, indexed by FlowID.
type Snapshot struct {
	Global Counters       `json:"global"`
	Flows  []FlowCounters `json:"flows"`
}

// Flow returns the counters for id, growing the slice as needed so
// out-of-order flow discovery is harmless.
func (s *Snapshot) Flow(id packet.FlowID) *FlowCounters {
	for int(id) >= len(s.Flows) {
		s.Flows = append(s.Flows, FlowCounters{})
	}
	return &s.Flows[id]
}

// Registry is a Probe that folds the event stream into counters.
//
// Ownership: a Registry is single-writer, like the simulator feeding it —
// Emit, Snapshot, and Cohorts must all be called from the goroutine that
// owns the run (TestRegistrySingleWriterOwnership pins this contract).
// Concurrent sweeps must give each run its own Registry (they are cheap)
// or share one through a Synchronized wrapper; handing one bare Registry
// to several emitting goroutines corrupts the counters and races the
// cohort aggregation's map walk.
type Registry struct {
	snap Snapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Emit implements Probe.
func (r *Registry) Emit(e Event) {
	g := &r.snap.Global
	if e.Flow < 0 {
		// Global events carry no owning flow; handle them before the
		// per-flow lookup (Snapshot.Flow would panic on a negative id).
		if e.Type == EvLinkRate {
			g.LinkRateChanges++
		}
		return
	}
	f := r.snap.Flow(e.Flow)
	switch e.Type {
	case EvEnqueue:
		if !e.Dup && e.Hop == 0 {
			f.PacketsSent++
			f.BytesSent += int64(e.Bytes)
			if e.Retx {
				f.Retransmits++
			}
		}
		f.PacketsEnqueued++
		f.BytesEnqueued += int64(e.Bytes)
		g.PacketsEnqueued++
		g.BytesEnqueued += int64(e.Bytes)
		if q := int64(e.Queue); q > g.MaxQueueBytes {
			g.MaxQueueBytes = q
		}
	case EvDrop:
		if !e.Dup && e.Hop == 0 {
			f.PacketsSent++
			f.BytesSent += int64(e.Bytes)
			if e.Retx {
				f.Retransmits++
			}
		}
		f.PacketsDropped++
		if e.Queue < 0 {
			f.DroppedAtGate++
		}
		g.PacketsDropped++
	case EvMark:
		f.PacketsMarked++
		g.PacketsMarked++
	case EvDequeue:
		f.PacketsDequeued++
		g.PacketsDequeued++
	case EvDup:
		f.PacketsDuplicated++
		g.PacketsDuplicated++
	case EvReorder:
		f.PacketsReordered++
	case EvDeliver:
		f.PacketsDelivered++
		f.BytesDelivered += int64(e.Bytes)
		g.PacketsDelivered++
	case EvAckRecv:
		f.AcksReceived++
		f.BytesAcked += int64(e.Bytes)
		g.AcksReceived++
	case EvCwndUpdate:
		f.CwndUpdates++
	case EvRateSample:
		f.RateSamples++
	}
}

// Reset zeroes every counter while keeping the per-flow slice capacity, so
// a registry recycled across runs (session reuse) is indistinguishable
// from a fresh one without reallocating. Single-writer, like Emit.
func (r *Registry) Reset() {
	r.snap.Global = Counters{}
	r.snap.Flows = r.snap.Flows[:0]
}

// Snapshot returns a deep copy of the current counters.
func (r *Registry) Snapshot() Snapshot {
	out := r.snap
	out.Flows = append([]FlowCounters(nil), r.snap.Flows...)
	return out
}
