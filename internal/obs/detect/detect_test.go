package detect

import (
	"reflect"
	"testing"
	"time"

	"starvation/internal/metrics"
	"starvation/internal/obs"
	"starvation/internal/obs/timeseries"
)

const (
	stride = 100 * time.Millisecond
	fair   = 1e6 // 1 Mbit/s fair share
)

// feed sends a sequence of windowed shares (fractions of fair share) to
// the detector as consecutive windows of flow 0.
func feed(d *Detector, shares ...float64) {
	for i, sh := range shares {
		w := timeseries.Window{
			Start:          time.Duration(i) * stride,
			DeliveredBytes: int64(sh * fair / 8 * stride.Seconds()),
		}
		d.Observe(0, &w, stride)
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := New(Config{FairShare: fair}, 1)
	if d.Epsilon() != metrics.DefaultStarvationEpsilon {
		t.Errorf("epsilon = %g, want the population default %g",
			d.Epsilon(), metrics.DefaultStarvationEpsilon)
	}
	if d.FairShare() != fair {
		t.Errorf("fair share = %g, want %g", d.FairShare(), fair)
	}
}

func TestDetectorOpensWithHysteresis(t *testing.T) {
	d := New(Config{FairShare: fair}, 1)
	d.Label(0, "cubic0", "cubic")
	// One starved window is noise: no episode.
	feed(d, 0.5, 0.02, 0.5, 0.5)
	d.Flush(400 * time.Millisecond)
	if n := len(d.Episodes()); n != 0 {
		t.Fatalf("episodes after a single noisy window = %d, want 0", n)
	}

	// Two consecutive starved windows open; two healthy close.
	d2 := New(Config{FairShare: fair}, 1)
	d2.Label(0, "cubic0", "cubic")
	feed(d2, 0.5, 0.02, 0.01, 0.04, 0.5, 0.5)
	eps := d2.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	ep := eps[0]
	if ep.Name != "cubic0" || ep.Cohort != "cubic" {
		t.Errorf("labels = %q/%q, want cubic0/cubic", ep.Name, ep.Cohort)
	}
	// Backdated to the first starved window (window 1), ending at the
	// start of the first healthy window (window 4).
	if ep.Onset != stride || ep.End != 4*stride {
		t.Errorf("extent = [%v, %v), want [%v, %v)", ep.Onset, ep.End, stride, 4*stride)
	}
	if ep.Windows != 3 {
		t.Errorf("windows = %d, want 3", ep.Windows)
	}
	if ep.MinShare != 0.01 {
		t.Errorf("min share = %g, want 0.01", ep.MinShare)
	}
	wantMean := (0.02 + 0.01 + 0.04) / 3
	if diff := ep.MeanShare - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean share = %g, want %g", ep.MeanShare, wantMean)
	}
	wantSev := 1 - 0.01/d2.Epsilon()
	if ep.Severity != wantSev {
		t.Errorf("severity = %g, want %g", ep.Severity, wantSev)
	}
	if ep.OpenAtEnd {
		t.Error("episode closed by recovery marked OpenAtEnd")
	}
}

func TestDetectorSingleHealthyWindowDoesNotSplit(t *testing.T) {
	d := New(Config{FairShare: fair}, 1)
	// starved, starved, healthy blip, starved, starved — one episode.
	feed(d, 0.02, 0.02, 0.5, 0.02, 0.02)
	d.Flush(500 * time.Millisecond)
	eps := d.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1 (blip must not split)", len(eps))
	}
	if eps[0].Onset != 0 || !eps[0].OpenAtEnd {
		t.Errorf("episode = %+v, want onset 0 and open at horizon", eps[0])
	}
}

func TestDetectorFlushSealsOpenEpisode(t *testing.T) {
	d := New(Config{FairShare: fair}, 1)
	feed(d, 0.5, 0.0, 0.0, 0.0)
	d.Flush(400 * time.Millisecond)
	eps := d.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	ep := eps[0]
	if !ep.OpenAtEnd || ep.End != 400*time.Millisecond {
		t.Errorf("episode = %+v, want open at 400ms horizon", ep)
	}
	if ep.Severity != 1 {
		t.Errorf("severity of zero-delivery episode = %g, want 1", ep.Severity)
	}
	if ep.Duration() != 300*time.Millisecond {
		t.Errorf("duration = %v, want 300ms", ep.Duration())
	}
}

func TestDetectorFaultAttribution(t *testing.T) {
	d := New(Config{FairShare: fair}, 1)
	windows := []timeseries.Window{
		{Start: 0, DeliveredBytes: 100_000},                    // healthy
		{Start: stride, DeliveredBytes: 0, FaultBad: true},     // onset, in burst
		{Start: 2 * stride, DeliveredBytes: 0, FaultBursts: 2}, // two more bursts
		{Start: 3 * stride, DeliveredBytes: 100_000},           // recovery
		{Start: 4 * stride, DeliveredBytes: 100_000},           //
	}
	for i := range windows {
		d.Observe(0, &windows[i], stride)
	}
	eps := d.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	if !eps[0].FaultAtOnset {
		t.Error("FaultAtOnset not set for an onset window inside a burst")
	}
	if eps[0].FaultBursts != 2 {
		t.Errorf("fault bursts = %d, want 2", eps[0].FaultBursts)
	}
}

func TestDetectorEmitsEpisodeEvents(t *testing.T) {
	rec := &recordingProbe{}
	d := New(Config{FairShare: fair, Probe: rec}, 1)
	feed(d, 0.02, 0.02, 0.5, 0.5)
	if len(rec.events) != 2 {
		t.Fatalf("events = %d, want onset + end", len(rec.events))
	}
	on, end := rec.events[0], rec.events[1]
	if on.Type != obs.EvStarveOnset || on.At != 0 || on.Flow != 0 {
		t.Errorf("onset event = %+v", on)
	}
	if end.Type != obs.EvStarveEnd || end.At != 2*stride {
		t.Errorf("end event = %+v", end)
	}
	if end.Seq != int64(2*stride) {
		t.Errorf("end duration = %d, want %d", end.Seq, int64(2*stride))
	}
}

func TestDetectorInactiveWithoutFairShare(t *testing.T) {
	d := New(Config{}, 1)
	feed(d, 0, 0, 0, 0)
	d.Flush(400 * time.Millisecond)
	if n := len(d.Episodes()); n != 0 {
		t.Errorf("detector without fair share produced %d episodes", n)
	}
}

func TestDetectorGrowsFlowTable(t *testing.T) {
	d := New(Config{FairShare: fair}, 1)
	w := timeseries.Window{Start: 0}
	d.Observe(7, &w, stride)
	d.Observe(7, &timeseries.Window{Start: stride}, stride)
	d.Flush(2 * stride)
	eps := d.Episodes()
	if len(eps) != 1 || eps[0].Flow != 7 {
		t.Fatalf("episodes = %+v, want one for grown flow 7", eps)
	}
}

func TestDetectorDeterministic(t *testing.T) {
	run := func() []Episode {
		d := New(Config{FairShare: fair}, 2)
		d.Label(0, "a", "ca")
		d.Label(1, "b", "cb")
		shares := []float64{0.5, 0.02, 0.0, 0.03, 0.5, 0.5, 0.01, 0.01}
		for i, sh := range shares {
			w := timeseries.Window{
				Start:          time.Duration(i) * stride,
				DeliveredBytes: int64(sh * fair / 8 * stride.Seconds()),
			}
			d.Observe(0, &w, stride)
			w2 := w
			d.Observe(1, &w2, stride)
		}
		d.Flush(800 * time.Millisecond)
		return d.Episodes()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("episode logs differ across identical runs:\n%v\n%v", a, b)
	}
	if len(a) != 4 {
		t.Errorf("episodes = %d, want 2 per flow", len(a))
	}
}

type recordingProbe struct{ events []obs.Event }

func (r *recordingProbe) Emit(e obs.Event) { r.events = append(r.events, e) }
