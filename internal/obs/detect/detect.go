// Package detect turns windowed per-flow delivery rates into structured
// starvation episodes, online: while the run is still going, each flow's
// windowed share of fair share is compared against the same ε-threshold
// the population statistics use (metrics.DefaultStarvationEpsilon), and
// contiguous starved stretches become Episode records with onset,
// duration, severity, and the co-occurring fault state of the flow's
// impairment elements.
//
// The detector is fed by a timeseries.Sampler's OnWindow callback and is
// observation-only like everything in the obs layer: it schedules
// nothing, draws no randomness, and only appends to its episode log (an
// amortized allocation off the per-packet path). Episode boundaries are
// announced as first-class obs events (EvStarveOnset/EvStarveEnd) on an
// optional downstream probe, so a streaming JSONL trace carries the
// verdicts inline with the packet lifecycle that produced them.
package detect

import (
	"fmt"
	"time"

	"starvation/internal/metrics"
	"starvation/internal/obs"
	"starvation/internal/obs/timeseries"
	"starvation/internal/packet"
)

// Episode is one contiguous starvation stretch of one flow.
type Episode struct {
	// Flow identifies the starved flow; Name/Cohort are its labels.
	Flow   packet.FlowID `json:"flow"`
	Name   string        `json:"name,omitempty"`
	Cohort string        `json:"cohort,omitempty"`
	// Onset is the start of the first starved window of the streak; End
	// is the start of the first healthy window after it (or the horizon
	// when the episode was still open — see OpenAtEnd).
	Onset time.Duration `json:"onset_ns"`
	End   time.Duration `json:"end_ns"`
	// Windows counts the starved windows folded into the episode.
	Windows int `json:"windows"`
	// MinShare/MeanShare summarize the flow's windowed share of fair
	// share while starved (both < ε by construction).
	MinShare  float64 `json:"min_share"`
	MeanShare float64 `json:"mean_share"`
	// Severity is how far below the ε-threshold the flow fell at its
	// worst, 1 - MinShare/ε, in (0, 1]: 1 means zero delivery.
	Severity float64 `json:"severity"`
	// FaultAtOnset records whether the flow's fault gate was in its
	// bursty (Bad) state — or entered it — during the onset window;
	// FaultBursts counts loss bursts that began while the episode ran.
	FaultAtOnset bool  `json:"fault_at_onset,omitempty"`
	FaultBursts  int64 `json:"fault_bursts,omitempty"`
	// OpenAtEnd marks an episode truncated by the horizon rather than
	// closed by recovery.
	OpenAtEnd bool `json:"open_at_end,omitempty"`
}

// Duration returns the episode's extent.
func (ep *Episode) Duration() time.Duration { return ep.End - ep.Onset }

// Config parameterizes a Detector.
type Config struct {
	// FairShare is the per-flow fair share in bit/s (capacity / N);
	// required > 0 for the detector to act.
	FairShare float64
	// Epsilon is the starvation threshold as a fraction of FairShare
	// (<= 0 selects metrics.DefaultStarvationEpsilon).
	Epsilon float64
	// OpenAfter is the number of consecutive starved windows before an
	// episode opens; CloseAfter the number of healthy windows before it
	// closes. Both default to 2 — one-window hysteresis in each
	// direction, so a single noisy window neither opens nor splits an
	// episode.
	OpenAfter, CloseAfter int
	// Probe, when non-nil, receives EvStarveOnset/EvStarveEnd events as
	// episodes open and close.
	Probe obs.Probe
}

type detFlow struct {
	name, cohort string

	starvedRun, healthyRun int
	open                   bool
	cur                    Episode
	// pend accumulates the not-yet-confirmed starved streak so the
	// episode, once opened, is backdated to the streak's first window.
	pend Episode
}

// Detector consumes closed windows and maintains per-flow episode state.
// Single-writer, like every probe-layer type.
type Detector struct {
	cfg      Config
	flows    []detFlow
	episodes []Episode
}

// New returns a detector; nflows pre-sizes the flow table.
func New(cfg Config, nflows int) *Detector {
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = metrics.DefaultStarvationEpsilon
	}
	if cfg.OpenAfter <= 0 {
		cfg.OpenAfter = 2
	}
	if cfg.CloseAfter <= 0 {
		cfg.CloseAfter = 2
	}
	return &Detector{cfg: cfg, flows: make([]detFlow, nflows)}
}

// Epsilon returns the active threshold.
func (d *Detector) Epsilon() float64 { return d.cfg.Epsilon }

// FairShare returns the configured per-flow fair share in bit/s.
func (d *Detector) FairShare() float64 { return d.cfg.FairShare }

// Label names a flow for its episode records. Call during setup.
func (d *Detector) Label(id packet.FlowID, name, cohort string) {
	d.grow(id)
	d.flows[id].name, d.flows[id].cohort = name, cohort
}

func (d *Detector) grow(id packet.FlowID) {
	for int(id) >= len(d.flows) {
		d.flows = append(d.flows, detFlow{})
	}
}

// Observe folds one closed window (a timeseries.OnWindow).
func (d *Detector) Observe(flow packet.FlowID, w *timeseries.Window, elapsed time.Duration) {
	if d.cfg.FairShare <= 0 || elapsed <= 0 {
		return
	}
	d.grow(flow)
	f := &d.flows[flow]
	share := float64(w.DeliveredBytes) * 8 / elapsed.Seconds() / d.cfg.FairShare
	if share < d.cfg.Epsilon {
		d.starvedWindow(flow, f, w, share, elapsed)
	} else {
		d.healthyWindow(flow, f, w)
	}
}

func (d *Detector) starvedWindow(flow packet.FlowID, f *detFlow, w *timeseries.Window, share float64, elapsed time.Duration) {
	f.healthyRun = 0
	if f.open {
		fold(&f.cur, w, share)
		return
	}
	if f.starvedRun == 0 {
		f.pend = Episode{
			Flow: flow, Name: f.name, Cohort: f.cohort,
			Onset: w.Start, MinShare: share,
			FaultAtOnset: w.FaultBad || w.FaultBursts > 0,
		}
		f.pend.MeanShare = 0
	}
	fold(&f.pend, w, share)
	f.starvedRun++
	if f.starvedRun >= d.cfg.OpenAfter {
		f.open = true
		f.cur = f.pend
		if d.cfg.Probe != nil {
			d.cfg.Probe.Emit(obs.Event{Type: obs.EvStarveOnset, At: f.cur.Onset,
				Flow: flow, Seq: int64(share * d.cfg.FairShare), Queue: -1})
		}
	}
}

func (d *Detector) healthyWindow(flow packet.FlowID, f *detFlow, w *timeseries.Window) {
	f.starvedRun = 0
	if !f.open {
		return
	}
	if f.healthyRun == 0 {
		// Tentative end: the start of this first healthy window.
		f.cur.End = w.Start
	}
	f.healthyRun++
	if f.healthyRun >= d.cfg.CloseAfter {
		d.seal(flow, f, false)
	}
}

// fold accumulates one starved window into ep.
func fold(ep *Episode, w *timeseries.Window, share float64) {
	ep.Windows++
	if share < ep.MinShare {
		ep.MinShare = share
	}
	// MeanShare holds the running sum until seal divides it.
	ep.MeanShare += share
	ep.FaultBursts += w.FaultBursts
}

// seal finalizes a flow's open episode and appends it to the log.
func (d *Detector) seal(flow packet.FlowID, f *detFlow, openAtEnd bool) {
	ep := f.cur
	if ep.Windows > 0 {
		ep.MeanShare /= float64(ep.Windows)
	}
	ep.Severity = 1 - ep.MinShare/d.cfg.Epsilon
	ep.OpenAtEnd = openAtEnd
	d.episodes = append(d.episodes, ep)
	f.open = false
	f.healthyRun = 0
	if d.cfg.Probe != nil {
		d.cfg.Probe.Emit(obs.Event{Type: obs.EvStarveEnd, At: ep.End,
			Flow: flow, Seq: int64(ep.Duration()), Queue: -1})
	}
}

// Flush closes episodes still open at the horizon, marking them
// OpenAtEnd. Call after the sampler's own Flush so trailing partial
// windows were observed first.
func (d *Detector) Flush(horizon time.Duration) {
	for i := range d.flows {
		f := &d.flows[i]
		if !f.open {
			continue
		}
		f.cur.End = horizon
		d.seal(packet.FlowID(i), f, true)
	}
}

// Episodes returns the sealed episode log in onset order per flow (the
// order windows closed). The slice is owned by the detector.
func (d *Detector) Episodes() []Episode { return d.episodes }

// String renders one episode compactly for tables and logs.
func (ep *Episode) String() string {
	fault := ""
	if ep.FaultAtOnset {
		fault = " fault@onset"
	}
	open := ""
	if ep.OpenAtEnd {
		open = " (open)"
	}
	return fmt.Sprintf("%s [%v, %v) sev %.2f min-share %.3f%s%s",
		ep.Name, ep.Onset, ep.End, ep.Severity, ep.MinShare, fault, open)
}
