package obs

import (
	"fmt"
	"io"
)

// WritePrometheus renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers followed by one sample per
// flow, labelled flow="<name>", plus unlabelled global series. The output
// is suitable for node_exporter's textfile collector or offline diffing.
func WritePrometheus(w io.Writer, snap *Snapshot) error {
	type metric struct {
		name, help, typ string
		value           func(*FlowCounters) int64
	}
	perFlow := []metric{
		{"starvesim_packets_sent_total", "Segments transmitted by the sender (including retransmissions).", "counter",
			func(f *FlowCounters) int64 { return f.PacketsSent }},
		{"starvesim_packets_enqueued_total", "Segments accepted into the bottleneck FIFO.", "counter",
			func(f *FlowCounters) int64 { return f.PacketsEnqueued }},
		{"starvesim_packets_dropped_total", "Segments discarded (drop-tail or random loss).", "counter",
			func(f *FlowCounters) int64 { return f.PacketsDropped }},
		{"starvesim_packets_marked_total", "Segments ECN-marked at the bottleneck.", "counter",
			func(f *FlowCounters) int64 { return f.PacketsMarked }},
		{"starvesim_packets_delivered_total", "Segments that reached the receiver endpoint.", "counter",
			func(f *FlowCounters) int64 { return f.PacketsDelivered }},
		{"starvesim_retransmits_total", "Retransmitted segments.", "counter",
			func(f *FlowCounters) int64 { return f.Retransmits }},
		{"starvesim_acks_received_total", "Acknowledgments processed by the sender.", "counter",
			func(f *FlowCounters) int64 { return f.AcksReceived }},
		{"starvesim_bytes_sent_total", "Payload bytes transmitted.", "counter",
			func(f *FlowCounters) int64 { return f.BytesSent }},
		{"starvesim_bytes_enqueued_total", "Payload bytes accepted into the bottleneck FIFO.", "counter",
			func(f *FlowCounters) int64 { return f.BytesEnqueued }},
		{"starvesim_bytes_acked_total", "Payload bytes cumulatively acknowledged.", "counter",
			func(f *FlowCounters) int64 { return f.BytesAcked }},
		{"starvesim_bytes_delivered_total", "Distinct payload bytes accepted by the receiver.", "counter",
			func(f *FlowCounters) int64 { return f.BytesDelivered }},
		{"starvesim_packets_dequeued_total", "Segments that completed bottleneck serialization.", "counter",
			func(f *FlowCounters) int64 { return f.PacketsDequeued }},
		{"starvesim_dropped_at_gate_total", "Segments discarded by pre-queue loss gates (Bernoulli or Gilbert-Elliott).", "counter",
			func(f *FlowCounters) int64 { return f.DroppedAtGate }},
		{"starvesim_packets_duplicated_total", "Extra copies injected by a duplication element.", "counter",
			func(f *FlowCounters) int64 { return f.PacketsDuplicated }},
		{"starvesim_packets_reordered_total", "Segments deliberately deferred by a reordering element.", "counter",
			func(f *FlowCounters) int64 { return f.PacketsReordered }},
	}
	for _, m := range perFlow {
		if err := header(w, m.name, m.help, m.typ); err != nil {
			return err
		}
		for i := range snap.Flows {
			f := &snap.Flows[i]
			name := f.Name
			if name == "" {
				name = fmt.Sprintf("flow%d", i)
			}
			if _, err := fmt.Fprintf(w, "%s{flow=%q} %d\n", m.name, name, m.value(f)); err != nil {
				return err
			}
		}
	}

	// Cohort-level aggregation: emitted only when at least one flow carries
	// a cohort label, so uncohorted (classic 2-flow) exports are unchanged.
	// Population runs read starvation structure from these few series
	// instead of thousands of per-flow samples.
	if cohorts := snap.Cohorts(); len(cohorts) > 1 || (len(cohorts) == 1 && cohorts[0].Cohort != "") {
		perCohort := []struct {
			name, help string
			value      func(*CohortCounters) int64
		}{
			{"starvesim_cohort_flows", "Flows aggregated under the cohort label.",
				func(c *CohortCounters) int64 { return int64(c.Flows) }},
			{"starvesim_cohort_packets_sent_total", "Segments transmitted by the cohort's senders.",
				func(c *CohortCounters) int64 { return c.Sum.PacketsSent }},
			{"starvesim_cohort_packets_dropped_total", "Segments of the cohort discarded anywhere on the path.",
				func(c *CohortCounters) int64 { return c.Sum.PacketsDropped }},
			{"starvesim_cohort_packets_delivered_total", "Segments of the cohort that reached their receivers.",
				func(c *CohortCounters) int64 { return c.Sum.PacketsDelivered }},
			{"starvesim_cohort_bytes_acked_total", "Payload bytes cumulatively acknowledged across the cohort.",
				func(c *CohortCounters) int64 { return c.Sum.BytesAcked }},
			{"starvesim_cohort_retransmits_total", "Retransmitted segments across the cohort.",
				func(c *CohortCounters) int64 { return c.Sum.Retransmits }},
		}
		for _, m := range perCohort {
			if err := header(w, m.name, m.help, "counter"); err != nil {
				return err
			}
			for i := range cohorts {
				c := &cohorts[i]
				label := c.Cohort
				if label == "" {
					label = "uncohorted"
				}
				if _, err := fmt.Fprintf(w, "%s{cohort=%q} %d\n", m.name, label, m.value(c)); err != nil {
					return err
				}
			}
		}
	}

	globals := []struct {
		name, help, typ string
		value           int64
	}{
		{"starvesim_queue_depth_max_bytes", "High-water mark of the bottleneck queue.", "gauge", snap.Global.MaxQueueBytes},
		{"starvesim_queue_packets_dequeued_total", "Segments that completed bottleneck serialization.", "counter", snap.Global.PacketsDequeued},
		{"starvesim_link_rate_changes_total", "Bottleneck drain-rate changes (schedules and flaps).", "counter", snap.Global.LinkRateChanges},
		{"starvesim_sim_events_scheduled_total", "Discrete events scheduled on the virtual clock.", "counter", int64(snap.Global.SimEventsScheduled)},
		{"starvesim_sim_events_fired_total", "Discrete events executed by the virtual clock.", "counter", int64(snap.Global.SimEventsFired)},
	}
	for _, g := range globals {
		if err := header(w, g.name, g.help, g.typ); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", g.name, g.value); err != nil {
			return err
		}
	}
	return nil
}

func header(w io.Writer, name, help, typ string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ); err != nil {
		return err
	}
	return nil
}
