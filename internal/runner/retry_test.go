package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starvation/internal/guard"
	"starvation/internal/sim"
)

// progressLog collects progress events for assertion, serialized by the
// pool's own delivery lock.
type progressLog struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (l *progressLog) record(ev ProgressEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *progressLog) count(kind ProgressKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestRetryDeadlineTwiceThenSucceed is the watchdog×retry interplay
// test: a job that blows its per-job deadline twice and completes on the
// third attempt must succeed, with both timeouts in its history and two
// retries in the counters.
func TestRetryDeadlineTwiceThenSucceed(t *testing.T) {
	var attempts atomic.Int64
	log := &progressLog{}
	pool := &Pool{
		Jobs:        1,
		JobDeadline: 30 * time.Millisecond,
		Grace:       20 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Jitter: -1},
		Progress:    log.record,
	}
	job := artifactJob("flaky-deadline", func(ctx context.Context) ([]byte, error) {
		if attempts.Add(1) <= 2 {
			<-ctx.Done() // simulate a run that only stops when the deadline fires
			return nil, ctx.Err()
		}
		return []byte("third time lucky"), nil
	})
	res := pool.Run(context.Background(), []Job{job})[0]

	if res.Err != nil {
		t.Fatalf("job failed: %+v", res.Err)
	}
	if string(res.Artifact) != "third time lucky" || res.Attempts != 3 {
		t.Errorf("result = %q after %d attempts, want success on attempt 3", res.Artifact, res.Attempts)
	}
	if len(res.History) != 2 {
		t.Fatalf("history has %d entries, want 2: %+v", len(res.History), res.History)
	}
	for i, h := range res.History {
		if h.Kind != guard.KindDeadline || h.Attempt != i+1 {
			t.Errorf("history[%d] = %+v, want deadline kind on attempt %d", i, h, i+1)
		}
	}
	if st := pool.Stats(); st.Retries != 2 || st.Executed != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v, want 2 retries, 1 executed, 0 failed", st)
	}
	if got := log.count(ProgressRetry); got != 2 {
		t.Errorf("saw %d retry events, want 2", got)
	}
	if got := log.count(ProgressStart); got != 3 {
		t.Errorf("saw %d start events, want 3 (one per attempt)", got)
	}
}

// TestRetryPanicThenSucceed checks a panicking attempt is captured by the
// guard layer and retried rather than ending the job.
func TestRetryPanicThenSucceed(t *testing.T) {
	var attempts atomic.Int64
	pool := &Pool{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Jitter: -1}}
	job := artifactJob("panics-once", func(context.Context) ([]byte, error) {
		if attempts.Add(1) == 1 {
			panic("transient corruption")
		}
		return []byte("recovered"), nil
	})
	res := pool.Run(context.Background(), []Job{job})[0]
	if res.Err != nil || string(res.Artifact) != "recovered" || res.Attempts != 2 {
		t.Fatalf("result = %+v, want recovery on attempt 2", res)
	}
	if len(res.History) != 1 || res.History[0].Kind != guard.KindPanic ||
		!strings.Contains(res.History[0].Msg, "transient corruption") {
		t.Errorf("history = %+v, want one panic entry carrying the panic value", res.History)
	}
}

// TestRetrySimHaltLatchAcrossAttempts pins the sticky-halt interplay: a
// body that reuses one Simulator across attempts must be able to re-run
// it after a deadline halted it, because Run resets the halt latch on
// entry. A latch that stayed stuck would make every retry return
// instantly with truncated work.
func TestRetrySimHaltLatchAcrossAttempts(t *testing.T) {
	s := sim.New(1)
	var attempts atomic.Int64
	pool := &Pool{
		Jobs:        1,
		JobDeadline: 40 * time.Millisecond,
		Grace:       20 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Jitter: -1},
	}
	job := artifactJob("halted-sim", func(ctx context.Context) ([]byte, error) {
		s.SetContext(ctx)
		if attempts.Add(1) == 1 {
			// First attempt: an endless event chain that only the deadline
			// stops (each event re-arms itself). While the context is live
			// each firing burns wall-clock so the deadline arrives; once it
			// cancels, fire flat-out so the simulator's periodic ctx check
			// trips (and latches the halt) well inside the grace window —
			// the pool must join this attempt before starting the next, or
			// the two would share the simulator concurrently.
			var rearm func()
			rearm = func() {
				if ctx.Err() == nil {
					time.Sleep(100 * time.Microsecond)
				}
				s.After(time.Millisecond, rearm)
			}
			s.After(time.Millisecond, rearm)
			// A modest horizon: far enough that the deadline (not the
			// horizon) ends the run, near enough that the clock jump Run
			// performs on exit stays small — attempt 2 schedules relative
			// to s.Now() and must not sit a virtual hour past the leftover
			// chain.
			s.Run(s.Now() + 10*time.Second)
			if s.Interrupted() {
				return nil, ctx.Err()
			}
			return []byte("unreachable"), nil
		}
		// Second attempt: a bounded run on the same (previously halted)
		// simulator must actually execute.
		fired := false
		s.After(time.Millisecond, func() { fired = true })
		s.Run(s.Now() + 10*time.Millisecond)
		if !fired {
			return nil, fmt.Errorf("halt latch stuck: retry ran no events")
		}
		return []byte("latch reset"), nil
	})
	res := pool.Run(context.Background(), []Job{job})[0]
	if res.Err != nil || string(res.Artifact) != "latch reset" {
		t.Fatalf("result = %+v, want the retry to run the halted simulator", res)
	}
	if res.Attempts != 2 || len(res.History) != 1 || res.History[0].Kind != guard.KindDeadline {
		t.Errorf("attempts=%d history=%+v, want one deadline failure then success", res.Attempts, res.History)
	}
}

// TestRetryTerminalKinds checks the retryability table: cancelled and
// invariant failures must not burn retry budget.
func TestRetryTerminalKinds(t *testing.T) {
	for _, kind := range []guard.ErrKind{guard.KindCancelled, guard.KindInvariant} {
		var attempts atomic.Int64
		pool := &Pool{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Jitter: -1}}
		job := artifactJob(fmt.Sprintf("terminal-%s", kind), func(context.Context) ([]byte, error) {
			attempts.Add(1)
			return nil, &guard.RunError{Scenario: "terminal", Kind: kind, Msg: "structured failure"}
		})
		res := pool.Run(context.Background(), []Job{job})[0]
		if res.Err == nil || res.Err.Kind != kind {
			t.Fatalf("kind %v: result = %+v, want terminal failure of same kind", kind, res)
		}
		if got := attempts.Load(); got != 1 {
			t.Errorf("kind %v: body ran %d times, want 1 (terminal kinds must not retry)", kind, got)
		}
	}
}

// TestRetryExportKindRetryable checks a body-classified export failure
// (a flushing sink) keeps its kind through the pool's classifier and is
// retried under the default table.
func TestRetryExportKindRetryable(t *testing.T) {
	var attempts atomic.Int64
	pool := &Pool{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Jitter: -1}}
	job := artifactJob("export-flake", func(context.Context) ([]byte, error) {
		if attempts.Add(1) == 1 {
			return nil, &guard.RunError{Scenario: "export-flake", Kind: guard.KindExport, Msg: "disk hiccup"}
		}
		return []byte("flushed"), nil
	})
	res := pool.Run(context.Background(), []Job{job})[0]
	if res.Err != nil || res.Attempts != 2 {
		t.Fatalf("result = %+v, want export failure retried", res)
	}
	if len(res.History) != 1 || res.History[0].Kind != guard.KindExport {
		t.Errorf("history = %+v, want the export kind preserved", res.History)
	}
}

// TestRetryExhaustion checks a persistently failing job consumes exactly
// its budget and reports the full history.
func TestRetryExhaustion(t *testing.T) {
	var attempts atomic.Int64
	pool := &Pool{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Jitter: -1}}
	job := artifactJob("always-fails", func(context.Context) ([]byte, error) {
		return nil, fmt.Errorf("failure %d", attempts.Add(1))
	})
	res := pool.Run(context.Background(), []Job{job})[0]
	if res.Err == nil || res.Attempts != 3 || attempts.Load() != 3 {
		t.Fatalf("result = %+v after %d body runs, want exhaustion at 3", res, attempts.Load())
	}
	if len(res.History) != 3 || res.History[2].Msg != "failure 3" {
		t.Errorf("history = %+v, want 3 entries ending with the final failure", res.History)
	}
	if st := pool.Stats(); st.Retries != 2 || st.Failed != 1 {
		t.Errorf("stats = %+v, want 2 retries and 1 failed", st)
	}
}

// TestRetryCancelledDuringBackoff checks a batch cancellation that lands
// inside the backoff sleep ends the job with a cancellation error
// instead of another attempt.
func TestRetryCancelledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts atomic.Int64
	pool := &Pool{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 5, Base: 10 * time.Second, Jitter: -1}}
	job := artifactJob("cancel-in-backoff", func(context.Context) ([]byte, error) {
		attempts.Add(1)
		// Fail, then cancel the batch while the pool sleeps out the (long)
		// backoff.
		time.AfterFunc(30*time.Millisecond, cancel)
		return nil, fmt.Errorf("transient")
	})
	start := time.Now()
	res := pool.Run(ctx, []Job{job})[0]
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancellation did not interrupt the backoff sleep")
	}
	if res.Err == nil || res.Err.Kind != guard.KindCancelled ||
		!strings.Contains(res.Err.Msg, "backoff") {
		t.Errorf("result = %+v, want a cancellation attributed to the backoff wait", res.Err)
	}
	if attempts.Load() != 1 {
		t.Errorf("body ran %d times, want 1", attempts.Load())
	}
}

// TestBackoffDeterministic pins the backoff schedule: exponential,
// capped, and — for a fixed seed — identical across calls.
func TestBackoffDeterministic(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 6, Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5, Seed: 7}
	var first []time.Duration
	for attempt := 1; attempt <= 5; attempt++ {
		first = append(first, rp.Backoff("jobA", attempt))
	}
	for attempt := 1; attempt <= 5; attempt++ {
		if again := rp.Backoff("jobA", attempt); again != first[attempt-1] {
			t.Errorf("attempt %d: backoff not reproducible: %v then %v", attempt, first[attempt-1], again)
		}
	}
	for i, d := range first {
		nominal := rp.Base << i
		if nominal > rp.Max {
			nominal = rp.Max
		}
		lo, hi := time.Duration(float64(nominal)*0.5), time.Duration(float64(nominal)*1.5)
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside jitter envelope [%v, %v]", i+1, d, lo, hi)
		}
	}
	if rp.Backoff("jobA", 1) == rp.Backoff("jobB", 1) {
		t.Errorf("different jobs drew identical jitter; delays would synchronize")
	}

	noJitter := RetryPolicy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}
	want := []time.Duration{100, 200, 400, 800, 1000, 1000}
	for i, w := range want {
		if got := noJitter.Backoff("x", i+1); got != w*time.Millisecond {
			t.Errorf("jitterless backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

// TestSeededUnitStable pins the deterministic randomness source shared by
// retry jitter and the chaos injector: stable values, full [0,1) range
// behavior, sensitivity to every part.
func TestSeededUnitStable(t *testing.T) {
	a := SeededUnit(1, "fault", "F1", "1")
	if b := SeededUnit(1, "fault", "F1", "1"); a != b {
		t.Fatalf("SeededUnit not deterministic: %v vs %v", a, b)
	}
	if a < 0 || a >= 1 {
		t.Fatalf("SeededUnit out of range: %v", a)
	}
	variants := []float64{
		SeededUnit(2, "fault", "F1", "1"),
		SeededUnit(1, "other", "F1", "1"),
		SeededUnit(1, "fault", "F2", "1"),
		SeededUnit(1, "fault", "F1", "2"),
	}
	for i, v := range variants {
		if v == a {
			t.Errorf("variant %d collides with the base draw; inputs are not separated", i)
		}
	}
}

// TestManifestRecovery exercises the salvage path on a realistic torn
// manifest: complete entries survive, the torn trailing record is
// dropped, and the damage is reported.
func TestManifestRecovery(t *testing.T) {
	full := `{"schema":1,"jobs":{` +
		`"F1":{"fingerprint":"aaaa","status":"done","attempts":2,"history":[{"attempt":1,"kind":"deadline","msg":"slow"}]},` +
		`"F3":{"fingerprint":"bbbb","status":"done"},` +
		`"F5":{"fingerprint":"cccc","status":"done"}}}`
	// Cut inside F5's record: F1 and F3 must survive.
	cut := strings.Index(full, `"cccc"`) + 3
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte(full[:cut]), 0o644); err != nil {
		t.Fatal(err)
	}
	m := LoadManifest(path)
	if m.RecoveredFrom == "" {
		t.Errorf("salvaged manifest does not report its recovery")
	}
	if !m.Done("F1", "aaaa") || !m.Done("F3", "bbbb") {
		t.Errorf("complete entries lost: len=%d recovered=%q", m.Len(), m.RecoveredFrom)
	}
	if m.Done("F5", "cccc") {
		t.Errorf("torn trailing entry was resurrected")
	}
	if e, _ := m.Entry("F1"); e.Attempts != 2 || len(e.History) != 1 {
		t.Errorf("attempt history lost in recovery: %+v", e)
	}

	// Garbage, and manifests of a different schema, must recover nothing.
	for _, bad := range []string{"complete garbage", `{"jobs":{"F1":{"fingerprint":"aaaa","status":"done"}}`, `{"schema":99,"jobs":{"F1":{"fingerprint":"aaaa","status":"done"`} {
		if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		m := LoadManifest(path)
		if m.Len() != 0 {
			t.Errorf("recovered %d entries from %q, want 0", m.Len(), bad)
		}
	}
}
