package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"
)

// SchemaVersion is the cache-schema version baked into every fingerprint.
// Bump it whenever a change alters what an unchanged configuration would
// produce — a simulator fix, a new artifact field, a different CSV column —
// so every previously cached result becomes unreachable instead of stale.
const SchemaVersion = 1

// Key is the canonical configuration of one job: the complete set of
// inputs that determine its artifact. Two jobs with equal Keys must
// produce byte-identical artifacts (every run is deterministic), which is
// what makes the content-addressed cache sound.
//
// The zero Key marks a job as uncacheable: the pool always executes it.
type Key struct {
	// Kind namespaces the job family (e.g. "figures-section",
	// "scenario-run") so distinct producers can never collide.
	Kind string
	// Scenario is the scenario or section identifier.
	Scenario string
	// Seed is the RNG seed of the run (0 when the job fixes its own).
	Seed int64
	// Duration is the virtual run length (0 when the job fixes its own).
	Duration time.Duration
	// Faults is the impairment clause, in its canonical spec syntax.
	Faults string
	// Params carries any remaining configuration as "name=value" strings;
	// the encoding sorts them, so order never changes the fingerprint.
	Params []string
}

// IsZero reports whether the key is the zero (uncacheable) key.
func (k Key) IsZero() bool {
	return k.Kind == "" && k.Scenario == "" && k.Seed == 0 &&
		k.Duration == 0 && k.Faults == "" && len(k.Params) == 0
}

// Canonical returns the unambiguous byte encoding the fingerprint hashes:
// the schema version followed by each field as "<len>:<bytes>", so no
// choice of field values can collide with another ("ab"+"c" ≠ "a"+"bc").
func (k Key) Canonical(schema int) []byte {
	params := append([]string(nil), k.Params...)
	sort.Strings(params)
	var b strings.Builder
	field := func(s string) {
		fmt.Fprintf(&b, "%d:%s", len(s), s)
	}
	fmt.Fprintf(&b, "v%d/", schema)
	field(k.Kind)
	field(k.Scenario)
	field(fmt.Sprintf("%d", k.Seed))
	field(fmt.Sprintf("%d", int64(k.Duration)))
	field(k.Faults)
	for _, p := range params {
		field(p)
	}
	return []byte(b.String())
}

// Fingerprint returns the content address of the key under the given
// schema version: the hex SHA-256 of the canonical encoding.
func (k Key) Fingerprint(schema int) string {
	sum := sha256.Sum256(k.Canonical(schema))
	return hex.EncodeToString(sum[:])
}

// String renders the key for manifests and cache envelopes (diagnostic,
// not the hashed form).
func (k Key) String() string {
	params := append([]string(nil), k.Params...)
	sort.Strings(params)
	return fmt.Sprintf("%s/%s seed=%d dur=%s faults=%q params=[%s]",
		k.Kind, k.Scenario, k.Seed, k.Duration, k.Faults, strings.Join(params, " "))
}
