package runner

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starvation/internal/guard"
)

func artifactJob(id string, body func(ctx context.Context) ([]byte, error)) Job {
	return Job{ID: id, Run: body}
}

// TestPoolResultOrder checks results come back in input order even when
// completion order is scrambled, and that every artifact lands on its
// own job.
func TestPoolResultOrder(t *testing.T) {
	const n = 16
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = artifactJob(fmt.Sprintf("job%02d", i), func(context.Context) ([]byte, error) {
			// Earlier jobs sleep longer so completion order inverts
			// submission order under parallelism.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return []byte(fmt.Sprintf("artifact-%02d", i)), nil
		})
	}
	p := &Pool{Jobs: 8}
	results := p.Run(context.Background(), jobs)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.ID != jobs[i].ID {
			t.Errorf("result %d is %q, want %q", i, r.ID, jobs[i].ID)
		}
		if want := fmt.Sprintf("artifact-%02d", i); string(r.Artifact) != want {
			t.Errorf("result %d artifact %q, want %q", i, r.Artifact, want)
		}
	}
	if st := p.Stats(); st.Executed != n || st.Failed != 0 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want %d executed", st, n)
	}
}

// TestPoolBoundedConcurrency checks no more than Jobs bodies run at once.
func TestPoolBoundedConcurrency(t *testing.T) {
	var cur, max atomic.Int64
	jobs := make([]Job, 20)
	for i := range jobs {
		jobs[i] = artifactJob(fmt.Sprintf("j%d", i), func(context.Context) ([]byte, error) {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil, nil
		})
	}
	p := &Pool{Jobs: 3}
	p.Run(context.Background(), jobs)
	if m := max.Load(); m > 3 {
		t.Errorf("observed %d concurrent jobs, bound is 3", m)
	}
}

// TestPoolPanicCapture checks a panicking job becomes a structured
// RunError and the rest of the batch completes.
func TestPoolPanicCapture(t *testing.T) {
	jobs := []Job{
		artifactJob("fine", func(context.Context) ([]byte, error) { return []byte("ok"), nil }),
		artifactJob("boom", func(context.Context) ([]byte, error) { panic("forced failure") }),
		artifactJob("also-fine", func(context.Context) ([]byte, error) { return []byte("ok2"), nil }),
	}
	p := &Pool{Jobs: 2}
	results := p.Run(context.Background(), jobs)
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("healthy jobs failed: %v %v", results[0].Err, results[2].Err)
	}
	e := results[1].Err
	if e == nil || e.Kind != guard.KindPanic || e.Scenario != "boom" {
		t.Fatalf("panic job error = %+v, want kind panic scenario boom", e)
	}
	if !strings.Contains(e.Msg, "forced failure") || e.Stack == "" {
		t.Errorf("panic error lost its payload or stack: %+v", e)
	}
}

// TestPoolErrorKinds checks classification of body errors: an ordinary
// error is KindError; a deadline-honoring job cut short by JobDeadline is
// KindDeadline.
func TestPoolErrorKinds(t *testing.T) {
	jobs := []Job{
		artifactJob("io-error", func(context.Context) ([]byte, error) {
			return nil, fmt.Errorf("disk full")
		}),
		artifactJob("slow-but-polite", func(ctx context.Context) ([]byte, error) {
			<-ctx.Done() // honors cancellation like a sim run does
			return nil, ctx.Err()
		}),
	}
	p := &Pool{Jobs: 2, JobDeadline: 20 * time.Millisecond, Grace: 500 * time.Millisecond}
	results := p.Run(context.Background(), jobs)
	if e := results[0].Err; e == nil || e.Kind != guard.KindError || !strings.Contains(e.Msg, "disk full") {
		t.Errorf("io-error = %+v, want kind error", e)
	}
	if e := results[1].Err; e == nil || e.Kind != guard.KindDeadline {
		t.Errorf("slow-but-polite = %+v, want kind deadline", e)
	}
}

// TestPoolAbandonsStuckJob checks a body that ignores its context is
// abandoned after the grace window — the batch continues — and the
// failure says so.
func TestPoolAbandonsStuckJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{
		artifactJob("stuck", func(context.Context) ([]byte, error) {
			<-release // ignores ctx: simulates a body outside the simulator
			return nil, nil
		}),
		artifactJob("after", func(context.Context) ([]byte, error) { return []byte("ran"), nil }),
	}
	p := &Pool{Jobs: 1, JobDeadline: 10 * time.Millisecond, Grace: 20 * time.Millisecond}
	results := p.Run(context.Background(), jobs)
	if e := results[0].Err; e == nil || e.Kind != guard.KindDeadline || !strings.Contains(e.Msg, "abandoned") {
		t.Errorf("stuck job = %+v, want abandoned deadline error", e)
	}
	if results[1].Err != nil || string(results[1].Artifact) != "ran" {
		t.Errorf("batch did not continue past the stuck job: %+v", results[1])
	}
}

// TestPoolBatchCancellation checks cancelling the batch context stops
// running jobs (KindCancelled) and never starts the rest.
func TestPoolBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = artifactJob(fmt.Sprintf("j%d", i), func(ctx context.Context) ([]byte, error) {
			if started.Add(1) == 1 {
				cancel() // first job to run kills the batch
			}
			<-ctx.Done()
			return nil, ctx.Err()
		})
	}
	p := &Pool{Jobs: 1, Grace: 500 * time.Millisecond}
	results := p.Run(ctx, jobs)
	var cancelled int
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("job %s succeeded after batch cancel", r.ID)
			continue
		}
		if r.Err.Kind == guard.KindCancelled {
			cancelled++
		}
	}
	if cancelled != len(jobs) {
		t.Errorf("%d/%d jobs report cancellation", cancelled, len(jobs))
	}
	if s := started.Load(); s != 1 {
		t.Errorf("%d jobs started after cancel, want 1", s)
	}
}

// TestPoolCacheRoundTrip checks the execute→cache→restore cycle: the
// second batch restores every artifact without running a body, and the
// restored bytes are identical.
func TestPoolCacheRoundTrip(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	var bodyRuns atomic.Int64
	mkJobs := func() []Job {
		jobs := make([]Job, 4)
		for i := range jobs {
			i := i
			jobs[i] = Job{
				ID:  fmt.Sprintf("job%d", i),
				Key: Key{Kind: "test", Scenario: fmt.Sprintf("s%d", i), Seed: 2},
				Run: func(context.Context) ([]byte, error) {
					bodyRuns.Add(1)
					return []byte(fmt.Sprintf("payload-%d", i)), nil
				},
			}
		}
		return jobs
	}
	p1 := &Pool{Jobs: 2, Cache: cache}
	first := p1.Run(context.Background(), mkJobs())
	if n := bodyRuns.Load(); n != 4 {
		t.Fatalf("cold batch ran %d bodies, want 4", n)
	}
	p2 := &Pool{Jobs: 2, Cache: cache}
	second := p2.Run(context.Background(), mkJobs())
	if n := bodyRuns.Load(); n != 4 {
		t.Errorf("warm batch re-simulated: %d body runs total, want 4", n)
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("job %d not marked cached", i)
		}
		if string(second[i].Artifact) != string(first[i].Artifact) {
			t.Errorf("job %d artifact changed across cache: %q vs %q",
				i, first[i].Artifact, second[i].Artifact)
		}
	}
	if st := p2.Stats(); st.CacheHits != 4 || st.Executed != 0 {
		t.Errorf("warm stats = %+v, want 4 hits 0 executed", st)
	}
}

// TestPoolProgressEvents checks the progress stream is serialized, the
// Done counter is monotone, and every job contributes a terminal event.
func TestPoolProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []ProgressEvent
	p := &Pool{Jobs: 4, Progress: func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}}
	jobs := make([]Job, 6)
	for i := range jobs {
		fail := i == 3
		jobs[i] = artifactJob(fmt.Sprintf("j%d", i), func(context.Context) ([]byte, error) {
			if fail {
				return nil, fmt.Errorf("nope")
			}
			return nil, nil
		})
	}
	p.Run(context.Background(), jobs)
	lastDone := 0
	terminal := 0
	for _, ev := range events {
		if ev.Done < lastDone {
			t.Errorf("Done counter went backwards: %d after %d", ev.Done, lastDone)
		}
		lastDone = ev.Done
		if ev.Kind != ProgressStart {
			terminal++
		}
		if ev.Total != 6 {
			t.Errorf("event Total = %d, want 6", ev.Total)
		}
	}
	if terminal != 6 {
		t.Errorf("%d terminal events, want 6", terminal)
	}
	if lastDone != 6 {
		t.Errorf("final Done = %d, want 6", lastDone)
	}
}

// TestPoolDuplicateID pins the programming-error contract.
func TestPoolDuplicateID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("duplicate job IDs did not panic")
		}
	}()
	p := &Pool{}
	p.Run(context.Background(), []Job{
		artifactJob("dup", func(context.Context) ([]byte, error) { return nil, nil }),
		artifactJob("dup", func(context.Context) ([]byte, error) { return nil, nil }),
	})
}

// TestForEach covers the parallel loop helper: full coverage of indices,
// inline execution at workers=1, and deterministic first-by-index error.
func TestForEach(t *testing.T) {
	var hits [32]atomic.Int64
	if err := ForEach(context.Background(), 4, len(hits), func(_ context.Context, i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Errorf("index %d visited %d times", i, hits[i].Load())
		}
	}

	// First error by index, not completion order: the error at index 2
	// must win over the one at index 9 even though 9 may finish first.
	err := ForEach(context.Background(), 4, 16, func(_ context.Context, i int) error {
		switch i {
		case 2:
			time.Sleep(10 * time.Millisecond)
			return fmt.Errorf("err-2")
		case 9:
			return fmt.Errorf("err-9")
		}
		return nil
	})
	if err == nil || err.Error() != "err-2" {
		t.Errorf("ForEach error = %v, want err-2 (first by index)", err)
	}
}
