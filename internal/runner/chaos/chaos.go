// Package chaos injects deterministic, seeded faults into the experiment
// orchestration layer, the way internal/netem/faults injects them into
// the network: every failure mode the runner is supposed to survive —
// erroring, panicking, hanging, and slow job bodies; corrupted cache
// artifacts; truncated manifests — gets a fault point that tests and the
// -chaos CLI flag can trigger reproducibly.
//
// Every decision is a pure function of (seed, job ID, attempt), so a
// chaos run is as deterministic as the simulations it torments: the same
// spec and seed injects the same faults into the same jobs regardless of
// worker count or scheduling. Injected body faults fire *instead of* the
// job body, so a retried attempt that draws no fault produces exactly
// the artifact a fault-free run would — which is what makes the
// byte-identical chaos parity invariant testable.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starvation/internal/runner"
)

// Default knobs, applied when the spec omits the clause.
const (
	// DefaultHangFor bounds an injected hang: the attempt blocks this
	// long (or until its context dies), then fails. Supervision, not
	// wall-clock waste.
	DefaultHangFor = 2 * time.Second
	// DefaultMaxFaultsPerJob caps injected body faults per job so a
	// retried job always converges: with a retry budget of at least
	// MaxFaultsPerJob+1 attempts, chaos can never fail a batch.
	DefaultMaxFaultsPerJob = 2
	// DefaultAttempts is the retry budget a chaos run implies when the
	// caller doesn't set one (DefaultMaxFaultsPerJob+1: always enough).
	DefaultAttempts = DefaultMaxFaultsPerJob + 1
)

// Spec is a parsed chaos specification: per-attempt fault probabilities
// plus batch-level artifact sabotage. The zero Spec injects nothing.
type Spec struct {
	// Seed drives every injection decision.
	Seed int64
	// FailP is the per-attempt probability of an injected body error.
	FailP float64
	// PanicP is the per-attempt probability of an injected panic.
	PanicP float64
	// HangP is the per-attempt probability of an injected hang: the
	// attempt blocks for HangFor (or until its context dies), then fails.
	HangP float64
	// HangFor bounds an injected hang (0 selects DefaultHangFor).
	HangFor time.Duration
	// SlowP is the per-attempt probability of an injected SlowBy delay
	// before the body runs (the body still succeeds — a slow worker, not
	// a dead one).
	SlowP float64
	// SlowBy is the injected delay (0 disables slow faults).
	SlowBy time.Duration
	// CorruptN is how many cache entries Injector.CorruptCache mangles.
	CorruptN int
	// CorruptMode is "bitflip" (default) or "truncate".
	CorruptMode string
	// TruncateManifest, when true, cuts the manifest file at a seeded
	// offset before the batch loads it.
	TruncateManifest bool
	// MaxFaultsPerJob caps injected body faults per job (0 selects
	// DefaultMaxFaultsPerJob; negative means unlimited — a batch may
	// then fail terminally, which some tests want).
	MaxFaultsPerJob int
	// Attempts is the retry budget the spec suggests for the pool
	// (0 selects DefaultAttempts).
	Attempts int
}

// Parse reads the -chaos CLI grammar: semicolon-separated clauses,
//
//	seed:N                — injection seed (default 1)
//	fail:P                — injected body-error probability per attempt
//	panic:P               — injected panic probability per attempt
//	hang:P[,dur]          — injected hang probability (blocks dur, then fails; default 2s)
//	slow:P,dur            — injected pre-body delay probability
//	corrupt:N[,mode]      — corrupt N cache entries before the batch (bitflip|truncate)
//	truncate-manifest:1   — cut the manifest at a seeded offset before loading
//	maxfail:N             — cap injected body faults per job (default 2; -1 unbounded)
//	attempts:N            — retry budget the run should use (default maxfail+1)
//
// Example: "seed:7;fail:0.3;panic:0.1;hang:0.1,500ms;slow:0.2,50ms;corrupt:2".
func Parse(spec string) (Spec, error) {
	s := Spec{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return s, fmt.Errorf("chaos: empty spec")
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, args, ok := strings.Cut(clause, ":")
		if !ok {
			return s, fmt.Errorf("chaos: clause %q: want name:value", clause)
		}
		parts := strings.Split(args, ",")
		arg := func(i int) string { return strings.TrimSpace(parts[i]) }
		prob := func() (float64, error) {
			p, err := strconv.ParseFloat(arg(0), 64)
			if err != nil || p < 0 || p > 1 {
				return 0, fmt.Errorf("chaos: clause %q: probability must be in [0,1]", clause)
			}
			return p, nil
		}
		var err error
		switch strings.TrimSpace(name) {
		case "seed":
			s.Seed, err = strconv.ParseInt(arg(0), 10, 64)
			if err != nil {
				return s, fmt.Errorf("chaos: clause %q: bad seed", clause)
			}
		case "fail":
			if s.FailP, err = prob(); err != nil {
				return s, err
			}
		case "panic":
			if s.PanicP, err = prob(); err != nil {
				return s, err
			}
		case "hang":
			if s.HangP, err = prob(); err != nil {
				return s, err
			}
			if len(parts) > 1 {
				if s.HangFor, err = time.ParseDuration(arg(1)); err != nil || s.HangFor <= 0 {
					return s, fmt.Errorf("chaos: clause %q: bad hang duration", clause)
				}
			}
		case "slow":
			if s.SlowP, err = prob(); err != nil {
				return s, err
			}
			if len(parts) < 2 {
				return s, fmt.Errorf("chaos: clause %q: slow needs a duration (slow:P,dur)", clause)
			}
			if s.SlowBy, err = time.ParseDuration(arg(1)); err != nil || s.SlowBy <= 0 {
				return s, fmt.Errorf("chaos: clause %q: bad slow duration", clause)
			}
		case "corrupt":
			if s.CorruptN, err = strconv.Atoi(arg(0)); err != nil || s.CorruptN < 0 {
				return s, fmt.Errorf("chaos: clause %q: bad corruption count", clause)
			}
			if len(parts) > 1 {
				mode := arg(1)
				if mode != "bitflip" && mode != "truncate" {
					return s, fmt.Errorf("chaos: clause %q: mode must be bitflip or truncate", clause)
				}
				s.CorruptMode = mode
			}
		case "truncate-manifest":
			n, err := strconv.Atoi(arg(0))
			if err != nil || n < 0 {
				return s, fmt.Errorf("chaos: clause %q: want truncate-manifest:0|1", clause)
			}
			s.TruncateManifest = n > 0
		case "maxfail":
			if s.MaxFaultsPerJob, err = strconv.Atoi(arg(0)); err != nil {
				return s, fmt.Errorf("chaos: clause %q: bad maxfail", clause)
			}
		case "attempts":
			if s.Attempts, err = strconv.Atoi(arg(0)); err != nil || s.Attempts < 1 {
				return s, fmt.Errorf("chaos: clause %q: attempts must be >= 1", clause)
			}
		default:
			return s, fmt.Errorf("chaos: unknown clause %q", name)
		}
	}
	if s.MaxFaultsPerJob >= 0 {
		faultCap := s.MaxFaultsPerJob
		if faultCap == 0 {
			faultCap = DefaultMaxFaultsPerJob
		}
		if s.Attempts != 0 && s.Attempts <= faultCap {
			return s, fmt.Errorf("chaos: attempts:%d cannot outlast maxfail:%d injected faults per job; raise attempts or lower maxfail", s.Attempts, faultCap)
		}
	}
	return s, nil
}

func (s Spec) hangFor() time.Duration {
	if s.HangFor > 0 {
		return s.HangFor
	}
	return DefaultHangFor
}

func (s Spec) maxFaults() int {
	if s.MaxFaultsPerJob != 0 {
		return s.MaxFaultsPerJob
	}
	return DefaultMaxFaultsPerJob
}

// RetryAttempts returns the retry budget the spec implies: explicit
// attempts if set, else one more than the per-job fault cap so every
// chaos run converges.
func (s Spec) RetryAttempts() int {
	if s.Attempts > 0 {
		return s.Attempts
	}
	if s.maxFaults() > 0 {
		return s.maxFaults() + 1
	}
	return DefaultAttempts
}

// Event is one injected fault, recorded for the chaos log.
type Event struct {
	// Kind is "error", "panic", "hang", "slow", "corrupt", or
	// "truncate-manifest".
	Kind string `json:"kind"`
	// Job and Attempt locate body faults (empty/0 for artifact faults).
	Job     string `json:"job,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Target is the mangled file for corrupt/truncate-manifest faults.
	Target string `json:"target,omitempty"`
	// Detail describes the fault ("bitflip @1234", "hung 500ms", …).
	Detail string `json:"detail,omitempty"`
}

// Injector applies a Spec: it wraps job bodies with seeded fault points
// and mangles on-disk artifacts, recording every injection.
type Injector struct {
	Spec Spec

	mu       sync.Mutex
	events   []Event
	attempts map[string]int // body invocations per job (attempt counter)
	faults   map[string]int // injected body faults per job (the cap)
}

// New returns an Injector for the spec.
func New(spec Spec) *Injector {
	return &Injector{Spec: spec, attempts: map[string]int{}, faults: map[string]int{}}
}

func (in *Injector) record(ev Event) {
	in.mu.Lock()
	in.events = append(in.events, ev)
	in.mu.Unlock()
}

// Events returns a copy of the injection log, in injection order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Counts returns the number of injections per fault kind.
func (in *Injector) Counts() map[string]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	counts := map[string]int{}
	for _, ev := range in.events {
		counts[ev.Kind]++
	}
	return counts
}

// BodyFaults returns the number of injected body faults (error + panic +
// hang) — the count of attempts that failed because of chaos.
func (in *Injector) BodyFaults() int {
	n := 0
	for kind, c := range in.Counts() {
		if kind == "error" || kind == "panic" || kind == "hang" {
			n += c
		}
	}
	return n
}

// Wrap returns jobs with every body wrapped in the injector's fault
// points. The wrapped body decides, per (seed, job, attempt), whether to
// fail instead of running — so a clean retry reproduces the fault-free
// artifact bytes exactly.
func (in *Injector) Wrap(jobs []runner.Job) []runner.Job {
	out := make([]runner.Job, len(jobs))
	for i, job := range jobs {
		out[i] = in.wrapOne(job)
	}
	return out
}

func (in *Injector) wrapOne(job runner.Job) runner.Job {
	body := job.Run
	id := job.ID
	job.Run = func(ctx context.Context) ([]byte, error) {
		in.mu.Lock()
		in.attempts[id]++
		attempt := in.attempts[id]
		capped := in.Spec.maxFaults() >= 0 && in.faults[id] >= in.Spec.maxFaults()
		in.mu.Unlock()

		if !capped {
			if kind := in.decide(id, attempt); kind != "" {
				in.mu.Lock()
				in.faults[id]++
				in.mu.Unlock()
				switch kind {
				case "panic":
					in.record(Event{Kind: "panic", Job: id, Attempt: attempt})
					panic(fmt.Sprintf("chaos: injected panic (job %s attempt %d)", id, attempt))
				case "hang":
					d := in.Spec.hangFor()
					in.record(Event{Kind: "hang", Job: id, Attempt: attempt,
						Detail: fmt.Sprintf("blocked %v", d)})
					waitCtx(ctx, d)
					return nil, fmt.Errorf("chaos: injected hang (job %s attempt %d, blocked %v)", id, attempt, d)
				default: // "error"
					in.record(Event{Kind: "error", Job: id, Attempt: attempt})
					return nil, fmt.Errorf("chaos: injected error (job %s attempt %d)", id, attempt)
				}
			}
		}
		if in.Spec.SlowP > 0 && in.Spec.SlowBy > 0 &&
			runner.SeededUnit(in.Spec.Seed, "slow", id, fmt.Sprint(attempt)) < in.Spec.SlowP {
			in.record(Event{Kind: "slow", Job: id, Attempt: attempt,
				Detail: fmt.Sprintf("delayed %v", in.Spec.SlowBy)})
			waitCtx(ctx, in.Spec.SlowBy)
		}
		return body(ctx)
	}
	return job
}

// decide returns the body fault to inject for this (job, attempt), or ""
// for none. One uniform draw covers the three fault kinds so their
// probabilities compose without correlation artifacts.
func (in *Injector) decide(jobID string, attempt int) string {
	total := in.Spec.PanicP + in.Spec.FailP + in.Spec.HangP
	if total <= 0 {
		return ""
	}
	u := runner.SeededUnit(in.Spec.Seed, "fault", jobID, fmt.Sprint(attempt))
	switch {
	case u < in.Spec.PanicP:
		return "panic"
	case u < in.Spec.PanicP+in.Spec.FailP:
		return "error"
	case u < total:
		return "hang"
	}
	return ""
}

func waitCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// CorruptCache mangles Spec.CorruptN entries of the cache rooted at dir:
// seeded selection over the sorted entry list, bit-flip or truncation
// per Spec.CorruptMode. Returns how many entries were actually mangled
// (fewer than asked when the cache is small). The quarantine path in
// runner.Cache.Get is expected to catch every one.
func (in *Injector) CorruptCache(dir string) (int, error) {
	var entries []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == runner.CorruptDirName {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".json") {
			entries = append(entries, path)
		}
		return nil
	})
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	sort.Strings(entries)
	n := in.Spec.CorruptN
	if n > len(entries) {
		n = len(entries)
	}
	// Seeded selection: rank every entry by a deterministic draw and take
	// the first n, so the same seed corrupts the same entries.
	type ranked struct {
		path string
		u    float64
	}
	rk := make([]ranked, len(entries))
	for i, p := range entries {
		rk[i] = ranked{p, runner.SeededUnit(in.Spec.Seed, "corrupt", filepath.Base(p))}
	}
	sort.Slice(rk, func(i, j int) bool {
		if rk[i].u != rk[j].u {
			return rk[i].u < rk[j].u
		}
		return rk[i].path < rk[j].path
	})
	for i := 0; i < n; i++ {
		if err := in.corruptFile(rk[i].path); err != nil {
			return i, err
		}
	}
	return n, nil
}

func (in *Injector) corruptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	mode := in.Spec.CorruptMode
	if mode == "" {
		mode = "bitflip"
	}
	var detail string
	if mode == "truncate" {
		cut := len(data) / 2
		data = data[:cut]
		detail = fmt.Sprintf("truncated to %d bytes", cut)
	} else {
		// Flip one bit inside the artifact payload (falling back to the
		// middle of the file): depending on what the flip does to the
		// base64 text, the envelope stops decoding or the checksum stops
		// matching — both must quarantine. A flip elsewhere could land in
		// an unverified diagnostic field and go undetected, which would
		// make the corruption test vacuous.
		lo, hi := 0, len(data)
		marker := []byte(`"artifact":"`)
		if idx := bytes.Index(data, marker); idx >= 0 {
			lo = idx + len(marker)
			if end := bytes.IndexByte(data[lo:], '"'); end > 0 {
				hi = lo + end
			}
		}
		off := lo + int(runner.SeededUnit(in.Spec.Seed, "bitflip", filepath.Base(path))*float64(hi-lo))
		if off >= len(data) {
			off = len(data) - 1
		}
		data[off] ^= 0x01
		detail = fmt.Sprintf("bitflip @%d", off)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	in.record(Event{Kind: "corrupt", Target: path, Detail: detail})
	return nil
}

// TruncateManifest cuts the manifest file at a seeded offset past its
// midpoint — the shape of a crash mid-flush: the header and early
// entries survive, the trailing record is torn. No-op (false) when the
// spec doesn't ask for it or the file is missing/tiny.
func (in *Injector) TruncateManifest(path string) (bool, error) {
	if !in.Spec.TruncateManifest {
		return false, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	if len(data) < 4 {
		return false, nil
	}
	lo := len(data) / 2
	cut := lo + int(runner.SeededUnit(in.Spec.Seed, "truncate-manifest")*float64(len(data)-1-lo))
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		return false, err
	}
	in.record(Event{Kind: "truncate-manifest", Target: path,
		Detail: fmt.Sprintf("cut at byte %d of %d", cut, len(data))})
	return true, nil
}

// WriteLog writes the injection log as JSONL.
func (in *Injector) WriteLog(w io.Writer) error {
	for _, ev := range in.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the injection counters in the Prometheus text
// exposition format, matching the runner/obs exporters.
func (in *Injector) WritePrometheus(w io.Writer) error {
	counts := in.Counts()
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	if _, err := fmt.Fprintf(w, "# HELP starvesim_chaos_injected_total Orchestration faults injected by the chaos layer.\n# TYPE starvesim_chaos_injected_total counter\n"); err != nil {
		return err
	}
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "starvesim_chaos_injected_total{kind=%q} %d\n", k, counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a one-line human report of what the injector did.
func (in *Injector) Summary() string {
	counts := in.Counts()
	if len(counts) == 0 {
		return "chaos: no faults injected"
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, len(kinds))
	total := 0
	for i, k := range kinds {
		parts[i] = fmt.Sprintf("%d %s", counts[k], k)
		total += counts[k]
	}
	return fmt.Sprintf("chaos: %d fault(s) injected (%s), seed %d",
		total, strings.Join(parts, ", "), in.Spec.Seed)
}
