package chaos

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"starvation/internal/runner"
)

func TestParse(t *testing.T) {
	spec, err := Parse("seed:7; fail:0.3; panic:0.1; hang:0.05,500ms; slow:0.2,10ms; corrupt:2,truncate; truncate-manifest:1; maxfail:3; attempts:5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Spec{
		Seed: 7, FailP: 0.3, PanicP: 0.1, HangP: 0.05, HangFor: 500 * time.Millisecond,
		SlowP: 0.2, SlowBy: 10 * time.Millisecond, CorruptN: 2, CorruptMode: "truncate",
		TruncateManifest: true, MaxFaultsPerJob: 3, Attempts: 5,
	}
	if !reflect.DeepEqual(spec, want) {
		t.Errorf("Parse = %+v, want %+v", spec, want)
	}
	if spec.RetryAttempts() != 5 {
		t.Errorf("RetryAttempts = %d, want the explicit 5", spec.RetryAttempts())
	}

	implied, err := Parse("seed:1;fail:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if implied.RetryAttempts() != DefaultMaxFaultsPerJob+1 {
		t.Errorf("implied RetryAttempts = %d, want maxfail+1 = %d",
			implied.RetryAttempts(), DefaultMaxFaultsPerJob+1)
	}

	for _, bad := range []string{
		"",                     // empty
		"fail:1.5",             // probability out of range
		"fail",                 // no value
		"bogus:1",              // unknown clause
		"slow:0.5",             // slow without duration
		"hang:0.5,nonsense",    // bad duration
		"corrupt:-1",           // negative count
		"corrupt:1,shred",      // unknown mode
		"attempts:0",           // no attempts at all
		"maxfail:3;attempts:2", // budget cannot outlast the faults
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

// TestInjectionDeterministic pins reproducibility: two injectors with the
// same spec driving identical batches inject identical fault sequences.
func TestInjectionDeterministic(t *testing.T) {
	spec, err := Parse("seed:3;fail:0.4;panic:0.2;slow:0.3,1ms")
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() []Event {
		in := New(spec)
		pool := &runner.Pool{
			Jobs:  1, // sequential so attempt interleaving is fixed
			Retry: runner.RetryPolicy{MaxAttempts: spec.RetryAttempts(), Base: time.Millisecond, Jitter: -1},
		}
		pool.Run(context.Background(), in.Wrap(testJobs(8)))
		return in.Events()
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault sequences differ across identical runs:\n a: %+v\n b: %+v", a, b)
	}
	if len(a) == 0 {
		t.Fatalf("spec injected nothing; the determinism check is vacuous")
	}
}

// TestWrapConvergence is the core chaos contract: with the fault cap
// below the retry budget, every job converges and every artifact is
// byte-identical to the fault-free run.
func TestWrapConvergence(t *testing.T) {
	spec, err := Parse("seed:5;fail:0.6;panic:0.2;slow:0.2,1ms")
	if err != nil {
		t.Fatal(err)
	}
	baseline := (&runner.Pool{Jobs: 2}).Run(context.Background(), testJobs(12))

	in := New(spec)
	pool := &runner.Pool{
		Jobs:  2,
		Retry: runner.RetryPolicy{MaxAttempts: spec.RetryAttempts(), Seed: spec.Seed, Base: time.Millisecond},
	}
	results := pool.Run(context.Background(), in.Wrap(testJobs(12)))
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("%s failed terminally under chaos: %v (history %+v)", res.ID, res.Err, res.History)
			continue
		}
		if !bytes.Equal(res.Artifact, baseline[i].Artifact) {
			t.Errorf("%s artifact diverged from the fault-free run", res.ID)
		}
	}
	if in.BodyFaults() == 0 {
		t.Fatalf("no body faults injected; convergence was never tested")
	}
	if st := pool.Stats(); st.Retries == 0 {
		t.Errorf("chaos run recorded no retries despite %d injected faults", in.BodyFaults())
	}
}

// TestFaultCapConverges checks the per-job cap directly: a job with
// certain fault probability still converges once the cap exhausts.
func TestFaultCapConverges(t *testing.T) {
	spec, err := Parse("seed:1;fail:1.0;maxfail:2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec)
	pool := &runner.Pool{
		Jobs:  1,
		Retry: runner.RetryPolicy{MaxAttempts: 3, Base: time.Millisecond, Jitter: -1},
	}
	res := pool.Run(context.Background(), in.Wrap(testJobs(1)))[0]
	if res.Err != nil || res.Attempts != 3 {
		t.Fatalf("result = %+v, want success on attempt 3 after 2 capped faults", res)
	}
}

// TestHangRespectsContext checks an injected hang blocks no longer than
// the attempt's context allows.
func TestHangRespectsContext(t *testing.T) {
	spec, err := Parse("seed:2;hang:1.0,1h;maxfail:1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec)
	pool := &runner.Pool{
		Jobs:        1,
		JobDeadline: 30 * time.Millisecond,
		Grace:       100 * time.Millisecond,
		Retry:       runner.RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Jitter: -1},
	}
	start := time.Now()
	res := pool.Run(context.Background(), in.Wrap(testJobs(1)))[0]
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung job blocked %v; the injected hang ignored its context", elapsed)
	}
	if res.Err != nil {
		t.Errorf("result = %+v, want recovery on the post-hang attempt", res.Err)
	}
	if got := in.Counts()["hang"]; got != 1 {
		t.Errorf("recorded %d hang events, want 1", got)
	}
}

// TestCorruptCache checks seeded cache sabotage is caught entry by entry
// by the quarantine path.
func TestCorruptCache(t *testing.T) {
	for _, mode := range []string{"bitflip", "truncate"} {
		spec, err := Parse(fmt.Sprintf("seed:4;corrupt:2,%s", mode))
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		cache := &runner.Cache{Dir: dir}
		fps := make([]string, 4)
		for i := range fps {
			key := runner.Key{Kind: "chaos-test", Scenario: fmt.Sprintf("job%d", i)}
			fps[i] = cache.Fingerprint(key)
			if err := cache.Put(fps[i], key, []byte(fmt.Sprintf("payload %d", i))); err != nil {
				t.Fatal(err)
			}
		}
		in := New(spec)
		n, err := in.CorruptCache(dir)
		if err != nil || n != 2 {
			t.Fatalf("mode %s: CorruptCache = %d, %v; want 2 entries mangled", mode, n, err)
		}

		misses := 0
		for _, fp := range fps {
			if _, ok := cache.Get(fp); !ok {
				misses++
			}
		}
		if misses != 2 || cache.CorruptCount() != 2 {
			t.Errorf("mode %s: %d misses, %d quarantined; want both 2", mode, misses, cache.CorruptCount())
		}
		// Quarantined files are preserved for forensics, not deleted.
		quarantined, err := os.ReadDir(filepath.Join(dir, runner.CorruptDirName))
		if err != nil || len(quarantined) != 2 {
			t.Errorf("mode %s: corrupt/ holds %d files (%v), want 2", mode, len(quarantined), err)
		}
	}
}

// TestTruncateManifest checks the torn-flush injection composes with
// LoadManifest's salvage.
func TestTruncateManifest(t *testing.T) {
	spec, err := Parse("seed:6;truncate-manifest:1")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := runner.LoadManifest(path)
	for i := 0; i < 8; i++ {
		if err := m.Record(fmt.Sprintf("job%02d", i), "ffff", runner.StatusDone, nil, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.ReadFile(path)

	in := New(spec)
	cut, err := in.TruncateManifest(path)
	if err != nil || !cut {
		t.Fatalf("TruncateManifest = %v, %v; want a cut", cut, err)
	}
	after, _ := os.ReadFile(path)
	if len(after) >= len(before) {
		t.Fatalf("manifest not truncated: %d -> %d bytes", len(before), len(after))
	}

	re := runner.LoadManifest(path)
	if re.RecoveredFrom == "" {
		t.Errorf("salvage not reported after injected truncation")
	}
	if re.Len() == 0 || re.Len() >= 8 {
		t.Errorf("recovered %d entries from a mid-file cut, want some but not all", re.Len())
	}
	for i := 0; i < re.Len(); i++ { // recovery keeps a prefix of complete entries
		if e, ok := re.Entry(fmt.Sprintf("job%02d", i)); ok && e.Status != runner.StatusDone {
			t.Errorf("recovered entry job%02d has status %q", i, e.Status)
		}
	}
}

// TestWriters smoke-tests the log and metrics renderings.
func TestWriters(t *testing.T) {
	spec, err := Parse("seed:1;fail:1.0;maxfail:1")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec)
	pool := &runner.Pool{Jobs: 1, Retry: runner.RetryPolicy{MaxAttempts: 2, Base: time.Millisecond, Jitter: -1}}
	pool.Run(context.Background(), in.Wrap(testJobs(2)))

	var log bytes.Buffer
	if err := in.WriteLog(&log); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(log.String(), "\n"); lines != len(in.Events()) {
		t.Errorf("log has %d lines for %d events", lines, len(in.Events()))
	}
	var prom bytes.Buffer
	if err := in.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `starvesim_chaos_injected_total{kind="error"} 2`) {
		t.Errorf("metrics missing the error counter:\n%s", prom.String())
	}
	if !strings.Contains(in.Summary(), "2 error") {
		t.Errorf("summary %q missing the fault counts", in.Summary())
	}
}

// testJobs builds n deterministic jobs whose artifacts depend only on
// their index.
func testJobs(n int) []runner.Job {
	jobs := make([]runner.Job, n)
	for i := range jobs {
		id := fmt.Sprintf("job%02d", i)
		payload := []byte(fmt.Sprintf("bytes for %s: %d", id, i*i))
		jobs[i] = runner.Job{
			ID: id,
			Run: func(ctx context.Context) ([]byte, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return payload, nil
			},
		}
	}
	return jobs
}
