// Package runner is the experiment orchestration engine: it executes sets
// of independent, deterministic emulation jobs on a bounded worker pool
// with context cancellation, per-job wall-clock deadlines, a
// content-addressed result cache, and a resumable batch manifest.
//
// A Job is a stable ID, a canonical configuration Key (whose SHA-256
// fingerprint is the cache address), and a body taking a context.Context.
// Because every emulation is a pure function of its configuration — runs
// are deterministic and the probe/guard layers are observation-only — a
// batch executed in parallel produces byte-identical artifacts to the
// same batch executed sequentially, and a cached artifact is
// indistinguishable from a re-run. Those two invariants are what make
// this subsystem safe; the parity and cache tests assert them.
//
// Jobs must honor their context: simulation-backed bodies thread it into
// network.Config (the event loop checks cancellation at run-tick
// granularity), so a blown deadline actually stops the work instead of
// leaking a goroutine that simulates forever.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"starvation/internal/guard"
)

// Job is one unit of a batch.
type Job struct {
	// ID is the stable, batch-unique identifier (manifest key).
	ID string
	// Key is the canonical configuration fingerprinted for the cache;
	// the zero Key marks the job uncacheable.
	Key Key
	// Run produces the job's serialized artifact. It must return
	// promptly (with ctx.Err()) once ctx is cancelled.
	Run func(ctx context.Context) ([]byte, error)
}

// JobResult is the outcome of one job in a batch.
type JobResult struct {
	ID string
	// Artifact is the job's output (nil on failure).
	Artifact []byte
	// Cached reports the artifact was restored from the cache without
	// re-simulating.
	Cached bool
	// Elapsed is the wall-clock execution time of the final attempt
	// (0 for cache hits).
	Elapsed time.Duration
	// Attempts counts executions of the job body (0 for cache hits,
	// 1 for a first-attempt success, more when the retry policy fired).
	Attempts int
	// History records every failed attempt, including — on a terminal
	// failure — the final one (which Err carries in full).
	History []AttemptError
	// Err is the structured failure, nil on success.
	Err *guard.RunError
}

// ProgressKind classifies a progress event.
type ProgressKind uint8

const (
	// ProgressStart: a worker began executing the job.
	ProgressStart ProgressKind = iota
	// ProgressDone: the job produced its artifact.
	ProgressDone
	// ProgressCached: the job was restored from the cache.
	ProgressCached
	// ProgressFailed: the job failed terminally (panic, error, deadline,
	// cancel — with no retry budget left or a non-retryable kind).
	ProgressFailed
	// ProgressRetry: an attempt failed but the retry policy grants
	// another; Err carries the attempt's failure, Attempt the attempt
	// number that failed. Not a terminal event — Done does not advance.
	ProgressRetry
)

func (k ProgressKind) String() string {
	switch k {
	case ProgressStart:
		return "start"
	case ProgressDone:
		return "done"
	case ProgressCached:
		return "cached"
	case ProgressFailed:
		return "failed"
	case ProgressRetry:
		return "retry"
	}
	return fmt.Sprintf("progress(%d)", uint8(k))
}

// ProgressEvent is one observable state transition of a batch. Events
// are delivered from worker goroutines, serialized by an internal lock,
// so a Progress callback needs no synchronization of its own.
type ProgressEvent struct {
	Job  string
	Kind ProgressKind
	// Done and Total count completed (done+cached+failed) jobs and the
	// batch size, for "3/12"-style reporting.
	Done, Total int
	// Elapsed is the job's execution time (ProgressDone/ProgressFailed/
	// ProgressRetry).
	Elapsed time.Duration
	// Attempt is the 1-based attempt number this event belongs to.
	Attempt int
	// Err accompanies ProgressFailed and ProgressRetry.
	Err *guard.RunError
}

// Stats are the batch counters, exported in the obs counter-registry
// idiom (see WritePrometheus).
type Stats struct {
	// Executed counts jobs that actually simulated.
	Executed int64 `json:"executed"`
	// CacheHits counts jobs restored from the content-addressed cache.
	CacheHits int64 `json:"cache_hits"`
	// Failed counts jobs that ended in a RunError.
	Failed int64 `json:"failed"`
	// Retries counts re-attempts granted by the retry policy (a job that
	// failed twice and then succeeded contributes 2).
	Retries int64 `json:"retries"`
	// Inflight gauges the jobs executing (or restoring) right now — the
	// shared-pool occupancy a serving scheduler watches for saturation.
	Inflight int64 `json:"inflight"`
	// CacheCorrupt counts cache entries quarantined on read (checksum
	// mismatch or undecodable envelope); 0 when the pool has no cache.
	CacheCorrupt int64 `json:"cache_corrupt"`
	// HeapAllocBytes/TotalAllocs/NumGC are the driver process's memory
	// self-telemetry, read once per Stats call (runtime.ReadMemStats is
	// off every job's hot path).
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	TotalAllocs    uint64 `json:"total_allocs"`
	NumGC          uint32 `json:"num_gc"`
	// Goroutines gauges pool + job concurrency at collection time.
	Goroutines int `json:"goroutines"`
}

// DefaultGrace is the post-cancellation wait for a job to acknowledge
// its context before the pool abandons its goroutine.
const DefaultGrace = 250 * time.Millisecond

// Pool executes job sets on bounded workers.
type Pool struct {
	// Jobs is the worker count; 0 selects GOMAXPROCS.
	Jobs int
	// JobDeadline is the per-job wall-clock budget; 0 disables it.
	JobDeadline time.Duration
	// Grace is how long a cancelled job may take to return before its
	// goroutine is abandoned (0 selects DefaultGrace). A job that honors
	// its context returns well inside any reasonable grace; the window
	// only matters for bodies stuck outside the simulator.
	Grace time.Duration
	// Cache, when non-nil, serves and stores artifacts by fingerprint.
	Cache *Cache
	// Manifest, when non-nil, records every outcome for resumption.
	Manifest *Manifest
	// Retry is the supervision policy: the zero value gives every job a
	// single attempt (the pre-supervision behavior).
	Retry RetryPolicy
	// Progress, when non-nil, observes batch state transitions.
	Progress func(ProgressEvent)

	executed  atomic.Int64
	cacheHits atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64
	inflight  atomic.Int64

	progressMu sync.Mutex
	completed  int
	total      int
}

// Exec is one job execution request on a shared, long-running pool (see
// Execute). The optional fields route the execution's side channels away
// from the pool-wide defaults so independent batches can share one pool —
// one cache, one counter set — without sharing progress streams,
// manifests, or supervision budgets.
type Exec struct {
	// Job is the unit to execute (or restore from the cache).
	Job Job
	// Progress, when non-nil, observes this execution's state transitions.
	// Unlike Pool.Progress, events carry no Done/Total — a shared pool has
	// no batch denominator; the caller layers its own accounting on top.
	Progress func(ProgressEvent)
	// Manifest, when non-nil, records the outcome for resumption instead
	// of the pool's manifest (a shared pool typically has none).
	Manifest *Manifest
	// Retry, when non-nil, overrides the pool's retry policy for this
	// execution (e.g. a chaos batch bringing its own attempt budget).
	Retry *RetryPolicy
}

// Stats returns the pool's batch counters plus process self-telemetry.
func (p *Pool) Stats() Stats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	var corrupt int64
	if p.Cache != nil {
		corrupt = p.Cache.CorruptCount()
	}
	return Stats{
		Executed:       p.executed.Load(),
		CacheHits:      p.cacheHits.Load(),
		Failed:         p.failed.Load(),
		Retries:        p.retries.Load(),
		Inflight:       p.inflight.Load(),
		CacheCorrupt:   corrupt,
		HeapAllocBytes: ms.HeapAlloc,
		TotalAllocs:    ms.Mallocs,
		NumGC:          ms.NumGC,
		Goroutines:     runtime.NumGoroutine(),
	}
}

// WritePrometheus renders the batch counters in the Prometheus text
// exposition format, mirroring internal/obs's exporter so batch progress
// is visible through the same tooling as packet counters.
func (p *Pool) WritePrometheus(w io.Writer) error {
	st := p.Stats()
	rows := []struct {
		name, help string
		value      int64
	}{
		{"starvesim_runner_jobs_executed_total", "Batch jobs that simulated.", st.Executed},
		{"starvesim_runner_cache_hits_total", "Batch jobs restored from the result cache.", st.CacheHits},
		{"starvesim_runner_jobs_failed_total", "Batch jobs that ended in a RunError.", st.Failed},
		{"starvesim_runner_retries_total", "Re-attempts granted by the retry policy.", st.Retries},
		{"starvesim_runner_cache_corrupt_total", "Cache entries quarantined on read (checksum mismatch or undecodable envelope).", st.CacheCorrupt},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			r.name, r.help, r.name, r.name, r.value); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		value      uint64
	}{
		{"starvesim_runner_inflight_jobs", "Jobs executing or restoring right now.", uint64(st.Inflight)},
		{"starvesim_runner_heap_alloc_bytes", "Driver process live heap at collection time.", st.HeapAllocBytes},
		{"starvesim_runner_total_allocs", "Driver process cumulative allocations.", st.TotalAllocs},
		{"starvesim_runner_num_gc", "Driver process completed GC cycles.", uint64(st.NumGC)},
		{"starvesim_runner_goroutines", "Goroutines alive at collection time.", uint64(st.Goroutines)},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.value); err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) workers() int {
	if p.Jobs > 0 {
		return p.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (p *Pool) grace() time.Duration {
	if p.Grace > 0 {
		return p.Grace
	}
	return DefaultGrace
}

func (p *Pool) emit(ev ProgressEvent) {
	p.progressMu.Lock()
	if ev.Kind != ProgressStart && ev.Kind != ProgressRetry {
		p.completed++
	}
	ev.Done, ev.Total = p.completed, p.total
	fn := p.Progress
	if fn != nil {
		// Deliver under the lock so callbacks arrive serialized and
		// Done/Total never run backwards.
		fn(ev)
	}
	p.progressMu.Unlock()
}

// Run executes the batch and returns one JobResult per job, in input
// order regardless of completion order — the property batch drivers rely
// on for byte-identical parallel output. Duplicate job IDs are a
// programming error and panic. Cancelling ctx stops the batch: running
// jobs are cancelled and unstarted jobs report a cancellation RunError.
func (p *Pool) Run(ctx context.Context, jobs []Job) []JobResult {
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if seen[j.ID] {
			panic(fmt.Sprintf("runner: duplicate job ID %q", j.ID))
		}
		seen[j.ID] = true
	}
	p.progressMu.Lock()
	p.completed, p.total = 0, len(jobs)
	p.progressMu.Unlock()

	results := make([]JobResult, len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	env := execEnv{emit: p.emit, manifest: p.Manifest, retry: p.Retry}
	for w := 0; w < p.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = p.runOne(ctx, jobs[i], env)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Execute runs (or restores) a single job on the pool's shared machinery —
// cache, counters, panic capture, per-job deadline — outside any batch.
// It is the entry point for long-running services that schedule jobs one
// at a time from their own queues: each call is independent, safe to make
// concurrently from many goroutines, and routes its progress events and
// manifest records to the Exec's own sinks instead of the pool's. The
// caller bounds concurrency itself (the pool's Jobs field only sizes
// Run's worker set).
func (p *Pool) Execute(ctx context.Context, ex Exec) JobResult {
	env := execEnv{emit: func(ev ProgressEvent) {
		if ex.Progress != nil {
			ex.Progress(ev)
		}
	}, manifest: ex.Manifest, retry: p.Retry}
	if ex.Retry != nil {
		env.retry = *ex.Retry
	}
	return p.runOne(ctx, ex.Job, env)
}

// execEnv routes one execution's side channels: progress events, the
// manifest recording the outcome, and the supervising retry policy.
// Pool.Run wires the pool-wide defaults; Execute wires per-call sinks.
type execEnv struct {
	emit     func(ProgressEvent)
	manifest *Manifest
	retry    RetryPolicy
}

// runOne executes (or restores) a single job, supervising attempts under
// the environment's retry policy.
func (p *Pool) runOne(ctx context.Context, job Job, env execEnv) JobResult {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	var fp string
	if !job.Key.IsZero() && p.Cache != nil {
		fp = p.Cache.Fingerprint(job.Key)
		if art, ok := p.Cache.Get(fp); ok {
			p.cacheHits.Add(1)
			// Record only when the manifest doesn't already say done under
			// this fingerprint, so a resumed batch keeps the original
			// attempt history instead of overwriting it with a cache hit.
			if env.manifest == nil || !env.manifest.Done(job.ID, fp) {
				env.record(job.ID, fp, StatusDone, nil, 0, nil)
			}
			env.emit(ProgressEvent{Job: job.ID, Kind: ProgressCached})
			return JobResult{ID: job.ID, Artifact: art, Cached: true}
		}
	}
	if err := ctx.Err(); err != nil {
		// The batch was cancelled before this job started; report
		// without touching the manifest (the job never ran).
		rerr := &guard.RunError{Scenario: job.ID, Kind: guard.KindCancelled, Msg: "batch cancelled before job started"}
		p.failed.Add(1)
		env.emit(ProgressEvent{Job: job.ID, Kind: ProgressFailed, Err: rerr})
		return JobResult{ID: job.ID, Err: rerr}
	}

	var history []AttemptError
	for attempt := 1; ; attempt++ {
		env.emit(ProgressEvent{Job: job.ID, Kind: ProgressStart, Attempt: attempt})
		art, elapsed, rerr := p.attempt(ctx, job)
		if rerr == nil {
			p.executed.Add(1)
			if fp != "" {
				// Best-effort: a full or read-only cache dir degrades warm
				// re-runs (the job re-simulates next time), not this batch.
				_ = p.Cache.Put(fp, job.Key, art)
			}
			env.record(job.ID, fp, StatusDone, nil, attempt, history)
			env.emit(ProgressEvent{Job: job.ID, Kind: ProgressDone, Elapsed: elapsed, Attempt: attempt})
			return JobResult{ID: job.ID, Artifact: art, Elapsed: elapsed, Attempts: attempt, History: history}
		}
		history = append(history, attemptError(attempt, rerr))
		if attempt >= env.retry.maxAttempts() || !env.retry.retryable(rerr.Kind) || ctx.Err() != nil {
			return p.fail(job.ID, fp, rerr, elapsed, attempt, history, env)
		}
		p.retries.Add(1)
		env.emit(ProgressEvent{Job: job.ID, Kind: ProgressRetry, Elapsed: elapsed, Attempt: attempt, Err: rerr})
		if !sleepCtx(ctx, env.retry.Backoff(job.ID, attempt)) {
			rerr := &guard.RunError{Scenario: job.ID, Seed: job.Key.Seed, Kind: guard.KindCancelled,
				Msg: fmt.Sprintf("batch cancelled during retry backoff (after attempt %d)", attempt)}
			return p.fail(job.ID, fp, rerr, elapsed, attempt, history, env)
		}
	}
}

// attempt executes the job body once under panic capture, the per-job
// deadline, and the abandonment grace window, returning the artifact or
// a classified RunError.
func (p *Pool) attempt(ctx context.Context, job Job) ([]byte, time.Duration, *guard.RunError) {
	jctx := ctx
	cancel := context.CancelFunc(func() {})
	if p.JobDeadline > 0 {
		jctx, cancel = context.WithTimeout(ctx, p.JobDeadline)
	}
	defer cancel()

	type outcome struct {
		art  []byte
		err  error
		rerr *guard.RunError
	}
	done := make(chan outcome, 1)
	start := time.Now()
	go func() {
		var o outcome
		o.rerr = guard.Capture(job.ID, job.Key.Seed, nil, func() {
			o.art, o.err = job.Run(jctx)
		})
		done <- o
	}()

	var o outcome
	select {
	case o = <-done:
	case <-jctx.Done():
		// Give the body its grace to notice the cancellation; a
		// simulation-backed job returns within a few event ticks.
		t := time.NewTimer(p.grace())
		select {
		case o = <-done:
			t.Stop()
		case <-t.C:
			rerr := &guard.RunError{
				Scenario: job.ID,
				Seed:     job.Key.Seed,
				Kind:     p.cancelKind(ctx, jctx),
				Msg: fmt.Sprintf("cancelled after %v and did not stop within %v; goroutine abandoned",
					time.Since(start).Round(time.Millisecond), p.grace()),
			}
			return nil, time.Since(start), rerr
		}
	}
	elapsed := time.Since(start)
	return o.art, elapsed, p.classify(job, jctx, ctx, o.rerr, o.err)
}

// classify converts a job outcome into a structured RunError (nil on
// success), attributing context expiry to the right cause.
func (p *Pool) classify(job Job, jctx, ctx context.Context, rerr *guard.RunError, err error) *guard.RunError {
	if rerr != nil {
		return rerr // panic, already structured by guard.Capture
	}
	if err == nil {
		return nil
	}
	var re *guard.RunError
	if errors.As(err, &re) {
		// The body already classified its failure (e.g. a KindExport from
		// a flushing sink); keep the kind so retryability is honored.
		return re
	}
	kind := guard.KindError
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
		jctx.Err() != nil {
		kind = p.cancelKind(ctx, jctx)
	}
	return &guard.RunError{Scenario: job.ID, Seed: job.Key.Seed, Kind: kind, Msg: err.Error()}
}

// cancelKind distinguishes a per-job deadline from a batch cancellation.
func (p *Pool) cancelKind(ctx, jctx context.Context) guard.ErrKind {
	if ctx.Err() != nil {
		return guard.KindCancelled
	}
	if errors.Is(jctx.Err(), context.DeadlineExceeded) {
		return guard.KindDeadline
	}
	return guard.KindCancelled
}

func (p *Pool) fail(id, fp string, rerr *guard.RunError, elapsed time.Duration, attempts int, history []AttemptError, env execEnv) JobResult {
	p.failed.Add(1)
	env.record(id, fp, StatusFailed, rerr, attempts, history)
	env.emit(ProgressEvent{Job: id, Kind: ProgressFailed, Elapsed: elapsed, Attempt: attempts, Err: rerr})
	return JobResult{ID: id, Elapsed: elapsed, Attempts: attempts, History: history, Err: rerr}
}

func (env execEnv) record(id, fp string, status JobStatus, rerr *guard.RunError, attempts int, history []AttemptError) {
	if env.manifest != nil {
		// Flush errors are non-fatal by design; see Manifest.Record.
		_ = env.manifest.Record(id, fp, status, rerr, attempts, history)
	}
}

// ForEach runs fn(ctx, i) for i in [0, n) on a bounded worker pool and
// returns the first error by index (not by completion time, so the
// result is deterministic). It is the lightweight in-memory sibling of
// Pool.Run for parallel loops inside a measurement — sweep points, seed
// sweeps — where results land in caller-owned slices indexed by i.
// workers ≤ 1 runs inline, preserving strict sequential semantics.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	return ForEachWorker(ctx, workers, n, func(ctx context.Context, _, i int) error {
		return fn(ctx, i)
	})
}

// Workers returns the effective worker count ForEachWorker uses for the
// given request: workers (0 selecting GOMAXPROCS) capped at n, floored at
// one. Callers that pre-size per-worker scratch state — recycled
// network sessions, arenas — size it with this.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEachWorker is ForEach with the worker's identity threaded through:
// fn(ctx, worker, i) with worker in [0, Workers(workers, n)). Every index
// i runs on exactly one worker, and each worker id is served by exactly
// one goroutine, so fn may keep per-worker scratch state (a recycled
// network.Session, a reused buffer) in a slice indexed by worker with no
// locking. workers ≤ 1 runs inline as worker 0, preserving strict
// sequential semantics.
func ForEachWorker(ctx context.Context, workers, n int, fn func(ctx context.Context, worker, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = fn(ctx, w, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
