package runner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"starvation/internal/guard"
)

// TestManifestRoundTrip checks Record→Load preserves outcomes, including
// the structured error of a failed job.
func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := LoadManifest(path)
	if m.Len() != 0 {
		t.Fatalf("fresh manifest has %d entries", m.Len())
	}
	if err := m.Record("F1", "aaaa", StatusDone, nil, 1, nil); err != nil {
		t.Fatalf("Record: %v", err)
	}
	rerr := &guard.RunError{Scenario: "F3", Kind: guard.KindDeadline, Msg: "too slow"}
	hist := []AttemptError{
		{Attempt: 1, Kind: guard.KindDeadline, Msg: "too slow"},
		{Attempt: 2, Kind: guard.KindDeadline, Msg: "too slow"},
	}
	if err := m.Record("F3", "bbbb", StatusFailed, rerr, 2, hist); err != nil {
		t.Fatalf("Record: %v", err)
	}

	re := LoadManifest(path)
	if !re.Done("F1", "aaaa") {
		t.Errorf("F1 not resumable after reload")
	}
	if re.Done("F1", "cccc") {
		t.Errorf("F1 resumable under a different fingerprint: config changes must re-run")
	}
	if re.Done("F3", "bbbb") {
		t.Errorf("failed job reported resumable")
	}
	e, ok := re.Entry("F3")
	if !ok || e.Err == nil || e.Err.Kind != guard.KindDeadline {
		t.Errorf("F3 entry = %+v, %v; want preserved deadline error", e, ok)
	}
	if e.Attempts != 2 || len(e.History) != 2 || e.History[1].Attempt != 2 {
		t.Errorf("F3 attempt history = attempts %d history %+v; want 2 attempts with full history", e.Attempts, e.History)
	}
}

// TestManifestTornFile checks an interrupted flush (half-written JSON)
// degrades to an empty manifest rather than blocking resumption.
func TestManifestTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"jobs":{"F1":{"fing`), 0o644); err != nil {
		t.Fatal(err)
	}
	m := LoadManifest(path)
	if m.Len() != 0 {
		t.Errorf("torn manifest yielded %d entries, want 0", m.Len())
	}
}

// TestPoolResume is the end-to-end resumable-batch test: a batch is
// interrupted partway (simulated by cancelling after two completions),
// and the re-run executes only the jobs the manifest+cache do not cover.
func TestPoolResume(t *testing.T) {
	dir := t.TempDir()
	cache := &Cache{Dir: filepath.Join(dir, "cache")}
	maniPath := filepath.Join(dir, "manifest.json")

	var bodyRuns atomic.Int64
	mkJobs := func() []Job {
		jobs := make([]Job, 6)
		for i := range jobs {
			i := i
			jobs[i] = Job{
				ID:  fmt.Sprintf("sec%d", i),
				Key: Key{Kind: "resume-test", Scenario: fmt.Sprintf("sec%d", i)},
				Run: func(ctx context.Context) ([]byte, error) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					bodyRuns.Add(1)
					return []byte(fmt.Sprintf("artifact-%d", i)), nil
				},
			}
		}
		return jobs
	}

	// First batch: cancel after the second completion — an interrupt.
	ctx, cancel := context.WithCancel(context.Background())
	var completions atomic.Int64
	p1 := &Pool{
		Jobs:     1,
		Cache:    cache,
		Manifest: LoadManifest(maniPath),
		Progress: func(ev ProgressEvent) {
			if ev.Kind == ProgressDone && completions.Add(1) == 2 {
				cancel()
			}
		},
	}
	p1.Run(ctx, mkJobs())
	interrupted := bodyRuns.Load()
	if interrupted >= 6 {
		t.Fatalf("interrupt did not interrupt: %d bodies ran", interrupted)
	}

	// Resumed batch: only the incomplete jobs may execute.
	p2 := &Pool{Jobs: 1, Cache: cache, Manifest: LoadManifest(maniPath)}
	results := p2.Run(context.Background(), mkJobs())
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("resumed job %d failed: %v", i, r.Err)
		}
		if want := fmt.Sprintf("artifact-%d", i); string(r.Artifact) != want {
			t.Errorf("resumed job %d artifact %q, want %q", i, r.Artifact, want)
		}
	}
	total := bodyRuns.Load()
	if executed := total - interrupted; executed != 6-interrupted {
		t.Errorf("resume executed %d bodies, want exactly the %d incomplete ones",
			executed, 6-interrupted)
	}
	st := p2.Stats()
	if st.CacheHits != interrupted || st.Executed != 6-interrupted {
		t.Errorf("resume stats = %+v, want %d hits %d executed", st, interrupted, 6-interrupted)
	}

	// Third run: a fully warm batch restores everything.
	p3 := &Pool{Jobs: 4, Cache: cache, Manifest: LoadManifest(maniPath)}
	p3.Run(context.Background(), mkJobs())
	if bodyRuns.Load() != total {
		t.Errorf("warm batch re-simulated jobs")
	}
	if st := p3.Stats(); st.CacheHits != 6 {
		t.Errorf("warm stats = %+v, want 6 cache hits", st)
	}
}
