package runner

import (
	"testing"
	"time"
)

// referenceKey is the pinned reference job: the T5 bbr-two scenario at
// its published parameters.
func referenceKey() Key {
	return Key{
		Kind:     "figures-section",
		Scenario: "bbr-two",
		Seed:     2,
		Duration: 60 * time.Second,
		Faults:   "ge:0.008,0.2,0.5",
		Params:   []string{"quick=false", "obs=false"},
	}
}

// TestFingerprintGolden pins the fingerprint of the reference key so an
// accidental change to the canonical encoding (field order, separators,
// added fields) is caught: such a change silently invalidates every
// existing cache, which must only ever happen via a deliberate
// SchemaVersion bump.
func TestFingerprintGolden(t *testing.T) {
	const want = "d609b0b126415cfb663835aefc1620ac331a72ec2904bfa45d604528f8e891df"
	if got := referenceKey().Fingerprint(1); got != want {
		t.Errorf("reference fingerprint changed:\n got %s\nwant %s\n"+
			"If the Key encoding changed deliberately, bump SchemaVersion and repin.", got, want)
	}
}

// TestFingerprintFieldSeparation checks that no pair of keys assembled
// from shifted field contents collides: the length-prefixed encoding
// must keep "ab"+"c" distinct from "a"+"bc" in every adjacent pair.
func TestFingerprintFieldSeparation(t *testing.T) {
	base := referenceKey()
	variants := []Key{
		{Kind: base.Kind + "x", Scenario: base.Scenario[:len(base.Scenario)-1], Seed: base.Seed, Duration: base.Duration, Faults: base.Faults, Params: base.Params},
		{Kind: base.Kind, Scenario: base.Scenario + "1", Seed: base.Seed, Duration: base.Duration, Faults: base.Faults, Params: base.Params},
		{Kind: base.Kind, Scenario: base.Scenario, Seed: base.Seed + 1, Duration: base.Duration, Faults: base.Faults, Params: base.Params},
		{Kind: base.Kind, Scenario: base.Scenario, Seed: base.Seed, Duration: base.Duration + 1, Faults: base.Faults, Params: base.Params},
		{Kind: base.Kind, Scenario: base.Scenario, Seed: base.Seed, Duration: base.Duration, Faults: base.Faults + ";dup:0.1", Params: base.Params},
		{Kind: base.Kind, Scenario: base.Scenario, Seed: base.Seed, Duration: base.Duration, Faults: base.Faults, Params: []string{"quick=true", "obs=false"}},
	}
	seen := map[string]Key{base.Fingerprint(1): base}
	for _, v := range variants {
		fp := v.Fingerprint(1)
		if prev, dup := seen[fp]; dup {
			t.Errorf("collision: %v and %v share fingerprint %s", prev, v, fp)
		}
		seen[fp] = v
	}
}

// TestFingerprintParamOrder checks Params are canonicalized: permuting
// them must not change the address (callers build them from maps).
func TestFingerprintParamOrder(t *testing.T) {
	a := referenceKey()
	b := referenceKey()
	b.Params = []string{"obs=false", "quick=false"}
	if a.Fingerprint(1) != b.Fingerprint(1) {
		t.Errorf("param order changed the fingerprint: %s vs %s", a.Fingerprint(1), b.Fingerprint(1))
	}
}

// TestFingerprintSchema checks the schema version participates in the
// address, so a bump orphans (invalidates) every old entry.
func TestFingerprintSchema(t *testing.T) {
	k := referenceKey()
	if k.Fingerprint(1) == k.Fingerprint(2) {
		t.Errorf("schema bump did not change the fingerprint")
	}
}

// TestKeyIsZero pins the cacheability predicate.
func TestKeyIsZero(t *testing.T) {
	if !(Key{}).IsZero() {
		t.Errorf("zero Key not IsZero")
	}
	if (Key{Kind: "x"}).IsZero() || (Key{Seed: 1}).IsZero() || (Key{Params: []string{"a=1"}}).IsZero() {
		t.Errorf("non-zero Key reported IsZero")
	}
}
