package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"

	"starvation/internal/guard"
)

// JobStatus is the terminal state of a job in a batch manifest.
type JobStatus string

const (
	// StatusDone: the job produced an artifact (freshly or from cache).
	StatusDone JobStatus = "done"
	// StatusFailed: the job panicked, errored, or blew its deadline.
	StatusFailed JobStatus = "failed"
)

// ManifestEntry records the outcome of one job.
type ManifestEntry struct {
	// Fingerprint is the job's content address at completion time; a
	// later batch re-runs the job when its fingerprint differs (the
	// configuration changed) even though the ID matches.
	Fingerprint string    `json:"fingerprint"`
	Status      JobStatus `json:"status"`
	// Err carries the structured failure when Status is "failed".
	Err *guard.RunError `json:"err,omitempty"`
}

// manifestFile is the serialized form of a Manifest.
type manifestFile struct {
	Schema int                      `json:"schema"`
	Jobs   map[string]ManifestEntry `json:"jobs"`
}

// Manifest is the resumable-batch record: one entry per completed job,
// flushed to disk after every completion so an interrupted batch can be
// resumed. A re-run treats "done with matching fingerprint" as
// restorable (the artifact comes from the cache) and executes only
// missing, failed, or changed jobs.
type Manifest struct {
	// Path is the manifest file; empty disables persistence (the
	// manifest still tracks state in memory).
	Path string

	mu   sync.Mutex
	jobs map[string]ManifestEntry
}

// LoadManifest reads the manifest at path, returning an empty manifest
// when the file does not exist or does not parse (a torn write during an
// interrupt must never block resumption — affected jobs just re-run).
func LoadManifest(path string) *Manifest {
	m := &Manifest{Path: path, jobs: map[string]ManifestEntry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return m
	}
	var f manifestFile
	if err := json.Unmarshal(data, &f); err != nil || f.Schema != SchemaVersion {
		return m
	}
	if f.Jobs != nil {
		m.jobs = f.Jobs
	}
	return m
}

// Done reports whether the manifest records the job as completed under
// the same fingerprint — the resume predicate.
func (m *Manifest) Done(id, fp string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	return ok && e.Status == StatusDone && e.Fingerprint == fp
}

// Entry returns the recorded outcome of a job.
func (m *Manifest) Entry(id string) (ManifestEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	return e, ok
}

// Len returns the number of recorded jobs.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Record stores a job outcome and flushes the manifest to disk. Flush
// failures are returned but the in-memory record is kept either way: a
// read-only filesystem degrades resume, not the batch itself.
func (m *Manifest) Record(id, fp string, status JobStatus, rerr *guard.RunError) error {
	m.mu.Lock()
	if m.jobs == nil {
		m.jobs = map[string]ManifestEntry{}
	}
	m.jobs[id] = ManifestEntry{Fingerprint: fp, Status: status, Err: rerr}
	data, err := json.MarshalIndent(manifestFile{Schema: SchemaVersion, Jobs: m.jobs}, "", "  ")
	m.mu.Unlock()
	if err != nil || m.Path == "" {
		return err
	}
	// Write-then-rename so an interrupt mid-flush leaves the previous
	// (still valid) manifest in place.
	tmp, err := os.CreateTemp(filepath.Dir(m.Path), ".manifest.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), m.Path)
}
