package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"starvation/internal/guard"
)

// JobStatus is the terminal state of a job in a batch manifest.
type JobStatus string

const (
	// StatusDone: the job produced an artifact (freshly or from cache).
	StatusDone JobStatus = "done"
	// StatusFailed: the job panicked, errored, or blew its deadline.
	StatusFailed JobStatus = "failed"
)

// ManifestEntry records the outcome of one job.
type ManifestEntry struct {
	// Fingerprint is the job's content address at completion time; a
	// later batch re-runs the job when its fingerprint differs (the
	// configuration changed) even though the ID matches.
	Fingerprint string    `json:"fingerprint"`
	Status      JobStatus `json:"status"`
	// Attempts counts body executions behind this outcome (0 when the
	// artifact came straight from the cache).
	Attempts int `json:"attempts,omitempty"`
	// History lists the failed attempts the retry policy absorbed before
	// this outcome; it survives resume so a flaky section stays visible
	// after the batch completes.
	History []AttemptError `json:"history,omitempty"`
	// HistoryDropped counts absorbed-failure records Compact trimmed from
	// History, so a compacted manifest still discloses how flaky the job
	// has been over its lifetime.
	HistoryDropped int `json:"history_dropped,omitempty"`
	// Err carries the structured failure when Status is "failed".
	Err *guard.RunError `json:"err,omitempty"`
}

// manifestFile is the serialized form of a Manifest.
type manifestFile struct {
	Schema int                      `json:"schema"`
	Jobs   map[string]ManifestEntry `json:"jobs"`
}

// Manifest is the resumable-batch record: one entry per completed job,
// flushed to disk after every completion so an interrupted batch can be
// resumed. A re-run treats "done with matching fingerprint" as
// restorable (the artifact comes from the cache) and executes only
// missing, failed, or changed jobs.
type Manifest struct {
	// Path is the manifest file; empty disables persistence (the
	// manifest still tracks state in memory).
	Path string
	// RecoveredFrom describes the salvage LoadManifest performed when the
	// file on disk was truncated or corrupt: how many complete entries it
	// recovered and from how many bytes. Empty for a cleanly parsed (or
	// absent) manifest. Diagnostic only — the next Record rewrites the
	// file whole.
	RecoveredFrom string

	mu   sync.Mutex
	jobs map[string]ManifestEntry
}

// LoadManifest reads the manifest at path. A missing file yields an empty
// manifest. A truncated or corrupt file — a torn write during an
// interrupt, a chaos-injected truncation — is salvaged entry by entry:
// every job record that decodes completely is recovered (those jobs
// resume from cache), the damage is noted in RecoveredFrom, and only the
// incomplete trailing record is lost and re-runs.
func LoadManifest(path string) *Manifest {
	m := &Manifest{Path: path, jobs: map[string]ManifestEntry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return m
	}
	var f manifestFile
	if err := json.Unmarshal(data, &f); err == nil {
		if f.Schema != SchemaVersion {
			return m // a different schema's outcomes don't resume this one
		}
		if f.Jobs != nil {
			m.jobs = f.Jobs
		}
		return m
	}
	if jobs, ok := recoverManifest(data); ok {
		m.jobs = jobs
		m.RecoveredFrom = fmt.Sprintf("recovered %d complete entr%s from damaged manifest (%d bytes)",
			len(jobs), plural(len(jobs), "y", "ies"), len(data))
	}
	return m
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// recoverManifest walks the token stream of a damaged manifest file and
// collects every job entry that decodes completely before the damage.
// It reports ok=false when the bytes don't even begin as this manifest's
// schema — arbitrary garbage recovers nothing.
func recoverManifest(data []byte) (map[string]ManifestEntry, bool) {
	dec := json.NewDecoder(bytes.NewReader(data))
	if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
		return nil, false
	}
	jobs := map[string]ManifestEntry{}
	sawSchema := false
fields:
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		key, isKey := tok.(string)
		if !isKey {
			break // the object's closing '}' (or damage)
		}
		switch key {
		case "schema":
			var v int
			if err := dec.Decode(&v); err != nil || v != SchemaVersion {
				return nil, false
			}
			sawSchema = true
		case "jobs":
			if !sawSchema {
				// Schema unseen: these entries may belong to an
				// incompatible version; refuse to resume from them.
				return nil, false
			}
			if tok, err := dec.Token(); err != nil || tok != json.Delim('{') {
				return jobs, true
			}
			for {
				tok, err := dec.Token()
				if err != nil {
					return jobs, true
				}
				id, isID := tok.(string)
				if !isID {
					break // jobs object closed cleanly
				}
				var e ManifestEntry
				if err := dec.Decode(&e); err != nil {
					// The entry the damage fell in: drop it, keep the rest.
					return jobs, true
				}
				jobs[id] = e
			}
		default:
			// Unknown field (a future addition): skip its value.
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				break fields
			}
		}
	}
	return jobs, sawSchema
}

// Done reports whether the manifest records the job as completed under
// the same fingerprint — the resume predicate.
func (m *Manifest) Done(id, fp string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	return ok && e.Status == StatusDone && e.Fingerprint == fp
}

// Entry returns the recorded outcome of a job.
func (m *Manifest) Entry(id string) (ManifestEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.jobs[id]
	return e, ok
}

// Len returns the number of recorded jobs.
func (m *Manifest) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// Record stores a job outcome — including its attempt count and the
// failed attempts the retry policy absorbed — and flushes the manifest
// to disk. Flush errors are returned but the in-memory record is kept
// either way: a read-only filesystem degrades resume, not the batch
// itself.
func (m *Manifest) Record(id, fp string, status JobStatus, rerr *guard.RunError, attempts int, history []AttemptError) error {
	m.mu.Lock()
	if m.jobs == nil {
		m.jobs = map[string]ManifestEntry{}
	}
	// A re-run of a previously compacted job carries the disclosed drop
	// count forward instead of silently resetting the history ledger.
	dropped := m.jobs[id].HistoryDropped
	m.jobs[id] = ManifestEntry{Fingerprint: fp, Status: status, Attempts: attempts, History: history, HistoryDropped: dropped, Err: rerr}
	data, err := json.MarshalIndent(manifestFile{Schema: SchemaVersion, Jobs: m.jobs}, "", "  ")
	m.mu.Unlock()
	if err != nil || m.Path == "" {
		return err
	}
	return m.flush(data)
}

// flush writes the serialized manifest with write-then-rename so an
// interrupt mid-flush leaves the previous (still valid) manifest in place.
func (m *Manifest) flush(data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(m.Path), ".manifest.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), m.Path)
}

// HistoryLen returns the total absorbed-failure records across all
// entries — the quantity Compact bounds.
func (m *Manifest) HistoryLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.jobs {
		n += len(e.History)
	}
	return n
}

// Compact trims each entry's absorbed-failure history to its most recent
// keep records and rewrites the manifest in place, returning how many
// records were dropped. A long-running daemon that retries flaky jobs for
// weeks otherwise grows its manifests without bound; the trim is
// disclosed per entry in HistoryDropped, so total flakiness stays
// visible even after the individual records are gone. A manifest already
// within the bound is left untouched (no rewrite, returns 0).
func (m *Manifest) Compact(keep int) (int, error) {
	if keep < 0 {
		keep = 0
	}
	m.mu.Lock()
	dropped := 0
	for id, e := range m.jobs {
		if len(e.History) <= keep {
			continue
		}
		n := len(e.History) - keep
		e.History = append([]AttemptError(nil), e.History[n:]...)
		e.HistoryDropped += n
		m.jobs[id] = e
		dropped += n
	}
	if dropped == 0 || m.Path == "" {
		m.mu.Unlock()
		return dropped, nil
	}
	data, err := json.MarshalIndent(manifestFile{Schema: SchemaVersion, Jobs: m.jobs}, "", "  ")
	m.mu.Unlock()
	if err != nil {
		return dropped, err
	}
	return dropped, m.flush(data)
}
