package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCacheHitMiss covers the basic contract: a miss before Put, a
// byte-exact hit after, and independence of distinct keys.
func TestCacheHitMiss(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	k1 := referenceKey()
	k2 := referenceKey()
	k2.Seed = 3
	fp1, fp2 := c.Fingerprint(k1), c.Fingerprint(k2)

	if _, ok := c.Get(fp1); ok {
		t.Fatalf("hit on empty cache")
	}
	art := []byte(`{"rows":[1,2,3]}`)
	if err := c.Put(fp1, k1, art); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get(fp1)
	if !ok || !bytes.Equal(got, art) {
		t.Fatalf("Get after Put = %q, %v; want %q, true", got, ok, art)
	}
	if _, ok := c.Get(fp2); ok {
		t.Fatalf("different seed hit the same entry")
	}
}

// TestCacheSchemaBump walks an entry across a cache-schema version bump:
// written under schema 1 it must miss under schema 2 (the address
// changes AND the envelope check rejects), and re-populating under 2
// must not resurrect the schema-1 artifact.
func TestCacheSchemaBump(t *testing.T) {
	dir := t.TempDir()
	v1 := &Cache{Dir: dir, Schema: 1}
	v2 := &Cache{Dir: dir, Schema: 2}
	k := referenceKey()

	oldArt := []byte("schema-1 artifact")
	if err := v1.Put(v1.Fingerprint(k), k, oldArt); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, ok := v2.Get(v2.Fingerprint(k)); ok {
		t.Fatalf("schema-2 cache hit a schema-1 entry")
	}
	// Defense in depth: even reading the schema-1 address through the
	// schema-2 cache must miss on the envelope's embedded version.
	if _, ok := v2.Get(v1.Fingerprint(k)); ok {
		t.Fatalf("schema-2 cache accepted a schema-1 envelope")
	}

	newArt := []byte("schema-2 artifact")
	if err := v2.Put(v2.Fingerprint(k), k, newArt); err != nil {
		t.Fatalf("Put under schema 2: %v", err)
	}
	if got, ok := v2.Get(v2.Fingerprint(k)); !ok || !bytes.Equal(got, newArt) {
		t.Fatalf("schema-2 Get = %q, %v; want %q, true", got, ok, newArt)
	}
	if got, ok := v1.Get(v1.Fingerprint(k)); !ok || !bytes.Equal(got, oldArt) {
		t.Fatalf("schema-1 entry damaged by the bump: %q, %v", got, ok)
	}
}

// TestCacheCorruption mangles stored entries several ways and checks
// every defect reads as a miss — the cache must fall back to re-running,
// never return bad data.
func TestCacheCorruption(t *testing.T) {
	k := referenceKey()
	art := []byte("pristine artifact bytes")
	corruptions := []struct {
		name   string
		mangle func(path string) error
	}{
		{"truncated", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		}},
		{"bitflip-in-artifact", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			// Flip a byte inside the base64 artifact payload.
			i := bytes.Index(data, []byte(`"artifact":"`)) + len(`"artifact":"`) + 3
			data[i] ^= 0x01
			return os.WriteFile(p, data, 0o644)
		}},
		{"not-json", func(p string) error {
			return os.WriteFile(p, []byte("<html>quota exceeded</html>"), 0o644)
		}},
		{"empty", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			c := &Cache{Dir: t.TempDir()}
			fp := c.Fingerprint(k)
			if err := c.Put(fp, k, art); err != nil {
				t.Fatalf("Put: %v", err)
			}
			if err := tc.mangle(filepath.Join(c.Dir, fp[:2], fp+".json")); err != nil {
				t.Fatalf("mangle: %v", err)
			}
			if got, ok := c.Get(fp); ok {
				t.Fatalf("corrupted entry returned data: %q", got)
			}
			// Re-running overwrites the corpse and the cache heals.
			if err := c.Put(fp, k, art); err != nil {
				t.Fatalf("re-Put over corrupted entry: %v", err)
			}
			if got, ok := c.Get(fp); !ok || !bytes.Equal(got, art) {
				t.Fatalf("cache did not heal: %q, %v", got, ok)
			}
		})
	}
}
