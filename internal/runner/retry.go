package runner

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"starvation/internal/guard"
)

// Retry backoff defaults, applied when the corresponding RetryPolicy
// field is zero.
const (
	// DefaultRetryBase is the first-retry backoff delay.
	DefaultRetryBase = 100 * time.Millisecond
	// DefaultRetryMax caps the exponential backoff.
	DefaultRetryMax = 5 * time.Second
	// DefaultRetryJitter is the ±fraction of deterministic jitter applied
	// to every backoff delay.
	DefaultRetryJitter = 0.5
)

// RetryPolicy is the supervision contract of a Pool: how many times a
// failing job is re-attempted, how long the pool backs off between
// attempts, and which failure kinds are worth retrying at all.
//
// Backoff is exponential with deterministic seeded jitter: the delay
// before attempt k+1 is Base·2^(k-1), capped at Max, scaled by a factor
// in [1-Jitter, 1+Jitter] derived from (Seed, job ID, attempt). Two runs
// of the same batch with the same seed back off identically — retry
// timing is as reproducible as the simulations themselves, which is what
// lets the chaos parity tests assert byte-identical outcomes.
//
// The zero RetryPolicy disables retries (every job gets one attempt),
// preserving the pre-supervision Pool behavior.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per job; values <= 1 disable
	// retries.
	MaxAttempts int
	// Base is the first-retry delay (0 selects DefaultRetryBase).
	Base time.Duration
	// Max caps the exponential backoff (0 selects DefaultRetryMax).
	Max time.Duration
	// Jitter is the ±fraction of deterministic jitter (0 selects
	// DefaultRetryJitter; negative disables jitter entirely).
	Jitter float64
	// Seed drives the deterministic jitter.
	Seed int64
	// Retryable overrides retryability per failure kind; kinds absent
	// from a non-nil map are terminal. A nil map selects the guard-layer
	// default table (guard.ErrKind.Retryable): panic, deadline, export,
	// and error retry; cancelled and invariant are terminal.
	Retryable map[guard.ErrKind]bool
}

// Enabled reports whether the policy grants any retries.
func (rp RetryPolicy) Enabled() bool { return rp.MaxAttempts > 1 }

func (rp RetryPolicy) maxAttempts() int {
	if rp.MaxAttempts > 1 {
		return rp.MaxAttempts
	}
	return 1
}

// retryable reports whether a failure of kind k should be re-attempted
// under this policy.
func (rp RetryPolicy) retryable(k guard.ErrKind) bool {
	if rp.Retryable != nil {
		return rp.Retryable[k]
	}
	return k.Retryable()
}

// Backoff returns the deterministic delay before the retry that follows
// failed attempt number attempt (1-based) of the given job.
func (rp RetryPolicy) Backoff(jobID string, attempt int) time.Duration {
	base := rp.Base
	if base <= 0 {
		base = DefaultRetryBase
	}
	max := rp.Max
	if max <= 0 {
		max = DefaultRetryMax
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jit := rp.Jitter
	if jit == 0 {
		jit = DefaultRetryJitter
	}
	if jit > 0 {
		// Deterministic factor in [1-jit, 1+jit): reruns of a batch back
		// off identically for the same seed.
		u := SeededUnit(rp.Seed, "backoff", jobID, fmt.Sprint(attempt))
		d = time.Duration(float64(d) * (1 - jit + 2*jit*u))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// AttemptError is the compact record of one failed attempt, kept in
// JobResult and the batch manifest so attempt history survives resume.
type AttemptError struct {
	// Attempt is the 1-based attempt number that failed.
	Attempt int `json:"attempt"`
	// Kind classifies the failure (guard.ErrKind).
	Kind guard.ErrKind `json:"kind"`
	// Msg is the failure message, truncated for manifest hygiene.
	Msg string `json:"msg"`
}

// attemptErrMsgMax bounds the message kept per attempt; stacks and long
// wrapped errors live in the terminal RunError, not the history.
const attemptErrMsgMax = 200

func attemptError(attempt int, rerr *guard.RunError) AttemptError {
	msg := rerr.Msg
	if len(msg) > attemptErrMsgMax {
		msg = msg[:attemptErrMsgMax] + "…"
	}
	return AttemptError{Attempt: attempt, Kind: rerr.Kind, Msg: msg}
}

// SeededUnit hashes (seed, parts...) into a uniform float64 in [0, 1).
// It is the deterministic randomness source shared by retry jitter and
// the chaos injector: FNV-1a, so the mapping is stable across platforms
// and Go versions.
func SeededUnit(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	// 53 bits of hash → [0,1) exactly representable in a float64.
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// sleepCtx waits d or until ctx is cancelled, reporting whether the full
// wait completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
