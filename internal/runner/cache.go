package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is the content-addressed on-disk result store. Entries are
// addressed by Key fingerprint: <Dir>/<fp[:2]>/<fp>.json, each a JSON
// envelope carrying the artifact plus enough integrity metadata that a
// corrupted or mismatched entry reads as a miss, never as bad data.
type Cache struct {
	// Dir is the cache root; it is created on first Put.
	Dir string
	// Schema overrides the cache-schema version (0 selects SchemaVersion).
	// Entries written under one schema are unreachable under another: the
	// version participates in the fingerprint and is checked again inside
	// the envelope.
	Schema int
}

// entry is the on-disk envelope of one cached artifact.
type entry struct {
	// Schema is the cache-schema version the entry was written under.
	Schema int `json:"schema"`
	// Key is the diagnostic rendering of the job key (not hashed).
	Key string `json:"key"`
	// Sum is the hex SHA-256 of Artifact, verified on every read.
	Sum string `json:"sum"`
	// Artifact is the serialized job result.
	Artifact []byte `json:"artifact"`
}

func (c *Cache) schema() int {
	if c.Schema != 0 {
		return c.Schema
	}
	return SchemaVersion
}

// Fingerprint returns the content address of key under this cache's
// schema version.
func (c *Cache) Fingerprint(key Key) string { return key.Fingerprint(c.schema()) }

func (c *Cache) path(fp string) string {
	return filepath.Join(c.Dir, fp[:2], fp+".json")
}

// Get returns the cached artifact for the fingerprint. Any defect — a
// missing file, invalid JSON, a schema mismatch, or an artifact whose
// checksum does not match — is a miss: the caller re-runs the job and
// overwrites the entry.
func (c *Cache) Get(fp string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, false
	}
	if e.Schema != c.schema() {
		return nil, false
	}
	sum := sha256.Sum256(e.Artifact)
	if hex.EncodeToString(sum[:]) != e.Sum {
		return nil, false
	}
	return e.Artifact, true
}

// Put stores the artifact under the fingerprint, writing to a temp file
// and renaming so a crash mid-write leaves no half-entry (a torn entry
// would read as a miss anyway, via the checksum).
func (c *Cache) Put(fp string, key Key, artifact []byte) error {
	sum := sha256.Sum256(artifact)
	e := entry{
		Schema:   c.schema(),
		Key:      key.String(),
		Sum:      hex.EncodeToString(sum[:]),
		Artifact: artifact,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runner: encoding cache entry: %w", err)
	}
	path := c.path(fp)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+fp+".tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
