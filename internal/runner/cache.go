package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// CorruptDirName is the subdirectory of a cache root that quarantined
// entries are moved into, preserved for offline forensics (what got
// corrupted, and how) instead of being silently overwritten.
const CorruptDirName = "corrupt"

// Cache is the content-addressed on-disk result store. Entries are
// addressed by Key fingerprint: <Dir>/<fp[:2]>/<fp>.json, each a JSON
// envelope carrying the artifact plus enough integrity metadata that a
// corrupted or mismatched entry reads as a miss, never as bad data.
//
// A defective entry — an envelope that does not decode, or an artifact
// whose checksum does not match — is quarantined: the file moves to
// <Dir>/corrupt/, the corruption counter bumps, and one structured
// warning is emitted. The read still reports a miss, so the caller
// re-runs the job and the fresh Put heals the cache. A schema-version
// mismatch is not corruption (it is a deliberate invalidation) and reads
// as a plain miss.
type Cache struct {
	// Dir is the cache root; it is created on first Put.
	Dir string
	// Schema overrides the cache-schema version (0 selects SchemaVersion).
	// Entries written under one schema are unreachable under another: the
	// version participates in the fingerprint and is checked again inside
	// the envelope.
	Schema int
	// Warn, when non-nil, receives the one structured warning emitted per
	// quarantined entry. Nil writes a JSON line to stderr.
	Warn func(CorruptionEvent)

	corrupt atomic.Int64
}

// CorruptionEvent describes one quarantined cache entry.
type CorruptionEvent struct {
	// Fingerprint is the entry's content address.
	Fingerprint string `json:"fingerprint"`
	// Reason says what failed: "undecodable envelope" or "artifact
	// checksum mismatch".
	Reason string `json:"reason"`
	// Quarantined is the path the defective file was moved to (empty when
	// the move itself failed and the file was left in place).
	Quarantined string `json:"quarantined,omitempty"`
}

// entry is the on-disk envelope of one cached artifact.
type entry struct {
	// Schema is the cache-schema version the entry was written under.
	Schema int `json:"schema"`
	// Key is the diagnostic rendering of the job key (not hashed).
	Key string `json:"key"`
	// Sum is the hex SHA-256 of Artifact, verified on every read.
	Sum string `json:"sum"`
	// Artifact is the serialized job result.
	Artifact []byte `json:"artifact"`
}

func (c *Cache) schema() int {
	if c.Schema != 0 {
		return c.Schema
	}
	return SchemaVersion
}

// Fingerprint returns the content address of key under this cache's
// schema version.
func (c *Cache) Fingerprint(key Key) string { return key.Fingerprint(c.schema()) }

func (c *Cache) path(fp string) string {
	return filepath.Join(c.Dir, fp[:2], fp+".json")
}

// CorruptCount returns the number of entries quarantined by this Cache
// value since creation.
func (c *Cache) CorruptCount() int64 { return c.corrupt.Load() }

// Get returns the cached artifact for the fingerprint. A missing file or
// a schema mismatch is a plain miss. A defective entry — undecodable
// envelope or checksum-mismatched artifact — is quarantined (see the
// type comment) and also reads as a miss: the caller re-runs the job and
// the fresh Put overwrites the address.
func (c *Cache) Get(fp string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		c.quarantine(fp, "undecodable envelope")
		return nil, false
	}
	if e.Schema != c.schema() {
		return nil, false
	}
	sum := sha256.Sum256(e.Artifact)
	if hex.EncodeToString(sum[:]) != e.Sum {
		c.quarantine(fp, "artifact checksum mismatch")
		return nil, false
	}
	return e.Artifact, true
}

// quarantine moves a defective entry into the corrupt/ subdirectory,
// bumps the corruption counter, and emits one structured warning. If the
// move fails the file is left where it is (the next Put overwrites it);
// the counter and warning still fire so the defect is never silent.
func (c *Cache) quarantine(fp, reason string) {
	c.corrupt.Add(1)
	ev := CorruptionEvent{Fingerprint: fp, Reason: reason}
	dst := filepath.Join(c.Dir, CorruptDirName, fp+".json")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err == nil {
		if err := os.Rename(c.path(fp), dst); err == nil {
			ev.Quarantined = dst
		}
	}
	if c.Warn != nil {
		c.Warn(ev)
		return
	}
	line, err := json.Marshal(ev)
	if err != nil {
		line = []byte(fmt.Sprintf("%+v", ev))
	}
	fmt.Fprintf(os.Stderr, "runner: cache entry quarantined: %s\n", line)
}

// Put stores the artifact under the fingerprint: write to a temp file,
// fsync it, rename into place, then fsync the directory. The rename makes
// a concurrent reader see either the old entry or the complete new one;
// the two fsyncs make the same guarantee hold across a power cut or a
// killed daemon — without them a crash shortly after Put could surface a
// renamed-but-empty file, which the quarantine path would then eat on
// restart as corruption that never really happened.
func (c *Cache) Put(fp string, key Key, artifact []byte) error {
	sum := sha256.Sum256(artifact)
	e := entry{
		Schema:   c.schema(),
		Key:      key.String(),
		Sum:      hex.EncodeToString(sum[:]),
		Artifact: artifact,
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runner: encoding cache entry: %w", err)
	}
	path := c.path(fp)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+fp+".tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse directory fsync (some network mounts) degrade
// to the pre-fsync durability instead of failing the Put.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
