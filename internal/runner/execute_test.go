package runner

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"starvation/internal/guard"
)

// TestExecuteSharedPool exercises the shared-pool path: independent
// executions share one cache but route progress and manifests privately.
func TestExecuteSharedPool(t *testing.T) {
	dir := t.TempDir()
	pool := &Pool{Cache: &Cache{Dir: filepath.Join(dir, "cache")}}

	runs := 0
	job := Job{
		ID:  "shared-a",
		Key: Key{Kind: "exec-test", Scenario: "a"},
		Run: func(ctx context.Context) ([]byte, error) {
			runs++
			return []byte("artifact-a"), nil
		},
	}

	var events []ProgressKind
	man := LoadManifest(filepath.Join(dir, "manifest.json"))
	res := pool.Execute(context.Background(), Exec{
		Job:      job,
		Manifest: man,
		Progress: func(ev ProgressEvent) { events = append(events, ev.Kind) },
	})
	if res.Err != nil || string(res.Artifact) != "artifact-a" {
		t.Fatalf("first Execute: %+v", res)
	}
	if runs != 1 {
		t.Fatalf("body ran %d times, want 1", runs)
	}
	if len(events) != 2 || events[0] != ProgressStart || events[1] != ProgressDone {
		t.Fatalf("progress events %v, want [start done]", events)
	}
	fp := pool.Cache.Fingerprint(job.Key)
	if !man.Done("shared-a", fp) {
		t.Fatalf("manifest does not record the execution")
	}

	// A second execution — as after a daemon restart — restores from the
	// shared cache without re-running the body.
	res2 := pool.Execute(context.Background(), Exec{Job: job, Manifest: man})
	if !res2.Cached || string(res2.Artifact) != "artifact-a" {
		t.Fatalf("second Execute not served from cache: %+v", res2)
	}
	if runs != 1 {
		t.Fatalf("body re-ran on a warm cache (%d runs)", runs)
	}
	if st := pool.Stats(); st.Executed != 1 || st.CacheHits != 1 {
		t.Fatalf("stats %+v, want executed=1 cacheHits=1", st)
	}
}

// TestExecuteRetryOverride: a per-execution retry policy overrides the
// pool's (here: the pool has none, the Exec brings a budget of 3).
func TestExecuteRetryOverride(t *testing.T) {
	pool := &Pool{}
	attempts := 0
	job := Job{ID: "flaky", Run: func(ctx context.Context) ([]byte, error) {
		attempts++
		if attempts < 3 {
			return nil, fmt.Errorf("transient %d", attempts)
		}
		return []byte("ok"), nil
	}}
	res := pool.Execute(context.Background(), Exec{
		Job:   job,
		Retry: &RetryPolicy{MaxAttempts: 3, Base: 1, Jitter: -1},
	})
	if res.Err != nil || string(res.Artifact) != "ok" {
		t.Fatalf("Execute under retry override: %+v", res)
	}
	if res.Attempts != 3 || len(res.History) != 2 {
		t.Fatalf("attempts=%d history=%d, want 3 and 2", res.Attempts, len(res.History))
	}

	// Without the override the pool's zero policy gives a single attempt.
	attempts = 0
	res = pool.Execute(context.Background(), Exec{Job: job})
	if res.Err == nil || attempts != 1 {
		t.Fatalf("zero policy granted retries: attempts=%d err=%v", attempts, res.Err)
	}
}

// TestExecuteConcurrent: many goroutines executing through one pool — the
// serving topology — keep counters and per-call progress routing intact.
func TestExecuteConcurrent(t *testing.T) {
	pool := &Pool{Cache: &Cache{Dir: t.TempDir()}}
	const n = 32
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			mine := 0
			res := pool.Execute(context.Background(), Exec{
				Job: Job{
					ID:  fmt.Sprintf("c%02d", i),
					Key: Key{Kind: "exec-conc", Scenario: fmt.Sprint(i)},
					Run: func(ctx context.Context) ([]byte, error) { return []byte(want), nil },
				},
				Progress: func(ev ProgressEvent) { mine++ },
			})
			if res.Err != nil {
				errs[i] = res.Err
				return
			}
			if string(res.Artifact) != want {
				errs[i] = fmt.Errorf("artifact %q, want %q", res.Artifact, want)
			}
			if mine != 2 {
				errs[i] = fmt.Errorf("saw %d progress events, want 2 (routing leaked across calls)", mine)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("execution %d: %v", i, err)
		}
	}
	if st := pool.Stats(); st.Executed != n {
		t.Fatalf("executed %d, want %d", st.Executed, n)
	}
	if st := pool.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight gauge stuck at %d after drain", st.Inflight)
	}
}

// TestManifestCompact: history beyond the keep bound is trimmed, the trim
// is disclosed, and the compacted file round-trips through LoadManifest.
func TestManifestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := LoadManifest(path)
	long := make([]AttemptError, 7)
	for i := range long {
		long[i] = AttemptError{Attempt: i + 1, Kind: guard.KindError, Msg: fmt.Sprintf("boom %d", i+1)}
	}
	if err := m.Record("flaky", "fp1", StatusDone, nil, 8, long); err != nil {
		t.Fatal(err)
	}
	if err := m.Record("steady", "fp2", StatusDone, nil, 1, nil); err != nil {
		t.Fatal(err)
	}

	dropped, err := m.Compact(2)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 5 {
		t.Fatalf("dropped %d records, want 5", dropped)
	}
	if m.HistoryLen() != 2 {
		t.Fatalf("history length %d after compact, want 2", m.HistoryLen())
	}

	re := LoadManifest(path)
	e, ok := re.Entry("flaky")
	if !ok {
		t.Fatal("compacted manifest lost the entry")
	}
	if len(e.History) != 2 || e.HistoryDropped != 5 {
		t.Fatalf("entry history=%d dropped=%d, want 2 and 5", len(e.History), e.HistoryDropped)
	}
	// The *most recent* attempts survive.
	if e.History[0].Attempt != 6 || e.History[1].Attempt != 7 {
		t.Fatalf("kept attempts %d,%d, want 6,7", e.History[0].Attempt, e.History[1].Attempt)
	}
	if !re.Done("flaky", "fp1") || !re.Done("steady", "fp2") {
		t.Fatal("compaction broke the resume predicate")
	}

	// Already-compact manifests are not rewritten.
	if dropped, err = re.Compact(2); err != nil || dropped != 0 {
		t.Fatalf("second compact: dropped=%d err=%v, want 0 and nil", dropped, err)
	}

	// A later re-run of the job carries the disclosed count forward.
	if err := m.Record("flaky", "fp1b", StatusDone, nil, 1, nil); err != nil {
		t.Fatal(err)
	}
	e, _ = m.Entry("flaky")
	if e.HistoryDropped != 5 {
		t.Fatalf("re-record reset HistoryDropped to %d", e.HistoryDropped)
	}
}
