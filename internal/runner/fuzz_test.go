package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadManifest throws arbitrary bytes at the manifest loader. The
// contract under any input: no panic, recovered state is well-formed,
// and the manifest remains usable — a Record over the damaged file
// produces a cleanly reloadable manifest.
func FuzzLoadManifest(f *testing.F) {
	valid := `{
  "schema": 1,
  "jobs": {
    "F1": {"fingerprint": "aaaa", "status": "done", "attempts": 2,
           "history": [{"attempt": 1, "kind": "deadline", "msg": "slow"}]},
    "F3": {"fingerprint": "bbbb", "status": "failed",
           "err": {"scenario": "F3", "kind": "panic", "msg": "boom"}}
  }
}`
	f.Add([]byte(valid))
	for _, cut := range []int{10, len(valid) / 3, len(valid) / 2, len(valid) - 5} {
		f.Add([]byte(valid[:cut])) // torn flushes at assorted depths
	}
	f.Add([]byte(`{"schema":2,"jobs":{"F1":{"fingerprint":"aaaa","status":"done"}}}`))
	f.Add([]byte(`{"jobs":{"F1":{"fingerprint":"aaaa","status":"done"}},"schema":1}`))
	f.Add([]byte(`{"future-field":[1,2,{"x":3}],"schema":1,"jobs":{}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte("not json at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "manifest.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		m := LoadManifest(path) // must not panic on any input
		for id, e := range m.jobs {
			if e.Status != StatusDone && e.Status != StatusFailed {
				// Tolerated on a clean parse (forward compatibility), but the
				// entry must never satisfy the resume predicate.
				if m.Done(id, e.Fingerprint) {
					t.Errorf("entry %q with status %q reported resumable", id, e.Status)
				}
			}
		}
		// The damaged manifest must stay writable and round-trip cleanly.
		if err := m.Record("fuzz-probe", "abcd", StatusDone, nil, 1, nil); err != nil {
			t.Fatalf("Record over damaged manifest: %v", err)
		}
		re := LoadManifest(path)
		if !re.Done("fuzz-probe", "abcd") {
			t.Errorf("recorded entry lost after reload (input %q)", data)
		}
	})
}

// FuzzCacheEntry throws arbitrary bytes at a cache entry file. The
// contract: Get never panics and never returns corrupted data — a hit
// implies the artifact matches its stored checksum — and a subsequent
// Put always heals the address.
func FuzzCacheEntry(f *testing.F) {
	// Seed with a genuine envelope and mutations of it.
	artifact := []byte("genuine artifact payload")
	sum := sha256.Sum256(artifact)
	env, err := json.Marshal(entry{
		Schema:   SchemaVersion,
		Key:      "kind=fuzz|scenario=s",
		Sum:      hex.EncodeToString(sum[:]),
		Artifact: artifact,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(env)
	f.Add(env[:len(env)/2]) // truncated
	flipped := bytes.Clone(env)
	flipped[len(flipped)/2] ^= 0x01 // bit-flipped
	f.Add(flipped)
	f.Add([]byte(`{"schema":999,"key":"k","sum":"00","artifact":"aGk="}`))
	f.Add([]byte(`{"schema":1,"key":"k","sum":"deadbeef","artifact":"aGk="}`))
	f.Add([]byte("junk"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := &Cache{Dir: t.TempDir(), Warn: func(CorruptionEvent) {}}
		key := Key{Kind: "fuzz", Scenario: "s"}
		fp := c.Fingerprint(key)
		path := c.path(fp)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		if art, ok := c.Get(fp); ok { // must not panic on any input
			// A hit certifies integrity: the returned artifact must match
			// the checksum the envelope itself declares.
			var e entry
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("Get hit on an undecodable envelope")
			}
			got := sha256.Sum256(art)
			if hex.EncodeToString(got[:]) != e.Sum {
				t.Errorf("Get returned an artifact that fails its own checksum")
			}
		}
		// Whatever Get decided, a fresh Put heals the address.
		if err := c.Put(fp, key, []byte("fresh")); err != nil {
			t.Fatalf("Put after fuzzed Get: %v", err)
		}
		if art, ok := c.Get(fp); !ok || string(art) != "fresh" {
			t.Errorf("cache not healed by Put: ok=%v art=%q", ok, art)
		}
	})
}
