package scenario

import (
	"context"
	"strings"
	"testing"
	"time"

	"starvation/internal/core"
	"starvation/internal/guard"
	"starvation/internal/units"
)

// TestPopulationScenariosRun smokes every registered population scenario
// at reduced duration with the run-guard layer on: ledger clean, every
// observable present, cohort structure as declared.
func TestPopulationScenariosRun(t *testing.T) {
	cases := []struct {
		name    string
		flows   int
		cohorts int
	}{
		{"pop-mixed", 24, 3},
		{"pop-rtt", 24, 3},
		{"pop-parkinglot", 12, 2},
		{"pop-fanin", 16, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			res := Registry[tc.name](Opts{Duration: 4 * time.Second, Guard: &guard.Options{}})
			if res.Net == nil {
				t.Fatal("no network result")
			}
			if got := int(res.Observables["flows"]); got != tc.flows {
				t.Errorf("flows = %d, want %d", got, tc.flows)
			}
			if err := res.Net.Ledger.Check(); err != nil {
				t.Errorf("ledger: %v", err)
			}
			if res.Net.Guard == nil || !res.Net.Guard.Ok() {
				t.Errorf("guard report not clean: %v", res.Net.Guard)
			}
			st := res.Net.Population(0)
			if len(st.Cohorts) != tc.cohorts {
				t.Errorf("cohorts = %d, want %d (%+v)", len(st.Cohorts), tc.cohorts, st.Cohorts)
			}
			for _, key := range []string{"starved_frac", "jain", "share_p50", "utilization_pct"} {
				if _, ok := res.Observables[key]; !ok {
					t.Errorf("observable %q missing", key)
				}
			}
			// Population renderings replace the per-flow table above the
			// compact threshold; multi-link runs also print a link table.
			s := res.Net.String()
			if tc.flows > 12 && !strings.Contains(s, "population n=") {
				t.Errorf("large-N Result.String() should render population stats:\n%s", s)
			}
			if len(res.Net.Links) > 1 && !strings.Contains(s, "link") {
				t.Errorf("multi-link Result.String() should render the link table:\n%s", s)
			}
		})
	}
}

// TestPopulationRTTUnfairness pins the qualitative claim of pop-rtt: the
// short-RTT cohort out-shares the long-RTT cohort.
func TestPopulationRTTUnfairness(t *testing.T) {
	res := PopulationRTT(Opts{Duration: 8 * time.Second})
	st := res.Net.Population(0)
	var short, long float64
	for _, c := range st.Cohorts {
		switch c.Cohort {
		case "rtt20":
			short = c.Mean
		case "rtt160":
			long = c.Mean
		}
	}
	if short == 0 || long == 0 {
		t.Fatalf("cohorts missing: %+v", st.Cohorts)
	}
	if short <= long {
		t.Errorf("RTT unfairness inverted: rtt20 mean %.3g <= rtt160 mean %.3g", short, long)
	}
}

// TestThousandFlowSweepUnderRunnerPool is the scale acceptance test: a
// 1000-flow mixed-CCA population completes under the runner worker pool
// and reports population starvation statistics in the result and the obs
// snapshot.
func TestThousandFlowSweepUnderRunnerPool(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-flow population run in -short mode")
	}
	const flowsSpec = "vegas*250:stagger=4ms;reno*250:stagger=4ms;" +
		"copa*250:stagger=4ms;bbr*250:stagger=4ms"
	rebuild := func(seed int64) (core.PopulationConfig, error) {
		specs, err := ParseFlows(flowsSpec, seed, nil)
		if err != nil {
			return core.PopulationConfig{}, err
		}
		return core.PopulationConfig{
			Flows:       specs,
			Rate:        units.Mbps(300),
			BufferBytes: 1024 * 1500,
			Duration:    3 * time.Second,
		}, nil
	}
	results, err := core.PopulationSweep(context.Background(), []int64{2, 3}, 2, rebuild)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range results {
		if pr == nil {
			t.Fatal("missing sweep result")
		}
		st := pr.Stats
		if st.N != 1000 {
			t.Fatalf("seed %d: population n = %d, want 1000", pr.Seed, st.N)
		}
		if len(st.Cohorts) != 4 {
			t.Errorf("seed %d: cohorts = %d, want 4", pr.Seed, len(st.Cohorts))
		}
		if st.Sum <= 0 {
			t.Errorf("seed %d: population moved no bytes", pr.Seed)
		}
		if st.StarvedFraction < 0 || st.StarvedFraction > 1 {
			t.Errorf("seed %d: starved fraction %v out of range", pr.Seed, st.StarvedFraction)
		}
		// The obs snapshot must agree with the result on population size
		// and carry the cohort labels for downstream aggregation.
		snap := pr.Net.Obs
		if len(snap.Flows) != 1000 {
			t.Errorf("seed %d: obs snapshot has %d flows", pr.Seed, len(snap.Flows))
		}
		if got := len(snap.Cohorts()); got != 4 {
			t.Errorf("seed %d: obs cohorts = %d, want 4", pr.Seed, got)
		}
	}
}
