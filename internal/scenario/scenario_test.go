package scenario

import (
	"testing"
	"time"
)

// The scenario tests check the paper's qualitative claims — who wins, by
// roughly what factor, where the crossovers are — not the absolute Mbit/s
// of the authors' Mahimahi testbed.

func TestCopaSingleFlowPoison(t *testing.T) {
	r := CopaSingleFlowPoison(Opts{Duration: 40 * time.Second})
	t.Logf("\n%s", r)
	if u := r.Observables["utilization"]; u > 0.5 {
		t.Errorf("utilization = %.3f after min-RTT poisoning, want < 0.5 "+
			"(paper: 8 of 120 Mbit/s)", u)
	}
	if u := r.Observables["utilization"]; u < 0.01 {
		t.Errorf("utilization = %.3f, want > 0.01 (flow should not die entirely)", u)
	}
}

func TestCopaTwoFlowPoison(t *testing.T) {
	r := CopaTwoFlowPoison(Opts{Duration: 40 * time.Second})
	t.Logf("\n%s", r)
	if r.Observables["poisoned_mbps"] >= r.Observables["clean_mbps"] {
		t.Errorf("poisoned flow (%.1f) should starve vs clean (%.1f)",
			r.Observables["poisoned_mbps"], r.Observables["clean_mbps"])
	}
	if ratio := r.Observables["ratio"]; ratio < 3 {
		t.Errorf("ratio = %.1f, want >= 3 (paper: ~10.8)", ratio)
	}
}

func TestBBRTwoFlowRTT(t *testing.T) {
	r := BBRTwoFlowRTT(Opts{})
	t.Logf("\n%s", r)
	if ratio := r.Observables["ratio"]; ratio < 3 {
		t.Errorf("ratio = %.1f, want >= 3 (paper: ~13)", ratio)
	}
	if r.Observables["rtt40_mbps"] >= r.Observables["rtt80_mbps"] {
		t.Errorf("small-RTT flow (%.1f) should starve vs large-RTT (%.1f) "+
			"in cwnd-limited mode", r.Observables["rtt40_mbps"], r.Observables["rtt80_mbps"])
	}
}

func TestVivaceAckAggregation(t *testing.T) {
	r := VivaceAckAggregation(Opts{})
	t.Logf("\n%s", r)
	if r.Observables["quantized_mbps"] >= r.Observables["clean_mbps"] {
		t.Errorf("quantized flow (%.1f) should starve vs clean (%.1f)",
			r.Observables["quantized_mbps"], r.Observables["clean_mbps"])
	}
	// The reproduced ratio (~3) is weaker than the paper's ~10 — our
	// deterministic emulator lacks Mahimahi's extra scheduling noise that
	// compounds the quantized flow's confusion — but the starved side and
	// the multiple-factor separation match.
	if ratio := r.Observables["ratio"]; ratio < 2.2 {
		t.Errorf("ratio = %.1f, want >= 2.2 (paper: ~10)", ratio)
	}
}

func TestAllegroRandomLoss(t *testing.T) {
	r := AllegroRandomLoss(Opts{})
	t.Logf("\n%s", r)
	if r.Observables["lossy_mbps"] >= r.Observables["clean_mbps"] {
		t.Errorf("lossy flow (%.1f) should starve vs clean (%.1f)",
			r.Observables["lossy_mbps"], r.Observables["clean_mbps"])
	}
	if ratio := r.Observables["ratio"]; ratio < 3 {
		t.Errorf("ratio = %.1f, want >= 3 (paper: ~10)", ratio)
	}
}

func TestAllegroBurstLoss(t *testing.T) {
	r := AllegroBurstLoss(Opts{})
	t.Logf("\n%s", r)
	if r.Observables["bursty_mbps"] >= r.Observables["clean_mbps"] {
		t.Errorf("bursty flow (%.1f) should lose vs clean (%.1f)",
			r.Observables["bursty_mbps"], r.Observables["clean_mbps"])
	}
	// Bursty loss at matched ~2%% mean starves Allegro far less than
	// Bernoulli (T5.4a ratio ~10): bursts leave most monitor intervals
	// loss-free, so the sigmoid utility penalizes the flow less often.
	// The asymmetry is persistent but modest — assert the direction and a
	// clear margin, not the Bernoulli magnitude.
	if ratio := r.Observables["ratio"]; ratio < 1.3 {
		t.Errorf("ratio = %.2f, want >= 1.3", ratio)
	}
	mean, actual := r.Observables["ge_mean_loss"], r.Observables["ge_actual_loss"]
	if actual < 0.5*mean || actual > 1.5*mean {
		t.Errorf("realized GE loss %.4f not within 50%% of stationary %.4f", actual, mean)
	}
	if r.Observables["ge_bursts"] == 0 {
		t.Errorf("no loss bursts recorded")
	}
	if err := r.Net.Ledger.Check(); err != nil {
		t.Errorf("ledger: %v", err)
	}
}

func TestAllegroControls(t *testing.T) {
	both := AllegroBothLossy(Opts{})
	t.Logf("\n%s", both)
	if jain := both.Observables["jain"]; jain < 0.8 {
		t.Errorf("both-lossy jain = %.3f, want >= 0.8 (paper: fair)", jain)
	}
	single := AllegroSingleLossy(Opts{})
	t.Logf("\n%s", single)
	if u := single.Observables["utilization"]; u < 0.7 {
		t.Errorf("single-lossy utilization = %.3f, want >= 0.7 (paper: full)", u)
	}
}

func TestFig7BoundedUnfairness(t *testing.T) {
	for _, fn := range []func(Opts) *Result{Fig7Reno, Fig7Cubic} {
		r := fn(Opts{})
		t.Logf("\n%s", r)
		if r.Observables["delacked_mbps"] >= r.Observables["perpacket_mbps"] {
			t.Errorf("%s: delayed-ACK flow (%.2f) should lose to per-packet flow (%.2f)",
				r.ID, r.Observables["delacked_mbps"], r.Observables["perpacket_mbps"])
		}
		ratio := r.Observables["ratio"]
		if ratio < 1.3 {
			t.Errorf("%s: ratio = %.2f, want >= 1.3 (paper: 2.7/3.2)", r.ID, ratio)
		}
		if ratio > 8 {
			t.Errorf("%s: ratio = %.2f, want <= 8 — loss-based unfairness is "+
				"bounded, not starvation", r.ID, ratio)
		}
		if u := r.Observables["utilization"]; u < 0.7 {
			t.Errorf("%s: utilization = %.3f, want >= 0.7", r.ID, u)
		}
	}
}

func TestAlgo1Fairness(t *testing.T) {
	r := Algo1Fairness(Opts{})
	t.Logf("\n%s", r)
	if ratio, s := r.Observables["ratio"], r.Observables["s_bound"]; ratio > s*1.25 {
		t.Errorf("ratio = %.2f, want <= s(=%.0f) with 25%% tolerance", ratio, s)
	}
	if u := r.Observables["utilization"]; u < 0.6 {
		t.Errorf("utilization = %.3f, want >= 0.6 (f-efficiency under jitter)", u)
	}
}

func TestVegasUnderJitterStarves(t *testing.T) {
	r := VegasUnderJitter(Opts{})
	t.Logf("\n%s", r)
	if ratio := r.Observables["ratio"]; ratio < 4 {
		t.Errorf("ratio = %.1f, want >= 4: Vegas should starve where Algorithm 1 stays s-fair", ratio)
	}
}

func TestQuickstartFairness(t *testing.T) {
	r := QuickstartVegas(Opts{})
	t.Logf("\n%s", r)
	if jain := r.Observables["jain"]; jain < 0.85 {
		t.Errorf("jain = %.3f, want >= 0.85 on a clean path", jain)
	}
	if u := r.Observables["utilization"]; u < 0.9 {
		t.Errorf("utilization = %.3f, want >= 0.9", u)
	}
}

func TestECNAvoidsStarvation(t *testing.T) {
	r := ECNAvoidsStarvation(Opts{})
	t.Logf("\n%s", r)
	if j := r.Observables["ecn_jain"]; j < 0.9 {
		t.Errorf("ECN-reacting jain = %.3f, want >= 0.9 (unambiguous signal)", j)
	}
	if u := r.Observables["ecn_utilization"]; u < 0.8 {
		t.Errorf("ECN-reacting utilization = %.3f, want >= 0.8", u)
	}
	if r.Observables["ecn_ratio"] >= r.Observables["loss_ratio"] {
		t.Errorf("ECN reaction (ratio %.2f) should beat loss reaction (%.2f) under injected loss",
			r.Observables["ecn_ratio"], r.Observables["loss_ratio"])
	}
}

func TestAlgo1Ablation(t *testing.T) {
	r := Algo1Ablation(Opts{Duration: 60 * time.Second})
	t.Logf("\n%s", r)
	aimd := r.Observables["aimd_ratio"]
	aiad := r.Observables["aiad_ratio"]
	perack := r.Observables["perack_ratio"]
	if aimd > 2.5 {
		t.Errorf("published design ratio %.2f, want <= s(2) + slack", aimd)
	}
	// The published design should not be materially worse than either
	// rejected alternative, and at least one alternative should be worse
	// (that's why CCAC rejected them).
	if aimd > aiad*1.2 && aimd > perack*1.2 {
		t.Errorf("published design (%.2f) worse than both ablations (%.2f, %.2f)",
			aimd, aiad, perack)
	}
	if aiad <= aimd*1.05 && perack <= aimd*1.05 {
		t.Logf("note: ablations not worse in this realization (aiad %.2f, perack %.2f)", aiad, perack)
	}
}
