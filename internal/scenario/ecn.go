package scenario

import (
	"math/rand"
	"time"

	"starvation/internal/cca/reno"
	"starvation/internal/netem"
	"starvation/internal/network"
	"starvation/internal/units"
)

// ECNAvoidsStarvation demonstrates §6.4's conjecture: ECN is an unambiguous
// congestion signal, so a CCA that reacts to marks and ignores small loss
// cannot be fooled by per-flow non-congestive signal asymmetries.
//
// Two AIMD flows share a 48 Mbit/s link with RED marking; one flow's path
// injects 1% random non-congestive loss. The ECN-reacting, loss-blind
// flows share fairly because both see the same marks at the shared queue;
// the loss-reacting control pair in the same setting is skewed by the
// injected loss (the Mathis √p unfairness, unbounded as the clean flow's
// loss rate → 0).
func ECNAvoidsStarvation(o Opts) *Result {
	o.fill(60 * time.Second)
	run := func(ecn bool) *network.Result {
		mk := func() *reno.Reno {
			return reno.New(reno.Config{ReactToECN: ecn, LossBlind: ecn})
		}
		res := o.emulate(
			network.Config{
				Rate:        units.Mbps(48),
				BufferBytes: 400 * 1500,
				Marker: &netem.REDMarker{
					MinBytes: 20 * 1500, MaxBytes: 80 * 1500, MaxP: 0.2,
					Rng: rand.New(rand.NewSource(o.Seed*31 + 5)),
				},
				Seed:      o.Seed,
				Probe:     o.Probe,
				Guard:     o.Guard,
				Ctx:       o.Ctx,
				Telemetry: o.Telemetry,
			},
			network.FlowSpec{
				Name: "lossy", Alg: mk(), Rm: 40 * time.Millisecond,
				LossProb: 0.01,
			},
			network.FlowSpec{
				Name: "clean", Alg: mk(), Rm: 40 * time.Millisecond,
			},
		)
		return res
	}
	withECN := run(true)
	lossBased := run(false)
	return &Result{
		ID:          "X-ECN",
		Description: "AIMD ×2 on RED link, 1% non-congestive loss on one flow: ECN-reacting vs loss-reacting",
		PaperClaim:  "§6.4: ECN + ignoring small loss may prevent starvation",
		Net:         withECN,
		Observables: map[string]float64{
			"ecn_ratio":        withECN.Ratio(),
			"ecn_jain":         withECN.Jain(),
			"ecn_utilization":  withECN.Utilization(),
			"loss_ratio":       lossBased.Ratio(),
			"loss_jain":        lossBased.Jain(),
			"loss_utilization": lossBased.Utilization(),
		},
	}
}
