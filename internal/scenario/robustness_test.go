package scenario

import (
	"testing"
	"time"
)

// TestSeedRobustness verifies the qualitative claims across several seeds:
// the starved side must be the same in the clear majority of realizations
// (starvation dynamics are chaotic — the paper's testbed runs varied too,
// which is why the reference seed is documented). Every realization must
// also satisfy packet conservation: the seed sweep doubles as the widest
// exercise of the guard ledger across CCAs and impairments. The checks
// run as parallel subtests. Skipped with -short.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	type check struct {
		name    string
		starved string // observable key of the flow that must lose
		winner  string
		run     func(Opts) *Result
	}
	checks := []check{
		{"bbr-two", "rtt40_mbps", "rtt80_mbps", BBRTwoFlowRTT},
		{"vivace-ackagg", "quantized_mbps", "clean_mbps", VivaceAckAggregation},
		{"allegro-loss", "lossy_mbps", "clean_mbps", AllegroRandomLoss},
		{"allegro-burst", "bursty_mbps", "clean_mbps", AllegroBurstLoss},
		{"copa-two", "poisoned_mbps", "clean_mbps", CopaTwoFlowPoison},
	}
	seeds := []int64{2, 3, 4, 5, 6}
	for _, c := range checks {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			wins := 0
			for _, seed := range seeds {
				r := c.run(Opts{Seed: seed, Duration: 40 * time.Second})
				if r.Observables[c.starved] < r.Observables[c.winner] {
					wins++
				}
				if err := r.Net.Ledger.Check(); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
			t.Logf("expected loser lost in %d/%d seeds", wins, len(seeds))
			if wins < len(seeds)-1 {
				t.Errorf("expected starved side lost in only %d/%d realizations",
					wins, len(seeds))
			}
		})
	}
}

// TestAlgo1FairAcrossSeeds: the s-fairness guarantee of Algorithm 1 is a
// worst-case bound, so unlike the starvation demos it must hold in every
// realization.
func TestAlgo1FairAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, seed := range []int64{2, 3, 4, 5, 6} {
		r := Algo1Fairness(Opts{Seed: seed, Duration: 60 * time.Second})
		if ratio := r.Observables["ratio"]; ratio > 2.5 {
			t.Errorf("seed %d: ratio %.2f exceeds s=2 (+ tolerance)", seed, ratio)
		}
	}
}
