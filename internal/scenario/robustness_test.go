package scenario

import (
	"testing"
	"time"
)

// TestSeedRobustness verifies the qualitative claims across several seeds:
// the starved side must be the same in the clear majority of realizations
// (starvation dynamics are chaotic — the paper's testbed runs varied too,
// which is why the reference seed is documented). Skipped with -short.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	type check struct {
		name    string
		starved string // observable key of the flow that must lose
		winner  string
		run     func(Opts) *Result
	}
	checks := []check{
		{"bbr-two", "rtt40_mbps", "rtt80_mbps", BBRTwoFlowRTT},
		{"vivace-ackagg", "quantized_mbps", "clean_mbps", VivaceAckAggregation},
		{"allegro-loss", "lossy_mbps", "clean_mbps", AllegroRandomLoss},
		{"copa-two", "poisoned_mbps", "clean_mbps", CopaTwoFlowPoison},
	}
	seeds := []int64{2, 3, 4, 5, 6}
	for _, c := range checks {
		wins := 0
		for _, seed := range seeds {
			r := c.run(Opts{Seed: seed, Duration: 40 * time.Second})
			if r.Observables[c.starved] < r.Observables[c.winner] {
				wins++
			}
		}
		t.Logf("%s: expected loser lost in %d/%d seeds", c.name, wins, len(seeds))
		if wins < len(seeds)-1 {
			t.Errorf("%s: expected starved side lost in only %d/%d realizations",
				c.name, wins, len(seeds))
		}
	}
}

// TestAlgo1FairAcrossSeeds: the s-fairness guarantee of Algorithm 1 is a
// worst-case bound, so unlike the starvation demos it must hold in every
// realization.
func TestAlgo1FairAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	for _, seed := range []int64{2, 3, 4, 5, 6} {
		r := Algo1Fairness(Opts{Seed: seed, Duration: 60 * time.Second})
		if ratio := r.Observables["ratio"]; ratio > 2.5 {
			t.Errorf("seed %d: ratio %.2f exceeds s=2 (+ tolerance)", seed, ratio)
		}
	}
}
