// Package scenario packages the paper's empirical experiments (§5 and
// Fig. 7) with their published parameters, so the CLI, the examples, and
// the benchmark harness all run exactly the same configurations.
//
// Each scenario returns a Result carrying the raw network run plus the
// named observables the paper reports, and records the paper's measured
// values for side-by-side comparison in EXPERIMENTS.md.
package scenario

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"starvation/internal/guard"
	"starvation/internal/network"
	"starvation/internal/obs"
)

// Result is one scenario outcome.
type Result struct {
	// ID matches the per-experiment index in DESIGN.md (e.g. "T5.1a").
	ID string
	// Description says what ran.
	Description string
	// PaperClaim quotes the paper's measured numbers for this experiment.
	PaperClaim string
	// Net is the underlying emulation result (nil for closed-form rows).
	Net *network.Result
	// Observables holds the named quantities the paper reports, in the
	// units noted in the key (e.g. "flow0_mbps").
	Observables map[string]float64
}

// String renders the result with observables sorted by name.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s\n  paper: %s\n", r.ID, r.Description, r.PaperClaim)
	keys := make([]string, 0, len(r.Observables))
	for k := range r.Observables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %10.3f\n", k, r.Observables[k])
	}
	if r.Net != nil {
		b.WriteString(indent(r.Net.String(), "  "))
	}
	return b.String()
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// Opts tunes scenario runs without changing their published topology.
type Opts struct {
	// Seed for all randomness. The default (2) is the reference
	// realization reported in EXPERIMENTS.md; starvation dynamics are
	// chaotic, and as in the paper's own testbed runs, individual
	// realizations vary (a seed sweep is part of the test suite).
	Seed int64
	// Duration overrides the run length (default per scenario).
	Duration time.Duration
	// Probe, when non-nil, receives the packet-lifecycle event stream of
	// every network the scenario assembles (wired into network.Config).
	// It never alters scheduling or randomness: a run with a probe is
	// event-for-event identical to one without.
	Probe obs.Probe
	// Guard, when non-nil, enables the run-guard layer (stall sweeps,
	// wall-clock deadline, end-of-run conservation checks) on every
	// network the scenario assembles. Like Probe it is read-only: flow
	// results are bit-identical with guards on or off.
	Guard *guard.Options
	// Ctx, when non-nil, cancels the scenario's emulations at run-tick
	// granularity (wired into network.Config.Ctx). Observation-only:
	// identical realization until cancellation.
	Ctx context.Context
	// Telemetry, when non-nil, enables the flight recorder on every
	// network the scenario assembles: windowed per-flow series, the
	// online starvation-episode detector, and run-phase spans, reported
	// in Net.Telemetry. Observation-only like Probe: realizations are
	// bit-identical with the recorder on or off.
	Telemetry *network.TelemetryConfig
	// Session, when non-nil, runs the scenario's emulations through a
	// reusable run context that recycles event arenas, endpoint state,
	// and trace buffers across runs instead of reallocating them — the
	// sweep hot path. Realizations are bit-identical with or without a
	// session (the fresh-vs-reused golden parity test pins this).
	// Sessions are single-owner like the simulator: never share one
	// across goroutines (SeedSweep gives each worker its own).
	Session *network.Session
}

func (o *Opts) fill(defaultDur time.Duration) {
	if o.Seed == 0 {
		o.Seed = 2
	}
	if o.Duration <= 0 {
		o.Duration = defaultDur
	}
}

// emulate runs one network for o.Duration — through o.Session when set
// (recycling its arenas), through a throwaway network otherwise. Scenario
// configurations are compile-time constants, so a validation failure is a
// programming error and panics exactly like network.New would.
func (o Opts) emulate(cfg network.Config, specs ...network.FlowSpec) *network.Result {
	if o.Session != nil {
		res, err := o.Session.Run(cfg, o.Duration, specs...)
		if err != nil {
			panic(err.Error())
		}
		return res
	}
	return network.New(cfg, specs...).Run(o.Duration)
}

// Registry lists all scenarios by ID for the CLI.
var Registry = map[string]func(Opts) *Result{
	"copa-single":      CopaSingleFlowPoison,
	"copa-two":         CopaTwoFlowPoison,
	"bbr-two":          BBRTwoFlowRTT,
	"vivace-ackagg":    VivaceAckAggregation,
	"allegro-loss":     AllegroRandomLoss,
	"allegro-burst":    AllegroBurstLoss,
	"allegro-both":     AllegroBothLossy,
	"allegro-single":   AllegroSingleLossy,
	"fig7-reno":        Fig7Reno,
	"fig7-cubic":       Fig7Cubic,
	"algo1-fair":       Algo1Fairness,
	"vegas-jitter":     VegasUnderJitter,
	"quickstart-vegas": QuickstartVegas,
	"ecn-fairness":     ECNAvoidsStarvation,
	"algo1-ablation":   Algo1Ablation,
	"pop-mixed":        PopulationMixed,
	"pop-rtt":          PopulationRTT,
	"pop-parkinglot":   PopulationParkingLot,
	"pop-fanin":        PopulationFanIn,
	"pop-mixed-500":    PopulationMixed500,
}

// Names returns the scenario IDs sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
