package scenario

import (
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/cubic"
	"starvation/internal/cca/reno"
	"starvation/internal/endpoint"
	"starvation/internal/network"
	"starvation/internal/units"
)

// fig7 runs the Fig. 7 topology: two flows of the same loss-based CCA on a
// 6 Mbit/s, 120 ms link with a 60-packet buffer; the first flow's receiver
// delays ACKs up to 4 packets (making the sender bursty and hence more
// likely to lose at the nearly-full drop-tail queue), the second ACKs every
// packet. The paper reports bounded unfairness: throughput ratios of 2.7×
// (Reno) and 3.2× (Cubic) — unfair, but not starvation, because AIMD's
// equilibrium lives in loss frequency, not in an absolute delay.
func fig7(o Opts, id, name string, mk func() cca.Algorithm, claim string) *Result {
	o.fill(200 * time.Second)
	res := o.emulate(
		network.Config{
			Rate:        units.Mbps(6),
			BufferBytes: 60 * endpoint.DefaultMSS,
			Seed:        o.Seed,
			Probe:       o.Probe,
			Guard:       o.Guard,
			Ctx:         o.Ctx,
			Telemetry:   o.Telemetry,
		},
		network.FlowSpec{
			Name: "delacked",
			Alg:  mk(),
			Rm:   120 * time.Millisecond,
			Ack:  endpoint.AckConfig{DelayCount: 4, DelayTimeout: 200 * time.Millisecond},
		},
		network.FlowSpec{
			Name: "perpacket",
			Alg:  mk(),
			Rm:   120 * time.Millisecond,
		},
	)
	return &Result{
		ID:          id,
		Description: name + " two flows, 6 Mbit/s, Rm=120ms, 60-pkt buffer, delayed ACKs ×4 on one",
		PaperClaim:  claim,
		Net:         res,
		Observables: map[string]float64{
			"delacked_mbps":  res.Flows[0].Stat.SteadyThpt.Mbit(),
			"perpacket_mbps": res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":          res.Ratio(),
			"utilization":    res.Utilization(),
		},
	}
}

// Fig7Reno is the left panel of Fig. 7.
func Fig7Reno(o Opts) *Result {
	return fig7(o, "F7-reno", "Reno",
		func() cca.Algorithm { return reno.New(reno.Config{}) },
		"ratio 2.7×, bounded (no starvation)")
}

// Fig7Cubic is the right panel of Fig. 7.
func Fig7Cubic(o Opts) *Result {
	return fig7(o, "F7-cubic", "Cubic",
		func() cca.Algorithm {
			return cubic.New(cubic.Config{FastConvergence: true, TCPFriendly: true})
		},
		"ratio 3.2×, bounded (no starvation)")
}
