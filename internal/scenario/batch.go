package scenario

import (
	"fmt"
	"time"

	"starvation/internal/core"
	"starvation/internal/endpoint"
	"starvation/internal/runner"
	"starvation/internal/units"
)

// Population-spec defaults, shared by the CLI flag defaults and the
// experiment service's request decoder so an omitted field means the same
// experiment everywhere.
const (
	// DefaultPopulationRateMbps matches the CLI's -rate default.
	DefaultPopulationRateMbps = 48
	// DefaultPopulationDuration matches the CLI's population-mode default.
	DefaultPopulationDuration = 30 * time.Second
	// DefaultPopulationSeed is the documented reference realization.
	DefaultPopulationSeed = 2
)

// PopulationSpec is the declarative form of a population experiment: what
// the CLI's -flows invocation and one job of a service batch request both
// describe. Both paths build and validate through this one type, so a
// malformed spec produces exactly the same error message whether it exits
// 2 at the shell or comes back as an HTTP 400 from the starved daemon.
//
// The zero value of every field selects its documented default (topology
// "single", 48 Mbit/s, infinite buffer, 30 s, seed 2, ε 0.1).
type PopulationSpec struct {
	// Flows is the ParseFlows clause (required), e.g. "vegas*8;reno*8".
	Flows string `json:"flows"`
	// Topology is the ParseTopology clause ("" selects "single").
	Topology string `json:"topology,omitempty"`
	// RateMbps is the bottleneck rate (0 selects the 48 Mbit/s default).
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// BufferPkts is the bottleneck buffer in MSS packets (0 = infinite).
	BufferPkts int `json:"buffer_pkts,omitempty"`
	// Duration is the emulated run length (0 selects 30 s).
	Duration time.Duration `json:"-"`
	// Seed selects the realization (0 selects the reference seed 2).
	Seed int64 `json:"seed,omitempty"`
	// Epsilon is the starvation threshold (0 selects the metrics default).
	Epsilon float64 `json:"eps,omitempty"`
}

// withDefaults fills the zero fields with their documented defaults.
func (s PopulationSpec) withDefaults() PopulationSpec {
	if s.Topology == "" {
		s.Topology = "single"
	}
	if s.RateMbps == 0 {
		s.RateMbps = DefaultPopulationRateMbps
	}
	if s.Duration <= 0 {
		s.Duration = DefaultPopulationDuration
	}
	if s.Seed == 0 {
		s.Seed = DefaultPopulationSeed
	}
	return s
}

// Config parses the clauses and assembles the runnable population
// configuration. Flow specs carry stateful CCA instances and jitter
// policies, so call Config once per realization (and once per retry
// attempt) — never run a returned config twice.
func (s PopulationSpec) Config() (core.PopulationConfig, error) {
	s = s.withDefaults()
	topo, err := ParseTopology(s.Topology, units.Mbps(s.RateMbps), s.BufferPkts*endpoint.DefaultMSS)
	if err != nil {
		return core.PopulationConfig{}, err
	}
	specs, err := ParseFlows(s.Flows, s.Seed, topo)
	if err != nil {
		return core.PopulationConfig{}, err
	}
	cfg := core.PopulationConfig{
		Flows:      specs,
		Links:      topo.Links,
		Bottleneck: topo.Bottleneck,
		Seed:       s.Seed,
		Duration:   s.Duration,
		Epsilon:    s.Epsilon,
	}
	if topo.Links == nil {
		cfg.Rate = units.Mbps(s.RateMbps)
		cfg.BufferBytes = s.BufferPkts * endpoint.DefaultMSS
	}
	return cfg, nil
}

// Validate reports the first problem with the spec — clause syntax, CCA
// names, and the assembled network configuration, checked as deeply as a
// real run would. The returned message is the shared error-string
// contract between the CLI (exit 2) and the service (HTTP 400).
func (s PopulationSpec) Validate() error {
	cfg, err := s.Config()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// Key returns the content-address identity of the spec for the runner
// cache: every field that changes the realization participates, so a
// server-side batch and a CLI run of the same spec share cache entries.
func (s PopulationSpec) Key() runner.Key {
	d := s.withDefaults()
	return runner.Key{
		Kind:     "population",
		Scenario: d.Flows,
		Seed:     d.Seed,
		Duration: d.Duration,
		Params: []string{
			"topology=" + d.Topology,
			fmt.Sprintf("rate=%g", d.RateMbps),
			fmt.Sprintf("buffer=%d", d.BufferPkts),
			fmt.Sprintf("eps=%g", d.Epsilon),
		},
	}
}

// Run executes one realization of the spec and returns the result. The
// configuration is rebuilt from scratch on every call, so repeated runs
// (retries, parity re-checks) are independent and bit-identical.
func (s PopulationSpec) Run() (*core.PopulationResult, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	return core.RunPopulation(cfg)
}
