package scenario

import (
	"strings"
	"testing"
	"time"

	"starvation/internal/endpoint"
	"starvation/internal/units"
)

func TestParseFlowsGroups(t *testing.T) {
	specs, err := ParseFlows(
		"vegas*3;reno*2:rm=80ms,cohort=slow,start=1s,stagger=100ms;copa:loss=0.01,ackagg=5ms",
		7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 6 {
		t.Fatalf("got %d specs, want 6", len(specs))
	}
	// Group 1: defaults.
	if specs[0].Name != "vegas-0" || specs[0].Cohort != "vegas" || specs[0].Rm != defaultFlowRm {
		t.Errorf("spec 0: %+v", specs[0])
	}
	// Group 2: rm/cohort/start/stagger.
	for k, want := range []time.Duration{time.Second, 1100 * time.Millisecond} {
		s := specs[3+k]
		if s.Rm != 80*time.Millisecond || s.Cohort != "slow" || s.StartAt != want {
			t.Errorf("spec %d: rm=%v cohort=%q start=%v (want 80ms/slow/%v)", 3+k, s.Rm, s.Cohort, s.StartAt, want)
		}
	}
	// Group 3: loss + ackagg.
	last := specs[5]
	if last.LossProb != 0.01 || last.Ack.AggregatePeriod != 5*time.Millisecond {
		t.Errorf("spec 5: %+v", last)
	}
	// Every flow needs its own algorithm instance.
	for i := range specs {
		for j := i + 1; j < len(specs); j++ {
			if specs[i].Alg == specs[j].Alg {
				t.Fatalf("specs %d and %d share a CCA instance", i, j)
			}
		}
	}
}

func TestParseFlowsDeterministic(t *testing.T) {
	// Same spec + seed → same names, starts, paths (algorithms are fresh
	// instances but derived from the same per-flow seeds).
	a, err := ParseFlows("vegas*4:jitter=uniform:2ms;reno*4", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseFlows("vegas*4:jitter=uniform:2ms;reno*4", 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].StartAt != b[i].StartAt {
			t.Errorf("flow %d not reproducible: %+v vs %+v", i, a[i], b[i])
		}
		if (a[i].FwdJitter == nil) != (b[i].FwdJitter == nil) {
			t.Errorf("flow %d jitter presence differs", i)
		}
	}
}

func TestParseFlowsErrors(t *testing.T) {
	cases := []string{
		"",                       // empty clause
		"vegas;;reno",            // empty group
		"nosuchcca",              // unknown CCA
		"vegas*0",                // count below 1
		"vegas*x",                // malformed count
		"vegas*5000",             // over the population cap
		"vegas*3000;reno*3000",   // cumulative cap
		"vegas:rm=0s",            // non-positive rm
		"vegas:rm=nope",          // malformed duration
		"vegas:start=-1s",        // negative start
		"vegas:loss=1.5",         // loss outside [0,1)
		"vegas:loss=-0.1",        // negative loss
		"vegas:jitter=weird:1ms", // unknown jitter kind
		"vegas:path=a",           // malformed path
		"vegas:path=-1",          // negative link index
		"vegas:cohort=",          // empty cohort
		"vegas:color=red",        // unknown key
		"vegas:rm",               // option without '='
	}
	for _, spec := range cases {
		if _, err := ParseFlows(spec, 1, nil); err == nil {
			t.Errorf("ParseFlows(%q) accepted", spec)
		}
	}
}

func TestParseTopology(t *testing.T) {
	rate, buf := units.Mbps(20), 64*endpoint.DefaultMSS

	single, err := ParseTopology("single", rate, buf)
	if err != nil || single.Links != nil || single.Bottleneck != 0 {
		t.Fatalf("single: %+v, %v", single, err)
	}
	if dflt, err := ParseTopology("", rate, buf); err != nil || dflt.Kind != "single" {
		t.Fatalf("empty spec should mean single: %+v, %v", dflt, err)
	}

	pl, err := ParseTopology("parkinglot:3", rate, buf)
	if err != nil || len(pl.Links) != 3 || pl.Bottleneck != 0 {
		t.Fatalf("parkinglot: %+v, %v", pl, err)
	}
	if pl.Path(5) != nil {
		t.Error("parking-lot default path should be nil (full chain)")
	}

	fi, err := ParseTopology("fanin:4", rate, buf)
	if err != nil || len(fi.Links) != 5 || fi.Bottleneck != 4 {
		t.Fatalf("fanin: %+v, %v", fi, err)
	}
	if fi.Links[4].Rate != rate || fi.Links[0].Rate != rate*fanInAccessFactor {
		t.Errorf("fanin rates: uplink %v, access %v", fi.Links[4].Rate, fi.Links[0].Rate)
	}
	for i := 0; i < 8; i++ {
		want := []int{i % 4, 4}
		got := fi.Path(i)
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("fanin path(%d) = %v, want %v", i, got, want)
		}
	}

	for _, spec := range []string{
		"ring:3", "single:2", "parkinglot", "parkinglot:0", "parkinglot:x",
		"fanin", "fanin:-1", "parkinglot:9999", "fanin:9999",
	} {
		if _, err := ParseTopology(spec, rate, buf); err == nil {
			t.Errorf("ParseTopology(%q) accepted", spec)
		}
	}
}

func TestParseFlowsTopologyPaths(t *testing.T) {
	topo, err := ParseTopology("fanin:2", units.Mbps(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ParseFlows("vegas*4;reno:path=0/2", 1, topo)
	if err != nil {
		t.Fatal(err)
	}
	// Auto-assigned fan-in paths round-robin across access links.
	for i := 0; i < 4; i++ {
		if got := specs[i].Path; len(got) != 2 || got[0] != i%2 || got[1] != 2 {
			t.Errorf("flow %d path = %v", i, got)
		}
	}
	// Explicit path= wins over the topology default.
	if got := specs[4].Path; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("explicit path = %v, want [0 2]", got)
	}
}

func TestParseFlowsUnknownCCAListsKnown(t *testing.T) {
	_, err := ParseFlows("nosuchcca*2", 1, nil)
	if err == nil || !strings.Contains(err.Error(), "vegas") {
		t.Errorf("error should list known CCAs, got: %v", err)
	}
}
