package scenario

import (
	"context"
	"fmt"

	"starvation/internal/network"
	"starvation/internal/runner"
)

// SeedSweep runs one scenario across a set of seeds on a bounded worker
// pool and returns the results indexed like seeds. Starvation dynamics
// are chaotic — the paper's own testbed realizations vary — so sweeps are
// how the qualitative claims are checked; every seed is an independent
// simulator, so the result set is identical at any jobs value.
//
// base supplies everything but the seed (and, per worker, the context).
// base.Probe is shared across runs: leave it nil when jobs > 1, since
// event-stream writers are not safe for interleaved runs. The same goes
// for base.Session (sessions are single-owner); when it is nil the sweep
// gives every worker its own recycled session automatically, so each
// worker builds its networks once and resets them per seed — the results
// are bit-identical to fresh-network runs at any jobs value.
//
// jobs is the worker count: 0 selects GOMAXPROCS, 1 runs the seeds
// strictly sequentially. The returned error is non-nil only for an
// unknown scenario, a shared probe or session, or a cancelled context.
func SeedSweep(ctx context.Context, name string, seeds []int64, jobs int, base Opts) ([]*Result, error) {
	fn, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q", name)
	}
	if base.Probe != nil && jobs > 1 {
		return nil, fmt.Errorf("scenario: SeedSweep with jobs > 1 cannot share a probe")
	}
	if base.Session != nil && jobs > 1 {
		return nil, fmt.Errorf("scenario: SeedSweep with jobs > 1 cannot share a session")
	}
	results := make([]*Result, len(seeds))
	sessions := make([]*network.Session, runner.Workers(jobs, len(seeds)))
	sessions[0] = base.Session
	err := runner.ForEachWorker(ctx, jobs, len(seeds), func(ctx context.Context, w, i int) error {
		if sessions[w] == nil {
			// Lazily built: each worker id is served by exactly one
			// goroutine, so the slot is worker-private.
			sessions[w] = network.NewSession()
		}
		o := base
		o.Seed = seeds[i]
		o.Ctx = ctx
		o.Session = sessions[w]
		results[i] = fn(o)
		return ctx.Err()
	})
	return results, err
}
