package scenario

import (
	"math/rand"
	"time"

	"starvation/internal/cca/allegro"
	"starvation/internal/netem/faults"
	"starvation/internal/network"
	"starvation/internal/units"
)

const (
	allegroRate = 120 // Mbit/s
	allegroRm   = 40 * time.Millisecond
)

// allegroBDP is the 1-BDP buffer of §5.4 in bytes.
func allegroBDP() int {
	return units.BDPBytes(units.Mbps(allegroRate), allegroRm)
}

func allegroFlow(name string, seed int64, loss float64) network.FlowSpec {
	return network.FlowSpec{
		Name:     name,
		Alg:      allegro.New(allegro.Config{Rng: rand.New(rand.NewSource(seed))}),
		Rm:       allegroRm,
		LossProb: loss,
	}
}

// AllegroRandomLoss reproduces §5.4's headline case: two PCC Allegro flows
// on a 120 Mbit/s, 40 ms, 1-BDP-buffer path; one flow sees 2% random loss.
// The paper measured 10.3 vs 99.1 Mbit/s — although Allegro is "supposed to
// be resilient to up to 5% loss".
func AllegroRandomLoss(o Opts) *Result {
	o.fill(60 * time.Second)
	res := o.emulate(
		network.Config{Rate: units.Mbps(allegroRate), BufferBytes: allegroBDP(), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		allegroFlow("lossy", o.Seed*13+1, 0.02),
		allegroFlow("clean", o.Seed*13+2, 0),
	)
	return &Result{
		ID:          "T5.4a",
		Description: "Allegro two flows, 120 Mbit/s, Rm=40ms, 1 BDP buffer, 2% loss on one",
		PaperClaim:  "10.3 vs 99.1 Mbit/s (ratio ~10)",
		Net:         res,
		Observables: map[string]float64{
			"lossy_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"clean_mbps": res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":      res.Ratio(),
		},
	}
}

// AllegroBurstLoss extends §5.4 beyond the paper: the same two-Allegro
// topology, but the lossy flow's ~2% average loss arrives in
// Gilbert–Elliott bursts (bad-state episodes of ~5 packets dropping half
// their packets) instead of independently. The chain's stationary loss
// rate, PGoodToBad/(PGoodToBad+PBadToGood) × PDropBad ≈ 1.9%, matches
// T5.4a's Bernoulli rate, isolating burstiness as the only variable —
// the impairment class where loss-resilience claims break down in BBR
// evaluations, and one Allegro's per-monitor-interval sigmoid utility
// reacts to just as badly as to independent loss.
func AllegroBurstLoss(o Opts) *Result {
	o.fill(60 * time.Second)
	ge := faults.GEConfig{PGoodToBad: 0.008, PBadToGood: 0.2, PDropBad: 0.5}
	bursty := allegroFlow("bursty", o.Seed*13+1, 0)
	bursty.Faults = &faults.Spec{GE: &ge}
	res := o.emulate(
		network.Config{Rate: units.Mbps(allegroRate), BufferBytes: allegroBDP(), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		bursty,
		allegroFlow("clean", o.Seed*13+2, 0),
	)
	fc := res.Flows[0].Faults
	var lossRate float64
	if total := fc.GEPassed + fc.GEDropped; total > 0 {
		lossRate = float64(fc.GEDropped) / float64(total)
	}
	return &Result{
		ID:          "T5.4d",
		Description: "Allegro two flows, Gilbert–Elliott bursty loss (~2% mean) on one (extension)",
		PaperClaim:  "no paper row; T5.4a analogue — starvation should persist under bursty loss at matched mean rate",
		Net:         res,
		Observables: map[string]float64{
			"bursty_mbps":    res.Flows[0].Stat.SteadyThpt.Mbit(),
			"clean_mbps":     res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":          res.Ratio(),
			"ge_mean_loss":   ge.MeanLoss(),
			"ge_actual_loss": lossRate,
			"ge_bursts":      float64(fc.GEBursts),
		},
	}
}

// AllegroBothLossy is §5.4's control: with both flows at 2% loss "they
// shared the link fairly and efficiently".
func AllegroBothLossy(o Opts) *Result {
	o.fill(60 * time.Second)
	res := o.emulate(
		network.Config{Rate: units.Mbps(allegroRate), BufferBytes: allegroBDP(), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		allegroFlow("lossy0", o.Seed*13+1, 0.02),
		allegroFlow("lossy1", o.Seed*13+2, 0.02),
	)
	return &Result{
		ID:          "T5.4b",
		Description: "Allegro two flows, both at 2% random loss (control)",
		PaperClaim:  "fair and efficient sharing",
		Net:         res,
		Observables: map[string]float64{
			"flow0_mbps":  res.Flows[0].Stat.SteadyThpt.Mbit(),
			"flow1_mbps":  res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":       res.Ratio(),
			"jain":        res.Jain(),
			"utilization": res.Utilization(),
		},
	}
}

// AllegroSingleLossy is §5.4's second control: a single flow with 2% loss
// "was able to fully utilize the link capacity".
func AllegroSingleLossy(o Opts) *Result {
	o.fill(60 * time.Second)
	res := o.emulate(
		network.Config{Rate: units.Mbps(allegroRate), BufferBytes: allegroBDP(), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		allegroFlow("lossy", o.Seed*13+1, 0.02),
	)
	return &Result{
		ID:          "T5.4c",
		Description: "Allegro single flow with 2% random loss (control)",
		PaperClaim:  "full link utilization",
		Net:         res,
		Observables: map[string]float64{
			"throughput_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"utilization":     res.Utilization(),
		},
	}
}
