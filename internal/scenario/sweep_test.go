package scenario

import (
	"context"
	"testing"
	"time"

	"starvation/internal/network"
	"starvation/internal/obs"
)

// TestSeedSweepParallelParity checks the sweep contract: the same seeds
// produce the same observables at any jobs value, and results land
// indexed by seed, not by completion order.
func TestSeedSweepParallelParity(t *testing.T) {
	seeds := []int64{2, 3, 4, 5}
	opts := Opts{Duration: 5 * time.Second}
	seq, err := SeedSweep(context.Background(), "allegro-loss", seeds, 1, opts)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, err := SeedSweep(context.Background(), "allegro-loss", seeds, 4, opts)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	for i := range seeds {
		a, b := seq[i].Observables, par[i].Observables
		if len(a) != len(b) {
			t.Fatalf("seed %d: observable sets differ: %v vs %v", seeds[i], a, b)
		}
		for k, v := range a {
			if b[k] != v {
				t.Errorf("seed %d: %s = %v sequential but %v parallel", seeds[i], k, v, b[k])
			}
		}
	}
	// Distinct seeds are distinct realizations; identical observables
	// across the whole sweep would mean the seed never reached the run.
	same := true
	for i := 1; i < len(seq); i++ {
		for k, v := range seq[0].Observables {
			if seq[i].Observables[k] != v {
				same = false
			}
		}
	}
	if same {
		t.Errorf("all %d seeds produced identical observables; seed is not being applied", len(seeds))
	}
}

// TestSeedSweepSessionFreshParity pins the sweep hot path's correctness
// contract end to end: SeedSweep workers recycle networks through
// per-worker sessions, and every observable must still equal a direct
// fresh-network invocation of the scenario. The population scenario
// additionally routes through core.RunPopulation's session path.
func TestSeedSweepSessionFreshParity(t *testing.T) {
	seeds := []int64{2, 5, 9}
	for _, name := range []string{"allegro-loss", "pop-mixed"} {
		opts := Opts{Duration: 4 * time.Second}
		swept, err := SeedSweep(context.Background(), name, seeds, 2, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, seed := range seeds {
			o := opts
			o.Seed = seed
			fresh := Registry[name](o) // no session: throwaway networks
			a, b := swept[i].Observables, fresh.Observables
			if len(a) != len(b) {
				t.Fatalf("%s seed %d: observable sets differ: %v vs %v", name, seed, a, b)
			}
			for k, v := range b {
				if a[k] != v {
					t.Errorf("%s seed %d: %s = %v via session sweep, %v fresh", name, seed, k, a[k], v)
				}
			}
		}
	}
}

// TestSeedSweepErrors pins the failure modes: unknown scenarios and
// probe or session sharing under parallelism are refused up front.
func TestSeedSweepErrors(t *testing.T) {
	if _, err := SeedSweep(context.Background(), "no-such-scenario", []int64{2}, 1, Opts{}); err == nil {
		t.Errorf("unknown scenario did not error")
	}
	if _, err := SeedSweep(context.Background(), "copa-single", []int64{2, 3}, 2, Opts{Probe: obs.Nop{}}); err == nil {
		t.Errorf("shared probe with jobs > 1 did not error")
	}
	if _, err := SeedSweep(context.Background(), "copa-single", []int64{2, 3}, 2, Opts{Session: network.NewSession()}); err == nil {
		t.Errorf("shared session with jobs > 1 did not error")
	}
}

// TestSeedSweepCancellation checks a cancelled context surfaces as the
// sweep error instead of running every seed to completion.
func TestSeedSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SeedSweep(ctx, "copa-single", []int64{2, 3, 4}, 1, Opts{Duration: 5 * time.Second})
	if err == nil {
		t.Errorf("pre-cancelled sweep returned no error")
	}
}
