package scenario

import (
	"io"
	"testing"
	"time"

	"starvation/internal/obs"
)

// TestProbeDoesNotPerturbBBRTwo is the acceptance check that
// instrumentation is observation only: the fixed-seed bbr-two scenario
// must produce bit-identical throughputs, ratios, and event-loop activity
// with a full probe stack (JSONL exporter + registry) and with none.
func TestProbeDoesNotPerturbBBRTwo(t *testing.T) {
	opts := Opts{Seed: 2, Duration: 20 * time.Second}

	bare := BBRTwoFlowRTT(opts)

	reg := obs.NewRegistry()
	jw := obs.NewJSONLWriter(io.Discard)
	probed := BBRTwoFlowRTT(Opts{Seed: 2, Duration: 20 * time.Second,
		Probe: obs.Multi(reg, jw)})
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	if br, pr := bare.Net.Ratio(), probed.Net.Ratio(); br != pr {
		t.Errorf("ratio with probe %v != without %v", pr, br)
	}
	for i := range bare.Net.Flows {
		b, p := bare.Net.Flows[i].Stat, probed.Net.Flows[i].Stat
		if b.SteadyThpt != p.SteadyThpt || b.Throughput != p.Throughput {
			t.Errorf("flow %d throughput: bare %v/%v, probed %v/%v",
				i, b.SteadyThpt, b.Throughput, p.SteadyThpt, p.Throughput)
		}
		if b.LossEvents != p.LossEvents || b.AckedBytes != p.AckedBytes {
			t.Errorf("flow %d loss/acked: bare %d/%d, probed %d/%d",
				i, b.LossEvents, b.AckedBytes, p.LossEvents, p.AckedBytes)
		}
	}
	// The virtual event loop itself must be untouched: probes run inline
	// and schedule nothing.
	if b, p := bare.Net.Obs.Global.SimEventsFired, probed.Net.Obs.Global.SimEventsFired; b != p {
		t.Errorf("sim events fired: bare %d, probed %d", b, p)
	}
	// And the probed run's registry must agree with the embedded snapshot.
	snap := reg.Snapshot()
	for i, f := range probed.Net.Obs.Flows {
		if snap.Flows[i].PacketsSent != f.PacketsSent ||
			snap.Flows[i].PacketsDelivered != f.PacketsDelivered {
			t.Errorf("flow %d: registry %+v != snapshot %+v", i, snap.Flows[i], f)
		}
	}
}
