package scenario

import (
	"math/rand"
	"time"

	"starvation/internal/cca/bbr"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

// BBRTwoFlowRTT reproduces §5.2: two BBR flows with Rm of 40 ms and 80 ms
// share a 120 Mbit/s bottleneck for 60 s. The paper ran this on Mahimahi
// where "their interaction and natural OS jitter was enough to push them
// into cwnd-limited mode"; our emulator is deterministic, so the OS jitter
// is modelled explicitly as a small bounded uniform delay (≤ 2 ms) on each
// flow's path — the substitution DESIGN.md documents. The paper measured
// 8.3 vs 107 Mbit/s.
func BBRTwoFlowRTT(o Opts) *Result {
	o.fill(60 * time.Second)
	mk := func(name string, rm time.Duration, seed int64) network.FlowSpec {
		rng := rand.New(rand.NewSource(seed))
		return network.FlowSpec{
			Name:      name,
			Alg:       bbr.New(bbr.Config{Rng: rng}),
			Rm:        rm,
			FwdJitter: &jitter.Uniform{Max: 2 * time.Millisecond, Rng: rand.New(rand.NewSource(seed + 1000))},
		}
	}
	res := o.emulate(
		network.Config{Rate: units.Mbps(120), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		mk("rtt40", 40*time.Millisecond, o.Seed*7+1),
		mk("rtt80", 80*time.Millisecond, o.Seed*7+2),
	)
	f0, f1 := res.Flows[0].Stat.SteadyThpt.Mbit(), res.Flows[1].Stat.SteadyThpt.Mbit()
	return &Result{
		ID:          "T5.2",
		Description: "BBR two flows, 120 Mbit/s, Rm 40/80ms, ~2ms jitter, 60s",
		PaperClaim:  "8.3 vs 107 Mbit/s (order-of-magnitude; small-RTT flow starves)",
		Net:         res,
		Observables: map[string]float64{
			"rtt40_mbps": f0,
			"rtt80_mbps": f1,
			"ratio":      res.Ratio(),
		},
	}
}
