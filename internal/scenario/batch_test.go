package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestPopulationSpecValidateStrings pins the shared error-string contract:
// the message Validate returns is byte-identical to what RunPopulation (and
// therefore the CLI's exit-2 path) fails with, because both front ends —
// shell and HTTP — surface the same text.
func TestPopulationSpecValidateStrings(t *testing.T) {
	cases := []struct {
		name string
		spec PopulationSpec
		want string
	}{
		{"empty flows", PopulationSpec{Flows: ""}, "flows: group 0 is empty"},
		{"unknown cca", PopulationSpec{Flows: "nosuchcca*4"}, "unknown CCA"},
		{"bad topology", PopulationSpec{Flows: "reno*2", Topology: "ring:4"}, `unknown topology "ring"`},
		{"bad count", PopulationSpec{Flows: "reno*0"}, "count"},
		{"bad key", PopulationSpec{Flows: "reno:wat=1"}, "wat"},
		{"too many flows", PopulationSpec{Flows: "reno*4096;vegas*2"}, "population exceeds"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted a bad spec", c.spec)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate error %q does not mention %q", err, c.want)
			}
			// The run itself must fail with the identical message.
			if _, rerr := c.spec.Run(); rerr == nil || rerr.Error() != err.Error() {
				t.Fatalf("Run error %v != Validate error %v", rerr, err)
			}
		})
	}

	good := PopulationSpec{Flows: "reno*2", Duration: 100 * time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestPopulationSpecDefaults: the zero value of every optional field
// selects the CLI's documented default.
func TestPopulationSpecDefaults(t *testing.T) {
	cfg, err := PopulationSpec{Flows: "reno*2"}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != DefaultPopulationSeed {
		t.Fatalf("default seed %d, want %d", cfg.Seed, DefaultPopulationSeed)
	}
	if cfg.Duration != DefaultPopulationDuration {
		t.Fatalf("default duration %v, want %v", cfg.Duration, DefaultPopulationDuration)
	}
	if cfg.Links != nil {
		t.Fatalf("default topology is not the single bottleneck")
	}
	if cfg.Rate.BitsPerSec() != 48e6 {
		t.Fatalf("default rate %v, want 48 Mbit/s", cfg.Rate)
	}
}

// TestPopulationSpecKey: the cache identity is stable across calls, covers
// the realization-changing fields, and an omitted field keys the same as
// its explicit default (so CLI-style and service-style specs of the same
// experiment share cache entries).
func TestPopulationSpecKey(t *testing.T) {
	base := PopulationSpec{Flows: "vegas*2;reno*2"}
	if base.Key().String() != base.Key().String() {
		t.Fatal("Key not deterministic")
	}
	explicit := PopulationSpec{
		Flows: "vegas*2;reno*2", Topology: "single",
		RateMbps: DefaultPopulationRateMbps,
		Duration: DefaultPopulationDuration,
		Seed:     DefaultPopulationSeed,
	}
	if base.Key().String() != explicit.Key().String() {
		t.Fatalf("defaulted key %v != explicit-default key %v", base.Key(), explicit.Key())
	}
	for name, variant := range map[string]PopulationSpec{
		"flows":    {Flows: "vegas*2;reno*3"},
		"topology": {Flows: "vegas*2;reno*2", Topology: "fanin:2"},
		"rate":     {Flows: "vegas*2;reno*2", RateMbps: 96},
		"buffer":   {Flows: "vegas*2;reno*2", BufferPkts: 64},
		"seed":     {Flows: "vegas*2;reno*2", Seed: 7},
		"duration": {Flows: "vegas*2;reno*2", Duration: time.Second},
		"epsilon":  {Flows: "vegas*2;reno*2", Epsilon: 0.2},
	} {
		if variant.Key().String() == base.Key().String() {
			t.Fatalf("changing %s does not change the cache key", name)
		}
	}
}

// TestPopulationSpecRunRender: repeated runs of one spec render identical
// bytes — the property the service's parity guarantee rests on — and the
// rendering carries both the population statistics and the network table.
func TestPopulationSpecRunRender(t *testing.T) {
	spec := PopulationSpec{Flows: "vegas*2;reno*2", Duration: 2 * time.Second, Seed: 3}
	first, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, b := first.Render(), second.Render()
	if a != b {
		t.Fatalf("two runs of one spec rendered different bytes:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "population") || !strings.Contains(a, "flow") {
		t.Fatalf("rendering missing expected sections:\n%s", a)
	}
}
