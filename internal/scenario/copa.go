package scenario

import (
	"time"

	"starvation/internal/cca/copa"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

// copaPoisonPath builds the §5.1 path: the link's propagation is Rm − 1 ms
// and a constant 1 ms non-congestive delay restores the true Rm = 60 ms for
// every packet except one, which is released without the hold — a single
// 59 ms RTT sample that permanently corrupts Copa's minimum-RTT estimate.
func copaPoisonFlow(name string, poisoned bool) network.FlowSpec {
	const (
		rm  = 60 * time.Millisecond
		dip = time.Millisecond
	)
	spec := network.FlowSpec{
		Name: name,
		Alg:  copa.New(copa.Config{}),
		Rm:   rm - dip,
	}
	if poisoned {
		// The dip fires at t=10s, past slow start, and stays open for half
		// a second — long enough to include one of Copa's periodic
		// queue-drain instants (the standing-RTT mechanism empties the
		// queue every ~5 RTTs). A packet passing at such an instant
		// observes an RTT ~1 ms below the floor every other packet can
		// reach, which is all the poisoning needs; with a queue standing
		// above 1 ms the dip would be invisible.
		spec.FwdJitter = &jitter.OneShotDip{Base: dip, At: 10 * time.Second, Width: 500 * time.Millisecond}
	} else {
		spec.FwdJitter = jitter.Constant{D: dip}
	}
	return spec
}

// CopaSingleFlowPoison reproduces §5.1's single-flow experiment: one Copa
// flow on a 120 Mbit/s link with Rm = 60 ms receives a single packet with a
// 59 ms RTT. The paper measured 8 Mbit/s — a 1 ms measurement error on one
// packet costing ~93% of the link.
func CopaSingleFlowPoison(o Opts) *Result {
	o.fill(60 * time.Second)
	res := o.emulate(
		network.Config{Rate: units.Mbps(120), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		copaPoisonFlow("copa", true),
	)
	return &Result{
		ID:          "T5.1a",
		Description: "Copa single flow, 120 Mbit/s, Rm=60ms, one 59ms-RTT packet",
		PaperClaim:  "throughput 8 Mbit/s (vs 120 available)",
		Net:         res,
		Observables: map[string]float64{
			"throughput_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"utilization":     res.Utilization(),
		},
	}
}

// CopaTwoFlowPoison reproduces §5.1's two-flow variant: only one flow gets
// the 59 ms packet. The paper measured 8.8 vs 95 Mbit/s.
func CopaTwoFlowPoison(o Opts) *Result {
	o.fill(60 * time.Second)
	res := o.emulate(
		network.Config{Rate: units.Mbps(120), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		copaPoisonFlow("poisoned", true),
		copaPoisonFlow("clean", false),
	)
	return &Result{
		ID:          "T5.1b",
		Description: "Copa two flows, 120 Mbit/s, Rm=60ms, 59ms dip on one flow",
		PaperClaim:  "8.8 vs 95 Mbit/s (ratio ~10.8)",
		Net:         res,
		Observables: map[string]float64{
			"poisoned_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"clean_mbps":    res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":         res.Ratio(),
		},
	}
}
