package scenario

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"starvation/internal/cca"
	"starvation/internal/endpoint"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

// MaxPopulationFlows bounds the flow count a -flows clause may request.
// Population experiments at a few thousand flows are the intended scale;
// the cap exists so a typo (or a fuzzer) cannot ask for a billion senders.
const MaxPopulationFlows = 4096

// defaultFlowRm is the propagation RTT a flow group gets when its clause
// does not set rm=.
const defaultFlowRm = 40 * time.Millisecond

// ParseFlows parses a population flow-set clause into concrete flow specs.
//
// Grammar (semicolon-separated groups):
//
//	<cca>[*<count>][:key=val[,key=val]...]
//
// Keys:
//
//	rm=<dur>      propagation RTT (default 40ms)
//	start=<dur>   start time of the group's first flow
//	stagger=<dur> extra start delay per flow inside the group
//	jitter=<spec> forward-path jitter, jitter.Parse grammar (kind:value)
//	loss=<p>      independent random loss probability in [0, 1)
//	ackagg=<dur>  receiver ACK aggregation period
//	path=<i/j/..> link indices the group traverses (topology-dependent)
//	cohort=<name> cohort label (default: the CCA name)
//
// Example: "vegas*8;copa*8:rm=80ms,cohort=copa-long;reno*2:loss=0.01".
//
// Each flow gets its own CCA instance and rng derived from seed and the
// flow's global index, so group order — not group internals — determines
// the realization. topo, when non-nil, supplies default per-flow paths
// (fan-in assignment); explicit path= wins.
func ParseFlows(spec string, seed int64, topo *Topology) ([]network.FlowSpec, error) {
	groups := strings.Split(spec, ";")
	var specs []network.FlowSpec
	for gi, g := range groups {
		g = strings.TrimSpace(g)
		if g == "" {
			return nil, fmt.Errorf("flows: group %d is empty", gi)
		}
		head, opts, _ := strings.Cut(g, ":")
		name, countStr, hasCount := strings.Cut(head, "*")
		name = strings.TrimSpace(name)
		count := 1
		if hasCount {
			n, err := strconv.Atoi(strings.TrimSpace(countStr))
			if err != nil {
				return nil, fmt.Errorf("flows: group %q: bad count %q", g, countStr)
			}
			count = n
		}
		if count < 1 || count > MaxPopulationFlows {
			return nil, fmt.Errorf("flows: group %q: count %d out of [1, %d]", g, count, MaxPopulationFlows)
		}
		if len(specs)+count > MaxPopulationFlows {
			return nil, fmt.Errorf("flows: population exceeds %d flows", MaxPopulationFlows)
		}
		fac := cca.Lookup(name)
		if fac == nil {
			return nil, fmt.Errorf("flows: unknown CCA %q (known: %s)", name, strings.Join(cca.Names(), ", "))
		}

		base := network.FlowSpec{Rm: defaultFlowRm, Cohort: name}
		var start, stagger, ackAgg time.Duration
		var jitterSpec string
		if opts != "" {
			for _, kv := range strings.Split(opts, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("flows: group %q: option %q: want key=val", g, kv)
				}
				key, val = strings.TrimSpace(key), strings.TrimSpace(val)
				var err error
				switch key {
				case "rm":
					base.Rm, err = parsePositiveDuration(val)
				case "start":
					start, err = parseNonNegativeDuration(val)
				case "stagger":
					stagger, err = parseNonNegativeDuration(val)
				case "jitter":
					// Validated here, instantiated per flow below (policies
					// are stateful and carry per-flow rngs).
					jitterSpec = val
					_, err = jitter.Parse(val, rand.New(rand.NewSource(1)))
				case "loss":
					base.LossProb, err = strconv.ParseFloat(val, 64)
					if err == nil && (base.LossProb < 0 || base.LossProb >= 1) {
						err = fmt.Errorf("loss %v outside [0, 1)", base.LossProb)
					}
				case "ackagg":
					ackAgg, err = parseNonNegativeDuration(val)
				case "path":
					base.Path, err = parsePath(val)
				case "cohort":
					if val == "" {
						err = fmt.Errorf("empty cohort label")
					}
					base.Cohort = val
				default:
					err = fmt.Errorf("unknown key (rm, start, stagger, jitter, loss, ackagg, path, cohort)")
				}
				if err != nil {
					return nil, fmt.Errorf("flows: group %q: %s=%s: %v", g, key, val, err)
				}
			}
		}
		if ackAgg > 0 {
			base.Ack = endpoint.AckConfig{AggregatePeriod: ackAgg}
		}

		for k := 0; k < count; k++ {
			i := len(specs)
			f := base
			f.Name = fmt.Sprintf("%s-%d", name, i)
			f.StartAt = start + time.Duration(k)*stagger
			if f.Path == nil && topo != nil {
				f.Path = topo.Path(i)
			}
			// Per-flow derived seeds: the CCA's rng and any jitter rng are
			// functions of (seed, i) alone, so editing one group never
			// perturbs flows outside it.
			f.Alg = fac(endpoint.DefaultMSS, rand.New(rand.NewSource(seed*1000003+int64(i)*7919+17)))
			if jitterSpec != "" {
				pol, err := jitter.Parse(jitterSpec, rand.New(rand.NewSource(seed*1000003+int64(i)*7919+101)))
				if err != nil {
					return nil, fmt.Errorf("flows: group %q: jitter: %v", g, err)
				}
				f.FwdJitter = pol
			}
			specs = append(specs, f)
		}
	}
	return specs, nil
}

// Topology is a parsed -topology clause: the link list plus the policies
// that depend on its shape (bottleneck index, default path assignment).
type Topology struct {
	// Kind is "single", "parkinglot" or "fanin".
	Kind string
	// Links is nil for "single": the network then uses the legacy
	// single-bottleneck wiring, which existing scenarios depend on being
	// bit-identical.
	Links []network.LinkSpec
	// Bottleneck is the index of the link reported as the bottleneck.
	Bottleneck int
	fanN       int
}

// fanInAccessFactor over-provisions fan-in access links relative to the
// shared uplink so contention concentrates where the experiment wants it.
const fanInAccessFactor = 4

// defaultHopDelay separates consecutive links of a multi-hop topology.
const defaultHopDelay = time.Millisecond

// ParseTopology parses a topology clause against the experiment's
// bottleneck parameters:
//
//	single          one shared FIFO (the paper's topology; the default)
//	parkinglot:<n>  n rate/buffer bottlenecks in series; flows default to
//	                the full chain, cross traffic pins path=<hop>
//	fanin:<n>       n access links (4x rate, unbuffered) into one shared
//	                rate/buffer uplink; flows are assigned access links
//	                round-robin
func ParseTopology(spec string, rate units.Rate, bufferBytes int) (*Topology, error) {
	kind, arg, hasArg := strings.Cut(spec, ":")
	n := 0
	if hasArg {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("topology %q: bad count %q", spec, arg)
		}
		n = v
	}
	switch kind {
	case "", "single":
		if hasArg {
			return nil, fmt.Errorf("topology %q: single takes no argument", spec)
		}
		return &Topology{Kind: "single"}, nil
	case "parkinglot":
		if !hasArg {
			return nil, fmt.Errorf("topology %q: want parkinglot:<hops>", spec)
		}
		if n > maxTopologyLinks {
			return nil, fmt.Errorf("topology %q: %d hops exceeds %d", spec, n, maxTopologyLinks)
		}
		return &Topology{
			Kind:  "parkinglot",
			Links: network.ParkingLot(n, rate, bufferBytes, defaultHopDelay),
		}, nil
	case "fanin":
		if !hasArg {
			return nil, fmt.Errorf("topology %q: want fanin:<access-links>", spec)
		}
		if n > maxTopologyLinks {
			return nil, fmt.Errorf("topology %q: %d access links exceeds %d", spec, n, maxTopologyLinks)
		}
		return &Topology{
			Kind:       "fanin",
			Links:      network.FanIn(n, rate*fanInAccessFactor, 0, defaultHopDelay, rate, bufferBytes),
			Bottleneck: n,
			fanN:       n,
		}, nil
	default:
		return nil, fmt.Errorf("unknown topology %q (single, parkinglot:<n>, fanin:<n>)", kind)
	}
}

// maxTopologyLinks bounds generated link counts (a fuzz/typo guard, far
// above any experiment here).
const maxTopologyLinks = 256

// Path returns the topology's default path for flow i, nil when the flow
// should take every link in order (single bottleneck, parking-lot chain).
func (t *Topology) Path(i int) []int {
	if t.Kind == "fanin" {
		return network.FanInPath(i, t.fanN)
	}
	return nil
}

// parsePath parses slash-separated link indices, e.g. "1" or "0/2".
func parsePath(val string) ([]int, error) {
	parts := strings.Split(val, "/")
	path := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad link index %q", p)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative link index %d", v)
		}
		path[i] = v
	}
	return path, nil
}

func parsePositiveDuration(val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration %v not positive", d)
	}
	return d, nil
}

func parseNonNegativeDuration(val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("duration %v negative", d)
	}
	return d, nil
}
