package scenario

import (
	"math/rand"
	"time"

	"starvation/internal/cca/algo1"
	"starvation/internal/cca/vegas"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

// Algo1Fairness exercises the paper's proposed CCA (§6.3, Algorithm 1):
// two flows share a 100 Mbit/s link while one flow's path adds adversarial
// non-congestive delay up to D = 10 ms (the bound the algorithm designed
// for). Because the exponential rate-delay mapping keeps rates a factor s
// apart mapped to delays ≥ D apart, the steady-state throughput ratio must
// stay ≤ s (here s = 2) — s-fairness instead of starvation.
func Algo1Fairness(o Opts) *Result {
	o.fill(120 * time.Second)
	const (
		rm = 50 * time.Millisecond
		d  = 10 * time.Millisecond
		s  = 2.0
	)
	mk := func() *algo1.Algo1 {
		return algo1.New(algo1.Config{
			Rm: rm, D: d, S: s,
			RmaxOffset: 120 * time.Millisecond,
			MuMin:      units.Kbps(100),
			A:          units.Mbps(1),
		})
	}
	res := o.emulate(
		network.Config{Rate: units.Mbps(100), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		network.FlowSpec{
			Name:      "jittered",
			Alg:       mk(),
			Rm:        rm,
			FwdJitter: &jitter.Uniform{Max: d, Rng: rand.New(rand.NewSource(o.Seed*17 + 1))},
		},
		network.FlowSpec{
			Name: "clean",
			Alg:  mk(),
			Rm:   rm,
		},
	)
	return &Result{
		ID:          "X-A1",
		Description: "Algorithm 1 two flows, 100 Mbit/s, adversarial jitter ≤ D=10ms on one",
		PaperClaim:  "s-fair (ratio ≤ s = 2) and efficient; CCAC found no bad traces",
		Net:         res,
		Observables: map[string]float64{
			"jittered_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"clean_mbps":    res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":         res.Ratio(),
			"utilization":   res.Utilization(),
			"s_bound":       s,
		},
	}
}

// VegasUnderJitter is the contrast case for X-A1: Vegas flows in the same
// jitter setting starve, because Vegas maps its whole rate range into a
// delay band smaller than the jitter.
func VegasUnderJitter(o Opts) *Result {
	o.fill(120 * time.Second)
	const (
		rm = 50 * time.Millisecond
		d  = 10 * time.Millisecond
	)
	// The jitter switches on at t=10s, after the flow has learned its true
	// minimum RTT: from then on the persistent 10 ms hold is
	// indistinguishable from queueing (were it present from t=0, Vegas
	// would simply fold it into baseRTT — the attack needs the ambiguity).
	stepJitter := &jitter.Scripted{
		Max: d,
		Fn: func(now time.Duration) time.Duration {
			if now < 10*time.Second {
				return 0
			}
			return d
		},
	}
	res := o.emulate(
		network.Config{Rate: units.Mbps(100), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		network.FlowSpec{
			Name:      "jittered",
			Alg:       vegas.New(vegas.Config{}),
			Rm:        rm,
			FwdJitter: stepJitter,
		},
		network.FlowSpec{
			Name: "clean",
			Alg:  vegas.New(vegas.Config{}),
			Rm:   rm,
		},
	)
	return &Result{
		ID:          "X-A1v",
		Description: "Vegas two flows in the X-A1 setting (persistent 10ms jitter on one)",
		PaperClaim:  "starves: Vegas cannot distinguish the jitter from queueing",
		Net:         res,
		Observables: map[string]float64{
			"jittered_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"clean_mbps":    res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":         res.Ratio(),
		},
	}
}

// QuickstartVegas is the minimal two-identical-flows sanity scenario used
// by the quickstart example: on a clean path, two Vegas flows share fairly.
func QuickstartVegas(o Opts) *Result {
	o.fill(60 * time.Second)
	res := o.emulate(
		network.Config{Rate: units.Mbps(48), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		network.FlowSpec{Name: "flow0", Alg: vegas.New(vegas.Config{}), Rm: 80 * time.Millisecond},
		network.FlowSpec{Name: "flow1", Alg: vegas.New(vegas.Config{}), Rm: 80 * time.Millisecond,
			StartAt: 5 * time.Second},
	)
	return &Result{
		ID:          "quickstart",
		Description: "Two Vegas flows, 48 Mbit/s, Rm=80ms, clean path, staggered start",
		PaperClaim:  "fair sharing on an ideal path (the baseline the theorems perturb)",
		Net:         res,
		Observables: map[string]float64{
			"flow0_mbps":  res.Flows[0].Stat.SteadyThpt.Mbit(),
			"flow1_mbps":  res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":       res.Ratio(),
			"jain":        res.Jain(),
			"utilization": res.Utilization(),
		},
	}
}
