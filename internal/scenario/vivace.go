package scenario

import (
	"math/rand"
	"time"

	"starvation/internal/cca/vivace"
	"starvation/internal/endpoint"
	"starvation/internal/network"
	"starvation/internal/units"
)

// VivaceAckAggregation reproduces §5.3: two PCC Vivace flows on a
// 120 Mbit/s link with 60 ms propagation delay; one flow's ACKs are
// released only at integer multiples of 60 ms, "preventing finer delay
// measurement". The paper measured 9.9 vs 99.4 Mbit/s.
func VivaceAckAggregation(o Opts) *Result {
	o.fill(60 * time.Second)
	mk := func(name string, seed int64, aggregate bool) network.FlowSpec {
		spec := network.FlowSpec{
			Name: name,
			Alg:  vivace.New(vivace.Config{Rng: rand.New(rand.NewSource(seed))}),
			Rm:   60 * time.Millisecond,
		}
		if aggregate {
			spec.Ack = endpoint.AckConfig{AggregatePeriod: 60 * time.Millisecond}
		}
		return spec
	}
	res := o.emulate(
		network.Config{Rate: units.Mbps(120), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
		mk("quantized", o.Seed*11+1, true),
		mk("clean", o.Seed*11+2, false),
	)
	return &Result{
		ID:          "T5.3",
		Description: "Vivace two flows, 120 Mbit/s, Rm=60ms, one flow's ACKs at 60ms multiples",
		PaperClaim:  "9.9 vs 99.4 Mbit/s (ratio ~10)",
		Net:         res,
		Observables: map[string]float64{
			"quantized_mbps": res.Flows[0].Stat.SteadyThpt.Mbit(),
			"clean_mbps":     res.Flows[1].Stat.SteadyThpt.Mbit(),
			"ratio":          res.Ratio(),
		},
	}
}
