package scenario

import (
	"testing"

	"starvation/internal/endpoint"
	"starvation/internal/network"
	"starvation/internal/units"
)

// FuzzParseFlows throws arbitrary clause strings at the -flows/-topology
// parsers and checks the contract: no panic, and everything accepted is
// actually runnable — population within the cap, every spec valid, and
// valid against the parsed topology (paths in range, no repeats), checked
// with the same validation the network constructor applies.
func FuzzParseFlows(f *testing.F) {
	f.Add("vegas", "single")
	f.Add("vegas*8;reno*8", "single")
	f.Add("vegas*8:rm=80ms,cohort=slow;copa:loss=0.01", "")
	f.Add("reno*4:start=1s,stagger=100ms,jitter=uniform:5ms", "parkinglot:3")
	f.Add("vegas*6:cohort=long;reno*2:path=1,cohort=cross", "parkinglot:3")
	f.Add("vegas*8:ackagg=5ms;bbr*8", "fanin:4")
	f.Add("vegas:path=0/2", "fanin:2")
	f.Add("vegas*4096", "single")
	f.Add("vegas:rm=-1s", "single")
	f.Add("vegas:jitter=spike:2ms/50ms", "fanin:1")
	f.Fuzz(func(t *testing.T, flowsSpec, topoSpec string) {
		topo, err := ParseTopology(topoSpec, units.Mbps(10), 16*endpoint.DefaultMSS)
		if err != nil {
			return
		}
		if len(topo.Links) > maxTopologyLinks {
			t.Fatalf("topology %q: %d links above cap", topoSpec, len(topo.Links))
		}
		specs, err := ParseFlows(flowsSpec, 1, topo)
		if err != nil {
			return
		}
		if len(specs) == 0 || len(specs) > MaxPopulationFlows {
			t.Fatalf("flows %q: accepted %d flows", flowsSpec, len(specs))
		}
		nLinks := len(topo.Links)
		if nLinks == 0 {
			nLinks = 1 // legacy single bottleneck
		}
		for i, s := range specs {
			if err := s.Validate(); err != nil {
				t.Fatalf("flows %q: accepted spec %d yet invalid: %v", flowsSpec, i, err)
			}
			if s.Alg == nil {
				t.Fatalf("flows %q: spec %d has no algorithm", flowsSpec, i)
			}
			// path= link indices are topology-dependent, so out-of-range
			// values surface at network construction, not parse time —
			// but the parser must never emit a malformed path itself
			// (negative or repeated indices).
			for _, j := range s.Path {
				if j < 0 {
					t.Fatalf("flows %q: spec %d has negative link index %d", flowsSpec, i, j)
				}
			}
			if s.Path == nil {
				continue
			}
			seen := map[int]bool{}
			for _, j := range s.Path {
				if seen[j] {
					t.Fatalf("flows %q: spec %d path %v revisits link %d", flowsSpec, i, s.Path, j)
				}
				seen[j] = true
			}
		}
		// Small accepted populations must construct: run the network
		// constructor's own validation end to end (bounded so the fuzzer
		// does not spend its budget building 4096-flow networks).
		if len(specs) <= 64 && pathsInRange(specs, nLinks) {
			cfg := network.Config{Links: topo.Links, Bottleneck: topo.Bottleneck}
			if topo.Links == nil {
				cfg.Rate = units.Mbps(10)
				cfg.BufferBytes = 16 * endpoint.DefaultMSS
			}
			if _, err := network.NewChecked(cfg, specs...); err != nil {
				t.Fatalf("flows %q / topo %q: parsed but unconstructable: %v", flowsSpec, topoSpec, err)
			}
		}
	})
}

func pathsInRange(specs []network.FlowSpec, nLinks int) bool {
	for _, s := range specs {
		for _, j := range s.Path {
			if j >= nLinks {
				return false
			}
		}
	}
	return true
}
