package scenario

import (
	"reflect"
	"testing"
	"time"

	"starvation/internal/network"
)

// TestAllegroBurstTelemetry pins the flight recorder's T5.4d contract:
// a fixed-seed run produces a deterministic, non-empty episode log whose
// burst-attributed onsets land inside injected Gilbert–Elliott bad
// states, and the recorder attributes them via the fault-state stream.
func TestAllegroBurstTelemetry(t *testing.T) {
	run := func() *network.TelemetryResult {
		r := AllegroBurstLoss(Opts{Telemetry: &network.TelemetryConfig{}})
		if r.Net.Telemetry == nil {
			t.Fatal("Opts.Telemetry did not reach the network config")
		}
		return r.Net.Telemetry
	}
	tr := run()

	if len(tr.Episodes) == 0 {
		t.Fatal("episode log empty; expected slow-start and burst episodes")
	}
	// The bursty flow (flow 0) must log at least one episode whose onset
	// window co-occurred with a GE bad state — the burst that silenced it.
	var burstEps int
	for _, ep := range tr.Episodes {
		if ep.Flow == 0 && ep.FaultAtOnset {
			burstEps++
			if ep.Onset == 0 {
				t.Errorf("burst-attributed episode at t=0; slow-start must not carry fault attribution")
			}
			if ep.Severity <= 0 || ep.Severity > 1 {
				t.Errorf("episode severity = %v, want (0, 1]", ep.Severity)
			}
			if ep.Name != "bursty" {
				t.Errorf("episode flow name = %q, want bursty", ep.Name)
			}
		}
		if ep.Flow == 1 && ep.FaultAtOnset {
			t.Errorf("clean flow episode at %v attributed to a fault; it has no gate", ep.Onset)
		}
	}
	if burstEps == 0 {
		t.Errorf("no episode on the bursty flow attributed to a GE burst:\n%+v", tr.Episodes)
	}

	// The measure phase must cover the run's steady window.
	var measure *network.Phase
	for i := range tr.Phases {
		if tr.Phases[i].Name == "measure" {
			measure = &tr.Phases[i]
		}
	}
	if measure == nil || measure.To != 60*time.Second {
		t.Fatalf("measure phase = %+v, want one ending at the 60s horizon", measure)
	}

	// Determinism: the same seed reproduces the identical episode log.
	if again := run(); !reflect.DeepEqual(tr.Episodes, again.Episodes) {
		t.Errorf("episode log not deterministic across identical runs:\n%+v\nvs\n%+v",
			tr.Episodes, again.Episodes)
	}
}
