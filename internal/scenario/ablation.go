package scenario

import (
	"math/rand"
	"time"

	"starvation/internal/cca/algo1"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

// Algo1Ablation compares the published Algorithm 1 against the two design
// alternatives the paper says CCAC rejected during tuning (§6.3):
//
//   - AIAD: subtractive instead of multiplicative decrease ("the fairness
//     properties of AIMD are critical in the presence of measurement
//     ambiguity");
//   - per-ACK updates instead of once-per-Rm ("change the rate by the same
//     amount every RTT independent of the number of ACKs received").
//
// Each variant runs the X-A1 topology: two flows, 100 Mbit/s, one flow
// behind adversarial jitter ≤ D. The published design must post the best
// (lowest) unfairness ratio.
func Algo1Ablation(o Opts) *Result {
	o.fill(120 * time.Second)
	const (
		rm = 50 * time.Millisecond
		d  = 10 * time.Millisecond
	)
	run := func(aiad, perAck bool) *network.Result {
		mk := func() *algo1.Algo1 {
			return algo1.New(algo1.Config{
				Rm: rm, D: d, S: 2,
				RmaxOffset: 120 * time.Millisecond,
				MuMin:      units.Kbps(100),
				A:          units.Mbps(1),
				AIAD:       aiad,
				PerAck:     perAck,
			})
		}
		res := o.emulate(
			network.Config{Rate: units.Mbps(100), Seed: o.Seed, Probe: o.Probe, Guard: o.Guard, Ctx: o.Ctx, Telemetry: o.Telemetry},
			network.FlowSpec{
				Name: "jittered", Alg: mk(), Rm: rm,
				FwdJitter: &jitter.Uniform{Max: d, Rng: rand.New(rand.NewSource(o.Seed*17 + 1))},
			},
			network.FlowSpec{Name: "clean", Alg: mk(), Rm: rm},
		)
		return res
	}
	aimd := run(false, false)
	aiad := run(true, false)
	perAck := run(false, true)
	return &Result{
		ID:          "X-A1-ablation",
		Description: "Algorithm 1 design ablation: AIMD/per-Rm vs AIAD vs per-ACK, under jitter ≤ D",
		PaperClaim:  "CCAC fine-tuning chose AIMD and per-RTT updates (§6.3)",
		Net:         aimd,
		Observables: map[string]float64{
			"aimd_ratio":         aimd.Ratio(),
			"aimd_utilization":   aimd.Utilization(),
			"aiad_ratio":         aiad.Ratio(),
			"aiad_utilization":   aiad.Utilization(),
			"perack_ratio":       perAck.Ratio(),
			"perack_utilization": perAck.Utilization(),
		},
	}
}
