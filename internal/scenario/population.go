// Population-scale scenarios: the paper proves starvation pairwise (two
// flows, Theorem 1); these experiments scale the same machinery to N-flow
// populations — mixed CCAs, heterogeneous RTTs, multi-hop topologies —
// and report the population starvation statistics (starved fraction under
// the ε·fair-share threshold, share-ratio quantiles, per-cohort Jain).

package scenario

import (
	"fmt"
	"math"
	"time"

	"starvation/internal/core"
	"starvation/internal/endpoint"
	"starvation/internal/units"

	// Population clauses may name any registered algorithm.
	_ "starvation/internal/cca/algo1"
	_ "starvation/internal/cca/allegro"
	_ "starvation/internal/cca/bbr"
	_ "starvation/internal/cca/constwnd"
	_ "starvation/internal/cca/copa"
	_ "starvation/internal/cca/cubic"
	_ "starvation/internal/cca/fast"
	_ "starvation/internal/cca/ledbat"
	_ "starvation/internal/cca/reno"
	_ "starvation/internal/cca/vegas"
	_ "starvation/internal/cca/verus"
	_ "starvation/internal/cca/vivace"
)

// popParams fixes one population experiment's published parameters.
type popParams struct {
	id, desc, claim string
	// flows is a ParseFlows clause; topo a ParseTopology clause.
	flows, topo string
	// rate/bufferPkts parameterize the topology's bottleneck link(s).
	rateMbps   float64
	bufferPkts int
	dur        time.Duration
}

// runPopulationParams assembles and runs one population scenario. Clause
// strings are package constants, so parse errors are programming errors
// and panic like network.New does on bad specs.
func runPopulationParams(p popParams, o Opts) *Result {
	o.fill(p.dur)
	topo, err := ParseTopology(p.topo, units.Mbps(p.rateMbps), p.bufferPkts*endpoint.DefaultMSS)
	if err != nil {
		panic(fmt.Sprintf("scenario %s: %v", p.id, err))
	}
	specs, err := ParseFlows(p.flows, o.Seed, topo)
	if err != nil {
		panic(fmt.Sprintf("scenario %s: %v", p.id, err))
	}
	cfg := core.PopulationConfig{
		Flows:      specs,
		Links:      topo.Links,
		Bottleneck: topo.Bottleneck,
		Seed:       o.Seed,
		Duration:   o.Duration,
		Guard:      o.Guard,
		Probe:      o.Probe,
		Ctx:        o.Ctx,
		Telemetry:  o.Telemetry,
		Session:    o.Session,
	}
	if topo.Links == nil {
		cfg.Rate = units.Mbps(p.rateMbps)
		cfg.BufferBytes = p.bufferPkts * endpoint.DefaultMSS
	}
	pr, err := core.RunPopulation(cfg)
	if err != nil {
		panic(fmt.Sprintf("scenario %s: %v", p.id, err))
	}
	st := pr.Stats
	obsv := map[string]float64{
		"flows":           float64(st.N),
		"starved":         float64(st.Starved),
		"starved_frac":    st.StarvedFraction,
		"jain":            st.Jain,
		"share_p5":        st.ShareP5,
		"share_p50":       st.ShareP50,
		"share_p95":       st.ShareP95,
		"utilization_pct": 100 * pr.Net.Utilization(),
	}
	// max/min is +Inf when a flow got nothing; observables are plain
	// floats, so cap it to keep the table printable.
	if !math.IsInf(st.MaxOverMin, 1) {
		obsv["max_over_min"] = st.MaxOverMin
	}
	for _, c := range st.Cohorts {
		if c.Cohort != "" {
			obsv["starved_"+c.Cohort] = float64(c.Starved)
		}
	}
	return &Result{
		ID:          p.id,
		Description: p.desc,
		PaperClaim:  p.claim,
		Net:         pr.Net,
		Observables: obsv,
	}
}

// PopulationMixed contends three CCA cohorts at one bottleneck.
func PopulationMixed(o Opts) *Result {
	return runPopulationParams(popParams{
		id:   "P6.1",
		desc: "24-flow mixed population (vegas/reno/copa) on one 48 Mbit/s bottleneck",
		claim: "extension beyond the paper: Theorem 1's pairwise starvation, " +
			"measured as a population starved-fraction across CCA cohorts",
		flows:      "vegas*8:stagger=50ms;reno*8:stagger=50ms;copa*8:stagger=50ms",
		topo:       "single",
		rateMbps:   48,
		bufferPkts: 128,
		dur:        12 * time.Second,
	}, o)
}

// PopulationRTT contends one CCA across heterogeneous-RTT cohorts.
func PopulationRTT(o Opts) *Result {
	return runPopulationParams(popParams{
		id:   "P6.2",
		desc: "24 reno flows in 20/80/160 ms RTT cohorts on one 48 Mbit/s bottleneck",
		claim: "extension beyond the paper: RTT-unfair loss-based control; " +
			"long-RTT cohorts hold shares far below fair and starve first",
		flows: "reno*8:rm=20ms,cohort=rtt20,stagger=50ms;" +
			"reno*8:rm=80ms,cohort=rtt80,stagger=50ms;" +
			"reno*8:rm=160ms,cohort=rtt160,stagger=50ms",
		topo:       "single",
		rateMbps:   48,
		bufferPkts: 128,
		dur:        12 * time.Second,
	}, o)
}

// PopulationParkingLot runs long flows over a 3-hop chain against one-hop
// cross traffic.
func PopulationParkingLot(o Opts) *Result {
	return runPopulationParams(popParams{
		id:   "P6.3",
		desc: "parking-lot: 6 long vegas flows over 3 hops vs 6 one-hop reno cross flows",
		claim: "extension beyond the paper: multi-bottleneck chain; long flows " +
			"pay every hop's queue and lose to single-hop cross traffic",
		flows: "vegas*6:cohort=long,stagger=50ms;" +
			"reno*2:path=0,cohort=cross,stagger=50ms;" +
			"reno*2:path=1,cohort=cross,stagger=50ms;" +
			"reno*2:path=2,cohort=cross,stagger=50ms",
		topo:       "parkinglot:3",
		rateMbps:   24,
		bufferPkts: 64,
		dur:        12 * time.Second,
	}, o)
}

// PopulationFanIn funnels two CCA cohorts through a shared uplink.
func PopulationFanIn(o Opts) *Result {
	return runPopulationParams(popParams{
		id:   "P6.4",
		desc: "fan-in: 16 flows (vegas/reno) over 4 access links into one 32 Mbit/s uplink",
		claim: "extension beyond the paper: contention concentrates at the shared " +
			"uplink; with plain drop-tail buffers the fan-in stays near-fair — " +
			"topology alone does not reproduce the paper's jitter-driven starvation",
		flows:      "vegas*8:stagger=50ms;reno*8:stagger=50ms",
		topo:       "fanin:4",
		rateMbps:   32,
		bufferPkts: 96,
		dur:        12 * time.Second,
	}, o)
}

// PopulationMixed500 is the nightly large-N smoke: 500 flows across four
// CCA cohorts. It exists to exercise population scale (event pool, obs
// aggregation, population statistics) end to end, not to publish numbers.
func PopulationMixed500(o Opts) *Result {
	return runPopulationParams(popParams{
		id:   "P6.5",
		desc: "500-flow mixed population (vegas/reno/copa/bbr) on one 250 Mbit/s bottleneck",
		claim: "extension beyond the paper: population-scale smoke; starved " +
			"fraction and share quantiles at N=500",
		flows: "vegas*125:stagger=8ms;reno*125:stagger=8ms;" +
			"copa*125:stagger=8ms;bbr*125:stagger=8ms",
		topo:       "single",
		rateMbps:   250,
		bufferPkts: 512,
		dur:        8 * time.Second,
	}, o)
}
