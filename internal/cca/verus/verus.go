// Package verus implements Verus (Zaki et al., SIGCOMM 2015), the
// delay-profile CCA the paper lists as the *maximum*-filter member of the
// delay-bounding family (§2.1's taxonomy: averages for Vegas/FAST/BBR,
// minimums for LEDBAT/Copa, maximums for Verus).
//
// Verus learns a delay profile — an empirical mapping from congestion
// window to the delay that window produced — and walks a delay target up
// or down each epoch: if the smoothed maximum delay of the last epoch is
// more than R times the minimum observed delay, the target shrinks
// (multiplicatively); otherwise it grows (additively). The next window is
// read off the learned profile at the target delay.
//
// On an ideal path Verus converges to delays near R·Dmin, oscillating as
// the epoch estimator breathes — delay-convergent with δ(C) bounded by the
// profile resolution, and therefore inside Theorem 1's starvation regime
// like the rest of the family.
package verus

import (
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Verus.
type Config struct {
	MSS int
	// R is the delay-ratio threshold (paper default 2): target delays stay
	// near R × Dmin.
	R float64
	// EpochLen is the control epoch (paper: 5 ms; we default to a larger
	// 20 ms since our RTTs are tens of ms).
	EpochLen time.Duration
	// Delta1 is the additive delay-target increase per epoch when below
	// the ratio threshold (default 1 ms).
	Delta1 time.Duration
	// Mult is the multiplicative delay-target decrease when above the
	// threshold (default 0.9).
	Mult float64
	// InitialCwndPkts is the initial window (default 4).
	InitialCwndPkts float64
	// MinRTTHint pins the minimum-delay estimate when nonzero.
	MinRTTHint time.Duration
}

// profileBuckets is the delay-profile resolution: window values are
// learned per delay bucket of profileQuantum width above the minimum.
const (
	profileBuckets = 512
	profileQuantum = time.Millisecond
)

// Verus is a Verus sender.
type Verus struct {
	cfg  Config
	cwnd float64 // packets

	minRTT cca.MinRTT
	// profile[i] is the EWMA of windows observed while delay was in
	// bucket i (i·quantum above the minimum); profileSet marks live
	// buckets.
	profile    [profileBuckets]float64
	profileSet [profileBuckets]bool

	epochStart  time.Duration
	epochMaxRTT time.Duration
	smoothedMax cca.EWMA

	targetDelay time.Duration
	inSlowStart bool

	Epochs int64
}

// New returns a Verus instance.
func New(cfg Config) *Verus {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.R <= 1 {
		cfg.R = 2
	}
	if cfg.EpochLen <= 0 {
		cfg.EpochLen = 20 * time.Millisecond
	}
	if cfg.Delta1 <= 0 {
		cfg.Delta1 = time.Millisecond
	}
	if cfg.Mult <= 0 || cfg.Mult >= 1 {
		cfg.Mult = 0.9
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 4
	}
	v := &Verus{cfg: cfg, cwnd: cfg.InitialCwndPkts, inSlowStart: true}
	v.smoothedMax.Alpha = 0.2
	return v
}

func init() {
	cca.Register("verus", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (v *Verus) Name() string { return "verus" }

// Window implements cca.Algorithm.
func (v *Verus) Window() int { return int(v.cwnd * float64(v.cfg.MSS)) }

// PacingRate implements cca.Algorithm.
func (v *Verus) PacingRate() units.Rate { return 0 }

// CwndPkts returns the window in packets.
func (v *Verus) CwndPkts() float64 { return v.cwnd }

// SetCwndPkts overrides the window (theory-construction support).
func (v *Verus) SetCwndPkts(w float64) {
	v.cwnd = w
	v.inSlowStart = false
}

// MinDelay returns the minimum-delay estimate.
func (v *Verus) MinDelay() time.Duration {
	if v.cfg.MinRTTHint > 0 {
		return v.cfg.MinRTTHint
	}
	return v.minRTT.Get(0)
}

// TargetDelay returns the current delay target (for tests/traces).
func (v *Verus) TargetDelay() time.Duration { return v.targetDelay }

func (v *Verus) bucket(d time.Duration) int {
	min := v.MinDelay()
	if min <= 0 || d < min {
		return 0
	}
	i := int((d - min) / profileQuantum)
	if i >= profileBuckets {
		i = profileBuckets - 1
	}
	return i
}

// learn folds the (window, delay) observation into the profile.
func (v *Verus) learn(w float64, d time.Duration) {
	i := v.bucket(d)
	if !v.profileSet[i] {
		v.profile[i] = w
		v.profileSet[i] = true
		return
	}
	v.profile[i] = 0.8*v.profile[i] + 0.2*w
}

// lookup reads the learned window for a delay target, interpolating from
// the nearest live bucket below (the profile is monotone in practice).
func (v *Verus) lookup(d time.Duration) (float64, bool) {
	for i := v.bucket(d); i >= 0; i-- {
		if v.profileSet[i] {
			return v.profile[i], true
		}
	}
	return 0, false
}

// OnAck implements cca.Algorithm.
func (v *Verus) OnAck(s cca.AckSignal) {
	if s.RTT <= 0 {
		return
	}
	if v.cfg.MinRTTHint == 0 {
		v.minRTT.Update(s.Now, s.RTT)
	}
	if s.RTT > v.epochMaxRTT {
		v.epochMaxRTT = s.RTT
	}
	v.learn(v.cwnd, s.RTT)
	if v.epochStart == 0 {
		v.epochStart = s.Now
		return
	}
	if s.Now-v.epochStart < v.cfg.EpochLen {
		return
	}
	v.endEpoch()
	v.epochStart = s.Now
	v.epochMaxRTT = 0
}

// endEpoch runs the Verus control decision.
func (v *Verus) endEpoch() {
	v.Epochs++
	min := v.MinDelay()
	if min <= 0 || v.epochMaxRTT <= 0 {
		return
	}
	dMax := time.Duration(v.smoothedMax.Update(float64(v.epochMaxRTT)))

	if v.inSlowStart {
		// Exit on the RAW epoch maximum: the smoothed estimate lags by
		// several epochs, during which an exponential ramp with an
		// RTT-deep feedback pipeline would badly overshoot the queue.
		if float64(v.epochMaxRTT) > v.cfg.R*float64(min) {
			v.inSlowStart = false
			v.targetDelay = dMax
		} else {
			v.cwnd *= 1.25 // exponential ramp per epoch
			return
		}
	}

	if float64(dMax)/float64(min) > v.cfg.R {
		v.targetDelay = time.Duration(float64(v.targetDelay) * v.cfg.Mult)
	} else {
		v.targetDelay += v.cfg.Delta1
	}
	if v.targetDelay < min {
		v.targetDelay = min
	}
	if w, ok := v.lookup(v.targetDelay); ok && w >= 2 {
		v.cwnd = w
	} else if v.targetDelay > dMax {
		// Target beyond anything observed: probe upward.
		v.cwnd++
	}
	if v.cwnd < 2 {
		v.cwnd = 2
	}
}

// OnLoss implements cca.Algorithm: Verus halves its delay target on loss.
func (v *Verus) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	v.inSlowStart = false
	v.targetDelay /= 2
	v.cwnd = maxF(v.cwnd/2, 2)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
