package verus

import (
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/network"
	"starvation/internal/units"
)

func feed(v *Verus, now, rtt time.Duration) {
	v.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: v.cfg.MSS,
		DeliveredBytes: v.cfg.MSS, Packets: 1})
}

func TestSlowStartRampsUntilDelayRatio(t *testing.T) {
	v := New(Config{MSS: 1500, MinRTTHint: 50 * time.Millisecond})
	w0 := v.CwndPkts()
	// Low delay: stays in slow start, multiplies per epoch.
	now := time.Duration(0)
	for i := 0; i < 200; i++ {
		now += 5 * time.Millisecond
		feed(v, now, 55*time.Millisecond)
	}
	if got := v.CwndPkts(); got < 4*w0 {
		t.Errorf("cwnd after low-delay epochs = %v, want ramped", got)
	}
	if !v.inSlowStart {
		t.Error("left slow start below the delay-ratio threshold")
	}
	// Delay above R·min: exit.
	for i := 0; i < 50; i++ {
		now += 5 * time.Millisecond
		feed(v, now, 120*time.Millisecond)
	}
	if v.inSlowStart {
		t.Error("still in slow start above R·Dmin")
	}
}

func TestTargetDelayDynamics(t *testing.T) {
	v := New(Config{MSS: 1500, MinRTTHint: 50 * time.Millisecond})
	v.SetCwndPkts(20)
	v.targetDelay = 80 * time.Millisecond
	v.smoothedMax.Update(float64(80 * time.Millisecond))

	// Above ratio: the target shrinks multiplicatively.
	now := time.Duration(0)
	for i := 0; i < 60; i++ {
		now += 5 * time.Millisecond
		feed(v, now, 150*time.Millisecond)
	}
	if v.targetDelay >= 80*time.Millisecond {
		t.Errorf("target = %v, want shrunk below 80ms at ratio 3", v.targetDelay)
	}
	// Below ratio: the target grows additively.
	before := v.targetDelay
	for i := 0; i < 400; i++ {
		now += 5 * time.Millisecond
		feed(v, now, 60*time.Millisecond)
	}
	if v.targetDelay <= before {
		t.Errorf("target = %v, want grown from %v at low delay", v.targetDelay, before)
	}
}

func TestProfileLearning(t *testing.T) {
	v := New(Config{MSS: 1500, MinRTTHint: 50 * time.Millisecond})
	// Teach the profile: window 30 ↔ 70ms, window 10 ↔ 55ms.
	v.cwnd = 10
	for i := 0; i < 20; i++ {
		v.learn(10, 55*time.Millisecond)
		v.learn(30, 70*time.Millisecond)
	}
	if w, ok := v.lookup(55 * time.Millisecond); !ok || w < 9 || w > 11 {
		t.Errorf("lookup(55ms) = %v,%v, want ~10", w, ok)
	}
	if w, ok := v.lookup(72 * time.Millisecond); !ok || w < 29 || w > 31 {
		t.Errorf("lookup(72ms) = %v,%v, want ~30 (nearest live bucket below)", w, ok)
	}
	if _, ok := v.lookup(40 * time.Millisecond); ok {
		t.Error("lookup below every bucket should miss")
	}
}

func TestLossReaction(t *testing.T) {
	v := New(Config{MSS: 1500})
	v.SetCwndPkts(40)
	v.targetDelay = 100 * time.Millisecond
	v.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if v.CwndPkts() != 20 || v.targetDelay != 50*time.Millisecond {
		t.Errorf("after loss: cwnd %v target %v", v.CwndPkts(), v.targetDelay)
	}
	v.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if v.CwndPkts() != 20 {
		t.Error("same-epoch loss reduced twice")
	}
}

func TestEndToEndConvergence(t *testing.T) {
	// On an ideal path Verus must utilize the link and keep delay bounded
	// near R·Rm — delay-convergent per Definition 1.
	n := network.New(
		network.Config{Rate: units.Mbps(24), Seed: 1},
		network.FlowSpec{Name: "verus", Alg: New(Config{}), Rm: 50 * time.Millisecond},
	)
	res := n.Run(30 * time.Second)
	t.Logf("\n%s", res)
	if res.Utilization() < 0.7 {
		t.Errorf("utilization %.3f, want >= 0.7", res.Utilization())
	}
	f := res.Flows[0].Stat
	// R=2: equilibrium delays near 2·Rm, certainly bounded by 3·Rm.
	if f.SteadyRTTHi > 150*time.Millisecond {
		t.Errorf("steady RTT up to %v, want bounded near R·Rm = 100ms", f.SteadyRTTHi)
	}
}

func TestRegistry(t *testing.T) {
	if f := cca.Lookup("verus"); f == nil || f(1500, nil).Name() != "verus" {
		t.Fatal("verus not registered")
	}
}
