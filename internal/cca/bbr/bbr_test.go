package bbr

import (
	"math/rand"
	"testing"
	"time"

	"starvation/internal/cca"
)

func newTestBBR() *BBR {
	return New(Config{MSS: 1500, Rng: rand.New(rand.NewSource(1))})
}

// feedSteady delivers acks at a steady rate (bytes/s) with the given RTT
// for the given span, returning the end time.
func feedSteady(b *BBR, start time.Duration, rateBps float64, rtt, span time.Duration) time.Duration {
	interval := time.Duration(1500 / rateBps * float64(time.Second))
	now := start
	for now < start+span {
		now += interval
		b.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: 1500,
			DeliveredBytes: 1500, Packets: 1, InFlight: int(rateBps * rtt.Seconds())})
	}
	return now
}

func TestStartupState(t *testing.T) {
	b := newTestBBR()
	if b.State() != "startup" {
		t.Errorf("initial state = %s, want startup", b.State())
	}
	if b.PacingRate() != 0 {
		t.Error("pacing before any bandwidth sample should be unlimited (ACK-clocked)")
	}
}

func TestBandwidthEstimate(t *testing.T) {
	b := newTestBBR()
	const rate = 1.5e6 // bytes/s = 12 Mbit/s
	feedSteady(b, 0, rate, 40*time.Millisecond, time.Second)
	got := b.BtlBw().BytesPerSec()
	if got < rate*0.9 || got > rate*1.2 {
		t.Errorf("BtlBw = %.0f bytes/s, want ~%.0f", got, rate)
	}
}

func TestRTpropIsWindowedMin(t *testing.T) {
	b := newTestBBR()
	feedSteady(b, 0, 1.5e6, 50*time.Millisecond, 200*time.Millisecond)
	feedSteady(b, 200*time.Millisecond, 1.5e6, 40*time.Millisecond, 200*time.Millisecond)
	feedSteady(b, 400*time.Millisecond, 1.5e6, 60*time.Millisecond, 200*time.Millisecond)
	if got := b.RTprop(); got != 40*time.Millisecond {
		t.Errorf("RTprop = %v, want windowed min 40ms", got)
	}
}

func TestExitsStartupWhenBwPlateaus(t *testing.T) {
	b := newTestBBR()
	feedSteady(b, 0, 1.5e6, 40*time.Millisecond, 2*time.Second)
	if b.State() == "startup" {
		t.Errorf("still in startup after 50 RTTs of flat bandwidth")
	}
}

func TestReachesProbeBWAndCycles(t *testing.T) {
	b := newTestBBR()
	now := feedSteady(b, 0, 1.5e6, 40*time.Millisecond, 2*time.Second)
	// Drain inflight below the BDP so Drain exits.
	b.OnAck(cca.AckSignal{Now: now, RTT: 40 * time.Millisecond, AckedBytes: 1500,
		DeliveredBytes: 1500, InFlight: 0})
	feedSteady(b, now, 1.5e6, 40*time.Millisecond, time.Second)
	if b.State() != "probebw" {
		t.Fatalf("state = %s, want probebw", b.State())
	}
	// Over a full gain cycle the pacing gain must visit 1.25 and 0.75.
	seen := map[float64]bool{}
	end := b.lastAckTime + 8*10*40*time.Millisecond
	feedWatch := func(now time.Duration) {
		seen[b.pacingGain] = true
	}
	nw := b.lastAckTime
	for nw < end {
		nw += time.Millisecond
		b.OnAck(cca.AckSignal{Now: nw, RTT: 40 * time.Millisecond, AckedBytes: 1500,
			DeliveredBytes: 1500, InFlight: 60000})
		feedWatch(nw)
	}
	if !seen[1.25] || !seen[0.75] || !seen[1.0] {
		t.Errorf("gain cycle incomplete: %v", seen)
	}
}

func TestCwndFormula(t *testing.T) {
	b := newTestBBR()
	feedSteady(b, 0, 1.5e6, 40*time.Millisecond, 2*time.Second)
	bw := b.btlBw.Get(0)
	want := 2*bw*0.040 + 4*1500
	got := float64(b.Window())
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("Window = %v, want ~%v (2·BDP + α)", got, want)
	}
}

func TestProbeRTTEntryOnStaleEstimate(t *testing.T) {
	b := newTestBBR()
	// Feed a steadily increasing RTT: the min filter's sample goes stale
	// after RTpropWindow (10 s) without refresh.
	now := time.Duration(0)
	rtt := 40 * time.Millisecond
	entered := false
	for now < 12*time.Second {
		now += 10 * time.Millisecond
		rtt += 2 * time.Microsecond
		b.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: 1500,
			DeliveredBytes: 1500, InFlight: 60000})
		if b.State() == "probertt" {
			entered = true
			break
		}
	}
	if !entered {
		t.Fatal("never entered ProbeRTT with a stale estimate")
	}
	if got := b.Window(); got != 4*1500 {
		t.Errorf("ProbeRTT window = %d, want 4 MSS", got)
	}
}

func TestProbeRTTDisabled(t *testing.T) {
	b := New(Config{MSS: 1500, Rng: rand.New(rand.NewSource(1)), DisableProbeRTT: true})
	now := time.Duration(0)
	for now < 15*time.Second {
		now += 10 * time.Millisecond
		b.OnAck(cca.AckSignal{Now: now, RTT: 40 * time.Millisecond, AckedBytes: 1500,
			DeliveredBytes: 1500, InFlight: 60000})
	}
	if b.State() == "probertt" {
		t.Error("ProbeRTT entered despite DisableProbeRTT")
	}
}

func TestRTpropHintPins(t *testing.T) {
	b := New(Config{MSS: 1500, Rng: rand.New(rand.NewSource(1)), RTpropHint: 33 * time.Millisecond})
	feedSteady(b, 0, 1.5e6, 50*time.Millisecond, time.Second)
	if got := b.RTprop(); got != 33*time.Millisecond {
		t.Errorf("RTprop = %v, want pinned 33ms", got)
	}
}

func TestMaxFilterOverestimatesUnderJitter(t *testing.T) {
	// The §5.2 mechanism: bursty ACK arrival makes some RTT-long intervals
	// carry more than the average rate, and the max filter latches that —
	// the entry ticket to cwnd-limited mode.
	bSmooth := newTestBBR()
	feedSteady(bSmooth, 0, 1.5e6, 40*time.Millisecond, 2*time.Second)

	bJitter := newTestBBR()
	rng := rand.New(rand.NewSource(7))
	now := time.Duration(0)
	for now < 2*time.Second {
		// Same average rate, delivered in bunches.
		n := rng.Intn(8) + 1
		now += time.Duration(n) * time.Millisecond
		bJitter.OnAck(cca.AckSignal{Now: now, RTT: 40 * time.Millisecond,
			AckedBytes: n * 1500, DeliveredBytes: n * 1500, InFlight: 60000})
	}
	if bJitter.btlBw.Get(0) <= bSmooth.btlBw.Get(0) {
		t.Errorf("jittered bw estimate %.0f not above smooth %.0f",
			bJitter.btlBw.Get(0), bSmooth.btlBw.Get(0))
	}
}

func TestRegistry(t *testing.T) {
	f := cca.Lookup("bbr")
	if f == nil {
		t.Fatal("bbr not registered")
	}
	if alg := f(1500, rand.New(rand.NewSource(1))); alg.Name() != "bbr" {
		t.Error("registry returned wrong algorithm")
	}
}

func TestIgnoresLoss(t *testing.T) {
	b := newTestBBR()
	feedSteady(b, 0, 1.5e6, 40*time.Millisecond, time.Second)
	w := b.Window()
	p := b.PacingRate()
	b.OnLoss(cca.LossSignal{Now: 2 * time.Second, Bytes: 1500, NewEvent: true})
	if b.Window() != w || b.PacingRate() != p {
		t.Error("the §5.2 BBR model must not react to loss")
	}
}
