// Package bbr implements the BBR v1 model the paper analyzes in §5.2:
//
//   - a bottleneck-bandwidth estimate taken as the max delivery rate over
//     the last 10 RTTs,
//   - a pacing rate of pacing_gain × bandwidth_estimate, with the gain
//     cycling through 1.25 (probe), 0.75 (drain), then six 1.0 phases,
//   - a congestion window cap of 2 × bandwidth_estimate × RTprop + α
//     quanta (the "+α" term the paper identifies as the fairness-critical
//     fixed point forcer),
//   - a 10-second RTprop filter refreshed by ProbeRTT episodes.
//
// In pacing-limited mode d ∈ [Rm, 1.25·Rm], so δmax = Rm/4; when ACK
// arrival jitter makes the max filter overestimate the bandwidth, the cwnd
// cap binds (cwnd-limited mode) and the equilibrium becomes
// RTT = 2·Rm + n·α/C — the Vegas-like curve of Fig. 3 whose tiny δ the
// paper exploits to demonstrate starvation.
package bbr

import (
	"math/rand"
	"sort"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes BBR.
type Config struct {
	MSS int
	// QuantaPkts is the additive cwnd term α in packets (default 4).
	QuantaPkts float64
	// CwndGain multiplies the estimated BDP for the cwnd cap (default 2).
	CwndGain float64
	// RTpropWindow is the min-RTT filter window (default 10 s).
	RTpropWindow time.Duration
	// BwWindowRTTs is the max-bandwidth filter length in RTTs (default 10).
	BwWindowRTTs int
	// ProbeRTTDuration is the ProbeRTT dwell time (default 200 ms).
	ProbeRTTDuration time.Duration
	// InitialCwndPkts is the startup window (default 10).
	InitialCwndPkts float64
	// DisableProbeRTT turns off ProbeRTT episodes (theory experiments that
	// grant oracular Rm knowledge use this together with RTpropHint).
	DisableProbeRTT bool
	// RTpropHint pins the RTprop estimate when nonzero.
	RTpropHint time.Duration
	// Rng drives the randomized ProbeBW phase offset; required.
	Rng *rand.Rand
}

type state int

const (
	stStartup state = iota
	stDrain
	stProbeBW
	stProbeRTT
)

var gainCycle = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

const startupGain = 2.885

// BBR is a BBR v1 sender model.
type BBR struct {
	cfg Config

	st         state
	btlBw      cca.WindowedMax // bytes/s
	rtProp     cca.WindowedMin // seconds
	srtt       cca.EWMA
	pacingGain float64
	cwndGain   float64

	// Delivery-rate sampling.
	delivered     int64
	history       []histPoint // (time, delivered) samples
	lastAckTime   time.Duration
	lastRTpropRef time.Duration

	// Startup full-pipe detection (evaluated once per round trip).
	fullBwCount int
	fullBw      float64
	fullPipe    bool
	lastBwCheck time.Duration

	// ProbeBW cycling.
	cycleIndex int
	cycleStart time.Duration

	// ProbeRTT.
	probeRTTStart time.Duration
	probeRTTDone  time.Duration

	// Stats.
	CwndLimitedAcks  int64
	PacingLimitedAck int64
}

type histPoint struct {
	t         time.Duration
	delivered int64
}

// New returns a BBR instance.
func New(cfg Config) *BBR {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.QuantaPkts <= 0 {
		cfg.QuantaPkts = 4
	}
	if cfg.CwndGain <= 0 {
		cfg.CwndGain = 2
	}
	if cfg.RTpropWindow <= 0 {
		cfg.RTpropWindow = 10 * time.Second
	}
	if cfg.BwWindowRTTs <= 0 {
		cfg.BwWindowRTTs = 10
	}
	if cfg.ProbeRTTDuration <= 0 {
		cfg.ProbeRTTDuration = 200 * time.Millisecond
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 10
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	b := &BBR{
		cfg:        cfg,
		st:         stStartup,
		pacingGain: startupGain,
		cwndGain:   startupGain,
	}
	b.rtProp.Window = cfg.RTpropWindow
	b.btlBw.Window = time.Second // retuned as RTT estimates arrive
	b.srtt.Alpha = 0.125
	return b
}

func init() {
	cca.Register("bbr", func(mss int, rng *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss, Rng: rng})
	})
}

// Name implements cca.Algorithm.
func (b *BBR) Name() string { return "bbr" }

// State returns the current state name (for traces and tests).
func (b *BBR) State() string {
	switch b.st {
	case stStartup:
		return "startup"
	case stDrain:
		return "drain"
	case stProbeBW:
		return "probebw"
	default:
		return "probertt"
	}
}

// RTprop returns the current min-RTT estimate.
func (b *BBR) RTprop() time.Duration {
	if b.cfg.RTpropHint > 0 {
		return b.cfg.RTpropHint
	}
	return time.Duration(b.rtProp.Get(0) * float64(time.Second))
}

// BtlBw returns the bandwidth estimate.
func (b *BBR) BtlBw() units.Rate { return units.Rate(b.btlBw.Get(0) * 8) }

// Window implements cca.Algorithm: cwnd = gain·BDP + α quanta.
func (b *BBR) Window() int {
	if b.st == stProbeRTT {
		return 4 * b.cfg.MSS
	}
	bw := b.btlBw.Get(0) // bytes/s
	rt := b.RTprop()
	if bw <= 0 || rt <= 0 {
		return int(b.cfg.InitialCwndPkts) * b.cfg.MSS
	}
	bdp := bw * rt.Seconds()
	w := b.cwndGain*bdp + b.cfg.QuantaPkts*float64(b.cfg.MSS)
	min := 4 * b.cfg.MSS
	if int(w) < min {
		return min
	}
	return int(w)
}

// PacingRate implements cca.Algorithm.
func (b *BBR) PacingRate() units.Rate {
	bw := b.btlBw.Get(0)
	if bw <= 0 {
		return 0 // ACK-clocked bootstrap until the first sample
	}
	return units.Rate(bw * 8 * b.pacingGain)
}

// OnAck implements cca.Algorithm.
func (b *BBR) OnAck(s cca.AckSignal) {
	if s.DeliveredBytes > 0 {
		b.delivered += int64(s.DeliveredBytes)
	}
	b.history = append(b.history, histPoint{s.Now, b.delivered})
	b.pruneHistory(s.Now)
	b.lastAckTime = s.Now

	if s.RTT > 0 {
		srtt := time.Duration(b.srtt.Update(float64(s.RTT)))
		b.btlBw.Window = time.Duration(b.cfg.BwWindowRTTs) * srtt
		if b.cfg.RTpropHint == 0 {
			prev := b.rtProp.Get(1e18)
			b.rtProp.Update(s.Now, s.RTT.Seconds())
			if s.RTT.Seconds() <= prev {
				b.lastRTpropRef = s.Now
			}
		}
		// Delivery rate over roughly the last RTT. The divisor must be the
		// exact span of the history sample used, not the nominal RTT: the
		// lookup lands up to one inter-ACK gap early, and dividing that
		// longer window's bytes by the shorter RTT overestimates the rate
		// by ~(1 packet)/(BDP) — a bias the max filter latches, which
		// would pace a slow, permanent queue creep on an ideal path.
		dAtSend, tAtSend := b.deliveredAt(s.Now - s.RTT)
		if span := (s.Now - tAtSend).Seconds(); span > 0 {
			rate := float64(b.delivered-dAtSend) / span
			if rate > 0 {
				b.btlBw.Update(s.Now, rate)
			}
		}
	}
	b.advance(s.Now, s.InFlight)
}

// OnLoss implements cca.Algorithm. The §5.2 model does not react to loss;
// BBR v1's conservation dynamics are immaterial to the experiments.
func (b *BBR) OnLoss(cca.LossSignal) {}

func (b *BBR) pruneHistory(now time.Duration) {
	keep := b.cfg.RTpropWindow + 5*time.Second
	i := 0
	for i < len(b.history) && now-b.history[i].t > keep {
		i++
	}
	if i > 0 {
		b.history = append(b.history[:0], b.history[i:]...)
	}
}

// deliveredAt returns the cumulative delivered count at the last history
// point at or before t, along with that point's timestamp.
func (b *BBR) deliveredAt(t time.Duration) (int64, time.Duration) {
	if len(b.history) == 0 {
		return 0, 0
	}
	if t <= b.history[0].t {
		return b.history[0].delivered, b.history[0].t
	}
	i := sort.Search(len(b.history), func(i int) bool { return b.history[i].t > t })
	return b.history[i-1].delivered, b.history[i-1].t
}

func (b *BBR) advance(now time.Duration, inflight int) {
	// ProbeRTT entry: the RTprop estimate has gone stale.
	if !b.cfg.DisableProbeRTT && b.cfg.RTpropHint == 0 &&
		b.st != stProbeRTT && now-b.lastRTpropRef > b.cfg.RTpropWindow {
		b.st = stProbeRTT
		b.probeRTTStart = now
		b.probeRTTDone = now + b.cfg.ProbeRTTDuration
		b.pacingGain = 1
		b.cwndGain = 1
		return
	}

	switch b.st {
	case stStartup:
		b.checkFullPipe(now)
		if b.fullPipe {
			b.st = stDrain
			b.pacingGain = 1 / startupGain
			b.cwndGain = b.cfg.CwndGain
		}
	case stDrain:
		bdp := b.btlBw.Get(0) * b.RTprop().Seconds()
		if float64(inflight) <= bdp {
			b.enterProbeBW(now)
		}
	case stProbeBW:
		rt := b.RTprop()
		if rt <= 0 {
			rt = 10 * time.Millisecond
		}
		if now-b.cycleStart >= rt {
			b.cycleIndex = (b.cycleIndex + 1) % len(gainCycle)
			b.cycleStart = now
			b.pacingGain = gainCycle[b.cycleIndex]
		}
	case stProbeRTT:
		if now >= b.probeRTTDone {
			b.lastRTpropRef = now
			if b.fullPipe {
				b.enterProbeBW(now)
			} else {
				b.st = stStartup
				b.pacingGain = startupGain
				b.cwndGain = startupGain
			}
		}
	}
}

func (b *BBR) enterProbeBW(now time.Duration) {
	b.st = stProbeBW
	b.cwndGain = b.cfg.CwndGain
	// Random initial phase (excluding the drain phase), so competing
	// flows probe at different times — BBR's fairness mechanism.
	idx := b.cfg.Rng.Intn(len(gainCycle) - 1)
	if idx >= 1 {
		idx++
	}
	b.cycleIndex = idx % len(gainCycle)
	b.cycleStart = now
	b.pacingGain = gainCycle[b.cycleIndex]
}

func (b *BBR) checkFullPipe(now time.Duration) {
	bw := b.btlBw.Get(0)
	if bw <= 0 {
		return
	}
	srtt := time.Duration(b.srtt.Get(0))
	if srtt <= 0 || now-b.lastBwCheck < srtt {
		return
	}
	b.lastBwCheck = now
	if bw >= b.fullBw*1.25 {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= 3 {
		b.fullPipe = true
	}
}
