package fast

import (
	"math"
	"testing"
	"time"

	"starvation/internal/cca"
)

func drive(f *Fast, start, rtt time.Duration, epochs int) time.Duration {
	now := start
	for e := 0; e < epochs; e++ {
		acks := int(f.cwnd)
		if acks < 1 {
			acks = 1
		}
		per := rtt / time.Duration(acks)
		for i := 0; i < acks; i++ {
			now += per
			f.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: f.cfg.MSS, Packets: 1})
		}
	}
	return now
}

func TestFixedPoint(t *testing.T) {
	// At the FAST fixed point, w = base/rtt·w + α, i.e. the flow queues
	// exactly α packets. Feed the consistent RTT and verify w is stable.
	f := New(Config{MSS: 1500, Alpha: 4, BaseRTT: 100 * time.Millisecond})
	w := 100.0
	f.SetCwndPkts(w)
	// rtt such that queued = w·(rtt−base)/rtt = α → rtt = base·w/(w−α).
	base := 100 * time.Millisecond
	rtt := time.Duration(float64(base) * w / (w - 4))
	drive(f, 0, rtt, 10)
	if got := f.CwndPkts(); math.Abs(got-w) > 0.5 {
		t.Errorf("cwnd drifted from fixed point: %v, want ~%v", got, w)
	}
}

func TestConvergesTowardFixedPoint(t *testing.T) {
	// Starting below the fixed point with an empty queue (rtt = base),
	// FAST grows multiplicatively.
	f := New(Config{MSS: 1500, Alpha: 4, BaseRTT: 100 * time.Millisecond})
	f.SetCwndPkts(10)
	drive(f, 0, 100*time.Millisecond, 3)
	got := f.CwndPkts()
	if got <= 10 {
		t.Errorf("cwnd did not grow at empty queue: %v", got)
	}
	// Growth is capped at doubling per update.
	if got > 10*math.Pow(2, 3) {
		t.Errorf("cwnd grew faster than doubling: %v", got)
	}
}

func TestBacksOffWhenOverQueued(t *testing.T) {
	f := New(Config{MSS: 1500, Alpha: 4, BaseRTT: 100 * time.Millisecond})
	f.SetCwndPkts(100)
	// RTT 1.5× base: 33 packets queued ≫ α. Each per-RTT update moves the
	// window a γ-weighted step toward the fixed point w = 4·rtt/(rtt−base)
	// = 12: w ← 0.833·w + 2, so ~20 RTTs reach within a few packets.
	drive(f, 0, 150*time.Millisecond, 20)
	got := f.CwndPkts()
	if got > 17 {
		t.Errorf("cwnd = %v, want near 12 (drain toward α packets)", got)
	}
}

func TestLossHalves(t *testing.T) {
	f := New(Config{MSS: 1500})
	f.SetCwndPkts(60)
	f.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := f.CwndPkts(); got != 30 {
		t.Errorf("cwnd after loss = %v, want 30", got)
	}
	f.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if got := f.CwndPkts(); got != 30 {
		t.Error("same-epoch loss halved twice")
	}
}

func TestWindowFloor(t *testing.T) {
	f := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	f.SetCwndPkts(2)
	drive(f, 0, 500*time.Millisecond, 10) // massive queueing
	if got := f.CwndPkts(); got < 2 {
		t.Errorf("cwnd fell below floor: %v", got)
	}
}

func TestNoPacing(t *testing.T) {
	f := New(Config{})
	if f.PacingRate() != 0 || f.Window() <= 0 {
		t.Error("FAST must be window-based, ACK-clocked")
	}
}
