// Package fast implements FAST TCP (Wei, Jin, Low & Hegde, 2006). FAST
// shares Vegas's equilibrium — Alpha packets queued per flow, RTT of
// Rm + α/C — but reaches it with a multiplicative window update each RTT,
// so it converges quickly even on large-BDP paths. On an ideal path
// δ(C) → 0, making it exactly as starvation-prone as Vegas (Fig. 3).
package fast

import (
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes FAST.
type Config struct {
	MSS int
	// Alpha is the target number of queued packets (default 4).
	Alpha float64
	// Gamma in (0, 1] is the update smoothing factor (default 0.5).
	Gamma float64
	// InitialCwndPkts is the initial window (default 4).
	InitialCwndPkts float64
	// BaseRTT optionally pins the minimum-RTT estimate.
	BaseRTT time.Duration
}

// Fast is a FAST TCP sender.
type Fast struct {
	cfg  Config
	cwnd float64 // packets
	base cca.MinRTT

	epochStart  time.Duration
	epochMinRTT time.Duration
}

// New returns a FAST instance.
func New(cfg Config) *Fast {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 4
	}
	if cfg.Gamma <= 0 || cfg.Gamma > 1 {
		cfg.Gamma = 0.5
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 4
	}
	return &Fast{cfg: cfg, cwnd: cfg.InitialCwndPkts}
}

func init() {
	cca.Register("fast", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (f *Fast) Name() string { return "fast" }

// Window implements cca.Algorithm.
func (f *Fast) Window() int { return int(f.cwnd * float64(f.cfg.MSS)) }

// PacingRate implements cca.Algorithm.
func (f *Fast) PacingRate() units.Rate { return 0 }

// CwndPkts returns the window in packets.
func (f *Fast) CwndPkts() float64 { return f.cwnd }

// SetCwndPkts overrides the window (Theorem 1 construction support).
func (f *Fast) SetCwndPkts(w float64) { f.cwnd = w }

// OnAck implements cca.Algorithm.
func (f *Fast) OnAck(s cca.AckSignal) {
	if s.RTT <= 0 {
		return
	}
	if f.cfg.BaseRTT == 0 {
		f.base.Update(s.Now, s.RTT)
	}
	if f.epochMinRTT == 0 || s.RTT < f.epochMinRTT {
		f.epochMinRTT = s.RTT
	}
	if f.epochStart == 0 {
		f.epochStart = s.Now
		return
	}
	if s.Now-f.epochStart < s.RTT {
		return
	}
	rtt := f.epochMinRTT
	f.epochStart = s.Now
	f.epochMinRTT = 0

	base := f.cfg.BaseRTT
	if base == 0 {
		base = f.base.Get(0)
	}
	if base <= 0 || rtt <= 0 {
		return
	}
	// w <- min(2w, (1-γ)w + γ(base/RTT * w + α))
	target := (1-f.cfg.Gamma)*f.cwnd +
		f.cfg.Gamma*(float64(base)/float64(rtt)*f.cwnd+f.cfg.Alpha)
	if target > 2*f.cwnd {
		target = 2 * f.cwnd
	}
	if target < 2 {
		target = 2
	}
	f.cwnd = target
}

// OnLoss implements cca.Algorithm.
func (f *Fast) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	f.cwnd = maxF(f.cwnd/2, 2)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
