package cca

import "time"

// WindowedMin tracks the minimum of a time series over a sliding window,
// the filter LEDBAT and Copa apply to RTTs. It keeps a monotonic deque so
// both Update and Get are amortized O(1).
type WindowedMin struct {
	Window time.Duration
	q      []sample // increasing values
}

// WindowedMax tracks the maximum over a sliding window, the filter BBR
// applies to delivery-rate samples and Verus applies to RTTs.
type WindowedMax struct {
	Window time.Duration
	q      []sample // decreasing values
}

type sample struct {
	t time.Duration
	v float64
}

// Update inserts a sample observed at time t.
func (f *WindowedMin) Update(t time.Duration, v float64) {
	for len(f.q) > 0 && f.q[len(f.q)-1].v >= v {
		f.q = f.q[:len(f.q)-1]
	}
	f.q = append(f.q, sample{t, v})
	f.expire(t)
}

// Get returns the windowed minimum, or def when no samples are live.
func (f *WindowedMin) Get(def float64) float64 {
	if len(f.q) == 0 {
		return def
	}
	return f.q[0].v
}

// Empty reports whether the filter holds no live samples.
func (f *WindowedMin) Empty() bool { return len(f.q) == 0 }

// Reset discards all samples.
func (f *WindowedMin) Reset() { f.q = f.q[:0] }

func (f *WindowedMin) expire(now time.Duration) {
	for len(f.q) > 0 && now-f.q[0].t > f.Window {
		f.q = f.q[1:]
	}
}

// Update inserts a sample observed at time t.
func (f *WindowedMax) Update(t time.Duration, v float64) {
	for len(f.q) > 0 && f.q[len(f.q)-1].v <= v {
		f.q = f.q[:len(f.q)-1]
	}
	f.q = append(f.q, sample{t, v})
	f.expire(t)
}

// Get returns the windowed maximum, or def when no samples are live.
func (f *WindowedMax) Get(def float64) float64 {
	if len(f.q) == 0 {
		return def
	}
	return f.q[0].v
}

// Empty reports whether the filter holds no live samples.
func (f *WindowedMax) Empty() bool { return len(f.q) == 0 }

// Reset discards all samples.
func (f *WindowedMax) Reset() { f.q = f.q[:0] }

func (f *WindowedMax) expire(now time.Duration) {
	for len(f.q) > 0 && now-f.q[0].t > f.Window {
		f.q = f.q[1:]
	}
}

// MinRTT tracks the smallest RTT ever observed (the classic baseRTT of
// Vegas/FAST) along with the time it was seen.
type MinRTT struct {
	rtt time.Duration
	at  time.Duration
	set bool
}

// Update folds in a sample.
func (m *MinRTT) Update(t, rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !m.set || rtt < m.rtt {
		m.rtt, m.at, m.set = rtt, t, true
	}
}

// Get returns the lifetime minimum, or def before any sample.
func (m *MinRTT) Get(def time.Duration) time.Duration {
	if !m.set {
		return def
	}
	return m.rtt
}

// Valid reports whether any sample has been folded in.
func (m *MinRTT) Valid() bool { return m.set }

// EWMA is an exponentially weighted moving average with gain Alpha in
// (0, 1]: avg ← (1−Alpha)·avg + Alpha·sample.
type EWMA struct {
	Alpha float64
	v     float64
	set   bool
}

// Update folds in a sample and returns the new average.
func (e *EWMA) Update(v float64) float64 {
	if !e.set {
		e.v, e.set = v, true
		return v
	}
	e.v = (1-e.Alpha)*e.v + e.Alpha*v
	return e.v
}

// Get returns the current average, or def before any sample.
func (e *EWMA) Get(def float64) float64 {
	if !e.set {
		return def
	}
	return e.v
}
