package reno

import (
	"testing"
	"time"

	"starvation/internal/cca"
)

func ack(now time.Duration, rtt time.Duration, bytes int) cca.AckSignal {
	return cca.AckSignal{Now: now, RTT: rtt, AckedBytes: bytes, DeliveredBytes: bytes, Packets: 1}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 10})
	start := r.Cwnd()
	// One window's worth of ACKs doubles the window in slow start.
	for acked := 0.0; acked < start; acked += 1500 {
		r.OnAck(ack(time.Duration(acked), 100*time.Millisecond, 1500))
	}
	if got := r.Cwnd(); got != 2*start {
		t.Errorf("cwnd after one RTT of acks = %v, want %v", got, 2*start)
	}
}

func TestCongestionAvoidanceLinear(t *testing.T) {
	r := New(Config{MSS: 1500})
	// Force CA by taking a loss first.
	r.OnLoss(cca.LossSignal{Now: 0, Bytes: 1500, NewEvent: true})
	w0 := r.Cwnd()
	// One full window of ACKs grows cwnd by ~1 MSS.
	for acked := 0.0; acked < w0; acked += 1500 {
		r.OnAck(ack(time.Second, 100*time.Millisecond, 1500))
	}
	growth := r.Cwnd() - w0
	// Slightly under one MSS because the denominator grows within the RTT.
	if growth < 1300 || growth > 1600 {
		t.Errorf("CA growth per RTT = %v, want ~1 MSS", growth)
	}
}

func TestMultiplicativeDecrease(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 20})
	w0 := r.Cwnd()
	r.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := r.Cwnd(); got != w0/2 {
		t.Errorf("cwnd after loss = %v, want %v", got, w0/2)
	}
}

func TestNonNewEventLossIgnored(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 20})
	r.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	w := r.Cwnd()
	r.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if r.Cwnd() != w {
		t.Error("same-epoch loss halved cwnd twice")
	}
}

func TestOncePerRTTDecrease(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 64})
	r.OnAck(ack(0, 100*time.Millisecond, 1500)) // establish lastRTT
	r.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	w := r.Cwnd()
	// A second "new" event within the same RTT is treated as the same
	// congestion episode.
	r.OnLoss(cca.LossSignal{Now: time.Second + 10*time.Millisecond, Bytes: 1500, NewEvent: true})
	if r.Cwnd() != w {
		t.Errorf("cwnd halved twice within one RTT: %v -> %v", w, r.Cwnd())
	}
	// After an RTT has passed, a new event does reduce again.
	r.OnLoss(cca.LossSignal{Now: time.Second + 200*time.Millisecond, Bytes: 1500, NewEvent: true})
	if r.Cwnd() >= w {
		t.Error("decrease suppressed after a full RTT")
	}
}

func TestTimeoutCollapsesWindow(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 64})
	r.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true, Timeout: true})
	if got := r.Window(); got != 1500 {
		t.Errorf("cwnd after timeout = %v, want 1 MSS", got)
	}
}

func TestFloorAtTwoMSS(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 2})
	for i := 0; i < 10; i++ {
		r.OnLoss(cca.LossSignal{Now: time.Duration(i) * time.Second, Bytes: 1500, NewEvent: true})
	}
	if got := r.Cwnd(); got < 2*1500 {
		t.Errorf("cwnd fell below 2 MSS: %v", got)
	}
}

func TestECNReaction(t *testing.T) {
	r := New(Config{MSS: 1500, InitialCwndPkts: 20, ReactToECN: true})
	w0 := r.Cwnd()
	r.OnAck(cca.AckSignal{Now: time.Second, RTT: 100 * time.Millisecond, AckedBytes: 1500, ECE: true})
	if r.Cwnd() >= w0 {
		t.Error("ECE did not reduce cwnd with ReactToECN")
	}
	r2 := New(Config{MSS: 1500, InitialCwndPkts: 20})
	r2.OnAck(cca.AckSignal{Now: time.Second, RTT: 100 * time.Millisecond, AckedBytes: 1500, ECE: true})
	if r2.Cwnd() < w0 {
		t.Error("ECE reduced cwnd without ReactToECN")
	}
}

func TestNoPacing(t *testing.T) {
	r := New(Config{})
	if r.PacingRate() != 0 {
		t.Error("Reno must be purely ACK-clocked")
	}
	if r.Name() != "reno" {
		t.Error("name mismatch")
	}
}

func TestRegistry(t *testing.T) {
	f := cca.Lookup("reno")
	if f == nil {
		t.Fatal("reno not registered")
	}
	alg := f(1500, nil)
	if alg.Name() != "reno" {
		t.Error("registry returned wrong algorithm")
	}
}
