// Package reno implements TCP NewReno, the canonical loss-based AIMD CCA.
// The paper (§5.4) uses it as the reference for non-delay-convergent
// behaviour: its equilibrium is encoded in the frequency of loss-induced
// oscillation rather than an absolute delay, which is why bounded delay
// jitter unfairness stays bounded (Fig. 7) instead of becoming starvation.
package reno

import (
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Reno.
type Config struct {
	// MSS is the segment size in bytes.
	MSS int
	// InitialCwndPkts is the initial window (default 10, RFC 6928).
	InitialCwndPkts float64
	// ReactToECN makes ECE marks trigger a multiplicative decrease.
	ReactToECN bool
	// LossBlind disables the cwnd reaction to loss (the transport still
	// retransmits). §6.4's conjectured starvation-free design reacts to
	// ECN — an unambiguous congestion signal — and ignores the small loss
	// rates that non-congestive elements can inject.
	LossBlind bool
}

// Reno is a NewReno sender.
type Reno struct {
	cfg      Config
	cwnd     float64 // bytes
	ssthresh float64 // bytes

	lastDecrease time.Duration
	lastRTT      time.Duration
}

// New returns a NewReno instance.
func New(cfg Config) *Reno {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 10
	}
	return &Reno{
		cfg:      cfg,
		cwnd:     cfg.InitialCwndPkts * float64(cfg.MSS),
		ssthresh: 1 << 30,
	}
}

func init() {
	cca.Register("reno", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (r *Reno) Name() string { return "reno" }

// Window implements cca.Algorithm.
func (r *Reno) Window() int { return int(r.cwnd) }

// PacingRate implements cca.Algorithm. Reno is purely ACK-clocked.
func (r *Reno) PacingRate() units.Rate { return 0 }

// Cwnd returns the window in bytes (for traces and tests).
func (r *Reno) Cwnd() float64 { return r.cwnd }

// OnAck implements cca.Algorithm.
func (r *Reno) OnAck(s cca.AckSignal) {
	if s.RTT > 0 {
		r.lastRTT = s.RTT
	}
	if s.ECE && r.cfg.ReactToECN {
		r.decrease(s.Now)
		return
	}
	if s.AckedBytes <= 0 {
		return
	}
	mss := float64(r.cfg.MSS)
	if r.cwnd < r.ssthresh {
		// Slow start: one MSS per acked MSS.
		r.cwnd += float64(s.AckedBytes)
	} else {
		// Congestion avoidance: one MSS per window per RTT.
		r.cwnd += mss * float64(s.AckedBytes) / r.cwnd
	}
}

// OnLoss implements cca.Algorithm.
func (r *Reno) OnLoss(s cca.LossSignal) {
	if !s.NewEvent || r.cfg.LossBlind {
		return
	}
	if s.Timeout {
		r.ssthresh = maxF(r.cwnd/2, 2*float64(r.cfg.MSS))
		r.cwnd = float64(r.cfg.MSS)
		return
	}
	r.decrease(s.Now)
}

// decrease performs the multiplicative decrease, at most once per RTT so
// that a burst of marks/losses in one window counts as one event.
func (r *Reno) decrease(now time.Duration) {
	if r.lastRTT > 0 && now-r.lastDecrease < r.lastRTT {
		return
	}
	r.lastDecrease = now
	r.ssthresh = maxF(r.cwnd/2, 2*float64(r.cfg.MSS))
	r.cwnd = r.ssthresh
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
