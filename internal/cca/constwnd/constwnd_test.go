package constwnd

import (
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/network"
	"starvation/internal/units"
)

func TestConstWindowNeverMoves(t *testing.T) {
	c := New(1500, 10)
	w := c.Window()
	c.OnAck(cca.AckSignal{Now: time.Second, RTT: 100 * time.Millisecond, AckedBytes: 1500})
	c.OnLoss(cca.LossSignal{Now: 2 * time.Second, Bytes: 1500, NewEvent: true, Timeout: true})
	if c.Window() != w {
		t.Error("constant window moved")
	}
	if c.PacingRate() != 0 {
		t.Error("constwnd must be ACK-clocked")
	}
}

func TestConstWindowIsNotFEfficient(t *testing.T) {
	// Definition 4's counterexample: cwnd=10 always caps throughput at
	// 10·MSS/RTT no matter the link rate, so its achieved fraction f
	// vanishes as C grows — exactly why the theorem excludes it.
	for _, c := range []units.Rate{units.Mbps(12), units.Mbps(120)} {
		n := network.New(
			network.Config{Rate: c, Seed: 1},
			network.FlowSpec{Alg: New(1500, 10), Rm: 100 * time.Millisecond},
		)
		res := n.Run(10 * time.Second)
		want := units.Rate(10 * 1500 * 8 / 0.1) // 1.2 Mbit/s
		got := res.Flows[0].Stat.SteadyThpt
		if float64(got) < float64(want)*0.9 || float64(got) > float64(want)*1.1 {
			t.Errorf("C=%v: throughput %v, want ~%v (window-capped)", c, got, want)
		}
	}
}

func TestDefaults(t *testing.T) {
	c := New(0, 0)
	if c.Window() != 10*1500 {
		t.Errorf("default window = %d, want 15000", c.Window())
	}
	if cca.Lookup("constwnd") == nil {
		t.Error("constwnd not registered")
	}
}
