// Package constwnd implements the paper's "silly" CCA: a fixed congestion
// window forever ("set cwnd = 10 always"). It trivially avoids starvation
// and converges in delay, but it is not f-efficient for any f > 0 — the
// corner of the impossibility triangle Definition 4 exists to exclude.
package constwnd

import (
	"math/rand"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Const is a fixed-window CCA.
type Const struct {
	mss  int
	pkts int
}

// New returns a CCA with a constant window of pkts packets.
func New(mss, pkts int) *Const {
	if mss <= 0 {
		mss = 1500
	}
	if pkts <= 0 {
		pkts = 10
	}
	return &Const{mss: mss, pkts: pkts}
}

func init() {
	cca.Register("constwnd", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(mss, 10)
	})
}

// Name implements cca.Algorithm.
func (c *Const) Name() string { return "constwnd" }

// Window implements cca.Algorithm.
func (c *Const) Window() int { return c.mss * c.pkts }

// PacingRate implements cca.Algorithm.
func (c *Const) PacingRate() units.Rate { return 0 }

// OnAck implements cca.Algorithm.
func (c *Const) OnAck(cca.AckSignal) {}

// OnLoss implements cca.Algorithm.
func (c *Const) OnLoss(cca.LossSignal) {}
