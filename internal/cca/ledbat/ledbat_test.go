package ledbat

import (
	"testing"
	"time"

	"starvation/internal/cca"
)

func drive(l *Ledbat, start, rtt time.Duration, epochs int) time.Duration {
	now := start
	for e := 0; e < epochs; e++ {
		acks := int(l.cwnd)
		if acks < 1 {
			acks = 1
		}
		per := rtt / time.Duration(acks)
		for i := 0; i < acks; i++ {
			now += per
			l.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: l.cfg.MSS, Packets: 1})
		}
	}
	return now
}

func TestGrowsBelowTarget(t *testing.T) {
	l := New(Config{MSS: 1500})
	l.OnAck(cca.AckSignal{Now: 0, RTT: 100 * time.Millisecond}) // base
	w0 := l.CwndPkts()
	// Queueing 0 ≪ target: full gain, +1 pkt per RTT.
	drive(l, time.Millisecond, 100*time.Millisecond, 6)
	got := l.CwndPkts() - w0
	if got < 4 || got > 6 {
		t.Errorf("growth over ~5 evaluations = %v, want ~5", got)
	}
}

func TestHoldsAtTarget(t *testing.T) {
	l := New(Config{MSS: 1500, Target: 25 * time.Millisecond})
	l.OnAck(cca.AckSignal{Now: 0, RTT: 100 * time.Millisecond})
	l.SetCwndPkts(50)
	// Queueing exactly at target: zero error. The very first evaluation
	// still consumes the 100ms base-setting sample (+1 packet); after
	// that the window must freeze.
	drive(l, time.Millisecond, 125*time.Millisecond, 3)
	after := l.CwndPkts()
	drive(l, time.Second, 125*time.Millisecond, 8)
	if got := l.CwndPkts(); got != after {
		t.Errorf("cwnd moved at target: %v -> %v", after, got)
	}
}

func TestShrinksAboveTarget(t *testing.T) {
	l := New(Config{MSS: 1500, Target: 25 * time.Millisecond})
	l.OnAck(cca.AckSignal{Now: 0, RTT: 100 * time.Millisecond})
	l.SetCwndPkts(50)
	// Queueing 75ms = 3× target: error −2 → −2 pkts per RTT.
	drive(l, time.Millisecond, 175*time.Millisecond, 5)
	got := l.CwndPkts()
	if got >= 50 || got < 40 {
		t.Errorf("cwnd = %v, want ~50-2·4=42", got)
	}
}

func TestDecreaseUncapped(t *testing.T) {
	// Unlike the capped increase, a huge queueing excess shrinks fast.
	l := New(Config{MSS: 1500, Target: 25 * time.Millisecond})
	l.OnAck(cca.AckSignal{Now: 0, RTT: 100 * time.Millisecond})
	l.SetCwndPkts(100)
	drive(l, time.Millisecond, 600*time.Millisecond, 5)
	if got := l.CwndPkts(); got > 70 {
		t.Errorf("cwnd = %v after gross excess, want fast drain", got)
	}
}

func TestBasePoisoning(t *testing.T) {
	// The §5.1 weakness, LEDBAT edition: one low base sample inflates the
	// queueing estimate by the dip forever.
	l := New(Config{MSS: 1500, Target: 5 * time.Millisecond})
	l.SetCwndPkts(100)
	l.OnAck(cca.AckSignal{Now: 0, RTT: 95 * time.Millisecond}) // poisoned base
	// True path floor 100ms, so perceived queueing ≥ 5ms = target even
	// with an empty queue: the controller can never grow.
	before := l.CwndPkts()
	drive(l, time.Millisecond, 101*time.Millisecond, 10)
	if got := l.CwndPkts(); got > before {
		t.Errorf("poisoned LEDBAT grew: %v -> %v", before, got)
	}
}

func TestLossHalves(t *testing.T) {
	l := New(Config{MSS: 1500})
	l.SetCwndPkts(40)
	l.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := l.CwndPkts(); got != 20 {
		t.Errorf("cwnd after loss = %v, want 20", got)
	}
	l.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if got := l.CwndPkts(); got != 20 {
		t.Error("same-epoch loss halved twice")
	}
}

func TestWindowedBaseExpires(t *testing.T) {
	l := New(Config{MSS: 1500, BaseWindow: 10 * time.Second})
	l.OnAck(cca.AckSignal{Now: 0, RTT: 90 * time.Millisecond})
	l.OnAck(cca.AckSignal{Now: time.Second, RTT: 100 * time.Millisecond})
	if got := l.BaseDelay(); got != 90*time.Millisecond {
		t.Errorf("base = %v, want 90ms", got)
	}
	l.OnAck(cca.AckSignal{Now: 15 * time.Second, RTT: 100 * time.Millisecond})
	if got := l.BaseDelay(); got != 100*time.Millisecond {
		t.Errorf("base = %v after expiry, want 100ms", got)
	}
}

func TestRegistry(t *testing.T) {
	if f := cca.Lookup("ledbat"); f == nil || f(1500, nil).Name() != "ledbat" {
		t.Fatal("ledbat not registered correctly")
	}
}
