// Package ledbat implements LEDBAT (RFC 6817), the low-extra-delay
// background transport the paper cites as the canonical minimum-filter
// delay CCA. LEDBAT estimates queueing delay as current delay minus a
// windowed minimum ("base delay") and steers it toward a fixed TARGET
// (100 ms in the RFC; configurable here) with a linear controller:
//
//	cwnd += GAIN · (TARGET − queueing) / TARGET   per RTT
//
// At equilibrium the queueing delay equals TARGET, so on an ideal path
// LEDBAT is delay-convergent with δ(C) → 0 — squarely inside Theorem 1's
// starvation regime, and with the same min-filter poisoning weakness as
// Copa (§5.1): one spuriously low base-delay sample inflates the
// queueing estimate forever (until the base window rolls).
package ledbat

import (
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes LEDBAT.
type Config struct {
	MSS int
	// Target is the queueing-delay setpoint (RFC default 100 ms; the
	// paper-era uTP deployments used 25 ms — smaller targets are more
	// starvation-prone, so we default to 25 ms to match deployment).
	Target time.Duration
	// Gain is the controller gain in packets per RTT at full error
	// (default 1, the RFC's "must not be faster than slow start").
	Gain float64
	// BaseWindow bounds how long a base-delay sample is remembered
	// (RFC: minutes; default 10 min ≈ lifetime for our runs). 0 keeps
	// the lifetime minimum.
	BaseWindow time.Duration
	// InitialCwndPkts is the initial window (default 4).
	InitialCwndPkts float64
	// BaseDelayHint pins the base-delay estimate (oracular Rm knowledge
	// for the theory constructions).
	BaseDelayHint time.Duration
}

// Ledbat is a LEDBAT sender.
type Ledbat struct {
	cfg  Config
	cwnd float64 // packets

	baseLifetime cca.MinRTT
	baseWindowed cca.WindowedMin

	epochStart  time.Duration
	epochMinRTT time.Duration
}

// New returns a LEDBAT instance.
func New(cfg Config) *Ledbat {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.Target <= 0 {
		cfg.Target = 25 * time.Millisecond
	}
	if cfg.Gain <= 0 {
		cfg.Gain = 1
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 4
	}
	l := &Ledbat{cfg: cfg, cwnd: cfg.InitialCwndPkts}
	l.baseWindowed.Window = cfg.BaseWindow
	return l
}

func init() {
	cca.Register("ledbat", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (l *Ledbat) Name() string { return "ledbat" }

// Window implements cca.Algorithm.
func (l *Ledbat) Window() int { return int(l.cwnd * float64(l.cfg.MSS)) }

// PacingRate implements cca.Algorithm.
func (l *Ledbat) PacingRate() units.Rate { return 0 }

// CwndPkts returns the window in packets.
func (l *Ledbat) CwndPkts() float64 { return l.cwnd }

// SetCwndPkts overrides the window (Theorem 1 construction support).
func (l *Ledbat) SetCwndPkts(w float64) { l.cwnd = w }

// BaseDelay returns the current base-delay estimate.
func (l *Ledbat) BaseDelay() time.Duration {
	if l.cfg.BaseDelayHint > 0 {
		return l.cfg.BaseDelayHint
	}
	if l.cfg.BaseWindow > 0 {
		return time.Duration(l.baseWindowed.Get(0))
	}
	return l.baseLifetime.Get(0)
}

// OnAck implements cca.Algorithm.
func (l *Ledbat) OnAck(s cca.AckSignal) {
	if s.RTT <= 0 {
		return
	}
	if l.cfg.BaseWindow > 0 {
		l.baseWindowed.Update(s.Now, float64(s.RTT))
	} else {
		l.baseLifetime.Update(s.Now, s.RTT)
	}
	if l.epochMinRTT == 0 || s.RTT < l.epochMinRTT {
		l.epochMinRTT = s.RTT
	}
	if l.epochStart == 0 {
		l.epochStart = s.Now
		return
	}
	if s.Now-l.epochStart < s.RTT {
		return
	}
	rtt := l.epochMinRTT
	l.epochStart = s.Now
	l.epochMinRTT = 0

	base := l.BaseDelay()
	if base <= 0 {
		return
	}
	queueing := rtt - base
	offTarget := float64(l.cfg.Target-queueing) / float64(l.cfg.Target)
	// The RFC caps the per-RTT increase at GAIN (slow-start parity) and
	// lets decreases scale with the (possibly large) negative error.
	delta := l.cfg.Gain * offTarget
	if delta > l.cfg.Gain {
		delta = l.cfg.Gain
	}
	l.cwnd += delta
	if l.cwnd < 2 {
		l.cwnd = 2
	}
}

// OnLoss implements cca.Algorithm: halve, per the RFC.
func (l *Ledbat) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	l.cwnd /= 2
	if l.cwnd < 2 {
		l.cwnd = 2
	}
}
