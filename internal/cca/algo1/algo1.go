// Package algo1 implements Algorithm 1 of the paper (§6.3): a
// delay-convergent CCA built on the exponential rate-delay mapping
//
//	μ(d) = μ− · s^((Rmax − (d − Rm)) / D)
//
// which spaces rates a factor s apart by at least D of delay, so bounded
// measurement ambiguity ≤ D can cause at most s-unfairness over the rate
// range [μ−, μ+] with μ+/μ− = s^((Rmax−Rm−D)/D) — exponentially wider than
// the Vegas family's O(Rmax/D) (Equation 1 vs Equation 2).
//
// Following the paper's CCAC-guided tuning, the update is AIMD (additive
// increase a, multiplicative decrease b) and fires once per Rm independent
// of the number of ACKs received.
package algo1

import (
	"math"
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Algorithm 1.
type Config struct {
	MSS int
	// Rm is the propagation RTT. The paper's algorithm has no Rm discovery
	// mechanism (§6.3 discusses why discovery is hard); when zero, the
	// lifetime minimum RTT is used as the estimate.
	Rm time.Duration
	// D is the designed-for non-congestive jitter bound (default 10 ms).
	D time.Duration
	// S is the tolerated unfairness ratio (default 2).
	S float64
	// RmaxOffset sets Rmax = Rm + RmaxOffset (default 120 ms), the maximum
	// tolerable queueing delay.
	RmaxOffset time.Duration
	// MuMin is μ−, the lowest supported rate (default 100 Kbit/s).
	MuMin units.Rate
	// A is the additive increase per Rm (default 500 Kbit/s).
	A units.Rate
	// B is the multiplicative decrease factor in (0,1) (default 0.9).
	B float64
	// InitialRate is the starting rate (default μ−).
	InitialRate units.Rate
	// AIAD replaces the multiplicative decrease with a subtractive one
	// (μ −= A), the Vegas/Copa-style update the paper's CCAC analysis
	// rejected: "use AIMD instead of the AIAD used by Vegas and Copa
	// because the fairness properties of AIMD are critical in the
	// presence of measurement ambiguity". Exposed for the ablation bench.
	AIAD bool
	// PerAck applies the update on every acknowledgment instead of once
	// per Rm — the other CCAC-guided detail ("change the rate by the same
	// amount every RTT independent of the number of ACKs received").
	// Exposed for the ablation bench: per-ACK updates make a flow's
	// adjustment speed proportional to its own rate, which amplifies
	// rate differences under ambiguity.
	PerAck bool
}

// Algo1 is an Algorithm 1 sender.
type Algo1 struct {
	cfg  Config
	mu   float64 // rate, bit/s
	base cca.MinRTT

	lastRTT time.Duration
	Ticks   int64
}

// New returns an Algorithm 1 instance.
func New(cfg Config) *Algo1 {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.D <= 0 {
		cfg.D = 10 * time.Millisecond
	}
	if cfg.S <= 1 {
		cfg.S = 2
	}
	if cfg.RmaxOffset <= 0 {
		cfg.RmaxOffset = 120 * time.Millisecond
	}
	if cfg.MuMin <= 0 {
		cfg.MuMin = units.Kbps(100)
	}
	if cfg.A <= 0 {
		cfg.A = units.Kbps(500)
	}
	if cfg.B <= 0 || cfg.B >= 1 {
		cfg.B = 0.9
	}
	if cfg.InitialRate <= 0 {
		cfg.InitialRate = cfg.MuMin
	}
	return &Algo1{cfg: cfg, mu: float64(cfg.InitialRate)}
}

func init() {
	cca.Register("algo1", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (a *Algo1) Name() string { return "algo1" }

// Rm returns the propagation-RTT estimate in use.
func (a *Algo1) Rm() time.Duration {
	if a.cfg.Rm > 0 {
		return a.cfg.Rm
	}
	return a.base.Get(0)
}

// TargetRate evaluates the exponential rate-delay mapping at RTT d.
func (a *Algo1) TargetRate(d time.Duration) units.Rate {
	rm := a.Rm()
	q := d - rm // estimated queueing delay
	if q < 0 {
		q = 0
	}
	exp := (a.cfg.RmaxOffset - q).Seconds() / a.cfg.D.Seconds()
	return units.Rate(float64(a.cfg.MuMin) * math.Pow(a.cfg.S, exp))
}

// MuPlus returns the top of the s-fair rate range, μ+ = μ(Rm + D).
func (a *Algo1) MuPlus() units.Rate {
	exp := (a.cfg.RmaxOffset - a.cfg.D).Seconds() / a.cfg.D.Seconds()
	return units.Rate(float64(a.cfg.MuMin) * math.Pow(a.cfg.S, exp))
}

// Window implements cca.Algorithm: a safety cap of 2·μ·Rmax keeps the flow
// resilient to sudden capacity drops, per the paper's discussion.
func (a *Algo1) Window() int {
	rm := a.Rm()
	if rm <= 0 {
		return 64 * a.cfg.MSS
	}
	rmax := rm + a.cfg.RmaxOffset
	w := int(2 * a.mu / 8 * rmax.Seconds())
	if min := 4 * a.cfg.MSS; w < min {
		return min
	}
	return w
}

// PacingRate implements cca.Algorithm.
func (a *Algo1) PacingRate() units.Rate { return units.Rate(a.mu) }

// TickInterval implements cca.Ticker: the update runs once per Rm,
// independent of ACK arrivals (a CCAC-guided design detail from §6.3).
func (a *Algo1) TickInterval() time.Duration {
	if rm := a.Rm(); rm > 0 {
		return rm
	}
	return 10 * time.Millisecond
}

// OnTick implements cca.Ticker.
func (a *Algo1) OnTick(time.Duration) {
	a.Ticks++
	if a.cfg.PerAck {
		return // updates happen in OnAck for the ablation variant
	}
	a.update(1)
}

// update applies one control step scaled by frac of a full per-Rm step.
func (a *Algo1) update(frac float64) {
	d := a.lastRTT
	if d <= 0 {
		// No measurement yet: probe upward gently.
		a.mu += float64(a.cfg.A) * frac
		return
	}
	if units.Rate(a.mu) < a.TargetRate(d) {
		a.mu += float64(a.cfg.A) * frac
	} else if a.cfg.AIAD {
		a.mu -= float64(a.cfg.A) * frac
	} else {
		a.mu *= 1 - (1-a.cfg.B)*frac
	}
	if a.mu < float64(a.cfg.MuMin) {
		a.mu = float64(a.cfg.MuMin)
	}
}

// OnAck implements cca.Algorithm.
func (a *Algo1) OnAck(s cca.AckSignal) {
	if s.RTT > 0 {
		a.lastRTT = s.RTT
		a.base.Update(s.Now, s.RTT)
	}
	if a.cfg.PerAck && s.AckedBytes > 0 {
		// One full step per window of ACKs: the per-ACK ablation. Faster
		// flows take more steps per RTT — the scaling pathology the
		// default per-Rm update deliberately avoids.
		rm := a.Rm()
		if rm <= 0 {
			return
		}
		windowBytes := a.mu / 8 * rm.Seconds()
		if windowBytes <= 0 {
			return
		}
		a.update(float64(s.AckedBytes) / windowBytes)
	}
}

// OnLoss implements cca.Algorithm: on a new loss event the rate backs off
// multiplicatively (short-buffer resilience; not part of the paper's
// pseudocode but required for a runnable transport).
func (a *Algo1) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	a.mu *= a.cfg.B
	if a.mu < float64(a.cfg.MuMin) {
		a.mu = float64(a.cfg.MuMin)
	}
}
