package algo1

import (
	"math"
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

func newTest() *Algo1 {
	return New(Config{
		MSS: 1500,
		Rm:  50 * time.Millisecond,
		D:   10 * time.Millisecond,
		S:   2,
	})
}

func TestTargetRateExponentialSpacing(t *testing.T) {
	a := newTest()
	// Per the §6.3 design, rates a factor s apart map to delays D apart:
	// μ(d) / μ(d+D) = s for any d.
	d := 70 * time.Millisecond
	r1 := a.TargetRate(d).BitsPerSec()
	r2 := a.TargetRate(d + 10*time.Millisecond).BitsPerSec()
	if got := r1 / r2; math.Abs(got-2) > 1e-9 {
		t.Errorf("rate ratio across D of delay = %v, want s = 2", got)
	}
}

func TestTargetRateAtRmax(t *testing.T) {
	a := newTest()
	// At d = Rm + RmaxOffset, the target is exactly μ−.
	d := 50*time.Millisecond + 120*time.Millisecond
	got := a.TargetRate(d)
	if math.Abs(got.BitsPerSec()-a.cfg.MuMin.BitsPerSec()) > 1 {
		t.Errorf("μ(Rmax) = %v, want μ− = %v", got, a.cfg.MuMin)
	}
}

func TestMuPlus(t *testing.T) {
	a := newTest()
	// μ+ = μ−·s^((Rmax−D)/D) = 100 Kbit/s · 2^11 = 204.8 Mbit/s.
	want := 100e3 * math.Pow(2, 11)
	if got := a.MuPlus().BitsPerSec(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("μ+ = %v, want %v", got, want)
	}
}

func TestAIMDUpdate(t *testing.T) {
	a := newTest()
	// Below target: additive increase by A per tick.
	a.lastRTT = 55 * time.Millisecond // 5ms queueing: target well above μ−
	r0 := a.mu
	a.OnTick(0)
	if got := a.mu - r0; math.Abs(got-float64(a.cfg.A)) > 1 {
		t.Errorf("additive increase = %v, want %v", got, float64(a.cfg.A))
	}
	// Above target: multiplicative decrease by B.
	a.mu = 1e9 // 1 Gbit/s, far above any target
	a.OnTick(time.Second)
	if got := a.mu; math.Abs(got-1e9*a.cfg.B) > 1 {
		t.Errorf("multiplicative decrease to %v, want %v", got, 1e9*a.cfg.B)
	}
}

func TestConvergesToTargetAtFixedDelay(t *testing.T) {
	// With a constant observed RTT, the rate must converge to the target
	// rate μ(d) and oscillate within a factor (1/B) of it.
	a := newTest()
	d := 80 * time.Millisecond
	a.lastRTT = d
	for i := 0; i < 5000; i++ {
		a.OnTick(time.Duration(i) * 50 * time.Millisecond)
	}
	target := a.TargetRate(d).BitsPerSec()
	got := a.mu
	if got < target*a.cfg.B*0.9 || got > target/a.cfg.B*1.1 {
		t.Errorf("rate = %v, want within AIMD band of target %v", got, target)
	}
}

func TestTickIntervalIsRm(t *testing.T) {
	a := newTest()
	if got := a.TickInterval(); got != 50*time.Millisecond {
		t.Errorf("tick interval = %v, want Rm", got)
	}
	// Without a pinned Rm the estimate comes from the min filter.
	b := New(Config{MSS: 1500})
	b.OnAck(cca.AckSignal{Now: 0, RTT: 30 * time.Millisecond})
	if got := b.TickInterval(); got != 30*time.Millisecond {
		t.Errorf("estimated tick interval = %v, want 30ms", got)
	}
}

func TestRateFloor(t *testing.T) {
	a := newTest()
	a.lastRTT = 10 * time.Second // hopeless delay
	for i := 0; i < 1000; i++ {
		a.OnTick(time.Duration(i) * 50 * time.Millisecond)
	}
	if units.Rate(a.mu) < a.cfg.MuMin {
		t.Errorf("rate %v below μ−", units.Rate(a.mu))
	}
}

func TestWindowCap(t *testing.T) {
	a := newTest()
	a.mu = 100e6 // 100 Mbit/s
	// 2·μ·Rmax = 2·12.5MB/s·0.17s = 4.25 MB.
	want := int(2 * 100e6 / 8 * 0.17)
	got := a.Window()
	if math.Abs(float64(got-want)) > float64(want)/100 {
		t.Errorf("window cap = %d, want ~%d", got, want)
	}
}

func TestLossBacksOff(t *testing.T) {
	a := newTest()
	a.mu = 50e6
	a.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := a.mu; got != 50e6*a.cfg.B {
		t.Errorf("rate after loss = %v, want %v", got, 50e6*a.cfg.B)
	}
	a.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if got := a.mu; got != 50e6*a.cfg.B {
		t.Error("same-epoch loss reduced twice")
	}
}

func TestFigureOfMeritMatchesTheory(t *testing.T) {
	// The supported range μ+/μ− must equal Equation 2's s^((Rmax−D)/D)
	// evaluated with queueing-delay budget Rmax (the paper's Rmax − Rm).
	a := newTest()
	got := a.MuPlus().BitsPerSec() / a.cfg.MuMin.BitsPerSec()
	want := math.Pow(2, (120.0-10)/10)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("μ+/μ− = %v, want %v", got, want)
	}
}
