// Package vegas implements TCP Vegas (Brakmo & Peterson, 1994), the
// original delay-bounding CCA. Vegas tries to keep between Alpha and Beta
// packets queued at the bottleneck, so on an ideal path it converges to an
// RTT of Rm + α/C with δ(C) ≈ 0 — the flattest possible rate-delay curve
// and, per the paper's Theorem 1, the most starvation-prone design.
package vegas

import (
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Vegas.
type Config struct {
	MSS int
	// Alpha and Beta bound the target number of queued packets
	// (defaults 3 and 5: the flow holds ~4 packets in the queue, the
	// running example of the paper's §4.1).
	Alpha, Beta float64
	// Gamma is the slow-start exit threshold in queued packets (default 1).
	Gamma float64
	// InitialCwndPkts is the initial window (default 4).
	InitialCwndPkts float64
	// BaseRTT optionally pins the minimum-RTT estimate (used by theory
	// experiments that grant the CCA oracular knowledge of Rm).
	BaseRTT time.Duration
}

// Vegas is a Vegas sender.
type Vegas struct {
	cfg  Config
	cwnd float64 // packets
	base cca.MinRTT

	inSlowStart bool
	epochStart  time.Duration
	epochMinRTT time.Duration
	ssGrow      bool // slow start doubles every other RTT
}

// New returns a Vegas instance.
func New(cfg Config) *Vegas {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 5
	}
	if cfg.Gamma <= 0 {
		cfg.Gamma = 1
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 4
	}
	return &Vegas{cfg: cfg, cwnd: cfg.InitialCwndPkts, inSlowStart: true}
}

func init() {
	cca.Register("vegas", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (v *Vegas) Name() string { return "vegas" }

// Window implements cca.Algorithm.
func (v *Vegas) Window() int { return int(v.cwnd * float64(v.cfg.MSS)) }

// PacingRate implements cca.Algorithm.
func (v *Vegas) PacingRate() units.Rate { return 0 }

// CwndPkts returns the window in packets.
func (v *Vegas) CwndPkts() float64 { return v.cwnd }

// SetCwndPkts overrides the window; the Theorem 1 construction uses this to
// start a flow from its converged state.
func (v *Vegas) SetCwndPkts(w float64) {
	v.cwnd = w
	v.inSlowStart = false
}

// BaseRTT returns the current minimum-RTT estimate.
func (v *Vegas) BaseRTT() time.Duration {
	return v.base.Get(v.cfg.BaseRTT)
}

// OnAck implements cca.Algorithm.
func (v *Vegas) OnAck(s cca.AckSignal) {
	if s.RTT <= 0 {
		return
	}
	if v.cfg.BaseRTT == 0 {
		v.base.Update(s.Now, s.RTT)
	}
	if v.epochMinRTT == 0 || s.RTT < v.epochMinRTT {
		v.epochMinRTT = s.RTT
	}
	if v.epochStart == 0 {
		v.epochStart = s.Now
		return
	}
	// One evaluation per RTT, using the best sample of the epoch.
	if s.Now-v.epochStart < s.RTT {
		return
	}
	rtt := v.epochMinRTT
	v.epochStart = s.Now
	v.epochMinRTT = 0

	base := v.BaseRTT()
	if base <= 0 || rtt <= 0 {
		return
	}
	// diff = packets occupying the queue at the current window.
	diff := v.cwnd * float64(rtt-base) / float64(rtt)

	if v.inSlowStart {
		if diff > v.cfg.Gamma {
			v.inSlowStart = false
			// Deflate the slow-start overshoot: scale the window to the
			// bandwidth actually observed (w·base/RTT ≈ rate·base) plus
			// the target backlog, so AIAD starts near the fixed point
			// instead of draining a doubling overshoot at 1 pkt/RTT.
			v.cwnd = v.cwnd*float64(base)/float64(rtt) + v.cfg.Alpha
			return
		}
		// Double every other RTT.
		if v.ssGrow {
			v.cwnd *= 2
		}
		v.ssGrow = !v.ssGrow
		return
	}
	switch {
	case diff < v.cfg.Alpha:
		v.cwnd++
	case diff > 2*v.cfg.Beta:
		// Gross overload (e.g. residual slow-start overshoot): draining
		// one packet per RTT would take thousands of RTTs, so snap to the
		// measured bandwidth-delay product plus the target backlog. Near
		// the fixed point (diff ≤ 2β) the classic AIAD applies, so the
		// equilibrium band and oscillation are unchanged.
		w := v.cwnd*float64(base)/float64(rtt) + v.cfg.Alpha
		if w < 2 {
			w = 2
		}
		v.cwnd = w
	case diff > v.cfg.Beta:
		if v.cwnd > 2 {
			v.cwnd--
		}
	}
}

// OnLoss implements cca.Algorithm.
func (v *Vegas) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	v.inSlowStart = false
	if s.Timeout {
		v.cwnd = 2
		return
	}
	v.cwnd = maxF(v.cwnd/2, 2)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
