package vegas

import (
	"testing"
	"time"

	"starvation/internal/cca"
)

// drive feeds v acks with the given constant RTT for n simulated RTT
// epochs, starting at time start.
func drive(v *Vegas, start time.Duration, rtt time.Duration, epochs int) time.Duration {
	now := start
	for e := 0; e < epochs; e++ {
		acks := int(v.cwnd)
		if acks < 1 {
			acks = 1
		}
		per := rtt / time.Duration(acks)
		for i := 0; i < acks; i++ {
			now += per
			v.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: v.cfg.MSS,
				DeliveredBytes: v.cfg.MSS, Packets: 1})
		}
	}
	return now
}

func TestHoldsInsideBand(t *testing.T) {
	// With the queueing occupancy between Alpha and Beta packets, Vegas
	// holds the window.
	v := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	v.SetCwndPkts(50)
	// diff = w(rtt-base)/rtt = 4 packets when rtt = base·w/(w-4).
	base := 100 * time.Millisecond
	rtt := time.Duration(float64(base) * 50.0 / 46.0)
	drive(v, 0, rtt, 10)
	if got := v.CwndPkts(); got != 50 {
		t.Errorf("cwnd moved inside the band: %v, want 50", got)
	}
}

func TestIncreasesBelowAlpha(t *testing.T) {
	v := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	v.SetCwndPkts(50)
	// diff ≈ 1 packet: below alpha=3, Vegas adds one packet per RTT.
	base := 100 * time.Millisecond
	rtt := time.Duration(float64(base) * 50.0 / 49.0)
	drive(v, 0, rtt, 5)
	got := v.CwndPkts()
	if got < 52 || got > 56 {
		t.Errorf("cwnd after 5 low-queue RTTs = %v, want ~54-55", got)
	}
}

func TestDecreasesAboveBeta(t *testing.T) {
	v := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	v.SetCwndPkts(50)
	// diff ≈ 7 packets: above beta=5, Vegas removes one packet per RTT.
	base := 100 * time.Millisecond
	rtt := time.Duration(float64(base) * 50.0 / 43.0)
	drive(v, 0, rtt, 5)
	got := v.CwndPkts()
	if got < 44 || got > 48 {
		t.Errorf("cwnd after 5 high-queue RTTs = %v, want ~45-46", got)
	}
}

func TestGrossOverloadSnapsToBDP(t *testing.T) {
	v := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	v.SetCwndPkts(1000)
	// RTT double the base: 500 packets queued, far beyond 2β. Two epochs
	// produce exactly one evaluation (the first only arms the epoch).
	drive(v, 0, 200*time.Millisecond, 2)
	got := v.CwndPkts()
	// Snap target: w·base/rtt + α = 1000/2 + 3 = 503.
	if got < 450 || got > 560 {
		t.Errorf("cwnd after overload snap = %v, want ~503", got)
	}
}

func TestMinRTTPoisoningThrottles(t *testing.T) {
	// The §5.1 failure mode distilled: a baseRTT estimate 1ms below the
	// true floor makes Vegas see phantom queueing and throttle.
	v := New(Config{MSS: 1500})
	v.SetCwndPkts(800) // ~ full rate at 100ms on a 96 Mbit/s path
	// One poisoned sample below every later observation:
	v.OnAck(cca.AckSignal{Now: time.Millisecond, RTT: 99 * time.Millisecond, AckedBytes: 1500})
	// True floor is 100 ms; with 800 packets at 96 Mbit/s queueing is
	// negligible, so the observed RTT sits at ~100ms while the estimator
	// believes 99ms: diff = 800·1/100 = 8 > β → persistent decrease.
	before := v.CwndPkts()
	drive(v, time.Millisecond, 100*time.Millisecond, 30)
	if got := v.CwndPkts(); got >= before {
		t.Errorf("poisoned Vegas did not throttle: %v -> %v", before, got)
	}
}

func TestLossHalves(t *testing.T) {
	v := New(Config{MSS: 1500})
	v.SetCwndPkts(40)
	v.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := v.CwndPkts(); got != 20 {
		t.Errorf("cwnd after loss = %v, want 20", got)
	}
	v.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if got := v.CwndPkts(); got != 20 {
		t.Errorf("same-epoch loss reduced again: %v", got)
	}
}

func TestSlowStartExitDeflates(t *testing.T) {
	v := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	if !v.inSlowStart {
		t.Fatal("fresh Vegas should be in slow start")
	}
	v.cwnd = 64
	// High queueing sample (diff = 64·50/150 = 21 ≫ γ): exit + deflate.
	drive(v, 0, 150*time.Millisecond, 2)
	if v.inSlowStart {
		t.Error("did not exit slow start despite queueing")
	}
	// Deflation: w·base/rtt + α = 64·100/150 + 3 ≈ 45.7.
	if got := v.CwndPkts(); got < 40 || got > 50 {
		t.Errorf("deflated cwnd = %v, want ~46", got)
	}
}

func TestBaseRTTLearning(t *testing.T) {
	v := New(Config{MSS: 1500})
	v.OnAck(cca.AckSignal{Now: 0, RTT: 120 * time.Millisecond, AckedBytes: 1500})
	v.OnAck(cca.AckSignal{Now: time.Millisecond, RTT: 100 * time.Millisecond, AckedBytes: 1500})
	v.OnAck(cca.AckSignal{Now: 2 * time.Millisecond, RTT: 110 * time.Millisecond, AckedBytes: 1500})
	if got := v.BaseRTT(); got != 100*time.Millisecond {
		t.Errorf("BaseRTT = %v, want lifetime min 100ms", got)
	}
}

func TestOracularBaseRTTPinned(t *testing.T) {
	v := New(Config{MSS: 1500, BaseRTT: 100 * time.Millisecond})
	v.OnAck(cca.AckSignal{Now: 0, RTT: 50 * time.Millisecond, AckedBytes: 1500})
	if got := v.BaseRTT(); got != 100*time.Millisecond {
		t.Errorf("pinned BaseRTT moved: %v", got)
	}
}
