package allegro

import (
	"math/rand"
	"testing"
	"time"
)

func newTest() *Allegro {
	return New(Config{MSS: 1500, Rng: rand.New(rand.NewSource(1))})
}

// tick closes the warmup half then the measuring half with the given
// delivered fraction of what was sent at the MI's rate.
func tick(a *Allegro, now *time.Duration, deliveredFrac float64) {
	// Warmup half.
	*now += a.TickInterval()
	a.OnTick(*now)
	// Measuring half: fill the counters as the sender would.
	sent := int64(a.cur.rate * 1e6 / 8 * a.miLen.Seconds())
	a.cur.sentB = sent
	a.cur.ackedB = int64(float64(sent) * deliveredFrac)
	*now += a.TickInterval()
	a.OnTick(*now)
}

func TestUtilitySigmoidCliff(t *testing.T) {
	a := newTest()
	clean := a.utility(80, 0)
	mild := a.utility(80, 0.02)
	heavy := a.utility(80, 0.10)
	if !(clean > mild) {
		t.Errorf("2%% loss should reduce utility: %v vs %v", clean, mild)
	}
	if mild <= 0 {
		t.Errorf("2%% loss utility = %v, want positive (below the 5%% cliff)", mild)
	}
	if heavy >= 0 {
		t.Errorf("10%% loss utility = %v, want negative (past the 5%% cliff)", heavy)
	}
}

func TestScoreSmoothsLossAcrossMIs(t *testing.T) {
	a := newTest()
	// A single 10%-loss MI after a clean history scores better than the
	// raw utility at 10%, because half the weight is on the smoothed
	// history — the debouncing that keeps binomial noise off the cliff.
	a.score(mi{ackedB: 1_000_000, sentB: 1_000_000})
	smoothed := a.score(mi{ackedB: 900_000, sentB: 1_000_000})
	raw := a.utility(float64(900_000*8)/a.miLen.Seconds()/1e6, 0.10)
	if smoothed <= raw {
		t.Errorf("smoothed score %v not above raw %v", smoothed, raw)
	}
}

func TestStartingDoubles(t *testing.T) {
	a := newTest()
	r0 := a.Rate()
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		tick(a, &now, 1.0)
	}
	if a.Rate() < 8*r0 {
		t.Errorf("rate after 4 clean MIs = %v, want >= %v", a.Rate(), 8*r0)
	}
	if a.st != stStarting {
		t.Error("left Starting despite increasing utility")
	}
}

func TestStartingToleratesOneNoisyMI(t *testing.T) {
	a := newTest()
	now := time.Duration(0)
	tick(a, &now, 1.0)
	tick(a, &now, 1.0)
	r := a.Rate()
	// One bad interval (8% loss): debounced, remains in Starting.
	tick(a, &now, 0.92)
	if a.st != stStarting {
		t.Fatal("one noisy MI ended the ramp")
	}
	// A clean re-measure resumes doubling.
	tick(a, &now, 1.0)
	if a.Rate() < r {
		t.Errorf("rate fell after recovery: %v < %v", a.Rate(), r)
	}
}

func TestStartingExitsOnPersistentCollapse(t *testing.T) {
	a := newTest()
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		tick(a, &now, 1.0)
	}
	peak := a.Rate()
	// Two consecutive heavily lossy MIs: revert and probe.
	tick(a, &now, 0.5)
	tick(a, &now, 0.5)
	if a.st == stStarting {
		t.Fatal("still Starting after two collapsed MIs")
	}
	if a.Rate() >= peak {
		t.Errorf("rate not reverted: %v >= %v", a.Rate(), peak)
	}
}

func TestDecisionTrialAssignments(t *testing.T) {
	a := newTest()
	a.rate = 50
	a.enterDecision(0)
	up, down := 0, 0
	for _, d := range a.trialDirs {
		switch d {
		case 1:
			up++
		case -1:
			down++
		default:
			t.Fatalf("invalid trial dir %d", d)
		}
	}
	if up != 2 || down != 2 {
		t.Errorf("trial dirs = %v, want two of each", a.trialDirs)
	}
}

func TestDecisionInconclusiveWidensEpsilon(t *testing.T) {
	a := newTest()
	a.rate = 50
	a.enterDecision(0)
	eps0 := a.eps
	// Feed four identical utilities: inconclusive.
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		// Manually place a fixed utility: equal deliveries each trial.
		a.warmup = false
		a.cur.sentB = 1_000_000
		a.cur.ackedB = 1_000_000
		now += a.TickInterval()
		a.OnTick(now)
	}
	if a.eps <= eps0 {
		t.Errorf("epsilon not widened after inconclusive trials: %v", a.eps)
	}
	if a.eps > a.cfg.EpsilonMax {
		t.Errorf("epsilon exceeded max: %v", a.eps)
	}
}

func TestMILengthScalesWithRate(t *testing.T) {
	a := newTest()
	a.rate = 0.5 // Mbit/s; the scored tick doubles it to 1.0
	a.OnTick(0)  // warmup toggle
	a.cur.sentB = 1
	a.cur.ackedB = 1
	a.OnTick(time.Millisecond)
	// 30 packets at the post-double 1 Mbit/s = 30 × 12 ms = 360 ms.
	if a.miLen < 350*time.Millisecond {
		t.Errorf("low-rate MI = %v, want >= 350ms (30-packet floor)", a.miLen)
	}
	if a.miLen > time.Second {
		t.Errorf("MI = %v, want capped at 1s", a.miLen)
	}
}

func TestRateFloorHolds(t *testing.T) {
	a := newTest()
	now := time.Duration(0)
	for i := 0; i < 40; i++ {
		tick(a, &now, 0.3) // catastrophic loss forever
	}
	if a.Rate() < a.cfg.MinRate.Mbit() {
		t.Errorf("rate %v below floor", a.Rate())
	}
}

func TestRateBasedInterface(t *testing.T) {
	a := newTest()
	if a.Window() != 0 {
		t.Error("Allegro must not impose a window")
	}
	if a.PacingRate() <= 0 {
		t.Error("Allegro must pace")
	}
}
