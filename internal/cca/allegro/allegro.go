// Package allegro implements PCC Allegro (Dong et al., NSDI 2015), the
// loss-based PCC variant. Each monitor interval is scored with the
// published sigmoid utility
//
//	u(x) = x·(1−L)·Sigmoid_α(L−0.05) − x·L      (α = 100, x in Mbit/s)
//
// so the sender tolerates up to ~5% loss before utility collapses. §5.4
// shows the same starvation structure as BBR: when one of two flows sees a
// small extra congestion signal (random loss here), it is starved, even
// though a single flow with the same loss runs at full rate.
package allegro

import (
	"math"
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Allegro.
type Config struct {
	MSS int
	// LossThreshold is the sigmoid center (default 0.05).
	LossThreshold float64
	// SigmoidAlpha is the sigmoid steepness (default 100).
	SigmoidAlpha float64
	// EpsilonMin/EpsilonMax bound the probing fraction (defaults 0.01/0.05).
	EpsilonMin, EpsilonMax float64
	// InitialRate is the starting rate (default 1 Mbit/s).
	InitialRate units.Rate
	// MinRate floors the rate (default 0.05 Mbit/s).
	MinRate units.Rate
	// Rng randomizes probe-order assignments; required.
	Rng *rand.Rand
	// Debug, when set, receives a line per scored monitor interval.
	Debug func(format string, args ...any)
}

type state int

const (
	stStarting state = iota
	stDecision
	stAdjusting
)

type mi struct {
	rate   float64
	start  time.Duration
	ackedB int64 // bytes confirmed delivered during the MI
	sentB  int64 // bytes transmitted during the MI
}

// Allegro is a PCC Allegro sender.
type Allegro struct {
	cfg  Config
	rate float64 // Mbit/s
	srtt cca.EWMA
	// lossAvg smooths the per-MI loss estimate. A raw small-sample
	// binomial estimate swings across the 5% sigmoid cliff even at 2%
	// true loss, which would trap the flow at its rate floor; blending
	// half the history keeps the cliff sharp for persistent loss while
	// halving the noise.
	lossAvg cca.EWMA

	st    state
	cur   mi
	miLen time.Duration

	// Starting state.
	prevUtil float64
	havePrev bool
	// startFails counts consecutive non-improving MIs during Starting.
	// One noisy dip (a couple of unlucky random losses in a small MI) must
	// not end the exponential ramp; two in a row means the link is
	// genuinely saturated.
	startFails int

	// Decision state: 4 trials, two at +ε and two at −ε in random order.
	eps       float64
	trialIdx  int
	trialDirs [4]int
	trialU    [4]float64

	// Adjusting state.
	adjDir   int
	adjSteps int

	// warmup marks the first half of each monitor interval: the rate has
	// just changed and deliveries still reflect the previous rate (the
	// send→deliver pipeline is one RTT deep), so counters collected during
	// it are discarded and only the second half is scored. This mirrors
	// the PCC monitor's wait-for-results behaviour.
	warmup bool

	MIsScored int64
}

// New returns an Allegro instance.
func New(cfg Config) *Allegro {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.LossThreshold <= 0 {
		cfg.LossThreshold = 0.05
	}
	if cfg.SigmoidAlpha <= 0 {
		cfg.SigmoidAlpha = 100
	}
	if cfg.EpsilonMin <= 0 {
		cfg.EpsilonMin = 0.01
	}
	if cfg.EpsilonMax <= 0 {
		cfg.EpsilonMax = 0.05
	}
	if cfg.InitialRate <= 0 {
		cfg.InitialRate = units.Mbps(1)
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = units.Mbps(0.05)
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	a := &Allegro{cfg: cfg, rate: cfg.InitialRate.Mbit(), st: stStarting, eps: cfg.EpsilonMin,
		// The first interval only fills the pipeline; never score it.
		warmup: true}
	a.srtt.Alpha = 0.125
	a.lossAvg.Alpha = 0.3
	a.miLen = 100 * time.Millisecond
	a.cur = mi{rate: a.rate}
	return a
}

func init() {
	cca.Register("allegro", func(mss int, rng *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss, Rng: rng})
	})
}

// Name implements cca.Algorithm.
func (a *Allegro) Name() string { return "allegro" }

// Window implements cca.Algorithm: Allegro is purely rate-based.
func (a *Allegro) Window() int { return 0 }

// PacingRate implements cca.Algorithm.
func (a *Allegro) PacingRate() units.Rate {
	r := a.cur.rate
	if r < a.cfg.MinRate.Mbit() {
		r = a.cfg.MinRate.Mbit()
	}
	return units.Mbps(r)
}

// Rate returns the base rate in Mbit/s.
func (a *Allegro) Rate() float64 { return a.rate }

// TickInterval implements cca.Ticker.
func (a *Allegro) TickInterval() time.Duration { return a.miLen }

// OnTick implements cca.Ticker: close the current MI and choose the next
// rate according to the Allegro state machine.
func (a *Allegro) OnTick(now time.Duration) {
	if a.warmup {
		// The pipeline has refilled at the MI's rate; start measuring.
		a.warmup = false
		rate := a.cur.rate
		a.cur = mi{rate: rate, start: now}
		return
	}
	u := a.score(a.cur)
	a.MIsScored++
	if a.cfg.Debug != nil {
		loss := 0.0
		if a.cur.sentB > 0 && a.cur.sentB > a.cur.ackedB {
			loss = float64(a.cur.sentB-a.cur.ackedB) / float64(a.cur.sentB)
		}
		a.cfg.Debug("mi t=%v st=%d rate=%.2f acked=%d sent=%d loss=%.3f u=%.3f prevU=%.3f eps=%.3f",
			now, a.st, a.cur.rate, a.cur.ackedB, a.cur.sentB, loss, u, a.prevUtil, a.eps)
	}

	switch a.st {
	case stStarting:
		switch {
		case !a.havePrev || u > a.prevUtil:
			a.havePrev = true
			a.prevUtil = u
			a.startFails = 0
			a.rate *= 2
			a.startMI(now, a.rate)
		case a.startFails == 0:
			// One bad interval: re-measure at the same rate before giving
			// up on the ramp.
			a.startFails++
			a.startMI(now, a.rate)
		default:
			a.rate /= 2
			a.enterDecision(now)
		}
	case stDecision:
		a.trialU[a.trialIdx] = u
		a.trialIdx++
		if a.trialIdx < 4 {
			a.startMI(now, a.rate*(1+float64(a.trialDirs[a.trialIdx])*a.eps))
			return
		}
		a.decide(now)
	case stAdjusting:
		if u > a.prevUtil {
			a.prevUtil = u
			a.adjSteps++
			step := float64(a.adjSteps) * a.eps * a.rate * float64(a.adjDir)
			a.rate = maxF(a.rate+step, a.cfg.MinRate.Mbit())
			a.startMI(now, a.rate)
		} else {
			// Utility fell: revert the last move and re-enter decision.
			step := float64(a.adjSteps) * a.eps * a.rate * float64(a.adjDir)
			a.rate = maxF(a.rate-step, a.cfg.MinRate.Mbit())
			a.enterDecision(now)
		}
	}

	// Adapt the MI length: ~1.5 RTT as the Allegro paper specifies, but
	// long enough to carry ≥ 60 packets at the current rate — the sigmoid
	// utility has a cliff at 5% loss, and a short MI's binomial loss noise
	// (σ ≈ √(p/n)) would otherwise trip it spuriously at low rates and
	// trap the flow near its floor.
	srtt := time.Duration(a.srtt.Get(float64(100 * time.Millisecond)))
	a.miLen = time.Duration(1.5 * float64(srtt))
	if r := a.rate; r > 0 {
		pktTime := time.Duration(float64(a.cfg.MSS) * 8 / (r * 1e6) * float64(time.Second))
		if min := 30 * pktTime; a.miLen < min {
			a.miLen = min
		}
	}
	if a.miLen < 20*time.Millisecond {
		a.miLen = 20 * time.Millisecond
	}
	if a.miLen > time.Second {
		a.miLen = time.Second
	}
}

func (a *Allegro) enterDecision(now time.Duration) {
	a.st = stDecision
	a.trialIdx = 0
	// Two +ε and two −ε trials in random order.
	dirs := [4]int{1, 1, -1, -1}
	a.cfg.Rng.Shuffle(4, func(i, j int) { dirs[i], dirs[j] = dirs[j], dirs[i] })
	a.trialDirs = dirs
	a.startMI(now, a.rate*(1+float64(dirs[0])*a.eps))
}

func (a *Allegro) decide(now time.Duration) {
	var uUp, uDown []float64
	for i, d := range a.trialDirs {
		if d > 0 {
			uUp = append(uUp, a.trialU[i])
		} else {
			uDown = append(uDown, a.trialU[i])
		}
	}
	upWins := uUp[0] > uDown[0] && uUp[0] > uDown[1] &&
		uUp[1] > uDown[0] && uUp[1] > uDown[1]
	downWins := uDown[0] > uUp[0] && uDown[0] > uUp[1] &&
		uDown[1] > uUp[0] && uDown[1] > uUp[1]
	switch {
	case upWins:
		a.startAdjusting(now, 1)
	case downWins:
		a.startAdjusting(now, -1)
	default:
		// Inconclusive: widen the probe and retry.
		a.eps = minF(a.eps+0.01, a.cfg.EpsilonMax)
		a.enterDecision(now)
	}
}

func (a *Allegro) startAdjusting(now time.Duration, dir int) {
	a.st = stAdjusting
	a.adjDir = dir
	a.adjSteps = 1
	a.eps = a.cfg.EpsilonMin
	a.rate = maxF(a.rate*(1+float64(dir)*a.eps), a.cfg.MinRate.Mbit())
	a.prevUtil = math.Inf(-1)
	a.startMI(now, a.rate)
}

func (a *Allegro) startMI(now time.Duration, rate float64) {
	if rate < a.cfg.MinRate.Mbit() {
		rate = a.cfg.MinRate.Mbit()
	}
	a.cur = mi{rate: rate, start: now}
	a.warmup = true
}

// score evaluates a finished MI: it measures loss the way PCC's monitor
// module does — the fraction of bytes sent during the interval that were
// not confirmed delivered (sequence-gap accounting, not the transport's
// much slower recovery machinery) — smooths it against history, and applies
// the sigmoid utility.
func (a *Allegro) score(m mi) float64 {
	dur := a.miLen.Seconds()
	if dur <= 0 {
		dur = 0.1
	}
	x := float64(m.ackedB) * 8 / dur / 1e6
	loss := 0.0
	if m.sentB > 0 && m.sentB > m.ackedB {
		loss = float64(m.sentB-m.ackedB) / float64(m.sentB)
	}
	loss = 0.5*loss + 0.5*a.lossAvg.Update(loss)
	return a.utility(x, loss)
}

// utility is Allegro's published sigmoid utility for a measured throughput
// x (Mbit/s) and loss rate.
func (a *Allegro) utility(x, loss float64) float64 {
	sig := 1 / (1 + math.Exp(a.cfg.SigmoidAlpha*(loss-a.cfg.LossThreshold)))
	return x*(1-loss)*sig - x*loss
}

// OnAck implements cca.Algorithm.
func (a *Allegro) OnAck(s cca.AckSignal) {
	if s.RTT > 0 {
		a.srtt.Update(float64(s.RTT))
	}
	a.cur.ackedB += int64(s.DeliveredBytes)
}

// OnLoss implements cca.Algorithm: loss is already accounted for by the
// per-MI send/deliver difference.
func (a *Allegro) OnLoss(cca.LossSignal) {}

// OnSend implements cca.SendObserver.
func (a *Allegro) OnSend(s cca.SendSignal) {
	a.cur.sentB += int64(s.Bytes)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
