// Package cubic implements TCP Cubic (RFC 8312): window growth follows a
// cubic function of time since the last decrease. Like Reno it is
// loss-based and not delay-convergent; Fig. 7 shows its bounded unfairness
// under delayed-ACK burstiness, and §5.4 notes that the faster flow's cubic
// overshoot is what keeps the unfairness bounded.
package cubic

import (
	"math"
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Cubic.
type Config struct {
	MSS             int
	InitialCwndPkts float64
	// C is the cubic scaling constant in packets/s^3 (default 0.4).
	C float64
	// Beta is the multiplicative decrease factor (default 0.7).
	Beta float64
	// FastConvergence enables the wMax reduction heuristic (default on).
	FastConvergence bool
	// TCPFriendly enables the Reno-tracking floor (default on).
	TCPFriendly bool
}

// Cubic is a Cubic sender. Window arithmetic is done in packets, as in the
// RFC, and converted to bytes at the interface boundary.
type Cubic struct {
	cfg      Config
	cwnd     float64 // packets
	ssthresh float64 // packets

	wMax       float64
	epochStart time.Duration
	k          float64
	origin     float64
	ackCount   float64 // packets acked since epoch start (for wTCP)
	lastRTT    time.Duration
}

// New returns a Cubic instance.
func New(cfg Config) *Cubic {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 10
	}
	if cfg.C <= 0 {
		cfg.C = 0.4
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 0.7
	}
	return &Cubic{cfg: cfg, cwnd: cfg.InitialCwndPkts, ssthresh: math.Inf(1)}
}

func init() {
	cca.Register("cubic", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss, FastConvergence: true, TCPFriendly: true})
	})
}

// Name implements cca.Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// Window implements cca.Algorithm.
func (c *Cubic) Window() int { return int(c.cwnd * float64(c.cfg.MSS)) }

// PacingRate implements cca.Algorithm.
func (c *Cubic) PacingRate() units.Rate { return 0 }

// CwndPkts returns the window in packets.
func (c *Cubic) CwndPkts() float64 { return c.cwnd }

// OnAck implements cca.Algorithm.
func (c *Cubic) OnAck(s cca.AckSignal) {
	if s.RTT > 0 {
		c.lastRTT = s.RTT
	}
	if s.AckedBytes <= 0 {
		return
	}
	ackedPkts := float64(s.AckedBytes) / float64(c.cfg.MSS)
	if c.cwnd < c.ssthresh {
		c.cwnd += ackedPkts
		return
	}
	if c.epochStart == 0 {
		c.epochStart = s.Now
		c.ackCount = 0
		if c.cwnd < c.wMax {
			c.k = math.Cbrt((c.wMax - c.cwnd) / c.cfg.C)
			c.origin = c.wMax
		} else {
			c.k = 0
			c.origin = c.cwnd
		}
	}
	c.ackCount += ackedPkts
	t := (s.Now - c.epochStart + c.lastRTT).Seconds()
	target := c.origin + c.cfg.C*math.Pow(t-c.k, 3)
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / c.cwnd * ackedPkts
	} else {
		// Slow "reconnaissance" growth below the target.
		c.cwnd += ackedPkts / (100 * c.cwnd)
	}
	if c.cfg.TCPFriendly && c.lastRTT > 0 {
		rttCount := (s.Now - c.epochStart).Seconds() / c.lastRTT.Seconds()
		wTCP := c.wMax*c.cfg.Beta + 3*(1-c.cfg.Beta)/(1+c.cfg.Beta)*rttCount
		if wTCP > c.cwnd {
			c.cwnd = wTCP
		}
	}
}

// OnLoss implements cca.Algorithm.
func (c *Cubic) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	if s.Timeout {
		c.wMax = c.cwnd
		c.ssthresh = maxF(c.cwnd*c.cfg.Beta, 2)
		c.cwnd = 1
		c.epochStart = 0
		return
	}
	if c.cfg.FastConvergence && c.cwnd < c.wMax {
		c.wMax = c.cwnd * (2 - c.cfg.Beta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd = maxF(c.cwnd*c.cfg.Beta, 2)
	c.ssthresh = c.cwnd
	c.epochStart = 0
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
