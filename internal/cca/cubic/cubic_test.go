package cubic

import (
	"testing"
	"time"

	"starvation/internal/cca"
)

func ack(now time.Duration, bytes int) cca.AckSignal {
	return cca.AckSignal{Now: now, RTT: 100 * time.Millisecond, AckedBytes: bytes, Packets: 1}
}

func TestSlowStartGrowth(t *testing.T) {
	c := New(Config{MSS: 1500, InitialCwndPkts: 10})
	w0 := c.CwndPkts()
	for i := 0; i < 10; i++ {
		c.OnAck(ack(time.Duration(i)*10*time.Millisecond, 1500))
	}
	if got := c.CwndPkts(); got != w0+10 {
		t.Errorf("slow start growth = %v, want %v", got, w0+10)
	}
}

func TestLossDecreaseByBeta(t *testing.T) {
	c := New(Config{MSS: 1500, InitialCwndPkts: 100})
	c.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := c.CwndPkts(); got != 70 {
		t.Errorf("cwnd after loss = %v, want 70 (β=0.7)", got)
	}
}

func TestCubicConcaveRecovery(t *testing.T) {
	// After a decrease, growth follows the cubic: fast at first, slowing
	// toward wMax, then accelerating past it.
	c := New(Config{MSS: 1500, InitialCwndPkts: 100})
	c.OnAck(ack(0, 1500))
	c.OnLoss(cca.LossSignal{Now: time.Millisecond, Bytes: 1500, NewEvent: true})

	now := time.Millisecond
	var at80, atWmax time.Duration
	for i := 0; i < 100000 && atWmax == 0; i++ {
		now += time.Millisecond
		c.OnAck(ack(now, 1500))
		if at80 == 0 && c.CwndPkts() >= 80 {
			at80 = now
		}
		if c.CwndPkts() >= 100 {
			atWmax = now
		}
	}
	if atWmax == 0 {
		t.Fatal("never recovered to wMax")
	}
	// Concavity: the first stretch (70→80) is much faster than the last
	// approach (80→100 includes the plateau at K).
	if at80*2 > atWmax {
		t.Errorf("no concave plateau: 70→80 took %v, 70→100 took %v", at80, atWmax)
	}
}

func TestFastConvergence(t *testing.T) {
	c := New(Config{MSS: 1500, InitialCwndPkts: 100, FastConvergence: true})
	c.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true}) // wMax=100, cwnd=70
	// Second loss below the previous wMax triggers the reduced wMax.
	c.OnLoss(cca.LossSignal{Now: 3 * time.Second, Bytes: 1500, NewEvent: true})
	// wMax should now be 70·(2−β)/2 = 45.5, not 70.
	if got := c.wMax; got != 70*(2-0.7)/2 {
		t.Errorf("fast-convergence wMax = %v, want %v", got, 70*(2-0.7)/2)
	}
}

func TestTimeoutReset(t *testing.T) {
	c := New(Config{MSS: 1500, InitialCwndPkts: 100})
	c.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true, Timeout: true})
	if got := c.CwndPkts(); got != 1 {
		t.Errorf("cwnd after timeout = %v, want 1", got)
	}
}

func TestSameEpochLossIgnored(t *testing.T) {
	c := New(Config{MSS: 1500, InitialCwndPkts: 100})
	c.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	w := c.CwndPkts()
	c.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: false})
	if c.CwndPkts() != w {
		t.Error("non-new-event loss reduced cwnd")
	}
}

func TestTCPFriendlyFloor(t *testing.T) {
	// At small windows and large time scales the Reno-tracking floor
	// dominates the cubic term.
	c := New(Config{MSS: 1500, InitialCwndPkts: 20, TCPFriendly: true})
	c.OnAck(ack(0, 1500))
	c.OnLoss(cca.LossSignal{Now: time.Millisecond, Bytes: 1500, NewEvent: true})
	now := time.Millisecond
	for i := 0; i < 3000; i++ {
		now += 10 * time.Millisecond
		c.OnAck(ack(now, 1500))
	}
	noFloor := New(Config{MSS: 1500, InitialCwndPkts: 20, TCPFriendly: false})
	noFloor.OnAck(ack(0, 1500))
	noFloor.OnLoss(cca.LossSignal{Now: time.Millisecond, Bytes: 1500, NewEvent: true})
	now = time.Millisecond
	for i := 0; i < 3000; i++ {
		now += 10 * time.Millisecond
		noFloor.OnAck(ack(now, 1500))
	}
	if c.CwndPkts() < noFloor.CwndPkts() {
		t.Errorf("TCP-friendly cwnd (%v) below plain cubic (%v)", c.CwndPkts(), noFloor.CwndPkts())
	}
}

func TestWindowBytes(t *testing.T) {
	c := New(Config{MSS: 1500, InitialCwndPkts: 10})
	if got := c.Window(); got != 15000 {
		t.Errorf("Window = %d bytes, want 15000", got)
	}
	if c.PacingRate() != 0 {
		t.Error("Cubic must be ACK-clocked")
	}
}
