// Package cca defines the congestion-control algorithm interface that every
// CCA in this repository implements, plus the shared measurement filters
// (windowed min/max, EWMA) that real CCAs use to separate congestive from
// non-congestive delay — the very filters the paper shows cannot always
// succeed.
//
// A CCA exposes two knobs the sender enforces jointly: a congestion window
// (bytes in flight cap) and a pacing rate. Window-based CCAs (Reno, Cubic,
// Vegas, FAST, Copa) leave the pacing rate unset; rate-based CCAs (PCC,
// Algorithm 1) leave the window effectively unbounded; BBR uses both.
package cca

import (
	"math/rand"
	"sort"
	"time"

	"starvation/internal/units"
)

// AckSignal carries everything a CCA may observe on an acknowledgment.
type AckSignal struct {
	// Now is the virtual time of the ACK's arrival at the sender.
	Now time.Duration
	// RTT is the round-trip sample of the segment that triggered the ACK,
	// or 0 when no valid sample exists (Karn's rule on retransmits).
	RTT time.Duration
	// AckedBytes is the number of bytes newly acknowledged cumulatively
	// (0 for duplicate ACKs).
	AckedBytes int
	// DeliveredBytes is the number of bytes newly confirmed received by
	// the receiver in any order (nonzero even when a hole keeps the
	// cumulative ACK pinned). Rate-based CCAs measure goodput from this.
	DeliveredBytes int
	// Packets is the number of segments the ACK covers (>1 when the
	// receiver delays or aggregates ACKs).
	Packets int
	// InFlight is the sender's outstanding byte count after processing.
	InFlight int
	// ECE is the ECN congestion echo.
	ECE bool
}

// LossSignal describes a loss detection at the sender.
type LossSignal struct {
	Now time.Duration
	// Bytes deemed lost by this detection.
	Bytes int
	// NewEvent is true when this loss begins a new recovery epoch; AIMD
	// CCAs react (halve) only once per epoch. Rate-based CCAs that count
	// raw loss (PCC) should accumulate Bytes regardless.
	NewEvent bool
	// Timeout is true for an RTO-driven detection (whole window lost).
	Timeout bool
	// InFlight is the outstanding byte count after the loss bookkeeping.
	InFlight int
}

// SendSignal notifies a CCA of a transmitted segment.
type SendSignal struct {
	Now   time.Duration
	Bytes int
	Seq   int64
	Retx  bool
}

// Algorithm is a congestion control algorithm.
type Algorithm interface {
	// Name identifies the algorithm (stable, lowercase).
	Name() string
	// Window returns the congestion window in bytes; values <= 0 mean
	// "no window limit" (rate-based CCAs).
	Window() int
	// PacingRate returns the current pacing rate; 0 means "no pacing"
	// (pure ACK clocking).
	PacingRate() units.Rate
	// OnAck processes an acknowledgment.
	OnAck(AckSignal)
	// OnLoss processes a loss detection.
	OnLoss(LossSignal)
}

// Ticker is implemented by CCAs that need a periodic timer independent of
// the ACK clock (PCC monitor intervals, Algorithm 1's per-Rm update).
type Ticker interface {
	// TickInterval returns the desired timer period. It is re-queried after
	// every tick, so CCAs may adapt it (e.g. to the measured RTT).
	TickInterval() time.Duration
	// OnTick fires once per interval while the flow is active.
	OnTick(now time.Duration)
}

// SendObserver is implemented by CCAs that track transmissions.
type SendObserver interface {
	OnSend(SendSignal)
}

// Factory constructs a fresh algorithm instance for one flow. mss is the
// segment size in bytes; rng is a flow-private deterministic source.
type Factory func(mss int, rng *rand.Rand) Algorithm

var registry = map[string]Factory{}

// Register adds a named constructor; CCA packages call it from init so that
// importing a CCA package makes it available to the CLI tools by name.
// Registering a duplicate name panics: it is always a wiring bug.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("cca: duplicate registration of " + name)
	}
	registry[name] = f
}

// Lookup returns the registered factory, or nil.
func Lookup(name string) Factory { return registry[name] }

// Names returns all registered algorithm names, sorted so listings and
// error messages are stable across runs (map iteration order is not).
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
