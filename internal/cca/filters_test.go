package cca

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWindowedMinBasics(t *testing.T) {
	f := WindowedMin{Window: 10 * time.Second}
	f.Update(0, 5)
	f.Update(time.Second, 3)
	f.Update(2*time.Second, 7)
	if got := f.Get(-1); got != 3 {
		t.Errorf("min = %v, want 3", got)
	}
	// The 3 expires after its window.
	f.Update(12*time.Second, 9)
	if got := f.Get(-1); got != 7 {
		t.Errorf("min after expiry = %v, want 7", got)
	}
}

func TestWindowedMaxBasics(t *testing.T) {
	f := WindowedMax{Window: 10 * time.Second}
	f.Update(0, 5)
	f.Update(time.Second, 8)
	f.Update(2*time.Second, 2)
	if got := f.Get(-1); got != 8 {
		t.Errorf("max = %v, want 8", got)
	}
	f.Update(11500*time.Millisecond, 1)
	// The 8@1s has expired; 2@2s is still live and dominates the new 1.
	if got := f.Get(-1); got != 2 {
		t.Errorf("max after expiry = %v, want 2", got)
	}
}

func TestWindowedEmptyDefault(t *testing.T) {
	var min WindowedMin
	var max WindowedMax
	if min.Get(42) != 42 || max.Get(42) != 42 {
		t.Error("empty filters must return the default")
	}
	if !min.Empty() || !max.Empty() {
		t.Error("fresh filters must report empty")
	}
}

func TestWindowedReset(t *testing.T) {
	f := WindowedMin{Window: time.Second}
	f.Update(0, 5)
	f.Reset()
	if !f.Empty() {
		t.Error("Reset did not clear")
	}
}

func TestMinRTT(t *testing.T) {
	var m MinRTT
	if m.Valid() {
		t.Error("fresh MinRTT reports valid")
	}
	if m.Get(time.Second) != time.Second {
		t.Error("default not returned")
	}
	m.Update(0, 100*time.Millisecond)
	m.Update(time.Second, 90*time.Millisecond)
	m.Update(2*time.Second, 95*time.Millisecond)
	if got := m.Get(0); got != 90*time.Millisecond {
		t.Errorf("min = %v, want 90ms", got)
	}
	m.Update(3*time.Second, 0) // invalid sample ignored
	if got := m.Get(0); got != 90*time.Millisecond {
		t.Error("zero RTT sample altered the minimum")
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Get(7) != 7 {
		t.Error("default not returned before samples")
	}
	e.Update(10)
	if e.Get(0) != 10 {
		t.Error("first sample must initialize exactly")
	}
	e.Update(20)
	if got := e.Get(0); got != 15 {
		t.Errorf("EWMA = %v, want 15", got)
	}
}

func TestRegisterPanicsOnDuplicate(t *testing.T) {
	Register("test-dup-cca", func(mss int, _ *rand.Rand) Algorithm { return nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("test-dup-cca", func(mss int, _ *rand.Rand) Algorithm { return nil })
}

func TestLookupUnknown(t *testing.T) {
	if Lookup("no-such-cca") != nil {
		t.Error("unknown lookup returned a factory")
	}
}

// Property: windowed min/max agree with a brute-force scan over the live
// window for arbitrary sample streams.
func TestQuickWindowedFiltersMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const window = 100 * time.Millisecond
		min := WindowedMin{Window: window}
		max := WindowedMax{Window: window}
		type sample struct {
			t time.Duration
			v float64
		}
		var all []sample
		now := time.Duration(0)
		for i := 0; i < 300; i++ {
			now += time.Duration(rng.Intn(20)) * time.Millisecond
			v := rng.Float64()
			all = append(all, sample{now, v})
			min.Update(now, v)
			max.Update(now, v)

			bMin, bMax := 1e18, -1e18
			for _, s := range all {
				if now-s.t > window {
					continue
				}
				if s.v < bMin {
					bMin = s.v
				}
				if s.v > bMax {
					bMax = s.v
				}
			}
			if min.Get(-1) != bMin || max.Get(-1) != bMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
