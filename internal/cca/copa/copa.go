// Package copa implements Copa (Arun & Balakrishnan, NSDI 2018) in its
// default (non-competitive) mode. Copa targets a sending rate of
// 1/(δ·dq) packets/s where dq is the estimated queueing delay, computed as
// standing RTT minus minimum RTT. On an ideal path it oscillates within
// roughly [Rm + 1/(2δC)·…, Rm + 5/(2δC)·…]: δ(C) shrinks as C grows
// (Fig. 3), which per Theorem 1 makes even a 1 ms error in the minimum-RTT
// estimate enough to starve it (§5.1).
package copa

import (
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Copa.
type Config struct {
	MSS int
	// Delta is Copa's δ: the flow targets 1/δ packets of queueing
	// (default 0.5).
	Delta float64
	// MinRTTWindow bounds how long a minimum-RTT sample is remembered;
	// 0 keeps the lifetime minimum (what the §5.1 poisoning exploits).
	MinRTTWindow time.Duration
	// MinRTTHint pins the minimum-RTT estimate (oracular Rm knowledge,
	// used by the theory constructions that restore converged state).
	MinRTTHint time.Duration
	// InitialCwndPkts is the initial window (default 4).
	InitialCwndPkts float64
}

// Copa is a Copa sender.
type Copa struct {
	cfg  Config
	cwnd float64 // packets

	minLifetime cca.MinRTT
	minWindowed cca.WindowedMin
	standing    cca.WindowedMin
	srtt        cca.EWMA

	velocity      float64
	direction     int // +1 up, -1 down
	lastDirSwitch time.Duration
	dirRTTs       int
	epochStart    time.Duration
	inSlowStart   bool
}

// New returns a Copa instance.
func New(cfg Config) *Copa {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.Delta <= 0 {
		cfg.Delta = 0.5
	}
	if cfg.InitialCwndPkts <= 0 {
		cfg.InitialCwndPkts = 4
	}
	c := &Copa{
		cfg:         cfg,
		cwnd:        cfg.InitialCwndPkts,
		velocity:    1,
		direction:   1,
		inSlowStart: true,
	}
	c.srtt.Alpha = 0.125
	c.minWindowed.Window = cfg.MinRTTWindow
	c.standing.Window = 50 * time.Millisecond // re-tuned to srtt/2 on acks
	return c
}

func init() {
	cca.Register("copa", func(mss int, _ *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss})
	})
}

// Name implements cca.Algorithm.
func (c *Copa) Name() string { return "copa" }

// Window implements cca.Algorithm.
func (c *Copa) Window() int { return int(c.cwnd * float64(c.cfg.MSS)) }

// PacingRate implements cca.Algorithm. Copa paces at 2×cwnd/RTT to smooth
// bursts; we approximate with pure window control plus the sender's ACK
// clock, as the original user-space implementation is also window-driven.
func (c *Copa) PacingRate() units.Rate { return 0 }

// CwndPkts returns the window in packets.
func (c *Copa) CwndPkts() float64 { return c.cwnd }

// SetCwndPkts overrides the window (Theorem 1 construction support).
func (c *Copa) SetCwndPkts(w float64) {
	c.cwnd = w
	c.inSlowStart = false
}

// MinRTT returns Copa's current minimum-RTT estimate.
func (c *Copa) MinRTT() time.Duration {
	if c.cfg.MinRTTHint > 0 {
		return c.cfg.MinRTTHint
	}
	if c.cfg.MinRTTWindow > 0 {
		return time.Duration(c.minWindowed.Get(0))
	}
	return c.minLifetime.Get(0)
}

// OnAck implements cca.Algorithm.
func (c *Copa) OnAck(s cca.AckSignal) {
	if s.RTT <= 0 {
		return
	}
	srtt := time.Duration(c.srtt.Update(float64(s.RTT)))
	if c.cfg.MinRTTWindow > 0 {
		c.minWindowed.Update(s.Now, float64(s.RTT))
	} else {
		c.minLifetime.Update(s.Now, s.RTT)
	}
	c.standing.Window = srtt / 2
	c.standing.Update(s.Now, float64(s.RTT))

	minRTT := c.MinRTT()
	standingRTT := time.Duration(c.standing.Get(float64(s.RTT)))
	dq := standingRTT - minRTT
	if minRTT <= 0 || standingRTT <= 0 {
		return
	}

	// Target rate in packets/s; current rate from the window.
	var targetRate float64
	if dq <= 0 {
		targetRate = 1e12 // no queueing observed: push up
	} else {
		targetRate = 1 / (c.cfg.Delta * dq.Seconds())
	}
	currentRate := c.cwnd / standingRTT.Seconds()

	if c.inSlowStart {
		if currentRate < targetRate {
			// Double per RTT: +1 packet per acked packet.
			c.cwnd += float64(s.AckedBytes) / float64(c.cfg.MSS)
			return
		}
		c.inSlowStart = false
	}

	dir := 1
	if currentRate > targetRate {
		dir = -1
	}
	c.updateVelocity(s.Now, dir, srtt)

	// cwnd changes by v/(δ·cwnd) packets per acked packet, i.e. v/δ per RTT.
	step := c.velocity / (c.cfg.Delta * c.cwnd) *
		(float64(s.AckedBytes) / float64(c.cfg.MSS))
	if dir > 0 {
		c.cwnd += step
	} else {
		c.cwnd -= step
		if c.cwnd < 2 {
			c.cwnd = 2
		}
	}
}

// updateVelocity implements Copa's velocity doubling: once the direction
// has been stable for 3 RTTs, velocity doubles each RTT; any direction
// change resets it.
func (c *Copa) updateVelocity(now time.Duration, dir int, srtt time.Duration) {
	if dir != c.direction {
		c.direction = dir
		c.velocity = 1
		c.dirRTTs = 0
		c.epochStart = now
		return
	}
	if srtt <= 0 || now-c.epochStart < srtt {
		return
	}
	c.epochStart = now
	c.dirRTTs++
	if c.dirRTTs >= 3 {
		c.velocity *= 2
		if c.velocity > 1<<16 {
			c.velocity = 1 << 16
		}
	}
}

// OnLoss implements cca.Algorithm.
func (c *Copa) OnLoss(s cca.LossSignal) {
	if !s.NewEvent {
		return
	}
	c.inSlowStart = false
	c.cwnd = maxF(c.cwnd/2, 2)
	c.velocity = 1
	c.dirRTTs = 0
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
