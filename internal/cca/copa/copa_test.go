package copa

import (
	"testing"
	"time"

	"starvation/internal/cca"
)

func feed(c *Copa, now, rtt time.Duration) {
	c.OnAck(cca.AckSignal{Now: now, RTT: rtt, AckedBytes: c.cfg.MSS,
		DeliveredBytes: c.cfg.MSS, Packets: 1})
}

func drive(c *Copa, start, rtt time.Duration, epochs int) time.Duration {
	now := start
	for e := 0; e < epochs; e++ {
		acks := int(c.cwnd)
		if acks < 1 {
			acks = 1
		}
		per := rtt / time.Duration(acks)
		for i := 0; i < acks; i++ {
			now += per
			feed(c, now, rtt)
		}
	}
	return now
}

func TestMinRTTTracking(t *testing.T) {
	c := New(Config{MSS: 1500})
	feed(c, 0, 120*time.Millisecond)
	feed(c, time.Millisecond, 100*time.Millisecond)
	feed(c, 2*time.Millisecond, 110*time.Millisecond)
	if got := c.MinRTT(); got != 100*time.Millisecond {
		t.Errorf("MinRTT = %v, want 100ms (lifetime)", got)
	}
}

func TestWindowedMinRTTExpires(t *testing.T) {
	c := New(Config{MSS: 1500, MinRTTWindow: 10 * time.Second})
	feed(c, 0, 99*time.Millisecond)
	feed(c, time.Second, 100*time.Millisecond)
	if got := c.MinRTT(); got != 99*time.Millisecond {
		t.Errorf("MinRTT = %v, want 99ms while in window", got)
	}
	feed(c, 15*time.Second, 100*time.Millisecond)
	if got := c.MinRTT(); got != 100*time.Millisecond {
		t.Errorf("MinRTT = %v, want 99ms sample expired", got)
	}
}

func TestSlowStartExitsAtTarget(t *testing.T) {
	c := New(Config{MSS: 1500})
	if !c.inSlowStart {
		t.Fatal("fresh Copa should be in slow start")
	}
	// Constant 100ms floor then growing queueing: feed a high queue so the
	// target rate drops below the current rate and slow start exits.
	feed(c, 0, 100*time.Millisecond)
	c.cwnd = 100
	drive(c, time.Millisecond, 200*time.Millisecond, 2)
	if c.inSlowStart {
		t.Error("Copa still in slow start despite rate above target")
	}
}

func TestSteadyStateOscillatesNearTarget(t *testing.T) {
	// Self-consistent drive: the RTT presented reflects Copa's own window
	// (single flow on a C = 12 Mbit/s path, base 100 ms), so the closed
	// loop should settle near cwnd = BDP + 1/δ·... packets and oscillate.
	c := New(Config{MSS: 1500})
	base := 100 * time.Millisecond
	const bdpPkts = 100.0 // 12 Mbit/s × 100ms / 1500B
	now := time.Duration(0)
	min, max := 1e18, 0.0
	for i := 0; i < 30000; i++ {
		q := (c.cwnd - bdpPkts) / bdpPkts * float64(base) // fluid queue delay
		if q < 0 {
			q = 0
		}
		rtt := base + time.Duration(q)
		now += rtt / time.Duration(int(c.cwnd)+1)
		feed(c, now, rtt)
		if now > 20*time.Second {
			min = minF2(min, c.cwnd)
			max = maxF2(max, c.cwnd)
		}
	}
	// Equilibrium target: ~BDP + 1/δ = 102 packets, oscillating a few
	// packets around it (velocity doubling makes excursions of ~5).
	if min < bdpPkts-2 || max > bdpPkts+25 {
		t.Errorf("steady cwnd range [%v, %v], want around %v..%v",
			min, max, bdpPkts, bdpPkts+10)
	}
	if max-min < 0.5 {
		t.Errorf("Copa should oscillate, range was [%v, %v]", min, max)
	}
}

func TestVelocityResetsOnDirectionChange(t *testing.T) {
	c := New(Config{MSS: 1500})
	c.SetCwndPkts(50)
	feed(c, 0, 100*time.Millisecond)
	// Drive up for several RTTs (empty queue → below target).
	drive(c, time.Millisecond, 100*time.Millisecond, 8)
	velUp := c.velocity
	// Now drive hard down (big queue).
	drive(c, 2*time.Second, 300*time.Millisecond, 1)
	if c.velocity > velUp && velUp > 1 {
		t.Errorf("velocity %v did not reset after direction change (was %v)", c.velocity, velUp)
	}
}

func TestLossHalves(t *testing.T) {
	c := New(Config{MSS: 1500})
	c.SetCwndPkts(40)
	c.OnLoss(cca.LossSignal{Now: time.Second, Bytes: 1500, NewEvent: true})
	if got := c.CwndPkts(); got != 20 {
		t.Errorf("cwnd after loss = %v, want 20", got)
	}
}

func TestPoisonedMinRTTThrottles(t *testing.T) {
	// §5.1: a single 99ms sample against a true 100ms floor leaves Copa
	// perceiving ≥1ms of queueing forever, capping its rate at
	// 1/(δ·1ms) = 2000 pkt/s regardless of capacity.
	c := New(Config{MSS: 1500})
	c.SetCwndPkts(800)
	feed(c, 0, 99*time.Millisecond) // poison
	drive(c, time.Millisecond, 100*time.Millisecond, 40)
	// cwnd should head toward 2000 pkt/s × 0.1s = 200 packets.
	if got := c.CwndPkts(); got > 400 {
		t.Errorf("poisoned Copa cwnd = %v, want < 400 (throttled)", got)
	}
}

func minF2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
