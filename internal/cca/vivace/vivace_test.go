package vivace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"starvation/internal/units"
)

func newTest() *Vivace {
	return New(Config{MSS: 1500, Rng: rand.New(rand.NewSource(1))})
}

func TestRegressionSlope(t *testing.T) {
	// Exact line: rtt = 0.1 + 0.5·t.
	var ts, vs []float64
	for i := 0; i < 10; i++ {
		x := float64(i) * 0.01
		ts = append(ts, x)
		vs = append(vs, 0.1+0.5*x)
	}
	if got := regressionSlope(ts, vs); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("slope = %v, want 0.5", got)
	}
	if got := regressionSlope(nil, nil); got != 0 {
		t.Errorf("empty slope = %v, want 0", got)
	}
	if got := regressionSlope([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("single-sample slope = %v, want 0", got)
	}
	// Degenerate x (all samples at one instant, the ACK-burst case).
	if got := regressionSlope([]float64{3, 3, 3}, []float64{1, 2, 9}); got != 0 {
		t.Errorf("degenerate-x slope = %v, want 0", got)
	}
}

func TestUtilityMonotoneInThroughput(t *testing.T) {
	v := newTest()
	lo := v.utility(miStats{ackedB: 100_000, sentB: 100_000})
	hi := v.utility(miStats{ackedB: 1_000_000, sentB: 1_000_000})
	if hi <= lo {
		t.Errorf("utility not increasing in loss-free throughput: %v <= %v", hi, lo)
	}
}

func TestUtilityPenalizesPositiveGradientOnly(t *testing.T) {
	v := newTest()
	base := v.utility(miStats{ackedB: 500_000, sentB: 500_000, gradient: 0})
	pos := v.utility(miStats{ackedB: 500_000, sentB: 500_000, gradient: 0.1})
	neg := v.utility(miStats{ackedB: 500_000, sentB: 500_000, gradient: -0.1})
	if pos >= base {
		t.Error("positive RTT gradient not penalized")
	}
	if neg != base {
		t.Error("negative RTT gradient altered utility (must be clipped)")
	}
}

func TestUtilityPenalizesLoss(t *testing.T) {
	v := newTest()
	clean := v.utility(miStats{ackedB: 500_000, sentB: 500_000})
	lossy := v.utility(miStats{ackedB: 450_000, sentB: 500_000}) // 10% loss
	if lossy >= clean {
		t.Error("loss not penalized")
	}
}

func TestSlowStartDoublesWhileUtilityGrows(t *testing.T) {
	v := newTest()
	r0 := v.Rate()
	now := time.Duration(0)
	// Three full MIs (warmup+measure) with clean, fast delivery.
	for i := 0; i < 6; i++ {
		now += v.TickInterval()
		// Generous delivery during the measuring half.
		v.mi.ackedB = int64(v.mi.rate * 1e6 / 8 * v.miLen.Seconds())
		v.mi.sentB = v.mi.ackedB
		v.OnTick(now)
	}
	if v.Rate() < 4*r0 {
		t.Errorf("rate after 3 clean MIs = %v, want >= %v (doubling)", v.Rate(), 4*r0)
	}
}

func TestProbePairAlternatesAroundRate(t *testing.T) {
	v := newTest()
	v.ph = phProbeFirst
	v.rate = 10
	now := time.Duration(0)
	rates := map[float64]bool{}
	for i := 0; i < 12; i++ {
		now += v.TickInterval()
		v.mi.ackedB = 10000
		v.mi.sentB = 10000
		v.OnTick(now)
		rates[math.Round(v.mi.rate*1000)/1000] = true
	}
	// Probe rates must bracket the base rate with ±ε.
	sawAbove, sawBelow := false, false
	for r := range rates {
		if r > v.rate*1.01 {
			sawAbove = true
		}
		if r < v.rate*0.99 {
			sawBelow = true
		}
	}
	if !sawAbove || !sawBelow {
		t.Errorf("probe rates did not bracket the base rate: %v", rates)
	}
}

func TestStepConfidenceAmplification(t *testing.T) {
	v := newTest()
	v.rate = 10
	v.step(10, 5) // up
	d1 := v.rate - 10
	prev := v.rate
	v.step(10, 5) // up again: amplified
	d2 := v.rate - prev
	if d2 <= d1 {
		t.Errorf("confidence amplification missing: steps %v then %v", d1, d2)
	}
	prev = v.rate
	v.step(5, 10) // direction flip: reset
	d3 := prev - v.rate
	if d3 <= 0 {
		t.Error("downward step did not reduce rate")
	}
}

func TestRateFloor(t *testing.T) {
	v := newTest()
	v.rate = 0.06
	for i := 0; i < 50; i++ {
		v.step(0, 100) // hard down
	}
	if v.Rate() < v.cfg.MinRate.Mbit() {
		t.Errorf("rate %v fell below floor %v", v.Rate(), v.cfg.MinRate.Mbit())
	}
	if v.PacingRate() < units.Mbps(v.cfg.MinRate.Mbit()) {
		t.Error("pacing below floor")
	}
}

func TestRateBasedInterface(t *testing.T) {
	v := newTest()
	if v.Window() != 0 {
		t.Error("Vivace must not impose a window")
	}
	if v.PacingRate() <= 0 {
		t.Error("Vivace must pace")
	}
	if v.TickInterval() <= 0 {
		t.Error("tick interval must be positive")
	}
}
