// Package vivace implements PCC Vivace (Dong et al., NSDI 2018), an
// online-learning rate-based CCA. The sender partitions time into monitor
// intervals (MIs); in each it measures throughput, loss, and the slope of
// RTT over time, scores the published utility function
//
//	U(x) = x^0.9 − b·x·max(0, dRTT/dt) − c·x·L      (x in Mbit/s)
//
// and performs gradient ascent with confidence amplification. Its rate
// probing of ±ε keeps equilibrium RTT within [Rm, ~1.05·Rm] (Fig. 3), so
// δmax ≈ Rm/20: tiny, and per Theorem 1 starvation-prone. §5.3 starves it
// by quantizing one flow's ACK arrivals to 60 ms boundaries, which destroys
// that flow's RTT-gradient estimate.
package vivace

import (
	"math"
	"math/rand"
	"time"

	"starvation/internal/cca"
	"starvation/internal/units"
)

// Config parameterizes Vivace.
type Config struct {
	MSS int
	// Exponent is the throughput-utility exponent t (default 0.9).
	Exponent float64
	// LatencyCoeff is b in the utility (default 900).
	LatencyCoeff float64
	// LossCoeff is c in the utility (default 11.35).
	LossCoeff float64
	// Epsilon is the probing fraction (default 0.05 — the source of the
	// 1.05·Rm oscillation ceiling the paper cites).
	Epsilon float64
	// InitialRate is the starting rate (default 1 Mbit/s).
	InitialRate units.Rate
	// MinRate floors the rate (default 0.05 Mbit/s).
	MinRate units.Rate
	// Rng randomizes MI durations and probe order; required.
	Rng *rand.Rand
}

type phase int

const (
	phSlowStart phase = iota
	phProbeFirst
	phProbeSecond
)

type miStats struct {
	rate      float64 // Mbit/s target during the MI
	start     time.Duration
	ackedB    int64
	sentB     int64
	rttT      []float64 // seconds since MI start
	rttV      []float64 // RTT seconds
	utility   float64
	gradient  float64 // measured dRTT/dt
	completed bool
}

// Vivace is a PCC Vivace sender.
type Vivace struct {
	cfg  Config
	rate float64 // Mbit/s
	srtt cca.EWMA

	ph      phase
	mi      miStats
	first   miStats // completed first MI of the probe pair
	upFirst bool    // probe order for this pair
	miLen   time.Duration
	// warmup marks the first half of each MI: deliveries still reflect
	// the previous rate, so counters are reset before measurement (see
	// the matching comment in package allegro).
	warmup    bool
	conf      int     // consecutive same-direction steps
	lastDir   int     // sign of last step
	prevUtil  float64 // slow-start comparison
	havePrev  bool
	pendRate  float64 // rate to apply at next tick
	MIsScored int64
}

// New returns a Vivace instance.
func New(cfg Config) *Vivace {
	if cfg.MSS <= 0 {
		cfg.MSS = 1500
	}
	if cfg.Exponent <= 0 {
		cfg.Exponent = 0.9
	}
	if cfg.LatencyCoeff <= 0 {
		cfg.LatencyCoeff = 900
	}
	if cfg.LossCoeff <= 0 {
		cfg.LossCoeff = 11.35
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 0.05
	}
	if cfg.InitialRate <= 0 {
		cfg.InitialRate = units.Mbps(1)
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = units.Mbps(0.05)
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(1))
	}
	v := &Vivace{cfg: cfg, rate: cfg.InitialRate.Mbit(), ph: phSlowStart,
		// The first interval only fills the pipeline; never score it.
		warmup: true}
	v.srtt.Alpha = 0.125
	v.miLen = 50 * time.Millisecond
	v.mi = miStats{rate: v.rate}
	return v
}

func init() {
	cca.Register("vivace", func(mss int, rng *rand.Rand) cca.Algorithm {
		return New(Config{MSS: mss, Rng: rng})
	})
}

// Name implements cca.Algorithm.
func (v *Vivace) Name() string { return "vivace" }

// Window implements cca.Algorithm: Vivace is purely rate-based.
func (v *Vivace) Window() int { return 0 }

// PacingRate implements cca.Algorithm.
func (v *Vivace) PacingRate() units.Rate { return units.Mbps(v.currentMIRate()) }

// Rate returns the base (non-probing) rate in Mbit/s.
func (v *Vivace) Rate() float64 { return v.rate }

func (v *Vivace) currentMIRate() float64 {
	r := v.mi.rate
	if r < v.cfg.MinRate.Mbit() {
		r = v.cfg.MinRate.Mbit()
	}
	return r
}

// TickInterval implements cca.Ticker.
func (v *Vivace) TickInterval() time.Duration { return v.miLen }

// OnTick implements cca.Ticker: an MI has ended.
func (v *Vivace) OnTick(now time.Duration) {
	if v.warmup {
		v.warmup = false
		rate := v.mi.rate
		v.mi = miStats{rate: rate, start: now}
		return
	}
	v.finishMI(now)
	// Randomized MI length in [1.7, 2.2]·srtt avoids probe synchronization
	// between competing flows (the randomness PCC relies on).
	srtt := time.Duration(v.srtt.Get(float64(50 * time.Millisecond)))
	f := 1.7 + 0.5*v.cfg.Rng.Float64()
	v.miLen = time.Duration(f * float64(srtt))
	if v.miLen < 10*time.Millisecond {
		v.miLen = 10 * time.Millisecond
	}
}

func (v *Vivace) finishMI(now time.Duration) {
	mi := v.mi
	mi.completed = true
	mi.gradient = regressionSlope(mi.rttT, mi.rttV)
	mi.utility = v.utility(mi)
	v.MIsScored++

	switch v.ph {
	case phSlowStart:
		if !v.havePrev || mi.utility > v.prevUtil {
			v.havePrev = true
			v.prevUtil = mi.utility
			v.rate *= 2
			v.startMI(now, v.rate)
			return
		}
		// Utility dropped: fall back to probing from the previous rate.
		v.rate /= 2
		v.ph = phProbeFirst
		v.beginProbePair(now)
	case phProbeFirst:
		v.first = mi
		v.ph = phProbeSecond
		dir := -1.0
		if !v.upFirst {
			dir = 1.0
		}
		v.startMI(now, v.rate*(1+dir*v.cfg.Epsilon))
	case phProbeSecond:
		var uUp, uDown float64
		if v.upFirst {
			uUp, uDown = v.first.utility, mi.utility
		} else {
			uUp, uDown = mi.utility, v.first.utility
		}
		v.step(uUp, uDown)
		v.ph = phProbeFirst
		v.beginProbePair(now)
	}
}

func (v *Vivace) beginProbePair(now time.Duration) {
	v.upFirst = v.cfg.Rng.Intn(2) == 0
	dir := 1.0
	if !v.upFirst {
		dir = -1.0
	}
	v.startMI(now, v.rate*(1+dir*v.cfg.Epsilon))
}

// step performs the gradient-ascent update with confidence amplification
// and the dynamic change boundary of the Vivace paper.
func (v *Vivace) step(uUp, uDown float64) {
	grad := (uUp - uDown) / (2 * v.cfg.Epsilon * v.rate)
	dir := 1
	if grad < 0 {
		dir = -1
	}
	if dir == v.lastDir {
		v.conf++
	} else {
		v.conf = 1
		v.lastDir = dir
	}
	theta := 1.0 // conversion factor: utility-gradient to Mbit/s
	delta := float64(v.conf) * theta * grad
	// Dynamic change boundary: at most (0.05 + 0.1·(conf−1)) of the rate.
	bound := (0.05 + 0.1*float64(v.conf-1)) * v.rate
	if delta > bound {
		delta = bound
	}
	if delta < -bound {
		delta = -bound
	}
	v.rate += delta
	if v.rate < v.cfg.MinRate.Mbit() {
		v.rate = v.cfg.MinRate.Mbit()
	}
}

func (v *Vivace) startMI(now time.Duration, rate float64) {
	if rate < v.cfg.MinRate.Mbit() {
		rate = v.cfg.MinRate.Mbit()
	}
	v.mi = miStats{rate: rate, start: now}
	v.warmup = true
}

// utility scores one MI with the Vivace latency utility.
func (v *Vivace) utility(mi miStats) float64 {
	dur := v.miLen.Seconds()
	if dur <= 0 {
		dur = 0.05
	}
	x := float64(mi.ackedB) * 8 / dur / 1e6 // achieved Mbit/s
	// Loss per MI via sequence-gap accounting (sent vs delivered), as the
	// PCC monitor measures it.
	loss := 0.0
	if mi.sentB > 0 && mi.sentB > mi.ackedB {
		loss = float64(mi.sentB-mi.ackedB) / float64(mi.sentB)
	}
	grad := mi.gradient
	if grad < 0 {
		grad = 0
	}
	return math.Pow(x, v.cfg.Exponent) -
		v.cfg.LatencyCoeff*x*grad -
		v.cfg.LossCoeff*x*loss
}

// OnAck implements cca.Algorithm.
func (v *Vivace) OnAck(s cca.AckSignal) {
	if s.RTT > 0 {
		v.srtt.Update(float64(s.RTT))
		// The latency gradient regresses RTT against packet *send* time
		// (Vivace timestamps at transmission). The distinction matters
		// under ACK aggregation: against arrival time a burst of ACKs
		// collapses to one x-value and the distortion vanishes, while
		// against send time the burst forms the RTT sawtooth (−1 slope
		// within a burst, +period jumps across boundaries) whose spurious
		// positive segments are what §5.3 exploits.
		v.mi.rttT = append(v.mi.rttT, (s.Now - s.RTT - v.mi.start).Seconds())
		v.mi.rttV = append(v.mi.rttV, s.RTT.Seconds())
	}
	v.mi.ackedB += int64(s.DeliveredBytes)
}

// OnLoss implements cca.Algorithm: loss is already accounted for by the
// per-MI send/deliver difference.
func (v *Vivace) OnLoss(cca.LossSignal) {}

// OnSend implements cca.SendObserver.
func (v *Vivace) OnSend(s cca.SendSignal) {
	v.mi.sentB += int64(s.Bytes)
}

// regressionSlope returns the least-squares slope of v over t, or 0 when
// fewer than two samples exist (an MI with quantized ACK arrivals may see
// all samples at one instant: slope undefined, returned as 0).
func regressionSlope(t, v []float64) float64 {
	n := float64(len(t))
	if n < 2 {
		return 0
	}
	var st, sv, stt, stv float64
	for i := range t {
		st += t[i]
		sv += v[i]
		stt += t[i] * t[i]
		stv += t[i] * v[i]
	}
	den := n*stt - st*st
	if den == 0 {
		return 0
	}
	return (n*stv - st*sv) / den
}
