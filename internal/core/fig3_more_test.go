package core

import (
	"math/rand"
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/bbr"
	"starvation/internal/cca/ledbat"
	"starvation/internal/cca/verus"
	"starvation/internal/netem/jitter"
	"starvation/internal/network"
	"starvation/internal/units"
)

func TestFig3LEDBAT(t *testing.T) {
	c := units.Mbps(24)
	conv := MeasureConvergence(func() cca.Algorithm {
		return ledbat.New(ledbat.Config{})
	}, c, fig3Rm, fig3Opts())
	// LEDBAT steers its queueing toward TARGET (25ms): RTT near
	// Rm + 25ms regardless of C. The RFC's linear controller with
	// RTT-delayed feedback rings around the setpoint, so the band is a
	// couple of tens of ms wide — still delay-convergent and (per Thm 1
	// with D > 2δmax) still starvable.
	lo := fig3Rm + 8*time.Millisecond
	hi := fig3Rm + 35*time.Millisecond
	if conv.SteadyMeanRTT < lo || conv.SteadyMeanRTT > hi {
		t.Errorf("steady mean RTT %v, want within [%v, %v]", conv.SteadyMeanRTT, lo, hi)
	}
	if conv.Efficiency() < 0.9 {
		t.Errorf("efficiency %.3f", conv.Efficiency())
	}
	if conv.Delta > 35*time.Millisecond {
		t.Errorf("δ = %v, want bounded (delay-convergent)", conv.Delta)
	}
}

func TestFig3Verus(t *testing.T) {
	c := units.Mbps(24)
	conv := MeasureConvergence(func() cca.Algorithm {
		return verus.New(verus.Config{})
	}, c, fig3Rm, fig3Opts())
	// Verus targets delays near R·Dmin = 2·Rm with profile-resolution
	// oscillation: bounded dmax, nonzero but bounded δ.
	if conv.DMax > 3*fig3Rm {
		t.Errorf("dmax %v, want bounded near 2·Rm", conv.DMax)
	}
	if conv.DMin < fig3Rm {
		t.Errorf("dmin %v below Rm", conv.DMin)
	}
	if conv.Efficiency() < 0.7 {
		t.Errorf("efficiency %.3f", conv.Efficiency())
	}
}

// TestBBRCwndLimitedEquilibrium exercises the Figure 3 right panel's upper
// line. The paper notes cwnd-limited mode needs jitter plus competition:
// "their interaction and natural OS jitter was enough to push them into
// cwnd-limited mode" — each flow's max filter latches its peak share, the
// latched estimates sum beyond C, the queue grows, and the cwnd cap
// 2·bw·Rm + α takes over with equilibrium RTT = 2·Rm + n·α/C (§5.2's
// fixed-point calculation), far above the pacing band [Rm, 1.25·Rm].
func TestBBRCwndLimitedEquilibrium(t *testing.T) {
	rm := 50 * time.Millisecond
	c := units.Mbps(24)
	mk := func(seed int64) network.FlowSpec {
		return network.FlowSpec{
			Alg: bbr.New(bbr.Config{Rng: rand.New(rand.NewSource(seed))}),
			Rm:  rm,
			FwdJitter: &jitter.Uniform{Max: 2 * time.Millisecond,
				Rng: rand.New(rand.NewSource(seed + 100))},
		}
	}
	n := network.New(network.Config{Rate: c, Seed: 3}, mk(9), mk(11))
	res := n.Run(40 * time.Second)
	t.Logf("\n%s", res)

	// Both flows must leave the pacing band: the combined mean RTT sits
	// above 1.25·Rm + jitter and below the 3·Rm sanity line.
	pacingCeiling := rm + rm/4 + 4*time.Millisecond
	for _, f := range res.Flows {
		if f.Stat.MeanRTT <= pacingCeiling {
			t.Errorf("%s mean RTT %v still in pacing band (≤ %v): cwnd-limited mode not entered",
				f.Name, f.Stat.MeanRTT, pacingCeiling)
		}
		if f.Stat.MeanRTT > 4*rm {
			t.Errorf("%s mean RTT %v, want bounded near 2·Rm", f.Name, f.Stat.MeanRTT)
		}
	}
	if res.Utilization() < 0.9 {
		t.Errorf("utilization %.3f: cwnd-limited BBR should still fill the link", res.Utilization())
	}
}
