package core

import (
	"time"

	"starvation/internal/trace"
)

// RTTShaper is the constructive adversary of Theorem 1 step 3: a bounded
// non-congestive delay element that makes a flow observe a prescribed RTT
// trajectory. For a packet sent at time ts that reaches the element having
// already accumulated (now − ts) of queueing, serialization, and
// propagation delay, the shaper holds it for
//
//	η(t) = target(ts) − (now − ts)
//
// clamped to [0, D]. When the Theorem 1 preconditions hold (D > 2·δmax and
// the two delay ranges collide within ε), the clamp never binds after the
// starting transient, and each flow's observed RTT equals its single-flow
// trajectory — so a deterministic CCA repeats its single-flow behaviour.
type RTTShaper struct {
	// Target is the RTT trajectory to emulate (seconds), extended beyond
	// its last sample as a constant.
	Target *trace.Series
	// D is the element's delay bound.
	D time.Duration

	// Violation statistics: how often, and by how much, the required delay
	// fell outside [0, D] (clamped). A healthy emulation keeps these near
	// zero after the first RTT.
	ClampedLow   int64
	ClampedHigh  int64
	Applied      int64
	MaxShortfall time.Duration // largest (required − D) overflow
	MaxNegative  time.Duration // largest negative requirement magnitude
	// SkipUntil disables shaping before this time (lets a starting
	// transient pass unclamped into the statistics).
	SkipUntil time.Duration
}

// DelayPacket implements jitter.PacketAware.
func (r *RTTShaper) DelayPacket(now, sentAt time.Duration, _ int64) time.Duration {
	// Before the trajectory's first sample, extend it backward as a
	// constant (the forward extension is the step function's own); an
	// arbitrary default would stall the flow's first round trip.
	def := float64(r.D) / float64(time.Second)
	if len(r.Target.Points) > 0 {
		def = r.Target.Points[0].V
	}
	target := time.Duration(r.Target.At(sentAt, def) * float64(time.Second))
	elapsed := now - sentAt
	need := target - elapsed
	r.Applied++
	if need < 0 {
		if now >= r.SkipUntil {
			r.ClampedLow++
			if -need > r.MaxNegative {
				r.MaxNegative = -need
			}
		}
		return 0
	}
	if need > r.D {
		if now >= r.SkipUntil {
			r.ClampedHigh++
			if need-r.D > r.MaxShortfall {
				r.MaxShortfall = need - r.D
			}
		}
		return r.D
	}
	return need
}

// Delay implements jitter.Policy (non-packet-aware fallback: assumes zero
// accumulated delay, which only happens if the shaper is misplaced).
func (r *RTTShaper) Delay(now time.Duration, seq int64) time.Duration {
	return r.DelayPacket(now, now, seq)
}

// Bound implements jitter.Policy.
func (r *RTTShaper) Bound() time.Duration { return r.D }

// ViolationFraction returns the fraction of shaped packets whose required
// delay fell outside [0, D].
func (r *RTTShaper) ViolationFraction() float64 {
	if r.Applied == 0 {
		return 0
	}
	return float64(r.ClampedLow+r.ClampedHigh) / float64(r.Applied)
}
