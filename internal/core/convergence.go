// Package core implements the paper's primary contribution as executable
// machinery:
//
//   - measurement of delay-convergence (Definition 1): the equilibrium
//     delay interval [dmin(C), dmax(C)] and δ(C) of a CCA on an ideal path;
//   - rate-delay sweeps that regenerate Figures 2 and 3;
//   - the pigeonhole search of Theorem 1 step 1, which finds link rates
//     C1, C2 a factor ≥ s/f apart whose delay ranges collide;
//   - the delay-trajectory emulation of Theorem 1 step 3, which runs two
//     flows on a shared C1+C2 link while a bounded non-congestive delay
//     element makes each flow observe its single-flow trajectory, forcing a
//     throughput ratio ≥ s (starvation);
//   - the Theorem 2 construction (arbitrary under-utilization when
//     dmax(C) ≤ D);
//   - closed-form equilibria and the §6.3 figure-of-merit formulas.
package core

import (
	"context"
	"time"

	"starvation/internal/cca"
	"starvation/internal/network"
	"starvation/internal/trace"
	"starvation/internal/units"
)

// Factory builds a fresh CCA instance for a measurement run.
type Factory func() cca.Algorithm

// Convergence describes one CCA's equilibrium on one ideal path, i.e. one
// point of Definition 1.
type Convergence struct {
	C  units.Rate
	Rm time.Duration
	// DMin and DMax bound the RTT over the measurement window: the
	// [dmin(C), dmax(C)] of Definition 1.
	DMin, DMax time.Duration
	// Delta is DMax − DMin, the δ(C) of Definition 1.
	Delta time.Duration
	// Throughput is the steady-state throughput (for f-efficiency checks).
	Throughput units.Rate
	// SteadyMeanRTT is the mean RTT over the measurement window — the
	// center of the equilibrium band.
	SteadyMeanRTT time.Duration
	// ConvergedAt estimates T of Definition 1: the last time the RTT left
	// the equilibrium interval.
	ConvergedAt time.Duration
	// FinalCwndPkts is the window (in MSS units) at the end of the run,
	// used to restart a flow from its converged state.
	FinalCwndPkts float64
	// FinalPacing is the pacing rate at the end of the run.
	FinalPacing units.Rate
	// RTT and Rate are the full recorded trajectories (the d(t) and r(t)
	// of the proof).
	RTT  *trace.Series
	Rate *trace.Series
}

// MeasureOpts tunes a convergence measurement.
type MeasureOpts struct {
	// Duration of the run (default 60 s).
	Duration time.Duration
	// WindowFrac is the trailing fraction used as the equilibrium window
	// (default 0.4: the last 40% of the run).
	WindowFrac float64
	// MSS (default 1500).
	MSS int
	// Seed for the run (default 1).
	Seed int64
	// Ctx, when non-nil, cancels the measurement's emulations at
	// run-tick granularity (observation-only until cancellation).
	Ctx context.Context
	// Jobs bounds the worker count of multi-run measurements
	// (RateDelaySweep rate points). 0 or 1 runs sequentially; since
	// every point is an independent simulator, the measured values are
	// identical at any Jobs value.
	Jobs int
	// Session, when non-nil, runs the measurement through a reusable run
	// context that recycles event arenas and endpoint state across runs
	// instead of reallocating them. Measured values are bit-identical
	// with or without a session. Sessions are single-owner: never share
	// one across goroutines (RateDelaySweep gives each worker its own).
	Session *network.Session
}

func (o *MeasureOpts) fill() {
	if o.Duration <= 0 {
		o.Duration = 60 * time.Second
	}
	if o.WindowFrac <= 0 || o.WindowFrac >= 1 {
		o.WindowFrac = 0.4
	}
	if o.MSS <= 0 {
		o.MSS = 1500
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MeasureConvergence runs a single flow of the given CCA on an ideal path
// (constant rate C, propagation Rm, unbounded buffer, zero non-congestive
// delay) and reports its equilibrium delay interval.
func MeasureConvergence(f Factory, c units.Rate, rm time.Duration, opts MeasureOpts) *Convergence {
	opts.fill()
	alg := f()
	cfg := network.Config{Rate: c, Seed: opts.Seed, Ctx: opts.Ctx}
	spec := network.FlowSpec{Name: "probe", Alg: alg, Rm: rm, MSS: opts.MSS}
	d := opts.Duration
	from := time.Duration((1 - opts.WindowFrac) * float64(d))
	var res *network.Result
	if opts.Session != nil {
		var err error
		res, err = opts.Session.RunWindow(cfg, d, from, d, spec)
		if err != nil {
			// The config is assembled here from checked inputs; a
			// validation failure is a programming error, as in network.New.
			panic(err.Error())
		}
	} else {
		res = network.New(cfg, spec).RunWindow(d, from, d)
	}
	fr := res.Flows[0]

	conv := &Convergence{
		C:           c,
		Rm:          rm,
		DMin:        fr.Stat.SteadyRTTLo,
		DMax:        fr.Stat.SteadyRTTHi,
		Delta:       fr.Stat.SteadyRTTHi - fr.Stat.SteadyRTTLo,
		Throughput:  fr.Stat.SteadyThpt,
		FinalPacing: alg.PacingRate(),
		RTT:         fr.RTT,
		Rate:        fr.Rate,
	}
	conv.FinalCwndPkts = float64(alg.Window()) / float64(opts.MSS)
	conv.ConvergedAt = estimateConvergenceTime(fr.RTT, conv.DMin, conv.DMax)
	if m, ok := fr.RTT.Mean(from, d); ok {
		conv.SteadyMeanRTT = time.Duration(m * float64(time.Second))
	}
	return conv
}

// estimateConvergenceTime returns the time after which every RTT sample
// stayed within [lo, hi] (with a 1% margin), i.e. the T of Definition 1.
func estimateConvergenceTime(rtt *trace.Series, lo, hi time.Duration) time.Duration {
	margin := (hi - lo) / 100
	loS := (lo - margin).Seconds()
	hiS := (hi + margin).Seconds()
	var t time.Duration
	for _, p := range rtt.Points {
		if p.V < loS || p.V > hiS {
			t = p.T
		}
	}
	return t
}

// Efficiency returns the achieved fraction of link capacity, the f of
// Definition 4 evaluated at this operating point.
func (c *Convergence) Efficiency() float64 {
	if c.C <= 0 {
		return 0
	}
	return float64(c.Throughput) / float64(c.C)
}
