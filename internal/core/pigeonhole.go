package core

import (
	"fmt"
	"time"

	"starvation/internal/network"
	"starvation/internal/units"
)

// PigeonholeResult is the outcome of the Theorem 1 step-1 search: two link
// rates at least a factor s/f apart whose equilibrium delays collide within
// epsilon.
type PigeonholeResult struct {
	C1, C2 units.Rate
	Conv1  *Convergence
	Conv2  *Convergence
	// Epsilon is the collision tolerance used.
	Epsilon time.Duration
	// Tried lists every rate measured during the search (the λi sequence).
	Tried []SweepPoint
	// Found reports whether a colliding pair was found within the iteration
	// budget. For a delay-convergent CCA the theorem guarantees existence;
	// a budget exhaustion signals the CCA is *not* delay-convergent over
	// the explored range (e.g. dmax grows without bound).
	Found bool
}

// PigeonholeSearch walks the geometric rate sequence λi = λ0·(s/f)^i and
// returns the first pair (λi, λj), j > i, with |dmax(λi) − dmax(λj)| < eps.
// This is the pigeonhole argument of Theorem 1 made operational: because
// all dmax(·) values live in the bounded interval [Rm, dmax-bound], some
// pair of an infinite geometric sequence must collide.
func PigeonholeSearch(f Factory, rm time.Duration, s, fEff float64, eps time.Duration,
	lambda0 units.Rate, maxIter int, opts MeasureOpts) *PigeonholeResult {

	if s < 1 {
		s = 1
	}
	if fEff <= 0 || fEff > 1 {
		fEff = 1
	}
	growth := s / fEff
	if growth <= 1 {
		growth = 2
	}
	res := &PigeonholeResult{Epsilon: eps}
	if opts.Session == nil {
		// The search runs one identically shaped measurement per rate, the
		// ideal case for a recycled run context (sequential, so one
		// session serves the whole walk; measured values are unchanged).
		opts.Session = network.NewSession()
	}

	type measured struct {
		c    units.Rate
		conv *Convergence
	}
	var seen []measured
	c := lambda0
	for i := 0; i < maxIter; i++ {
		conv := MeasureConvergence(f, c, rm, opts)
		res.Tried = append(res.Tried, SweepPoint{
			C: c, DMin: conv.DMin, DMax: conv.DMax,
			Delta: conv.Delta, Efficiency: conv.Efficiency(),
		})
		for _, m := range seen {
			diff := conv.DMax - m.conv.DMax
			if diff < 0 {
				diff = -diff
			}
			if diff < eps {
				res.C1, res.C2 = m.c, c
				res.Conv1, res.Conv2 = m.conv, conv
				res.Found = true
				return res
			}
		}
		seen = append(seen, measured{c, conv})
		c = units.Rate(float64(c) * growth)
	}
	return res
}

// String summarizes the search.
func (r *PigeonholeResult) String() string {
	if !r.Found {
		return fmt.Sprintf("no colliding pair within %d rates (eps=%v)", len(r.Tried), r.Epsilon)
	}
	return fmt.Sprintf("C1=%v (dmax=%v)  C2=%v (dmax=%v)  ratio=%.1f  eps=%v",
		r.C1, r.Conv1.DMax.Round(10*time.Microsecond),
		r.C2, r.Conv2.DMax.Round(10*time.Microsecond),
		float64(r.C2)/float64(r.C1), r.Epsilon)
}
