package core

import (
	"fmt"
	"time"

	"starvation/internal/cca"
	"starvation/internal/network"
	"starvation/internal/trace"
	"starvation/internal/units"
)

// EmulationSpec configures the Theorem 1 two-flow construction.
type EmulationSpec struct {
	// Make builds the CCA for a flow. It receives the single-flow
	// convergence measurement the flow should resume from (nil for the
	// step-2 probe runs, in which case a fresh default instance is
	// expected). Window CCAs should start at conv.FinalCwndPkts; rate CCAs
	// at conv.FinalPacing.
	Make func(conv *Convergence) cca.Algorithm
	// Rm is the shared propagation RTT.
	Rm time.Duration
	// C1 and C2 are the two single-flow link rates (from PigeonholeSearch
	// or chosen directly); the two-flow link runs at C1 + C2.
	C1, C2 units.Rate
	// D is the non-congestive delay bound; Theorem 1 requires D > 2·δmax.
	D time.Duration
	// ConstantTargets selects the emulation flavor. False (default)
	// replays each flow's recorded RTT trajectory — the literal step-3
	// construction. True instead holds each flow at the constant center of
	// its recorded equilibrium band, a "persistent non-congestive delay"
	// adversary that is also admissible in the §3 model and, unlike the
	// replay, phase-locks perfectly in a packet-granular emulator (the
	// equilibrium hysteresis of the CCA freezes the operating point).
	ConstantTargets bool
	// Measure tunes the step-2 single-flow runs.
	Measure MeasureOpts
	// Duration of the two-flow emulation (default 60 s).
	Duration time.Duration
	// MSS (default 1500).
	MSS int
}

// EmulationResult reports the constructed starvation scenario.
type EmulationResult struct {
	Conv1, Conv2 *Convergence
	// DeltaMax is max(δ(C1), δ(C2)), the relevant δmax of the pair.
	DeltaMax time.Duration
	// Epsilon is D/2 − δmax (must be positive for the construction).
	Epsilon time.Duration
	// DelayGap is |dmax(C1) − dmax(C2)|; the construction needs the two
	// ranges within δmax + ε of each other.
	DelayGap time.Duration
	// PreconditionsHold reports whether D > 2·δmax and the delay ranges
	// collide, i.e. Theorem 1's hypotheses are satisfied.
	PreconditionsHold bool
	// DStar0 is the initial combined-queue delay d*(0) (≥ Rm).
	DStar0 time.Duration
	// TwoFlow is the emulated two-flow run.
	TwoFlow *network.Result
	// Ratio is the achieved steady-state throughput ratio.
	Ratio float64
	// Shaper1 and Shaper2 expose the per-flow adversary statistics.
	Shaper1, Shaper2 *RTTShaper
	// Target1 and Target2 are the emulated RTT trajectories d̄i(t).
	Target1, Target2 *trace.Series
}

// EmulateTwoFlow executes all three steps of the Theorem 1 proof as an
// experiment: measure single-flow trajectories on C1 and C2 (step 2),
// verify the delay ranges collide (step 1's conclusion), then run both
// flows on a C1+C2 link with per-flow bounded delay shapers replaying the
// trajectories (step 3) and report the resulting throughput ratio.
func EmulateTwoFlow(spec EmulationSpec) *EmulationResult {
	if spec.Duration <= 0 {
		spec.Duration = 60 * time.Second
	}
	if spec.MSS <= 0 {
		spec.MSS = 1500
	}
	spec.Measure.MSS = spec.MSS

	// Step 2: single-flow trajectories on ideal paths of rates C1 and C2.
	conv1 := MeasureConvergence(func() cca.Algorithm { return spec.Make(nil) }, spec.C1, spec.Rm, spec.Measure)
	conv2 := MeasureConvergence(func() cca.Algorithm { return spec.Make(nil) }, spec.C2, spec.Rm, spec.Measure)

	res := &EmulationResult{Conv1: conv1, Conv2: conv2}
	res.DeltaMax = conv1.Delta
	if conv2.Delta > res.DeltaMax {
		res.DeltaMax = conv2.Delta
	}
	res.Epsilon = spec.D/2 - res.DeltaMax
	res.DelayGap = conv1.DMax - conv2.DMax
	if res.DelayGap < 0 {
		res.DelayGap = -res.DelayGap
	}
	res.PreconditionsHold = res.Epsilon > 0 && res.DelayGap <= res.DeltaMax+res.Epsilon

	if spec.ConstantTargets {
		res.Target1 = constantSeries(conv1.SteadyMeanRTT)
		res.Target2 = constantSeries(conv2.SteadyMeanRTT)
	} else {
		// Time-shift the trajectories so t=0 is the convergence time: the
		// d̄i(t) = di(t + Ti) of the proof.
		res.Target1 = conv1.RTT.Shift(conv1.ConvergedAt)
		res.Target2 = conv2.RTT.Shift(conv2.ConvergedAt)
	}
	res.Target1.Name = "target1_rtt_s"
	res.Target2.Name = "target2_rtt_s"

	// Step 3: initial queue so that d*(0) is the weighted average of the
	// two starting delays minus (δmax + ε).
	d1of0 := time.Duration(res.Target1.At(0, conv1.DMax.Seconds()) * float64(time.Second))
	d2of0 := time.Duration(res.Target2.At(0, conv2.DMax.Seconds()) * float64(time.Second))
	w1 := float64(spec.C1) / float64(spec.C1+spec.C2)
	w2 := float64(spec.C2) / float64(spec.C1+spec.C2)
	dStar0 := time.Duration(w1*float64(d1of0)+w2*float64(d2of0)) - (res.DeltaMax + res.Epsilon)
	if dStar0 < spec.Rm {
		dStar0 = spec.Rm // case 2 of the proof: no queue priming needed
	}
	res.DStar0 = dStar0

	// Ignore the first second in the violation statistics: restarting the
	// flows with their converged windows causes one queue spike while the
	// pipes refill (the proof sets the in-flight state directly; a packet
	// emulator has to earn it).
	skip := 20 * spec.Rm
	if skip < time.Second {
		skip = time.Second
	}
	res.Shaper1 = &RTTShaper{Target: res.Target1, D: spec.D, SkipUntil: skip}
	res.Shaper2 = &RTTShaper{Target: res.Target2, D: spec.D, SkipUntil: skip}

	n := network.New(
		network.Config{Rate: spec.C1 + spec.C2, Seed: spec.Measure.Seed, Ctx: spec.Measure.Ctx},
		network.FlowSpec{
			Name: "starved", Alg: spec.Make(conv1), Rm: spec.Rm,
			MSS: spec.MSS, FwdJitter: res.Shaper1,
		},
		network.FlowSpec{
			Name: "fast", Alg: spec.Make(conv2), Rm: spec.Rm,
			MSS: spec.MSS, FwdJitter: res.Shaper2,
		},
	)
	n.Link.Prime(dStar0 - spec.Rm)
	res.TwoFlow = n.Run(spec.Duration)
	res.Ratio = res.TwoFlow.Ratio()
	return res
}

// constantSeries returns a one-sample series whose step-function extension
// is the constant v.
func constantSeries(v time.Duration) *trace.Series {
	s := &trace.Series{}
	s.Add(0, v.Seconds())
	return s
}

// String summarizes the construction.
func (r *EmulationResult) String() string {
	return fmt.Sprintf(
		"theorem-1 emulation: C1=%v C2=%v  δmax=%v ε=%v gap=%v preconditions=%v\n"+
			"  d*(0)=%v  ratio=%.1f  clamp violations: flow1 %.4f%% flow2 %.4f%%\n%s",
		r.Conv1.C, r.Conv2.C,
		r.DeltaMax.Round(time.Microsecond), r.Epsilon.Round(time.Microsecond),
		r.DelayGap.Round(time.Microsecond), r.PreconditionsHold,
		r.DStar0.Round(time.Microsecond), r.Ratio,
		100*r.Shaper1.ViolationFraction(), 100*r.Shaper2.ViolationFraction(),
		r.TwoFlow)
}

// UnderutilizationSpec configures the Theorem 2 construction.
type UnderutilizationSpec struct {
	// Make builds a fresh CCA (nil convergence semantics as in
	// EmulationSpec).
	Make func(conv *Convergence) cca.Algorithm
	// Rm is the propagation RTT.
	Rm time.Duration
	// C is the ideal-path rate whose trajectory is emulated.
	C units.Rate
	// Multiplier scales the real link: C' = Multiplier × C (default 100).
	Multiplier float64
	// Measure tunes the probe run.
	Measure MeasureOpts
	// Duration of the emulated run (default 60 s).
	Duration time.Duration
	// MSS (default 1500).
	MSS int
}

// UnderutilizationResult reports the Theorem 2 outcome.
type UnderutilizationResult struct {
	Conv *Convergence
	// D is the jitter bound the construction needed: dmax(C) − Rm plus the
	// queueing the big link still causes (≈ 0).
	D time.Duration
	// BigLink is C′.
	BigLink units.Rate
	// Run is the emulated single-flow run on C′.
	Run *network.Result
	// Utilization achieved on C′ (→ C/C′, arbitrarily small).
	Utilization float64
	Shaper      *RTTShaper
}

// UnderutilizationConstruction runs Theorem 2: a CCA whose dmax(C) ≤ D can
// be held to throughput ≈ C on a link of rate Multiplier × C by emulating
// its ideal-path delay trajectory entirely with non-congestive delay.
func UnderutilizationConstruction(spec UnderutilizationSpec) *UnderutilizationResult {
	if spec.Duration <= 0 {
		spec.Duration = 60 * time.Second
	}
	if spec.MSS <= 0 {
		spec.MSS = 1500
	}
	if spec.Multiplier <= 1 {
		spec.Multiplier = 100
	}
	spec.Measure.MSS = spec.MSS

	conv := MeasureConvergence(func() cca.Algorithm { return spec.Make(nil) }, spec.C, spec.Rm, spec.Measure)
	target := conv.RTT // emulate from t=0: same initial state, same trace
	target.Name = "target_rtt_s"
	d := conv.DMax - spec.Rm
	if d <= 0 {
		d = time.Millisecond
	}
	// Headroom for the big link's own (tiny) queueing delay.
	d += 2 * time.Millisecond

	shaper := &RTTShaper{Target: target, D: d}
	big := units.Rate(float64(spec.C) * spec.Multiplier)
	n := network.New(
		network.Config{Rate: big, Seed: spec.Measure.Seed, Ctx: spec.Measure.Ctx},
		network.FlowSpec{
			Name: "emulated", Alg: spec.Make(nil), Rm: spec.Rm,
			MSS: spec.MSS, FwdJitter: shaper,
		},
	)
	res := n.Run(spec.Duration)
	return &UnderutilizationResult{
		Conv:        conv,
		D:           d,
		BigLink:     big,
		Run:         res,
		Utilization: res.Utilization(),
		Shaper:      shaper,
	}
}
