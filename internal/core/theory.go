package core

import (
	"math"
	"time"

	"starvation/internal/units"
)

// This file holds the paper's closed-form results: the equilibrium
// rate-delay mappings of §5 (plotted in Figure 3) and the §6.3
// figure-of-merit formulas (Equations 1 and 2).

// VegasEquilibriumRTT returns the ideal-path equilibrium RTT of n
// Vegas/FAST flows, each holding alphaPkts packets of size mss at the
// bottleneck: Rm + n·α/C (§4.1, §5.1).
func VegasEquilibriumRTT(c units.Rate, rm time.Duration, n int, alphaPkts float64, mss int) time.Duration {
	if c <= 0 {
		return rm
	}
	queued := float64(n) * alphaPkts * float64(mss) * 8 / float64(c)
	return rm + time.Duration(queued*float64(time.Second))
}

// BBRCwndLimitedRTT returns the cwnd-limited equilibrium RTT of n BBR
// flows: 2·Rm + n·α/C (§5.2). The extra Rm of standing queue is what makes
// BBR robust to jitter smaller than Rm.
func BBRCwndLimitedRTT(c units.Rate, rm time.Duration, n int, quantaPkts float64, mss int) time.Duration {
	if c <= 0 {
		return 2 * rm
	}
	queued := float64(n) * quantaPkts * float64(mss) * 8 / float64(c)
	return 2*rm + time.Duration(queued*float64(time.Second))
}

// BBRPacingDelayRange returns BBR's pacing-limited equilibrium delay range
// [Rm, 1.25·Rm] (§5.2): the 1.25 probe gain bounds the standing queue.
func BBRPacingDelayRange(rm time.Duration) (lo, hi time.Duration) {
	return rm, rm + rm/4
}

// VivaceDelayRange returns PCC Vivace's equilibrium delay range
// [Rm, 1.05·Rm] (§5.3): with the paper's largest constants, rate probing
// keeps at most 5% of Rm queued.
func VivaceDelayRange(rm time.Duration) (lo, hi time.Duration) {
	return rm, rm + rm/20
}

// CopaDelayRange returns Copa's ideal-path equilibrium delay range. Copa
// oscillates around a standing queue of 1/delta packets with amplitude
// ~±1.5/delta packets of delay, giving δ(C) ≈ 4α/C for δ=0.5 (the paper's
// Table in §2.2 cites 4α/C with α the packet size).
func CopaDelayRange(c units.Rate, rm time.Duration, delta float64, mss int) (lo, hi time.Duration) {
	if c <= 0 || delta <= 0 {
		return rm, rm
	}
	pktTime := float64(mss) * 8 / float64(c) // seconds per packet
	mid := 1 / delta * pktTime               // standing target: 1/δ packets
	halfOsc := 2 * pktTime / delta           // oscillation of ~4α/C total for δ=0.5
	loS := mid - halfOsc/1
	if loS < 0 {
		loS = 0
	}
	hiS := mid + halfOsc
	return rm + time.Duration(loS*float64(time.Second)), rm + time.Duration(hiS*float64(time.Second))
}

// VegasFigureOfMerit returns Equation 1: the μ+/μ− rate range over which
// the Vegas-family rate-delay function μ(d) = α/(d−Rm) keeps rates s apart
// mapped to delays D apart: (Rmax − Rm)/D · (1 − 1/s).
func VegasFigureOfMerit(rmax, rm, d time.Duration, s float64) float64 {
	if d <= 0 || s <= 1 {
		return 0
	}
	return float64(rmax-rm) / float64(d) * (1 - 1/s)
}

// ExponentialFigureOfMerit returns Equation 2's range for the paper's
// proposed mapping μ(d) = μ−·s^((Rmax−d)/D): namely s^((Rmax−Rm−D)/D).
func ExponentialFigureOfMerit(rmax, rm, d time.Duration, s float64) float64 {
	if d <= 0 || s <= 1 {
		return 0
	}
	exp := float64(rmax-rm-d) / float64(d)
	return math.Pow(s, exp)
}

// ExponentialRateDelay evaluates μ(d) = μ−·s^((Rmax−(d−Rm))/D), Algorithm
// 1's target mapping.
func ExponentialRateDelay(muMin units.Rate, s float64, rmaxOffset, dEst, rm, D time.Duration) units.Rate {
	q := dEst - rm
	if q < 0 {
		q = 0
	}
	exp := (rmaxOffset - q).Seconds() / D.Seconds()
	return units.Rate(float64(muMin) * math.Pow(s, exp))
}

// StarvationThreshold returns the jitter bound above which Theorem 1
// applies: D > 2·δmax.
func StarvationThreshold(deltaMax time.Duration) time.Duration { return 2 * deltaMax }

// RequiredOscillation inverts it: to survive jitter D without starvation, a
// delay-convergent CCA must oscillate by at least D/2 at equilibrium (§6.2,
// the paper's design prescription).
func RequiredOscillation(d time.Duration) time.Duration { return d / 2 }
