package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"starvation/internal/guard"
	"starvation/internal/metrics"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/runner"
	"starvation/internal/units"
)

// PopulationConfig describes a population-scale starvation experiment: N
// flows (typically a mixed-CCA, mixed-RTT population) contending across a
// topology, evaluated with the population starvation statistics instead of
// the paper's pairwise two-flow ratio.
type PopulationConfig struct {
	// Flows is the population (required, non-empty).
	Flows []network.FlowSpec
	// Links is the topology; nil selects the legacy single bottleneck
	// built from Rate/BufferBytes.
	Links      []network.LinkSpec
	Bottleneck int
	// Rate and BufferBytes configure the single bottleneck when Links is
	// nil (ignored otherwise).
	Rate        units.Rate
	BufferBytes int
	// Seed selects the realization.
	Seed int64
	// Duration is the emulated run length (required, > 0).
	Duration time.Duration
	// Epsilon is the starvation threshold (<= 0 selects
	// metrics.DefaultStarvationEpsilon).
	Epsilon float64
	// Guard, Probe and Ctx pass through to network.Config.
	Guard *guard.Options
	Probe obs.Probe
	Ctx   context.Context
	// Telemetry passes through to network.Config.Telemetry, enabling the
	// flight recorder (windowed series + online episode detection) on the
	// population run.
	Telemetry *network.TelemetryConfig
	// Session, when non-nil, runs the realization through a reusable run
	// context that recycles the network's arenas across runs instead of
	// rebuilding them — the sweep/daemon hot path. The realization is
	// bit-identical with or without a session. Sessions are single-owner:
	// never share one across goroutines (PopulationSweep gives each
	// worker its own).
	Session *network.Session
}

// PopulationResult is one realization of a population experiment.
type PopulationResult struct {
	Seed  int64
	Net   *network.Result
	Stats metrics.PopulationStats
}

// Render returns exactly the text the starvesim CLI prints for this
// result: the population statistics (only for small populations — large
// ones already embed them in the network table) followed by the network
// result. The experiment service stores this rendering as the job
// artifact, which is what makes server-vs-CLI byte parity checkable with
// a plain diff.
func (r *PopulationResult) Render() string {
	var b strings.Builder
	if len(r.Net.Flows) <= network.CompactFlowThreshold {
		b.WriteString(r.Stats.String())
	}
	b.WriteString(r.Net.String())
	b.WriteString("\n")
	return b.String()
}

// networkConfig assembles the network.Config one realization runs under.
func (cfg PopulationConfig) networkConfig() network.Config {
	ncfg := network.Config{
		Links:      cfg.Links,
		Bottleneck: cfg.Bottleneck,
		Seed:       cfg.Seed,
		Guard:      cfg.Guard,
		Probe:      cfg.Probe,
		Ctx:        cfg.Ctx,
		Telemetry:  cfg.Telemetry,
	}
	if cfg.Links == nil {
		ncfg.Rate = cfg.Rate
		ncfg.BufferBytes = cfg.BufferBytes
	}
	return ncfg
}

// Validate reports the first problem with the configuration, with exactly
// the message RunPopulation would fail with — the single source of the
// error strings the CLI exits 2 on and the experiment service returns as
// HTTP 400. It assembles (and discards) the network, so link and flow
// specs are checked as deeply as a real run would; callers validating
// ahead of execution must still rebuild fresh flow specs for the run
// itself, since specs carry stateful CCA instances.
func (cfg PopulationConfig) Validate() error {
	if len(cfg.Flows) == 0 {
		return fmt.Errorf("population: no flows")
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("population: duration %v not positive", cfg.Duration)
	}
	if _, err := network.NewChecked(cfg.networkConfig(), cfg.Flows...); err != nil {
		return fmt.Errorf("population: %w", err)
	}
	return nil
}

// RunPopulation runs one realization and computes its population
// starvation statistics.
func RunPopulation(cfg PopulationConfig) (*PopulationResult, error) {
	if len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("population: no flows")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("population: duration %v not positive", cfg.Duration)
	}
	var res *network.Result
	if cfg.Session != nil {
		var err error
		res, err = cfg.Session.Run(cfg.networkConfig(), cfg.Duration, cfg.Flows...)
		if err != nil {
			return nil, fmt.Errorf("population: %w", err)
		}
	} else {
		n, err := network.NewChecked(cfg.networkConfig(), cfg.Flows...)
		if err != nil {
			return nil, fmt.Errorf("population: %w", err)
		}
		res = n.Run(cfg.Duration)
	}
	res.Epsilon = cfg.Epsilon
	return &PopulationResult{Seed: cfg.Seed, Net: res, Stats: res.Population(cfg.Epsilon)}, nil
}

// PopulationSweep runs the experiment across seeds on a bounded worker
// pool (jobs = 0 selects GOMAXPROCS) and returns results indexed like
// seeds. rebuild must return a fresh PopulationConfig per seed — flow
// specs carry stateful CCA instances and jitter policies, so realizations
// cannot share them. Each worker runs its realizations through its own
// recycled network.Session (a Session set by rebuild is overridden), so
// the sweep rebuilds each distinct topology once per worker, not once per
// seed; results are bit-identical to fresh-network runs at any jobs value.
func PopulationSweep(ctx context.Context, seeds []int64, jobs int, rebuild func(seed int64) (PopulationConfig, error)) ([]*PopulationResult, error) {
	results := make([]*PopulationResult, len(seeds))
	sessions := make([]*network.Session, runner.Workers(jobs, len(seeds)))
	err := runner.ForEachWorker(ctx, jobs, len(seeds), func(ctx context.Context, w, i int) error {
		if sessions[w] == nil {
			sessions[w] = network.NewSession()
		}
		cfg, err := rebuild(seeds[i])
		if err != nil {
			return err
		}
		cfg.Seed = seeds[i]
		cfg.Ctx = ctx
		cfg.Session = sessions[w]
		results[i], err = RunPopulation(cfg)
		return err
	})
	return results, err
}
