package core

import (
	"context"
	"fmt"
	"time"

	"starvation/internal/guard"
	"starvation/internal/metrics"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/runner"
	"starvation/internal/units"
)

// PopulationConfig describes a population-scale starvation experiment: N
// flows (typically a mixed-CCA, mixed-RTT population) contending across a
// topology, evaluated with the population starvation statistics instead of
// the paper's pairwise two-flow ratio.
type PopulationConfig struct {
	// Flows is the population (required, non-empty).
	Flows []network.FlowSpec
	// Links is the topology; nil selects the legacy single bottleneck
	// built from Rate/BufferBytes.
	Links      []network.LinkSpec
	Bottleneck int
	// Rate and BufferBytes configure the single bottleneck when Links is
	// nil (ignored otherwise).
	Rate        units.Rate
	BufferBytes int
	// Seed selects the realization.
	Seed int64
	// Duration is the emulated run length (required, > 0).
	Duration time.Duration
	// Epsilon is the starvation threshold (<= 0 selects
	// metrics.DefaultStarvationEpsilon).
	Epsilon float64
	// Guard, Probe and Ctx pass through to network.Config.
	Guard *guard.Options
	Probe obs.Probe
	Ctx   context.Context
	// Telemetry passes through to network.Config.Telemetry, enabling the
	// flight recorder (windowed series + online episode detection) on the
	// population run.
	Telemetry *network.TelemetryConfig
}

// PopulationResult is one realization of a population experiment.
type PopulationResult struct {
	Seed  int64
	Net   *network.Result
	Stats metrics.PopulationStats
}

// RunPopulation runs one realization and computes its population
// starvation statistics.
func RunPopulation(cfg PopulationConfig) (*PopulationResult, error) {
	if len(cfg.Flows) == 0 {
		return nil, fmt.Errorf("population: no flows")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("population: duration %v not positive", cfg.Duration)
	}
	ncfg := network.Config{
		Links:      cfg.Links,
		Bottleneck: cfg.Bottleneck,
		Seed:       cfg.Seed,
		Guard:      cfg.Guard,
		Probe:      cfg.Probe,
		Ctx:        cfg.Ctx,
		Telemetry:  cfg.Telemetry,
	}
	if cfg.Links == nil {
		ncfg.Rate = cfg.Rate
		ncfg.BufferBytes = cfg.BufferBytes
	}
	n, err := network.NewChecked(ncfg, cfg.Flows...)
	if err != nil {
		return nil, fmt.Errorf("population: %w", err)
	}
	res := n.Run(cfg.Duration)
	res.Epsilon = cfg.Epsilon
	return &PopulationResult{Seed: cfg.Seed, Net: res, Stats: res.Population(cfg.Epsilon)}, nil
}

// PopulationSweep runs the experiment across seeds on a bounded worker
// pool (jobs = 0 selects GOMAXPROCS) and returns results indexed like
// seeds. rebuild must return a fresh PopulationConfig per seed — flow
// specs carry stateful CCA instances and jitter policies, so realizations
// cannot share them.
func PopulationSweep(ctx context.Context, seeds []int64, jobs int, rebuild func(seed int64) (PopulationConfig, error)) ([]*PopulationResult, error) {
	results := make([]*PopulationResult, len(seeds))
	err := runner.ForEach(ctx, jobs, len(seeds), func(ctx context.Context, i int) error {
		cfg, err := rebuild(seeds[i])
		if err != nil {
			return err
		}
		cfg.Seed = seeds[i]
		cfg.Ctx = ctx
		results[i], err = RunPopulation(cfg)
		return err
	})
	return results, err
}
