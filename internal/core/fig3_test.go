package core

import (
	"math/rand"
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/bbr"
	"starvation/internal/cca/copa"
	"starvation/internal/cca/fast"
	"starvation/internal/cca/vegas"
	"starvation/internal/cca/vivace"
	"starvation/internal/units"
)

// These tests verify the Figure 3 rate-delay equilibria: each CCA's
// measured [dmin(C), dmax(C)] on ideal paths must match the paper's
// closed-form characterization. Rates are kept moderate so the tests stay
// fast; cmd/figures runs the full 0.1–100 Mbit/s sweep.

const fig3Rm = 100 * time.Millisecond

func fig3Opts() MeasureOpts {
	return MeasureOpts{Duration: 30 * time.Second}
}

func TestFig3Vegas(t *testing.T) {
	for _, c := range []units.Rate{units.Mbps(6), units.Mbps(48)} {
		conv := MeasureConvergence(func() cca.Algorithm {
			return vegas.New(vegas.Config{})
		}, c, fig3Rm, fig3Opts())
		// Equilibrium RTT in [Rm + α/C, Rm + β/C] with α=3, β=5 packets,
		// with a packet of slack for measurement granularity.
		lo := VegasEquilibriumRTT(c, fig3Rm, 1, 2.5, 1500)
		hi := VegasEquilibriumRTT(c, fig3Rm, 1, 6.5, 1500)
		if conv.DMin < lo || conv.DMax > hi {
			t.Errorf("C=%v: measured [%v, %v], want within [%v, %v]",
				c, conv.DMin, conv.DMax, lo, hi)
		}
		if conv.Efficiency() < 0.95 {
			t.Errorf("C=%v: efficiency %.3f, want >= 0.95", c, conv.Efficiency())
		}
		// Vegas's hallmark: δ(C) shrinks toward zero (a couple of packet
		// times at most).
		if conv.Delta > 3*c.TxTime(1500) {
			t.Errorf("C=%v: δ = %v, want <= 3 packet times", c, conv.Delta)
		}
	}
}

func TestFig3Fast(t *testing.T) {
	c := units.Mbps(24)
	conv := MeasureConvergence(func() cca.Algorithm {
		return fast.New(fast.Config{})
	}, c, fig3Rm, fig3Opts())
	// FAST holds α=4 packets: RTT = Rm + 4·pkt/C, essentially flat.
	want := VegasEquilibriumRTT(c, fig3Rm, 1, 4, 1500)
	slack := 3 * c.TxTime(1500)
	if conv.DMax > want+slack || conv.DMin < fig3Rm {
		t.Errorf("measured [%v, %v], want ~%v", conv.DMin, conv.DMax, want)
	}
	if conv.Efficiency() < 0.95 {
		t.Errorf("efficiency %.3f", conv.Efficiency())
	}
}

func TestFig3Copa(t *testing.T) {
	c := units.Mbps(24)
	conv := MeasureConvergence(func() cca.Algorithm {
		return copa.New(copa.Config{})
	}, c, fig3Rm, fig3Opts())
	// Copa targets 1/δ = 2 packets with oscillation of a few packet
	// times: the band must sit just above Rm and be narrow.
	if conv.DMin < fig3Rm {
		t.Errorf("dmin %v below Rm", conv.DMin)
	}
	if conv.DMax > fig3Rm+10*c.TxTime(1500) {
		t.Errorf("dmax %v too far above Rm (queue > 10 pkts)", conv.DMax)
	}
	if conv.Efficiency() < 0.9 {
		t.Errorf("efficiency %.3f, want >= 0.9", conv.Efficiency())
	}
}

func TestFig3BBRPacingMode(t *testing.T) {
	c := units.Mbps(24)
	conv := MeasureConvergence(func() cca.Algorithm {
		return bbr.New(bbr.Config{Rng: rand.New(rand.NewSource(5))})
	}, c, fig3Rm, fig3Opts())
	// Pacing-limited BBR on a clean path: delay in [Rm, ~1.25·Rm] (probe
	// phases), full utilization.
	lo, hi := BBRPacingDelayRange(fig3Rm)
	slack := 10 * time.Millisecond
	if conv.DMin < lo-time.Millisecond {
		t.Errorf("dmin %v below Rm", conv.DMin)
	}
	if conv.DMax > hi+slack {
		t.Errorf("dmax %v above 1.25·Rm (+slack)", conv.DMax)
	}
	if conv.Efficiency() < 0.9 {
		t.Errorf("efficiency %.3f", conv.Efficiency())
	}
}

func TestFig3Vivace(t *testing.T) {
	c := units.Mbps(24)
	conv := MeasureConvergence(func() cca.Algorithm {
		return vivace.New(vivace.Config{Rng: rand.New(rand.NewSource(5))})
	}, c, fig3Rm, fig3Opts())
	// Vivace's equilibrium RTT sits in [Rm, ~1.05·Rm]: the latency-
	// gradient penalty drains any standing queue, so the *typical* RTT is
	// pinned at Rm. Confidence-amplified steps overshoot capacity for a
	// probe pair every few seconds before the utility slams them back, so
	// the instantaneous max sees brief bounded excursions; we check the
	// steady mean against the band and bound the excursions separately.
	lo, hi := VivaceDelayRange(fig3Rm)
	if conv.DMin < lo-time.Millisecond {
		t.Errorf("dmin %v below Rm", conv.DMin)
	}
	if conv.SteadyMeanRTT > hi+2*time.Millisecond {
		t.Errorf("steady mean RTT %v, want within [%v, %v]", conv.SteadyMeanRTT, lo, hi)
	}
	if conv.DMax > fig3Rm+60*time.Millisecond {
		t.Errorf("probe excursions unbounded: dmax %v", conv.DMax)
	}
	if conv.Efficiency() < 0.8 {
		t.Errorf("efficiency %.3f, want >= 0.8", conv.Efficiency())
	}
}

func TestDeltaShrinksWithRateVegas(t *testing.T) {
	// The Fig. 2/3 shape: for the Vegas family both dmax(C) and δ(C)
	// decrease in C.
	sweep := RateDelaySweep("vegas", func() cca.Algorithm {
		return vegas.New(vegas.Config{})
	}, fig3Rm, []units.Rate{units.Mbps(2), units.Mbps(8), units.Mbps(32)}, fig3Opts())
	for i := 1; i < len(sweep.Points); i++ {
		if sweep.Points[i].DMax > sweep.Points[i-1].DMax {
			t.Errorf("dmax not decreasing: %v then %v",
				sweep.Points[i-1].DMax, sweep.Points[i].DMax)
		}
	}
	if dm := sweep.DeltaMax(units.Mbps(1)); dm > 8*time.Millisecond {
		t.Errorf("δmax = %v, want small", dm)
	}
}

func TestPigeonholeFindsCollidingPair(t *testing.T) {
	res := PigeonholeSearch(func() cca.Algorithm {
		return vegas.New(vegas.Config{})
	}, 50*time.Millisecond, 4, 0.8, 5*time.Millisecond,
		units.Mbps(4), 6, MeasureOpts{Duration: 20 * time.Second})
	t.Logf("%s", res)
	if !res.Found {
		t.Fatal("no colliding pair found for Vegas (guaranteed by Thm 1 step 1)")
	}
	if ratio := float64(res.C2) / float64(res.C1); ratio < 4/0.8 {
		t.Errorf("C2/C1 = %.1f, want >= s/f = 5", ratio)
	}
	gap := res.Conv1.DMax - res.Conv2.DMax
	if gap < 0 {
		gap = -gap
	}
	if gap >= res.Epsilon {
		t.Errorf("delay gap %v not within ε=%v", gap, res.Epsilon)
	}
}
