package core

import (
	"context"
	"fmt"
	"time"

	"starvation/internal/cca"
	"starvation/internal/network"
	"starvation/internal/trace"
	"starvation/internal/units"
)

// StrongModelSpec configures the Theorem 3 construction (Appendix B): in
// the "strong" model the adversary may vary the link rate arbitrarily, so
// it can impose ANY queueing-delay trajectory. The proof builds a sequence
// of single-flow traces, each the previous one's delay lowered by D
// (clamped at zero), and shows that either two consecutive traces already
// differ in throughput by a factor s — in which case running both flows on
// one queue with a D-bounded per-flow delay element starves one — or the
// delay reaches zero and f-efficiency forces the throughput toward the
// (unbounded) link rate, so somewhere along the way the factor-s gap must
// have appeared.
type StrongModelSpec struct {
	// Make builds the CCA under test (nil Convergence semantics as in
	// EmulationSpec; the strong model does not restart state, so only
	// Make(nil) is used).
	Make func(conv *Convergence) cca.Algorithm
	// Rm is the propagation delay.
	Rm time.Duration
	// Lambda is the arbitrary starting rate λ of the proof.
	Lambda units.Rate
	// D is the per-step delay reduction (the two-flow element's bound).
	D time.Duration
	// S is the throughput ratio sought.
	S float64
	// Duration of each emulated trace (default 20 s).
	Duration time.Duration
	// MSS (default 1500).
	MSS int
	// BigLinkFactor scales the emulation link so its own queueing is
	// negligible (default 50× λ).
	BigLinkFactor float64
	// MaxSteps bounds the iteration (default 12).
	MaxSteps int
	// Ctx, when non-nil, cancels the construction's emulations at
	// run-tick granularity.
	Ctx context.Context
}

// StrongModelStep records one trace of the sequence.
type StrongModelStep struct {
	// Index is the step number (0 = the ideal-path run at rate λ).
	Index int
	// MaxDelay is the max RTT of this trace.
	MaxDelay time.Duration
	// Throughput achieved under this delay trajectory.
	Throughput units.Rate
}

// StrongModelResult is the Theorem 3 outcome.
type StrongModelResult struct {
	Steps []StrongModelStep
	// FoundPair reports whether two consecutive traces differ by ≥ S.
	FoundPair bool
	// PairIndex is the first index i with x_{i+1}/x_i ≥ S.
	PairIndex int
	// Ratio is the throughput ratio achieved at the pair.
	Ratio float64
}

// StrongModelConstruction executes the Appendix B procedure. Step 0 runs
// the CCA on an ideal path of rate λ and records its delay trajectory
// d₀(t) with bound D₀ = max d₀. Step k emulates the queueing-delay
// trajectory max(0, d_{k-1}(t) − (Rm+D·k)) + Rm on a link large enough
// that real queueing is negligible, so the adversarial delay element
// produces the delays alone. A delay-bounding CCA must raise its
// throughput as its observed delays drop; by ⌈(D₀−Rm)/D⌉ steps the delay
// floor is reached, so some consecutive pair's throughputs differ by ≥ s.
func StrongModelConstruction(spec StrongModelSpec) *StrongModelResult {
	if spec.Duration <= 0 {
		spec.Duration = 20 * time.Second
	}
	if spec.MSS <= 0 {
		spec.MSS = 1500
	}
	if spec.BigLinkFactor <= 1 {
		spec.BigLinkFactor = 50
	}
	if spec.MaxSteps <= 0 {
		spec.MaxSteps = 12
	}
	if spec.S <= 1 {
		spec.S = 2
	}

	res := &StrongModelResult{}

	// Step 0: ideal path at rate λ.
	conv := MeasureConvergence(func() cca.Algorithm { return spec.Make(nil) },
		spec.Lambda, spec.Rm, MeasureOpts{Duration: spec.Duration, MSS: spec.MSS, Ctx: spec.Ctx})
	prevTrace := conv.RTT
	prevThpt := throughputOfTrace(conv)
	res.Steps = append(res.Steps, StrongModelStep{
		Index: 0, MaxDelay: conv.DMax, Throughput: prevThpt,
	})

	big := units.Rate(float64(spec.Lambda) * spec.BigLinkFactor)
	for k := 1; k <= spec.MaxSteps; k++ {
		// Target delay: previous trajectory lowered by k·D, floored at Rm.
		reduction := time.Duration(k) * spec.D
		target := &trace.Series{Name: fmt.Sprintf("strong_step%d", k)}
		floorHit := true
		for _, p := range prevTrace.Points {
			v := p.V - reduction.Seconds()
			if v < spec.Rm.Seconds() {
				v = spec.Rm.Seconds()
			} else {
				floorHit = false
			}
			target.Add(p.T, v)
		}
		shaper := &RTTShaper{Target: target, D: time.Hour /* strong model: unbounded */}
		n := network.New(
			network.Config{Rate: big, Seed: 1, Ctx: spec.Ctx},
			network.FlowSpec{
				Name: "strong", Alg: spec.Make(nil), Rm: spec.Rm,
				MSS: spec.MSS, FwdJitter: shaper,
			},
		)
		run := n.Run(spec.Duration)
		thpt := run.Flows[0].Stat.SteadyThpt
		lo, hi, _ := run.Flows[0].RTT.MinMax(spec.Duration/2, spec.Duration)
		_ = lo
		res.Steps = append(res.Steps, StrongModelStep{
			Index:      k,
			MaxDelay:   time.Duration(hi * float64(time.Second)),
			Throughput: thpt,
		})
		if prevThpt > 0 && float64(thpt)/float64(prevThpt) >= spec.S {
			res.FoundPair = true
			res.PairIndex = k - 1
			res.Ratio = float64(thpt) / float64(prevThpt)
			return res
		}
		prevThpt = thpt
		if floorHit {
			break // delay fully flattened: f-efficiency takes over
		}
	}
	return res
}

func throughputOfTrace(conv *Convergence) units.Rate {
	return conv.Throughput
}

// String summarizes the construction.
func (r *StrongModelResult) String() string {
	s := "strong-model (Thm 3) steps:\n"
	for _, st := range r.Steps {
		s += fmt.Sprintf("  step %d: maxDelay=%v thpt=%v\n",
			st.Index, st.MaxDelay.Round(time.Millisecond), st.Throughput)
	}
	if r.FoundPair {
		s += fmt.Sprintf("  pair at step %d: ratio %.2f\n", r.PairIndex, r.Ratio)
	}
	return s
}
