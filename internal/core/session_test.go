package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/reno"
	"starvation/internal/cca/vegas"
	"starvation/internal/network"
	"starvation/internal/units"
)

// TestMeasureConvergenceSessionParity pins that a convergence measurement
// through a reused session equals a fresh-network measurement in every
// reported field, across repeated runs with varying parameters.
func TestMeasureConvergenceSessionParity(t *testing.T) {
	mk := func() cca.Algorithm { return vegas.New(vegas.Config{}) }
	s := network.NewSession()
	for _, p := range []struct {
		c  units.Rate
		rm time.Duration
	}{
		{units.Mbps(12), 60 * time.Millisecond},
		{units.Mbps(48), 20 * time.Millisecond},
		{units.Mbps(12), 60 * time.Millisecond}, // back to the first point
	} {
		opts := MeasureOpts{Duration: 8 * time.Second}
		fresh := MeasureConvergence(mk, p.c, p.rm, opts)
		opts.Session = s
		reused := MeasureConvergence(mk, p.c, p.rm, opts)
		if !reflect.DeepEqual(reused, fresh) {
			t.Errorf("C=%v Rm=%v: session measurement diverged:\n got %+v\nwant %+v",
				p.c, p.rm, reused, fresh)
		}
	}
}

// TestPopulationSweepSessionParity pins that the seed sweep — whose
// workers recycle networks through per-worker sessions — reproduces
// fresh single-realization runs exactly, including the rendered artifact
// text the service's byte-parity contract depends on.
func TestPopulationSweepSessionParity(t *testing.T) {
	rebuild := func(seed int64) (PopulationConfig, error) {
		mkFlows := func() []network.FlowSpec {
			return []network.FlowSpec{
				{Name: "v0", Alg: vegas.New(vegas.Config{}), Rm: 30 * time.Millisecond},
				{Name: "v1", Alg: vegas.New(vegas.Config{}), Rm: 60 * time.Millisecond},
				{Name: "r0", Alg: reno.New(reno.Config{}), Rm: 40 * time.Millisecond},
			}
		}
		return PopulationConfig{
			Flows:       mkFlows(),
			Rate:        units.Mbps(24),
			BufferBytes: 64 * 1500,
			Duration:    3 * time.Second,
		}, nil
	}
	seeds := []int64{1, 4, 7, 11}
	swept, err := PopulationSweep(context.Background(), seeds, 2, rebuild)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		cfg, _ := rebuild(seed)
		cfg.Seed = seed
		fresh, err := RunPopulation(cfg) // no session: fresh network
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(swept[i].Stats, fresh.Stats) {
			t.Errorf("seed %d: stats diverged:\n got %+v\nwant %+v", seed, swept[i].Stats, fresh.Stats)
		}
		if got, want := swept[i].Render(), fresh.Render(); got != want {
			t.Errorf("seed %d: rendered artifact diverged:\n got %q\nwant %q", seed, got, want)
		}
	}
}
