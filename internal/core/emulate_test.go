package core

import (
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/vegas"
	"starvation/internal/units"
)

// vegasMake builds Vegas flows for the Theorem 1 construction: fresh for
// probe runs, or restarted at the converged state. The converged internal
// state includes both the window and the learned baseRTT — the proof
// initializes "the internal state of the two flows to the states of the
// corresponding flow in Step 2", and the paper notes the argument works
// even with oracular knowledge of Rm.
func vegasMake(conv *Convergence) cca.Algorithm {
	if conv == nil {
		return vegas.New(vegas.Config{})
	}
	v := vegas.New(vegas.Config{BaseRTT: conv.Rm})
	v.SetCwndPkts(conv.FinalCwndPkts)
	return v
}

// checkEmulation asserts the Theorem 1 invariants: the preconditions hold,
// the achieved ratio demonstrates starvation, the link stays efficient
// (both flows at their single-flow rates), and the adversary's clamping
// error stays far below the delay bound D (clamp *frequency* may be high:
// packet-granular ack-clock beats cause ~ms-scale standing waves the fluid
// proof does not model).
func checkEmulation(t *testing.T, res *EmulationResult, wantRatio float64, d time.Duration) {
	t.Helper()
	checkEmulationUtil(t, res, wantRatio, d, 0.9)
}

// checkEmulationUtil is checkEmulation with an explicit utilization floor:
// the theorem's conclusion is the ratio, and how much of the link the fast
// flow holds under emulation clamping varies by CCA (LEDBAT's clamped flow
// under-shoots harder than Vegas's).
func checkEmulationUtil(t *testing.T, res *EmulationResult, wantRatio float64, d time.Duration, minUtil float64) {
	t.Helper()
	if !res.PreconditionsHold {
		t.Errorf("Theorem 1 preconditions do not hold: δmax=%v ε=%v gap=%v",
			res.DeltaMax, res.Epsilon, res.DelayGap)
	}
	if res.Ratio < wantRatio {
		t.Errorf("throughput ratio = %.1f, want >= %.1f (starvation)", res.Ratio, wantRatio)
	}
	if u := res.TwoFlow.Utilization(); u < minUtil {
		t.Errorf("utilization = %.3f, want >= %.2f", u, minUtil)
	}
	maxErr := d / 4
	for i, sh := range []*RTTShaper{res.Shaper1, res.Shaper2} {
		if sh.MaxNegative > maxErr {
			t.Errorf("flow%d max negative clamp %v, want <= %v", i+1, sh.MaxNegative, maxErr)
		}
		if sh.MaxShortfall > maxErr {
			t.Errorf("flow%d max shortfall %v, want <= %v", i+1, sh.MaxShortfall, maxErr)
		}
	}
}

func TestTheorem1VegasStarvation(t *testing.T) {
	// Vegas's dmax(C) = Rm + α/C is decreasing, so the pigeonhole collision
	// (step 1) lands at high rates where α/C1 and α/C2 are both within
	// D/2 of each other: 12 and 384 Mbit/s give 5 ms vs 0.16 ms of queueing.
	res := EmulateTwoFlow(EmulationSpec{
		Make:     vegasMake,
		Rm:       50 * time.Millisecond,
		C1:       units.Mbps(12),
		C2:       units.Mbps(384), // factor 32 apart: s=25.6 at f=0.8
		D:        20 * time.Millisecond,
		Measure:  MeasureOpts{Duration: 30 * time.Second},
		Duration: 30 * time.Second,
	})
	t.Logf("\n%s", res)
	checkEmulation(t, res, 10, 20*time.Millisecond)
}

func TestTheorem1VegasConstantTargets(t *testing.T) {
	res := EmulateTwoFlow(EmulationSpec{
		Make:            vegasMake,
		Rm:              50 * time.Millisecond,
		C1:              units.Mbps(12),
		C2:              units.Mbps(384),
		D:               20 * time.Millisecond,
		ConstantTargets: true,
		Measure:         MeasureOpts{Duration: 30 * time.Second},
		Duration:        30 * time.Second,
	})
	t.Logf("\n%s", res)
	checkEmulation(t, res, 15, 20*time.Millisecond)
	// With constant targets the starved flow is pinned exactly: its
	// steady throughput must match its single-flow throughput on C1.
	slow := res.TwoFlow.Flows[0].Stat.SteadyThpt
	if ratio := float64(slow) / float64(res.Conv1.Throughput); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("starved flow at %v vs single-flow %v (ratio %.2f), want within 10%%",
			slow, res.Conv1.Throughput, ratio)
	}
}

func TestTheorem2Underutilization(t *testing.T) {
	res := UnderutilizationConstruction(UnderutilizationSpec{
		Make:       vegasMake,
		Rm:         50 * time.Millisecond,
		C:          units.Mbps(12),
		Multiplier: 50,
		Measure:    MeasureOpts{Duration: 20 * time.Second},
		Duration:   20 * time.Second,
	})
	t.Logf("emulated C=%v on C'=%v: utilization %.4f (D=%v)",
		res.Conv.C, res.BigLink, res.Utilization, res.D)
	// The CCA should send at ≈ C although the link is 50× bigger.
	if res.Utilization > 0.05 {
		t.Errorf("utilization = %.4f, want <= 0.05 (arbitrary underutilization)", res.Utilization)
	}
	if res.Utilization < 0.005 {
		t.Errorf("utilization = %.4f, suspiciously low: flow should still run at ~C/C' = 0.02", res.Utilization)
	}
}
