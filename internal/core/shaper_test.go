package core

import (
	"testing"
	"time"

	"starvation/internal/trace"
)

func targetSeries(vals map[time.Duration]float64) *trace.Series {
	s := &trace.Series{}
	// Points must be added in time order.
	var ts []time.Duration
	for t := range vals {
		ts = append(ts, t)
	}
	for i := 0; i < len(ts); i++ {
		for j := i + 1; j < len(ts); j++ {
			if ts[j] < ts[i] {
				ts[i], ts[j] = ts[j], ts[i]
			}
		}
	}
	for _, t := range ts {
		s.Add(t, vals[t])
	}
	return s
}

func TestShaperHitsTargetExactly(t *testing.T) {
	sh := &RTTShaper{
		Target: targetSeries(map[time.Duration]float64{0: 0.100}),
		D:      20 * time.Millisecond,
	}
	// A packet sent at 1s that has accumulated 90ms needs 10ms more.
	got := sh.DelayPacket(1*time.Second+90*time.Millisecond, 1*time.Second, 0)
	if got != 10*time.Millisecond {
		t.Errorf("delay = %v, want 10ms", got)
	}
	if sh.ClampedLow != 0 || sh.ClampedHigh != 0 {
		t.Error("in-range delay counted as clamp")
	}
}

func TestShaperClampsLow(t *testing.T) {
	sh := &RTTShaper{
		Target: targetSeries(map[time.Duration]float64{0: 0.100}),
		D:      20 * time.Millisecond,
	}
	// Accumulated 120ms > target 100ms: cannot subtract delay.
	got := sh.DelayPacket(1*time.Second+120*time.Millisecond, 1*time.Second, 0)
	if got != 0 {
		t.Errorf("delay = %v, want clamp to 0", got)
	}
	if sh.ClampedLow != 1 {
		t.Errorf("ClampedLow = %d, want 1", sh.ClampedLow)
	}
	if sh.MaxNegative != 20*time.Millisecond {
		t.Errorf("MaxNegative = %v, want 20ms", sh.MaxNegative)
	}
}

func TestShaperClampsHigh(t *testing.T) {
	sh := &RTTShaper{
		Target: targetSeries(map[time.Duration]float64{0: 0.100}),
		D:      20 * time.Millisecond,
	}
	// Accumulated 50ms: needs 50ms > D.
	got := sh.DelayPacket(1*time.Second+50*time.Millisecond, 1*time.Second, 0)
	if got != 20*time.Millisecond {
		t.Errorf("delay = %v, want clamp to D", got)
	}
	if sh.ClampedHigh != 1 || sh.MaxShortfall != 30*time.Millisecond {
		t.Errorf("high-clamp stats: %d, %v", sh.ClampedHigh, sh.MaxShortfall)
	}
}

func TestShaperSkipUntilSuppressesStats(t *testing.T) {
	sh := &RTTShaper{
		Target:    targetSeries(map[time.Duration]float64{0: 0.100}),
		D:         20 * time.Millisecond,
		SkipUntil: 2 * time.Second,
	}
	sh.DelayPacket(1*time.Second+120*time.Millisecond, 1*time.Second, 0)
	if sh.ClampedLow != 0 {
		t.Error("clamp during SkipUntil counted")
	}
	sh.DelayPacket(3*time.Second+120*time.Millisecond, 3*time.Second, 0)
	if sh.ClampedLow != 1 {
		t.Error("clamp after SkipUntil not counted")
	}
	if sh.ViolationFraction() != 0.5 {
		t.Errorf("violation fraction = %v, want 0.5 (1 of 2 applied)", sh.ViolationFraction())
	}
}

func TestShaperTargetIndexedBySendTime(t *testing.T) {
	sh := &RTTShaper{
		Target: targetSeries(map[time.Duration]float64{
			0:               0.100,
			5 * time.Second: 0.200,
		}),
		D: time.Second,
	}
	// Sent before the step: target 100ms.
	if got := sh.DelayPacket(4*time.Second+50*time.Millisecond, 4*time.Second, 0); got != 50*time.Millisecond {
		t.Errorf("pre-step delay = %v, want 50ms", got)
	}
	// Sent after the step: target 200ms, even if it arrives at the box at
	// the same wall time as the previous packet would have.
	if got := sh.DelayPacket(6*time.Second+50*time.Millisecond, 6*time.Second, 0); got != 150*time.Millisecond {
		t.Errorf("post-step delay = %v, want 150ms", got)
	}
}

func TestShaperBound(t *testing.T) {
	sh := &RTTShaper{Target: targetSeries(map[time.Duration]float64{0: 0.1}), D: 7 * time.Millisecond}
	if sh.Bound() != 7*time.Millisecond {
		t.Error("Bound mismatch")
	}
}
