package core

import (
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/vegas"
	"starvation/internal/trace"
	"starvation/internal/units"
)

func TestEstimateConvergenceTime(t *testing.T) {
	s := &trace.Series{}
	// Transient: samples outside the band until 3s, then inside.
	s.Add(0, 0.200)
	s.Add(1*time.Second, 0.150)
	s.Add(3*time.Second, 0.120)
	s.Add(4*time.Second, 0.101)
	s.Add(5*time.Second, 0.102)
	s.Add(6*time.Second, 0.100)
	got := estimateConvergenceTime(s, 100*time.Millisecond, 102*time.Millisecond)
	if got != 3*time.Second {
		t.Errorf("ConvergedAt = %v, want 3s (last out-of-band sample)", got)
	}
}

func TestEstimateConvergenceTimeImmediate(t *testing.T) {
	s := &trace.Series{}
	s.Add(0, 0.101)
	s.Add(time.Second, 0.102)
	got := estimateConvergenceTime(s, 100*time.Millisecond, 102*time.Millisecond)
	if got != 0 {
		t.Errorf("ConvergedAt = %v, want 0 (never left the band)", got)
	}
}

func TestMeasureOptsDefaults(t *testing.T) {
	var o MeasureOpts
	o.fill()
	if o.Duration != 60*time.Second || o.WindowFrac != 0.4 || o.MSS != 1500 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestConvergenceCapturesFinalState(t *testing.T) {
	conv := MeasureConvergence(func() cca.Algorithm {
		return vegas.New(vegas.Config{})
	}, units.Mbps(12), 100*time.Millisecond, MeasureOpts{Duration: 15 * time.Second})
	// Vegas at 12 Mbit/s × ~104ms: ~104 packets plus the α backlog.
	if conv.FinalCwndPkts < 95 || conv.FinalCwndPkts > 115 {
		t.Errorf("FinalCwndPkts = %v, want ~104", conv.FinalCwndPkts)
	}
	if conv.SteadyMeanRTT < conv.DMin || conv.SteadyMeanRTT > conv.DMax {
		t.Errorf("mean %v outside [dmin %v, dmax %v]", conv.SteadyMeanRTT, conv.DMin, conv.DMax)
	}
	if conv.Efficiency() < 0.95 || conv.Efficiency() > 1.05 {
		t.Errorf("efficiency = %v", conv.Efficiency())
	}
	if conv.RTT.Len() == 0 || conv.Rate.Len() == 0 {
		t.Error("trajectories not recorded")
	}
}

func TestSweepCSV(t *testing.T) {
	sw := &Sweep{Name: "x", Rm: 100 * time.Millisecond}
	sw.Points = append(sw.Points, SweepPoint{
		C: units.Mbps(10), DMin: 100 * time.Millisecond,
		DMax: 105 * time.Millisecond, Delta: 5 * time.Millisecond, Efficiency: 0.99,
	})
	var b writerBuffer
	if err := sw.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "rate_mbps,dmin_ms,dmax_ms,delta_ms,efficiency\n10,100.0000,105.0000,5.0000,0.9900\n"
	if string(b) != want {
		t.Errorf("CSV = %q, want %q", string(b), want)
	}
}

type writerBuffer []byte

func (w *writerBuffer) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
