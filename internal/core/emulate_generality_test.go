package core

import (
	"testing"
	"time"

	"starvation/internal/cca"
	"starvation/internal/cca/fast"
	"starvation/internal/cca/ledbat"
	"starvation/internal/units"
)

// Theorem 1 quantifies over ALL deterministic, f-efficient,
// delay-convergent CCAs. These tests run the same construction against the
// other min-filter CCAs, showing nothing in the result is Vegas-specific.

func fastMake(conv *Convergence) cca.Algorithm {
	if conv == nil {
		return fast.New(fast.Config{})
	}
	f := fast.New(fast.Config{BaseRTT: conv.Rm})
	f.SetCwndPkts(conv.FinalCwndPkts)
	return f
}

func ledbatMake(conv *Convergence) cca.Algorithm {
	if conv == nil {
		return ledbat.New(ledbat.Config{Target: 5 * time.Millisecond})
	}
	l := ledbat.New(ledbat.Config{Target: 5 * time.Millisecond, BaseDelayHint: conv.Rm})
	l.SetCwndPkts(conv.FinalCwndPkts)
	return l
}

func TestTheorem1FASTStarvation(t *testing.T) {
	res := EmulateTwoFlow(EmulationSpec{
		Make:            fastMake,
		Rm:              50 * time.Millisecond,
		C1:              units.Mbps(12),
		C2:              units.Mbps(384),
		D:               20 * time.Millisecond,
		ConstantTargets: true,
		Measure:         MeasureOpts{Duration: 25 * time.Second},
		Duration:        25 * time.Second,
	})
	t.Logf("\n%s", res)
	checkEmulationUtil(t, res, 10, 20*time.Millisecond, 0.75)
}

func TestTheorem1LEDBATStarvation(t *testing.T) {
	// LEDBAT holds a constant *time* target (5ms here), so its two
	// converged delay ranges coincide exactly: dmax(C1) ≈ dmax(C2) ≈
	// Rm + 5ms — the pigeonhole collision is trivial and even modest D
	// suffices.
	res := EmulateTwoFlow(EmulationSpec{
		Make:            ledbatMake,
		Rm:              50 * time.Millisecond,
		C1:              units.Mbps(12),
		C2:              units.Mbps(384),
		D:               20 * time.Millisecond,
		ConstantTargets: true,
		Measure:         MeasureOpts{Duration: 25 * time.Second},
		Duration:        25 * time.Second,
	})
	t.Logf("\n%s", res)
	if !res.PreconditionsHold {
		t.Errorf("preconditions: δmax=%v ε=%v gap=%v", res.DeltaMax, res.Epsilon, res.DelayGap)
	}
	if res.Ratio < 10 {
		t.Errorf("ratio = %.1f, want >= 10", res.Ratio)
	}
	// LEDBAT's starved flow lands even below its own single-flow rate
	// (the proof's case 2: not even f-efficient under this adversary), so
	// total utilization is low; the ratio is the theorem's claim.
	if u := res.TwoFlow.Utilization(); u < 0.4 {
		t.Errorf("utilization = %.3f", u)
	}
}
