package core

import (
	"math"
	"testing"
	"time"

	"starvation/internal/units"
)

func TestVegasEquilibriumRTT(t *testing.T) {
	// §4.1's example: α = 4 packets of 1500 bytes. At 96 Mbit/s that is
	// 0.5 ms of queueing; at 960 Mbit/s, 0.05 ms.
	rm := 100 * time.Millisecond
	if got := VegasEquilibriumRTT(units.Mbps(96), rm, 1, 4, 1500); got != rm+500*time.Microsecond {
		t.Errorf("RTT at 96 Mbit/s = %v, want Rm + 0.5ms", got)
	}
	if got := VegasEquilibriumRTT(units.Mbps(960), rm, 1, 4, 1500); got != rm+50*time.Microsecond {
		t.Errorf("RTT at 960 Mbit/s = %v, want Rm + 0.05ms", got)
	}
	// n flows queue n·α packets.
	if got := VegasEquilibriumRTT(units.Mbps(96), rm, 2, 4, 1500); got != rm+time.Millisecond {
		t.Errorf("two-flow RTT = %v, want Rm + 1ms", got)
	}
}

func TestBBRCwndLimitedRTT(t *testing.T) {
	// §5.2: RTT = 2·Rm + n·α/C.
	rm := 40 * time.Millisecond
	got := BBRCwndLimitedRTT(units.Mbps(120), rm, 2, 4, 1500)
	want := 2*rm + time.Duration(2*4*1500*8*1e9/120e6)
	if got != want {
		t.Errorf("BBR cwnd-limited RTT = %v, want %v", got, want)
	}
}

func TestBBRPacingDelayRange(t *testing.T) {
	lo, hi := BBRPacingDelayRange(100 * time.Millisecond)
	if lo != 100*time.Millisecond || hi != 125*time.Millisecond {
		t.Errorf("pacing range = [%v, %v], want [100ms, 125ms]", lo, hi)
	}
}

func TestVivaceDelayRange(t *testing.T) {
	lo, hi := VivaceDelayRange(100 * time.Millisecond)
	if lo != 100*time.Millisecond || hi != 105*time.Millisecond {
		t.Errorf("vivace range = [%v, %v], want [100ms, 105ms]", lo, hi)
	}
}

func TestFigureOfMeritTable63(t *testing.T) {
	// The paper's §6.3 numbers: D=10ms, Rmax−Rm=100ms.
	rm := time.Duration(0)
	rmax := 100 * time.Millisecond
	d := 10 * time.Millisecond

	// Vegas family, Eq. 1: (Rmax−Rm)/D·(1−1/s) = 10·(1−1/2) = 5 for s=2.
	if got := VegasFigureOfMerit(rmax, rm, d, 2); got != 5 {
		t.Errorf("Vegas FoM(s=2) = %v, want 5", got)
	}
	// Exponential, Eq. 2: s^((Rmax−Rm−D)/D) = 2^9 = 512 for s=2
	// ("we can support a range of 2^10 ≈ 10^3" counts the full Rmax/D
	// budget; the closed form subtracts the D of headroom).
	if got := ExponentialFigureOfMerit(rmax, rm, d, 2); got != 512 {
		t.Errorf("Exp FoM(s=2) = %v, want 512", got)
	}
	// s=4: 4^9 ≈ 2.6·10^5, the paper's "with s = 4, that increases to
	// 2^20 ≈ 10^6" order of magnitude.
	if got := ExponentialFigureOfMerit(rmax, rm, d, 4); got != math.Pow(4, 9) {
		t.Errorf("Exp FoM(s=4) = %v, want 4^9", got)
	}
	// The exponential mapping beats the Vegas family by orders of
	// magnitude for every valid parameter set.
	for _, s := range []float64{1.5, 2, 4, 8} {
		v := VegasFigureOfMerit(rmax, rm, d, s)
		e := ExponentialFigureOfMerit(rmax, rm, d, s)
		if e <= v {
			t.Errorf("s=%v: exponential FoM %v not above Vegas %v", s, e, v)
		}
	}
}

func TestFigureOfMeritDegenerate(t *testing.T) {
	if VegasFigureOfMerit(time.Second, 0, 0, 2) != 0 {
		t.Error("zero D must yield 0")
	}
	if ExponentialFigureOfMerit(time.Second, 0, time.Millisecond, 1) != 0 {
		t.Error("s <= 1 must yield 0")
	}
}

func TestExponentialRateDelayMatchesAlgo1(t *testing.T) {
	mu := ExponentialRateDelay(units.Kbps(100), 2, 120*time.Millisecond,
		60*time.Millisecond, 50*time.Millisecond, 10*time.Millisecond)
	// Queueing delay 10ms: μ = μ−·2^((120−10)/10) = 100k·2^11.
	want := 100e3 * math.Pow(2, 11)
	if math.Abs(mu.BitsPerSec()-want)/want > 1e-9 {
		t.Errorf("μ = %v, want %v", mu.BitsPerSec(), want)
	}
}

func TestStarvationThreshold(t *testing.T) {
	if StarvationThreshold(5*time.Millisecond) != 10*time.Millisecond {
		t.Error("threshold must be 2·δmax")
	}
	if RequiredOscillation(10*time.Millisecond) != 5*time.Millisecond {
		t.Error("required oscillation must be D/2")
	}
}

func TestCopaDelayRangeShrinksWithRate(t *testing.T) {
	lo1, hi1 := CopaDelayRange(units.Mbps(1), 100*time.Millisecond, 0.5, 1500)
	lo2, hi2 := CopaDelayRange(units.Mbps(100), 100*time.Millisecond, 0.5, 1500)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("Copa δ(C) must shrink with C: δ(1M)=%v δ(100M)=%v", hi1-lo1, hi2-lo2)
	}
	if lo1 < 100*time.Millisecond {
		t.Error("delay below Rm")
	}
}

func TestLogSpace(t *testing.T) {
	rates := LogSpace(units.Mbps(0.1), units.Mbps(100), 4)
	if len(rates) != 4 {
		t.Fatalf("len = %d", len(rates))
	}
	if math.Abs(rates[0].Mbit()-0.1) > 1e-9 || math.Abs(rates[3].Mbit()-100) > 1e-6 {
		t.Errorf("endpoints = %v, %v", rates[0], rates[3])
	}
	// Geometric spacing: constant ratio.
	r1 := float64(rates[1]) / float64(rates[0])
	r2 := float64(rates[2]) / float64(rates[1])
	if math.Abs(r1-r2) > 1e-6 {
		t.Errorf("ratios differ: %v vs %v", r1, r2)
	}
}
