package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"starvation/internal/network"
	"starvation/internal/runner"
	"starvation/internal/units"
)

// SweepPoint is one column of a rate-delay graph (Figures 2 and 3).
type SweepPoint struct {
	C          units.Rate
	DMin, DMax time.Duration
	Delta      time.Duration
	Efficiency float64
}

// Sweep is a measured rate-delay graph for one CCA.
type Sweep struct {
	Name   string
	Rm     time.Duration
	Points []SweepPoint
}

// LogSpace returns n rates geometrically spaced over [lo, hi] inclusive.
func LogSpace(lo, hi units.Rate, n int) []units.Rate {
	if n < 2 {
		return []units.Rate{lo}
	}
	out := make([]units.Rate, n)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	v := float64(lo)
	for i := range out {
		out[i] = units.Rate(v)
		v *= ratio
	}
	return out
}

// RateDelaySweep measures the equilibrium delay interval of the CCA at each
// link rate, regenerating one panel of Figure 3. Lower rates get longer
// runs so slow flows still converge.
//
// With opts.Jobs > 1 the rate points run in parallel on a bounded worker
// pool. Every point is an independent simulator with its own seed, so
// the sweep is identical — point for point — at any Jobs value; points
// land in the result slice by rate index, never by completion order.
//
// Each worker runs its points through its own recycled network.Session
// (seeded from opts.Session for worker 0 when set), so a sweep pays
// network construction once per worker rather than once per rate point;
// the measured values are unchanged.
func RateDelaySweep(name string, f Factory, rm time.Duration, rates []units.Rate, opts MeasureOpts) *Sweep {
	opts.fill()
	sw := &Sweep{Name: name, Rm: rm, Points: make([]SweepPoint, len(rates))}
	workers := opts.Jobs
	if workers <= 0 {
		workers = 1 // library default stays sequential; CLIs opt in
	}
	sessions := make([]*network.Session, runner.Workers(workers, len(rates)))
	sessions[0] = opts.Session
	// The error is always opts.Ctx's cancellation; the partial sweep is
	// returned as-is and callers observe the cancellation themselves.
	_ = runner.ForEachWorker(opts.Ctx, workers, len(rates), func(ctx context.Context, w, i int) error {
		if sessions[w] == nil {
			// Lazily built: each worker id is served by one goroutine,
			// so the slot is worker-private.
			sessions[w] = network.NewSession()
		}
		c := rates[i]
		o := opts
		o.Ctx = ctx
		o.Session = sessions[w]
		// Ensure the run spans enough packets and RTTs at low rates: at
		// least ~400 packet-times and 200 RTTs.
		pktTime := c.TxTime(opts.MSS)
		if min := 400 * pktTime; o.Duration < min {
			o.Duration = min
		}
		if min := 200 * rm; o.Duration < min {
			o.Duration = min
		}
		conv := MeasureConvergence(f, c, rm, o)
		sw.Points[i] = SweepPoint{
			C:          c,
			DMin:       conv.DMin,
			DMax:       conv.DMax,
			Delta:      conv.Delta,
			Efficiency: conv.Efficiency(),
		}
		return ctx.Err()
	})
	return sw
}

// DeltaMax returns the largest δ(C) over the sweep restricted to rates
// above lambda — the δmax bound of Definition 1(2).
func (s *Sweep) DeltaMax(lambda units.Rate) time.Duration {
	var dm time.Duration
	for _, p := range s.Points {
		if p.C > lambda && p.Delta > dm {
			dm = p.Delta
		}
	}
	return dm
}

// DMaxBound returns the largest dmax(C) over rates above lambda.
func (s *Sweep) DMaxBound(lambda units.Rate) time.Duration {
	var dm time.Duration
	for _, p := range s.Points {
		if p.C > lambda && p.DMax > dm {
			dm = p.DMax
		}
	}
	return dm
}

// WriteCSV emits the sweep as CSV.
func (s *Sweep) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "rate_mbps,dmin_ms,dmax_ms,delta_ms,efficiency\n"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.4g,%.4f,%.4f,%.4f,%.4f\n",
			p.C.Mbit(),
			float64(p.DMin)/1e6, float64(p.DMax)/1e6, float64(p.Delta)/1e6,
			p.Efficiency); err != nil {
			return err
		}
	}
	return nil
}

// String renders the sweep as an aligned table.
func (s *Sweep) String() string {
	out := fmt.Sprintf("%s (Rm=%v)\n%12s %12s %12s %10s %6s\n",
		s.Name, s.Rm, "rate", "dmin", "dmax", "delta", "eff")
	for _, p := range s.Points {
		out += fmt.Sprintf("%12s %12s %12s %10s %6.2f\n",
			p.C, p.DMin.Round(10*time.Microsecond), p.DMax.Round(10*time.Microsecond),
			p.Delta.Round(10*time.Microsecond), p.Efficiency)
	}
	return out
}
