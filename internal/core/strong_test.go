package core

import (
	"testing"
	"time"

	"starvation/internal/units"
)

func TestTheorem3StrongModelVegas(t *testing.T) {
	// Appendix B applied to Vegas: lowering the delay trajectory by D per
	// step must produce a consecutive pair of traces whose throughputs
	// differ by ≥ s — the witness that the strong-model adversary can
	// starve two such flows on one queue.
	res := StrongModelConstruction(StrongModelSpec{
		Make:     vegasMake,
		Rm:       50 * time.Millisecond,
		Lambda:   units.Mbps(4),
		D:        5 * time.Millisecond,
		S:        2,
		Duration: 20 * time.Second,
	})
	t.Logf("\n%s", res)
	if !res.FoundPair {
		t.Fatal("no consecutive pair with ratio >= s; Theorem 3 guarantees one")
	}
	if res.Ratio < 2 {
		t.Errorf("ratio %.2f < s", res.Ratio)
	}
	// Sanity: throughput rises as the imposed delay drops (Vegas infers
	// more headroom from lower delay).
	first := res.Steps[0].Throughput
	last := res.Steps[len(res.Steps)-1].Throughput
	if last <= first {
		t.Errorf("throughput did not rise along the sequence: %v -> %v", first, last)
	}
}

func TestTheorem3DelayFloorReached(t *testing.T) {
	// With a large per-step D, the sequence flattens to the propagation
	// floor within a couple of steps.
	res := StrongModelConstruction(StrongModelSpec{
		Make:     vegasMake,
		Rm:       50 * time.Millisecond,
		Lambda:   units.Mbps(4),
		D:        50 * time.Millisecond,
		S:        1000, // unreachable: force full iteration
		Duration: 15 * time.Second,
		MaxSteps: 4,
	})
	t.Logf("\n%s", res)
	if len(res.Steps) < 2 {
		t.Fatal("sequence did not iterate")
	}
	lastStep := res.Steps[len(res.Steps)-1]
	if lastStep.MaxDelay > 60*time.Millisecond {
		t.Errorf("final max delay %v, want near the 50ms floor", lastStep.MaxDelay)
	}
}
