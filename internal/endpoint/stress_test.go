package endpoint

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"starvation/internal/packet"
	"starvation/internal/sim"
)

// TestQuickTransportUnderJitterAndLoss subjects the transport to the
// combined §3 stressors at once — random per-packet one-way delay (bounded,
// order-preserving as in the model) plus random loss — and checks the
// invariants that every network element downstream relies on:
//
//   - all data is eventually acknowledged (conservation);
//   - the cumulative ACK never regresses and delivered counts are
//     monotone;
//   - RTT samples are never below the true minimum path delay.
func TestQuickTransportUnderJitterAndLoss(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		const (
			oneWay = 20 * time.Millisecond
			maxJit = 15 * time.Millisecond
			mss    = 1500
		)
		alg := &fixedAlg{window: 12 * mss}
		var sn *Sender
		recv := NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { sn.OnAck(a) })

		lastDeliver := time.Duration(0) // no-reorder clamp, as the model requires
		sn = NewSender(s, 0, alg, mss, func(p packet.Packet) {
			if rng.Float64() < 0.08 {
				return // lost
			}
			jit := time.Duration(rng.Int63n(int64(maxJit)))
			at := s.Now() + oneWay + jit
			if at < lastDeliver {
				at = lastDeliver
			}
			lastDeliver = at
			s.At(at, func() { recv.OnPacket(p) })
		})

		lastCum := int64(-1)
		lastDelivered := int64(-1)
		ok := true
		sn.AckTraceHook = func(now, rtt time.Duration, acked int) {
			if rtt > 0 && rtt < oneWay {
				ok = false // impossible RTT
			}
			if sn.AckedBytes < lastCum {
				ok = false
			}
			lastCum = sn.AckedBytes
			if sn.DeliveredBytes < lastDelivered {
				ok = false
			}
			lastDelivered = sn.DeliveredBytes
		}

		s.At(0, sn.Start)
		s.Run(20 * time.Second)
		if !ok {
			return false
		}
		// Conservation: with 8% loss and RTO recovery, everything sent by
		// t=15s must be acked by t=20s.
		return sn.AckedBytes > 0 && sn.AckedBytes >= int64(float64(sn.SentBytes-sn.RetxBytes)*0.8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestAggregatedAcksWithLoss exercises the §5.3 receiver policy combined
// with loss: the burst-released per-packet ACKs must still drive SACK
// recovery.
func TestAggregatedAcksWithLoss(t *testing.T) {
	alg := &fixedAlg{window: 20 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{AggregatePeriod: 25 * time.Millisecond})
	for i := 5; i < 100; i += 10 {
		l.dropSeqs[int64(i*1500)] = true
	}
	l.sim.At(0, l.sender.Start)
	l.sim.Run(5 * time.Second)
	if l.sender.AckedBytes < 100*1500 {
		t.Errorf("acked %d, want >= %d (holes recovered through ACK bursts)",
			l.sender.AckedBytes, 100*1500)
	}
	if l.sender.Timeouts > 2 {
		t.Errorf("timeouts = %d; aggregated SACK bursts should still fast-recover", l.sender.Timeouts)
	}
}

// TestDelayedAcksWithLoss: count-based delayed ACKs (Fig. 7's receiver)
// with drops — the delayed policy still acks out-of-order data immediately,
// so recovery proceeds.
func TestDelayedAcksWithLoss(t *testing.T) {
	alg := &fixedAlg{window: 20 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{DelayCount: 4, DelayTimeout: 50 * time.Millisecond})
	l.dropSeqs[30000] = true
	l.dropSeqs[60000] = true
	l.sim.At(0, l.sender.Start)
	l.sim.Run(3 * time.Second)
	if l.sender.AckedBytes < 60*1500 {
		t.Errorf("acked %d, want progress past both holes", l.sender.AckedBytes)
	}
}
