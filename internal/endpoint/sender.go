// Package endpoint implements the transport endpoints of the emulator: a
// sender that enforces its CCA's window and pacing rate, detects losses via
// duplicate ACKs and a retransmission timeout, and retransmits; and a
// receiver with configurable acknowledgment policies (per-packet, delayed,
// periodic aggregation).
package endpoint

import (
	"time"

	"starvation/internal/cca"
	"starvation/internal/netem"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// Reasonable transport constants; all can be overridden per sender.
const (
	DefaultMSS    = 1500
	DefaultMinRTO = 200 * time.Millisecond
	dupThresh     = 3
)

type segState struct {
	size   int
	sentAt time.Duration
	retx   bool
	lost   bool // marked lost, removed from pipe, awaiting retransmit/ack
	queued bool // sitting in the retransmission queue
	sacked bool // known received (its arrival was echoed), above cumAck
}

// Sender drives one flow: it asks its CCA for the window and pacing rate,
// transmits MSS-sized segments, and reports ACK/loss signals back.
type Sender struct {
	sim  *sim.Simulator
	flow packet.FlowID
	mss  int
	alg  cca.Algorithm
	out  netem.PacketHandler

	// Sequence state.
	nextSeq int64
	cumAck  int64
	pipe    int
	segs    map[int64]*segState
	retxQ   []int64
	// segFree recycles acked segState records: steady-state transmission
	// allocates one record per distinct in-flight segment, not per packet.
	segFree []*segState

	// Recovery state.
	dupAcks       int
	inRecovery    bool
	recoverPoint  int64
	highestSacked int64

	// Pacing.
	nextSend  time.Duration
	sendTimer sim.Handle

	// RTO estimation.
	srtt, rttvar time.Duration
	minRTO       time.Duration
	rtoBackoff   int
	rtoTimer     sim.Handle

	// CCA tick driver.
	tickTimer sim.Handle
	ticker    cca.Ticker

	// Timer callbacks bound once at construction/start: the scheduler is
	// handed these stored func values, never a freshly bound method value,
	// so arming a timer is allocation-free.
	trySendFn func()
	onRTOFn   func()
	onTickFn  func()

	started bool
	stopped bool

	// Stats (exported for metrics).
	AckedBytes     int64
	DeliveredBytes int64
	SentBytes      int64
	RetxBytes      int64
	SentPackets    int64
	RetxPackets    int64
	AcksReceived   int64
	CwndUpdates    int64
	LossEvents     int64
	Timeouts       int64
	LastRTT        time.Duration
	StartedAt      time.Duration
	maxBurst       int
	AckTraceHook   func(now, rtt time.Duration, ackedBytes int)

	// Probe receives EvAckRecv and EvCwndUpdate lifecycle events. Set it
	// before Start; nil (the default) disables emission.
	Probe    obs.Probe
	lastCwnd int
}

// NewSender creates a sender for the given flow. out is the first element
// of the forward path.
func NewSender(s *sim.Simulator, flow packet.FlowID, alg cca.Algorithm, mss int, out netem.PacketHandler) *Sender {
	if mss <= 0 {
		mss = DefaultMSS
	}
	sn := &Sender{
		sim:    s,
		flow:   flow,
		mss:    mss,
		alg:    alg,
		out:    out,
		segs:   make(map[int64]*segState),
		minRTO: DefaultMinRTO,
	}
	sn.trySendFn = sn.trySend
	sn.onRTOFn = sn.onRTO
	return sn
}

// Reset returns the sender to the state NewSender(s, flow, alg, mss, out)
// would produce while keeping the warm buffers that dominate per-run setup
// cost: the segment map's buckets, the segState recycling pool, the
// retransmission queue's capacity, and the bound timer callbacks. The
// caller must reset the shared simulator first — pending timer handles are
// zeroed here, never cancelled, because they went stale with the
// simulator reset. Probe and AckTraceHook are cleared like any other
// per-run wiring; reinstall them before Start.
func (sn *Sender) Reset(alg cca.Algorithm, mss int) {
	if mss <= 0 {
		mss = DefaultMSS
	}
	sn.mss = mss
	sn.alg = alg
	sn.nextSeq, sn.cumAck = 0, 0
	sn.pipe = 0
	for seq, st := range sn.segs {
		delete(sn.segs, seq)
		sn.segFree = append(sn.segFree, st)
	}
	sn.retxQ = sn.retxQ[:0]
	sn.dupAcks = 0
	sn.inRecovery = false
	sn.recoverPoint, sn.highestSacked = 0, 0
	sn.nextSend = 0
	sn.sendTimer, sn.rtoTimer, sn.tickTimer = sim.Handle{}, sim.Handle{}, sim.Handle{}
	sn.srtt, sn.rttvar = 0, 0
	sn.minRTO = DefaultMinRTO
	sn.rtoBackoff = 0
	sn.ticker = nil
	sn.started, sn.stopped = false, false
	sn.AckedBytes, sn.DeliveredBytes, sn.SentBytes, sn.RetxBytes = 0, 0, 0, 0
	sn.SentPackets, sn.RetxPackets, sn.AcksReceived = 0, 0, 0
	sn.CwndUpdates, sn.LossEvents, sn.Timeouts = 0, 0, 0
	sn.LastRTT, sn.StartedAt = 0, 0
	sn.maxBurst = 0
	sn.AckTraceHook = nil
	sn.Probe = nil
	sn.lastCwnd = 0
}

// Algorithm returns the sender's CCA.
func (sn *Sender) Algorithm() cca.Algorithm { return sn.alg }

// Flow returns the flow ID.
func (sn *Sender) Flow() packet.FlowID { return sn.flow }

// MSS returns the segment size.
func (sn *Sender) MSS() int { return sn.mss }

// InFlight returns the outstanding (unacked, not-lost) byte count.
func (sn *Sender) InFlight() int { return sn.pipe }

// Start begins transmission at the current virtual time.
func (sn *Sender) Start() {
	if sn.started {
		return
	}
	sn.started = true
	sn.StartedAt = sn.sim.Now()
	if t, ok := sn.alg.(cca.Ticker); ok {
		sn.armTick(t)
	}
	sn.trySend()
}

// Stop halts transmission (no new segments; pending timers cancelled).
func (sn *Sender) Stop() {
	sn.stopped = true
	sn.sendTimer.Cancel()
	sn.rtoTimer.Cancel()
	sn.tickTimer.Cancel()
}

func (sn *Sender) armTick(t cca.Ticker) {
	// The ticker is assigned unconditionally: a reused sender keeps its
	// bound onTick closure across Reset, but must tick the *current* CCA,
	// not the one from a previous life.
	sn.ticker = t
	if sn.onTickFn == nil {
		sn.onTickFn = sn.onTick
	}
	iv := t.TickInterval()
	if iv <= 0 {
		iv = 10 * time.Millisecond
	}
	sn.tickTimer = sn.sim.After(iv, sn.onTickFn)
}

func (sn *Sender) onTick() {
	if sn.stopped {
		return
	}
	sn.ticker.OnTick(sn.sim.Now())
	sn.armTick(sn.ticker)
	sn.trySend()
}

// trySend transmits as many segments as the window and pacing allow, and
// schedules a wakeup when pacing is the binding constraint.
func (sn *Sender) trySend() {
	if !sn.started || sn.stopped {
		return
	}
	now := sn.sim.Now()
	for {
		// Drop stale retransmission entries: the segment may have been
		// cumulatively acked (a retransmitted copy arrived) after it was
		// queued here. Resending it would recreate state below cumAck
		// that no ACK can ever clear.
		for len(sn.retxQ) > 0 {
			seq := sn.retxQ[0]
			st, ok := sn.segs[seq]
			if ok && seq >= sn.cumAck && st.lost {
				break
			}
			if ok {
				st.queued = false
			}
			sn.retxQ = sn.retxQ[1:]
		}
		// Retransmissions have priority but obey the same limits.
		haveRetx := len(sn.retxQ) > 0
		w := sn.alg.Window()
		if w > 0 && sn.pipe+sn.mss > w {
			return // window-limited; an ACK will reopen it
		}
		pr := sn.alg.PacingRate()
		if pr > 0 {
			if now < sn.nextSend {
				sn.scheduleWake(sn.nextSend)
				return
			}
			if sn.nextSend < now-pr.Interval(sn.mss) {
				// Don't accumulate unbounded sending credit while idle.
				sn.nextSend = now - pr.Interval(sn.mss)
			}
			sn.nextSend += pr.Interval(sn.mss)
		}
		if haveRetx {
			seq := sn.retxQ[0]
			sn.retxQ = sn.retxQ[1:]
			sn.sendSegment(seq, true)
			continue
		}
		sn.sendSegment(sn.nextSeq, false)
		sn.nextSeq += int64(sn.mss)
	}
}

func (sn *Sender) scheduleWake(at time.Duration) {
	if sn.sendTimer.Pending() {
		return
	}
	sn.sendTimer = sn.sim.At(at, sn.trySendFn)
}

func (sn *Sender) sendSegment(seq int64, retx bool) {
	now := sn.sim.Now()
	st, ok := sn.segs[seq]
	if !ok {
		if n := len(sn.segFree); n > 0 {
			st = sn.segFree[n-1]
			sn.segFree = sn.segFree[:n-1]
			*st = segState{size: sn.mss}
		} else {
			st = &segState{size: sn.mss}
		}
		sn.segs[seq] = st
	}
	st.sentAt = now
	st.retx = retx
	st.lost = false
	st.queued = false
	sn.pipe += st.size
	sn.SentBytes += int64(st.size)
	sn.SentPackets++
	if retx {
		sn.RetxBytes += int64(st.size)
		sn.RetxPackets++
	}
	if so, ok := sn.alg.(cca.SendObserver); ok {
		so.OnSend(cca.SendSignal{Now: now, Bytes: st.size, Seq: seq, Retx: retx})
	}
	sn.touchRTO()
	sn.out(packet.Packet{Flow: sn.flow, Seq: seq, Size: st.size, SentAt: now, Retx: retx})
}

// OnAck processes an acknowledgment arriving from the reverse path.
func (sn *Sender) OnAck(a packet.Ack) {
	if sn.stopped {
		return
	}
	now := sn.sim.Now()
	sn.AcksReceived++

	var rtt time.Duration
	if !a.EchoRetx {
		// Karn's rule: no samples from retransmitted segments. A zero
		// EchoSentAt is a valid timestamp (flow started at t=0).
		if r := now - a.EchoSentAt; r > 0 {
			rtt = r
			sn.LastRTT = rtt
			sn.updateRTO(rtt)
		}
	}

	delivered := 0
	if a.Delivered > sn.DeliveredBytes {
		delivered = int(a.Delivered - sn.DeliveredBytes)
		sn.DeliveredBytes = a.Delivered
		// Any delivery progress (cumulative or SACKed) proves the path is
		// alive: reset the exponential RTO backoff and re-arm. Without
		// this, a flow whose hole retransmissions keep colliding with a
		// full buffer backs off to tens of seconds while SACKs stream in.
		sn.rtoBackoff = 0
		if sn.pipe > 0 {
			sn.armRTO()
		}
	}

	// SACK bookkeeping: the ACK echoes the arrival of the segment at
	// SackSeq, so the sender knows that segment is held by the receiver
	// even while a hole below it pins the cumulative ACK.
	if a.SackSeq > sn.cumAck {
		if st, ok := sn.segs[a.SackSeq]; ok && !st.sacked {
			st.sacked = true
			if !st.lost {
				sn.pipe -= st.size
			}
		}
		if a.SackSeq > sn.highestSacked {
			sn.highestSacked = a.SackSeq
		}
	}

	newly := 0
	if a.CumAck > sn.cumAck {
		for seq := sn.cumAck; seq < a.CumAck; {
			st, ok := sn.segs[seq]
			if !ok {
				// Should not happen; advance by MSS to stay live.
				seq += int64(sn.mss)
				continue
			}
			if !st.lost && !st.sacked {
				sn.pipe -= st.size
			}
			newly += st.size
			delete(sn.segs, seq)
			sn.segFree = append(sn.segFree, st)
			seq += int64(st.size)
		}
		sn.cumAck = a.CumAck
		sn.AckedBytes += int64(newly)
		sn.dupAcks = 0
		sn.rtoBackoff = 0
		if sn.inRecovery && sn.cumAck >= sn.recoverPoint {
			sn.inRecovery = false
		}
		// Remaining holes are found by SACK-based detection below; the
		// classic NewReno partial-ACK retransmission would spuriously
		// resend in-flight segments when SACK information is available.
		if sn.pipe > 0 {
			sn.armRTO()
		} else {
			sn.rtoTimer.Cancel()
		}
	} else if a.SackSeq > sn.cumAck {
		// Duplicate ACK: data above the cumulative point arrived. Loss
		// detection itself is SACK-driven (detectSackLosses): three sacked
		// segments above a hole is exactly the classic triple-dup-ACK
		// condition, so a separate trigger here would double-retransmit.
		sn.dupAcks++
	}

	sn.detectSackLosses(now)

	sn.alg.OnAck(cca.AckSignal{
		Now:            now,
		RTT:            rtt,
		AckedBytes:     newly,
		DeliveredBytes: delivered,
		Packets:        a.Count,
		InFlight:       sn.pipe,
		ECE:            a.ECE,
	})
	if sn.Probe != nil {
		sn.Probe.Emit(obs.Event{Type: obs.EvAckRecv, At: now, Flow: sn.flow,
			Seq: a.CumAck, Bytes: newly, Queue: -1, Retx: a.EchoRetx})
		if rtt > 0 {
			// Valid (Karn-filtered) measurements only, mirroring the RTT
			// trace hook below, so windowed RTT series match the traces.
			sn.Probe.Emit(obs.Event{Type: obs.EvRTTSample, At: now,
				Flow: sn.flow, Seq: int64(rtt), Queue: -1})
		}
		sn.noteCwnd(now)
	}
	if sn.AckTraceHook != nil {
		sn.AckTraceHook(now, rtt, newly)
	}
	sn.trySend()
}

// noteCwnd emits EvCwndUpdate when the CCA's window moved since the last
// probe observation. Called only on the instrumented path (Probe != nil).
func (sn *Sender) noteCwnd(now time.Duration) {
	w := sn.alg.Window()
	if w == sn.lastCwnd {
		return
	}
	sn.lastCwnd = w
	sn.CwndUpdates++
	sn.Probe.Emit(obs.Event{Type: obs.EvCwndUpdate, At: now, Flow: sn.flow,
		Bytes: w, Queue: -1})
}

// detectSackLosses applies the RFC 6675 rule: an unsacked segment with at
// least dupThresh segments sacked above it is lost. This lets a window with
// many holes recover in one round trip instead of NewReno's one hole per
// RTT. Recently retransmitted segments get a round trip of grace before
// they can be re-marked.
func (sn *Sender) detectSackLosses(now time.Duration) {
	if sn.highestSacked <= sn.cumAck {
		return
	}
	limit := sn.highestSacked - int64(dupThresh*sn.mss)
	scanned := 0
	for seq := sn.cumAck; seq <= limit && scanned < 512; seq += int64(sn.mss) {
		scanned++
		st, ok := sn.segs[seq]
		if !ok || st.sacked || st.lost {
			continue
		}
		if st.retx && now-st.sentAt < sn.srtt+sn.rttvar*4+time.Millisecond {
			// A recently retransmitted segment gets a round trip (with
			// variance margin) before it can be re-declared lost.
			continue
		}
		newEvent := !sn.inRecovery
		if newEvent {
			sn.inRecovery = true
			sn.recoverPoint = sn.nextSeq
			sn.LossEvents++
		}
		sn.markLost(seq, newEvent, now)
	}
}

// markLost marks the segment at seq lost, queues its retransmission, and
// informs the CCA. newEvent tags the start of a recovery epoch. Segments
// already marked lost (e.g. by an RTO sweep) are still queued if they are
// not already awaiting retransmission — partial ACKs walk holes this way.
func (sn *Sender) markLost(seq int64, newEvent bool, now time.Duration) {
	st, ok := sn.segs[seq]
	if !ok {
		return
	}
	freshLoss := !st.lost
	if freshLoss {
		st.lost = true
		sn.pipe -= st.size
	}
	if !st.queued {
		st.queued = true
		sn.retxQ = append(sn.retxQ, seq)
	}
	if freshLoss {
		sn.alg.OnLoss(cca.LossSignal{
			Now:      now,
			Bytes:    st.size,
			NewEvent: newEvent,
			InFlight: sn.pipe,
		})
		if sn.Probe != nil {
			sn.noteCwnd(now)
		}
	}
}

func (sn *Sender) updateRTO(rtt time.Duration) {
	if sn.srtt == 0 {
		sn.srtt = rtt
		sn.rttvar = rtt / 2
		return
	}
	d := sn.srtt - rtt
	if d < 0 {
		d = -d
	}
	sn.rttvar = (3*sn.rttvar + d) / 4
	sn.srtt = (7*sn.srtt + rtt) / 8
}

func (sn *Sender) rto() time.Duration {
	r := sn.srtt + 4*sn.rttvar
	if r < sn.minRTO {
		r = sn.minRTO
	}
	for i := 0; i < sn.rtoBackoff && r < 30*time.Second; i++ {
		r *= 2
	}
	return r
}

func (sn *Sender) armRTO() {
	sn.rtoTimer.Cancel()
	sn.rtoTimer = sn.sim.After(sn.rto(), sn.onRTOFn)
}

// touchRTO arms the timer only if none is pending, so a continuous stream
// of transmissions cannot indefinitely postpone the timeout of the oldest
// unacknowledged segment.
func (sn *Sender) touchRTO() {
	if !sn.rtoTimer.Pending() {
		sn.armRTO()
	}
}

func (sn *Sender) onRTO() {
	if sn.stopped || sn.pipe == 0 && len(sn.retxQ) == 0 {
		return
	}
	now := sn.sim.Now()
	sn.Timeouts++
	sn.rtoBackoff++
	sn.dupAcks = 0
	for _, seq := range sn.retxQ {
		if st, ok := sn.segs[seq]; ok {
			st.queued = false
		}
	}
	sn.retxQ = sn.retxQ[:0]
	sn.inRecovery = false // enterRecoveryTimeout re-establishes it
	sn.enterRecoveryTimeout(now)
	sn.armRTO()
	sn.trySend()
}

func (sn *Sender) enterRecoveryTimeout(now time.Duration) {
	sn.inRecovery = true
	sn.recoverPoint = sn.nextSeq
	sn.LossEvents++
	// Presume everything outstanding lost for window accounting, but only
	// retransmit the first hole: the receiver usually holds most of the
	// range already, and NewReno partial ACKs will walk the remaining
	// holes. Retransmitting the whole range would flood the path with
	// duplicates the receiver discards — for a rate-based CCA that can
	// choke goodput for seconds.
	for seq := sn.cumAck; seq < sn.nextSeq; seq += int64(sn.mss) {
		st, ok := sn.segs[seq]
		if !ok || st.sacked {
			continue // sacked segments are at the receiver, not lost
		}
		if !st.lost {
			st.lost = true
			sn.pipe -= st.size
		}
	}
	if st, ok := sn.segs[sn.cumAck]; ok && !st.queued {
		st.queued = true
		sn.retxQ = append(sn.retxQ, sn.cumAck)
	}
	sn.alg.OnLoss(cca.LossSignal{
		Now:      now,
		Bytes:    sn.mss,
		NewEvent: true,
		Timeout:  true,
		InFlight: sn.pipe,
	})
	if sn.Probe != nil {
		sn.noteCwnd(now)
	}
}

// Throughput returns the Def. 2 throughput: bytes acknowledged since the
// flow started, divided by elapsed time.
func (sn *Sender) Throughput(now time.Duration) units.Rate {
	el := now - sn.StartedAt
	if el <= 0 {
		return 0
	}
	return units.RateFromBytes(int(sn.DeliveredBytes), el)
}

// DebugState reports internal sender state for diagnostics and tests.
func (sn *Sender) DebugState() (pipe int, retxQ int, segs int, cumAck, nextSeq int64, rtoPending, sendPending, inRecovery bool) {
	return sn.pipe, len(sn.retxQ), len(sn.segs), sn.cumAck, sn.nextSeq,
		sn.rtoTimer.Pending(), sn.sendTimer.Pending(), sn.inRecovery
}
