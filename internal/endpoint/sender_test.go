package endpoint

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"starvation/internal/cca"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// fixedAlg is a minimal CCA for transport tests: fixed window and/or pacing.
type fixedAlg struct {
	window int
	pacing units.Rate
	acks   []cca.AckSignal
	losses []cca.LossSignal
}

func (f *fixedAlg) Name() string            { return "fixed" }
func (f *fixedAlg) Window() int             { return f.window }
func (f *fixedAlg) PacingRate() units.Rate  { return f.pacing }
func (f *fixedAlg) OnAck(s cca.AckSignal)   { f.acks = append(f.acks, s) }
func (f *fixedAlg) OnLoss(s cca.LossSignal) { f.losses = append(f.losses, s) }

// loop wires a sender and receiver through an optional lossy/delayed path,
// giving transport tests a two-way harness without the full netem stack.
type loop struct {
	sim    *sim.Simulator
	sender *Sender
	recv   *Receiver
	// dropSeqs drops the first transmission of these sequence numbers.
	dropSeqs map[int64]bool
	// oneWay is the data-path delay (ACKs return instantly).
	oneWay time.Duration
	sent   int
}

func newLoop(alg cca.Algorithm, oneWay time.Duration, ackCfg AckConfig) *loop {
	l := &loop{sim: sim.New(1), oneWay: oneWay, dropSeqs: map[int64]bool{}}
	l.recv = NewReceiver(l.sim, 0, ackCfg, func(a packet.Ack) {
		l.sender.OnAck(a)
	})
	l.sender = NewSender(l.sim, 0, alg, 1500, func(p packet.Packet) {
		l.sent++
		if l.dropSeqs[p.Seq] && !p.Retx {
			return // drop first transmission only
		}
		l.sim.After(l.oneWay, func() { l.recv.OnPacket(p) })
	})
	return l
}

func TestSenderWindowLimited(t *testing.T) {
	alg := &fixedAlg{window: 4 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{})
	l.sim.At(0, l.sender.Start)
	l.sim.Run(95 * time.Millisecond)
	// Window of 4 packets, RTT 10ms: 4 packets per RTT. After ~9 full
	// RTTs plus the initial window: about 40 packets.
	if l.sent < 36 || l.sent > 44 {
		t.Errorf("sent %d packets, want ~40 (4 per 10ms RTT)", l.sent)
	}
	if l.sender.InFlight() > 4*1500 {
		t.Errorf("in flight %d exceeds window", l.sender.InFlight())
	}
}

func TestSenderPacingSpacing(t *testing.T) {
	// 1.2 Mbit/s = one 1500B packet per 10ms.
	alg := &fixedAlg{pacing: units.Mbps(1.2)}
	var sends []time.Duration
	s := sim.New(1)
	sn := NewSender(s, 0, alg, 1500, func(p packet.Packet) {
		sends = append(sends, s.Now())
	})
	s.At(0, sn.Start)
	s.Run(100 * time.Millisecond)
	sn.Stop()
	if len(sends) < 9 {
		t.Fatalf("sent %d, want ~10", len(sends))
	}
	for i := 1; i < len(sends); i++ {
		gap := sends[i] - sends[i-1]
		if gap < 9*time.Millisecond || gap > 11*time.Millisecond {
			t.Errorf("send gap %d = %v, want ~10ms", i, gap)
		}
	}
}

func TestSenderRTTSampling(t *testing.T) {
	alg := &fixedAlg{window: 2 * 1500}
	l := newLoop(alg, 25*time.Millisecond, AckConfig{})
	l.sim.At(0, l.sender.Start)
	l.sim.Run(200 * time.Millisecond)
	if len(alg.acks) == 0 {
		t.Fatal("no acks")
	}
	for _, a := range alg.acks {
		if a.RTT != 25*time.Millisecond {
			t.Errorf("RTT sample = %v, want 25ms", a.RTT)
		}
	}
	if l.sender.LastRTT != 25*time.Millisecond {
		t.Errorf("LastRTT = %v", l.sender.LastRTT)
	}
}

func TestSenderFastRetransmit(t *testing.T) {
	alg := &fixedAlg{window: 10 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{})
	l.dropSeqs[3000] = true // drop the third segment once
	l.sim.At(0, l.sender.Start)
	l.sim.Run(500 * time.Millisecond)

	if len(alg.losses) == 0 {
		t.Fatal("loss never detected")
	}
	if !alg.losses[0].NewEvent {
		t.Error("first loss not flagged as new event")
	}
	if alg.losses[0].Timeout {
		t.Error("dup-ack loss flagged as timeout")
	}
	if l.sender.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (fast retransmit should recover)", l.sender.Timeouts)
	}
	// Everything eventually acked.
	if l.sender.AckedBytes != l.sender.DeliveredBytes {
		t.Errorf("acked %d != delivered %d after recovery",
			l.sender.AckedBytes, l.sender.DeliveredBytes)
	}
	if l.sender.RetxBytes != 1500 {
		t.Errorf("retransmitted %d bytes, want exactly 1500", l.sender.RetxBytes)
	}
}

func TestSenderRTOBlackout(t *testing.T) {
	alg := &fixedAlg{window: 4 * 1500}
	s := sim.New(1)
	blackout := true
	var recv *Receiver
	var sn *Sender
	recv = NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { sn.OnAck(a) })
	sn = NewSender(s, 0, alg, 1500, func(p packet.Packet) {
		if blackout {
			return
		}
		s.After(10*time.Millisecond, func() { recv.OnPacket(p) })
	})
	s.At(0, sn.Start)
	s.At(700*time.Millisecond, func() { blackout = false })
	s.Run(3 * time.Second)
	if sn.Timeouts == 0 {
		t.Fatal("no RTO during blackout")
	}
	var sawTimeout bool
	for _, l := range alg.losses {
		if l.Timeout {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Error("CCA never saw a timeout loss signal")
	}
	if sn.AckedBytes == 0 {
		t.Error("no progress after blackout lifted")
	}
}

func TestSenderSackRecoveryManyHoles(t *testing.T) {
	// Drop every 5th of the first 50 segments: SACK-based detection must
	// recover all holes without an RTO.
	alg := &fixedAlg{window: 30 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{})
	for i := 0; i < 50; i += 5 {
		l.dropSeqs[int64(i*1500)] = true
	}
	l.sim.At(0, l.sender.Start)
	l.sim.Run(2 * time.Second)
	if l.sender.Timeouts > 1 {
		t.Errorf("timeouts = %d; SACK recovery should avoid RTOs", l.sender.Timeouts)
	}
	if l.sender.AckedBytes < 50*1500 {
		t.Errorf("acked only %d bytes; holes not recovered", l.sender.AckedBytes)
	}
}

func TestSenderNoSpuriousRetransmits(t *testing.T) {
	alg := &fixedAlg{window: 8 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{})
	l.sim.At(0, l.sender.Start)
	l.sim.Run(time.Second)
	if l.sender.RetxBytes != 0 {
		t.Errorf("retransmitted %d bytes on a lossless path", l.sender.RetxBytes)
	}
	if l.sender.LossEvents != 0 {
		t.Errorf("loss events = %d on a lossless path", l.sender.LossEvents)
	}
}

func TestSenderDeliveredTracksSacks(t *testing.T) {
	// With a persistent hole, DeliveredBytes keeps growing while
	// AckedBytes stalls — the PCC goodput signal.
	alg := &fixedAlg{window: 10 * 1500}
	s := sim.New(1)
	var recv *Receiver
	var sn *Sender
	recv = NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { sn.OnAck(a) })
	sn = NewSender(s, 0, alg, 1500, func(p packet.Packet) {
		if p.Seq == 0 {
			return // permanent hole at the very first segment
		}
		s.After(10*time.Millisecond, func() { recv.OnPacket(p) })
	})
	s.At(0, sn.Start)
	s.Run(190 * time.Millisecond) // before the first RTO fires
	if sn.AckedBytes != 0 {
		t.Errorf("acked %d with a hole at 0", sn.AckedBytes)
	}
	if sn.DeliveredBytes < 5*1500 {
		t.Errorf("delivered %d, want SACK progress past the hole", sn.DeliveredBytes)
	}
}

func TestSenderThroughputDef2(t *testing.T) {
	alg := &fixedAlg{window: 100 * 1500, pacing: units.Mbps(12)}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{})
	l.sim.At(0, l.sender.Start)
	l.sim.Run(10 * time.Second)
	thpt := l.sender.Throughput(10 * time.Second)
	if thpt < units.Mbps(11) || thpt > units.Mbps(13) {
		t.Errorf("throughput = %v, want ~12 Mbit/s", thpt)
	}
}

func TestSenderStopsCleanly(t *testing.T) {
	alg := &fixedAlg{window: 4 * 1500}
	l := newLoop(alg, 10*time.Millisecond, AckConfig{})
	l.sim.At(0, l.sender.Start)
	l.sim.Run(50 * time.Millisecond)
	l.sender.Stop()
	sentAtStop := l.sent
	l.sim.Run(500 * time.Millisecond)
	if l.sent != sentAtStop {
		t.Errorf("sender transmitted after Stop: %d -> %d", sentAtStop, l.sent)
	}
}

// Property: for random drop patterns, the transport conserves data — all
// sent bytes are eventually acked (given enough time), in-flight never goes
// negative, and the pipe estimate never exceeds bytes actually unacked.
func TestQuickSenderConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alg := &fixedAlg{window: 16 * 1500}
		l := newLoop(alg, 10*time.Millisecond, AckConfig{})
		// Random drops over the first 200 segments (first transmission).
		for i := 0; i < 200; i++ {
			if rng.Float64() < 0.1 {
				l.dropSeqs[int64(i*1500)] = true
			}
		}
		checkOK := true
		check := func() {
			if l.sender.InFlight() < 0 {
				checkOK = false
			}
		}
		for i := 0; i < 100; i++ {
			at := time.Duration(i) * 50 * time.Millisecond
			l.sim.At(at, check)
		}
		l.sim.At(0, l.sender.Start)
		l.sim.Run(30 * time.Second)
		if !checkOK {
			return false
		}
		// All 200 potentially-dropped segments recovered and acked.
		return l.sender.AckedBytes >= 200*1500
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
