package endpoint

import (
	"time"

	"starvation/internal/netem"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// AckConfig selects the receiver's acknowledgment policy.
//
// The zero value acknowledges every packet immediately. DelayCount k > 1
// batches up to k packets per ACK (classic delayed ACKs, Fig. 7's source of
// burstiness). AggregatePeriod T > 0 releases ACKs only at integer
// multiples of T (the §5.3 Vivace experiment's ACK quantization).
type AckConfig struct {
	// DelayCount is the number of packets covered by one ACK (<=1 means
	// per-packet ACKs).
	DelayCount int
	// DelayTimeout bounds how long a delayed ACK may be held. Defaults to
	// 40 ms when DelayCount > 1 and no value is given.
	DelayTimeout time.Duration
	// AggregatePeriod releases ACKs only at multiples of this period.
	AggregatePeriod time.Duration
}

// Receiver consumes data packets, maintains cumulative-ACK state, and emits
// ACKs per its policy.
type Receiver struct {
	sim  *sim.Simulator
	flow packet.FlowID
	cfg  AckConfig
	out  netem.AckHandler

	expected  int64
	ooo       map[int64]int // out-of-order segments: seq -> size
	delivered int64         // distinct payload bytes accepted, any order

	// Pending (not yet acknowledged to the sender) state.
	pendCount  int
	pendNewly  int
	pendECE    bool
	lastSeq    int64
	lastSentAt time.Duration
	lastRetx   bool
	flushTimer sim.Handle
	// flushFn is the flush method bound once so arming the delayed-ACK or
	// aggregation timer never allocates a method-value closure.
	flushFn func()
	// pendAcks buffers fully formed per-packet ACKs in aggregation mode:
	// an aggregating element (Wi-Fi, interrupt coalescing) holds the ACK
	// packets themselves and releases them in a burst, it does not merge
	// them. The burst preserves per-packet RTT samples — each with the
	// arrival time of the burst, which is exactly the distortion §5.3
	// exploits against Vivace's latency-gradient estimator.
	pendAcks []packet.Ack

	// Stats.
	Received int64
	AcksSent int64

	// Probe receives an EvDeliver per arriving segment. Set it before the
	// run; nil (the default) disables emission.
	Probe obs.Probe
}

// NewReceiver creates a receiver that sends ACKs to out.
func NewReceiver(s *sim.Simulator, flow packet.FlowID, cfg AckConfig, out netem.AckHandler) *Receiver {
	if cfg.DelayCount > 1 && cfg.DelayTimeout <= 0 {
		cfg.DelayTimeout = 40 * time.Millisecond
	}
	r := &Receiver{sim: s, flow: flow, cfg: cfg, out: out, ooo: make(map[int64]int)}
	r.flushFn = r.flush
	return r
}

// Reset returns the receiver to the state NewReceiver(s, flow, cfg, out)
// would produce while keeping the out-of-order map's buckets, the ACK
// buffer's capacity, and the bound flush callback. The caller resets the
// shared simulator first; the pending flush-timer handle is zeroed, not
// cancelled. The probe is cleared; reinstall it before the run.
func (r *Receiver) Reset(cfg AckConfig) {
	if cfg.DelayCount > 1 && cfg.DelayTimeout <= 0 {
		cfg.DelayTimeout = 40 * time.Millisecond
	}
	r.cfg = cfg
	r.expected = 0
	clear(r.ooo)
	r.delivered = 0
	r.pendCount, r.pendNewly, r.pendECE = 0, 0, false
	r.lastSeq, r.lastSentAt, r.lastRetx = 0, 0, false
	r.flushTimer = sim.Handle{}
	r.pendAcks = r.pendAcks[:0]
	r.Received, r.AcksSent = 0, 0
	r.Probe = nil
}

// DeliveredBytes returns the count of distinct payload bytes accepted so
// far, in any order (the quantity echoed to rate-based CCAs).
func (r *Receiver) DeliveredBytes() int64 { return r.delivered }

// OnPacket processes an arriving data segment.
func (r *Receiver) OnPacket(p packet.Packet) {
	r.Received++
	now := r.sim.Now()
	if r.Probe != nil {
		r.Probe.Emit(obs.Event{Type: obs.EvDeliver, At: now, Flow: r.flow,
			Seq: p.Seq, Bytes: p.Size, Queue: -1, Retx: p.Retx, Dup: p.Dup})
	}
	newly := 0
	inOrder := true
	switch {
	case p.Seq == r.expected:
		r.expected = p.End()
		newly += p.Size
		r.delivered += int64(p.Size)
		// Drain any buffered segments that are now in order.
		for {
			size, ok := r.ooo[r.expected]
			if !ok {
				break
			}
			delete(r.ooo, r.expected)
			newly += size
			r.expected += int64(size)
		}
	case p.Seq > r.expected:
		inOrder = false
		if _, dup := r.ooo[p.Seq]; !dup {
			r.ooo[p.Seq] = p.Size
			r.delivered += int64(p.Size)
		}
	default:
		// Duplicate of already-received data (spurious retransmission);
		// ACK it so the sender's state advances.
	}

	r.pendCount++
	r.pendNewly += newly
	r.pendECE = r.pendECE || p.ECN
	r.lastSeq = p.Seq
	r.lastSentAt = p.SentAt
	r.lastRetx = p.Retx

	if r.cfg.AggregatePeriod > 0 {
		// Aggregation mode: buffer this packet's ACK (out-of-order or not;
		// the aggregating element holds everything) and release the burst
		// at the next period boundary.
		r.pendAcks = append(r.pendAcks, packet.Ack{
			Flow:       r.flow,
			CumAck:     r.expected,
			SackSeq:    p.Seq,
			EchoSentAt: p.SentAt,
			EchoRetx:   p.Retx,
			Count:      1,
			NewlyAcked: newly,
			Delivered:  r.delivered,
			ECE:        p.ECN,
		})
		r.armAggregate(now)
		return
	}

	switch {
	case !inOrder:
		// Out-of-order data: ACK immediately so the sender sees dup ACKs.
		r.flush()
	case r.cfg.DelayCount > 1:
		if r.pendCount >= r.cfg.DelayCount {
			r.flush()
		} else if !r.flushTimer.Pending() {
			r.flushTimer = r.sim.After(r.cfg.DelayTimeout, r.flushFn)
		}
	default:
		r.flush()
	}
}

func (r *Receiver) armAggregate(now time.Duration) {
	if r.flushTimer.Pending() {
		return
	}
	period := r.cfg.AggregatePeriod
	rem := now % period
	wait := period - rem
	if rem == 0 {
		wait = 0
	}
	r.flushTimer = r.sim.After(wait, r.flushFn)
}

func (r *Receiver) flush() {
	if len(r.pendAcks) > 0 {
		// Aggregation mode: release the buffered per-packet ACKs as a
		// burst stamped with the release time.
		r.flushTimer.Cancel()
		now := r.sim.Now()
		burst := r.pendAcks
		r.pendCount, r.pendNewly, r.pendECE = 0, 0, false
		for _, a := range burst {
			a.RecvdAt = now
			r.AcksSent++
			r.out(a)
		}
		// OnPacket cannot re-enter during the release loop (r.out only
		// schedules), so the buffer can be recycled for the next burst.
		r.pendAcks = burst[:0]
		return
	}
	if r.pendCount == 0 {
		return
	}
	r.flushTimer.Cancel()
	a := packet.Ack{
		Flow:       r.flow,
		CumAck:     r.expected,
		SackSeq:    r.lastSeq,
		EchoSentAt: r.lastSentAt,
		EchoRetx:   r.lastRetx,
		RecvdAt:    r.sim.Now(),
		Count:      r.pendCount,
		NewlyAcked: r.pendNewly,
		Delivered:  r.delivered,
		ECE:        r.pendECE,
	}
	r.pendCount, r.pendNewly, r.pendECE = 0, 0, false
	r.AcksSent++
	r.out(a)
}
