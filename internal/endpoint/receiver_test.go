package endpoint

import (
	"testing"
	"time"

	"starvation/internal/packet"
	"starvation/internal/sim"
)

func TestReceiverPerPacketAcks(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { acks = append(acks, a) })
	r.OnPacket(packet.Packet{Seq: 0, Size: 1500, SentAt: 1})
	r.OnPacket(packet.Packet{Seq: 1500, Size: 1500, SentAt: 2})
	if len(acks) != 2 {
		t.Fatalf("acks = %d, want 2", len(acks))
	}
	if acks[0].CumAck != 1500 || acks[1].CumAck != 3000 {
		t.Errorf("cum acks = %d,%d want 1500,3000", acks[0].CumAck, acks[1].CumAck)
	}
	if acks[1].Delivered != 3000 {
		t.Errorf("delivered = %d, want 3000", acks[1].Delivered)
	}
}

func TestReceiverOutOfOrder(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { acks = append(acks, a) })
	r.OnPacket(packet.Packet{Seq: 0, Size: 1500})
	r.OnPacket(packet.Packet{Seq: 3000, Size: 1500}) // hole at 1500
	r.OnPacket(packet.Packet{Seq: 4500, Size: 1500})
	if acks[1].CumAck != 1500 || acks[2].CumAck != 1500 {
		t.Errorf("dup acks CumAck = %d,%d want 1500,1500", acks[1].CumAck, acks[2].CumAck)
	}
	// Delivered counts out-of-order bytes.
	if acks[2].Delivered != 4500 {
		t.Errorf("delivered = %d, want 4500", acks[2].Delivered)
	}
	// Hole fill jumps the cumulative ack over the buffered range.
	r.OnPacket(packet.Packet{Seq: 1500, Size: 1500})
	last := acks[len(acks)-1]
	if last.CumAck != 6000 {
		t.Errorf("CumAck after fill = %d, want 6000", last.CumAck)
	}
	if last.NewlyAcked != 4500 {
		t.Errorf("NewlyAcked after fill = %d, want 4500", last.NewlyAcked)
	}
}

func TestReceiverDuplicateData(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { acks = append(acks, a) })
	r.OnPacket(packet.Packet{Seq: 0, Size: 1500})
	r.OnPacket(packet.Packet{Seq: 0, Size: 1500, Retx: true}) // spurious retx
	if len(acks) != 2 {
		t.Fatalf("acks = %d, want 2 (duplicates still acked)", len(acks))
	}
	if acks[1].CumAck != 1500 {
		t.Errorf("dup ack CumAck = %d, want 1500", acks[1].CumAck)
	}
	if acks[1].Delivered != 1500 {
		t.Errorf("delivered after dup = %d, want 1500 (no double count)", acks[1].Delivered)
	}
	// Duplicate of buffered out-of-order data must not double count either.
	r.OnPacket(packet.Packet{Seq: 4500, Size: 1500})
	r.OnPacket(packet.Packet{Seq: 4500, Size: 1500, Retx: true})
	last := acks[len(acks)-1]
	if last.Delivered != 3000 {
		t.Errorf("delivered after ooo dup = %d, want 3000", last.Delivered)
	}
}

func TestReceiverDelayedAckCount(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{DelayCount: 4, DelayTimeout: 200 * time.Millisecond},
		func(a packet.Ack) { acks = append(acks, a) })
	for i := 0; i < 4; i++ {
		r.OnPacket(packet.Packet{Seq: int64(i * 1500), Size: 1500})
	}
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1 (batched)", len(acks))
	}
	if acks[0].Count != 4 || acks[0].CumAck != 6000 {
		t.Errorf("batched ack = %+v", acks[0])
	}
}

func TestReceiverDelayedAckTimeout(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{DelayCount: 4, DelayTimeout: 50 * time.Millisecond},
		func(a packet.Ack) { acks = append(acks, a) })
	s.At(0, func() { r.OnPacket(packet.Packet{Seq: 0, Size: 1500}) })
	s.Run(time.Second)
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1 (timeout flush)", len(acks))
	}
	if acks[0].RecvdAt != 50*time.Millisecond {
		t.Errorf("flush at %v, want 50ms", acks[0].RecvdAt)
	}
}

func TestReceiverDelayedAckImmediateOnOOO(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{DelayCount: 4, DelayTimeout: 200 * time.Millisecond},
		func(a packet.Ack) { acks = append(acks, a) })
	r.OnPacket(packet.Packet{Seq: 3000, Size: 1500}) // hole: flush now
	if len(acks) != 1 {
		t.Fatalf("out-of-order data not acked immediately")
	}
}

func TestReceiverAggregationBurst(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{AggregatePeriod: 60 * time.Millisecond},
		func(a packet.Ack) { acks = append(acks, a) })
	// Three packets land mid-period; their ACKs release together at 60ms,
	// as individual per-packet ACKs (burst, not merged).
	for i := 0; i < 3; i++ {
		i := i
		s.At(time.Duration(10+i*10)*time.Millisecond, func() {
			r.OnPacket(packet.Packet{Seq: int64(i * 1500), Size: 1500, SentAt: time.Duration(i + 1)})
		})
	}
	s.Run(time.Second)
	if len(acks) != 3 {
		t.Fatalf("acks = %d, want 3 (burst of per-packet acks)", len(acks))
	}
	for i, a := range acks {
		if a.RecvdAt != 60*time.Millisecond {
			t.Errorf("ack %d released at %v, want 60ms", i, a.RecvdAt)
		}
	}
	// Per-packet echo info is preserved.
	if acks[0].EchoSentAt != 1 || acks[2].EchoSentAt != 3 {
		t.Errorf("echo timestamps lost in aggregation: %v, %v", acks[0].EchoSentAt, acks[2].EchoSentAt)
	}
}

func TestReceiverAggregationOnBoundary(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{AggregatePeriod: 60 * time.Millisecond},
		func(a packet.Ack) { acks = append(acks, a) })
	s.At(60*time.Millisecond, func() { r.OnPacket(packet.Packet{Seq: 0, Size: 1500}) })
	s.Run(time.Second)
	if len(acks) != 1 || acks[0].RecvdAt != 60*time.Millisecond {
		t.Fatalf("boundary arrival should release immediately: %+v", acks)
	}
}

func TestReceiverECNEcho(t *testing.T) {
	s := sim.New(1)
	var acks []packet.Ack
	r := NewReceiver(s, 0, AckConfig{}, func(a packet.Ack) { acks = append(acks, a) })
	r.OnPacket(packet.Packet{Seq: 0, Size: 1500, ECN: true})
	r.OnPacket(packet.Packet{Seq: 1500, Size: 1500})
	if !acks[0].ECE {
		t.Error("ECN mark not echoed")
	}
	if acks[1].ECE {
		t.Error("ECE persisted past its ack")
	}
}
