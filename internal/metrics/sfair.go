package metrics

import (
	"time"

	"starvation/internal/trace"
)

// SFairness operationalizes Definition 2 over a finite run: the network is
// s-fair when there is a finite time t after which the throughput ratio of
// the faster flow over the slower one stays below s. No finite experiment
// can certify "for all future time" (that is Definition 3's starvation
// quantifier), so the checker reports the tightest bound that held over
// the trailing half of the observation window, plus the earliest time from
// which that bound already held — the paper's "the ratio of throughput
// between the two flows is X:1" with its stabilization time.
type SFairness struct {
	// S is the max throughput ratio over the window's trailing half.
	S float64
	// HoldsFrom is the earliest grid time from which the ratio never
	// exceeded S·(1+Tolerance) again.
	HoldsFrom time.Duration
	// Samples is the number of grid points compared.
	Samples int
}

// sFairTolerance is the slack applied when locating HoldsFrom.
const sFairTolerance = 0.1

// MeasureSFairness scans two windowed-rate traces on a shared grid. Grid
// points where neither flow has sent are skipped; minRate (bit/s) floors
// the denominator so a not-yet-started flow does not yield infinities.
func MeasureSFairness(a, b *trace.Series, start, end, step time.Duration, minRate float64) SFairness {
	if minRate <= 0 {
		minRate = 1
	}
	ratioAt := func(t time.Duration) (float64, bool) {
		ra, rb := a.At(t, 0), b.At(t, 0)
		if ra <= 0 && rb <= 0 {
			return 0, false
		}
		lo, hi := ra, rb
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo < minRate {
			lo = minRate
		}
		return hi / lo, true
	}

	res := SFairness{HoldsFrom: end}
	mid := start + (end-start)/2
	for t := mid; t <= end; t += step {
		r, ok := ratioAt(t)
		if !ok {
			continue
		}
		res.Samples++
		if r > res.S {
			res.S = r
		}
	}
	// Walk backward from mid to find how early the bound already held.
	bound := res.S * (1 + sFairTolerance)
	res.HoldsFrom = mid
	for t := mid - step; t >= start; t -= step {
		r, ok := ratioAt(t)
		if ok && r > bound {
			break
		}
		res.HoldsFrom = t
	}
	return res
}
