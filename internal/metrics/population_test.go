package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestPopulationBasics(t *testing.T) {
	// 8 flows on a 80 Mbit/s capacity: fair share 10 Mbit/s. Two flows
	// pinned at 0.5 Mbit/s (< 0.1 × fair) are starved.
	xs := []float64{0.5e6, 0.5e6, 12e6, 12e6, 13e6, 13e6, 14e6, 15e6}
	cohorts := []string{"copa", "copa", "bbr", "bbr", "bbr", "bbr", "bbr", "bbr"}
	st := Population(xs, cohorts, 80e6, 0)

	if st.N != 8 {
		t.Fatalf("N = %d", st.N)
	}
	if st.Epsilon != DefaultStarvationEpsilon {
		t.Errorf("eps defaulting broken: %v", st.Epsilon)
	}
	if st.FairShare != 10e6 {
		t.Errorf("fair share = %v, want 10e6", st.FairShare)
	}
	if st.Starved != 2 || st.StarvedFraction != 0.25 {
		t.Errorf("starved = %d (%.2f), want 2 (0.25)", st.Starved, st.StarvedFraction)
	}
	if got, want := st.MaxOverMin, 30.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("max/min = %v, want %v", got, want)
	}
	if len(st.Cohorts) != 2 {
		t.Fatalf("cohorts: %+v", st.Cohorts)
	}
	// Label-sorted: bbr before copa.
	if st.Cohorts[0].Cohort != "bbr" || st.Cohorts[0].N != 6 || st.Cohorts[0].Starved != 0 {
		t.Errorf("bbr cohort: %+v", st.Cohorts[0])
	}
	if st.Cohorts[1].Cohort != "copa" || st.Cohorts[1].N != 2 || st.Cohorts[1].Starved != 2 {
		t.Errorf("copa cohort: %+v", st.Cohorts[1])
	}
	if st.Cohorts[1].Jain != 1 {
		t.Errorf("copa internal jain = %v, want 1 (equal shares)", st.Cohorts[1].Jain)
	}
	out := st.String()
	for _, want := range []string{"n=8", "starved 2", "copa", "bbr"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestPopulationNoCapacityUsesMean(t *testing.T) {
	xs := []float64{1, 1, 1, 9}
	st := Population(xs, nil, 0, 0.5)
	if st.FairShare != 3 {
		t.Errorf("fair share = %v, want mean 3", st.FairShare)
	}
	// shares = 1/3,1/3,1/3,3 against eps 0.5: the three ones are starved.
	if st.Starved != 3 {
		t.Errorf("starved = %d, want 3", st.Starved)
	}
}

func TestPopulationZeroFlowInfRatio(t *testing.T) {
	st := Population([]float64{0, 5e6}, nil, 10e6, 0)
	if !math.IsInf(st.MaxOverMin, 1) {
		t.Errorf("max/min with a zero flow = %v, want +Inf", st.MaxOverMin)
	}
	if st.Starved != 1 {
		t.Errorf("starved = %d, want 1", st.Starved)
	}
}

func TestPopulationEmpty(t *testing.T) {
	st := Population(nil, nil, 0, 0)
	if st.N != 0 || st.Starved != 0 || st.Sum != 0 {
		t.Errorf("empty population not zero: %+v", st)
	}
	_ = st.String() // must not panic
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}
