package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"starvation/internal/units"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{}, 0},
		{[]float64{0, 0}, 1}, // degenerate all-zero: trivially equal
		{[]float64{5}, 1},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio([]float64{10, 100}); got != 10 {
		t.Errorf("Ratio = %v, want 10", got)
	}
	if got := Ratio([]float64{5}); got != 1 {
		t.Errorf("single-flow Ratio = %v, want 1", got)
	}
	if got := Ratio(nil); got != 1 {
		t.Errorf("empty Ratio = %v, want 1", got)
	}
	if got := Ratio([]float64{0, 10}); !math.IsInf(got, 1) {
		t.Errorf("zero-min Ratio = %v, want +Inf (starvation limit)", got)
	}
	if got := Ratio([]float64{0, 0}); got != 1 {
		t.Errorf("all-zero Ratio = %v, want 1", got)
	}
}

func TestUtilization(t *testing.T) {
	// 1 MB delivered over 1 s on an 8 Mbit/s link = 100%.
	if got := Utilization(1_000_000, units.Mbps(8), time.Second); math.Abs(got-1) > 1e-9 {
		t.Errorf("Utilization = %v, want 1", got)
	}
	if got := Utilization(100, units.Mbps(8), 0); got != 0 {
		t.Errorf("zero-duration Utilization = %v, want 0", got)
	}
	if got := Utilization(100, 0, time.Second); got != 0 {
		t.Errorf("zero-rate Utilization = %v, want 0", got)
	}
}

// Property: Jain's index is scale-invariant and in (0, 1].
func TestQuickJainProperties(t *testing.T) {
	f := func(seed int64, scale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		xs := make([]float64, n)
		ys := make([]float64, n)
		k := float64(scale%10) + 1
		for i := range xs {
			xs[i] = rng.Float64() + 0.01
			ys[i] = xs[i] * k
		}
		j1, j2 := JainIndex(xs), JainIndex(ys)
		if math.Abs(j1-j2) > 1e-9 {
			return false // not scale invariant
		}
		return j1 > 0 && j1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Jain's index is 1/n exactly when one flow holds everything, and
// attains 1 only for equal allocations.
func TestQuickJainExtremes(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%16) + 2
		solo := make([]float64, n)
		solo[0] = 42
		if math.Abs(JainIndex(solo)-1/float64(n)) > 1e-9 {
			return false
		}
		equal := make([]float64, n)
		for i := range equal {
			equal[i] = 7
		}
		return math.Abs(JainIndex(equal)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Ratio ≥ 1 always, and Ratio = 1 iff all allocations equal (for
// positive inputs).
func TestQuickRatioProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() + 0.1
		}
		r := Ratio(xs)
		if r < 1 {
			return false
		}
		allEq := true
		for _, x := range xs[1:] {
			if x != xs[0] {
				allEq = false
			}
		}
		if allEq && r != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
