package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultStarvationEpsilon is the population starvation threshold: a flow
// is counted starved when its steady-state throughput falls below ε times
// the fair share. The paper's pairwise criterion (Definition 3) calls two
// flows starved when their throughput ratio is unbounded; at population
// scale the operational analogue is a flow pinned far below fair share,
// and 0.1 — an order of magnitude below fair — matches the ratios the
// paper's two-flow experiments report for starved Copa/BBR/Vivace flows.
const DefaultStarvationEpsilon = 0.1

// CohortShare summarizes one cohort of a population: how many flows, how
// much of the capacity they hold, and how fairly it is spread inside the
// cohort.
type CohortShare struct {
	Cohort string
	N      int
	// Sum/Mean/Min/Max are throughputs in bit/s.
	Sum, Mean, Min, Max float64
	// Jain is Jain's index across the cohort's own flows.
	Jain float64
	// Starved counts the cohort's flows below ε × fair share.
	Starved int
}

// PopulationStats is the population-level starvation report: who starves,
// how many, and how badly, across N flows at shared bottlenecks.
type PopulationStats struct {
	N       int
	Epsilon float64
	// FairShare is capacity/N when a positive capacity is given, else the
	// population mean throughput.
	FairShare float64
	// Sum is the aggregate throughput in bit/s.
	Sum float64
	// Jain is Jain's index across the whole population.
	Jain float64
	// MaxOverMin is the worst pairwise throughput ratio (Definition 2's s
	// taken over the whole population); +Inf when some flow got nothing.
	MaxOverMin float64
	// ShareP5..ShareP95 are quantiles of the normalized share x_i /
	// FairShare — the throughput-ratio distribution. A fair population
	// concentrates near 1; starvation shows as mass near 0 with a heavy
	// upper tail.
	ShareP5, ShareP25, ShareP50, ShareP75, ShareP95 float64
	// Starved counts flows below ε × FairShare; StarvedFraction is
	// Starved/N.
	Starved         int
	StarvedFraction float64
	// Cohorts breaks the population down by cohort label, sorted by label.
	Cohorts []CohortShare
}

// Population computes the population starvation statistics of the given
// throughputs (bit/s). cohorts labels each flow (nil or empty strings for
// an unlabelled population); capacity is the shared bottleneck rate in
// bit/s (0 if unknown); eps is the starvation threshold (<= 0 selects
// DefaultStarvationEpsilon).
func Population(xs []float64, cohorts []string, capacity, eps float64) PopulationStats {
	if eps <= 0 {
		eps = DefaultStarvationEpsilon
	}
	st := PopulationStats{N: len(xs), Epsilon: eps}
	if len(xs) == 0 {
		return st
	}
	for _, x := range xs {
		st.Sum += x
	}
	st.Jain = JainIndex(xs)
	st.MaxOverMin = Ratio(xs)
	if capacity > 0 {
		st.FairShare = capacity / float64(len(xs))
	} else {
		st.FairShare = st.Sum / float64(len(xs))
	}

	shares := make([]float64, len(xs))
	for i, x := range xs {
		if st.FairShare > 0 {
			shares[i] = x / st.FairShare
		}
	}
	sorted := append([]float64(nil), shares...)
	sort.Float64s(sorted)
	st.ShareP5 = Quantile(sorted, 0.05)
	st.ShareP25 = Quantile(sorted, 0.25)
	st.ShareP50 = Quantile(sorted, 0.50)
	st.ShareP75 = Quantile(sorted, 0.75)
	st.ShareP95 = Quantile(sorted, 0.95)
	for _, s := range shares {
		if s < eps {
			st.Starved++
		}
	}
	st.StarvedFraction = float64(st.Starved) / float64(len(xs))

	// Per-cohort breakdown, label-sorted for stable output.
	byLabel := map[string]*CohortShare{}
	var labels []string
	cohortXs := map[string][]float64{}
	for i, x := range xs {
		label := ""
		if i < len(cohorts) {
			label = cohorts[i]
		}
		c, ok := byLabel[label]
		if !ok {
			c = &CohortShare{Cohort: label, Min: math.Inf(1), Max: math.Inf(-1)}
			byLabel[label] = c
			labels = append(labels, label)
		}
		c.N++
		c.Sum += x
		c.Min = math.Min(c.Min, x)
		c.Max = math.Max(c.Max, x)
		if shares[i] < eps {
			c.Starved++
		}
		cohortXs[label] = append(cohortXs[label], x)
	}
	sort.Strings(labels)
	for _, label := range labels {
		c := byLabel[label]
		c.Mean = c.Sum / float64(c.N)
		c.Jain = JainIndex(cohortXs[label])
		st.Cohorts = append(st.Cohorts, *c)
	}
	return st
}

// Quantile returns the q-quantile (0 <= q <= 1) of ascending-sorted xs by
// linear interpolation between closest ranks; 0 for an empty slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the population report as a compact table.
func (st PopulationStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "population n=%d  starved %d (%.1f%% at eps=%.2g)  jain %.3f  max/min %.3g\n",
		st.N, st.Starved, 100*st.StarvedFraction, st.Epsilon, st.Jain, st.MaxOverMin)
	fmt.Fprintf(&b, "share/fair quantiles  p5 %.3f  p25 %.3f  p50 %.3f  p75 %.3f  p95 %.3f\n",
		st.ShareP5, st.ShareP25, st.ShareP50, st.ShareP75, st.ShareP95)
	if len(st.Cohorts) > 1 || (len(st.Cohorts) == 1 && st.Cohorts[0].Cohort != "") {
		fmt.Fprintf(&b, "%-16s %6s %8s %12s %12s %12s %8s\n",
			"cohort", "flows", "starved", "mean_bps", "min_bps", "max_bps", "jain")
		for _, c := range st.Cohorts {
			name := c.Cohort
			if name == "" {
				name = "(uncohorted)"
			}
			fmt.Fprintf(&b, "%-16s %6d %8d %12.3g %12.3g %12.3g %8.3f\n",
				name, c.N, c.Starved, c.Mean, c.Min, c.Max, c.Jain)
		}
	}
	return b.String()
}
