// Package metrics computes the fairness and efficiency statistics the paper
// reports: per-flow throughput (Definition 2), throughput ratios (the
// starvation criterion of Definition 3), Jain's fairness index, and link
// utilization.
package metrics

import (
	"math"
	"time"

	"starvation/internal/units"
)

// JainIndex returns Jain's fairness index of the allocations: 1 means
// perfectly equal shares; 1/n means one flow holds everything.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1 // all-zero allocations are trivially equal
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Ratio returns max/min over the allocations, the s of Definition 2. An
// all-positive input is required for a finite answer; a zero minimum with a
// positive maximum returns +Inf (starvation in the limit).
func Ratio(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	if min <= 0 {
		if max <= 0 {
			return 1
		}
		return math.Inf(1)
	}
	return max / min
}

// Utilization returns the fraction of link capacity delivered to the flows
// over the interval.
func Utilization(totalAckedBytes int64, link units.Rate, elapsed time.Duration) float64 {
	if elapsed <= 0 || link <= 0 {
		return 0
	}
	return float64(totalAckedBytes) * 8 / (float64(link) * elapsed.Seconds())
}

// FlowStat summarizes one flow at the end of a run.
type FlowStat struct {
	Name        string
	AckedBytes  int64
	SentBytes   int64
	RetxBytes   int64
	LossEvents  int64
	Timeouts    int64
	Throughput  units.Rate // Def. 2: acked bytes / active time
	MeanRTT     time.Duration
	MinRTT      time.Duration
	MaxRTT      time.Duration
	SteadyThpt  units.Rate // throughput over the measurement window only
	SteadyRTTLo time.Duration
	SteadyRTTHi time.Duration
}
