package metrics

import (
	"testing"
	"time"

	"starvation/internal/trace"
)

func series(vals ...float64) *trace.Series {
	s := &trace.Series{}
	for i, v := range vals {
		s.Add(time.Duration(i)*time.Second, v)
	}
	return s
}

func TestSFairnessFairFlows(t *testing.T) {
	a := series(10, 10, 10, 10, 10, 10, 10, 10)
	b := series(2, 5, 9, 10, 10, 10, 10, 10) // converges by t=3
	res := MeasureSFairness(a, b, 0, 7*time.Second, time.Second, 1)
	if res.S > 1.01 {
		t.Errorf("S = %v, want ~1 (converged flows)", res.S)
	}
	// At t=2.5s the step function still reads b=9 (ratio 1.11 > bound), so
	// the hold point sits at the window midpoint.
	if res.HoldsFrom > 4*time.Second {
		t.Errorf("HoldsFrom = %v, want <= 4s", res.HoldsFrom)
	}
}

func TestSFairnessStarvedFlows(t *testing.T) {
	a := series(100, 100, 100, 100, 100, 100, 100, 100)
	b := series(100, 50, 20, 10, 10, 10, 10, 10)
	res := MeasureSFairness(a, b, 0, 7*time.Second, time.Second, 1)
	if res.S < 9.9 || res.S > 10.1 {
		t.Errorf("S = %v, want 10 (persistent 10:1)", res.S)
	}
}

func TestSFairnessTransientSpikeExcluded(t *testing.T) {
	// A startup spike in the first half must not inflate the bound, but
	// must delay HoldsFrom.
	a := series(100, 100, 100, 100, 100, 100, 100, 100, 100, 100)
	b := series(1, 1, 50, 50, 50, 50, 50, 50, 50, 50)
	res := MeasureSFairness(a, b, 0, 9*time.Second, time.Second, 1)
	if res.S > 2.01 {
		t.Errorf("S = %v, want 2 (tail ratio)", res.S)
	}
	if res.HoldsFrom < 2*time.Second {
		t.Errorf("HoldsFrom = %v, want >= 2s (spike before that)", res.HoldsFrom)
	}
}

func TestSFairnessMinRateFloor(t *testing.T) {
	a := series(100, 100, 100, 100)
	b := series(0, 0, 0, 0) // never starts
	res := MeasureSFairness(a, b, 0, 3*time.Second, time.Second, 10)
	if res.S != 10 {
		t.Errorf("S = %v, want 100/10 with the floor", res.S)
	}
}

func TestSFairnessEmpty(t *testing.T) {
	res := MeasureSFairness(&trace.Series{}, &trace.Series{}, 0, 5*time.Second, time.Second, 1)
	if res.Samples != 0 || res.S != 0 {
		t.Errorf("empty traces: %+v", res)
	}
}
