// Package trace records time series (RTT, sending rate, cwnd, queue depth)
// during emulation runs and provides the resampling, range statistics, and
// CSV export that the figure-regeneration harness needs.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a time-ordered sequence of samples.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample; samples must be added in non-decreasing time order.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{t, v})
}

// Reset discards all samples while keeping the buffer capacity, so a
// reused series records the next run without reallocating. The name is
// kept; callers renaming a recycled series assign Name directly.
func (s *Series) Reset() {
	s.Points = s.Points[:0]
}

// Clone returns an independent copy of the series. Run contexts that
// recycle their trace buffers (network.Session) clone each series into the
// returned Result so a later run cannot clobber an earlier result's data.
func (s *Series) Clone() *Series {
	out := &Series{Name: s.Name}
	if len(s.Points) > 0 {
		out.Points = append(make([]Point, 0, len(s.Points)), s.Points...)
	}
	return out
}

// Reserve grows the sample buffer to hold at least n points, so a caller
// that knows its sample count up front (horizon / sampling interval) pays
// one allocation instead of log₂(n) append regrowths.
func (s *Series) Reserve(n int) {
	if n <= cap(s.Points) {
		return
	}
	pts := make([]Point, len(s.Points), n)
	copy(pts, s.Points)
	s.Points = pts
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// At returns the value in effect at time t (the last sample at or before
// t), or def when t precedes all samples. Series are treated as step
// functions, matching how a recorded delay trajectory is replayed.
func (s *Series) At(t time.Duration, def float64) float64 {
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T > t })
	if i == 0 {
		return def
	}
	return s.Points[i-1].V
}

// Range returns the samples with T in [from, to).
func (s *Series) Range(from, to time.Duration) []Point {
	lo := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= from })
	hi := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].T >= to })
	return s.Points[lo:hi]
}

// MinMax returns the extrema of the samples in [from, to). ok is false when
// the range holds no samples.
func (s *Series) MinMax(from, to time.Duration) (min, max float64, ok bool) {
	pts := s.Range(from, to)
	if len(pts) == 0 {
		return 0, 0, false
	}
	min, max = pts[0].V, pts[0].V
	for _, p := range pts[1:] {
		if p.V < min {
			min = p.V
		}
		if p.V > max {
			max = p.V
		}
	}
	return min, max, true
}

// Mean returns the arithmetic mean of samples in [from, to); ok is false
// when the range is empty.
func (s *Series) Mean(from, to time.Duration) (mean float64, ok bool) {
	pts := s.Range(from, to)
	if len(pts) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts)), true
}

// Resample returns the step-function values of the series on a fixed grid
// from start to end with the given step; def fills times before the first
// sample.
func (s *Series) Resample(start, end, step time.Duration, def float64) *Series {
	out := &Series{Name: s.Name}
	if step > 0 && end >= start {
		out.Reserve(int((end-start)/step) + 1)
	}
	for t := start; t <= end; t += step {
		out.Add(t, s.At(t, def))
	}
	return out
}

// Shift returns a copy with all timestamps shifted by -offset (samples
// before offset are dropped). Used to re-origin a trajectory at its
// convergence time, the d̄(t) = d(t+T) of the Theorem 1 proof.
func (s *Series) Shift(offset time.Duration) *Series {
	out := &Series{Name: s.Name}
	out.Reserve(len(s.Points))
	for _, p := range s.Points {
		if p.T < offset {
			continue
		}
		out.Add(p.T-offset, p.V)
	}
	return out
}

// WriteCSV writes "seconds,value" rows.
func (s *Series) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "t_seconds,%s\n", s.Name); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "%.6f,%.6g\n", p.T.Seconds(), p.V); err != nil {
			return err
		}
	}
	return nil
}

// WriteMultiCSV writes several series resampled onto a shared grid as one
// CSV table with a t_seconds column. Grid points a series has no sample
// for yet (before its first point) are written as empty cells, which CSV
// consumers read as missing data — a literal NaN token breaks several
// strict parsers.
func WriteMultiCSV(w io.Writer, start, end, step time.Duration, series ...*Series) error {
	if _, err := fmt.Fprint(w, "t_seconds"); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, ",%s", s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for t := start; t <= end; t += step {
		if _, err := fmt.Fprintf(w, "%.6f", t.Seconds()); err != nil {
			return err
		}
		for _, s := range series {
			v := s.At(t, math.NaN())
			if math.IsNaN(v) {
				if _, err := fmt.Fprint(w, ","); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, ",%.6g", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
