package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mkSeries(pts ...float64) *Series {
	s := &Series{Name: "test"}
	for i, v := range pts {
		s.Add(time.Duration(i)*time.Second, v)
	}
	return s
}

func TestAtStepFunction(t *testing.T) {
	s := mkSeries(1, 2, 3) // samples at 0s, 1s, 2s
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{-time.Second, -99}, // before first: default
		{0, 1},
		{500 * time.Millisecond, 1},
		{time.Second, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 3},
		{time.Hour, 3}, // beyond last: constant extension
	}
	for _, c := range cases {
		if got := s.At(c.t, -99); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestAtEmpty(t *testing.T) {
	s := &Series{}
	if got := s.At(time.Second, 7); got != 7 {
		t.Errorf("At on empty series = %v, want default 7", got)
	}
}

func TestRangeHalfOpen(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	pts := s.Range(time.Second, 3*time.Second)
	if len(pts) != 2 || pts[0].V != 2 || pts[1].V != 3 {
		t.Errorf("Range[1s,3s) = %v, want values 2,3", pts)
	}
}

func TestMinMaxMean(t *testing.T) {
	s := mkSeries(5, 1, 3, 9, 7)
	min, max, ok := s.MinMax(0, 10*time.Second)
	if !ok || min != 1 || max != 9 {
		t.Errorf("MinMax = %v,%v,%v, want 1,9,true", min, max, ok)
	}
	mean, ok := s.Mean(0, 10*time.Second)
	if !ok || mean != 5 {
		t.Errorf("Mean = %v, want 5", mean)
	}
	if _, _, ok := s.MinMax(20*time.Second, 30*time.Second); ok {
		t.Error("MinMax on empty range reported ok")
	}
	if _, ok := s.Mean(20*time.Second, 30*time.Second); ok {
		t.Error("Mean on empty range reported ok")
	}
}

func TestShift(t *testing.T) {
	s := mkSeries(1, 2, 3, 4)
	sh := s.Shift(2 * time.Second)
	if sh.Len() != 2 {
		t.Fatalf("shifted length = %d, want 2", sh.Len())
	}
	if sh.Points[0].T != 0 || sh.Points[0].V != 3 {
		t.Errorf("shifted first point = %+v, want (0, 3)", sh.Points[0])
	}
	if sh.Points[1].T != time.Second || sh.Points[1].V != 4 {
		t.Errorf("shifted second point = %+v, want (1s, 4)", sh.Points[1])
	}
}

func TestResample(t *testing.T) {
	s := mkSeries(1, 2, 3)
	r := s.Resample(0, 2*time.Second, 500*time.Millisecond, 0)
	want := []float64{1, 1, 2, 2, 3}
	if r.Len() != len(want) {
		t.Fatalf("resampled length = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if r.Points[i].V != w {
			t.Errorf("resampled[%d] = %v, want %v", i, r.Points[i].V, w)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	s := mkSeries(1.5, 2.5)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.HasPrefix(got, "t_seconds,test\n") {
		t.Errorf("missing header: %q", got)
	}
	if !strings.Contains(got, "0.000000,1.5") || !strings.Contains(got, "1.000000,2.5") {
		t.Errorf("missing rows: %q", got)
	}
}

func TestWriteMultiCSV(t *testing.T) {
	a := mkSeries(1, 2)
	b := mkSeries(10, 20)
	b.Name = "b"
	var sb strings.Builder
	if err := WriteMultiCSV(&sb, 0, time.Second, time.Second, a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3: %q", len(lines), sb.String())
	}
	if lines[0] != "t_seconds,test,b" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestShiftPastLastSample(t *testing.T) {
	s := mkSeries(1, 2, 3) // samples at 0s, 1s, 2s
	sh := s.Shift(time.Hour)
	if sh.Len() != 0 {
		t.Errorf("shift past last sample kept %d points: %v", sh.Len(), sh.Points)
	}
	if sh.Name != s.Name {
		t.Errorf("shifted name = %q, want %q", sh.Name, s.Name)
	}
	// Offset exactly on a sample keeps that sample at t=0.
	edge := s.Shift(2 * time.Second)
	if edge.Len() != 1 || edge.Points[0].T != 0 || edge.Points[0].V != 3 {
		t.Errorf("shift onto last sample = %v, want [(0, 3)]", edge.Points)
	}
}

func TestAtExactBoundary(t *testing.T) {
	s := mkSeries(1, 2) // samples at 0s, 1s
	// t exactly equal to a sample time takes that sample (step functions
	// are right-continuous: the sample takes effect at its own timestamp).
	if got := s.At(0, -1); got != 1 {
		t.Errorf("At(0) = %v, want 1", got)
	}
	if got := s.At(time.Second, -1); got != 2 {
		t.Errorf("At(1s) = %v, want 2", got)
	}
	// One nanosecond earlier still reads the previous step.
	if got := s.At(time.Second-time.Nanosecond, -1); got != 1 {
		t.Errorf("At(1s-1ns) = %v, want 1", got)
	}
}

func TestResampleStepLargerThanRange(t *testing.T) {
	s := mkSeries(4, 5)
	// step > end-start: only the start grid point exists.
	r := s.Resample(0, time.Second, time.Minute, -1)
	if r.Len() != 1 || r.Points[0].T != 0 || r.Points[0].V != 4 {
		t.Errorf("resample with step>range = %v, want [(0, 4)]", r.Points)
	}
	// start == end degenerates to a single point too.
	r = s.Resample(time.Second, time.Second, time.Minute, -1)
	if r.Len() != 1 || r.Points[0].V != 5 {
		t.Errorf("resample with start==end = %v, want [(1s, 5)]", r.Points)
	}
}

func TestEmptySeriesStats(t *testing.T) {
	s := &Series{Name: "empty"}
	if _, _, ok := s.MinMax(0, time.Hour); ok {
		t.Error("MinMax on empty series reported ok")
	}
	if _, ok := s.Mean(0, time.Hour); ok {
		t.Error("Mean on empty series reported ok")
	}
	if got := s.Shift(time.Second).Len(); got != 0 {
		t.Errorf("Shift on empty series has %d points", got)
	}
	r := s.Resample(0, time.Second, time.Second, 42)
	for _, p := range r.Points {
		if p.V != 42 {
			t.Errorf("resampled empty series point %v, want default 42", p)
		}
	}
}

// A series whose first sample lies inside the grid must render leading
// empty cells, not literal NaN tokens (strict CSV parsers reject those).
func TestWriteMultiCSVMissingCells(t *testing.T) {
	late := &Series{Name: "late"}
	late.Add(2*time.Second, 7)
	full := mkSeries(1, 2, 3)
	var sb strings.Builder
	if err := WriteMultiCSV(&sb, 0, 2*time.Second, time.Second, full, late); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "NaN") {
		t.Errorf("output contains literal NaN: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	want := []string{
		"t_seconds,test,late",
		"0.000000,1,",
		"1.000000,2,",
		"2.000000,3,7",
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %d, want %d: %q", len(lines), len(want), out)
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestASCIIPlot(t *testing.T) {
	s := mkSeries(1, 5, 3, 9, 2)
	out := ASCIIPlot(s, 40, 8, "rtt")
	if !strings.Contains(out, "*") {
		t.Error("plot has no marks")
	}
	if !strings.Contains(out, "rtt") {
		t.Error("plot missing label")
	}
	if got := ASCIIPlot(&Series{}, 40, 8, "x"); got != "(no data)\n" {
		t.Errorf("empty plot = %q", got)
	}
}

// Property: At is consistent with the last sample at or before t.
func TestQuickAtConsistency(t *testing.T) {
	f := func(seed int64, probeMs uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Series{}
		tt := time.Duration(0)
		for i := 0; i < 50; i++ {
			tt += time.Duration(rng.Intn(100)+1) * time.Millisecond
			s.Add(tt, rng.Float64())
		}
		probe := time.Duration(probeMs) * time.Millisecond
		got := s.At(probe, math.NaN())
		// Reference: linear scan.
		want := math.NaN()
		for _, p := range s.Points {
			if p.T <= probe {
				want = p.V
			}
		}
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MinMax bounds every sample in range, and Mean lies between.
func TestQuickMinMaxMeanBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := &Series{}
		for i := 0; i < 100; i++ {
			s.Add(time.Duration(i)*time.Millisecond, rng.NormFloat64())
		}
		min, max, ok1 := s.MinMax(10*time.Millisecond, 90*time.Millisecond)
		mean, ok2 := s.Mean(10*time.Millisecond, 90*time.Millisecond)
		if !ok1 || !ok2 {
			return false
		}
		if mean < min || mean > max {
			return false
		}
		for _, p := range s.Range(10*time.Millisecond, 90*time.Millisecond) {
			if p.V < min || p.V > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
