package trace

import (
	"bytes"
	"testing"
	"time"
)

// TestSeriesResetIndistinguishableFromFresh pins the reuse contract: a
// series that recorded a run and was Reset records the next run into the
// same buffer with output byte-identical to a fresh series.
func TestSeriesResetIndistinguishableFromFresh(t *testing.T) {
	record := func(s *Series) {
		for i := 0; i < 50; i++ {
			s.Add(time.Duration(i)*time.Millisecond, float64(i)*1.5)
		}
	}
	csv := func(s *Series) string {
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	fresh := &Series{Name: "x"}
	record(fresh)

	reused := &Series{Name: "old_name"}
	for i := 0; i < 200; i++ { // grow past the fresh run's length
		reused.Add(time.Duration(i)*time.Second, 9e9)
	}
	capBefore := cap(reused.Points)
	reused.Reset()
	reused.Name = "x"
	record(reused)

	if got, want := csv(reused), csv(fresh); got != want {
		t.Errorf("reset series CSV differs from fresh:\n got %q\nwant %q", got, want)
	}
	if reused.Len() != fresh.Len() {
		t.Errorf("len %d != %d", reused.Len(), fresh.Len())
	}
	if cap(reused.Points) != capBefore {
		t.Errorf("Reset reallocated: cap %d -> %d", capBefore, cap(reused.Points))
	}
	gotMin, gotMax, _ := reused.MinMax(0, time.Second)
	wantMin, wantMax, _ := fresh.MinMax(0, time.Second)
	if gotMin != wantMin || gotMax != wantMax {
		t.Errorf("MinMax (%g,%g) != (%g,%g)", gotMin, gotMax, wantMin, wantMax)
	}
}

// TestSeriesCloneDetaches pins that a clone shares nothing with its source:
// mutating the source after cloning (as a recycled run buffer will be) must
// not change the clone.
func TestSeriesCloneDetaches(t *testing.T) {
	src := &Series{Name: "q"}
	src.Add(time.Millisecond, 1)
	src.Add(2*time.Millisecond, 2)
	c := src.Clone()

	src.Points[0].V = 99
	src.Reset()
	src.Add(time.Millisecond, -1)

	if c.Name != "q" || c.Len() != 2 || c.Points[0].V != 1 || c.Points[1].V != 2 {
		t.Errorf("clone mutated by source: %+v", c)
	}
	empty := (&Series{Name: "e"}).Clone()
	if empty.Name != "e" || empty.Len() != 0 {
		t.Errorf("empty clone: %+v", empty)
	}
}
