package trace

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// ASCIIPlot renders a series as a simple terminal plot, used by the example
// programs and cmd/figures so results are inspectable without external
// tooling.
func ASCIIPlot(s *Series, width, height int, yLabel string) string {
	if len(s.Points) == 0 {
		return "(no data)\n"
	}
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	t0 := s.Points[0].T
	t1 := s.Points[len(s.Points)-1].T
	if t1 <= t0 {
		t1 = t0 + time.Millisecond
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minV = math.Min(minV, p.V)
		maxV = math.Max(maxV, p.V)
	}
	if maxV <= minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	step := (t1 - t0) / time.Duration(width)
	if step <= 0 {
		step = time.Millisecond
	}
	for x := 0; x < width; x++ {
		v := s.At(t0+time.Duration(x)*step, math.NaN())
		if math.IsNaN(v) {
			continue
		}
		y := int((v - minV) / (maxV - minV) * float64(height-1))
		if y < 0 {
			y = 0
		}
		if y > height-1 {
			y = height - 1
		}
		grid[height-1-y][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.4g .. %.4g]\n", yLabel, minV, maxV)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "+%s\n t: %.2fs .. %.2fs\n", strings.Repeat("-", width), t0.Seconds(), t1.Seconds())
	return b.String()
}
