// Package prof wires the standard pprof profilers into CLI entry points.
// The next performance PR should start from a profile, not a guess: every
// command takes -cpuprofile/-memprofile flags and funnels them here.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling (when cpuPath is non-empty) and returns a
// stop function that finishes the CPU profile and writes the heap profile
// (when memPath is non-empty). The stop function is idempotent, so it is
// safe to both defer it and call it explicitly before an os.Exit path —
// deferred calls never run under os.Exit, which is exactly when a profile
// would otherwise be silently lost.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: writing heap profile: %v\n", err)
			}
		}
	}, nil
}
