package guard

import (
	"encoding/json"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"starvation/internal/netem"
	"starvation/internal/netem/faults"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

func TestFlowLedgerBalances(t *testing.T) {
	fl := FlowLedger{
		Name: "f", Sent: 100, Duplicated: 5,
		DroppedPreQueue: 10, HeldPreQueue: 1, Enqueued: 90, DroppedAtQueue: 4,
		HeldInQueue: 3, Dequeued: 87,
		HeldPostQueue: 2, Delivered: 85,
	}
	if err := fl.Check(); err != nil {
		t.Errorf("balanced ledger rejected: %v", err)
	}
	if fl.InFlight() != 6 {
		t.Errorf("InFlight = %d, want 6", fl.InFlight())
	}
}

func TestFlowLedgerImbalances(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*FlowLedger)
		wantSub string
	}{
		{"negative entry", func(f *FlowLedger) { f.Sent = -1; f.Enqueued = -1 }, "negative ledger entry"},
		{"pre-queue leak", func(f *FlowLedger) { f.Enqueued--; f.Dequeued--; f.Delivered-- }, "pre-queue imbalance"},
		{"queue leak", func(f *FlowLedger) { f.Dequeued--; f.Delivered-- }, "queue imbalance"},
		{"post-queue leak", func(f *FlowLedger) { f.Delivered-- }, "post-queue imbalance"},
	}
	for _, c := range cases {
		fl := FlowLedger{Name: "f", Sent: 100, Enqueued: 100, Dequeued: 100, Delivered: 100}
		c.mutate(&fl)
		err := fl.Check()
		if err == nil {
			t.Errorf("%s: imbalance accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q, want substring %q", c.name, err, c.wantSub)
		}
	}
}

func TestLedgerJoinsFlows(t *testing.T) {
	lg := Ledger{Flows: []FlowLedger{
		{Name: "ok", Sent: 10, Enqueued: 10, Dequeued: 10, Delivered: 10},
		{Name: "leaky", Sent: 10, Enqueued: 9, Dequeued: 9, Delivered: 9},
	}}
	err := lg.Check()
	if err == nil {
		t.Fatal("leaky flow accepted")
	}
	if !strings.Contains(err.Error(), "leaky") || !strings.Contains(err.Error(), "global") {
		t.Errorf("error %q should name the leaky flow and the global sum", err)
	}
	lg.Flows[1].Enqueued = 10
	lg.Flows[1].Dequeued = 10
	lg.Flows[1].Delivered = 10
	if err := lg.Check(); err != nil {
		t.Errorf("balanced ledger rejected: %v", err)
	}
}

// TestRogueElementCaught is the acceptance case for the conservation
// invariant: an element that silently swallows packets — dropping without
// reporting to any counter — must break the ledger. The rig mirrors the
// network pipeline: GE gate → rogue element → bottleneck → receiver count.
func TestRogueElementCaught(t *testing.T) {
	s := sim.New(1)
	var delivered int64
	link := netem.NewLink(s, units.Mbps(48), 0, func(packet.Packet) { delivered++ })
	swallowed := 0
	rogue := func(p packet.Packet) {
		if p.Seq%5 == 4 { // silently eat every 5th packet
			swallowed++
			return
		}
		link.Enqueue(p)
	}
	gate := faults.NewGEGate(faults.GEConfig{PGoodToBad: 0.01, PBadToGood: 0.2, PDropBad: 0.5},
		rand.New(rand.NewSource(5)), rogue)
	const n = 1000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			gate.Send(packet.Packet{Seq: int64(i), Size: 1500})
		}
	})
	s.Run(10 * time.Second)
	if swallowed == 0 {
		t.Fatal("rogue element swallowed nothing; rig broken")
	}
	ls := link.FlowStats(0)
	fl := FlowLedger{
		Name:            "rigged",
		Sent:            n,
		DroppedPreQueue: gate.Dropped,
		Enqueued:        ls.Enqueued,
		DroppedAtQueue:  ls.Dropped,
		HeldInQueue:     ls.Holding,
		Dequeued:        ls.Delivered,
		Delivered:       delivered,
	}
	err := fl.Check()
	if err == nil {
		t.Fatalf("ledger balanced despite %d silently swallowed packets", swallowed)
	}
	if !strings.Contains(err.Error(), "pre-queue imbalance") {
		t.Errorf("error %q, want the pre-queue segment to surface the leak", err)
	}
	// Same rig with the rogue element removed balances.
	fl.Enqueued += int64(swallowed)
	fl.Dequeued += int64(swallowed)
	fl.Delivered += int64(swallowed)
	if err := fl.Check(); err != nil {
		t.Errorf("repaired ledger still unbalanced: %v", err)
	}
}

func deliverEvent(flow packet.FlowID, at time.Duration) obs.Event {
	return obs.Event{Type: obs.EvDeliver, Flow: flow, At: at, Seq: 1, Bytes: 1500}
}

func TestMonitorStallDetection(t *testing.T) {
	m := NewMonitor()
	m.Track(0, 2*time.Second, 0)
	m.Emit(deliverEvent(0, 1*time.Second))
	if v := m.Sweep(2 * time.Second); len(v) != 0 {
		t.Errorf("violations at 1s idle (threshold 2s): %v", v)
	}
	v := m.Sweep(4 * time.Second)
	if len(v) != 1 || v[0].Kind != "stall" || v[0].Flow != 0 {
		t.Fatalf("Sweep = %v, want one stall on flow 0", v)
	}
	// Latched: the same episode reports once.
	if v := m.Sweep(5 * time.Second); len(v) != 0 {
		t.Errorf("stall reported twice for one episode: %v", v)
	}
	// A delivery re-arms the latch; a fresh episode reports again.
	m.Emit(deliverEvent(0, 6*time.Second))
	if v := m.Sweep(7 * time.Second); len(v) != 0 {
		t.Errorf("violations right after progress: %v", v)
	}
	if v := m.Sweep(9 * time.Second); len(v) != 1 {
		t.Errorf("second stall episode not reported: %v", v)
	}
}

func TestMonitorNeverDeliveredMeasuresFromStart(t *testing.T) {
	m := NewMonitor()
	m.Track(0, time.Second, 10*time.Second) // starts at t=10s
	if v := m.Sweep(5 * time.Second); len(v) != 0 {
		t.Errorf("stall before the flow even starts: %v", v)
	}
	if v := m.Sweep(10500 * time.Millisecond); len(v) != 0 {
		t.Errorf("stall within threshold of start: %v", v)
	}
	if v := m.Sweep(12 * time.Second); len(v) != 1 {
		t.Errorf("flow that never delivered not flagged: %v", v)
	}
}

func TestMonitorCheckCounters(t *testing.T) {
	m := NewMonitor()
	m.Emit(obs.Event{Type: obs.EvEnqueue, Flow: 0})
	m.Emit(obs.Event{Type: obs.EvDequeue, Flow: 0})
	m.Emit(obs.Event{Type: obs.EvDequeue, Flow: 0}) // invented packet
	v := m.CheckCounters(time.Second)
	if len(v) != 1 || v[0].Kind != "counter" {
		t.Fatalf("CheckCounters = %v, want one counter violation", v)
	}
	if !strings.Contains(v[0].Msg, "dequeued 2 > enqueued 1") {
		t.Errorf("violation message %q", v[0].Msg)
	}
	// Global events (negative flow) must not disturb per-flow counters.
	m.Emit(obs.Event{Type: obs.EvLinkRate, Flow: -1})
	if got := m.Events(); got != 4 {
		t.Errorf("Events = %d, want 4", got)
	}
}

func TestCaptureAttachesContext(t *testing.T) {
	m := NewMonitor()
	m.Emit(obs.Event{Type: obs.EvDeliver, Flow: 1, Seq: 77, At: 3 * time.Second})
	e := Capture("bbr-two", 42, m, func() { panic("element bug") })
	if e == nil {
		t.Fatal("panic not captured")
	}
	if e.Kind != KindPanic || e.Scenario != "bbr-two" || e.Seed != 42 {
		t.Errorf("RunError = %+v", e)
	}
	if e.Msg != "element bug" || e.Stack == "" {
		t.Errorf("missing panic payload or stack: %+v", e)
	}
	if !strings.Contains(e.LastEvent, "deliver") || e.At != 3*time.Second {
		t.Errorf("last-event context = %q at %v", e.LastEvent, e.At)
	}
	if !strings.Contains(e.Error(), "seed 42") {
		t.Errorf("Error() = %q, want the seed for reproduction", e.Error())
	}
	if e := Capture("ok", 1, nil, func() {}); e != nil {
		t.Errorf("clean run produced %+v", e)
	}
}

func TestSectionDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := Section("stuck", 20*time.Millisecond, func() { <-release })
	if e == nil || e.Kind != KindDeadline {
		t.Fatalf("Section = %+v, want deadline error", e)
	}
	if e := Section("fine", time.Second, func() {}); e != nil {
		t.Errorf("fast section errored: %+v", e)
	}
	if e := Section("no-limit", 0, func() {}); e != nil {
		t.Errorf("unlimited section errored: %+v", e)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	var m Manifest
	m.Add(nil) // ignored
	m.Add(&RunError{Scenario: "x", Kind: KindPanic, Msg: "boom"})
	if len(m.Errors) != 1 {
		t.Fatalf("Errors = %d, want 1 (nil adds ignored)", len(m.Errors))
	}
	path := t.TempDir() + "/errors.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var got Manifest
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(got.Errors) != 1 || got.Errors[0].Scenario != "x" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if got := o.StallAfter(40 * time.Millisecond); got != 40*time.Second {
		t.Errorf("StallAfter(40ms) = %v, want 40s (K=1000)", got)
	}
	if got := o.CheckInterval(); got != time.Second {
		t.Errorf("CheckInterval = %v, want 1s", got)
	}
	o = Options{StallK: 10, CheckEvery: 100 * time.Millisecond}
	if got := o.StallAfter(40 * time.Millisecond); got != 400*time.Millisecond {
		t.Errorf("StallAfter(40ms, K=10) = %v", got)
	}
	if got := o.CheckInterval(); got != 100*time.Millisecond {
		t.Errorf("CheckInterval = %v", got)
	}
}

func TestReportString(t *testing.T) {
	var r Report
	if !r.Ok() || r.String() != "guard: ok" {
		t.Errorf("empty report: Ok=%v String=%q", r.Ok(), r.String())
	}
	r.Violations = append(r.Violations, Violation{Kind: "stall", Flow: 1, At: time.Second, Msg: "m"})
	r.Err = &RunError{Scenario: "s", Kind: KindDeadline, Msg: "late"}
	if r.Ok() {
		t.Error("report with violations Ok")
	}
	s := r.String()
	for _, want := range []string{"[stall] flow 1", "fatal:", "deadline"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
