package guard

import (
	"fmt"
	"time"

	"starvation/internal/obs"
	"starvation/internal/packet"
)

// Monitor is an obs.Probe that folds the event stream into liveness state:
// the last event seen (panic context), per-flow delivery progress (stall
// detection), and event-derived counter inequalities. It is read-only with
// respect to the simulation — it schedules nothing and draws no
// randomness — so installing it never perturbs a realization.
type Monitor struct {
	flows    []monFlow
	last     obs.Event
	seenAny  bool
	eventCnt uint64
}

type monFlow struct {
	tracked       bool
	stallAfter    time.Duration
	startAt       time.Duration
	lastDelivery  time.Duration
	everDelivered bool
	stalled       bool // latched so each stall episode reports once

	delivered, enqueued, dequeued int64
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// Reset returns the monitor to its freshly constructed state while keeping
// the per-flow slice capacity: tracking registrations, stall latches, and
// counters are all cleared, so a monitor recycled across runs (session
// reuse) behaves exactly like a new one.
func (m *Monitor) Reset() {
	m.flows = m.flows[:0]
	m.last = obs.Event{}
	m.seenAny = false
	m.eventCnt = 0
}

// Track registers a flow for stall detection: it is flagged when no
// delivery lands for stallAfter of virtual time (measured from startAt
// until its first delivery). Untracked flows still feed the counter
// checks.
func (m *Monitor) Track(flow packet.FlowID, stallAfter, startAt time.Duration) {
	f := m.flow(flow)
	f.tracked = true
	f.stallAfter = stallAfter
	f.startAt = startAt
}

func (m *Monitor) flow(id packet.FlowID) *monFlow {
	for int(id) >= len(m.flows) {
		m.flows = append(m.flows, monFlow{})
	}
	return &m.flows[id]
}

// Emit implements obs.Probe.
func (m *Monitor) Emit(e obs.Event) {
	m.last = e
	m.seenAny = true
	m.eventCnt++
	if e.Flow < 0 {
		return
	}
	f := m.flow(e.Flow)
	switch e.Type {
	case obs.EvEnqueue:
		f.enqueued++
	case obs.EvDequeue:
		f.dequeued++
	case obs.EvDeliver:
		f.delivered++
		f.lastDelivery = e.At
		f.everDelivered = true
		f.stalled = false // progress re-arms the stall latch
	}
}

// LastEvent returns the most recent event and whether any was seen.
func (m *Monitor) LastEvent() (obs.Event, bool) { return m.last, m.seenAny }

// Events returns the number of events observed.
func (m *Monitor) Events() uint64 { return m.eventCnt }

// Sweep evaluates stall conditions at virtual time now and returns newly
// detected violations. A flow reports once per stall episode: the latch
// clears when a delivery lands.
func (m *Monitor) Sweep(now time.Duration) []Violation {
	var out []Violation
	for i := range m.flows {
		f := &m.flows[i]
		if !f.tracked || f.stalled || f.stallAfter <= 0 {
			continue
		}
		since := f.startAt // a flow that never delivered is measured from its start
		if f.everDelivered {
			since = f.lastDelivery
		}
		if now < since {
			continue // flow has not started yet
		}
		if idle := now - since; idle > f.stallAfter {
			f.stalled = true
			out = append(out, Violation{
				Kind: "stall",
				Flow: i,
				At:   now,
				Msg:  fmt.Sprintf("no delivery for %v (threshold %v, last delivery at %v)", idle, f.stallAfter, f.lastDelivery),
			})
		}
	}
	return out
}

// CheckCounters returns violations of the event-derived counter
// inequalities that must hold at any instant: a flow cannot dequeue more
// than it enqueued, nor deliver more than it dequeued.
func (m *Monitor) CheckCounters(now time.Duration) []Violation {
	var out []Violation
	for i := range m.flows {
		f := &m.flows[i]
		if f.dequeued > f.enqueued {
			out = append(out, Violation{Kind: "counter", Flow: i, At: now,
				Msg: fmt.Sprintf("dequeued %d > enqueued %d", f.dequeued, f.enqueued)})
		}
		if f.delivered > f.dequeued {
			out = append(out, Violation{Kind: "counter", Flow: i, At: now,
				Msg: fmt.Sprintf("delivered %d > dequeued %d", f.delivered, f.dequeued)})
		}
	}
	return out
}
