package guard

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"time"
)

// ErrKind classifies a RunError.
type ErrKind string

const (
	// KindPanic: the run panicked (element or scenario bug).
	KindPanic ErrKind = "panic"
	// KindDeadline: the run exceeded its wall-clock budget.
	KindDeadline ErrKind = "deadline"
	// KindInvariant: a guard invariant (conservation, stall) was treated
	// as fatal by the caller.
	KindInvariant ErrKind = "invariant"
	// KindCancelled: the run was stopped because its batch was cancelled
	// (not a failure of the run itself).
	KindCancelled ErrKind = "cancelled"
	// KindError: the run body returned an ordinary error (I/O, config).
	KindError ErrKind = "error"
	// KindExport: a telemetry/trace exporter (JSONL sink, metrics file)
	// failed to write. The simulation itself completed; its outputs are
	// suspect because the recorded stream is incomplete.
	KindExport ErrKind = "export"
)

// Retryable reports whether a failure of this kind is worth re-running:
// the fault is transient or environmental rather than a property of the
// configuration itself. Panics, blown deadlines, export failures, and
// ordinary errors all qualify — a flaky scenario, a hung job, or a full
// disk can succeed on the next attempt. Cancellation is terminal (the
// batch is going away, retrying fights the operator) and invariant
// violations are terminal (the run *completed* and produced provably
// wrong data; running it again deterministically reproduces the breach).
// This table is the supervision contract internal/runner enforces.
func (k ErrKind) Retryable() bool {
	switch k {
	case KindPanic, KindDeadline, KindExport, KindError:
		return true
	}
	return false
}

// RunError is the structured failure of one scenario run: enough context
// (scenario ID, seed, last observed event) to reproduce the failure
// offline, in a form a batch driver can serialize and skip past.
type RunError struct {
	Scenario string  `json:"scenario"`
	Seed     int64   `json:"seed,omitempty"`
	Kind     ErrKind `json:"kind"`
	Msg      string  `json:"msg"`
	// At is the virtual time of the last observation before failure.
	At time.Duration `json:"at_ns,omitempty"`
	// LastEvent describes the last probe event before the failure, when a
	// Monitor was watching the run.
	LastEvent string `json:"last_event,omitempty"`
	// Stack is the panic stack trace, when Kind is KindPanic.
	Stack string `json:"stack,omitempty"`
}

// Error implements error.
func (e *RunError) Error() string {
	s := fmt.Sprintf("%s: %s: %s", e.Scenario, e.Kind, e.Msg)
	if e.Seed != 0 {
		s += fmt.Sprintf(" (seed %d)", e.Seed)
	}
	if e.LastEvent != "" {
		s += fmt.Sprintf(" [last event: %s]", e.LastEvent)
	}
	return s
}

// Capture runs fn, converting a panic into a RunError tagged with the
// scenario ID and seed. When a Monitor is supplied its last event is
// attached as failure context. Returns nil when fn completes normally.
func Capture(scenario string, seed int64, m *Monitor, fn func()) (rerr *RunError) {
	defer func() {
		if r := recover(); r != nil {
			e := &RunError{
				Scenario: scenario,
				Seed:     seed,
				Kind:     KindPanic,
				Msg:      fmt.Sprint(r),
				Stack:    string(debug.Stack()),
			}
			if m != nil {
				if ev, ok := m.LastEvent(); ok {
					e.At = ev.At
					e.LastEvent = fmt.Sprintf("%s flow=%d seq=%d at=%v", ev.Type, ev.Flow, ev.Seq, ev.At)
				}
			}
			rerr = e
		}
	}()
	fn()
	return nil
}

// Section runs fn under Capture with a wall-clock deadline. fn executes in
// a separate goroutine; on deadline the goroutine is abandoned (Go offers
// no way to kill it — it keeps running to completion in the background)
// and a deadline RunError is returned so the caller's batch can continue.
// A deadline of 0 disables the timer.
func Section(id string, deadline time.Duration, fn func()) *RunError {
	done := make(chan *RunError, 1)
	go func() {
		done <- Capture(id, 0, nil, fn)
	}()
	if deadline <= 0 {
		return <-done
	}
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case e := <-done:
		return e
	case <-t.C:
		return &RunError{
			Scenario: id,
			Kind:     KindDeadline,
			Msg:      fmt.Sprintf("exceeded wall-clock deadline %v; abandoned", deadline),
		}
	}
}

// Manifest accumulates the RunErrors of a batch for serialization to an
// errors.json the next tool (or human) can triage.
type Manifest struct {
	Errors []*RunError `json:"errors"`
}

// Add appends e; nil errors are ignored so callers can add
// unconditionally.
func (m *Manifest) Add(e *RunError) {
	if e != nil {
		m.Errors = append(m.Errors, e)
	}
}

// WriteFile serializes the manifest as indented JSON at path. An empty
// manifest writes `{"errors": []}` rather than nothing, so consumers can
// distinguish "clean batch" from "batch never ran".
func (m *Manifest) WriteFile(path string) error {
	out := m.Errors
	if out == nil {
		out = []*RunError{}
	}
	data, err := json.MarshalIndent(Manifest{Errors: out}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
