package guard

import (
	"reflect"
	"testing"
	"time"

	"starvation/internal/obs"
)

// TestMonitorResetIndistinguishableFromFresh pins satellite 1's contract
// for the liveness monitor: after Reset, re-tracking and replaying the same
// event stream produces the same last-event state, counters, and sweep
// verdicts as a fresh monitor — with no stall latches, tracking
// registrations, or progress counters leaking from the previous run.
func TestMonitorResetIndistinguishableFromFresh(t *testing.T) {
	drive := func(m *Monitor) ([]Violation, []Violation, obs.Event, uint64) {
		m.Track(0, 50*time.Millisecond, 0)
		m.Track(1, 50*time.Millisecond, 10*time.Millisecond)
		m.Emit(obs.Event{Type: obs.EvEnqueue, Flow: 0, At: time.Millisecond})
		m.Emit(obs.Event{Type: obs.EvDequeue, Flow: 0, At: 2 * time.Millisecond})
		m.Emit(obs.Event{Type: obs.EvDeliver, Flow: 0, At: 3 * time.Millisecond})
		// By 100ms both flows are idle past the threshold: each must stall
		// exactly once, at the first sweep past its last progress.
		v1 := m.Sweep(100 * time.Millisecond)
		v2 := m.Sweep(200 * time.Millisecond) // latched: no repeat report
		last, _ := m.LastEvent()
		return v1, v2, last, m.Events()
	}

	fresh := NewMonitor()
	fv1, fv2, flast, fcnt := drive(fresh)
	if len(fv1) != 2 || len(fv2) != 0 {
		t.Fatalf("fresh monitor baseline unexpected: sweep1=%v sweep2=%v", fv1, fv2)
	}

	reused := NewMonitor()
	drive(reused)
	// Dirty it beyond the scenario: extra flow, extra stall latches.
	reused.Track(5, time.Millisecond, 0)
	reused.Emit(obs.Event{Type: obs.EvDeliver, Flow: 5, At: time.Second})
	reused.Sweep(10 * time.Second)
	reused.Reset()
	if _, seen := reused.LastEvent(); seen || reused.Events() != 0 {
		t.Fatal("reset monitor still reports events")
	}
	if v := reused.Sweep(time.Hour); len(v) != 0 {
		t.Fatalf("reset monitor swept violations with nothing tracked: %v", v)
	}
	rv1, rv2, rlast, rcnt := drive(reused)
	if !reflect.DeepEqual(rv1, fv1) || !reflect.DeepEqual(rv2, fv2) {
		t.Errorf("reset monitor sweep diverged: got %v,%v want %v,%v", rv1, rv2, fv1, fv2)
	}
	if rlast != flast || rcnt != fcnt {
		t.Errorf("reset monitor state diverged: last %+v events %d, want %+v %d", rlast, rcnt, flast, fcnt)
	}
	if cc := reused.CheckCounters(time.Second); len(cc) != 0 {
		t.Errorf("reset monitor counter check: %v", cc)
	}
}

// TestLedgerResetIndistinguishableFromFresh pins that a reset ledger
// refills to the same state as a fresh one and holds no ghost flows.
func TestLedgerResetIndistinguishableFromFresh(t *testing.T) {
	fill := func(l *Ledger) {
		l.Flows = append(l.Flows, FlowLedger{
			Name: "f0", Sent: 100, Enqueued: 98, DroppedAtQueue: 2,
			Dequeued: 97, HeldInQueue: 1, Delivered: 96, HeldPostQueue: 1,
		})
	}
	fresh := &Ledger{}
	fill(fresh)
	if err := fresh.Check(); err != nil {
		t.Fatalf("baseline ledger should balance: %v", err)
	}

	reused := &Ledger{}
	fill(reused)
	reused.Flows = append(reused.Flows, FlowLedger{Name: "ghost", Sent: 5}) // unbalanced
	if err := reused.Check(); err == nil {
		t.Fatal("dirty ledger should fail its check")
	}
	reused.Reset()
	if len(reused.Flows) != 0 {
		t.Fatalf("reset ledger holds %d flows", len(reused.Flows))
	}
	fill(reused)
	if !reflect.DeepEqual(reused, fresh) {
		t.Errorf("reset ledger diverged:\n got %+v\nwant %+v", reused, fresh)
	}
	if err := reused.Check(); err != nil {
		t.Errorf("refilled reset ledger: %v", err)
	}
}
