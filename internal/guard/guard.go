// Package guard is the run-guard layer: it makes every emulator run
// self-checking. It folds the observability probe stream (internal/obs)
// into a packet-conservation ledger (every sent packet must be delivered,
// dropped, or accounted in-flight — per flow and globally), watches flow
// progress so stalled flows and livelocked runs are flagged instead of
// silently producing garbage, enforces per-run wall-clock deadlines, and
// converts panics into structured RunError values so a batch driver
// (cmd/figures) can record a failing scenario and keep going.
//
// The layer is strictly read-only with respect to the simulation: the
// Monitor draws no randomness and schedules no events, and the periodic
// guard sweeps in internal/network only read counters, so a fixed-seed run
// produces bit-identical flow results with guards on or off.
package guard

import (
	"fmt"
	"time"
)

// Options configures the run-guard layer for one run. The zero value of
// each field selects the documented default.
type Options struct {
	// StallK flags a flow as stalled when it has delivered nothing to its
	// receiver for StallK × its Rm of virtual time. Default 1000 — with
	// Rm = 40 ms that is 40 s without a single delivery, far beyond any
	// legitimate RTO backoff, yet a starved-but-alive flow (the paper's
	// subject) still trickles often enough to stay clear.
	StallK float64
	// CheckEvery is the virtual-time cadence of the progress sweep.
	// Default 1 s.
	CheckEvery time.Duration
	// WallClock bounds the real (wall) time of one run; a run exceeding it
	// is halted and reported as a deadline RunError. 0 disables. This is
	// the livelock backstop: a run whose virtual clock stops advancing
	// never reaches a virtual-time check, but it still burns wall time.
	WallClock time.Duration
}

// DefaultStallK is the stall threshold multiple applied when
// Options.StallK is zero.
const DefaultStallK = 1000

// DefaultCheckEvery is the sweep cadence applied when Options.CheckEvery
// is zero.
const DefaultCheckEvery = time.Second

func (o Options) stallK() float64 {
	if o.StallK > 0 {
		return o.StallK
	}
	return DefaultStallK
}

// StallAfter returns the no-delivery duration after which a flow with the
// given Rm counts as stalled.
func (o Options) StallAfter(rm time.Duration) time.Duration {
	return time.Duration(o.stallK() * float64(rm))
}

// CheckInterval returns the effective sweep cadence.
func (o Options) CheckInterval() time.Duration {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return DefaultCheckEvery
}

// Violation is one invariant breach observed during or after a run.
// Violations are diagnostics, not control flow: the run completes and the
// report carries them.
type Violation struct {
	// Kind is "stall" (a flow made no delivery progress), "conservation"
	// (the packet ledger does not balance), or "counter" (an event-derived
	// counter inequality failed).
	Kind string
	// Flow is the offending flow, -1 for global violations.
	Flow int
	// At is the virtual time of detection.
	At time.Duration
	// Msg describes the breach.
	Msg string
}

func (v Violation) String() string {
	if v.Flow >= 0 {
		return fmt.Sprintf("[%s] flow %d at %v: %s", v.Kind, v.Flow, v.At, v.Msg)
	}
	return fmt.Sprintf("[%s] at %v: %s", v.Kind, v.At, v.Msg)
}

// Report is the guard outcome of one run.
type Report struct {
	// Violations lists invariant breaches in detection order.
	Violations []Violation
	// Err is set when the guard had to terminate the run (wall-clock
	// deadline exceeded).
	Err *RunError
}

// Ok reports whether the run passed every check.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && r.Err == nil }

// String renders the report for CLI output.
func (r *Report) String() string {
	if r.Ok() {
		return "guard: ok"
	}
	s := fmt.Sprintf("guard: %d violation(s)", len(r.Violations))
	for _, v := range r.Violations {
		s += "\n  " + v.String()
	}
	if r.Err != nil {
		s += "\n  fatal: " + r.Err.Error()
	}
	return s
}
