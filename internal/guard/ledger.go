package guard

import (
	"fmt"
	"strings"
)

// FlowLedger is the per-flow packet-conservation ledger: a snapshot of
// every place a transmitted packet can legally be at the end of a run. It
// is filled from element counters (see network.Result.Ledger), so the
// check works with no probe attached and independently cross-checks the
// event stream.
//
// Three equations must balance, one per pipeline segment:
//
//	Sent + Duplicated = DroppedPreQueue + HeldPreQueue + Enqueued + DroppedAtQueue
//	Enqueued          = HeldInQueue + Dequeued + DroppedMidPath
//	Dequeued          = HeldPostQueue + Delivered
//
// On a multi-link path the queue segment spans the whole chain: Enqueued
// is acceptance into the first bottleneck, Dequeued is departure from the
// last, HeldInQueue covers every intermediate queue and inter-hop
// propagation, and DroppedMidPath is drop-tail discards at any bottleneck
// after the first (zero on the classic single-bottleneck path).
//
// Any element that swallows or invents packets without reporting them
// breaks a segment equation and is caught by Check.
type FlowLedger struct {
	Name string

	Sent            int64 // sender transmissions (incl. retransmits)
	Duplicated      int64 // extra copies injected by a duplicator
	DroppedPreQueue int64 // discarded by loss gates before the bottleneck
	HeldPreQueue    int64 // inside a reorder element at the horizon
	Enqueued        int64 // accepted into the first bottleneck FIFO
	DroppedAtQueue  int64 // drop-tail discards at the first bottleneck
	HeldInQueue     int64 // queued (any link) or between links at the horizon
	DroppedMidPath  int64 // drop-tail discards at bottlenecks after the first
	Dequeued        int64 // completed serialization at the last bottleneck
	HeldPostQueue   int64 // inside propagation/jitter boxes at the horizon
	Delivered       int64 // arrived at the receiver endpoint
}

// Check reports the flow's first unbalanced segment, nil if all balance.
func (f *FlowLedger) Check() error {
	type field struct {
		name string
		v    int64
	}
	for _, fd := range []field{
		{"Sent", f.Sent}, {"Duplicated", f.Duplicated},
		{"DroppedPreQueue", f.DroppedPreQueue}, {"HeldPreQueue", f.HeldPreQueue},
		{"Enqueued", f.Enqueued}, {"DroppedAtQueue", f.DroppedAtQueue},
		{"HeldInQueue", f.HeldInQueue}, {"DroppedMidPath", f.DroppedMidPath},
		{"Dequeued", f.Dequeued},
		{"HeldPostQueue", f.HeldPostQueue}, {"Delivered", f.Delivered},
	} {
		if fd.v < 0 {
			return fmt.Errorf("flow %s: negative ledger entry %s = %d", f.Name, fd.name, fd.v)
		}
	}
	if in, out := f.Sent+f.Duplicated, f.DroppedPreQueue+f.HeldPreQueue+f.Enqueued+f.DroppedAtQueue; in != out {
		return fmt.Errorf("flow %s: pre-queue imbalance: sent %d + duplicated %d = %d, but gates+queue account for %d (dropped %d, held %d, enqueued %d, tail-dropped %d)",
			f.Name, f.Sent, f.Duplicated, in, out, f.DroppedPreQueue, f.HeldPreQueue, f.Enqueued, f.DroppedAtQueue)
	}
	if out := f.HeldInQueue + f.Dequeued + f.DroppedMidPath; f.Enqueued != out {
		return fmt.Errorf("flow %s: queue imbalance: enqueued %d but held %d + dequeued %d + mid-path drops %d = %d",
			f.Name, f.Enqueued, f.HeldInQueue, f.Dequeued, f.DroppedMidPath, out)
	}
	if out := f.HeldPostQueue + f.Delivered; f.Dequeued != out {
		return fmt.Errorf("flow %s: post-queue imbalance: dequeued %d but in-transit %d + delivered %d = %d",
			f.Name, f.Dequeued, f.HeldPostQueue, f.Delivered, out)
	}
	return nil
}

// InFlight returns the packets legally in flight at the horizon.
func (f *FlowLedger) InFlight() int64 {
	return f.HeldPreQueue + f.HeldInQueue + f.HeldPostQueue
}

// Ledger is the whole run's conservation state: one FlowLedger per flow.
type Ledger struct {
	Flows []FlowLedger
}

// Reset empties the ledger while keeping the per-flow slice capacity, so a
// ledger recycled across runs can be refilled without reallocating.
func (l *Ledger) Reset() {
	l.Flows = l.Flows[:0]
}

// Check verifies every flow's segment equations plus the global sums (the
// global check is redundant when per-flow checks pass, but catches
// cross-flow misattribution if a ledger is assembled from a probe stream).
// All failures are joined into one error; nil means the ledger balances.
func (l *Ledger) Check() error {
	var errs []string
	var g FlowLedger
	g.Name = "global"
	for i := range l.Flows {
		f := &l.Flows[i]
		if err := f.Check(); err != nil {
			errs = append(errs, err.Error())
		}
		g.Sent += f.Sent
		g.Duplicated += f.Duplicated
		g.DroppedPreQueue += f.DroppedPreQueue
		g.HeldPreQueue += f.HeldPreQueue
		g.Enqueued += f.Enqueued
		g.DroppedAtQueue += f.DroppedAtQueue
		g.HeldInQueue += f.HeldInQueue
		g.DroppedMidPath += f.DroppedMidPath
		g.Dequeued += f.Dequeued
		g.HeldPostQueue += f.HeldPostQueue
		g.Delivered += f.Delivered
	}
	if err := g.Check(); err != nil {
		errs = append(errs, err.Error())
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("guard: conservation violated:\n  %s", strings.Join(errs, "\n  "))
}
