// Package units provides the physical quantities used throughout the
// emulator: data rates in bits per second, byte counts, and conversions
// between them and time. Keeping these in one small package avoids the
// classic bits-vs-bytes and Mbit-vs-MByte mistakes in rate arithmetic.
package units

import (
	"fmt"
	"time"
)

// Rate is a data rate in bits per second. The zero value means "no rate"
// (interpreted by consumers as unlimited or unset, depending on context).
type Rate float64

// Common rate constructors.
const (
	BitPerSec  Rate = 1
	KbitPerSec Rate = 1e3
	MbitPerSec Rate = 1e6
	GbitPerSec Rate = 1e9
)

// Kbps returns a Rate of v kilobits per second.
func Kbps(v float64) Rate { return Rate(v) * KbitPerSec }

// Mbps returns a Rate of v megabits per second.
func Mbps(v float64) Rate { return Rate(v) * MbitPerSec }

// Gbps returns a Rate of v gigabits per second.
func Gbps(v float64) Rate { return Rate(v) * GbitPerSec }

// Mbit reports the rate in megabits per second.
func (r Rate) Mbit() float64 { return float64(r) / 1e6 }

// BitsPerSec reports the rate in bits per second.
func (r Rate) BitsPerSec() float64 { return float64(r) }

// BytesPerSec reports the rate in bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) / 8 }

// IsZero reports whether the rate is unset.
func (r Rate) IsZero() bool { return r == 0 }

// TxTime returns the serialization (transmission) time of a payload of the
// given size at this rate. A zero rate yields zero time, matching the
// "unlimited" interpretation of the zero value.
func (r Rate) TxTime(bytes int) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) * 8 / float64(r) * float64(time.Second))
}

// BytesIn returns how many whole bytes this rate delivers in d.
func (r Rate) BytesIn(d time.Duration) int {
	if r <= 0 || d <= 0 {
		return 0
	}
	return int(float64(r) / 8 * d.Seconds())
}

// Interval returns the packet spacing needed to pace packets of the given
// size at this rate. A zero or negative rate yields zero (no pacing).
func (r Rate) Interval(bytes int) time.Duration {
	return r.TxTime(bytes)
}

// String formats the rate with an appropriate SI suffix.
func (r Rate) String() string {
	switch {
	case r >= GbitPerSec:
		return fmt.Sprintf("%.3g Gbit/s", float64(r)/1e9)
	case r >= MbitPerSec:
		return fmt.Sprintf("%.3g Mbit/s", float64(r)/1e6)
	case r >= KbitPerSec:
		return fmt.Sprintf("%.3g Kbit/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.3g bit/s", float64(r))
	}
}

// RateFromBytes returns the rate that delivers the given byte count over d.
// It returns 0 when d is not positive.
func RateFromBytes(bytes int, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(bytes) * 8 / d.Seconds())
}

// BDPBytes returns the bandwidth-delay product in bytes for a path with the
// given bottleneck rate and round-trip time.
func BDPBytes(r Rate, rtt time.Duration) int {
	return int(float64(r) / 8 * rtt.Seconds())
}

// BDPPackets returns the bandwidth-delay product measured in packets of the
// given size, rounded up so a full BDP of packets always fits.
func BDPPackets(r Rate, rtt time.Duration, packetSize int) int {
	if packetSize <= 0 {
		return 0
	}
	b := BDPBytes(r, rtt)
	return (b + packetSize - 1) / packetSize
}
