package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRateConstructors(t *testing.T) {
	cases := []struct {
		got  Rate
		want float64 // bits per second
	}{
		{Kbps(1), 1e3},
		{Kbps(64), 64e3},
		{Mbps(1), 1e6},
		{Mbps(120), 120e6},
		{Gbps(1), 1e9},
		{Gbps(2.5), 2.5e9},
	}
	for _, c := range cases {
		if c.got.BitsPerSec() != c.want {
			t.Errorf("got %v bits/s, want %v", c.got.BitsPerSec(), c.want)
		}
	}
}

func TestTxTime(t *testing.T) {
	// 1500 bytes at 12 Mbit/s = 1 ms exactly.
	if got := Mbps(12).TxTime(1500); got != time.Millisecond {
		t.Errorf("TxTime(1500) at 12 Mbit/s = %v, want 1ms", got)
	}
	// 1500 bytes at 120 Mbit/s = 100 µs.
	if got := Mbps(120).TxTime(1500); got != 100*time.Microsecond {
		t.Errorf("TxTime(1500) at 120 Mbit/s = %v, want 100µs", got)
	}
	if got := Rate(0).TxTime(1500); got != 0 {
		t.Errorf("zero rate TxTime = %v, want 0 (unlimited)", got)
	}
	if got := Rate(-5).TxTime(1500); got != 0 {
		t.Errorf("negative rate TxTime = %v, want 0", got)
	}
}

func TestBytesIn(t *testing.T) {
	if got := Mbps(8).BytesIn(time.Second); got != 1_000_000 {
		t.Errorf("8 Mbit/s over 1s = %d bytes, want 1000000", got)
	}
	if got := Mbps(8).BytesIn(0); got != 0 {
		t.Errorf("zero duration = %d bytes, want 0", got)
	}
	if got := Rate(0).BytesIn(time.Second); got != 0 {
		t.Errorf("zero rate = %d bytes, want 0", got)
	}
}

func TestRateFromBytes(t *testing.T) {
	if got := RateFromBytes(1_000_000, time.Second); got != Mbps(8) {
		t.Errorf("1MB/s = %v, want 8 Mbit/s", got)
	}
	if got := RateFromBytes(100, 0); got != 0 {
		t.Errorf("zero duration rate = %v, want 0", got)
	}
	if got := RateFromBytes(100, -time.Second); got != 0 {
		t.Errorf("negative duration rate = %v, want 0", got)
	}
}

func TestBDP(t *testing.T) {
	// 120 Mbit/s × 40 ms = 600000 bytes.
	if got := BDPBytes(Mbps(120), 40*time.Millisecond); got != 600_000 {
		t.Errorf("BDPBytes = %d, want 600000", got)
	}
	if got := BDPPackets(Mbps(120), 40*time.Millisecond, 1500); got != 400 {
		t.Errorf("BDPPackets = %d, want 400", got)
	}
	// Rounds up to fit a full BDP.
	if got := BDPPackets(Mbps(120), 40*time.Millisecond, 1499); got != 401 {
		t.Errorf("BDPPackets(1499) = %d, want 401", got)
	}
	if got := BDPPackets(Mbps(120), 40*time.Millisecond, 0); got != 0 {
		t.Errorf("BDPPackets(mss=0) = %d, want 0", got)
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		r    Rate
		want string
	}{
		{Gbps(2), "2 Gbit/s"},
		{Mbps(120), "120 Mbit/s"},
		{Kbps(64), "64 Kbit/s"},
		{Rate(500), "500 bit/s"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String(%v bits/s) = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

// Property: TxTime and RateFromBytes are inverses for positive inputs.
func TestQuickTxTimeRoundTrip(t *testing.T) {
	f := func(mbps uint16, pkts uint8) bool {
		rate := Mbps(float64(mbps%1000) + 1)
		bytes := (int(pkts) + 1) * 1500
		d := rate.TxTime(bytes)
		back := RateFromBytes(bytes, d)
		// Nanosecond truncation bounds the round-trip error.
		return math.Abs(float64(back)-float64(rate))/float64(rate) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BytesIn is monotone in duration.
func TestQuickBytesInMonotone(t *testing.T) {
	f := func(mbps uint16, msA, msB uint16) bool {
		rate := Mbps(float64(mbps%1000) + 1)
		a := time.Duration(msA) * time.Millisecond
		b := time.Duration(msB) * time.Millisecond
		if a > b {
			a, b = b, a
		}
		return rate.BytesIn(a) <= rate.BytesIn(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a BDP of packets always covers the BDP in bytes.
func TestQuickBDPPacketsCoverBytes(t *testing.T) {
	f := func(mbps uint16, ms uint8) bool {
		rate := Mbps(float64(mbps%1000) + 1)
		rtt := time.Duration(int(ms)+1) * time.Millisecond
		return BDPPackets(rate, rtt, 1500)*1500 >= BDPBytes(rate, rtt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
