package jitter

import (
	"math/rand"
	"testing"
	"time"
)

// FuzzPolicyBound drives every stateful policy with an arbitrary arrival
// pattern and checks the package contract: each returned delay lies in
// [0, Bound()]. TokenBucket is driven with arrivals spaced no tighter
// than its refill rate — the paper classifies it as a non-congestive
// delay source only while the input rate stays below the token rate, and
// under sustained overload its backlog delay legitimately exceeds the
// single-burst bound.
func FuzzPolicyBound(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(40))
	f.Add(int64(7), uint16(0), uint8(3))
	f.Add(int64(99), uint16(1000), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, maxMs uint16, n uint8) {
		maxD := time.Duration(maxMs) * time.Millisecond
		rng := rand.New(rand.NewSource(seed))
		policies := []Policy{
			None{},
			Constant{D: maxD},
			&Uniform{Max: maxD, Rng: rand.New(rand.NewSource(seed))},
			PeriodicAggregation{Period: maxD},
			PeriodicSpike{Period: 4 * maxD, SpikeLen: maxD},
			&GilbertElliott{PGoodToBad: 0.1, PBadToGood: 0.3, BadDelay: maxD,
				Rng: rand.New(rand.NewSource(seed))},
			&OneShotDip{Base: maxD, At: 20 * time.Millisecond},
			&Scripted{Max: maxD, Fn: func(now time.Duration) time.Duration {
				return now/7 - 3*time.Millisecond // wanders outside [0, Max]; must clamp
			}},
			Compound{Policies: []Policy{Constant{D: maxD / 2}, PeriodicAggregation{Period: maxD / 2}}},
		}
		now := time.Duration(0)
		for i := uint8(0); i < n; i++ {
			now += time.Duration(rng.Int63n(int64(5*time.Millisecond) + 1))
			for _, p := range policies {
				d := p.Delay(now, int64(i))
				if d < 0 || d > p.Bound() {
					t.Fatalf("%T: delay %v outside [0, %v] at now=%v", p, d, p.Bound(), now)
				}
			}
		}

		// TokenBucket under compliant load: arrivals at least one packet
		// time apart at the token rate.
		tb := &TokenBucket{RateBytesPerSec: 1.5e6, BurstBytes: 15000}
		minGap := time.Duration(1500 / tb.RateBytesPerSec * float64(time.Second))
		now = 0
		for i := uint8(0); i < n; i++ {
			now += minGap + time.Duration(rng.Int63n(int64(time.Millisecond)+1))
			d := tb.Delay(now, int64(i))
			if d < 0 || d > tb.Bound() {
				t.Fatalf("TokenBucket: delay %v outside [0, %v] at compliant load", d, tb.Bound())
			}
		}
	})
}
