package jitter

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNone(t *testing.T) {
	var p None
	if p.Delay(time.Second, 0) != 0 || p.Bound() != 0 {
		t.Error("None must add zero delay with zero bound")
	}
}

func TestConstant(t *testing.T) {
	p := Constant{D: 5 * time.Millisecond}
	for _, now := range []time.Duration{0, time.Second, time.Hour} {
		if got := p.Delay(now, 0); got != 5*time.Millisecond {
			t.Errorf("Delay(%v) = %v, want 5ms", now, got)
		}
	}
	if p.Bound() != 5*time.Millisecond {
		t.Error("Bound mismatch")
	}
}

func TestUniformWithinBound(t *testing.T) {
	p := &Uniform{Max: 10 * time.Millisecond, Rng: rand.New(rand.NewSource(1))}
	for i := 0; i < 1000; i++ {
		d := p.Delay(time.Duration(i)*time.Millisecond, int64(i))
		if d < 0 || d > p.Bound() {
			t.Fatalf("delay %v outside [0, %v]", d, p.Bound())
		}
	}
}

func TestUniformZeroMax(t *testing.T) {
	p := &Uniform{Max: 0, Rng: rand.New(rand.NewSource(1))}
	if p.Delay(0, 0) != 0 {
		t.Error("zero-max Uniform must return 0")
	}
}

func TestPeriodicAggregation(t *testing.T) {
	p := PeriodicAggregation{Period: 60 * time.Millisecond}
	cases := []struct {
		now, want time.Duration
	}{
		{0, 0}, // exactly on boundary
		{time.Millisecond, 59 * time.Millisecond}, // just past a boundary
		{59 * time.Millisecond, time.Millisecond}, // just before next
		{60 * time.Millisecond, 0},                // next boundary
		{61 * time.Millisecond, 59 * time.Millisecond},
		{120 * time.Millisecond, 0},
	}
	for _, c := range cases {
		if got := p.Delay(c.now, 0); got != c.want {
			t.Errorf("Delay(%v) = %v, want %v", c.now, got, c.want)
		}
	}
	if p.Bound() != 60*time.Millisecond {
		t.Error("Bound mismatch")
	}
}

func TestPeriodicAggregationZero(t *testing.T) {
	p := PeriodicAggregation{}
	if p.Delay(time.Second, 0) != 0 {
		t.Error("zero-period aggregation must pass through")
	}
}

func TestOneShotDip(t *testing.T) {
	p := &OneShotDip{Base: time.Millisecond, At: 10 * time.Second, Width: 3 * time.Millisecond}
	if got := p.Delay(5*time.Second, 0); got != time.Millisecond {
		t.Errorf("before window: %v, want 1ms", got)
	}
	if got := p.Delay(10*time.Second, 0); got != 0 {
		t.Errorf("at window start: %v, want 0", got)
	}
	if got := p.Delay(10*time.Second+2*time.Millisecond, 0); got != 0 {
		t.Errorf("inside window: %v, want 0", got)
	}
	if got := p.Delay(10*time.Second+3*time.Millisecond, 0); got != time.Millisecond {
		t.Errorf("after window: %v, want 1ms", got)
	}
}

func TestOneShotDipDefaultWidth(t *testing.T) {
	p := &OneShotDip{Base: time.Millisecond, At: 0}
	// Default width is Base + 2ms = 3ms.
	if got := p.Delay(2*time.Millisecond, 0); got != 0 {
		t.Errorf("inside default window: %v, want 0", got)
	}
	if got := p.Delay(3*time.Millisecond, 0); got != time.Millisecond {
		t.Errorf("past default window: %v, want 1ms", got)
	}
}

func TestTokenBucketPassesWithinRate(t *testing.T) {
	// 1500-byte packets every 10ms = 150 kB/s, bucket refills at 300 kB/s:
	// never delayed after priming.
	tb := &TokenBucket{RateBytesPerSec: 300_000, BurstBytes: 3000}
	for i := 0; i < 100; i++ {
		d := tb.Delay(time.Duration(i)*10*time.Millisecond, int64(i))
		if d != 0 {
			t.Fatalf("packet %d delayed %v under token rate", i, d)
		}
	}
}

func TestTokenBucketDelaysBurst(t *testing.T) {
	// A burst beyond the bucket must wait for refill.
	tb := &TokenBucket{RateBytesPerSec: 150_000, BurstBytes: 1500}
	if d := tb.Delay(0, 0); d != 0 {
		t.Fatalf("first packet delayed %v, want 0 (full bucket)", d)
	}
	d := tb.Delay(0, 1)
	if d <= 0 {
		t.Fatal("second packet in burst not delayed")
	}
	want := time.Duration(1500.0 / 150_000 * float64(time.Second))
	if d != want {
		t.Errorf("burst delay = %v, want %v", d, want)
	}
}

func TestScriptedClamping(t *testing.T) {
	p := &Scripted{
		Max: 10 * time.Millisecond,
		Fn: func(now time.Duration) time.Duration {
			return now - 5*time.Millisecond // negative early, huge late
		},
	}
	if got := p.Delay(0, 0); got != 0 {
		t.Errorf("negative script value not clamped to 0: %v", got)
	}
	if got := p.Delay(time.Second, 0); got != 10*time.Millisecond {
		t.Errorf("excess script value not clamped to Max: %v", got)
	}
	if got := p.Delay(8*time.Millisecond, 0); got != 3*time.Millisecond {
		t.Errorf("in-range script value altered: %v", got)
	}
}

// Property: every policy respects its own bound for arbitrary inputs.
func TestQuickPoliciesRespectBound(t *testing.T) {
	f := func(seed int64, nowMs uint16, seq int64) bool {
		rng := rand.New(rand.NewSource(seed))
		now := time.Duration(nowMs) * time.Millisecond
		policies := []Policy{
			None{},
			Constant{D: 7 * time.Millisecond},
			&Uniform{Max: 9 * time.Millisecond, Rng: rng},
			PeriodicAggregation{Period: 60 * time.Millisecond},
			&OneShotDip{Base: 2 * time.Millisecond, At: 50 * time.Millisecond},
			&Scripted{Max: 5 * time.Millisecond, Fn: func(t time.Duration) time.Duration {
				return time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
			}},
		}
		for _, p := range policies {
			d := p.Delay(now, seq)
			if d < 0 || d > p.Bound() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
