package jitter

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Parse turns a "kind:value" spec into a jitter policy. Kinds: const,
// uniform, aggregate (period), spike (len/period), burst (Gilbert-Elliott
// bad-state delay). Policies are stateful: call Parse once per flow and
// direction, with that flow's own rng (used by the randomized kinds).
func Parse(spec string, rng *rand.Rand) (Policy, error) {
	kind, valStr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("jitter spec %q: want kind:value (e.g. uniform:5ms)", spec)
	}
	switch kind {
	case "const":
		d, err := parseDelay(valStr)
		if err != nil {
			return nil, err
		}
		return Constant{D: d}, nil
	case "uniform":
		d, err := parseDelay(valStr)
		if err != nil {
			return nil, err
		}
		return &Uniform{Max: d, Rng: rng}, nil
	case "aggregate":
		d, err := parseDelay(valStr)
		if err != nil {
			return nil, err
		}
		return PeriodicAggregation{Period: d}, nil
	case "spike":
		lenStr, perStr, ok := strings.Cut(valStr, "/")
		if !ok {
			return nil, fmt.Errorf("spike spec: want spike:<len>/<period>")
		}
		l, err := parseDelay(lenStr)
		if err != nil {
			return nil, err
		}
		p, err := parseDelay(perStr)
		if err != nil {
			return nil, err
		}
		return PeriodicSpike{Period: p, SpikeLen: l}, nil
	case "burst":
		d, err := parseDelay(valStr)
		if err != nil {
			return nil, err
		}
		return &GilbertElliott{
			PGoodToBad: 0.02, PBadToGood: 0.2, BadDelay: d, Rng: rng,
		}, nil
	default:
		return nil, fmt.Errorf("unknown jitter kind %q (const, uniform, aggregate, spike, burst)", kind)
	}
}

// parseDelay parses a jitter magnitude: a non-negative duration. Negative
// delays would violate the Policy contract (delays live in [0, Bound]).
func parseDelay(s string) (time.Duration, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative jitter %v", d)
	}
	return d, nil
}
