// Package jitter implements the non-congestive delay element of the paper's
// network model (§3): a per-flow component that may hold packets or ACKs for
// any duration in [0, D] without reordering them.
//
// The paper's model is non-deterministic, not random: the element may choose
// any bounded delay pattern, including adversarial ones. Each named
// real-world jitter source (ACK aggregation, token bucket filters, OS
// scheduling noise, ...) is exposed here as a concrete Policy so scenarios
// can state exactly which mechanism produces their delays.
package jitter

import (
	"math/rand"
	"time"
)

// Policy chooses the non-congestive delay added to each packet of one flow.
// Implementations must keep every returned delay within [0, Bound()].
// Policies are stateful and must not be shared between flows or directions.
type Policy interface {
	// Delay returns the extra hold time for a packet passing the element at
	// virtual time now. seq is the packet's sequence number (policies that
	// target specific packets may use it; most ignore it).
	Delay(now time.Duration, seq int64) time.Duration
	// Bound returns D, the upper bound on delays this policy produces.
	Bound() time.Duration
}

// PacketAware is an optional extension for policies that need the packet's
// send timestamp — e.g. a shaper that emulates a target RTT trajectory must
// know how much delay the packet has already accumulated. Elements check
// for this interface and prefer DelayPacket when present.
type PacketAware interface {
	Policy
	// DelayPacket returns the hold time for a packet sent at sentAt that
	// reaches the element at now.
	DelayPacket(now, sentAt time.Duration, seq int64) time.Duration
}

// None adds no delay. Its bound is zero: an ideal path.
type None struct{}

// Delay implements Policy.
func (None) Delay(time.Duration, int64) time.Duration { return 0 }

// Bound implements Policy.
func (None) Bound() time.Duration { return 0 }

// Constant delays every packet by the same amount. A constant positive
// non-congestive delay is indistinguishable from extra propagation delay
// except to a sender that has already locked in a smaller RTT minimum.
type Constant struct{ D time.Duration }

// Delay implements Policy.
func (c Constant) Delay(time.Duration, int64) time.Duration { return c.D }

// Bound implements Policy.
func (c Constant) Bound() time.Duration { return c.D }

// Uniform draws an independent delay uniformly from [0, Max] per packet.
// This models aggregate end-host scheduling noise. Note the mean is
// positive, as the paper observes real jitter to be; averaging filters do
// not cancel it.
type Uniform struct {
	Max time.Duration
	Rng *rand.Rand
}

// Delay implements Policy.
func (u *Uniform) Delay(time.Duration, int64) time.Duration {
	if u.Max <= 0 {
		return 0
	}
	return time.Duration(u.Rng.Int63n(int64(u.Max) + 1))
}

// Bound implements Policy.
func (u *Uniform) Bound() time.Duration { return u.Max }

// PeriodicAggregation holds packets and releases them at the next integer
// multiple of Period, the way Wi-Fi frame aggregation or interrupt
// coalescing batches ACKs. The paper's PCC Vivace experiment (§5.3) delivers
// one flow's ACKs only at multiples of 60 ms using exactly this element.
type PeriodicAggregation struct{ Period time.Duration }

// Delay implements Policy.
func (p PeriodicAggregation) Delay(now time.Duration, _ int64) time.Duration {
	if p.Period <= 0 {
		return 0
	}
	rem := now % p.Period
	if rem == 0 {
		return 0
	}
	return p.Period - rem
}

// Bound implements Policy.
func (p PeriodicAggregation) Bound() time.Duration { return p.Period }

// OneShotDip is the Copa min-RTT poisoning element of §5.1: every packet is
// held for Base, except packets passing during one brief window starting at
// At, which are released immediately. With the path's configured
// propagation set to Rm−Base, all packets see an RTT floor of Rm except the
// dipped ones, which see Rm−Base — a one-off measurement error of Base.
//
// The window (rather than literally one packet) exists because the element
// never reorders: at line rate, packets are spaced closer than Base, so a
// single released packet would still be pinned behind its predecessor's
// release time. A window wider than Base guarantees at least one packet
// experiences the full dip, which is all the min-RTT filter needs.
type OneShotDip struct {
	Base time.Duration
	At   time.Duration
	// Width of the dip window; defaults to Base + 2 ms when zero.
	Width time.Duration
}

// Delay implements Policy.
func (o *OneShotDip) Delay(now time.Duration, _ int64) time.Duration {
	w := o.Width
	if w <= 0 {
		w = o.Base + 2*time.Millisecond
	}
	if now >= o.At && now < o.At+w {
		return 0
	}
	return o.Base
}

// Bound implements Policy.
func (o *OneShotDip) Bound() time.Duration { return o.Base }

// TokenBucket shapes packets through a token bucket filter: packets wait
// until the bucket holds enough tokens. When the long-run input rate stays
// below Rate the bucket is only a transient hold — a non-congestive delay
// source, not a bottleneck — which is how the paper classifies it.
type TokenBucket struct {
	// RateBytesPerSec is the token refill rate.
	RateBytesPerSec float64
	// BurstBytes is the bucket capacity.
	BurstBytes float64

	tokens   float64
	lastFill time.Duration
	primed   bool
}

// Delay implements Policy.
func (t *TokenBucket) Delay(now time.Duration, _ int64) time.Duration {
	const pkt = 1500
	if !t.primed {
		t.tokens = t.BurstBytes
		t.lastFill = now
		t.primed = true
	}
	elapsed := (now - t.lastFill).Seconds()
	t.tokens += elapsed * t.RateBytesPerSec
	if t.tokens > t.BurstBytes {
		t.tokens = t.BurstBytes
	}
	t.lastFill = now
	if t.tokens >= pkt {
		t.tokens -= pkt
		return 0
	}
	need := (pkt - t.tokens) / t.RateBytesPerSec
	t.tokens -= pkt // goes negative; future arrivals queue behind
	return time.Duration(need * float64(time.Second))
}

// Bound implements Policy.
func (t *TokenBucket) Bound() time.Duration {
	if t.RateBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(t.BurstBytes / t.RateBytesPerSec * float64(time.Second))
}

// Scripted delays packets according to an arbitrary time function, clamped
// to [0, Max]. It is the raw adversary of the paper's model and the vehicle
// for the Theorem 1 trajectory emulation.
type Scripted struct {
	Fn  func(now time.Duration) time.Duration
	Max time.Duration
}

// Delay implements Policy.
func (s *Scripted) Delay(now time.Duration, _ int64) time.Duration {
	d := s.Fn(now)
	if d < 0 {
		d = 0
	}
	if d > s.Max {
		d = s.Max
	}
	return d
}

// Bound implements Policy.
func (s *Scripted) Bound() time.Duration { return s.Max }
