package jitter

import (
	"math/rand"
	"time"
)

// This file holds the stateful real-world jitter sources beyond the basic
// policies: bursty link-layer holds and periodic scheduler stalls, the
// concrete mechanisms §2.1 lists (Wi-Fi aggregation, cellular schedulers,
// OS thread scheduling).

// GilbertElliott models bursty jitter with a two-state Markov chain, the
// classic model for link-layer behaviour: in the Good state packets pass
// with no extra delay; in the Bad state (an aggregation round, an ARQ
// retry burst) every packet is held for BadDelay. Transitions are
// evaluated per packet.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-packet transition probabilities.
	PGoodToBad, PBadToGood float64
	// BadDelay is the hold applied in the Bad state.
	BadDelay time.Duration
	// Rng drives the chain; required.
	Rng *rand.Rand

	bad bool
}

// Delay implements Policy.
func (g *GilbertElliott) Delay(time.Duration, int64) time.Duration {
	if g.bad {
		if g.Rng.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if g.Rng.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	if g.bad {
		return g.BadDelay
	}
	return 0
}

// Bound implements Policy.
func (g *GilbertElliott) Bound() time.Duration { return g.BadDelay }

// PeriodicSpike stalls the path for SpikeLen once every Period — the
// signature of a cellular scheduler reallocating resources or an OS
// housekeeping tick. Packets arriving during [k·Period, k·Period+SpikeLen)
// are held until the spike ends.
type PeriodicSpike struct {
	Period   time.Duration
	SpikeLen time.Duration
}

// Delay implements Policy.
func (p PeriodicSpike) Delay(now time.Duration, _ int64) time.Duration {
	if p.Period <= 0 || p.SpikeLen <= 0 {
		return 0
	}
	phase := now % p.Period
	if phase < p.SpikeLen {
		return p.SpikeLen - phase
	}
	return 0
}

// Bound implements Policy.
func (p PeriodicSpike) Bound() time.Duration { return p.SpikeLen }

// Compound stacks several policies; the delays add and so do the bounds.
// Real paths have several independent jitter sources at once (ACK
// aggregation behind an OS scheduler behind a token bucket).
type Compound struct {
	Policies []Policy
}

// Delay implements Policy.
func (c Compound) Delay(now time.Duration, seq int64) time.Duration {
	var sum time.Duration
	for _, p := range c.Policies {
		sum += p.Delay(now, seq)
	}
	return sum
}

// Bound implements Policy.
func (c Compound) Bound() time.Duration {
	var sum time.Duration
	for _, p := range c.Policies {
		sum += p.Bound()
	}
	return sum
}
