package jitter

import (
	"math/rand"
	"testing"
	"time"
)

func TestGilbertElliottStates(t *testing.T) {
	g := &GilbertElliott{
		PGoodToBad: 0.1, PBadToGood: 0.3,
		BadDelay: 8 * time.Millisecond,
		Rng:      rand.New(rand.NewSource(1)),
	}
	badCount := 0
	const n = 100000
	for i := 0; i < n; i++ {
		d := g.Delay(time.Duration(i)*time.Millisecond, int64(i))
		if d != 0 && d != 8*time.Millisecond {
			t.Fatalf("delay %v, want 0 or 8ms", d)
		}
		if d > 0 {
			badCount++
		}
	}
	// Stationary bad fraction = p/(p+q) = 0.1/0.4 = 0.25.
	frac := float64(badCount) / n
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("bad-state fraction = %.3f, want ~0.25", frac)
	}
	if g.Bound() != 8*time.Millisecond {
		t.Error("bound mismatch")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With sticky states, consecutive packets must share a state far more
	// often than independent draws would.
	g := &GilbertElliott{
		PGoodToBad: 0.01, PBadToGood: 0.05,
		BadDelay: 5 * time.Millisecond,
		Rng:      rand.New(rand.NewSource(2)),
	}
	var prev time.Duration
	same := 0
	const n = 50000
	for i := 0; i < n; i++ {
		d := g.Delay(0, int64(i))
		if i > 0 && (d > 0) == (prev > 0) {
			same++
		}
		prev = d
	}
	if frac := float64(same) / n; frac < 0.9 {
		t.Errorf("state persistence = %.3f, want bursty (> 0.9)", frac)
	}
}

func TestPeriodicSpike(t *testing.T) {
	p := PeriodicSpike{Period: 100 * time.Millisecond, SpikeLen: 10 * time.Millisecond}
	cases := []struct {
		now, want time.Duration
	}{
		{0, 10 * time.Millisecond},                      // spike start: full hold
		{5 * time.Millisecond, 5 * time.Millisecond},    // mid-spike: hold to end
		{10 * time.Millisecond, 0},                      // spike over
		{99 * time.Millisecond, 0},                      //
		{100 * time.Millisecond, 10 * time.Millisecond}, // next spike
		{205 * time.Millisecond, 5 * time.Millisecond},
	}
	for _, c := range cases {
		if got := p.Delay(c.now, 0); got != c.want {
			t.Errorf("Delay(%v) = %v, want %v", c.now, got, c.want)
		}
	}
	if p.Bound() != 10*time.Millisecond {
		t.Error("bound mismatch")
	}
	var zero PeriodicSpike
	if zero.Delay(time.Second, 0) != 0 {
		t.Error("zero-value spike must pass through")
	}
}

func TestPeriodicSpikeNoReorderThroughBox(t *testing.T) {
	// Packets arriving just before a spike must not overtake held ones;
	// the DelayBox release-clamp handles it, but the policy's own shape
	// (hold-until-end) is already monotone: verify releases are ordered.
	p := PeriodicSpike{Period: 50 * time.Millisecond, SpikeLen: 20 * time.Millisecond}
	var lastRelease time.Duration
	for nowMs := 0; nowMs < 200; nowMs++ {
		now := time.Duration(nowMs) * time.Millisecond
		rel := now + p.Delay(now, 0)
		if rel < lastRelease {
			t.Fatalf("release %v before previous %v", rel, lastRelease)
		}
		lastRelease = rel
	}
}

func TestCompound(t *testing.T) {
	c := Compound{Policies: []Policy{
		Constant{D: 2 * time.Millisecond},
		PeriodicSpike{Period: 100 * time.Millisecond, SpikeLen: 10 * time.Millisecond},
	}}
	if got := c.Delay(50*time.Millisecond, 0); got != 2*time.Millisecond {
		t.Errorf("off-spike compound = %v, want 2ms", got)
	}
	if got := c.Delay(0, 0); got != 12*time.Millisecond {
		t.Errorf("on-spike compound = %v, want 12ms", got)
	}
	if c.Bound() != 12*time.Millisecond {
		t.Errorf("compound bound = %v, want 12ms", c.Bound())
	}
}
