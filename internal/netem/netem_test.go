package netem

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"starvation/internal/netem/jitter"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// probeFunc adapts a closure to obs.Probe for tests.
type probeFunc func(obs.Event)

func (f probeFunc) Emit(e obs.Event) { f(e) }

func TestLinkSerializationTiming(t *testing.T) {
	s := sim.New(1)
	var deliveries []time.Duration
	l := NewLink(s, units.Mbps(12), 0, func(p packet.Packet) {
		deliveries = append(deliveries, s.Now())
	})
	// Three 1500B packets arrive at once: 1ms serialization each.
	s.At(0, func() {
		for i := 0; i < 3; i++ {
			l.Enqueue(packet.Packet{Seq: int64(i * 1500), Size: 1500})
		}
	})
	s.Run(time.Second)
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(deliveries) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(deliveries))
	}
	for i := range want {
		if deliveries[i] != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, deliveries[i], want[i])
		}
	}
}

func TestLinkIdleRestart(t *testing.T) {
	s := sim.New(1)
	var deliveries []time.Duration
	l := NewLink(s, units.Mbps(12), 0, func(p packet.Packet) {
		deliveries = append(deliveries, s.Now())
	})
	s.At(0, func() { l.Enqueue(packet.Packet{Size: 1500}) })
	// Second packet arrives after the link went idle: no stale backlog.
	s.At(10*time.Millisecond, func() { l.Enqueue(packet.Packet{Size: 1500}) })
	s.Run(time.Second)
	if deliveries[1] != 11*time.Millisecond {
		t.Errorf("second delivery at %v, want 11ms (idle restart)", deliveries[1])
	}
}

func TestLinkDropTail(t *testing.T) {
	s := sim.New(1)
	delivered := 0
	l := NewLink(s, units.Mbps(12), 3*1500, func(p packet.Packet) { delivered++ })
	var droppedSeqs []int64
	l.SetProbe(probeFunc(func(e obs.Event) {
		if e.Type == obs.EvDrop {
			droppedSeqs = append(droppedSeqs, e.Seq)
		}
	}))
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			l.Enqueue(packet.Packet{Seq: int64(i), Size: 1500})
		}
	})
	s.Run(time.Second)
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3 (buffer holds 3)", delivered)
	}
	if l.Dropped != 2 || len(droppedSeqs) != 2 {
		t.Errorf("dropped = %d (%v), want 2", l.Dropped, droppedSeqs)
	}
	// Drop-tail drops the latest arrivals.
	if droppedSeqs[0] != 3 || droppedSeqs[1] != 4 {
		t.Errorf("dropped seqs = %v, want [3 4]", droppedSeqs)
	}
}

func TestLinkQueueDepthAccounting(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, units.Mbps(12), 0, func(p packet.Packet) {})
	s.At(0, func() {
		for i := 0; i < 4; i++ {
			l.Enqueue(packet.Packet{Size: 1500})
		}
		if l.QueuedBytes() != 6000 {
			t.Errorf("QueuedBytes = %d, want 6000", l.QueuedBytes())
		}
		if l.QueueDelay() != 4*time.Millisecond {
			t.Errorf("QueueDelay = %v, want 4ms", l.QueueDelay())
		}
	})
	s.At(2500*time.Microsecond, func() {
		if l.QueuedBytes() != 3000 {
			t.Errorf("QueuedBytes mid-drain = %d, want 3000", l.QueuedBytes())
		}
	})
	s.Run(time.Second)
	if l.QueuedBytes() != 0 {
		t.Errorf("QueuedBytes after drain = %d, want 0", l.QueuedBytes())
	}
	if l.MaxQueue != 6000 {
		t.Errorf("MaxQueue = %d, want 6000", l.MaxQueue)
	}
}

func TestLinkPrime(t *testing.T) {
	s := sim.New(1)
	var firstDelivery time.Duration
	l := NewLink(s, units.Mbps(12), 0, func(p packet.Packet) {
		if firstDelivery == 0 {
			firstDelivery = s.Now()
		}
	})
	s.At(0, func() {
		l.Prime(10 * time.Millisecond)
		l.Enqueue(packet.Packet{Size: 1500})
	})
	s.Run(time.Second)
	// The primed backlog delays the packet by 10ms plus its own 1ms.
	if firstDelivery != 11*time.Millisecond {
		t.Errorf("first delivery at %v, want 11ms", firstDelivery)
	}
}

func TestLinkECNMarking(t *testing.T) {
	s := sim.New(1)
	var marked, unmarked int
	l := NewLink(s, units.Mbps(12), 0, func(p packet.Packet) {
		if p.ECN {
			marked++
		} else {
			unmarked++
		}
	})
	l.SetECNThreshold(3000)
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			l.Enqueue(packet.Packet{Size: 1500})
		}
	})
	s.Run(time.Second)
	// Packets 0,1 arrive below threshold; 2,3,4 at or above.
	if unmarked != 2 || marked != 3 {
		t.Errorf("marked=%d unmarked=%d, want 3/2", marked, unmarked)
	}
}

func TestDelayBoxNoReorder(t *testing.T) {
	s := sim.New(1)
	rng := rand.New(rand.NewSource(7))
	var seqs []int64
	box := NewDelayBox(s, &jitter.Uniform{Max: 20 * time.Millisecond, Rng: rng},
		func(p packet.Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 200; i++ {
		i := i
		s.At(time.Duration(i)*time.Millisecond, func() {
			box.Send(packet.Packet{Seq: int64(i)})
		})
	}
	s.Run(time.Minute)
	if len(seqs) != 200 {
		t.Fatalf("delivered %d, want 200", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering: %d before %d", seqs[i-1], seqs[i])
		}
	}
	if box.MaxApplied > 20*time.Millisecond {
		t.Errorf("MaxApplied = %v exceeds bound", box.MaxApplied)
	}
}

func TestAckDelayBoxNoReorder(t *testing.T) {
	s := sim.New(1)
	rng := rand.New(rand.NewSource(9))
	var order []int64
	box := NewAckDelayBox(s, &jitter.Uniform{Max: 15 * time.Millisecond, Rng: rng},
		func(a packet.Ack) { order = append(order, a.SackSeq) })
	for i := 0; i < 100; i++ {
		i := i
		s.At(time.Duration(i)*time.Millisecond, func() {
			box.Send(packet.Ack{SackSeq: int64(i)})
		})
	}
	s.Run(time.Minute)
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("ACK reordering at %d", i)
		}
	}
}

func TestPropagation(t *testing.T) {
	s := sim.New(1)
	var at time.Duration
	pr := NewPropagation(s, 40*time.Millisecond, func(p packet.Packet) { at = s.Now() })
	s.At(time.Millisecond, func() { pr.Send(packet.Packet{}) })
	s.Run(time.Second)
	if at != 41*time.Millisecond {
		t.Errorf("delivered at %v, want 41ms", at)
	}
}

func TestLossGate(t *testing.T) {
	s := sim.New(1)
	passed := 0
	g := NewLossGate(0.5, rand.New(rand.NewSource(3)), func(p packet.Packet) { passed++ })
	_ = s
	const n = 10000
	for i := 0; i < n; i++ {
		g.Send(packet.Packet{Seq: int64(i)})
	}
	frac := float64(g.Dropped) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("drop fraction = %.3f, want ~0.5", frac)
	}
	if g.Passed != int64(passed) || g.Passed+g.Dropped != n {
		t.Errorf("accounting mismatch: passed=%d dropped=%d", g.Passed, g.Dropped)
	}
}

func TestLossGateZeroProb(t *testing.T) {
	g := NewLossGate(0, rand.New(rand.NewSource(1)), func(p packet.Packet) {})
	for i := 0; i < 100; i++ {
		g.Send(packet.Packet{})
	}
	if g.Dropped != 0 {
		t.Errorf("zero-probability gate dropped %d", g.Dropped)
	}
}

// Property: the link conserves packets — delivered + dropped = enqueued —
// and never exceeds its buffer.
func TestQuickLinkConservation(t *testing.T) {
	f := func(seed int64, bufPkts uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		buf := (int(bufPkts%16) + 1) * 1500
		delivered := 0
		l := NewLink(s, units.Mbps(10), buf, func(p packet.Packet) { delivered++ })
		n := rng.Intn(300) + 1
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(100)) * time.Millisecond
			s.At(at, func() { l.Enqueue(packet.Packet{Size: 1500}) })
		}
		s.Run(time.Minute)
		if delivered+int(l.Dropped) != n {
			return false
		}
		return l.MaxQueue <= buf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the link is FIFO for any arrival pattern.
func TestQuickLinkFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		var got []int64
		l := NewLink(s, units.Mbps(5), 0, func(p packet.Packet) { got = append(got, p.Seq) })
		at := time.Duration(0)
		for i := 0; i < 100; i++ {
			at += time.Duration(rng.Intn(3)) * time.Millisecond
			seq := int64(i)
			t := at
			s.At(t, func() { l.Enqueue(packet.Packet{Seq: seq, Size: 1500}) })
		}
		s.Run(time.Minute)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLinkLifecycleEvents checks the probe sees enqueue/mark/dequeue/drop
// transitions with correct queue depths, and that per-flow counters agree.
func TestLinkLifecycleEvents(t *testing.T) {
	s := sim.New(1)
	var events []obs.Event
	l := NewLink(s, units.Mbps(12), 3*1500, func(p packet.Packet) {})
	l.SetECNThreshold(2 * 1500)
	l.SetProbe(probeFunc(func(e obs.Event) { events = append(events, e) }))
	s.At(0, func() {
		for i := 0; i < 4; i++ {
			l.Enqueue(packet.Packet{Flow: packet.FlowID(i % 2), Seq: int64(i * 1500), Size: 1500})
		}
	})
	s.Run(time.Second)

	count := map[obs.EventType]int{}
	for _, e := range events {
		count[e.Type]++
	}
	if count[obs.EvEnqueue] != 3 || count[obs.EvDrop] != 1 || count[obs.EvDequeue] != 3 {
		t.Fatalf("event counts = %v, want 3 enqueues, 1 drop, 3 dequeues", count)
	}
	// Packet 2 (flow 0) arrives with 3000B queued: at threshold, marked.
	if count[obs.EvMark] != 1 {
		t.Errorf("marks = %d, want 1", count[obs.EvMark])
	}
	// First enqueue sees depth 1500; final dequeue drains back to 0.
	if events[0].Type != obs.EvEnqueue || events[0].Queue != 1500 {
		t.Errorf("first event = %+v, want enqueue at depth 1500", events[0])
	}
	last := events[len(events)-1]
	if last.Type != obs.EvDequeue || last.Queue != 0 {
		t.Errorf("last event = %+v, want dequeue at depth 0", last)
	}
	f0, f1 := l.FlowStats(0), l.FlowStats(1)
	if f0.Enqueued != 2 || f1.Enqueued != 1 || f1.Dropped != 1 {
		t.Errorf("per-flow stats = %+v / %+v", f0, f1)
	}
	if f0.Marked != 1 {
		t.Errorf("flow0 marked = %d, want 1", f0.Marked)
	}
	if got := l.FlowStats(99); got != (FlowLinkStats{}) {
		t.Errorf("unknown flow stats = %+v, want zeros", got)
	}
}

// TestLossGateProbe checks gate drops surface as EvDrop with queue -1.
func TestLossGateProbe(t *testing.T) {
	s := sim.New(1)
	var drops []obs.Event
	g := NewLossGate(1.0, rand.New(rand.NewSource(1)), func(p packet.Packet) {
		t.Error("gate with P=1 passed a packet")
	})
	g.SetProbe(s, probeFunc(func(e obs.Event) { drops = append(drops, e) }))
	s.At(5*time.Millisecond, func() {
		g.Send(packet.Packet{Flow: 1, Seq: 3000, Size: 1500})
	})
	s.Run(time.Second)
	if len(drops) != 1 {
		t.Fatalf("drops = %d, want 1", len(drops))
	}
	e := drops[0]
	if e.Type != obs.EvDrop || e.Queue != -1 || e.Flow != 1 || e.At != 5*time.Millisecond {
		t.Errorf("drop event = %+v", e)
	}
}
