package netem

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"starvation/internal/netem/jitter"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// arrival is one observed packet exit: when and which sequence number.
type arrival struct {
	At  time.Duration
	Seq int64
}

// TestLinkResetIndistinguishableFromFresh drives a drop-tail scenario
// through a fresh link and through a link that already ran a different
// scenario and was Reset (simulator first, per the contract). Delivery
// sequence, drop counters, and queue statistics must match exactly.
func TestLinkResetIndistinguishableFromFresh(t *testing.T) {
	scenario := func(s *sim.Simulator, l *Link, log *[]arrival) {
		s.At(0, func() {
			for i := 0; i < 6; i++ {
				l.Enqueue(packet.Packet{Seq: int64(i), Size: 1500})
			}
		})
		s.At(20*time.Millisecond, func() {
			l.Enqueue(packet.Packet{Seq: 6, Size: 1500})
		})
		s.Run(time.Second)
	}
	stats := func(l *Link) []int64 {
		return []int64{l.Delivered, l.Dropped, l.Marked, int64(l.MaxQueue),
			l.EnqueuedPkts, l.EnqueuedBytes, int64(l.QueuedBytes())}
	}

	var freshLog []arrival
	fs := sim.New(1)
	fl := NewLink(fs, units.Mbps(12), 4*1500, func(p packet.Packet) {
		freshLog = append(freshLog, arrival{fs.Now(), p.Seq})
	})
	scenario(fs, fl, &freshLog)

	var log []arrival
	rs := sim.New(9)
	rl := NewLink(rs, units.Mbps(48), 2*1500, func(p packet.Packet) {
		log = append(log, arrival{rs.Now(), p.Seq})
	})
	scenario(rs, rl, &log) // dirty run at a different rate/buffer
	rs.Reset(1)
	rl.Reset(units.Mbps(12), 4*1500)
	log = log[:0]
	scenario(rs, rl, &log)

	if !reflect.DeepEqual(log, freshLog) {
		t.Errorf("reset link deliveries diverged:\n got %v\nwant %v", log, freshLog)
	}
	if got, want := stats(rl), stats(fl); !reflect.DeepEqual(got, want) {
		t.Errorf("reset link stats diverged: got %v want %v", got, want)
	}
	if got, want := rl.FlowStats(0), fl.FlowStats(0); got != want {
		t.Errorf("reset link per-flow stats diverged: got %+v want %+v", got, want)
	}
}

// TestDelayBoxResetIndistinguishableFromFresh pins DelayBox and AckDelayBox
// reuse: after simulator + box reset with a new jitter policy, releases
// happen at the same times in the same order as a fresh box.
func TestDelayBoxResetIndistinguishableFromFresh(t *testing.T) {
	policy := func(seed int64) jitter.Policy {
		return &jitter.Uniform{Max: 3 * time.Millisecond, Rng: rand.New(rand.NewSource(seed))}
	}
	scenario := func(s *sim.Simulator, box *DelayBox, ackBox *AckDelayBox) {
		for i := 0; i < 20; i++ {
			i := i
			s.At(time.Duration(i)*time.Millisecond, func() {
				box.Send(packet.Packet{Seq: int64(i), Size: 1500})
				ackBox.Send(packet.Ack{CumAck: int64(i)})
			})
		}
		s.Run(time.Second)
	}

	var freshLog []arrival
	fs := sim.New(1)
	fBox := NewDelayBox(fs, policy(5), func(p packet.Packet) {
		freshLog = append(freshLog, arrival{fs.Now(), p.Seq})
	})
	fAck := NewAckDelayBox(fs, policy(6), func(a packet.Ack) {
		freshLog = append(freshLog, arrival{fs.Now(), -a.CumAck - 1})
	})
	scenario(fs, fBox, fAck)

	var log []arrival
	rs := sim.New(3)
	rBox := NewDelayBox(rs, policy(77), func(p packet.Packet) {
		log = append(log, arrival{rs.Now(), p.Seq})
	})
	rAck := NewAckDelayBox(rs, policy(78), func(a packet.Ack) {
		log = append(log, arrival{rs.Now(), -a.CumAck - 1})
	})
	scenario(rs, rBox, rAck) // dirty run with different jitter draws
	rs.Reset(1)
	rBox.Reset(policy(5))
	rAck.Reset(policy(6))
	log = log[:0]
	scenario(rs, rBox, rAck)

	if !reflect.DeepEqual(log, freshLog) {
		t.Errorf("reset delay boxes diverged:\n got %v\nwant %v", log, freshLog)
	}
	if rBox.InTransit() != 0 {
		t.Errorf("InTransit = %d after drain", rBox.InTransit())
	}
	if rBox.MaxApplied != fBox.MaxApplied || rAck.MaxApplied != fAck.MaxApplied {
		t.Errorf("MaxApplied diverged: box %v/%v ack %v/%v",
			rBox.MaxApplied, fBox.MaxApplied, rAck.MaxApplied, fAck.MaxApplied)
	}
}

// TestLossGateResetIndistinguishableFromFresh pins that a reset gate (with
// its exported Rng reseeded, as the session does) makes the identical
// drop decisions as a fresh gate with the same seed.
func TestLossGateResetIndistinguishableFromFresh(t *testing.T) {
	drive := func(g *LossGate) []int64 {
		var passed []int64
		g.out = func(p packet.Packet) { passed = append(passed, p.Seq) }
		for i := 0; i < 500; i++ {
			g.Send(packet.Packet{Seq: int64(i), Size: 1500})
		}
		return passed
	}
	fresh := NewLossGate(0.1, rand.New(rand.NewSource(42)), nil)
	want := drive(fresh)

	reused := NewLossGate(0.5, rand.New(rand.NewSource(7)), nil)
	drive(reused)
	reused.Reset(0.1)
	reused.Rng.Seed(42)
	got := drive(reused)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset gate pass sequence diverged (%d vs %d passed)", len(got), len(want))
	}
	if reused.Passed != fresh.Passed || reused.Dropped != fresh.Dropped {
		t.Errorf("counters diverged: passed %d/%d dropped %d/%d",
			reused.Passed, fresh.Passed, reused.Dropped, fresh.Dropped)
	}
}
