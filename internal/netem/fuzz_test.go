package netem

import (
	"math/rand"
	"testing"
	"time"

	"starvation/internal/netem/jitter"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// FuzzDelayBoxNoReorder checks the §3 delay-element contract under
// arbitrary arrival patterns and jitter draws: the DelayBox may hold each
// packet for any duration within the policy bound, but it must never
// reorder a flow and never release a packet before it arrived.
func FuzzDelayBoxNoReorder(f *testing.F) {
	f.Add(int64(1), uint16(20), uint8(50))
	f.Add(int64(3), uint16(0), uint8(10))
	f.Add(int64(42), uint16(500), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, maxMs uint16, n uint8) {
		s := sim.New(1)
		maxD := time.Duration(maxMs) * time.Millisecond
		type rel struct {
			seq int64
			at  time.Duration
		}
		var out []rel
		box := NewDelayBox(s, &jitter.Uniform{Max: maxD, Rng: rand.New(rand.NewSource(seed))},
			func(p packet.Packet) { out = append(out, rel{p.Seq, s.Now()}) })
		rng := rand.New(rand.NewSource(seed * 31))
		sent := make([]time.Duration, int(n))
		at := time.Duration(0)
		for i := 0; i < int(n); i++ {
			i := i
			at += time.Duration(rng.Int63n(int64(2*time.Millisecond) + 1))
			sent[i] = at
			s.At(at, func() { box.Send(packet.Packet{Seq: int64(i), Size: 1500}) })
		}
		s.Run(at + maxD + time.Second)
		if len(out) != int(n) {
			t.Fatalf("released %d of %d packets", len(out), n)
		}
		if box.InTransit() != 0 {
			t.Fatalf("InTransit = %d after drain", box.InTransit())
		}
		for i, r := range out {
			if r.seq != int64(i) {
				t.Fatalf("release %d has seq %d: DelayBox reordered", i, r.seq)
			}
			if r.at < sent[r.seq] {
				t.Fatalf("seq %d released at %v before send %v", r.seq, r.at, sent[r.seq])
			}
		}
		if box.MaxApplied > maxD {
			t.Fatalf("MaxApplied %v exceeds policy bound %v", box.MaxApplied, maxD)
		}
	})
}
