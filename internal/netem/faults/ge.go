package faults

import (
	"fmt"
	"math/rand"

	"starvation/internal/netem"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// GEConfig parameterizes a Gilbert–Elliott loss gate: a two-state Markov
// chain stepped once per packet. In the Good state packets drop with
// probability PDropGood (usually 0); in the Bad state with PDropBad. The
// chain moves Good→Bad with probability PGoodToBad and Bad→Good with
// PBadToGood, so the mean burst length is 1/PBadToGood packets and the
// stationary Bad-state fraction is PGoodToBad/(PGoodToBad+PBadToGood).
type GEConfig struct {
	PGoodToBad float64 // per-packet transition probability Good → Bad
	PBadToGood float64 // per-packet transition probability Bad → Good
	PDropBad   float64 // drop probability while Bad
	PDropGood  float64 // drop probability while Good (usually 0)
}

// Validate reports the first problem with the configuration.
func (c GEConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PGoodToBad", c.PGoodToBad},
		{"PBadToGood", c.PBadToGood},
		{"PDropBad", c.PDropBad},
		{"PDropGood", c.PDropGood},
	} {
		if err := probability(p.name, p.v); err != nil {
			return err
		}
	}
	if c.PGoodToBad > 0 && c.PBadToGood == 0 {
		return fmt.Errorf("PBadToGood is 0: the chain would absorb into the Bad state")
	}
	return nil
}

// MeanLoss returns the stationary drop probability of the chain — the
// Bernoulli rate a GE gate averages out to, useful for constructing bursty
// counterparts of random-loss scenarios at matched mean loss.
func (c GEConfig) MeanLoss() float64 {
	denom := c.PGoodToBad + c.PBadToGood
	if denom == 0 {
		return c.PDropGood
	}
	bad := c.PGoodToBad / denom
	return bad*c.PDropBad + (1-bad)*c.PDropGood
}

// GEGate is the Gilbert–Elliott bursty-loss element. Like LossGate it sits
// before the bottleneck queue and reports drops with a queue depth of -1.
type GEGate struct {
	cfg GEConfig
	rng *rand.Rand
	out netem.PacketHandler

	sim   *sim.Simulator
	probe obs.Probe
	bad   bool

	Passed     int64 // packets forwarded downstream
	Dropped    int64 // packets discarded
	BadEntries int64 // Good→Bad transitions (loss bursts started)
}

// NewGEGate returns a gate feeding out. The chain starts in the Good state.
func NewGEGate(cfg GEConfig, rng *rand.Rand, out netem.PacketHandler) *GEGate {
	return &GEGate{cfg: cfg, rng: rng, out: out}
}

// SetProbe installs a lifecycle-event probe. The simulator supplies drop
// timestamps; without it events carry At zero.
func (g *GEGate) SetProbe(s *sim.Simulator, p obs.Probe) {
	g.sim = s
	g.probe = p
}

// Bad reports whether the chain is currently in the Bad state.
func (g *GEGate) Bad() bool { return g.bad }

// Reset returns the gate to the state NewGEGate(cfg, rng, out) would
// produce with a generator freshly seeded with seed: chain back in Good,
// counters zeroed, probe cleared. Reseeding in place is bit-equivalent to
// constructing a new rand.Rand from the same seed, so a reset gate
// reproduces a fresh gate's drop sequence exactly.
func (g *GEGate) Reset(cfg GEConfig, seed int64) {
	g.cfg = cfg
	g.rng.Seed(seed)
	g.sim, g.probe = nil, nil
	g.bad = false
	g.Passed, g.Dropped, g.BadEntries = 0, 0, 0
}

// emitState reports a chain transition (Seq 1 = entered Bad, 0 = back to
// Good) so online detectors can attribute starvation onsets to loss
// bursts. Probe-gated and synchronous: the chain steps identically with
// or without a probe.
func (g *GEGate) emitState(flow packet.FlowID, state int64) {
	if g.probe == nil {
		return
	}
	var now sim.Time
	if g.sim != nil {
		now = g.sim.Now()
	}
	g.probe.Emit(obs.Event{Type: obs.EvFaultState, At: now, Flow: flow,
		Seq: state, Queue: -1})
}

// Send steps the chain once and then passes or drops p. The transition is
// evaluated before the drop decision, so a burst can claim the packet that
// triggered it — the standard discrete-time GE formulation.
func (g *GEGate) Send(p packet.Packet) {
	if g.bad {
		if g.cfg.PBadToGood > 0 && g.rng.Float64() < g.cfg.PBadToGood {
			g.bad = false
			g.emitState(p.Flow, 0)
		}
	} else if g.cfg.PGoodToBad > 0 && g.rng.Float64() < g.cfg.PGoodToBad {
		g.bad = true
		g.BadEntries++
		g.emitState(p.Flow, 1)
	}
	pd := g.cfg.PDropGood
	if g.bad {
		pd = g.cfg.PDropBad
	}
	if pd > 0 && g.rng.Float64() < pd {
		g.Dropped++
		if g.probe != nil {
			var now sim.Time
			if g.sim != nil {
				now = g.sim.Now()
			}
			g.probe.Emit(obs.Event{Type: obs.EvDrop, At: now, Flow: p.Flow,
				Seq: p.Seq, Bytes: p.Size, Queue: -1, Retx: p.Retx, Dup: p.Dup})
		}
		return
	}
	g.Passed++
	g.out(p)
}
