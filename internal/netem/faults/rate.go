package faults

import (
	"fmt"
	"time"

	"starvation/internal/netem"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// Restore is the sentinel rate meaning "the link's rate when the schedule
// was applied" — it lets flap patterns restore capacity without repeating
// the scenario's base rate.
const Restore units.Rate = -1

// RateStep is one point of a piecewise rate schedule: at offset At (from
// the start of the schedule cycle) the link's drain rate becomes Rate. A
// Rate of 0 takes the link down; Restore brings back the base rate.
type RateStep struct {
	At   time.Duration
	Rate units.Rate
}

// RateSchedule drives time-varying bottleneck capacity: the steps are
// applied in order, and when Repeat is positive the whole pattern recurs
// every Repeat. Schedules are deterministic — they draw no randomness —
// so they compose with seeded loss elements without perturbing them.
type RateSchedule struct {
	Steps  []RateStep
	Repeat time.Duration
}

// Flap returns a schedule that takes the link down for downFor at every
// multiple of period (first outage at period, so flows get one clean
// period to start up).
func Flap(period, downFor time.Duration) *RateSchedule {
	return &RateSchedule{
		Repeat: period,
		Steps: []RateStep{
			{At: period, Rate: 0},
			{At: period + downFor, Rate: Restore},
		},
	}
}

// Validate reports the first problem with the schedule.
func (rs *RateSchedule) Validate() error {
	if rs == nil {
		return nil
	}
	if len(rs.Steps) == 0 {
		return fmt.Errorf("schedule has no steps")
	}
	if rs.Repeat < 0 {
		return fmt.Errorf("Repeat must be non-negative (got %v)", rs.Repeat)
	}
	prev := time.Duration(-1)
	for i, st := range rs.Steps {
		if st.At < 0 {
			return fmt.Errorf("step %d: At must be non-negative (got %v)", i, st.At)
		}
		if st.At <= prev {
			return fmt.Errorf("step %d: At %v not after previous step %v", i, st.At, prev)
		}
		if st.Rate < 0 && st.Rate != Restore {
			return fmt.Errorf("step %d: negative rate %v", i, st.Rate)
		}
		prev = st.At
	}
	return nil
}

// Apply schedules the rate changes on s. Restore steps resolve to the
// link's rate at Apply time. With Repeat set, each cycle schedules the
// next when it starts, so the event queue never holds more than one
// cycle's worth of schedule events.
func (rs *RateSchedule) Apply(s *sim.Simulator, l *netem.Link) {
	base := l.Rate()
	resolve := func(r units.Rate) units.Rate {
		if r == Restore {
			return base
		}
		return r
	}
	var cycle func(offset time.Duration)
	cycle = func(offset time.Duration) {
		for _, st := range rs.Steps {
			r := resolve(st.Rate)
			s.At(offset+st.At, func() { l.SetRate(r) })
		}
		if rs.Repeat > 0 {
			next := offset + rs.Repeat
			s.At(next, func() { cycle(next) })
		}
	}
	cycle(0)
}
