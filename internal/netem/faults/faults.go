// Package faults provides composable path-impairment elements beyond the
// Bernoulli LossGate of §5.4: a Gilbert–Elliott two-state bursty-loss
// gate, a bounded reordering box, a packet duplicator, and time-varying
// bottleneck capacity (piecewise rate schedules and on-off link flaps
// driving netem.Link.SetRate).
//
// The vocabulary follows the robustness literature the emulator is
// evaluated against: "Contracts" (Agarwal, Arun, Seshan) argues CCA
// guarantees must be stated against explicit classes of path misbehaviour,
// and BBR's published pathologies only surface under bursty loss and
// time-varying capacity — impairments Bernoulli loss and bounded jitter
// cannot express.
//
// Every element follows the conventions of package netem: it delivers to a
// downstream PacketHandler, draws all randomness from an injected
// *rand.Rand (derived from the run seed, so adding an element to one flow
// never perturbs another flow's realization), emits obs probe events when
// a probe is installed, and exposes plain int64 counters so conservation
// ledgers can account for every packet without a probe attached.
package faults

import "fmt"

// Spec selects the per-flow impairment elements of a scenario. All fields
// are optional; a nil pointer leaves that element out of the pipeline. The
// elements sit between the sender and the bottleneck in the order
// duplicator → reorderer → Gilbert–Elliott gate (→ Bernoulli gate → link),
// so a duplicated copy is itself subject to reordering and loss.
type Spec struct {
	// GE inserts a Gilbert–Elliott bursty-loss gate.
	GE *GEConfig
	// Reorder inserts a bounded reordering box.
	Reorder *ReorderConfig
	// Duplicate inserts a packet duplicator.
	Duplicate *DupConfig
}

// Validate reports the first problem with the spec.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	if s.GE != nil {
		if err := s.GE.Validate(); err != nil {
			return fmt.Errorf("ge: %w", err)
		}
	}
	if s.Reorder != nil {
		if err := s.Reorder.Validate(); err != nil {
			return fmt.Errorf("reorder: %w", err)
		}
	}
	if s.Duplicate != nil {
		if err := s.Duplicate.Validate(); err != nil {
			return fmt.Errorf("dup: %w", err)
		}
	}
	return nil
}

// Empty reports whether the spec selects no elements at all.
func (s *Spec) Empty() bool {
	return s == nil || (s.GE == nil && s.Reorder == nil && s.Duplicate == nil)
}

func probability(name string, p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("%s must be in [0, 1] (got %g)", name, p)
	}
	return nil
}
