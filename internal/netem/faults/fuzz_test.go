package faults

import (
	"math/rand"
	"testing"

	"starvation/internal/packet"
)

// FuzzGEGate explores the Gilbert–Elliott state machine over arbitrary
// chain parameters: for every configuration Validate accepts, the gate
// must account for each packet exactly once (Passed + Dropped = offered),
// keep its burst counter consistent with the chain (a burst needs a
// Good→Bad transition, so BadEntries can never exceed offered packets,
// and a chain that cannot leave Good must never drop when PDropGood is
// 0), and replay bit-identically under the same seed.
func FuzzGEGate(f *testing.F) {
	f.Add(0.008, 0.2, 0.5, 0.0, int64(2), uint16(2000))
	f.Add(0.0, 0.5, 1.0, 0.0, int64(1), uint16(100))
	f.Add(1.0, 1.0, 1.0, 1.0, int64(9), uint16(500))
	f.Add(0.02, 0.1, 0.3, 0.01, int64(5), uint16(4000))
	f.Fuzz(func(t *testing.T, pG2B, pB2G, pDropBad, pDropGood float64, seed int64, n uint16) {
		cfg := GEConfig{PGoodToBad: pG2B, PBadToGood: pB2G, PDropBad: pDropBad, PDropGood: pDropGood}
		if cfg.Validate() != nil {
			t.Skip("invalid chain")
		}
		run := func() *GEGate {
			var passed int64
			g := NewGEGate(cfg, rand.New(rand.NewSource(seed)), func(packet.Packet) { passed++ })
			for i := 0; i < int(n); i++ {
				g.Send(packet.Packet{Seq: int64(i), Size: 1500})
			}
			if g.Passed != passed {
				t.Fatalf("Passed counter %d but %d packets forwarded", g.Passed, passed)
			}
			return g
		}
		g := run()
		if g.Passed+g.Dropped != int64(n) {
			t.Fatalf("Passed %d + Dropped %d != offered %d", g.Passed, g.Dropped, n)
		}
		if g.BadEntries < 0 || g.BadEntries > int64(n) {
			t.Fatalf("BadEntries %d outside [0, %d]", g.BadEntries, n)
		}
		if cfg.PGoodToBad == 0 && g.BadEntries != 0 {
			t.Fatalf("chain entered Bad %d times with PGoodToBad = 0", g.BadEntries)
		}
		if cfg.PGoodToBad == 0 && cfg.PDropGood == 0 && g.Dropped != 0 {
			t.Fatalf("all-Good lossless chain dropped %d packets", g.Dropped)
		}
		if ml := cfg.MeanLoss(); ml < 0 || ml > 1 {
			t.Fatalf("MeanLoss %g outside [0, 1]", ml)
		}
		g2 := run()
		if g.Passed != g2.Passed || g.Dropped != g2.Dropped || g.BadEntries != g2.BadEntries {
			t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)",
				g.Passed, g.Dropped, g.BadEntries, g2.Passed, g2.Dropped, g2.BadEntries)
		}
	})
}
