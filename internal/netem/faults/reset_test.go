package faults

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"starvation/internal/packet"
	"starvation/internal/sim"
)

// TestGEGateResetIndistinguishableFromFresh pins that Reset(cfg, seed)
// reproduces the exact drop sequence of NewGEGate with a fresh
// rand.NewSource(seed): same pass/drop decisions, same burst structure,
// same counters, same channel state.
func TestGEGateResetIndistinguishableFromFresh(t *testing.T) {
	cfg := GEConfig{PGoodToBad: 0.02, PBadToGood: 0.3, PDropBad: 0.7}
	drive := func(g *GEGate) []int64 {
		var passed []int64
		g.out = func(p packet.Packet) { passed = append(passed, p.Seq) }
		for i := 0; i < 2000; i++ {
			g.Send(packet.Packet{Seq: int64(i), Size: 1500})
		}
		return passed
	}
	fresh := NewGEGate(cfg, rand.New(rand.NewSource(13)), nil)
	want := drive(fresh)

	reused := NewGEGate(GEConfig{PGoodToBad: 0.5, PBadToGood: 0.01, PDropBad: 1}, rand.New(rand.NewSource(99)), nil)
	drive(reused) // dirty: very different loss regime, likely parked in bad state
	reused.Reset(cfg, 13)
	got := drive(reused)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset GE gate pass sequence diverged (%d vs %d passed)", len(got), len(want))
	}
	if reused.Passed != fresh.Passed || reused.Dropped != fresh.Dropped || reused.Bad() != fresh.Bad() {
		t.Errorf("state diverged: passed %d/%d dropped %d/%d bad %v/%v",
			reused.Passed, fresh.Passed, reused.Dropped, fresh.Dropped, reused.Bad(), fresh.Bad())
	}
}

// TestReordererResetIndistinguishableFromFresh pins reuse of the deferral
// element: with the simulator reset first and the reorderer reset to the
// same seed, release times and order match a fresh reorderer exactly.
func TestReordererResetIndistinguishableFromFresh(t *testing.T) {
	cfg := ReorderConfig{P: 0.1, Delay: 4 * time.Millisecond}
	type arrival struct {
		At  time.Duration
		Seq int64
	}
	scenario := func(s *sim.Simulator, r *Reorderer, log *[]arrival) {
		r.out = func(p packet.Packet) { *log = append(*log, arrival{s.Now(), p.Seq}) }
		for i := 0; i < 200; i++ {
			i := i
			s.At(time.Duration(i)*time.Millisecond, func() {
				r.Send(packet.Packet{Seq: int64(i), Size: 1500})
			})
		}
		s.Run(time.Second)
	}

	var want []arrival
	fs := sim.New(1)
	fresh := NewReorderer(cfg, rand.New(rand.NewSource(21)), fs, nil)
	scenario(fs, fresh, &want)

	var got []arrival
	rs := sim.New(2)
	reused := NewReorderer(ReorderConfig{P: 0.9, Delay: 50 * time.Millisecond}, rand.New(rand.NewSource(5)), rs, nil)
	scenario(rs, reused, &got)
	rs.Reset(1)
	reused.Reset(cfg, 21)
	got = got[:0]
	scenario(rs, reused, &got)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset reorderer release log diverged (%d vs %d releases)", len(got), len(want))
	}
	if reused.Passed != fresh.Passed || reused.Deferred != fresh.Deferred || reused.Held() != 0 {
		t.Errorf("counters diverged: passed %d/%d deferred %d/%d held %d",
			reused.Passed, fresh.Passed, reused.Deferred, fresh.Deferred, reused.Held())
	}
}

// TestDuplicatorResetIndistinguishableFromFresh pins that a reset
// duplicator clones the same packets as a fresh one with the same seed.
func TestDuplicatorResetIndistinguishableFromFresh(t *testing.T) {
	cfg := DupConfig{P: 0.05}
	drive := func(d *Duplicator) []packet.Packet {
		var out []packet.Packet
		d.out = func(p packet.Packet) { out = append(out, p) }
		for i := 0; i < 1000; i++ {
			d.Send(packet.Packet{Seq: int64(i), Size: 1500})
		}
		return out
	}
	fresh := NewDuplicator(cfg, rand.New(rand.NewSource(31)), nil)
	want := drive(fresh)

	reused := NewDuplicator(DupConfig{P: 0.8}, rand.New(rand.NewSource(2)), nil)
	drive(reused)
	reused.Reset(cfg, 31)
	got := drive(reused)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("reset duplicator output diverged (%d vs %d packets)", len(got), len(want))
	}
	if reused.Passed != fresh.Passed || reused.Duplicated != fresh.Duplicated {
		t.Errorf("counters diverged: passed %d/%d duplicated %d/%d",
			reused.Passed, fresh.Passed, reused.Duplicated, fresh.Duplicated)
	}
}
