package faults

import (
	"math/rand"

	"starvation/internal/netem"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// DupConfig parameterizes a packet duplicator: each packet is forwarded
// once and, with probability P, a second copy follows immediately. Copies
// carry packet.Dup so downstream accounting can separate them from sender
// transmissions; the receiver sees them as ordinary duplicate arrivals and
// ACKs them, which is exactly how duplicated segments stress a CCA's loss
// detection in practice.
type DupConfig struct {
	P float64 // per-packet duplication probability
}

// Validate reports the first problem with the configuration.
func (c DupConfig) Validate() error { return probability("P", c.P) }

// Duplicator is the duplication element.
type Duplicator struct {
	cfg DupConfig
	rng *rand.Rand
	out netem.PacketHandler

	sim   *sim.Simulator
	probe obs.Probe

	Passed     int64 // original packets forwarded
	Duplicated int64 // extra copies injected
}

// NewDuplicator returns a duplication element feeding out.
func NewDuplicator(cfg DupConfig, rng *rand.Rand, out netem.PacketHandler) *Duplicator {
	return &Duplicator{cfg: cfg, rng: rng, out: out}
}

// SetProbe installs a lifecycle-event probe; each injected copy is
// announced as EvDup. The simulator supplies timestamps; without it events
// carry At zero.
func (d *Duplicator) SetProbe(s *sim.Simulator, p obs.Probe) {
	d.sim = s
	d.probe = p
}

// Reset returns the element to the state NewDuplicator(cfg, rng, out)
// would produce with a generator freshly seeded with seed.
func (d *Duplicator) Reset(cfg DupConfig, seed int64) {
	d.cfg = cfg
	d.rng.Seed(seed)
	d.sim, d.probe = nil, nil
	d.Passed, d.Duplicated = 0, 0
}

// Send forwards p and possibly an immediate duplicate.
func (d *Duplicator) Send(p packet.Packet) {
	d.Passed++
	d.out(p)
	if d.cfg.P > 0 && d.rng.Float64() < d.cfg.P {
		d.Duplicated++
		c := p
		c.Dup = true
		if d.probe != nil {
			var now sim.Time
			if d.sim != nil {
				now = d.sim.Now()
			}
			d.probe.Emit(obs.Event{Type: obs.EvDup, At: now, Flow: c.Flow,
				Seq: c.Seq, Bytes: c.Size, Queue: -1, Retx: c.Retx, Dup: true})
		}
		d.out(c)
	}
}
