package faults

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"

	"starvation/internal/netem"
)

// probeFunc adapts a closure to obs.Probe for tests.
type probeFunc func(obs.Event)

func (f probeFunc) Emit(e obs.Event) { f(e) }

func TestGEConfigMeanLoss(t *testing.T) {
	cfg := GEConfig{PGoodToBad: 0.008, PBadToGood: 0.2, PDropBad: 0.5}
	want := 0.008 / (0.008 + 0.2) * 0.5
	if got := cfg.MeanLoss(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MeanLoss = %g, want %g", got, want)
	}
	// Degenerate chain: no transitions, always Good.
	still := GEConfig{PDropGood: 0.1}
	if got := still.MeanLoss(); got != 0.1 {
		t.Errorf("static-chain MeanLoss = %g, want PDropGood", got)
	}
}

func TestGEConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  GEConfig
		ok   bool
	}{
		{"reference", GEConfig{PGoodToBad: 0.008, PBadToGood: 0.2, PDropBad: 0.5}, true},
		{"absorbing bad", GEConfig{PGoodToBad: 0.01, PBadToGood: 0, PDropBad: 0.5}, false},
		{"probability above 1", GEConfig{PGoodToBad: 1.5, PBadToGood: 0.2, PDropBad: 0.5}, false},
		{"negative probability", GEConfig{PGoodToBad: 0.01, PBadToGood: -0.1, PDropBad: 0.5}, false},
		{"all zero", GEConfig{}, true},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestGEGateStationaryLoss pushes enough packets through the reference
// chain that the empirical loss rate must approach the closed-form
// stationary rate, and bursts must actually occur.
func TestGEGateStationaryLoss(t *testing.T) {
	cfg := GEConfig{PGoodToBad: 0.008, PBadToGood: 0.2, PDropBad: 0.5}
	g := NewGEGate(cfg, rand.New(rand.NewSource(7)), func(packet.Packet) {})
	const n = 200000
	for i := 0; i < n; i++ {
		g.Send(packet.Packet{Seq: int64(i), Size: 1500})
	}
	if g.Passed+g.Dropped != n {
		t.Fatalf("Passed %d + Dropped %d != %d sent", g.Passed, g.Dropped, n)
	}
	got := float64(g.Dropped) / n
	want := cfg.MeanLoss()
	if got < 0.5*want || got > 1.5*want {
		t.Errorf("empirical loss %g not within 50%% of stationary %g", got, want)
	}
	if g.BadEntries == 0 {
		t.Errorf("no bursts started over %d packets", n)
	}
	// Mean burst length 1/PBadToGood = 5: entries should be far fewer than
	// drops×2 but nonzero; sanity bound against a degenerate chain.
	if g.BadEntries > g.Dropped {
		t.Errorf("BadEntries %d > Dropped %d: bursts are not bursty", g.BadEntries, g.Dropped)
	}
}

// TestGEGateBurstiness verifies drops cluster: the probability that the
// packet after a drop is also dropped must far exceed the stationary rate.
func TestGEGateBurstiness(t *testing.T) {
	cfg := GEConfig{PGoodToBad: 0.008, PBadToGood: 0.2, PDropBad: 0.5}
	g := NewGEGate(cfg, rand.New(rand.NewSource(11)), func(packet.Packet) {})
	const n = 200000
	prevDropped := false
	var afterDrop, afterDropDropped int64
	for i := 0; i < n; i++ {
		before := g.Dropped
		g.Send(packet.Packet{Seq: int64(i), Size: 1500})
		dropped := g.Dropped > before
		if prevDropped {
			afterDrop++
			if dropped {
				afterDropDropped++
			}
		}
		prevDropped = dropped
	}
	if afterDrop == 0 {
		t.Fatal("no drops observed")
	}
	condLoss := float64(afterDropDropped) / float64(afterDrop)
	if condLoss < 3*cfg.MeanLoss() {
		t.Errorf("P(drop|prev drop) = %g, want well above stationary %g (bursty)",
			condLoss, cfg.MeanLoss())
	}
}

// TestGEGateDeterminism: the gate is a pure function of its RNG stream.
func TestGEGateDeterminism(t *testing.T) {
	run := func() (int64, int64, int64) {
		g := NewGEGate(GEConfig{PGoodToBad: 0.01, PBadToGood: 0.25, PDropBad: 0.6},
			rand.New(rand.NewSource(42)), func(packet.Packet) {})
		for i := 0; i < 50000; i++ {
			g.Send(packet.Packet{Seq: int64(i), Size: 1500})
		}
		return g.Passed, g.Dropped, g.BadEntries
	}
	p1, d1, b1 := run()
	p2, d2, b2 := run()
	if p1 != p2 || d1 != d2 || b1 != b2 {
		t.Errorf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", p1, d1, b1, p2, d2, b2)
	}
}

func TestGEGateDropEvents(t *testing.T) {
	s := sim.New(1)
	g := NewGEGate(GEConfig{PGoodToBad: 1, PBadToGood: 0, PDropBad: 1},
		rand.New(rand.NewSource(1)), func(packet.Packet) { t.Error("packet passed an always-drop gate") })
	// PBadToGood 0 fails Validate but exercises the pure chain: first Send
	// transitions to Bad and drops everything after.
	var drops []obs.Event
	g.SetProbe(s, probeFunc(func(e obs.Event) {
		if e.Type == obs.EvDrop {
			drops = append(drops, e)
		}
	}))
	s.At(0, func() { g.Send(packet.Packet{Flow: 3, Seq: 99, Size: 1500}) })
	s.Run(time.Millisecond)
	if len(drops) != 1 {
		t.Fatalf("drop events = %d, want 1", len(drops))
	}
	if e := drops[0]; e.Flow != 3 || e.Seq != 99 || e.Queue != -1 {
		t.Errorf("drop event = %+v, want flow 3 seq 99 queue -1", e)
	}
	if !g.Bad() {
		t.Errorf("gate not in Bad state after forced transition")
	}
}

// TestReordererDisplacementBounded: every deferred packet arrives exactly
// Delay late and the held gauge returns to zero.
func TestReordererDisplacementBounded(t *testing.T) {
	s := sim.New(1)
	type arrival struct {
		seq int64
		at  time.Duration
	}
	var got []arrival
	r := NewReorderer(ReorderConfig{P: 0.5, Delay: 5 * time.Millisecond},
		rand.New(rand.NewSource(3)), s, func(p packet.Packet) {
			got = append(got, arrival{p.Seq, s.Now()})
		})
	const n = 200
	sentAt := make(map[int64]time.Duration, n)
	for i := 0; i < n; i++ {
		i := i
		at := time.Duration(i) * time.Millisecond
		sentAt[int64(i)] = at
		s.At(at, func() { r.Send(packet.Packet{Seq: int64(i), Size: 1500}) })
	}
	s.Run(time.Second)
	if len(got) != n {
		t.Fatalf("arrivals = %d, want %d", len(got), n)
	}
	if r.Held() != 0 {
		t.Errorf("Held = %d after drain, want 0", r.Held())
	}
	if r.Deferred == 0 || r.Passed == 0 {
		t.Fatalf("Deferred %d / Passed %d: want both nonzero at P=0.5", r.Deferred, r.Passed)
	}
	if r.Deferred+r.Passed != n {
		t.Errorf("Deferred %d + Passed %d != %d", r.Deferred, r.Passed, n)
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i].seq < got[i-1].seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Errorf("no reordering observed with P=0.5, delay > spacing")
	}
	for _, a := range got {
		if late := a.at - sentAt[a.seq]; late < 0 || late > 5*time.Millisecond {
			t.Errorf("seq %d displaced by %v, bound is 5ms", a.seq, late)
		}
	}
}

func TestDuplicator(t *testing.T) {
	s := sim.New(1)
	var out []packet.Packet
	d := NewDuplicator(DupConfig{P: 1}, rand.New(rand.NewSource(1)),
		func(p packet.Packet) { out = append(out, p) })
	var dupEvents int
	d.SetProbe(s, probeFunc(func(e obs.Event) {
		if e.Type == obs.EvDup {
			if !e.Dup {
				t.Errorf("EvDup event without Dup flag: %+v", e)
			}
			dupEvents++
		}
	}))
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			d.Send(packet.Packet{Seq: int64(i), Size: 1500})
		}
	})
	s.Run(time.Millisecond)
	if len(out) != 20 {
		t.Fatalf("forwarded %d packets, want 20 (P=1 duplicates all)", len(out))
	}
	if d.Passed != 10 || d.Duplicated != 10 || dupEvents != 10 {
		t.Errorf("Passed %d Duplicated %d events %d, want 10/10/10", d.Passed, d.Duplicated, dupEvents)
	}
	for i := 0; i < len(out); i += 2 {
		if out[i].Dup {
			t.Errorf("original %d carries Dup", out[i].Seq)
		}
		if !out[i+1].Dup || out[i+1].Seq != out[i].Seq {
			t.Errorf("copy of %d = %+v, want same seq with Dup", out[i].Seq, out[i+1])
		}
	}
}

// TestRateScheduleStep: a mid-transmission rate halving rescales the head
// packet's remaining serialization and requeues the rest at the new rate.
func TestRateScheduleStep(t *testing.T) {
	s := sim.New(1)
	var deliveries []time.Duration
	l := netem.NewLink(s, units.Mbps(12), 0, func(packet.Packet) {
		deliveries = append(deliveries, s.Now())
	})
	sched := &RateSchedule{Steps: []RateStep{{At: 500 * time.Microsecond, Rate: units.Mbps(6)}}}
	if err := sched.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	sched.Apply(s, l)
	s.At(0, func() {
		for i := 0; i < 3; i++ {
			l.Enqueue(packet.Packet{Seq: int64(i), Size: 1500}) // 1ms each at 12Mbps
		}
	})
	s.Run(time.Second)
	// Head: 0.5ms transmitted at 12Mbps, remaining 0.5ms doubles → 1.5ms.
	// Next two serialize at 6Mbps (2ms each): 3.5ms, 5.5ms.
	want := []time.Duration{1500 * time.Microsecond, 3500 * time.Microsecond, 5500 * time.Microsecond}
	if len(deliveries) != len(want) {
		t.Fatalf("deliveries = %v, want %v", deliveries, want)
	}
	for i := range want {
		if deliveries[i] != want[i] {
			t.Errorf("delivery %d at %v, want %v", i, deliveries[i], want[i])
		}
	}
	if l.RateChanges != 1 {
		t.Errorf("RateChanges = %d, want 1", l.RateChanges)
	}
}

// TestFlapHoldsAndReleases: packets enqueued during an outage are held,
// not dropped, and drain after capacity is restored.
func TestFlapHoldsAndReleases(t *testing.T) {
	s := sim.New(1)
	var deliveries []time.Duration
	l := netem.NewLink(s, units.Mbps(12), 0, func(packet.Packet) {
		deliveries = append(deliveries, s.Now())
	})
	Flap(20*time.Millisecond, 5*time.Millisecond).Apply(s, l)
	// Enqueued at 21ms: mid-outage (down 20–25ms), held until restore.
	s.At(21*time.Millisecond, func() { l.Enqueue(packet.Packet{Size: 1500}) })
	s.Run(30 * time.Millisecond)
	if len(deliveries) != 1 {
		t.Fatalf("deliveries = %v, want exactly 1", deliveries)
	}
	if got, want := deliveries[0], 26*time.Millisecond; got != want {
		t.Errorf("held packet delivered at %v, want %v (restore + 1ms tx)", got, want)
	}
	if l.Rate() != units.Mbps(12) {
		t.Errorf("rate after flap = %v, want restored 12Mbps", l.Rate())
	}
}

func TestRateScheduleValidate(t *testing.T) {
	cases := []struct {
		name string
		rs   *RateSchedule
		ok   bool
	}{
		{"nil", nil, true},
		{"flap", Flap(5*time.Second, 200*time.Millisecond), true},
		{"empty", &RateSchedule{}, false},
		{"negative repeat", &RateSchedule{Repeat: -1, Steps: []RateStep{{At: 1}}}, false},
		{"non-ascending", &RateSchedule{Steps: []RateStep{{At: 2}, {At: 1}}}, false},
		{"negative rate", &RateSchedule{Steps: []RateStep{{At: 1, Rate: -5}}}, false},
		{"restore sentinel ok", &RateSchedule{Steps: []RateStep{{At: 1, Rate: Restore}}}, true},
	}
	for _, c := range cases {
		if err := c.rs.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("ge:0.008,0.2,0.5;reorder:0.02,8ms;dup:0.01;flap:5s,200ms")
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if p.Flow.GE == nil || p.Flow.GE.PGoodToBad != 0.008 || p.Flow.GE.PDropBad != 0.5 {
		t.Errorf("GE = %+v", p.Flow.GE)
	}
	if p.Flow.Reorder == nil || p.Flow.Reorder.Delay != 8*time.Millisecond {
		t.Errorf("Reorder = %+v", p.Flow.Reorder)
	}
	if p.Flow.Duplicate == nil || p.Flow.Duplicate.P != 0.01 {
		t.Errorf("Duplicate = %+v", p.Flow.Duplicate)
	}
	if p.Link == nil || p.Link.Repeat != 5*time.Second {
		t.Errorf("Link = %+v", p.Link)
	}

	p, err = ParseProfile("rate:0s=48,10s=6,20s=base")
	if err != nil {
		t.Fatalf("ParseProfile rate: %v", err)
	}
	if len(p.Link.Steps) != 3 || p.Link.Steps[2].Rate != Restore {
		t.Errorf("rate steps = %+v, want 3 with Restore last", p.Link.Steps)
	}
	if p.Link.Steps[1].Rate != units.Mbps(6) {
		t.Errorf("step 1 rate = %v, want 6Mbps", p.Link.Steps[1].Rate)
	}

	bad := []struct{ spec, wantErr string }{
		{"nonsense", "not kind:args"},
		{"warp:1", "unknown clause kind"},
		{"ge:0.5", "wants pG2B"},
		{"ge:a,b,c", "bad probability"},
		{"ge:0.5,0,0.5", "absorb"},
		{"reorder:0.5", "wants p,delay"},
		{"reorder:0.5,0s", "Delay must be positive"},
		{"dup:2", "must be in [0, 1]"},
		{"flap:1s,2s", "downFor must be in"},
		{"flap:1s,200ms;rate:0s=5", "exclusive"},
		{"rate:0s=5,0s=6", "not after previous"},
		{"rate:0s=-3", "negative rate"},
	}
	for _, c := range bad {
		_, err := ParseProfile(c.spec)
		if err == nil {
			t.Errorf("ParseProfile(%q) accepted, want error containing %q", c.spec, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseProfile(%q) error %q, want substring %q", c.spec, err, c.wantErr)
		}
	}
}

func TestSpecEmptyAndValidate(t *testing.T) {
	var s *Spec
	if !s.Empty() || s.Validate() != nil {
		t.Errorf("nil spec must be empty and valid")
	}
	s = &Spec{}
	if !s.Empty() {
		t.Errorf("zero spec must be empty")
	}
	s = &Spec{GE: &GEConfig{PGoodToBad: 2}}
	if s.Empty() || s.Validate() == nil {
		t.Errorf("invalid GE spec must be non-empty and invalid")
	}
}
