package faults

import (
	"fmt"
	"math/rand"
	"time"

	"starvation/internal/netem"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// ReorderConfig parameterizes a bounded reordering box: each packet is
// independently deferred with probability P by exactly Delay, letting
// packets sent up to Delay later overtake it. The displacement is bounded —
// a deferred packet arrives at most Delay after its in-order position — so
// the element models path-level reordering (ECMP churn, link-layer
// retransmission) without unbounded shuffling.
type ReorderConfig struct {
	P     float64       // per-packet deferral probability
	Delay time.Duration // deferral amount (the reordering bound)
}

// Validate reports the first problem with the configuration.
func (c ReorderConfig) Validate() error {
	if err := probability("P", c.P); err != nil {
		return err
	}
	if c.P > 0 && c.Delay <= 0 {
		return fmt.Errorf("Delay must be positive when P > 0 (got %v)", c.Delay)
	}
	return nil
}

// Reorderer is the bounded reordering element.
type Reorderer struct {
	cfg ReorderConfig
	rng *rand.Rand
	sim *sim.Simulator
	out netem.PacketHandler

	probe obs.Probe
	held  int64

	// releaseFn is the release method bound once so deferrals schedule
	// without a per-packet closure allocation.
	releaseFn func(packet.Packet)

	Passed   int64 // packets forwarded in order
	Deferred int64 // packets deliberately deferred
}

// NewReorderer returns a reordering element feeding out.
func NewReorderer(cfg ReorderConfig, rng *rand.Rand, s *sim.Simulator, out netem.PacketHandler) *Reorderer {
	r := &Reorderer{cfg: cfg, rng: rng, sim: s, out: out}
	r.releaseFn = r.release
	return r
}

// SetProbe installs a lifecycle-event probe; deferrals are reported as
// EvReorder with a queue depth of -1.
func (r *Reorderer) SetProbe(p obs.Probe) { r.probe = p }

// Held returns the number of packets currently deferred inside the box —
// a gauge for conservation ledgers.
func (r *Reorderer) Held() int64 { return r.held }

// Reset returns the element to the state NewReorderer(cfg, rng, s, out)
// would produce with a generator freshly seeded with seed. Packets still
// deferred are abandoned (the caller resets the shared simulator first),
// so the held gauge restarts at zero.
func (r *Reorderer) Reset(cfg ReorderConfig, seed int64) {
	r.cfg = cfg
	r.rng.Seed(seed)
	r.probe = nil
	r.held = 0
	r.Passed, r.Deferred = 0, 0
}

// Send forwards p immediately or defers it by the configured delay.
func (r *Reorderer) Send(p packet.Packet) {
	if r.cfg.P > 0 && r.rng.Float64() < r.cfg.P {
		r.Deferred++
		r.held++
		if r.probe != nil {
			r.probe.Emit(obs.Event{Type: obs.EvReorder, At: r.sim.Now(), Flow: p.Flow,
				Seq: p.Seq, Bytes: p.Size, Queue: -1, Retx: p.Retx, Dup: p.Dup})
		}
		r.sim.AfterPacket(r.cfg.Delay, r.releaseFn, p)
		return
	}
	r.Passed++
	r.out(p)
}

// release forwards a deferred packet at the end of its displacement.
func (r *Reorderer) release(p packet.Packet) {
	r.held--
	r.out(p)
}
