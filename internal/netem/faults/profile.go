package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"starvation/internal/units"
)

// Profile is the parsed form of a CLI fault profile: the per-flow
// impairment spec plus an optional link-level rate schedule.
type Profile struct {
	Flow Spec
	Link *RateSchedule
}

// ParseProfile parses a fault profile string of semicolon-separated
// clauses:
//
//	ge:pG2B,pB2G,pDropBad[,pDropGood]   Gilbert–Elliott bursty loss
//	reorder:p,delay                     bounded reordering (e.g. 0.02,8ms)
//	dup:p                               packet duplication
//	flap:period,downFor                 periodic link outage (e.g. 5s,200ms)
//	rate:at=mbps[,at=mbps...]           piecewise rate steps ("base" restores
//	                                    the configured rate)
//
// Example: "ge:0.008,0.2,0.5;reorder:0.02,8ms;flap:5s,200ms". flap and
// rate are mutually exclusive (both drive the one bottleneck).
func ParseProfile(spec string) (*Profile, error) {
	p := &Profile{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not kind:args", clause)
		}
		args := strings.Split(rest, ",")
		var err error
		switch kind {
		case "ge":
			err = p.parseGE(args)
		case "reorder":
			err = p.parseReorder(args)
		case "dup":
			err = p.parseDup(args)
		case "flap":
			err = p.parseFlap(args)
		case "rate":
			err = p.parseRate(args)
		default:
			err = fmt.Errorf("unknown clause kind %q (want ge, reorder, dup, flap, or rate)", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: %w", err)
		}
	}
	if err := p.Flow.Validate(); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	if err := p.Link.Validate(); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return p, nil
}

func (p *Profile) parseGE(args []string) error {
	if len(args) < 3 || len(args) > 4 {
		return fmt.Errorf("ge wants pG2B,pB2G,pDropBad[,pDropGood], got %d args", len(args))
	}
	vals := make([]float64, len(args))
	for i, a := range args {
		v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
		if err != nil {
			return fmt.Errorf("ge: bad probability %q", a)
		}
		vals[i] = v
	}
	cfg := &GEConfig{PGoodToBad: vals[0], PBadToGood: vals[1], PDropBad: vals[2]}
	if len(vals) == 4 {
		cfg.PDropGood = vals[3]
	}
	p.Flow.GE = cfg
	return nil
}

func (p *Profile) parseReorder(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("reorder wants p,delay, got %d args", len(args))
	}
	prob, err := strconv.ParseFloat(strings.TrimSpace(args[0]), 64)
	if err != nil {
		return fmt.Errorf("reorder: bad probability %q", args[0])
	}
	d, err := time.ParseDuration(strings.TrimSpace(args[1]))
	if err != nil {
		return fmt.Errorf("reorder: bad delay %q", args[1])
	}
	p.Flow.Reorder = &ReorderConfig{P: prob, Delay: d}
	return nil
}

func (p *Profile) parseDup(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("dup wants a single probability, got %d args", len(args))
	}
	prob, err := strconv.ParseFloat(strings.TrimSpace(args[0]), 64)
	if err != nil {
		return fmt.Errorf("dup: bad probability %q", args[0])
	}
	p.Flow.Duplicate = &DupConfig{P: prob}
	return nil
}

func (p *Profile) parseFlap(args []string) error {
	if p.Link != nil {
		return fmt.Errorf("flap: a rate schedule is already set (flap and rate are exclusive)")
	}
	if len(args) != 2 {
		return fmt.Errorf("flap wants period,downFor, got %d args", len(args))
	}
	period, err := time.ParseDuration(strings.TrimSpace(args[0]))
	if err != nil {
		return fmt.Errorf("flap: bad period %q", args[0])
	}
	down, err := time.ParseDuration(strings.TrimSpace(args[1]))
	if err != nil {
		return fmt.Errorf("flap: bad downFor %q", args[1])
	}
	if down <= 0 || down >= period {
		return fmt.Errorf("flap: downFor must be in (0, period) (got %v of %v)", down, period)
	}
	p.Link = Flap(period, down)
	return nil
}

func (p *Profile) parseRate(args []string) error {
	if p.Link != nil {
		return fmt.Errorf("rate: a rate schedule is already set (flap and rate are exclusive)")
	}
	sched := &RateSchedule{}
	for _, a := range args {
		at, val, ok := strings.Cut(strings.TrimSpace(a), "=")
		if !ok {
			return fmt.Errorf("rate: step %q is not at=mbps", a)
		}
		t, err := time.ParseDuration(strings.TrimSpace(at))
		if err != nil {
			return fmt.Errorf("rate: bad step time %q", at)
		}
		var r units.Rate
		if strings.TrimSpace(val) == "base" {
			r = Restore
		} else {
			mbps, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return fmt.Errorf("rate: bad rate %q (Mbit/s number or \"base\")", val)
			}
			if mbps < 0 {
				return fmt.Errorf("rate: negative rate %q", val)
			}
			r = units.Mbps(mbps)
		}
		sched.Steps = append(sched.Steps, RateStep{At: t, Rate: r})
	}
	p.Link = sched
	return nil
}
