package netem

import (
	"math/rand"
)

// Marker is an active queue management policy deciding, per arriving
// packet, whether to set the ECN congestion-experienced mark. §6.4 of the
// paper conjectures that explicit marking — an unambiguous congestion
// signal, unlike delay or loss — coupled with CCAs that react to it and
// ignore small loss, can prevent starvation.
type Marker interface {
	// Mark reports whether a packet arriving with queuedBytes already in
	// the queue should be marked.
	Mark(queuedBytes int) bool
}

// ThresholdMarker marks every packet arriving above a fixed queue depth —
// the "simple threshold-based heuristic" of §6.4.
type ThresholdMarker struct {
	Bytes int
}

// Mark implements Marker.
func (t ThresholdMarker) Mark(queuedBytes int) bool {
	return t.Bytes > 0 && queuedBytes >= t.Bytes
}

// REDMarker implements Random Early Detection marking (Floyd & Jacobson):
// below MinBytes nothing is marked; between MinBytes and MaxBytes the
// marking probability ramps linearly to MaxP; above MaxBytes everything is
// marked. The instantaneous queue stands in for RED's EWMA — our fluid
// queue is already smooth at the sampling scale.
type REDMarker struct {
	MinBytes int
	MaxBytes int
	// MaxP is the marking probability at MaxBytes (default 0.1).
	MaxP float64
	// Rng drives the probabilistic marking; required.
	Rng *rand.Rand
}

// Mark implements Marker.
func (r *REDMarker) Mark(queuedBytes int) bool {
	if queuedBytes < r.MinBytes {
		return false
	}
	if queuedBytes >= r.MaxBytes {
		return true
	}
	maxP := r.MaxP
	if maxP <= 0 {
		maxP = 0.1
	}
	p := maxP * float64(queuedBytes-r.MinBytes) / float64(r.MaxBytes-r.MinBytes)
	return r.Rng.Float64() < p
}

// SetMarker installs an AQM policy on the link, replacing any threshold
// configured via SetECNThreshold.
func (l *Link) SetMarker(m Marker) { l.marker = m }
