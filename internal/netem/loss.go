package netem

import (
	"math/rand"

	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// LossGate drops packets with independent probability P (Bernoulli), the
// random-loss element of §5.4. A nil or zero-probability gate passes
// everything through.
type LossGate struct {
	P   float64
	Rng *rand.Rand
	out PacketHandler

	sim   *sim.Simulator
	probe obs.Probe

	Passed  int64
	Dropped int64
}

// NewLossGate returns a loss element feeding out.
func NewLossGate(p float64, rng *rand.Rand, out PacketHandler) *LossGate {
	return &LossGate{P: p, Rng: rng, out: out}
}

// SetProbe installs a lifecycle-event probe; drops are reported with a
// queue depth of -1 (the gate sits before the bottleneck queue). The
// simulator supplies drop timestamps; without it events carry At zero.
func (g *LossGate) SetProbe(s *sim.Simulator, p obs.Probe) {
	g.sim = s
	g.probe = p
}

// Reset returns the gate to the state NewLossGate(p, g.Rng, out) would
// produce: probability replaced, counters zeroed, probe cleared. The
// caller reseeds g.Rng (exported) to restart the random stream.
func (g *LossGate) Reset(p float64) {
	g.P = p
	g.sim, g.probe = nil, nil
	g.Passed, g.Dropped = 0, 0
}

// Send passes or drops p.
func (g *LossGate) Send(p packet.Packet) {
	if g.P > 0 && g.Rng.Float64() < g.P {
		g.Dropped++
		if g.probe != nil {
			var now sim.Time
			if g.sim != nil {
				now = g.sim.Now()
			}
			g.probe.Emit(obs.Event{Type: obs.EvDrop, At: now, Flow: p.Flow,
				Seq: p.Seq, Bytes: p.Size, Queue: -1, Retx: p.Retx, Dup: p.Dup})
		}
		return
	}
	g.Passed++
	g.out(p)
}
