package netem

import (
	"math/rand"

	"starvation/internal/packet"
)

// LossGate drops packets with independent probability P (Bernoulli), the
// random-loss element of §5.4. A nil or zero-probability gate passes
// everything through.
type LossGate struct {
	P   float64
	Rng *rand.Rand
	out PacketHandler

	Passed  int64
	Dropped int64
}

// NewLossGate returns a loss element feeding out.
func NewLossGate(p float64, rng *rand.Rand, out PacketHandler) *LossGate {
	return &LossGate{P: p, Rng: rng, out: out}
}

// Send passes or drops p.
func (g *LossGate) Send(p packet.Packet) {
	if g.P > 0 && g.Rng.Float64() < g.P {
		g.Dropped++
		return
	}
	g.Passed++
	g.out(p)
}
