package netem

import (
	"time"

	"starvation/internal/netem/jitter"
	"starvation/internal/packet"
	"starvation/internal/sim"
)

// Propagation is a fixed delay: every packet is delivered exactly d later.
// It models the minimum packet propagation RTT Rm of the paper (we fold the
// whole round trip's propagation into one direction, which is equivalent
// from the sender's point of view).
type Propagation struct {
	sim *sim.Simulator
	d   time.Duration
	out PacketHandler
}

// NewPropagation returns a fixed-delay element.
func NewPropagation(s *sim.Simulator, d time.Duration, out PacketHandler) *Propagation {
	return &Propagation{sim: s, d: d, out: out}
}

// Send delays p by the propagation time. The packet rides inline in the
// event record (AfterPacket), so forwarding is allocation-free.
func (pr *Propagation) Send(p packet.Packet) {
	pr.sim.AfterPacket(pr.d, pr.out, p)
}

// DelayBox is the paper's per-flow non-congestive delay element for data
// packets: it holds each packet for a policy-chosen duration in [0, D] and
// never reorders (release times are clamped to be monotone).
type DelayBox struct {
	sim    *sim.Simulator
	policy jitter.Policy
	out    PacketHandler

	lastRelease time.Duration
	inTransit   int64

	// deliverFn/releaseFn are the deliver and release methods bound once at
	// construction so the per-packet scheduling calls pass an existing func
	// value instead of allocating a method-value closure each time.
	deliverFn func(packet.Packet)
	releaseFn func(packet.Packet)

	// MaxApplied records the largest delay actually applied, for checking
	// that a scenario stayed within its declared bound D.
	MaxApplied time.Duration
}

// InTransit returns the number of packets currently inside the box
// (accepted but not yet released downstream). Conservation ledgers use it
// to account for packets in flight at the horizon.
func (b *DelayBox) InTransit() int64 { return b.inTransit }

// NewDelayBox returns a delay element applying the given policy.
func NewDelayBox(s *sim.Simulator, p jitter.Policy, out PacketHandler) *DelayBox {
	b := &DelayBox{sim: s, policy: p, out: out}
	b.deliverFn = b.deliver
	b.releaseFn = b.release
	return b
}

// Reset returns the box to the state NewDelayBox(s, p, out) would produce,
// keeping the bound callbacks. Packets held at reset time are abandoned
// (the caller resets the shared simulator first, which drops their release
// events), so the in-transit gauge restarts at zero.
func (b *DelayBox) Reset(p jitter.Policy) {
	b.policy = p
	b.lastRelease = 0
	b.inTransit = 0
	b.MaxApplied = 0
}

// Send applies the policy delay to p.
func (b *DelayBox) Send(p packet.Packet) {
	b.inTransit++
	b.deliver(p)
}

// SendAfter first applies a fixed extra delay (e.g. propagation) and then
// the policy delay. The policy is consulted at the packet's arrival time at
// the box, i.e. after the extra delay has elapsed.
func (b *DelayBox) SendAfter(p packet.Packet, extra time.Duration) {
	b.inTransit++
	if extra <= 0 {
		b.deliver(p)
		return
	}
	b.sim.AfterPacket(extra, b.deliverFn, p)
}

func (b *DelayBox) deliver(p packet.Packet) {
	now := b.sim.Now()
	var d time.Duration
	if pa, ok := b.policy.(jitter.PacketAware); ok {
		d = pa.DelayPacket(now, p.SentAt, p.Seq)
	} else {
		d = b.policy.Delay(now, p.Seq)
	}
	if d < 0 {
		d = 0
	}
	if d > b.MaxApplied {
		b.MaxApplied = d
	}
	release := now + d
	if release < b.lastRelease {
		release = b.lastRelease // preserve FIFO order within the flow
	}
	b.lastRelease = release
	b.sim.AtPacket(release, b.releaseFn, p)
}

// release hands a held packet downstream at its scheduled release time.
func (b *DelayBox) release(p packet.Packet) {
	b.inTransit--
	b.out(p)
}

// AckDelayBox is the same element for the reverse (ACK) path.
type AckDelayBox struct {
	sim    *sim.Simulator
	policy jitter.Policy
	out    AckHandler

	lastRelease time.Duration
	MaxApplied  time.Duration
}

// NewAckDelayBox returns an ACK-path delay element applying the policy.
func NewAckDelayBox(s *sim.Simulator, p jitter.Policy, out AckHandler) *AckDelayBox {
	return &AckDelayBox{sim: s, policy: p, out: out}
}

// Reset returns the box to the state NewAckDelayBox(s, p, out) would
// produce; see DelayBox.Reset for the simulator-first contract.
func (b *AckDelayBox) Reset(p jitter.Policy) {
	b.policy = p
	b.lastRelease = 0
	b.MaxApplied = 0
}

// Send applies the policy delay to a.
func (b *AckDelayBox) Send(a packet.Ack) {
	now := b.sim.Now()
	d := b.policy.Delay(now, a.SackSeq)
	if d < 0 {
		d = 0
	}
	if d > b.MaxApplied {
		b.MaxApplied = d
	}
	release := now + d
	if release < b.lastRelease {
		release = b.lastRelease
	}
	b.lastRelease = release
	b.sim.AtAck(release, b.out, a)
}
