// Package netem implements the network elements of the paper's model (§3):
// a shared FIFO bottleneck drained at a constant rate, fixed propagation
// delay, per-flow bounded non-congestive delay boxes, and loss injectors.
//
// Elements are composed with callbacks: each element delivers packets to the
// next by invoking a handler, and all timing runs on the shared sim clock.
package netem

import (
	"math"
	"time"

	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// PacketHandler consumes a data packet from an upstream element.
type PacketHandler func(p packet.Packet)

// AckHandler consumes an ACK from an upstream element.
type AckHandler func(a packet.Ack)

// Link is the shared bottleneck: a byte-accurate FIFO queue drained at a
// rate C that may vary over the run (SetRate; see internal/netem/faults for
// schedules and flaps). Packets arriving when the buffer is full are
// dropped (drop-tail). A zero BufferBytes means an effectively infinite
// queue, the ideal-path assumption of Definition 1.
type Link struct {
	sim    *sim.Simulator
	rate   units.Rate
	buf    int // bytes; 0 = infinite
	ecn    int // bytes; 0 = simple threshold ECN disabled
	marker Marker
	out    PacketHandler
	probe  obs.Probe

	queuedBytes   int
	lastDeparture time.Duration

	// departFn is departHead bound once at construction: the hot enqueue
	// path passes it to the scheduler instead of re-binding the method
	// value (which would allocate a closure per packet).
	departFn func()

	// pending[head:] are the queued packets in FIFO order, each with the
	// handle of its scheduled departure so SetRate can reschedule them. At
	// a constant rate this registry is pure bookkeeping: departures are
	// computed at enqueue time exactly as they always were, so fixed-seed
	// realizations are unchanged.
	pending []linkPend
	head    int
	down    bool // rate is 0: nothing departs until SetRate(>0)

	// Stats.
	Delivered     int64 // packets delivered
	Dropped       int64 // packets dropped at the tail
	Marked        int64 // packets ECN-marked
	MaxQueue      int   // high-water mark in bytes
	EnqueuedPkts  int64 // packets accepted into the queue
	EnqueuedBytes int64 // bytes accepted into the queue
	RateChanges   int64 // SetRate calls that changed the drain rate
	perFlow       []FlowLinkStats
}

type linkPend struct {
	pkt    packet.Packet
	handle sim.Handle
	depart time.Duration
}

// FlowLinkStats breaks the link's counters down by owning flow.
type FlowLinkStats struct {
	Enqueued      int64
	EnqueuedBytes int64
	Delivered     int64
	Dropped       int64
	Marked        int64
	// Holding is the flow's packets currently queued (enqueued, not yet
	// departed) — a gauge, not a counter; conservation ledgers use it to
	// account for in-flight packets at the horizon.
	Holding int64
}

// NewLink creates a bottleneck of the given rate and buffer size that
// delivers departing packets to out.
func NewLink(s *sim.Simulator, rate units.Rate, bufferBytes int, out PacketHandler) *Link {
	l := &Link{sim: s, rate: rate, buf: bufferBytes, out: out}
	l.departFn = l.departHead
	return l
}

// SetECNThreshold enables ECN marking for packets that arrive when the
// queue holds at least thresholdBytes.
func (l *Link) SetECNThreshold(thresholdBytes int) { l.ecn = thresholdBytes }

// Reset returns the link to the state NewLink(s, rate, bufferBytes, out)
// would produce, keeping the queue registry and per-flow counter capacity
// and the bound departure callback. The caller must reset the shared
// simulator first: queued departure events are abandoned wholesale (their
// handles went stale with the simulator reset), not cancelled one by one.
// ECN threshold, marker, and probe are cleared; reinstall them after.
func (l *Link) Reset(rate units.Rate, bufferBytes int) {
	l.rate = rate
	l.buf = bufferBytes
	l.ecn = 0
	l.marker = nil
	l.probe = nil
	l.queuedBytes = 0
	l.lastDeparture = 0
	l.pending = l.pending[:0]
	l.head = 0
	l.down = false
	l.Delivered, l.Dropped, l.Marked = 0, 0, 0
	l.MaxQueue = 0
	l.EnqueuedPkts, l.EnqueuedBytes, l.RateChanges = 0, 0, 0
	l.perFlow = l.perFlow[:0]
}

// SetProbe installs a lifecycle-event probe. A nil probe (the default)
// disables event emission at the cost of one branch per transition.
func (l *Link) SetProbe(p obs.Probe) { l.probe = p }

// FlowStats returns the per-flow counter block for f (zeros for flows the
// link has not yet seen).
func (l *Link) FlowStats(f packet.FlowID) FlowLinkStats {
	if int(f) < len(l.perFlow) {
		return l.perFlow[f]
	}
	return FlowLinkStats{}
}

func (l *Link) flow(f packet.FlowID) *FlowLinkStats {
	for int(f) >= len(l.perFlow) {
		l.perFlow = append(l.perFlow, FlowLinkStats{})
	}
	return &l.perFlow[f]
}

// Rate returns the link's current drain rate (0 while flapped down).
func (l *Link) Rate() units.Rate { return l.rate }

// SetRate changes the drain rate to r, rescheduling every queued packet's
// departure. The packet in transmission keeps its transmitted fraction:
// its remaining serialization time is rescaled by oldRate/newRate. A rate
// of 0 takes the link down — queued and newly arriving packets are held
// (subject to the same drop-tail check) until a later SetRate brings the
// link back up, which restarts the head packet's serialization from
// scratch. Rate changes do not rescale a Prime()d virtual backlog.
func (l *Link) SetRate(r units.Rate) {
	if r < 0 {
		r = 0
	}
	old := l.rate
	if r == old {
		return
	}
	now := l.sim.Now()
	l.rate = r
	l.RateChanges++
	if l.probe != nil {
		l.probe.Emit(obs.Event{Type: obs.EvLinkRate, At: now, Flow: -1,
			Seq: int64(r), Queue: l.queuedBytes})
	}
	if r == 0 {
		for i := l.head; i < len(l.pending); i++ {
			l.pending[i].handle.Cancel()
		}
		l.down = true
		return
	}
	prev := now
	for i := l.head; i < len(l.pending); i++ {
		pe := &l.pending[i]
		pe.handle.Cancel()
		var tx time.Duration
		if i == l.head && !l.down {
			// Head keeps its progress: scale the remaining time.
			if rem := pe.depart - now; rem > 0 {
				tx = time.Duration(float64(rem) * float64(old) / float64(r))
			}
		} else {
			tx = r.TxTime(pe.pkt.Size)
		}
		prev += tx
		pe.depart = prev
		pe.handle = l.sim.At(prev, l.departFn)
	}
	l.down = false
	if l.head < len(l.pending) {
		l.lastDeparture = prev
	}
}

// QueuedBytes returns the bytes currently waiting or in transmission.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// QueueDelay returns the delay a packet arriving now would experience
// before its own transmission completes (waiting plus serialization of the
// backlog ahead of it).
func (l *Link) QueueDelay() time.Duration {
	if d := l.lastDeparture - l.sim.Now(); d > 0 {
		return d
	}
	return 0
}

// Prime pre-loads the queue with a virtual backlog that takes delay to
// drain. The Theorem 1 construction uses this to set the initial queueing
// delay d*(0). The backlog drains at line rate but is not delivered to any
// flow.
func (l *Link) Prime(delay time.Duration) {
	if delay <= 0 {
		return
	}
	now := l.sim.Now()
	if l.lastDeparture < now {
		l.lastDeparture = now
	}
	l.lastDeparture += delay
	b := int(math.Round(float64(l.rate) / 8 * delay.Seconds()))
	l.queuedBytes += b
	l.sim.At(l.lastDeparture, func() { l.queuedBytes -= b })
}

// Enqueue offers a packet to the bottleneck. The packet is either queued
// for later delivery or dropped.
func (l *Link) Enqueue(p packet.Packet) {
	now := l.sim.Now()
	if l.buf > 0 && l.queuedBytes+p.Size > l.buf {
		l.Dropped++
		l.flow(p.Flow).Dropped++
		if l.probe != nil {
			l.probe.Emit(obs.Event{Type: obs.EvDrop, At: now, Flow: p.Flow,
				Seq: p.Seq, Bytes: p.Size, Queue: l.queuedBytes, Retx: p.Retx})
		}
		return
	}
	marked := false
	switch {
	case l.marker != nil:
		if l.marker.Mark(l.queuedBytes) {
			p.ECN = true
			marked = true
		}
	case l.ecn > 0 && l.queuedBytes >= l.ecn:
		p.ECN = true
		marked = true
	}
	if marked {
		l.Marked++
		l.flow(p.Flow).Marked++
	}
	var depart time.Duration
	if !l.down {
		if l.lastDeparture < now {
			l.lastDeparture = now
		}
		depart = l.lastDeparture + l.rate.TxTime(p.Size)
		l.lastDeparture = depart
	}
	l.queuedBytes += p.Size
	if l.queuedBytes > l.MaxQueue {
		l.MaxQueue = l.queuedBytes
	}
	l.EnqueuedPkts++
	l.EnqueuedBytes += int64(p.Size)
	fs := l.flow(p.Flow)
	fs.Enqueued++
	fs.EnqueuedBytes += int64(p.Size)
	fs.Holding++
	if l.probe != nil {
		if marked {
			l.probe.Emit(obs.Event{Type: obs.EvMark, At: now, Flow: p.Flow,
				Seq: p.Seq, Bytes: p.Size, Queue: l.queuedBytes, Retx: p.Retx, Dup: p.Dup})
		}
		l.probe.Emit(obs.Event{Type: obs.EvEnqueue, At: now, Flow: p.Flow,
			Seq: p.Seq, Bytes: p.Size, Queue: l.queuedBytes, Retx: p.Retx, Dup: p.Dup})
	}
	if l.down {
		// Held until the link comes back up; SetRate schedules it then.
		l.pending = append(l.pending, linkPend{pkt: p})
		return
	}
	handle := l.sim.At(depart, l.departFn)
	l.pending = append(l.pending, linkPend{pkt: p, handle: handle, depart: depart})
}

// departHead completes serialization of the oldest queued packet. All
// departure events route here: the pending registry is FIFO and departures
// are scheduled in FIFO order, so the firing event always belongs to the
// head entry.
func (l *Link) departHead() {
	p := l.pending[l.head].pkt
	l.pending[l.head] = linkPend{}
	l.head++
	if l.head == len(l.pending) {
		l.pending = l.pending[:0]
		l.head = 0
	} else if l.head >= 64 && l.head*2 >= len(l.pending) {
		n := copy(l.pending, l.pending[l.head:])
		l.pending = l.pending[:n]
		l.head = 0
	}
	l.queuedBytes -= p.Size
	l.Delivered++
	fs := l.flow(p.Flow)
	fs.Delivered++
	fs.Holding--
	if l.probe != nil {
		l.probe.Emit(obs.Event{Type: obs.EvDequeue, At: l.sim.Now(), Flow: p.Flow,
			Seq: p.Seq, Bytes: p.Size, Queue: l.queuedBytes, Retx: p.Retx, Dup: p.Dup})
	}
	l.out(p)
}
