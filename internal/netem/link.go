// Package netem implements the network elements of the paper's model (§3):
// a shared FIFO bottleneck drained at a constant rate, fixed propagation
// delay, per-flow bounded non-congestive delay boxes, and loss injectors.
//
// Elements are composed with callbacks: each element delivers packets to the
// next by invoking a handler, and all timing runs on the shared sim clock.
package netem

import (
	"math"
	"time"

	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/units"
)

// PacketHandler consumes a data packet from an upstream element.
type PacketHandler func(p packet.Packet)

// AckHandler consumes an ACK from an upstream element.
type AckHandler func(a packet.Ack)

// Link is the shared bottleneck: a byte-accurate FIFO queue drained at a
// constant rate C. Packets arriving when the buffer is full are dropped
// (drop-tail). A zero BufferBytes means an effectively infinite queue, the
// ideal-path assumption of Definition 1.
type Link struct {
	sim    *sim.Simulator
	rate   units.Rate
	buf    int // bytes; 0 = infinite
	ecn    int // bytes; 0 = simple threshold ECN disabled
	marker Marker
	out    PacketHandler

	queuedBytes   int
	lastDeparture time.Duration

	// Stats.
	Delivered    int64 // packets delivered
	Dropped      int64 // packets dropped at the tail
	Marked       int64 // packets ECN-marked
	MaxQueue     int   // high-water mark in bytes
	DropCallback func(p packet.Packet)
}

// NewLink creates a bottleneck of the given rate and buffer size that
// delivers departing packets to out.
func NewLink(s *sim.Simulator, rate units.Rate, bufferBytes int, out PacketHandler) *Link {
	return &Link{sim: s, rate: rate, buf: bufferBytes, out: out}
}

// SetECNThreshold enables ECN marking for packets that arrive when the
// queue holds at least thresholdBytes.
func (l *Link) SetECNThreshold(thresholdBytes int) { l.ecn = thresholdBytes }

// Rate returns the link's drain rate.
func (l *Link) Rate() units.Rate { return l.rate }

// QueuedBytes returns the bytes currently waiting or in transmission.
func (l *Link) QueuedBytes() int { return l.queuedBytes }

// QueueDelay returns the delay a packet arriving now would experience
// before its own transmission completes (waiting plus serialization of the
// backlog ahead of it).
func (l *Link) QueueDelay() time.Duration {
	if d := l.lastDeparture - l.sim.Now(); d > 0 {
		return d
	}
	return 0
}

// Prime pre-loads the queue with a virtual backlog that takes delay to
// drain. The Theorem 1 construction uses this to set the initial queueing
// delay d*(0). The backlog drains at line rate but is not delivered to any
// flow.
func (l *Link) Prime(delay time.Duration) {
	if delay <= 0 {
		return
	}
	now := l.sim.Now()
	if l.lastDeparture < now {
		l.lastDeparture = now
	}
	l.lastDeparture += delay
	b := int(math.Round(float64(l.rate) / 8 * delay.Seconds()))
	l.queuedBytes += b
	l.sim.At(l.lastDeparture, func() { l.queuedBytes -= b })
}

// Enqueue offers a packet to the bottleneck. The packet is either queued
// for later delivery or dropped.
func (l *Link) Enqueue(p packet.Packet) {
	if l.buf > 0 && l.queuedBytes+p.Size > l.buf {
		l.Dropped++
		if l.DropCallback != nil {
			l.DropCallback(p)
		}
		return
	}
	switch {
	case l.marker != nil:
		if l.marker.Mark(l.queuedBytes) {
			p.ECN = true
			l.Marked++
		}
	case l.ecn > 0 && l.queuedBytes >= l.ecn:
		p.ECN = true
		l.Marked++
	}
	now := l.sim.Now()
	if l.lastDeparture < now {
		l.lastDeparture = now
	}
	depart := l.lastDeparture + l.rate.TxTime(p.Size)
	l.lastDeparture = depart
	l.queuedBytes += p.Size
	if l.queuedBytes > l.MaxQueue {
		l.MaxQueue = l.queuedBytes
	}
	pkt := p
	l.sim.At(depart, func() {
		l.queuedBytes -= pkt.Size
		l.Delivered++
		l.out(pkt)
	})
}
