package service

import (
	"html/template"
	"net/http"
)

// dashboardTmpl is the minimal human view: one row per batch with live
// links. It exists so a researcher can glance at a long-running daemon
// without tooling; everything it shows is also on the JSON API.
var dashboardTmpl = template.Must(template.New("dash").Parse(`<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>starved — experiment service</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2rem; color: #222; }
h1 { font-size: 1.2rem; }
table { border-collapse: collapse; }
th, td { padding: .3rem .8rem; border-bottom: 1px solid #ddd; text-align: left; }
.state-done { color: #1a7f37; }
.state-failed, .state-cancelled { color: #b42318; }
.state-running { color: #9a6700; }
small { color: #777; }
</style>
</head>
<body>
<h1>starved — experiment service</h1>
<p><small>queue depth {{.Depth}} · <a href="/metrics">metrics</a> · <a href="/debug/queue">queue</a> · <a href="/healthz">healthz</a></small></p>
<table>
<tr><th>batch</th><th>client</th><th>name</th><th>state</th><th>progress</th><th></th></tr>
{{range .Batches}}
<tr>
<td><a href="/batches/{{.ID}}">{{.ID}}</a></td>
<td>{{.Client}}</td>
<td>{{.Name}}</td>
<td class="state-{{.State}}">{{.State}}</td>
<td>{{.Done}}/{{.Jobs}}{{if .Failed}} ({{.Failed}} failed){{end}}{{if .Cached}} ({{.Cached}} cached){{end}}</td>
<td><a href="/batches/{{.ID}}/events">events</a> · <a href="/batches/{{.ID}}/artifacts">artifacts</a></td>
</tr>
{{else}}
<tr><td colspan="6"><small>no batches yet — POST /batches</small></td></tr>
{{end}}
</table>
</body>
</html>
`))

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashboardTmpl.Execute(w, struct {
		Depth   int
		Batches []BatchStatus
	}{Depth: s.sched.Depth(), Batches: s.Statuses()})
}
