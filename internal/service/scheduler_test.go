package service

import (
	"fmt"
	"testing"
	"time"
)

func mkItems(client, batch string, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Client: client, BatchID: batch, Payload: i}
	}
	return items
}

// TestSchedulerAntiStarvation is the subsystem's reason to exist: a
// 1000-job sweep from one client cannot starve a 5-job probe from
// another. With equal weights the probe's jobs dispatch within one
// round-robin slice each — all five inside the first ten dispatches.
func TestSchedulerAntiStarvation(t *testing.T) {
	s := NewScheduler(2000)
	if err := s.Enqueue("sweeper", 1, mkItems("sweeper", "big", 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("prober", 1, mkItems("prober", "small", 5)); err != nil {
		t.Fatal(err)
	}
	probeDone := 0
	for i := 0; i < 10; i++ {
		it, ok := s.Next()
		if !ok {
			t.Fatal("scheduler closed unexpectedly")
		}
		if it.Client == "prober" {
			probeDone++
		}
	}
	if probeDone != 5 {
		t.Fatalf("probe got %d of its 5 jobs in the first 10 dispatches; the sweep starved it", probeDone)
	}
}

// TestSchedulerWeights: a weight-3 client receives three slots per round
// to a weight-1 client's one.
func TestSchedulerWeights(t *testing.T) {
	s := NewScheduler(0)
	if err := s.Enqueue("heavy", 3, mkItems("heavy", "h", 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("light", 1, mkItems("light", "l", 100)); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 80; i++ {
		it, _ := s.Next()
		counts[it.Client]++
	}
	if counts["heavy"] != 60 || counts["light"] != 20 {
		t.Fatalf("80 dispatches split %v, want heavy=60 light=20", counts)
	}
}

// TestSchedulerQueueFull: admission is all-or-nothing at the depth bound.
func TestSchedulerQueueFull(t *testing.T) {
	s := NewScheduler(10)
	if err := s.Enqueue("a", 1, mkItems("a", "x", 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("b", 1, mkItems("b", "y", 3)); err != ErrQueueFull {
		t.Fatalf("overfull enqueue: %v, want ErrQueueFull", err)
	}
	if got := s.Depth(); got != 8 {
		t.Fatalf("depth %d after rejected enqueue, want 8 (no partial admission)", got)
	}
	if err := s.Enqueue("b", 1, mkItems("b", "y", 2)); err != nil {
		t.Fatalf("fitting enqueue rejected: %v", err)
	}
}

// TestSchedulerCancel removes only the batch's queued items.
func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(0)
	items := append(mkItems("a", "keep", 3), mkItems("a", "drop", 4)...)
	if err := s.Enqueue("a", 1, items); err != nil {
		t.Fatal(err)
	}
	if removed := s.Cancel("drop"); removed != 4 {
		t.Fatalf("cancelled %d items, want 4", removed)
	}
	if got := s.Depth(); got != 3 {
		t.Fatalf("depth %d after cancel, want 3", got)
	}
	for i := 0; i < 3; i++ {
		it, ok := s.Next()
		if !ok || it.BatchID != "keep" {
			t.Fatalf("dispatch %d: %+v ok=%v, want a keep item", i, it, ok)
		}
	}
}

// TestSchedulerCancelThenReenqueue: a client whose queue was emptied by a
// cancellation (leaving a stale ring entry) must not end up ringed twice —
// that would double its share.
func TestSchedulerCancelThenReenqueue(t *testing.T) {
	s := NewScheduler(0)
	if err := s.Enqueue("a", 1, mkItems("a", "x", 4)); err != nil {
		t.Fatal(err)
	}
	s.Cancel("x") // queue empty, ring entry stale
	if err := s.Enqueue("a", 1, mkItems("a", "y", 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue("b", 1, mkItems("b", "z", 50)); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		it, _ := s.Next()
		counts[it.Client]++
	}
	if counts["a"] != 20 || counts["b"] != 20 {
		t.Fatalf("40 dispatches split %v, want 20/20 — the stale ring entry doubled a share", counts)
	}
}

// TestSchedulerClose wakes blocked Next calls and fails future enqueues.
func TestSchedulerClose(t *testing.T) {
	s := NewScheduler(0)
	got := make(chan bool, 1)
	go func() {
		_, ok := s.Next()
		got <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let Next park
	s.Close()
	select {
	case ok := <-got:
		if ok {
			t.Fatal("Next returned an item from a closed scheduler")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake the blocked Next")
	}
	if err := s.Enqueue("a", 1, mkItems("a", "x", 1)); err != ErrClosed {
		t.Fatalf("post-close enqueue: %v, want ErrClosed", err)
	}
}

// TestSchedulerSnapshot reports per-client queue state for /debug/queue.
func TestSchedulerSnapshot(t *testing.T) {
	s := NewScheduler(0)
	for i, c := range []string{"zeta", "alpha"} {
		if err := s.Enqueue(c, i+1, mkItems(c, fmt.Sprintf("b%d", i), 3+i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Client != "alpha" || snap[1].Client != "zeta" {
		t.Fatalf("snapshot %+v, want alpha then zeta", snap)
	}
	if snap[0].Queued != 4 || snap[0].Weight != 2 {
		t.Fatalf("alpha %+v, want queued=4 weight=2", snap[0])
	}
}
