package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"starvation/internal/scenario"
)

// testSpec is a small, fast population experiment (≈50 ms emulated).
func testSpec(seed int64) scenario.PopulationSpec {
	return scenario.PopulationSpec{Flows: "reno*2", Duration: 50 * time.Millisecond, Seed: seed}
}

func testJobJSON(name string, seed int64) string {
	return fmt.Sprintf(`{"name":%q,"flows":"reno*2","duration_sec":0.05,"seed":%d}`, name, seed)
}

// newTestServer builds a started server over a temp DataDir plus an
// httptest front end. start=false leaves the workers off so tests can
// control when execution begins.
func newTestServer(t *testing.T, cfg Config, start bool) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 2 * time.Second
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if start {
		s.Start()
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func postBatch(t *testing.T, base, body string) (int, map[string]any, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/batches", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

// waitBatch polls until the batch is terminal.
func waitBatch(t *testing.T, s *Server, id string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		b, ok := s.Batch(id)
		if !ok {
			t.Fatalf("batch %s vanished", id)
		}
		if st := b.status(); st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("batch %s did not reach a terminal state", id)
	return BatchStatus{}
}

// TestServiceEndToEnd: submit over HTTP, stream the event log to
// completion, and read back artifacts byte-identical to what the CLI's
// render path produces for the same specs.
func TestServiceEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4}, true)
	code, out, _ := postBatch(t, ts.URL,
		`{"client":"alice","jobs":[`+testJobJSON("a", 11)+`,`+testJobJSON("b", 12)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, out)
	}
	id := out["id"].(string)

	// Stream events as JSONL; the stream ends when the batch is terminal.
	resp, err := http.Get(ts.URL + "/batches/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Type != "queued" {
		t.Fatalf("first event %+v, want queued", events)
	}
	last := events[len(events)-1]
	if last.Type != "batch-done" || last.Done != 2 || last.Total != 2 {
		t.Fatalf("last event %+v, want batch-done 2/2", last)
	}
	for i, ev := range events {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d; replay is gappy", i, ev.Seq)
		}
	}

	st := waitBatch(t, s, id)
	if st.State != StateDone || st.Done != 2 || st.Failed != 0 {
		t.Fatalf("final status %+v", st)
	}

	// Artifact bytes must equal the shared render path's output — the
	// same function the CLI prints, which is what makes server-vs-CLI
	// parity hold byte for byte.
	for name, seed := range map[string]int64{"a": 11, "b": 12} {
		want, err := testSpec(seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(ts.URL + "/batches/" + id + "/artifacts/" + name)
		if err != nil {
			t.Fatal(err)
		}
		data := readAll(t, resp)
		if string(data) != want.Render() {
			t.Fatalf("artifact %s diverges from the CLI rendering:\n%s\n---\n%s", name, data, want.Render())
		}
	}

	// Artifact listing.
	resp2, err := http.Get(ts.URL + "/batches/" + id + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.Unmarshal(readAll(t, resp2), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("artifact listing %v", names)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := bufio.NewReader(resp.Body).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b.String())
	}
	return []byte(b.String())
}

// TestServiceBadRequest pins the shared validation contract: a malformed
// batch spec comes back as HTTP 400 carrying the very message the CLI
// exits 2 with for the same spec (satellite of the clause grammar).
func TestServiceBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{}, false)
	specErr := func(spec scenario.PopulationSpec) string {
		return spec.Validate().Error()
	}
	cases := []struct {
		name, body, want string
	}{
		{"malformed json", `{`, "decoding batch request"},
		{"unknown field", `{"bogus":1}`, "decoding batch request"},
		{"no jobs", `{"client":"x"}`, "batch has no jobs"},
		{"negative weight", `{"weight":-2,"jobs":[{"flows":"reno*2"}]}`, "weight -2 negative"},
		{"duplicate names", `{"jobs":[{"name":"j","flows":"reno*2"},{"name":"j","flows":"reno*2"}]}`, `duplicate job name "j"`},
		{"bad chaos spec", `{"chaos":"wat","jobs":[{"flows":"reno*2"}]}`, "chaos"},
		{"bad sweep", `{"sweep":{"flows":"reno*2","seeds":0}}`, "sweep: seeds 0"},
		// The CLI-shared spec errors, byte for byte.
		{"unknown cca", `{"jobs":[{"flows":"nosuchcca*2"}]}`,
			`job "job-000": ` + specErr(scenario.PopulationSpec{Flows: "nosuchcca*2"})},
		{"bad topology", `{"jobs":[{"flows":"reno*2","topology":"ring:4"}]}`,
			`job "job-000": ` + specErr(scenario.PopulationSpec{Flows: "reno*2", Topology: "ring:4"})},
		{"empty flows", `{"jobs":[{"flows":""}]}`,
			`job "job-000": ` + specErr(scenario.PopulationSpec{Flows: ""})},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, out, _ := postBatch(t, ts.URL, c.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d %v, want 400", code, out)
			}
			msg, _ := out["error"].(string)
			if !strings.Contains(msg, c.want) {
				t.Fatalf("error %q does not carry %q", msg, c.want)
			}
		})
	}
}

// TestServiceBackpressure: a saturated queue rejects with 429 and a
// Retry-After hint; space freed by execution admits again.
func TestServiceBackpressure(t *testing.T) {
	// Workers never started: the queue holds whatever is admitted.
	s, ts := newTestServer(t, Config{QueueDepth: 4}, false)
	code, _, _ := postBatch(t, ts.URL,
		`{"client":"a","jobs":[`+strings.Join([]string{
			testJobJSON("j0", 1), testJobJSON("j1", 2), testJobJSON("j2", 3), testJobJSON("j3", 4)}, ",")+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("filling submit: %d", code)
	}
	code, out, hdr := postBatch(t, ts.URL, `{"client":"b","jobs":[`+testJobJSON("x", 9)+`]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: %d %v, want 429", code, out)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.mRejected.Value("b"); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
	// The rejected batch leaves no residue.
	if n := len(s.Statuses()); n != 1 {
		t.Fatalf("%d batches registered after rejection, want 1", n)
	}
	// Draining the queue re-opens admission.
	s.Start()
	waitBatch(t, s, s.Statuses()[0].ID)
	code, _, _ = postBatch(t, ts.URL, `{"client":"b","jobs":[`+testJobJSON("x", 9)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-drain submit: %d, want 202", code)
	}
}

// TestServiceCancel: queued jobs are discarded, the stream closes with
// batch-cancelled, and the batch record survives as cancelled.
func TestServiceCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{}, false) // no workers: jobs stay queued
	code, out, _ := postBatch(t, ts.URL, `{"jobs":[`+testJobJSON("a", 1)+`,`+testJobJSON("b", 2)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := out["id"].(string)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/batches/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st BatchStatus
	if err := json.Unmarshal(readAll(t, resp), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state %s after cancel", st.State)
	}
	if d := s.sched.Depth(); d != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", d)
	}
	// The event stream ends (hub closed) with the cancellation event.
	resp2, err := http.Get(ts.URL + "/batches/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(readAll(t, resp2))), "\n")
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "batch-cancelled" {
		t.Fatalf("last event %+v, want batch-cancelled", last)
	}
}

// TestServiceConcurrentBatches: batches submitted concurrently by two
// clients produce artifacts byte-identical to sequential single-spec runs
// — the server-side restatement of the runner's parallel-parity
// invariant, across the full HTTP path.
func TestServiceConcurrentBatches(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4}, true)
	type sub struct {
		id    string
		seeds []int64
	}
	subs := make([]sub, 2)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			seeds := []int64{int64(100*c + 1), int64(100*c + 2), int64(100*c + 3)}
			jobs := make([]string, len(seeds))
			for i, seed := range seeds {
				jobs[i] = testJobJSON(fmt.Sprintf("s%d", seed), seed)
			}
			code, out, _ := postBatch(t, ts.URL,
				fmt.Sprintf(`{"client":"c%d","jobs":[%s]}`, c, strings.Join(jobs, ",")))
			if code != http.StatusAccepted {
				t.Errorf("client %d submit: %d", c, code)
				return
			}
			subs[c] = sub{id: out["id"].(string), seeds: seeds}
		}(c)
	}
	wg.Wait()
	for _, su := range subs {
		if su.id == "" {
			t.Fatal("a submission failed")
		}
		if st := waitBatch(t, s, su.id); st.State != StateDone {
			t.Fatalf("batch %s: %+v", su.id, st)
		}
		for _, seed := range su.seeds {
			want, err := testSpec(seed).Run()
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Get(ts.URL + fmt.Sprintf("/batches/%s/artifacts/s%d", su.id, seed))
			if err != nil {
				t.Fatal(err)
			}
			if got := string(readAll(t, resp)); got != want.Render() {
				t.Fatalf("batch %s seed %d diverges from the sequential run", su.id, seed)
			}
		}
	}
}

// TestServiceFairness: with one worker, a 3-job probe submitted after a
// 40-job sweep still finishes long before it — each probe job waits at
// most one job slice, not the sweep's backlog.
func TestServiceFairness(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 100}, false)
	jobs := make([]string, 40)
	for i := range jobs {
		jobs[i] = testJobJSON(fmt.Sprintf("h%02d", i), int64(200+i))
	}
	code, heavyOut, _ := postBatch(t, ts.URL, `{"client":"sweeper","jobs":[`+strings.Join(jobs, ",")+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("heavy submit: %d", code)
	}
	probe := []string{testJobJSON("p0", 301), testJobJSON("p1", 302), testJobJSON("p2", 303)}
	code, lightOut, _ := postBatch(t, ts.URL, `{"client":"prober","jobs":[`+strings.Join(probe, ",")+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("light submit: %d", code)
	}
	s.Start()
	light := waitBatch(t, s, lightOut["id"].(string))
	heavy := waitBatch(t, s, heavyOut["id"].(string))
	if light.Finished == nil || heavy.Finished == nil {
		t.Fatal("missing finish times")
	}
	if !light.Finished.Before(*heavy.Finished) {
		t.Fatalf("probe finished at %v, after the sweep at %v — starved", light.Finished, heavy.Finished)
	}
	// Stronger: when the probe finished, the sweep must still have had
	// most of its backlog outstanding (DRR interleaving, not luck).
	hb, _ := s.Batch(heavy.ID)
	_ = hb
	var lightLast Event
	lb, _ := s.Batch(light.ID)
	evs, _, _ := lb.hub.Next(0)
	lightLast = evs[len(evs)-1]
	if lightLast.Type != "batch-done" {
		t.Fatalf("light batch last event %+v", lightLast)
	}
}

// TestServiceDrainAndResume: a drained daemon's successor resumes the
// interrupted batch and re-simulates nothing that was already cached.
func TestServiceDrainAndResume(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{DataDir: dir, Workers: 2}, true)
	code, out, _ := postBatch(t, ts1.URL,
		`{"client":"alice","jobs":[`+testJobJSON("a", 21)+`,`+testJobJSON("b", 22)+`,`+testJobJSON("c", 23)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := out["id"].(string)
	waitBatch(t, s1, id)
	s1.Drain()
	ts1.Close()

	// Simulate an interrupted artifact write: one rendered file is gone,
	// but the cache still holds the job's bytes.
	b1, _ := s1.Batch(id)
	if err := os.Remove(b1.artifactPath("b")); err != nil {
		t.Fatal(err)
	}

	s2, _ := newTestServer(t, Config{DataDir: dir, Workers: 2}, false)
	b2, ok := s2.Batch(id)
	if !ok {
		t.Fatal("restarted daemon lost the batch")
	}
	if st := b2.status(); st.State.Terminal() {
		t.Fatalf("batch with a missing artifact restored as %s; want re-queued", st.State)
	}
	s2.Start()
	st := waitBatch(t, s2, id)
	if st.State != StateDone {
		t.Fatalf("resumed batch: %+v", st)
	}
	stats := s2.pool.Stats()
	if stats.Executed != 0 {
		t.Fatalf("resume re-simulated %d jobs; want pure cache restores", stats.Executed)
	}
	if stats.CacheHits != 1 {
		t.Fatalf("resume used %d cache hits, want 1", stats.CacheHits)
	}
	want, err := testSpec(22).Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(b2.artifactPath("b"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != want.Render() {
		t.Fatal("healed artifact diverges from the original rendering")
	}
}

// TestServiceResumeQueuedBatch: a batch admitted but never started (the
// daemon died first) runs to completion on the next daemon.
func TestServiceResumeQueuedBatch(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{DataDir: dir}, false) // workers never start
	code, out, _ := postBatch(t, ts1.URL, `{"jobs":[`+testJobJSON("a", 31)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := out["id"].(string)
	s1.Drain()
	ts1.Close()

	s2, _ := newTestServer(t, Config{DataDir: dir}, true)
	st := waitBatch(t, s2, id)
	if st.State != StateDone || st.Done != 1 {
		t.Fatalf("resumed queued batch: %+v", st)
	}
}

// TestServiceChaosBatch: a batch under an injected-fault spec converges
// through retries to artifacts byte-identical to a fault-free run.
func TestServiceChaosBatch(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2}, true)
	code, out, _ := postBatch(t, ts.URL,
		`{"client":"chaos","chaos":"seed:3;fail:0.5","jobs":[`+testJobJSON("a", 41)+`,`+testJobJSON("b", 42)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := waitBatch(t, s, out["id"].(string))
	if st.State != StateDone || st.Failed != 0 {
		t.Fatalf("chaos batch did not converge: %+v", st)
	}
	for name, seed := range map[string]int64{"a": 41, "b": 42} {
		want, err := testSpec(seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(ts.URL + "/batches/" + out["id"].(string) + "/artifacts/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(readAll(t, resp)); got != want.Render() {
			t.Fatalf("chaos artifact %s diverges from the fault-free rendering", name)
		}
	}
}

// TestServiceDrainRejects: a draining daemon answers 503 on submission
// and on health checks.
func TestServiceDrainRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1}, true)
	s.Drain()
	code, out, _ := postBatch(t, ts.URL, `{"jobs":[`+testJobJSON("a", 1)+`]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %v, want 503", code, out)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
}

// TestServiceSSE: Accept: text/event-stream switches the events endpoint
// to SSE framing.
func TestServiceSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1}, true)
	code, out, _ := postBatch(t, ts.URL, `{"jobs":[`+testJobJSON("a", 51)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitBatch(t, s, out["id"].(string))
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/batches/"+out["id"].(string)+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	if resp.Header.Get("Content-Type") != "text/event-stream" {
		t.Fatalf("content type %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "event: batch-done\n") || !strings.Contains(body, "data: {") {
		t.Fatalf("not SSE-framed:\n%s", body)
	}
}

// TestServiceMetricsAndDebug: the Prometheus exposition carries the
// runner counters and the per-client families; /debug/queue decodes.
func TestServiceMetricsAndDebug(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2}, true)
	code, out, _ := postBatch(t, ts.URL, `{"client":"alice","jobs":[`+testJobJSON("a", 61)+`]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitBatch(t, s, out["id"].(string))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAll(t, resp))
	for _, want := range []string{
		"starvesim_runner_jobs_executed_total",
		`starved_jobs_total{client="alice"} 1`,
		`starved_batches_total{client="alice"} 1`,
		"starved_queue_depth 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	resp2, err := http.Get(ts.URL + "/debug/queue")
	if err != nil {
		t.Fatal(err)
	}
	var dq map[string]any
	if err := json.Unmarshal(readAll(t, resp2), &dq); err != nil {
		t.Fatal(err)
	}
	if _, ok := dq["depth"]; !ok {
		t.Fatalf("debug queue shape %v", dq)
	}
	// Dashboard renders.
	resp3, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(readAll(t, resp3)), "starved — experiment service") {
		t.Fatal("dashboard did not render")
	}
}
