package service

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"starvation/internal/runner/chaos"
	"starvation/internal/scenario"
)

// MaxBatchJobs bounds a single batch; the queue-depth bound is the real
// admission control, this just keeps one request body from being absurd.
const MaxBatchJobs = 10000

// MaxRequestBytes bounds a batch request body.
const MaxRequestBytes = 1 << 20

// JobRequest is one experiment of a batch: a population spec plus a name
// for the manifest and the artifact tree. The spec fields are exactly the
// CLI's population-mode flags, in the same clause grammar.
type JobRequest struct {
	// Name is the job's stable identifier within the batch (defaults to
	// its index; sweeps name jobs by seed).
	Name string `json:"name,omitempty"`
	scenario.PopulationSpec
	// DurationSec is the JSON-friendly run length (0 selects the default).
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// spec returns the PopulationSpec with the JSON duration folded in.
func (j JobRequest) spec() scenario.PopulationSpec {
	s := j.PopulationSpec
	if j.DurationSec > 0 {
		s.Duration = time.Duration(j.DurationSec * float64(time.Second))
	}
	return s
}

// SweepRequest expands one spec across consecutive seeds — the service
// form of the CLI's -sweep flag.
type SweepRequest struct {
	JobRequest
	// SeedFrom is the first seed (0 selects the reference seed).
	SeedFrom int64 `json:"seed_from,omitempty"`
	// Seeds is how many consecutive seeds to run (required, ≥ 1).
	Seeds int `json:"seeds"`
}

// BatchRequest is the POST /batches body: a set of population experiments
// submitted under a client identity and scheduling weight.
type BatchRequest struct {
	// Client is the tenant identity the scheduler queues under (defaults
	// to "anonymous"). Fairness is per client, not per batch.
	Client string `json:"client,omitempty"`
	// Weight is the client's deficit-round-robin weight (default 1).
	Weight int `json:"weight,omitempty"`
	// Name is an optional human label shown on the dashboard.
	Name string `json:"name,omitempty"`
	// Jobs lists explicit experiments.
	Jobs []JobRequest `json:"jobs,omitempty"`
	// Sweep expands into seed-named jobs appended after Jobs.
	Sweep *SweepRequest `json:"sweep,omitempty"`
	// Chaos, when set, runs the whole batch under the chaos injector with
	// this spec (see internal/runner/chaos for the grammar) and the retry
	// budget the spec implies.
	Chaos string `json:"chaos,omitempty"`
}

// batchJob is one validated, named, runnable unit of a batch.
type batchJob struct {
	Name string                  `json:"name"`
	Spec scenario.PopulationSpec `json:"spec"`
	// DurationSec persists the duration across daemon restarts (Spec's
	// Duration field does not serialize).
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// spec returns the runnable spec with the persisted duration folded back
// in. Every consumer must go through this — using Spec directly after a
// daemon restart would see the default duration and compute a different
// cache fingerprint, silently re-simulating every resumed job.
func (bj batchJob) spec() scenario.PopulationSpec {
	s := bj.Spec
	if bj.DurationSec > 0 {
		s.Duration = time.Duration(bj.DurationSec * float64(time.Second))
	}
	return s
}

// DecodeBatchRequest reads and validates a batch request. Any error it
// returns is a client error (HTTP 400) carrying, for spec problems, the
// same message the CLI exits 2 with — the shared error-string contract.
func DecodeBatchRequest(r io.Reader) (BatchRequest, []batchJob, error) {
	var req BatchRequest
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("decoding batch request: %v", err)
	}
	jobs, err := req.expand()
	if err != nil {
		return req, nil, err
	}
	return req, jobs, nil
}

// expand names, expands, and validates the request's jobs.
func (req BatchRequest) expand() ([]batchJob, error) {
	if req.Weight < 0 {
		return nil, fmt.Errorf("weight %d negative", req.Weight)
	}
	if req.Chaos != "" {
		if _, err := chaos.Parse(req.Chaos); err != nil {
			return nil, err
		}
	}
	var jobs []batchJob
	seen := map[string]bool{}
	add := func(name string, jr JobRequest) error {
		name = sanitizeName(name)
		if seen[name] {
			return fmt.Errorf("duplicate job name %q", name)
		}
		seen[name] = true
		spec := jr.spec()
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("job %q: %w", name, err)
		}
		jobs = append(jobs, batchJob{Name: name, Spec: spec, DurationSec: jr.DurationSec})
		return nil
	}
	for i, jr := range req.Jobs {
		name := jr.Name
		if name == "" {
			name = fmt.Sprintf("job-%03d", i)
		}
		if err := add(name, jr); err != nil {
			return nil, err
		}
	}
	if req.Sweep != nil {
		if req.Sweep.Seeds < 1 {
			return nil, fmt.Errorf("sweep: seeds %d, want >= 1", req.Sweep.Seeds)
		}
		base := req.Sweep.SeedFrom
		if base == 0 {
			base = scenario.DefaultPopulationSeed
		}
		prefix := req.Sweep.Name
		if prefix == "" {
			prefix = "seed"
		}
		for k := 0; k < req.Sweep.Seeds; k++ {
			jr := req.Sweep.JobRequest
			jr.Seed = base + int64(k)
			if err := add(fmt.Sprintf("%s-%d", prefix, jr.Seed), jr); err != nil {
				return nil, err
			}
		}
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("batch has no jobs")
	}
	if len(jobs) > MaxBatchJobs {
		return nil, fmt.Errorf("batch has %d jobs, max %d", len(jobs), MaxBatchJobs)
	}
	return jobs, nil
}

// sanitizeName maps a job name onto the filesystem-safe alphabet used for
// manifest keys and artifact filenames.
func sanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteRune('-')
		}
	}
	if b.Len() == 0 {
		return "job"
	}
	const maxName = 100
	s := b.String()
	if len(s) > maxName {
		s = s[:maxName]
	}
	return s
}
