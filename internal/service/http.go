package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /batches                     submit a batch (202; 400/429/503)
//	GET    /batches                     list batch statuses
//	GET    /batches/{id}                one batch's status
//	DELETE /batches/{id}                cancel a batch
//	GET    /batches/{id}/events        stream events (JSONL; SSE on Accept)
//	GET    /batches/{id}/artifacts     list artifact names
//	GET    /batches/{id}/artifacts/{job}  one job's rendered output
//	GET    /metrics                    Prometheus text exposition
//	GET    /healthz                    liveness (503 while draining)
//	GET    /debug/queue                scheduler state
//	GET    /                           HTML dashboard
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /batches", s.handleSubmit)
	mux.HandleFunc("POST /batches/{$}", s.handleSubmit)
	mux.HandleFunc("GET /batches", s.handleList)
	mux.HandleFunc("GET /batches/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /batches/{id}", s.handleCancel)
	mux.HandleFunc("GET /batches/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /batches/{id}/artifacts", s.handleArtifactList)
	mux.HandleFunc("GET /batches/{id}/artifacts/{job}", s.handleArtifact)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/queue", s.handleDebugQueue)
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is every non-2xx JSON response. For 400s Error carries the
// same message the CLI exits 2 with (the shared validation path).
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining; not accepting batches"})
		return
	}
	req, jobs, err := DecodeBatchRequest(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	st, err := s.Submit(req, jobs)
	switch err {
	case nil:
	case ErrQueueFull:
		w.Header().Set("Retry-After", fmt.Sprint(s.retryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: ErrQueueFull.Error()})
		return
	case ErrClosed:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining; not accepting batches"})
		return
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/batches/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// retryAfterSeconds estimates when queue space is likely: the backlog
// divided by the worker set, floored at one second.
func (s *Server) retryAfterSeconds() int {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	sec := s.sched.Depth() / (workers * 4)
	if sec < 1 {
		sec = 1
	}
	return sec
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statuses())
}

func (s *Server) batchOr404(w http.ResponseWriter, r *http.Request) (*batch, bool) {
	id := r.PathValue("id")
	if !validBatchID(id) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such batch"})
		return nil, false
	}
	b, ok := s.Batch(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such batch"})
		return nil, false
	}
	return b, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if b, ok := s.batchOr404(w, r); ok {
		writeJSON(w, http.StatusOK, b.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	b, ok := s.batchOr404(w, r)
	if !ok {
		return
	}
	st, _ := s.Cancel(b.rec.ID)
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams the batch's events: full replay first, then live
// until the batch is terminal. JSONL by default; text/event-stream when
// the client asks for SSE.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	b, ok := s.batchOr404(w, r)
	if !ok {
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	i := 0
	for {
		evs, wake, open := b.hub.Next(i)
		if len(evs) > 0 {
			for _, ev := range evs {
				data, err := json.Marshal(ev)
				if err != nil {
					return
				}
				if sse {
					fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
				} else {
					fmt.Fprintf(w, "%s\n", data)
				}
			}
			i += len(evs)
			flush()
			continue
		}
		if !open {
			return // stream complete: batch terminal, backlog drained
		}
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleArtifactList(w http.ResponseWriter, r *http.Request) {
	b, ok := s.batchOr404(w, r)
	if !ok {
		return
	}
	entries, err := os.ReadDir(filepath.Join(b.dir, "artifacts"))
	if err != nil && !os.IsNotExist(err) {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	names := []string{}
	for _, e := range entries {
		if n := strings.TrimSuffix(e.Name(), ".txt"); n != e.Name() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	b, ok := s.batchOr404(w, r)
	if !ok {
		return
	}
	job := r.PathValue("job")
	if job != sanitizeName(job) {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such artifact"})
		return
	}
	data, err := os.ReadFile(b.artifactPath(job))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such artifact"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write(data)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.gQueue.Set("", int64(s.sched.Depth()))
	s.gActive.Set("", int64(s.activeBatches()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.pool.WritePrometheus(w); err != nil {
		return
	}
	_ = s.fams.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleDebugQueue(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"depth":   s.sched.Depth(),
		"clients": s.sched.Snapshot(),
		"stats":   s.pool.Stats(),
	})
}
