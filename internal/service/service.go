package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starvation/internal/core"
	"starvation/internal/network"
	"starvation/internal/obs"
	"starvation/internal/runner"
	"starvation/internal/runner/chaos"
)

// defaultWorkers sizes the worker set when Config.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// manifestHistoryKeep bounds absorbed-failure history per job in a
// long-running daemon's batch manifests (Manifest.Compact at finalize).
const manifestHistoryKeep = 8

// DefaultDrainGrace is how long Drain lets running jobs finish before
// cancelling them (they re-run, from manifest, after the next start).
const DefaultDrainGrace = 5 * time.Second

// Config configures a Server.
type Config struct {
	// DataDir roots the persistent state: <DataDir>/cache (shared
	// content-addressed artifact cache) and <DataDir>/batches/<id>/
	// (per-batch record, manifest, artifact tree).
	DataDir string
	// Workers bounds concurrently executing jobs (0 selects GOMAXPROCS
	// via the pool).
	Workers int
	// QueueDepth bounds queued (admitted, unstarted) jobs across all
	// clients; past it POST /batches returns 429 (0 selects
	// DefaultQueueDepth).
	QueueDepth int
	// JobDeadline is the per-job wall-clock budget (0 disables).
	JobDeadline time.Duration
	// Retry is the default supervision policy for batches without a chaos
	// spec (chaos batches bring the budget their spec implies).
	Retry runner.RetryPolicy
	// DrainGrace bounds how long Drain waits for running jobs
	// (0 selects DefaultDrainGrace).
	DrainGrace time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Server is the starved experiment daemon: admission, scheduling,
// execution, streaming, persistence.
type Server struct {
	cfg   Config
	pool  *runner.Pool
	sched *Scheduler
	// sessions hands each executing job a recycled network run context:
	// a worker borrows one session per attempt, so the daemon's steady
	// state rebuilds each distinct topology once per concurrent worker
	// rather than once per job. Realizations (and thus artifacts and the
	// cache's server-vs-CLI byte parity) are bit-identical either way.
	sessions *network.SessionPool

	fams      *obs.FamilySet
	mJobs     *obs.Family // counter: jobs completed per client
	mBatches  *obs.Family // counter: batches admitted per client
	mRejected *obs.Family // counter: batches rejected (429) per client
	mEvents   *obs.Family // counter: events published per batch state transition kind
	gQueue    *obs.Family // gauge: queued jobs
	gActive   *obs.Family // gauge: non-terminal batches

	rootCtx    context.Context
	rootCancel context.CancelFunc
	workersWG  sync.WaitGroup

	mu       sync.Mutex
	batches  map[string]*batch
	order    []string // admission order, for listings
	seq      int
	draining bool
	resume   []*batch // loaded at New, enqueued at Start
}

// jobUnit is the scheduler payload: one job of one batch.
type jobUnit struct {
	b   *batch
	idx int
}

// New builds a server over DataDir, loading any batches a previous
// daemon left behind. Interrupted batches are re-enqueued at Start; their
// completed jobs restore from the cache without re-simulating.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: DataDir required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "batches"), 0o755); err != nil {
		return nil, err
	}
	fams := obs.NewFamilySet()
	s := &Server{
		cfg: cfg,
		pool: &runner.Pool{
			JobDeadline: cfg.JobDeadline,
			Cache:       &runner.Cache{Dir: filepath.Join(cfg.DataDir, "cache")},
			Retry:       cfg.Retry,
		},
		sched:     NewScheduler(cfg.QueueDepth),
		sessions:  network.NewSessionPool(),
		fams:      fams,
		mJobs:     fams.Counter("starved_jobs_total", "Jobs completed per client (includes cache restores and failures).", "client"),
		mBatches:  fams.Counter("starved_batches_total", "Batches admitted per client.", "client"),
		mRejected: fams.Counter("starved_rejected_total", "Batches rejected with 429 per client.", "client"),
		mEvents:   fams.Counter("starved_events_total", "Batch events published, by event type.", "type"),
		gQueue:    fams.Gauge("starved_queue_depth", "Jobs admitted and waiting for a worker.", ""),
		gActive:   fams.Gauge("starved_active_batches", "Batches not yet in a terminal state.", ""),
		batches:   map[string]*batch{},
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	if err := s.loadExisting(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// loadExisting restores persisted batches. A batch whose every job is
// recorded done (and whose artifact file exists) is terminal; anything
// else is queued for resume.
func (s *Server) loadExisting() error {
	root := filepath.Join(s.cfg.DataDir, "batches")
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && validBatchID(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(root, name)
		rec, err := loadRecord(dir)
		if err != nil {
			// A torn admission (crash before batch.json landed) or a foreign
			// schema: skip it rather than refuse to start.
			s.logf("service: skipping %s: %v", dir, err)
			continue
		}
		b := s.restore(rec, dir)
		s.batches[rec.ID] = b
		s.order = append(s.order, rec.ID)
		if n := seqOf(rec.ID); n > s.seq {
			s.seq = n
		}
		if !b.status().State.Terminal() {
			s.resume = append(s.resume, b)
		}
	}
	return nil
}

// restore rebuilds a batch's runtime state from its persisted record.
func (s *Server) restore(rec batchRecord, dir string) *batch {
	b := &batch{
		rec:      rec,
		dir:      dir,
		manifest: runner.LoadManifest(filepath.Join(dir, "manifest.json")),
		hub:      NewHub(),
		state:    StateQueued,
	}
	b.ctx, b.cancel = context.WithCancel(s.rootCtx)
	if b.manifest.RecoveredFrom != "" {
		s.logf("service: %s: %s", rec.ID, b.manifest.RecoveredFrom)
	}
	satisfied := 0
	for _, bj := range rec.Jobs {
		if s.jobSatisfied(b, bj) {
			satisfied++
		}
	}
	b.done, b.succeeded = satisfied, satisfied
	if satisfied == len(rec.Jobs) {
		b.state = StateDone
		b.finished = rec.Created
		if fi, err := os.Stat(filepath.Join(dir, "manifest.json")); err == nil {
			b.finished = fi.ModTime()
		}
		b.hub.Close()
	}
	return b
}

// jobSatisfied reports whether a persisted job needs no work: manifest
// says done under the current fingerprint AND its artifact file exists.
// A job that fails the check is re-enqueued; if its artifact is still
// cached the re-run is a restore, not a simulation.
func (s *Server) jobSatisfied(b *batch, bj batchJob) bool {
	fp := s.pool.Cache.Fingerprint(bj.spec().Key())
	if !b.manifest.Done(bj.Name, fp) {
		return false
	}
	_, err := os.Stat(b.artifactPath(bj.Name))
	return err == nil
}

func seqOf(id string) int {
	if !strings.HasPrefix(id, "b") {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimPrefix(id, "b"))
	if err != nil {
		return 0
	}
	return n
}

// Start launches the worker loops and re-enqueues interrupted batches.
func (s *Server) Start() {
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	for i := 0; i < workers; i++ {
		s.workersWG.Add(1)
		go func() {
			defer s.workersWG.Done()
			s.worker()
		}()
	}
	s.mu.Lock()
	resume := s.resume
	s.resume = nil
	s.mu.Unlock()
	for _, b := range resume {
		if err := s.enqueue(b); err != nil {
			s.logf("service: resuming %s: %v", b.rec.ID, err)
		} else {
			s.logf("service: resumed %s (%d/%d jobs already satisfied)", b.rec.ID, b.status().Done, len(b.rec.Jobs))
		}
	}
}

// enqueue admits the batch's outstanding jobs to the scheduler.
func (s *Server) enqueue(b *batch) error {
	items := make([]Item, 0, len(b.rec.Jobs))
	for i, bj := range b.rec.Jobs {
		if s.jobSatisfied(b, bj) {
			continue
		}
		items = append(items, Item{Client: b.rec.Client, BatchID: b.rec.ID, Payload: jobUnit{b: b, idx: i}})
	}
	if len(items) == 0 {
		s.finalize(b)
		return nil
	}
	st := b.status()
	if err := s.sched.Enqueue(b.rec.Client, b.rec.Weight, items); err != nil {
		return err
	}
	b.hub.Publish(Event{Batch: b.rec.ID, Type: "queued", Done: st.Done, Total: st.Jobs})
	s.mEvents.Add("queued", 1)
	return nil
}

// worker pulls scheduled jobs until the scheduler closes.
func (s *Server) worker() {
	for {
		it, ok := s.sched.Next()
		if !ok {
			return
		}
		u := it.Payload.(jobUnit)
		s.execute(u.b, u.idx)
	}
}

// execute runs one job of a batch on the shared pool.
func (s *Server) execute(b *batch, idx int) {
	bj := b.rec.Jobs[idx]
	if b.ctx.Err() != nil {
		// Cancelled between scheduling and execution; the batch is already
		// finalized as cancelled, don't touch its accounting.
		return
	}
	b.mu.Lock()
	b.running++
	if b.state == StateQueued {
		b.state = StateRunning
	}
	b.mu.Unlock()

	spec := bj.spec()
	job := runner.Job{
		ID:  bj.Name,
		Key: spec.Key(),
		Run: func(ctx context.Context) ([]byte, error) {
			// Rebuild the configuration per attempt: flow specs carry
			// stateful CCA instances and must never be reused.
			cfg, err := spec.Config()
			if err != nil {
				return nil, err
			}
			cfg.Ctx = ctx
			// Borrow a recycled run context for the attempt. A session is
			// safe to return even after a failed or cancelled run — the
			// next run resets everything it touched.
			cfg.Session = s.sessions.Get()
			defer s.sessions.Put(cfg.Session)
			pr, err := core.RunPopulation(cfg)
			if err != nil {
				return nil, err
			}
			return []byte(pr.Render()), nil
		},
	}
	ex := runner.Exec{
		Job:      job,
		Manifest: b.manifest,
		Progress: func(ev runner.ProgressEvent) { s.onProgress(b, ev) },
	}
	if b.rec.Chaos != "" {
		spec, err := chaos.Parse(b.rec.Chaos) // validated at admission
		if err == nil {
			ex.Job = chaos.New(spec).Wrap([]runner.Job{ex.Job})[0]
			ex.Retry = &runner.RetryPolicy{
				MaxAttempts: spec.RetryAttempts(),
				Seed:        spec.Seed,
				Base:        2 * time.Millisecond,
			}
		}
	}
	res := s.pool.Execute(b.ctx, ex)
	if res.Err == nil {
		if err := s.writeArtifact(b, bj.Name, res.Artifact); err != nil {
			s.logf("service: %s/%s: writing artifact: %v", b.rec.ID, bj.Name, err)
		}
	}
	b.mu.Lock()
	b.running--
	terminal := b.done >= len(b.rec.Jobs)
	b.mu.Unlock()
	s.mJobs.Add(b.rec.Client, 1)
	if terminal {
		s.finalize(b)
	}
}

// writeArtifact lands a job's rendered output in the batch tree with
// write-then-rename (a crashed daemon never leaves a torn artifact).
func (s *Server) writeArtifact(b *batch, name string, data []byte) error {
	dir := filepath.Join(b.dir, "artifacts")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+name+".tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), b.artifactPath(name))
}

// onProgress folds a runner progress event into batch accounting and the
// batch's event stream. Terminal kinds advance Done; Start/Retry don't.
func (s *Server) onProgress(b *batch, ev runner.ProgressEvent) {
	var typ string
	b.mu.Lock()
	switch ev.Kind {
	case runner.ProgressStart:
		typ = "start"
	case runner.ProgressRetry:
		typ = "retry"
	case runner.ProgressDone:
		typ = "done"
		b.done++
		b.succeeded++
	case runner.ProgressCached:
		typ = "cached"
		b.done++
		b.succeeded++
		b.cached++
	case runner.ProgressFailed:
		typ = "failed"
		b.done++
		b.failed++
	default:
		typ = ev.Kind.String()
	}
	done, total := b.done, len(b.rec.Jobs)
	b.mu.Unlock()
	out := Event{
		Batch: b.rec.ID, Type: typ, Job: ev.Job,
		Done: done, Total: total, Attempt: ev.Attempt,
		ElapsedMs: ev.Elapsed.Milliseconds(),
	}
	if ev.Err != nil {
		out.Err = ev.Err.Error()
	}
	b.hub.Publish(out)
	s.mEvents.Add(typ, 1)
}

// finalize moves a fully-accounted batch to its terminal state, closes
// its event stream, and compacts its manifest's retry history.
func (s *Server) finalize(b *batch) {
	b.mu.Lock()
	if b.state.Terminal() {
		b.mu.Unlock()
		return
	}
	if b.failed > 0 {
		b.state = StateFailed
	} else {
		b.state = StateDone
	}
	b.finished = time.Now()
	st, done, total := b.state, b.done, len(b.rec.Jobs)
	b.mu.Unlock()
	typ := "batch-done"
	if st == StateFailed {
		typ = "batch-failed"
	}
	b.hub.Publish(Event{Batch: b.rec.ID, Type: typ, Done: done, Total: total})
	s.mEvents.Add(typ, 1)
	b.hub.Close()
	if dropped, err := b.manifest.Compact(manifestHistoryKeep); err != nil {
		s.logf("service: %s: compacting manifest: %v", b.rec.ID, err)
	} else if dropped > 0 {
		s.logf("service: %s: compacted %d absorbed-failure records", b.rec.ID, dropped)
	}
	s.logf("service: %s %s (%d/%d jobs)", b.rec.ID, st, done, total)
}

// Submit admits a batch: persist, then schedule. It returns the created
// batch's status, or an error the HTTP layer maps to 429/503/500.
func (s *Server) Submit(req BatchRequest, jobs []batchJob) (BatchStatus, error) {
	client := req.Client
	if client == "" {
		client = "anonymous"
	}
	weight := req.Weight
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return BatchStatus{}, ErrClosed
	}
	s.seq++
	id := fmt.Sprintf("b%06d", s.seq)
	s.mu.Unlock()

	dir := filepath.Join(s.cfg.DataDir, "batches", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return BatchStatus{}, err
	}
	rec := batchRecord{
		Schema: runner.SchemaVersion, ID: id, Client: client, Weight: weight,
		Name: req.Name, Chaos: req.Chaos, Jobs: jobs, Created: time.Now().UTC(),
	}
	if err := saveRecord(dir, rec); err != nil {
		os.RemoveAll(dir)
		return BatchStatus{}, err
	}
	b := s.restore(rec, dir)
	if err := s.enqueue(b); err != nil {
		os.RemoveAll(dir)
		if err == ErrQueueFull {
			s.mRejected.Add(client, 1)
		}
		return BatchStatus{}, err
	}
	s.mu.Lock()
	s.batches[id] = b
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.mBatches.Add(client, 1)
	s.logf("service: admitted %s: client=%s weight=%d jobs=%d chaos=%q", id, client, weight, len(jobs), req.Chaos)
	return b.status(), nil
}

// Cancel cancels a batch: queued jobs are discarded, running jobs'
// contexts are cancelled, and the batch goes terminal immediately.
func (s *Server) Cancel(id string) (BatchStatus, bool) {
	s.mu.Lock()
	b, ok := s.batches[id]
	s.mu.Unlock()
	if !ok {
		return BatchStatus{}, false
	}
	b.mu.Lock()
	if b.state.Terminal() {
		b.mu.Unlock()
		return b.status(), true
	}
	b.state = StateCancelled
	b.finished = time.Now()
	done, total := b.done, len(b.rec.Jobs)
	b.mu.Unlock()
	removed := s.sched.Cancel(id)
	b.cancel()
	b.hub.Publish(Event{Batch: id, Type: "batch-cancelled", Done: done, Total: total})
	s.mEvents.Add("batch-cancelled", 1)
	b.hub.Close()
	s.logf("service: cancelled %s (%d queued jobs discarded)", id, removed)
	return b.status(), true
}

// Batch returns a batch by ID.
func (s *Server) Batch(id string) (*batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// Statuses lists every batch in admission order.
func (s *Server) Statuses() []BatchStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]BatchStatus, 0, len(ids))
	for _, id := range ids {
		if b, ok := s.Batch(id); ok {
			out = append(out, b.status())
		}
	}
	return out
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// activeBatches counts non-terminal batches.
func (s *Server) activeBatches() int {
	n := 0
	for _, st := range s.Statuses() {
		if !st.State.Terminal() {
			n++
		}
	}
	return n
}

// Drain shuts the server down cleanly: admission stops (503), queued jobs
// are discarded (their manifests resume them next start), and running
// jobs get DrainGrace to finish before their contexts are cancelled.
// Blocks until every worker has exited.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.workersWG.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()
	discarded := s.sched.Depth()
	s.sched.Close()
	s.logf("service: draining: %d queued jobs discarded (resumable), waiting for running jobs", discarded)
	done := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(done)
	}()
	grace := s.cfg.DrainGrace
	if grace <= 0 {
		grace = DefaultDrainGrace
	}
	select {
	case <-done:
	case <-time.After(grace):
		s.logf("service: drain grace %v expired; cancelling running jobs", grace)
		s.rootCancel()
		<-done
	}
	s.rootCancel()
	s.logf("service: drained")
}
