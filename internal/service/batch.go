package service

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"starvation/internal/runner"
)

// BatchState is the lifecycle of a batch.
type BatchState string

const (
	// StateQueued: admitted, no job has started.
	StateQueued BatchState = "queued"
	// StateRunning: at least one job has started.
	StateRunning BatchState = "running"
	// StateDone: every job completed successfully.
	StateDone BatchState = "done"
	// StateFailed: every job terminal, at least one failed.
	StateFailed BatchState = "failed"
	// StateCancelled: cancelled by the client (or found mid-flight at
	// startup and re-queued — see resume).
	StateCancelled BatchState = "cancelled"
)

// Terminal reports whether the state is final.
func (s BatchState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// batchRecord is the on-disk form of an admitted batch — enough to
// re-enqueue it after a daemon restart. It persists before the batch is
// scheduled, so a crash can lose at most a batch the client never got a
// 202 for.
type batchRecord struct {
	Schema  int        `json:"schema"`
	ID      string     `json:"id"`
	Client  string     `json:"client"`
	Weight  int        `json:"weight"`
	Name    string     `json:"name,omitempty"`
	Chaos   string     `json:"chaos,omitempty"`
	Jobs    []batchJob `json:"jobs"`
	Created time.Time  `json:"created"`
}

// batch is the in-memory runtime state of one admitted batch.
type batch struct {
	rec batchRecord
	dir string

	manifest *runner.Manifest
	hub      *Hub
	ctx      context.Context
	cancel   context.CancelFunc

	mu        sync.Mutex
	state     BatchState
	done      int // terminal jobs (success + cached + failed + cancelled)
	succeeded int // done + cached
	cached    int
	failed    int
	running   int
	finished  time.Time
}

// BatchStatus is the JSON shape of GET /batches/{id}.
type BatchStatus struct {
	ID      string     `json:"id"`
	Client  string     `json:"client"`
	Weight  int        `json:"weight"`
	Name    string     `json:"name,omitempty"`
	Chaos   string     `json:"chaos,omitempty"`
	State   BatchState `json:"state"`
	Jobs    int        `json:"jobs"`
	Done    int        `json:"done"`
	Cached  int        `json:"cached"`
	Failed  int        `json:"failed"`
	Running int        `json:"running"`
	Queued  int        `json:"queued"`
	Created time.Time  `json:"created"`
	// Finished is zero until the batch reaches a terminal state.
	Finished *time.Time `json:"finished,omitempty"`
}

func (b *batch) status() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatchStatus{
		ID: b.rec.ID, Client: b.rec.Client, Weight: b.rec.Weight,
		Name: b.rec.Name, Chaos: b.rec.Chaos, State: b.state,
		Jobs: len(b.rec.Jobs), Done: b.done, Cached: b.cached,
		Failed: b.failed, Running: b.running,
		Queued:  len(b.rec.Jobs) - b.done - b.running,
		Created: b.rec.Created,
	}
	if !b.finished.IsZero() {
		f := b.finished
		st.Finished = &f
	}
	return st
}

// artifactPath returns the job's artifact file inside the batch tree.
func (b *batch) artifactPath(job string) string {
	return filepath.Join(b.dir, "artifacts", job+".txt")
}

// batchDirName validates an ID for use as a path element (defense against
// traversal via crafted batch IDs in URLs).
func validBatchID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, r := range id {
		ok := (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-'
		if !ok {
			return false
		}
	}
	return true
}

// saveRecord persists the batch record with write-then-rename.
func saveRecord(dir string, rec batchRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".batch.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, "batch.json"))
}

// loadRecord reads a persisted batch record.
func loadRecord(dir string) (batchRecord, error) {
	var rec batchRecord
	data, err := os.ReadFile(filepath.Join(dir, "batch.json"))
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("decoding %s: %w", filepath.Join(dir, "batch.json"), err)
	}
	if rec.Schema != runner.SchemaVersion {
		return rec, fmt.Errorf("batch %s: schema %d, want %d", rec.ID, rec.Schema, runner.SchemaVersion)
	}
	return rec, nil
}
