// Package service turns the runner into a long-running experiment server:
// an HTTP API accepting batches of population experiments, a multi-tenant
// deficit-round-robin scheduler feeding a shared worker pool, bounded
// queueing with backpressure, live event streaming, and persistence
// through the content-addressed cache and manifest layer so a restarted
// daemon resumes in-flight batches without re-simulating finished jobs.
//
// The package applies the paper's subject — starvation under contention —
// to its own infrastructure: a 10,000-job parameter sweep and a 5-job
// probe share the daemon, and the scheduler's explicit fairness guarantee
// is that the sweep cannot starve the probe.
package service

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Enqueue when admitting the batch would push
// the scheduler past its depth bound; the HTTP layer translates it to
// 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("service: queue full")

// ErrClosed is returned by Enqueue after Close — the daemon is draining.
var ErrClosed = errors.New("service: scheduler closed")

// Item is one schedulable unit: a single job of some batch. The scheduler
// never looks inside Payload; fairness is accounted in whole jobs.
type Item struct {
	Client  string
	BatchID string
	Payload any
}

// clientQueue is one tenant's FIFO of pending items plus its
// deficit-round-robin state.
type clientQueue struct {
	name    string
	weight  int
	deficit int
	items   []Item
	// inRing tracks membership in the active ring explicitly: Cancel can
	// empty a queue that is still ringed (pruned lazily by Next), and a
	// re-enqueue before the prune must not add a second entry — that would
	// double the client's share.
	inRing bool
}

// Scheduler is a deficit-round-robin queue over per-client FIFOs. Each
// round a client's deficit grows by its weight and it may dispatch that
// many jobs before the cursor moves on, so relative throughput follows
// weights while a small batch from an idle client starts within one round
// of the heaviest competitor — the anti-starvation bound the service
// tests pin (a lightweight client waits at most one job slice per
// competing client, never the length of their backlogs).
//
// All methods are safe for concurrent use; Next blocks until an item is
// available or the scheduler closes.
type Scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	clients  map[string]*clientQueue
	active   []string // round-robin ring of clients with pending items
	cursor   int      // index into active of the client currently spending deficit
	depth    int
	maxDepth int
	closed   bool
}

// NewScheduler returns a scheduler bounded at maxDepth queued jobs
// (0 selects DefaultQueueDepth).
func NewScheduler(maxDepth int) *Scheduler {
	if maxDepth <= 0 {
		maxDepth = DefaultQueueDepth
	}
	s := &Scheduler{clients: map[string]*clientQueue{}, maxDepth: maxDepth}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// DefaultQueueDepth bounds queued jobs when the daemon doesn't configure
// a limit.
const DefaultQueueDepth = 4096

// Enqueue admits a batch's items under the client's weight, all or
// nothing: a batch that doesn't fit is rejected whole (partial admission
// would leave a batch that can never complete). Weight < 1 is treated
// as 1.
func (s *Scheduler) Enqueue(client string, weight int, items []Item) error {
	if weight < 1 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.depth+len(items) > s.maxDepth {
		return ErrQueueFull
	}
	q := s.clients[client]
	if q == nil {
		q = &clientQueue{name: client}
		s.clients[client] = q
	}
	q.weight = weight // the latest batch's weight wins for the tenant
	q.items = append(q.items, items...)
	s.depth += len(items)
	if !q.inRing && len(q.items) > 0 {
		// Joining clients enter the ring *behind* the cursor so they wait
		// at most one full round, and the current client's slice is not cut
		// short mid-deficit.
		s.active = append(s.active, client)
		q.inRing = true
	}
	s.cond.Broadcast()
	return nil
}

// Next blocks until an item is available and returns it, or returns
// ok=false once the scheduler has been closed. Closing discards queued
// items (the manifest layer re-runs them after a restart); Next never
// hands out work during a drain.
func (s *Scheduler) Next() (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return Item{}, false
		}
		if s.depth > 0 {
			break
		}
		s.cond.Wait()
	}
	// Walk the ring from the cursor; every client with pending work is in
	// it, so the loop terminates within one lap plus one refill.
	for {
		if s.cursor >= len(s.active) {
			s.cursor = 0
		}
		q := s.clients[s.active[s.cursor]]
		if len(q.items) == 0 {
			// Drained mid-round (cancellation): drop from the ring.
			q.deficit = 0
			q.inRing = false
			s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
			continue
		}
		if q.deficit <= 0 {
			q.deficit += q.weight
		}
		it := q.items[0]
		q.items = q.items[1:]
		q.deficit--
		s.depth--
		if len(q.items) == 0 {
			// An emptied queue leaves the ring; its deficit does not bank
			// across idle periods (banked deficit would let a returning
			// heavy client burst past everyone).
			q.deficit = 0
			q.inRing = false
			s.active = append(s.active[:s.cursor], s.active[s.cursor+1:]...)
		} else if q.deficit <= 0 {
			s.cursor++
		}
		return it, true
	}
}

// Cancel removes every queued item of the batch and returns how many were
// discarded. Items already handed to workers are unaffected (the server
// cancels those through the batch context).
func (s *Scheduler) Cancel(batchID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for _, q := range s.clients {
		kept := q.items[:0]
		for _, it := range q.items {
			if it.BatchID == batchID {
				removed++
				continue
			}
			kept = append(kept, it)
		}
		q.items = kept
	}
	s.depth -= removed
	// Emptied queues are pruned lazily by Next's ring walk.
	return removed
}

// Depth returns the total queued items.
func (s *Scheduler) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Close stops the scheduler: queued items are discarded and every blocked
// and future Next returns ok=false. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// QueueInfo describes one client's queue for /debug/queue.
type QueueInfo struct {
	Client  string `json:"client"`
	Weight  int    `json:"weight"`
	Deficit int    `json:"deficit"`
	Queued  int    `json:"queued"`
}

// Snapshot returns per-client queue state sorted by client name.
func (s *Scheduler) Snapshot() []QueueInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueueInfo, 0, len(s.clients))
	for _, q := range s.clients {
		if len(q.items) == 0 {
			continue
		}
		out = append(out, QueueInfo{Client: q.name, Weight: q.weight, Deficit: q.deficit, Queued: len(q.items)})
	}
	sortQueueInfo(out)
	return out
}

func sortQueueInfo(in []QueueInfo) {
	for i := 1; i < len(in); i++ {
		for j := i; j > 0 && in[j].Client < in[j-1].Client; j-- {
			in[j], in[j-1] = in[j-1], in[j]
		}
	}
}
