package service

import (
	"sync"
	"time"
)

// Event is one observable state transition of a batch, streamed to
// clients as JSONL or SSE. The sequence number is per batch and dense, so
// a client that reconnects can verify it replayed the full history.
type Event struct {
	Seq   int64  `json:"seq"`
	Batch string `json:"batch"`
	// Type: "queued", "start", "retry", "done", "cached", "failed",
	// "job-cancelled", "batch-done", "batch-failed", "batch-cancelled".
	Type string `json:"type"`
	Job  string `json:"job,omitempty"`
	// Done/Total count terminal jobs against the batch size.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Attempt is the 1-based attempt the event belongs to (start/retry/
	// done/failed).
	Attempt   int    `json:"attempt,omitempty"`
	ElapsedMs int64  `json:"elapsed_ms,omitempty"`
	Err       string `json:"err,omitempty"`
	// Time is the wall-clock emission time (RFC3339Nano).
	Time string `json:"time"`
}

// Hub is a per-batch replay-then-follow event log. Events append under a
// lock; subscribers read by index and park on a broadcast channel when
// caught up, so a slow consumer can never block the workers publishing —
// it just reads a longer backlog on its next wake-up.
type Hub struct {
	mu     sync.Mutex
	events []Event
	wake   chan struct{}
	closed bool
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{wake: make(chan struct{})} }

// Publish appends the event, stamping sequence and time.
func (h *Hub) Publish(ev Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	ev.Seq = int64(len(h.events))
	ev.Time = time.Now().UTC().Format(time.RFC3339Nano)
	h.events = append(h.events, ev)
	close(h.wake)
	h.wake = make(chan struct{})
	h.mu.Unlock()
}

// Next returns the events at index ≥ from. When the consumer is caught
// up it gets an empty slice plus a channel that closes on the next
// publish (or on Close); open=false means the hub closed and no further
// events will ever arrive — the stream is complete once the backlog is
// drained.
func (h *Hub) Next(from int) (evs []Event, wait <-chan struct{}, open bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if from < len(h.events) {
		return h.events[from:], nil, true
	}
	return nil, h.wake, !h.closed
}

// Close marks the stream complete and wakes every parked subscriber.
// Publish after Close is a no-op.
func (h *Hub) Close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.wake)
		h.wake = make(chan struct{})
	}
	h.mu.Unlock()
}

// Len returns the number of published events.
func (h *Hub) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}
