// Package network assembles the paper's topology (§3): per-flow senders
// feeding one shared FIFO bottleneck, followed by per-flow propagation
// delay and a per-flow bounded non-congestive delay element, then the
// receiver, whose ACKs return through an optional ACK-path delay element.
// It also runs the simulation and collects per-flow traces and statistics.
package network

import (
	"context"
	"fmt"
	"time"

	"starvation/internal/cca"
	"starvation/internal/endpoint"
	"starvation/internal/guard"
	"starvation/internal/netem"
	"starvation/internal/netem/faults"
	"starvation/internal/netem/jitter"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/sim"
	"starvation/internal/trace"
	"starvation/internal/units"
)

// FlowSpec describes one flow of a scenario.
type FlowSpec struct {
	// Name labels the flow in results (defaults to "flowN").
	Name string
	// Cohort labels the flow's population cohort (e.g. its CCA name in a
	// mixed-CCA experiment). Per-cohort aggregation in results and obs
	// snapshots groups flows by this label; empty means uncohorted.
	Cohort string
	// Path lists the link indices (into Config.Links) the flow traverses,
	// in order. Nil means every link in index order — the single
	// bottleneck, or the full parking-lot chain. A path may not visit a
	// link twice.
	Path []int
	// Alg is the flow's congestion control algorithm (required).
	Alg cca.Algorithm
	// Rm is the flow's minimum propagation RTT (required, > 0).
	Rm time.Duration
	// FwdJitter is the non-congestive delay policy on the data path
	// (defaults to jitter.None).
	FwdJitter jitter.Policy
	// AckJitter is the non-congestive delay policy on the ACK path.
	AckJitter jitter.Policy
	// Ack selects the receiver's acknowledgment policy.
	Ack endpoint.AckConfig
	// LossProb is the probability of independent random loss on the data
	// path (the §5.4 element).
	LossProb float64
	// Faults selects additional impairment elements on the data path
	// (bursty loss, reordering, duplication); nil leaves them out.
	Faults *faults.Spec
	// MSS is the segment size (defaults to endpoint.DefaultMSS).
	MSS int
	// StartAt delays the flow's first transmission.
	StartAt time.Duration
}

// Validate reports the first problem with the spec. New panics on these
// (programming errors in scenario code); NewChecked returns them.
func (spec FlowSpec) Validate() error {
	if spec.Alg == nil {
		return fmt.Errorf("has no CCA")
	}
	if spec.Rm <= 0 {
		return fmt.Errorf("has no Rm")
	}
	if spec.LossProb < 0 || spec.LossProb > 1 {
		return fmt.Errorf("loss probability %g outside [0, 1]", spec.LossProb)
	}
	if spec.MSS < 0 {
		return fmt.Errorf("negative MSS %d", spec.MSS)
	}
	if spec.StartAt < 0 {
		return fmt.Errorf("negative StartAt %v", spec.StartAt)
	}
	for _, j := range spec.Path {
		if j < 0 {
			return fmt.Errorf("negative path link index %d", j)
		}
	}
	if err := spec.Faults.Validate(); err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	return nil
}

// Config describes the shared bottleneck and run parameters.
type Config struct {
	// Links, when non-nil, describes a multi-link topology (parking-lot
	// chain, shared-uplink fan-in); flows pick their route with
	// FlowSpec.Path. When nil, the legacy single-bottleneck fields below
	// (Rate, BufferBytes, ECNThresholdBytes, Marker, RateSchedule) define
	// the one shared link, wired exactly as before the topology layer —
	// fixed-seed realizations are bit-identical. The two styles are
	// mutually exclusive.
	Links []LinkSpec
	// Bottleneck is the index of the link reported as "the" bottleneck:
	// Result.LinkRate, the queue-depth trace, and rate-sample events read
	// this link (e.g. the shared uplink of a fan-in). Must be 0 when Links
	// is nil.
	Bottleneck int

	// Rate is the bottleneck link rate C (required when Links is nil).
	Rate units.Rate
	// BufferBytes is the drop-tail buffer size; 0 means effectively
	// infinite (the ideal-path queue of Definition 1).
	BufferBytes int
	// ECNThresholdBytes enables ECN marking above this queue depth.
	ECNThresholdBytes int
	// Marker installs an AQM policy (overrides ECNThresholdBytes).
	Marker netem.Marker
	// RateSchedule varies the bottleneck rate over the run (piecewise
	// steps or on-off flaps); nil keeps Rate constant.
	RateSchedule *faults.RateSchedule
	// Guard enables the run-guard layer: periodic stall sweeps, an
	// optional wall-clock deadline, and end-of-run conservation and
	// counter checks, reported in Result.Guard. Nil disables the layer;
	// the conservation ledger in Result.Ledger is filled either way.
	Guard *guard.Options
	// Seed feeds all randomness in the run.
	Seed int64
	// Ctx, when non-nil, cancels the run: the event loop checks it at
	// run-tick granularity and halts promptly once it expires, so a
	// batch driver's deadline actually stops the simulation instead of
	// abandoning a goroutine that runs forever. Like Probe and Guard it
	// is observation-only — a run with a context is event-for-event
	// identical to one without until cancellation.
	Ctx context.Context
	// SampleEvery is the trace sampling interval (default 100 ms).
	SampleEvery time.Duration
	// Probe receives the packet-lifecycle event stream from every element
	// (bottleneck, loss gates, endpoints) plus periodic rate samples. Nil
	// (the default) disables event emission; the counters registry in
	// Result.Obs is populated either way.
	Probe obs.Probe
	// Telemetry enables the flight recorder: windowed per-flow series, the
	// online starvation-episode detector, run-phase spans, and the
	// self-telemetry sampler, reported in Result.Telemetry. Observation-
	// only, like Probe: it neither schedules events nor draws randomness,
	// so fixed-seed realizations are bit-identical with it on or off.
	Telemetry *TelemetryConfig
}

// Flow is the instantiated per-flow pipeline with its traces.
type Flow struct {
	Spec     FlowSpec
	ID       packet.FlowID
	Sender   *endpoint.Sender
	Receiver *endpoint.Receiver
	FwdBox   *netem.DelayBox
	AckBox   *netem.AckDelayBox

	RTTTrace  trace.Series // RTT seconds vs time
	RateTrace trace.Series // windowed throughput (bit/s) vs time
	CwndTrace trace.Series // cwnd bytes vs time

	gate             *netem.LossGate // random-loss element, nil unless LossProb > 0
	ge               *faults.GEGate
	reorder          *faults.Reorderer
	dup              *faults.Duplicator
	rateSamples      int64
	lastSampledAcked int64

	// path is the resolved link route (never nil after wiring).
	path []int
	// hopTransit counts packets currently between two links of the path
	// (departed one bottleneck, propagating toward the next) — a gauge for
	// the conservation ledger.
	hopTransit int64
}

// Network is a fully wired scenario ready to run.
type Network struct {
	Sim *sim.Simulator
	// Link is the reporting bottleneck (Links[Config.Bottleneck]); kept as
	// a field because single-bottleneck call sites address it directly.
	Link *netem.Link
	// Links are all bottlenecks of the topology in index order; a classic
	// single-bottleneck network has exactly one.
	Links []*netem.Link
	Flows []*Flow
	cfg   Config

	// linkSpecs are the resolved link descriptions (legacy fields fold
	// into a one-element slice). nextHop[j][flow] is the link a packet of
	// the flow enters after departing link j, -1 for the Rm/jitter stage.
	linkSpecs []LinkSpec
	nextHop   [][]int32
	// hopArriveFns[k] delivers a propagated packet into Links[k], bound
	// once so inter-link forwarding never allocates a closure per packet.
	hopArriveFns []func(packet.Packet)

	monitor   *guard.Monitor
	report    guard.Report
	telemetry *telemetryRecorder

	// sampleFn is the sample method bound once so the self-rescheduling
	// trace sampler never re-binds a method value.
	sampleFn func()

	QueueTrace trace.Series // reporting-bottleneck queue depth bytes vs time
	// LinkQueues holds one queue-depth trace per link, filled only for
	// multi-link topologies (a single bottleneck keeps just QueueTrace).
	LinkQueues []trace.Series
}

// Validate reports the first problem with the bottleneck configuration.
func (cfg Config) Validate() error {
	if cfg.SampleEvery < 0 {
		return fmt.Errorf("negative sample interval %v", cfg.SampleEvery)
	}
	if len(cfg.Links) > 0 {
		// Topology mode: the legacy single-bottleneck fields must stay
		// zero so a config cannot describe two contradictory networks.
		if cfg.Rate != 0 || cfg.BufferBytes != 0 || cfg.ECNThresholdBytes != 0 ||
			cfg.Marker != nil || cfg.RateSchedule != nil {
			return fmt.Errorf("Links is set: leave the legacy single-bottleneck fields (Rate, BufferBytes, ECNThresholdBytes, Marker, RateSchedule) zero and describe every link in Links")
		}
		if cfg.Bottleneck < 0 || cfg.Bottleneck >= len(cfg.Links) {
			return fmt.Errorf("bottleneck index %d out of range [0, %d)", cfg.Bottleneck, len(cfg.Links))
		}
		for i, ls := range cfg.Links {
			if err := ls.Validate(); err != nil {
				return fmt.Errorf("link %d: %w", i, err)
			}
		}
		return nil
	}
	if cfg.Bottleneck != 0 {
		return fmt.Errorf("bottleneck index %d without Links", cfg.Bottleneck)
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("bottleneck rate must be positive")
	}
	if cfg.BufferBytes < 0 {
		return fmt.Errorf("negative buffer %d bytes", cfg.BufferBytes)
	}
	if cfg.ECNThresholdBytes < 0 {
		return fmt.Errorf("negative ECN threshold %d bytes", cfg.ECNThresholdBytes)
	}
	if err := cfg.RateSchedule.Validate(); err != nil {
		return fmt.Errorf("rate schedule: %w", err)
	}
	return nil
}

// NewChecked assembles the topology, returning an error for invalid
// configuration instead of panicking — the entry point for user-supplied
// (CLI) configs, where a typo is a runtime condition, not a bug.
func NewChecked(cfg Config, specs ...FlowSpec) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	nLinks := len(cfg.linksOf())
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("network: flow %d %w", i, err)
		}
		if err := validatePath(spec.Path, nLinks); err != nil {
			return nil, fmt.Errorf("network: flow %d: %w", i, err)
		}
	}
	return newNetwork(cfg, specs...), nil
}

// New assembles the topology. It panics on invalid specs (missing CCA or
// Rm): these are programming errors in scenario definitions, not runtime
// conditions. CLI paths should use NewChecked.
func New(cfg Config, specs ...FlowSpec) *Network {
	n, err := NewChecked(cfg, specs...)
	if err != nil {
		panic(err.Error())
	}
	return n
}

func newNetwork(cfg Config, specs ...FlowSpec) *Network {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
	s := sim.New(cfg.Seed)
	if cfg.Ctx != nil {
		s.SetContext(cfg.Ctx)
	}
	n := &Network{Sim: s, cfg: cfg}
	n.sampleFn = n.sample
	if cfg.Guard != nil {
		// The monitor taps the probe stream; read-only, so guarded and
		// unguarded runs of the same seed stay bit-identical.
		n.monitor = guard.NewMonitor()
		cfg.Probe = obs.Multi(cfg.Probe, n.monitor)
		n.cfg.Probe = cfg.Probe
	}
	// Flow names must be resolved before the recorder labels its flows and
	// before any element captures the probe chain.
	for i := range specs {
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("flow%d", i)
		}
	}
	if cfg.Telemetry != nil {
		// The recorder folds raw events; its derived events (phases,
		// episode boundaries) go to the pre-existing chain, so an attached
		// JSONL trace carries them inline. Fair share reads the configured
		// reporting-bottleneck rate — the same denominator the population
		// statistics use.
		var fair float64
		if r := cfg.linksOf()[cfg.Bottleneck].Rate; r > 0 && len(specs) > 0 {
			fair = float64(r) / float64(len(specs))
		}
		n.telemetry = newTelemetryRecorder(cfg.Telemetry, cfg.SampleEvery, fair, cfg.Probe, specs)
		cfg.Probe = obs.Multi(cfg.Probe, n.telemetry)
		n.cfg.Probe = cfg.Probe
	}

	// Each link dispatches departing packets to the owning flow's next
	// stage: the next link of its path (after the hop propagation delay)
	// or, past the last link, the flow's Rm/jitter stage.
	n.linkSpecs = cfg.linksOf()
	n.Links = make([]*netem.Link, len(n.linkSpecs))
	n.hopArriveFns = make([]func(packet.Packet), len(n.linkSpecs))
	n.nextHop = make([][]int32, len(n.linkSpecs))
	for j := range n.linkSpecs {
		ls := &n.linkSpecs[j]
		if ls.Name == "" {
			ls.Name = fmt.Sprintf("link%d", j)
		}
		j := j
		link := netem.NewLink(s, ls.Rate, ls.BufferBytes, func(p packet.Packet) {
			n.forward(j, p)
		})
		if ls.ECNThresholdBytes > 0 {
			link.SetECNThreshold(ls.ECNThresholdBytes)
		}
		if ls.Marker != nil {
			link.SetMarker(ls.Marker)
		}
		link.SetProbe(cfg.Probe)
		n.Links[j] = link
		n.hopArriveFns[j] = func(p packet.Packet) {
			n.Flows[p.Flow].hopTransit--
			link.Enqueue(p)
		}
		n.nextHop[j] = make([]int32, len(specs))
	}
	n.Link = n.Links[cfg.Bottleneck]
	for j := range n.linkSpecs {
		if sched := n.linkSpecs[j].RateSchedule; sched != nil {
			sched.Apply(s, n.Links[j])
		}
	}
	if len(n.Links) > 1 {
		n.LinkQueues = make([]trace.Series, len(n.Links))
		for j := range n.LinkQueues {
			n.LinkQueues[j].Name = n.linkSpecs[j].Name + "_queue_bytes"
		}
	}

	for i, spec := range specs {
		if spec.Name == "" {
			spec.Name = fmt.Sprintf("flow%d", i)
		}
		if spec.MSS <= 0 {
			spec.MSS = endpoint.DefaultMSS
		}
		if spec.FwdJitter == nil {
			spec.FwdJitter = jitter.None{}
		}
		if spec.AckJitter == nil {
			spec.AckJitter = jitter.None{}
		}
		f := &Flow{Spec: spec, ID: packet.FlowID(i), path: pathOf(spec, len(n.Links))}
		for pos, j := range f.path {
			next := int32(-1)
			if pos+1 < len(f.path) {
				next = int32(f.path[pos+1])
			}
			n.nextHop[j][i] = next
		}
		f.RTTTrace.Name = spec.Name + "_rtt_s"
		f.RateTrace.Name = spec.Name + "_rate_bps"
		f.CwndTrace.Name = spec.Name + "_cwnd_bytes"

		// Reverse path: ack jitter box -> sender.
		f.AckBox = netem.NewAckDelayBox(s, spec.AckJitter, func(a packet.Ack) {
			f.Sender.OnAck(a)
		})
		// Receiver feeds the ack box.
		f.Receiver = endpoint.NewReceiver(s, f.ID, spec.Ack, f.AckBox.Send)
		f.Receiver.Probe = cfg.Probe
		// Forward path tail: jitter box -> receiver.
		f.FwdBox = netem.NewDelayBox(s, spec.FwdJitter, f.Receiver.OnPacket)

		// Forward path head, built back to front so packets traverse
		// sender -> duplicator -> reorderer -> GE gate -> loss gate ->
		// first link of the flow's path.
		var intoLink netem.PacketHandler = n.Links[f.path[0]].Enqueue
		if spec.LossProb > 0 {
			// Each gate gets an independent generator derived from the
			// run seed so adding flows never perturbs other flows' loss.
			gateRng := newDerivedRand(cfg.Seed, i)
			gate := netem.NewLossGate(spec.LossProb, gateRng, intoLink)
			gate.SetProbe(s, cfg.Probe)
			f.gate = gate
			intoLink = gate.Send
		}
		if fs := spec.Faults; fs != nil {
			// Each element draws from its own salted generator so enabling
			// one never perturbs another's realization.
			if fs.GE != nil {
				ge := faults.NewGEGate(*fs.GE, newDerivedRandSalt(cfg.Seed, i, saltGE), intoLink)
				ge.SetProbe(s, cfg.Probe)
				f.ge = ge
				intoLink = ge.Send
			}
			if fs.Reorder != nil {
				ro := faults.NewReorderer(*fs.Reorder, newDerivedRandSalt(cfg.Seed, i, saltReorder), s, intoLink)
				ro.SetProbe(cfg.Probe)
				f.reorder = ro
				intoLink = ro.Send
			}
			if fs.Duplicate != nil {
				du := faults.NewDuplicator(*fs.Duplicate, newDerivedRandSalt(cfg.Seed, i, saltDup), intoLink)
				du.SetProbe(s, cfg.Probe)
				f.dup = du
				intoLink = du.Send
			}
		}
		f.Sender = endpoint.NewSender(s, f.ID, spec.Alg, spec.MSS, intoLink)
		f.Sender.Probe = cfg.Probe
		f.Sender.AckTraceHook = func(now, rtt time.Duration, acked int) {
			if rtt > 0 {
				f.RTTTrace.Add(now, rtt.Seconds())
			}
		}
		if n.monitor != nil {
			n.monitor.Track(f.ID, cfg.Guard.StallAfter(spec.Rm), spec.StartAt)
		}
		n.Flows = append(n.Flows, f)
	}
	return n
}

// forward routes a packet departing link j: into the next link of the
// flow's path (after the hop propagation delay), or — past the last link —
// into the flow's Rm/jitter stage. On the classic single-bottleneck path
// this reduces to afterLink with no extra events scheduled, so legacy
// realizations are unchanged.
func (n *Network) forward(j int, p packet.Packet) {
	next := n.nextHop[j][p.Flow]
	if next < 0 {
		n.Flows[p.Flow].afterLink(p)
		return
	}
	p.Hop++
	if d := n.linkSpecs[j].HopDelay; d > 0 {
		n.Flows[p.Flow].hopTransit++
		n.Sim.AfterPacket(d, n.hopArriveFns[next], p)
		return
	}
	n.Links[next].Enqueue(p)
}

// afterLink routes a packet leaving the bottleneck through the flow's
// propagation delay and jitter box.
func (f *Flow) afterLink(p packet.Packet) {
	// Propagation then jitter; order is immaterial for delays, and doing
	// propagation inline avoids an extra element allocation per flow.
	f.FwdBox.SendAfter(p, f.Spec.Rm)
}

// Run executes the scenario for the given duration and returns results.
// The steady-state window for per-flow statistics is the second half of the
// run; use RunWindow to control it.
func (n *Network) Run(d time.Duration) *Result {
	return n.RunWindow(d, d/2, d)
}

// RunWindow executes the scenario for duration d, computing steady-state
// statistics over [from, to).
func (n *Network) RunWindow(d, from, to time.Duration) *Result {
	// The sampled series sizes are known exactly from the horizon and the
	// sampling interval: reserve them up front so the run itself never
	// regrows a trace buffer. (The RTT trace is ACK-paced and unknowable
	// here; it keeps amortized appends.)
	samples := int(d/n.cfg.SampleEvery) + 2
	if n.telemetry != nil {
		n.telemetry.begin(d, from, to)
	}
	n.QueueTrace.Reserve(samples)
	for j := range n.LinkQueues {
		n.LinkQueues[j].Reserve(samples)
	}
	for _, f := range n.Flows {
		f.RateTrace.Reserve(samples)
		f.CwndTrace.Reserve(samples)
	}
	for _, f := range n.Flows {
		fl := f
		n.Sim.At(fl.Spec.StartAt, fl.Sender.Start)
	}
	if n.monitor != nil {
		// Progress sweeps on virtual time. The sweep closure reads monitor
		// state only — it schedules nothing beyond its own recurrence and
		// draws no randomness, so relative ordering of network events (and
		// thus the realization) is unchanged.
		every := n.cfg.Guard.CheckInterval()
		var sweep func()
		sweep = func() {
			n.report.Violations = append(n.report.Violations, n.monitor.Sweep(n.Sim.Now())...)
			n.Sim.After(every, sweep)
		}
		n.Sim.After(every, sweep)
		if wall := n.cfg.Guard.WallClock; wall > 0 {
			// Wall-clock deadline on event count, so even a livelocked run
			// (virtual clock stuck) reaches the check.
			start := time.Now()
			n.Sim.Watchdog(4096, func() bool {
				if time.Since(start) <= wall {
					return true
				}
				e := &guard.RunError{
					Kind: guard.KindDeadline,
					Msg:  fmt.Sprintf("run exceeded wall-clock budget %v at virtual time %v", wall, n.Sim.Now()),
					At:   n.Sim.Now(),
				}
				if ev, ok := n.monitor.LastEvent(); ok {
					e.LastEvent = fmt.Sprintf("%s flow=%d seq=%d at=%v", ev.Type, ev.Flow, ev.Seq, ev.At)
				}
				n.report.Err = e
				return false
			})
		}
	}
	n.sample() // also schedules itself
	n.Sim.Run(d)
	return n.collect(d, from, to)
}

func (n *Network) sample() {
	now := n.Sim.Now()
	depth := n.Link.QueuedBytes()
	n.QueueTrace.Add(now, float64(depth))
	for j := range n.LinkQueues {
		n.LinkQueues[j].Add(now, float64(n.Links[j].QueuedBytes()))
	}
	for _, f := range n.Flows {
		acked := f.Sender.DeliveredBytes
		delta := acked - f.lastSampledAcked
		f.lastSampledAcked = acked
		rate := units.RateFromBytes(int(delta), n.cfg.SampleEvery)
		f.RateTrace.Add(now, float64(rate))
		f.CwndTrace.Add(now, float64(f.Sender.Algorithm().Window()))
		if n.cfg.Probe != nil {
			f.rateSamples++
			n.cfg.Probe.Emit(obs.Event{Type: obs.EvRateSample, At: now,
				Flow: f.ID, Seq: int64(rate), Queue: depth})
		}
	}
	if n.telemetry != nil {
		// Phase markers and self-telemetry piggyback on this tick — the
		// one callback every run already schedules — so the recorder adds
		// zero events to the realization.
		n.telemetry.tick(now, n.Sim.Pending())
	}
	n.Sim.After(n.cfg.SampleEvery, n.sampleFn)
}

// Salts separate the random streams of a flow's impairment elements; the
// Bernoulli gate keeps the original 17 so pre-faults realizations are
// unchanged.
const (
	saltGate    = 17
	saltGE      = 29
	saltReorder = 31
	saltDup     = 37
)

func newDerivedRand(seed int64, flow int) *randSource {
	return newDerivedRandSalt(seed, flow, saltGate)
}

func newDerivedRandSalt(seed int64, flow int, salt int64) *randSource {
	return newRandSource(derivedSeed(seed, flow, salt))
}

// derivedSeed is the seed of a flow element's private random stream. A
// session reset reseeds the element's existing generator with this value,
// which is bit-equivalent to the fresh construction above.
func derivedSeed(seed int64, flow int, salt int64) int64 {
	return seed*1000003 + int64(flow)*7919 + salt
}
