package network

import (
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/units"
)

func TestVegasSingleFlowIdealPath(t *testing.T) {
	n := New(
		Config{Rate: units.Mbps(12), Seed: 1},
		FlowSpec{
			Name: "vegas",
			Alg:  vegas.New(vegas.Config{}),
			Rm:   100 * time.Millisecond,
		},
	)
	res := n.Run(30 * time.Second)
	t.Logf("\n%s", res)

	util := res.Utilization()
	if util < 0.9 {
		t.Errorf("utilization = %.3f, want >= 0.9", util)
	}
	// Equilibrium RTT should be Rm + (queued pkts)/C with ~4 packets
	// queued: 100ms + 4*1500*8/12e6 = 104 ms.
	f := res.Flows[0].Stat
	if f.SteadyRTTLo < 100*time.Millisecond || f.SteadyRTTHi > 112*time.Millisecond {
		t.Errorf("steady RTT [%v, %v], want within [100ms, 112ms]", f.SteadyRTTLo, f.SteadyRTTHi)
	}
	if f.LossEvents != 0 {
		t.Errorf("loss events = %d on an ideal path, want 0", f.LossEvents)
	}
}
