package network

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"starvation/internal/cca/bbr"
	"starvation/internal/cca/vegas"
	"starvation/internal/endpoint"
	"starvation/internal/netem/faults"
	"starvation/internal/netem/jitter"
	"starvation/internal/trace"
	"starvation/internal/units"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden parity hashes from the current engine")

// goldenScenarios are fixed-seed runs that exercise every scheduling path
// the event loop serves: link departures, propagation, data/ACK jitter
// boxes, sender pacing/tick/RTO timers, receiver delayed-ACK and
// aggregation flushes, and the reorderer's deferred release. Their hashed
// output pins the realization bit-for-bit, so any engine change that
// perturbs event order — however subtly — fails here before it can
// silently invalidate cached runner artifacts or the figures tree.
// The scenarios take an optional TelemetryConfig so the telemetry parity
// test can run the identical realizations with the flight recorder on.
// goldenConfig is one golden scenario's raw material: builders return it
// fresh on every call (flow specs carry stateful CCA instances and jitter
// generators, so realizations can never share them), which lets the same
// scenario run through network.New and through a reused Session.
type goldenConfig struct {
	cfg   Config
	specs []FlowSpec
	d     time.Duration
}

func goldenConfigs(tc *TelemetryConfig) map[string]func() goldenConfig {
	return map[string]func() goldenConfig{
		"clean": func() goldenConfig {
			return goldenConfig{
				cfg: Config{Rate: units.Mbps(48), BufferBytes: 64 * 1500, Seed: 7, Telemetry: tc},
				specs: []FlowSpec{
					{
						Alg:       vegas.New(vegas.Config{}),
						Rm:        40 * time.Millisecond,
						FwdJitter: &jitter.Uniform{Max: 4 * time.Millisecond, Rng: rand.New(rand.NewSource(5))},
						Ack:       endpoint.AckConfig{DelayCount: 2},
					},
					{
						Alg:       bbr.New(bbr.Config{}),
						Rm:        80 * time.Millisecond,
						AckJitter: &jitter.Uniform{Max: 2 * time.Millisecond, Rng: rand.New(rand.NewSource(9))},
						StartAt:   500 * time.Millisecond,
					},
				},
				d: 5 * time.Second,
			}
		},
		"impaired": func() goldenConfig {
			return goldenConfig{
				cfg: Config{Rate: units.Mbps(24), BufferBytes: 48 * 1500, Seed: 11, Telemetry: tc},
				specs: []FlowSpec{
					{
						Alg:      vegas.New(vegas.Config{}),
						Rm:       30 * time.Millisecond,
						LossProb: 0.01,
					},
					{
						Alg: vegas.New(vegas.Config{}),
						Rm:  60 * time.Millisecond,
						Ack: endpoint.AckConfig{AggregatePeriod: 5 * time.Millisecond},
						Faults: &faults.Spec{
							GE:        &faults.GEConfig{PGoodToBad: 0.005, PBadToGood: 0.3, PDropBad: 0.5},
							Reorder:   &faults.ReorderConfig{P: 0.02, Delay: 3 * time.Millisecond},
							Duplicate: &faults.DupConfig{P: 0.01},
						},
					},
				},
				d: 5 * time.Second,
			}
		},
	}
}

func goldenScenarios(tc *TelemetryConfig) map[string]func() *Result {
	out := map[string]func() *Result{}
	for name, build := range goldenConfigs(tc) {
		build := build
		out[name] = func() *Result {
			gc := build()
			return New(gc.cfg, gc.specs...).Run(gc.d)
		}
	}
	return out
}

// hashResult folds every trace and the result table into one digest.
func hashResult(t *testing.T, res *Result) string {
	t.Helper()
	return hashResultQuiet(res)
}

// hashResultQuiet is hashResult without the testing.T, callable from
// worker goroutines (writes to a bytes.Buffer cannot fail).
func hashResultQuiet(res *Result) string {
	var buf bytes.Buffer
	series := []*trace.Series{res.QueueTrace}
	for i := range res.Flows {
		f := &res.Flows[i]
		series = append(series, f.RTT, f.Rate, f.Cwnd)
	}
	for _, s := range series {
		_ = s.WriteCSV(&buf)
	}
	buf.WriteString(res.String())
	fmt.Fprintf(&buf, "fired=%d scheduled=%d\n",
		res.Obs.Global.SimEventsFired, res.Obs.Global.SimEventsScheduled)
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestGoldenParity asserts that fixed-seed realizations are byte-identical
// to the hashes recorded in testdata/golden_parity.json (captured on the
// container/heap engine before the pooled event-queue rewrite). Regenerate
// with: go test ./internal/network -run TestGoldenParity -update
func TestGoldenParity(t *testing.T) {
	path := filepath.Join("testdata", "golden_parity.json")
	got := map[string]string{}
	for name, run := range goldenScenarios(nil) {
		got[name] = hashResult(t, run())
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	for name, h := range got {
		if w, ok := want[name]; !ok {
			t.Errorf("%s: no golden hash recorded (run -update)", name)
		} else if h != w {
			t.Errorf("%s: realization diverged from golden engine: got %s want %s", name, h, w)
		}
	}
}

// TestGoldenParityTelemetry pins the flight recorder's observation-only
// contract in the strongest form: with per-flow telemetry and episode
// detection enabled, every golden realization must hash identically to
// the recorder-off goldens — same traces, same result table, same sim
// event counts. The Telemetry block itself is stripped before hashing
// (it only exists in the instrumented run); everything else must match
// bit for bit.
func TestGoldenParityTelemetry(t *testing.T) {
	plain := map[string]string{}
	for name, run := range goldenScenarios(nil) {
		plain[name] = hashResult(t, run())
	}
	for name, run := range goldenScenarios(&TelemetryConfig{}) {
		res := run()
		if res.Telemetry == nil {
			t.Fatalf("%s: telemetry enabled but Result.Telemetry is nil", name)
		}
		res.Telemetry = nil
		if h := hashResult(t, res); h != plain[name] {
			t.Errorf("%s: telemetry perturbed the realization: got %s want %s",
				name, h, plain[name])
		}
	}
}
