package network

import (
	"strings"
	"testing"
	"time"

	"starvation/internal/metrics"
	"starvation/internal/units"
)

// syntheticResult builds a Result with n flows, enough populated for
// String()'s population rendering (throughputs, cohorts, one link).
func syntheticResult(n int) *Result {
	r := &Result{
		Duration: 10 * time.Second,
		WindowTo: 10 * time.Second,
		LinkRate: units.Mbps(float64(n)), // fair share = 1 Mbit/s
		Links:    []LinkResult{{Name: "link", Rate: units.Mbps(float64(n))}},
	}
	for i := 0; i < n; i++ {
		r.Flows = append(r.Flows, FlowResult{
			Name:   "f",
			Cohort: "c",
			Stat:   metrics.FlowStat{SteadyThpt: units.Mbps(1)},
		})
	}
	return r
}

func TestStringRenderingThreshold(t *testing.T) {
	small := syntheticResult(CompactFlowThreshold)
	if s := small.String(); !strings.Contains(s, "rtt_min") || strings.Contains(s, "population n=") {
		t.Errorf("at the threshold String() should render per-flow rows:\n%s", s)
	}
	big := syntheticResult(CompactFlowThreshold + 1)
	if s := big.String(); !strings.Contains(s, "population n=13") || strings.Contains(s, "rtt_min") {
		t.Errorf("above the threshold String() should render population stats:\n%s", s)
	}
}

func TestStringHonorsEpsilon(t *testing.T) {
	r := syntheticResult(CompactFlowThreshold + 1)
	if s := r.String(); !strings.Contains(s, "eps=0.1") {
		t.Errorf("zero Epsilon should render the default threshold:\n%s", s)
	}
	r.Epsilon = 0.25
	if s := r.String(); !strings.Contains(s, "eps=0.25") {
		t.Errorf("Result.Epsilon should reach the population rendering:\n%s", s)
	}
}
