package network

import (
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/obs"
	"starvation/internal/units"
)

// BenchmarkNoopProbe bounds the cost of the observability layer on the
// BenchmarkEmulatedSecond workload (two Vegas flows, one emulated second):
//
//	disabled — Probe nil, the default for every existing scenario; any
//	           regression versus the seed's BenchmarkEmulatedSecond is
//	           pure instrumentation-plumbing overhead (budget: ≤ 5%).
//	noop     — an enabled probe that discards events: the dispatch cost
//	           of the event stream itself.
//	registry — events folded into the counters registry, the cheapest
//	           useful consumer.
func BenchmarkNoopProbe(b *testing.B) {
	run := func(b *testing.B, probe obs.Probe) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := New(
				Config{Rate: units.Mbps(100), Seed: 1, Probe: probe},
				FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
				FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
			)
			res := n.Run(time.Second)
			b.ReportMetric(float64(res.Delivered), "pkts/simsec")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("noop", func(b *testing.B) { run(b, obs.Nop{}) })
	b.Run("registry", func(b *testing.B) { run(b, obs.NewRegistry()) })
}
