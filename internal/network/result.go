package network

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"starvation/internal/guard"
	"starvation/internal/metrics"
	"starvation/internal/obs"
	"starvation/internal/trace"
	"starvation/internal/units"
)

// randSource is a thin alias so network.go reads cleanly.
type randSource = rand.Rand

func newRandSource(seed int64) *randSource { return rand.New(rand.NewSource(seed)) }

// FaultCounters is the per-flow drop/impairment accounting, filled from
// element counters so it is visible without a probe attached.
type FaultCounters struct {
	// GatePassed/GateDropped are the Bernoulli loss gate's counters.
	GatePassed  int64
	GateDropped int64
	// GEPassed/GEDropped/GEBursts are the Gilbert–Elliott gate's counters
	// (GEBursts counts Good→Bad transitions, i.e. loss bursts started).
	GEPassed  int64
	GEDropped int64
	GEBursts  int64
	// Reordered counts packets deliberately deferred by a reorder element.
	Reordered int64
	// Duplicated counts extra copies injected by a duplicator.
	Duplicated int64
}

// FlowResult is the per-flow outcome of a run.
type FlowResult struct {
	Name string
	// Cohort is the flow's population label (empty when uncohorted).
	Cohort string
	Stat   metrics.FlowStat
	Faults FaultCounters
	RTT    *trace.Series
	Rate   *trace.Series
	Cwnd   *trace.Series
}

// LinkResult is the per-link outcome of a run: the resolved spec identity
// plus the link's own counters and (for multi-link topologies) its queue
// trace.
type LinkResult struct {
	Name      string
	Rate      units.Rate
	Dropped   int64
	Delivered int64
	MaxQueue  int
	// Queue is the link's sampled depth trace; nil on the classic
	// single-bottleneck path, where Result.QueueTrace already carries it.
	Queue *trace.Series
}

// Result is the outcome of a scenario run.
type Result struct {
	Duration   time.Duration
	WindowFrom time.Duration
	WindowTo   time.Duration
	Flows      []FlowResult
	// Links describes every bottleneck of the topology in index order (a
	// single-element slice on the classic path).
	Links      []LinkResult
	QueueTrace *trace.Series
	// LinkRate, Dropped, Delivered, and MaxQueue report the configured
	// bottleneck link (Config.Bottleneck) — except Dropped, which sums
	// drop-tail discards across every link of the topology.
	LinkRate  units.Rate
	Dropped   int64
	Delivered int64
	MaxQueue  int
	// Obs is the end-of-run registry snapshot: per-flow and global
	// packet-lifecycle counters plus event-loop gauges. It is assembled
	// from element counters on every run, probe installed or not.
	Obs obs.Snapshot
	// Ledger is the packet-conservation ledger assembled from element
	// counters on every run. Ledger.Check() == nil means every transmitted
	// packet is accounted for (delivered, dropped, or in flight).
	Ledger guard.Ledger
	// Guard is the run-guard report, non-nil only when Config.Guard was
	// set: progress-sweep violations, end-of-run conservation and counter
	// checks, and the deadline error if the run was cut short.
	Guard *guard.Report
	// Epsilon is the starvation threshold String() passes to Population()
	// when rendering large runs (<= 0 selects the metrics default). Set
	// by core.RunPopulation so a -eps override survives into the report.
	Epsilon float64
	// Telemetry is the flight recorder's output — windowed per-flow
	// series, starvation episodes, run phases, self-telemetry — non-nil
	// only when Config.Telemetry was set.
	Telemetry *TelemetryResult
}

func (n *Network) collect(d, from, to time.Duration) *Result {
	res := &Result{
		Duration:   d,
		WindowFrom: from,
		WindowTo:   to,
		Flows:      make([]FlowResult, 0, len(n.Flows)),
		QueueTrace: &n.QueueTrace,
		LinkRate:   n.linkSpecs[n.cfg.Bottleneck].Rate,
		Delivered:  n.Link.Delivered,
		MaxQueue:   n.Link.MaxQueue,
	}
	for j, link := range n.Links {
		lr := LinkResult{
			Name:      n.linkSpecs[j].Name,
			Rate:      n.linkSpecs[j].Rate,
			Dropped:   link.Dropped,
			Delivered: link.Delivered,
			MaxQueue:  link.MaxQueue,
		}
		if n.LinkQueues != nil {
			lr.Queue = &n.LinkQueues[j]
		}
		res.Links = append(res.Links, lr)
		res.Dropped += link.Dropped
	}
	for _, f := range n.Flows {
		st := metrics.FlowStat{
			Name:       f.Spec.Name,
			AckedBytes: f.Sender.AckedBytes,
			SentBytes:  f.Sender.SentBytes,
			RetxBytes:  f.Sender.RetxBytes,
			LossEvents: f.Sender.LossEvents,
			Timeouts:   f.Sender.Timeouts,
			Throughput: f.Sender.Throughput(d),
		}
		if lo, hi, ok := f.RTTTrace.MinMax(0, d); ok {
			st.MinRTT = secToDur(lo)
			st.MaxRTT = secToDur(hi)
		}
		if m, ok := f.RTTTrace.Mean(0, d); ok {
			st.MeanRTT = secToDur(m)
		}
		if lo, hi, ok := f.RTTTrace.MinMax(from, to); ok {
			st.SteadyRTTLo = secToDur(lo)
			st.SteadyRTTHi = secToDur(hi)
		}
		st.SteadyThpt = windowThroughput(&f.RateTrace, from, to)
		fr := FlowResult{
			Name:   f.Spec.Name,
			Cohort: f.Spec.Cohort,
			Stat:   st,
			RTT:    &f.RTTTrace,
			Rate:   &f.RateTrace,
			Cwnd:   &f.CwndTrace,
		}
		if f.gate != nil {
			fr.Faults.GatePassed = f.gate.Passed
			fr.Faults.GateDropped = f.gate.Dropped
		}
		if f.ge != nil {
			fr.Faults.GEPassed = f.ge.Passed
			fr.Faults.GEDropped = f.ge.Dropped
			fr.Faults.GEBursts = f.ge.BadEntries
		}
		if f.reorder != nil {
			fr.Faults.Reordered = f.reorder.Deferred
		}
		if f.dup != nil {
			fr.Faults.Duplicated = f.dup.Duplicated
		}
		res.Flows = append(res.Flows, fr)
	}
	res.Obs = n.snapshot()
	res.Ledger = n.ledger()
	if n.telemetry != nil {
		res.Telemetry = n.telemetry.finish(d, n.Flows)
	}
	if n.cfg.Guard != nil {
		// Fold the end-of-run checks into the report: a final progress
		// sweep, the event-derived counter inequalities, and the
		// conservation ledger.
		now := n.Sim.Now()
		n.report.Violations = append(n.report.Violations, n.monitor.Sweep(now)...)
		n.report.Violations = append(n.report.Violations, n.monitor.CheckCounters(now)...)
		if err := res.Ledger.Check(); err != nil {
			n.report.Violations = append(n.report.Violations, guard.Violation{
				Kind: "conservation", Flow: -1, At: now, Msg: err.Error(),
			})
		}
		rep := n.report
		res.Guard = &rep
	}
	return res
}

// ledger assembles the packet-conservation ledger from element counters.
// Every place a packet can legally rest at the horizon has a gauge:
// reorder boxes (HeldPreQueue), the bottleneck FIFO (HeldInQueue), and the
// propagation/jitter boxes (HeldPostQueue).
func (n *Network) ledger() guard.Ledger {
	var lg guard.Ledger
	for _, f := range n.Flows {
		first := n.Links[f.path[0]].FlowStats(f.ID)
		last := n.Links[f.path[len(f.path)-1]].FlowStats(f.ID)
		fl := guard.FlowLedger{
			Name:           f.Spec.Name,
			Sent:           f.Sender.SentPackets,
			Enqueued:       first.Enqueued,
			DroppedAtQueue: first.Dropped,
			HeldInQueue:    f.hopTransit,
			Dequeued:       last.Delivered,
			HeldPostQueue:  f.FwdBox.InTransit(),
			Delivered:      f.Receiver.Received,
		}
		for pos, j := range f.path {
			ls := n.Links[j].FlowStats(f.ID)
			fl.HeldInQueue += ls.Holding
			if pos > 0 {
				fl.DroppedMidPath += ls.Dropped
			}
		}
		if f.gate != nil {
			fl.DroppedPreQueue += f.gate.Dropped
		}
		if f.ge != nil {
			fl.DroppedPreQueue += f.ge.Dropped
		}
		if f.reorder != nil {
			fl.HeldPreQueue = f.reorder.Held()
		}
		if f.dup != nil {
			fl.Duplicated = f.dup.Duplicated
		}
		lg.Flows = append(lg.Flows, fl)
	}
	return lg
}

// snapshot assembles the observability registry from element counters. It
// produces exactly the numbers an event-fed obs.Registry would: the
// round-trip tests reconcile the two, so keep the derivations in sync with
// the event emission points.
func (n *Network) snapshot() obs.Snapshot {
	var snap obs.Snapshot
	for _, f := range n.Flows {
		fc := snap.Flow(f.ID)
		*fc = obs.FlowCounters{
			Name:             f.Spec.Name,
			Cohort:           f.Spec.Cohort,
			PacketsSent:      f.Sender.SentPackets,
			PacketsDelivered: f.Receiver.Received,
			Retransmits:      f.Sender.RetxPackets,
			AcksReceived:     f.Sender.AcksReceived,
			BytesSent:        f.Sender.SentBytes,
			BytesAcked:       f.Sender.AckedBytes,
			BytesDelivered:   f.Receiver.DeliveredBytes(),
			CwndUpdates:      f.Sender.CwndUpdates,
			RateSamples:      f.rateSamples,
		}
		// Queue-level counters sum over every link of the flow's path
		// (exactly what an event-fed registry accumulates: one enqueue/
		// dequeue event per hop).
		for _, j := range f.path {
			ls := n.Links[j].FlowStats(f.ID)
			fc.PacketsEnqueued += ls.Enqueued
			fc.PacketsDropped += ls.Dropped
			fc.PacketsMarked += ls.Marked
			fc.BytesEnqueued += ls.EnqueuedBytes
			fc.PacketsDequeued += ls.Delivered
		}
		if f.gate != nil {
			fc.PacketsDropped += f.gate.Dropped
			fc.DroppedAtGate += f.gate.Dropped
		}
		if f.ge != nil {
			fc.PacketsDropped += f.ge.Dropped
			fc.DroppedAtGate += f.ge.Dropped
		}
		if f.reorder != nil {
			fc.PacketsReordered = f.reorder.Deferred
		}
		if f.dup != nil {
			fc.PacketsDuplicated = f.dup.Duplicated
		}
		g := &snap.Global
		g.PacketsDropped += fc.PacketsDropped
		g.PacketsDelivered += fc.PacketsDelivered
		g.AcksReceived += fc.AcksReceived
		g.PacketsDuplicated += fc.PacketsDuplicated
	}
	g := &snap.Global
	for _, link := range n.Links {
		g.PacketsEnqueued += link.EnqueuedPkts
		g.PacketsDequeued += link.Delivered
		g.PacketsMarked += link.Marked
		g.BytesEnqueued += link.EnqueuedBytes
		if q := int64(link.MaxQueue); q > g.MaxQueueBytes {
			g.MaxQueueBytes = q
		}
		g.LinkRateChanges += link.RateChanges
	}
	st := n.Sim.Stats()
	g.SimEventsScheduled = st.Scheduled
	g.SimEventsFired = st.Fired
	return snap
}

func windowThroughput(rate *trace.Series, from, to time.Duration) units.Rate {
	if m, ok := rate.Mean(from, to); ok {
		return units.Rate(m)
	}
	return 0
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Throughputs returns the steady-state throughputs of all flows in bit/s.
func (r *Result) Throughputs() []float64 {
	out := make([]float64, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = float64(f.Stat.SteadyThpt)
	}
	return out
}

// Cohorts returns the per-flow cohort labels, indexed like Flows.
func (r *Result) Cohorts() []string {
	out := make([]string, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = f.Cohort
	}
	return out
}

// Population computes the population starvation statistics of the run:
// starvation fraction under the ε-threshold (eps <= 0 selects
// metrics.DefaultStarvationEpsilon), the normalized throughput-ratio
// distribution, and the per-cohort breakdown.
func (r *Result) Population(eps float64) metrics.PopulationStats {
	return metrics.Population(r.Throughputs(), r.Cohorts(), float64(r.LinkRate), eps)
}

// Ratio returns the steady-state throughput ratio (fast over slow flow).
func (r *Result) Ratio() float64 { return metrics.Ratio(r.Throughputs()) }

// Jain returns Jain's fairness index over steady-state throughputs.
func (r *Result) Jain() float64 { return metrics.JainIndex(r.Throughputs()) }

// Utilization returns delivered fraction of capacity over the steady
// window.
func (r *Result) Utilization() float64 {
	var sum float64
	for _, x := range r.Throughputs() {
		sum += x
	}
	if r.LinkRate <= 0 {
		return 0
	}
	return sum / float64(r.LinkRate)
}

// CompactFlowThreshold is the flow count above which String switches from
// per-flow rows to the population/cohort summary: a 1000-flow run reports
// a handful of cohort rows and the starvation distribution instead of a
// thousand-line table.
const CompactFlowThreshold = 12

// String renders a compact result table: per-flow rows for small runs,
// the population summary for large ones.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link %v  run %v  window [%v, %v)  drops %d  maxqueue %dB\n",
		r.LinkRate, r.Duration, r.WindowFrom, r.WindowTo, r.Dropped, r.MaxQueue)
	if len(r.Links) > 1 {
		fmt.Fprintf(&b, "%-12s %14s %10s %12s %10s\n",
			"link", "rate", "drops", "delivered", "maxqueue")
		for _, l := range r.Links {
			fmt.Fprintf(&b, "%-12s %14s %10d %12d %9dB\n",
				l.Name, l.Rate, l.Dropped, l.Delivered, l.MaxQueue)
		}
	}
	if len(r.Flows) > CompactFlowThreshold {
		b.WriteString(r.Population(r.Epsilon).String())
		fmt.Fprintf(&b, "ratio %.2f  jain %.3f  utilization %.3f\n", r.Ratio(), r.Jain(), r.Utilization())
		if r.Telemetry != nil {
			b.WriteString(r.Telemetry.String())
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s %14s %14s %10s %10s %10s %8s\n",
		"flow", "thpt(steady)", "thpt(def2)", "rtt_min", "rtt_max", "rtt_mean", "losses")
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "%-12s %14s %14s %10s %10s %10s %8d\n",
			f.Name, f.Stat.SteadyThpt, f.Stat.Throughput,
			f.Stat.MinRTT.Round(time.Microsecond),
			f.Stat.MaxRTT.Round(time.Microsecond),
			f.Stat.MeanRTT.Round(time.Microsecond),
			f.Stat.LossEvents)
	}
	fmt.Fprintf(&b, "ratio %.2f  jain %.3f  utilization %.3f\n", r.Ratio(), r.Jain(), r.Utilization())
	if r.Telemetry != nil {
		b.WriteString(r.Telemetry.String())
	}
	return b.String()
}
