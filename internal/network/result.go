package network

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"starvation/internal/metrics"
	"starvation/internal/obs"
	"starvation/internal/trace"
	"starvation/internal/units"
)

// randSource is a thin alias so network.go reads cleanly.
type randSource = rand.Rand

func newRandSource(seed int64) *randSource { return rand.New(rand.NewSource(seed)) }

// FlowResult is the per-flow outcome of a run.
type FlowResult struct {
	Name string
	Stat metrics.FlowStat
	RTT  *trace.Series
	Rate *trace.Series
	Cwnd *trace.Series
}

// Result is the outcome of a scenario run.
type Result struct {
	Duration   time.Duration
	WindowFrom time.Duration
	WindowTo   time.Duration
	Flows      []FlowResult
	QueueTrace *trace.Series
	LinkRate   units.Rate
	Dropped    int64
	Delivered  int64
	MaxQueue   int
	// Obs is the end-of-run registry snapshot: per-flow and global
	// packet-lifecycle counters plus event-loop gauges. It is assembled
	// from element counters on every run, probe installed or not.
	Obs obs.Snapshot
}

func (n *Network) collect(d, from, to time.Duration) *Result {
	res := &Result{
		Duration:   d,
		WindowFrom: from,
		WindowTo:   to,
		QueueTrace: &n.QueueTrace,
		LinkRate:   n.cfg.Rate,
		Dropped:    n.Link.Dropped,
		Delivered:  n.Link.Delivered,
		MaxQueue:   n.Link.MaxQueue,
	}
	for _, f := range n.Flows {
		st := metrics.FlowStat{
			Name:       f.Spec.Name,
			AckedBytes: f.Sender.AckedBytes,
			SentBytes:  f.Sender.SentBytes,
			RetxBytes:  f.Sender.RetxBytes,
			LossEvents: f.Sender.LossEvents,
			Timeouts:   f.Sender.Timeouts,
			Throughput: f.Sender.Throughput(d),
		}
		if lo, hi, ok := f.RTTTrace.MinMax(0, d); ok {
			st.MinRTT = secToDur(lo)
			st.MaxRTT = secToDur(hi)
		}
		if m, ok := f.RTTTrace.Mean(0, d); ok {
			st.MeanRTT = secToDur(m)
		}
		if lo, hi, ok := f.RTTTrace.MinMax(from, to); ok {
			st.SteadyRTTLo = secToDur(lo)
			st.SteadyRTTHi = secToDur(hi)
		}
		st.SteadyThpt = windowThroughput(&f.RateTrace, from, to)
		res.Flows = append(res.Flows, FlowResult{
			Name: f.Spec.Name,
			Stat: st,
			RTT:  &f.RTTTrace,
			Rate: &f.RateTrace,
			Cwnd: &f.CwndTrace,
		})
	}
	res.Obs = n.snapshot()
	return res
}

// snapshot assembles the observability registry from element counters. It
// produces exactly the numbers an event-fed obs.Registry would: the
// round-trip tests reconcile the two, so keep the derivations in sync with
// the event emission points.
func (n *Network) snapshot() obs.Snapshot {
	var snap obs.Snapshot
	for _, f := range n.Flows {
		ls := n.Link.FlowStats(f.ID)
		fc := snap.Flow(f.ID)
		*fc = obs.FlowCounters{
			Name:             f.Spec.Name,
			PacketsSent:      f.Sender.SentPackets,
			PacketsEnqueued:  ls.Enqueued,
			PacketsDropped:   ls.Dropped,
			PacketsMarked:    ls.Marked,
			PacketsDelivered: f.Receiver.Received,
			Retransmits:      f.Sender.RetxPackets,
			AcksReceived:     f.Sender.AcksReceived,
			BytesSent:        f.Sender.SentBytes,
			BytesEnqueued:    ls.EnqueuedBytes,
			BytesAcked:       f.Sender.AckedBytes,
			BytesDelivered:   f.Receiver.DeliveredBytes(),
			CwndUpdates:      f.Sender.CwndUpdates,
			RateSamples:      f.rateSamples,
		}
		if f.gate != nil {
			fc.PacketsDropped += f.gate.Dropped
		}
		g := &snap.Global
		g.PacketsDropped += fc.PacketsDropped
		g.PacketsDelivered += fc.PacketsDelivered
		g.AcksReceived += fc.AcksReceived
	}
	g := &snap.Global
	g.PacketsEnqueued = n.Link.EnqueuedPkts
	g.PacketsDequeued = n.Link.Delivered
	g.PacketsMarked = n.Link.Marked
	g.BytesEnqueued = n.Link.EnqueuedBytes
	g.MaxQueueBytes = int64(n.Link.MaxQueue)
	st := n.Sim.Stats()
	g.SimEventsScheduled = st.Scheduled
	g.SimEventsFired = st.Fired
	return snap
}

func windowThroughput(rate *trace.Series, from, to time.Duration) units.Rate {
	if m, ok := rate.Mean(from, to); ok {
		return units.Rate(m)
	}
	return 0
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// Throughputs returns the steady-state throughputs of all flows in bit/s.
func (r *Result) Throughputs() []float64 {
	out := make([]float64, len(r.Flows))
	for i, f := range r.Flows {
		out[i] = float64(f.Stat.SteadyThpt)
	}
	return out
}

// Ratio returns the steady-state throughput ratio (fast over slow flow).
func (r *Result) Ratio() float64 { return metrics.Ratio(r.Throughputs()) }

// Jain returns Jain's fairness index over steady-state throughputs.
func (r *Result) Jain() float64 { return metrics.JainIndex(r.Throughputs()) }

// Utilization returns delivered fraction of capacity over the steady
// window.
func (r *Result) Utilization() float64 {
	var sum float64
	for _, x := range r.Throughputs() {
		sum += x
	}
	if r.LinkRate <= 0 {
		return 0
	}
	return sum / float64(r.LinkRate)
}

// String renders a compact result table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "link %v  run %v  window [%v, %v)  drops %d  maxqueue %dB\n",
		r.LinkRate, r.Duration, r.WindowFrom, r.WindowTo, r.Dropped, r.MaxQueue)
	fmt.Fprintf(&b, "%-12s %14s %14s %10s %10s %10s %8s\n",
		"flow", "thpt(steady)", "thpt(def2)", "rtt_min", "rtt_max", "rtt_mean", "losses")
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "%-12s %14s %14s %10s %10s %10s %8d\n",
			f.Name, f.Stat.SteadyThpt, f.Stat.Throughput,
			f.Stat.MinRTT.Round(time.Microsecond),
			f.Stat.MaxRTT.Round(time.Microsecond),
			f.Stat.MeanRTT.Round(time.Microsecond),
			f.Stat.LossEvents)
	}
	fmt.Fprintf(&b, "ratio %.2f  jain %.3f  utilization %.3f\n", r.Ratio(), r.Jain(), r.Utilization())
	return b.String()
}
