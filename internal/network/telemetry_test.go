package network

import (
	"bytes"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/metrics"
	"starvation/internal/obs"
	"starvation/internal/units"
)

// runWithTelemetry runs a two-flow scenario with the flight recorder on;
// starve cripples flow 1 with heavy random loss so the detector has an
// episode to find.
func runWithTelemetry(probe obs.Probe, starve bool) *Result {
	lossProb := 0.0
	if starve {
		lossProb = 0.6
	}
	n := New(
		Config{
			Rate:        units.Mbps(20),
			BufferBytes: 20 * 1500,
			Seed:        2,
			Probe:       probe,
			Telemetry:   &TelemetryConfig{},
		},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 20 * time.Millisecond},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 40 * time.Millisecond, LossProb: lossProb},
	)
	return n.Run(10 * time.Second)
}

func TestTelemetryResultPopulated(t *testing.T) {
	res := runWithTelemetry(nil, false)
	tr := res.Telemetry
	if tr == nil {
		t.Fatal("Result.Telemetry is nil with Telemetry configured")
	}
	if tr.Window != defaultSampleEvery(t) {
		t.Errorf("window = %v, want the trace-sampling interval", tr.Window)
	}
	if tr.Epsilon != metrics.DefaultStarvationEpsilon {
		t.Errorf("epsilon = %g, want population default", tr.Epsilon)
	}
	if want := float64(units.Mbps(20)) / 2; tr.FairShare != want {
		t.Errorf("fair share = %g, want %g", tr.FairShare, want)
	}

	// Phase spans: setup -> warmup -> measure, contiguous, measure opening
	// at the steady-window start (Run uses [d/2, d)).
	if len(tr.Phases) != 3 {
		t.Fatalf("phases = %+v, want 3 spans", tr.Phases)
	}
	for i, want := range []string{"setup", "warmup", "measure"} {
		if tr.Phases[i].Name != want {
			t.Errorf("phase %d = %q, want %q", i, tr.Phases[i].Name, want)
		}
	}
	for i := 1; i < len(tr.Phases); i++ {
		if tr.Phases[i].From != tr.Phases[i-1].To {
			t.Errorf("phase %d not contiguous: from %v, prev to %v",
				i, tr.Phases[i].From, tr.Phases[i-1].To)
		}
	}
	if m := tr.Phases[2]; m.From < 5*time.Second || m.From > 5*time.Second+tr.Window ||
		m.To != 10*time.Second {
		t.Errorf("measure span = [%v, %v), want [5s (+<=1 window), 10s)", m.From, m.To)
	}

	// Per-flow series: both flows healthy, windows closed over the run.
	if len(tr.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(tr.Flows))
	}
	for i := range tr.Flows {
		ft := &tr.Flows[i]
		if ft.WindowsClosed < 90 {
			t.Errorf("flow %d closed %d windows, want ~100", i, ft.WindowsClosed)
		}
		if ft.LastRateBps <= 0 {
			t.Errorf("flow %d last rate = %g, want > 0", i, ft.LastRateBps)
		}
		if ft.MinRTT <= 0 || ft.SRTT < ft.MinRTT {
			t.Errorf("flow %d rtt: min %v srtt %v", i, ft.MinRTT, ft.SRTT)
		}
		if ft.Episodes != 0 {
			t.Errorf("healthy flow %d has %d episodes", i, ft.Episodes)
		}
	}
	if tr.Flows[0].Name != "flow0" || tr.Flows[1].Name != "flow1" {
		t.Errorf("names = %q/%q, want normalized flow0/flow1",
			tr.Flows[0].Name, tr.Flows[1].Name)
	}

	// Self-telemetry rode the sampling tick.
	if tr.Self.Ticks < 90 || tr.Self.SimQueueMax <= 0 || tr.Self.HeapAllocBytes == 0 {
		t.Errorf("self stats = %+v", tr.Self)
	}

	// The episode table is appended to the result rendering.
	if !strings.Contains(res.String(), "telemetry: window") {
		t.Error("Result.String() missing telemetry section")
	}
}

func defaultSampleEvery(t *testing.T) time.Duration {
	t.Helper()
	n := New(Config{Rate: units.Mbps(20), Seed: 1},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 20 * time.Millisecond})
	return n.cfg.SampleEvery
}

func TestTelemetryDetectsStarvedFlow(t *testing.T) {
	res := runWithTelemetry(nil, true)
	tr := res.Telemetry
	if len(tr.Episodes) == 0 {
		t.Fatal("no episodes detected for a 60%-loss flow")
	}
	for i := range tr.Episodes {
		ep := &tr.Episodes[i]
		if ep.Flow != 1 {
			t.Errorf("episode on healthy flow: %+v", ep)
		}
		if ep.MinShare >= tr.Epsilon || ep.Severity <= 0 {
			t.Errorf("episode share/severity out of range: %+v", ep)
		}
	}
	if tr.Flows[1].Episodes != len(tr.Episodes) || tr.Flows[1].StarvedTime <= 0 {
		t.Errorf("flow summary = %+v, want episode counts to reconcile", tr.Flows[1])
	}
	if !strings.Contains(res.String(), "flow1") {
		t.Error("episode table missing starved flow row")
	}

	// Fixed seed: the episode log is deterministic run to run.
	res2 := runWithTelemetry(nil, true)
	if !reflect.DeepEqual(tr.Episodes, res2.Telemetry.Episodes) {
		t.Error("episode logs differ across identical fixed-seed runs")
	}
}

// TestTelemetryDerivedEventsStream asserts phase markers, RTT samples, and
// episode boundaries reach the user probe inline with lifecycle events.
func TestTelemetryDerivedEventsStream(t *testing.T) {
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	res := runWithTelemetry(jw, true)
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[obs.EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	if counts[obs.EvPhase] != 3 {
		t.Errorf("phase events = %d, want 3", counts[obs.EvPhase])
	}
	if counts[obs.EvRTTSample] == 0 {
		t.Error("no RTT samples in the stream")
	}
	if counts[obs.EvStarveOnset] != len(res.Telemetry.Episodes) {
		t.Errorf("onset events = %d, want %d (one per episode)",
			counts[obs.EvStarveOnset], len(res.Telemetry.Episodes))
	}
	// Every episode announces its end — at recovery, or at the horizon
	// when the final Flush seals it.
	if counts[obs.EvStarveEnd] != len(res.Telemetry.Episodes) {
		t.Errorf("end events = %d, want %d (one per episode)",
			counts[obs.EvStarveEnd], len(res.Telemetry.Episodes))
	}
}

// telemetryPromSample matches one sample line of the exposition format.
var telemetryPromSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

func TestWriteTelemetryPrometheusFormat(t *testing.T) {
	res := runWithTelemetry(nil, true)
	var buf bytes.Buffer
	if err := WriteTelemetryPrometheus(&buf, res.Telemetry); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Exposition hygiene: every line is HELP, TYPE, or a well-formed
	// sample; every metric family carries exactly one HELP/TYPE pair.
	seenType := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge") {
				t.Errorf("line %d: bad TYPE line %q", i+1, line)
			}
			if seenType[fields[2]] {
				t.Errorf("line %d: duplicate TYPE for %s", i+1, fields[2])
			}
			seenType[fields[2]] = true
		default:
			if !telemetryPromSample.MatchString(line) {
				t.Errorf("line %d: malformed sample %q", i+1, line)
			}
		}
	}
	for _, name := range []string{
		"starvesim_starvation_episodes_total",
		"starvesim_starved_seconds_total",
		"starvesim_telemetry_windows_closed_total",
		"starvesim_telemetry_windows_evicted_total",
		"starvesim_flow_delivery_rate_bps",
		"starvesim_flow_srtt_seconds",
		"starvesim_flow_queue_delay_seconds",
		"starvesim_telemetry_window_seconds",
		"starvesim_telemetry_epsilon",
		"starvesim_fair_share_bps",
		"starvesim_self_ticks_total",
		"starvesim_self_sim_queue_max",
		"starvesim_self_heap_alloc_bytes",
	} {
		if !seenType[name] {
			t.Errorf("metric %s missing HELP/TYPE", name)
		}
	}
	if !strings.Contains(out, `starvesim_starvation_episodes_total{flow="flow1"} `) {
		t.Error("starved flow's episode counter missing")
	}
}
