package network

import (
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/units"
)

// BenchmarkEmulatedSecond measures end-to-end emulator speed: how much
// wall-clock time one simulated second of a loaded two-flow path costs.
// The figure-regeneration harness simulates tens of minutes of virtual
// time; this bench is its unit cost.
func BenchmarkEmulatedSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(
			Config{Rate: units.Mbps(100), Seed: 1},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
		)
		res := n.Run(time.Second)
		pkts := float64(res.Delivered)
		b.ReportMetric(pkts, "pkts/simsec")
	}
}

// BenchmarkEmulatedSecondTelemetry is the same workload with the flight
// recorder on: windowed sampler, episode detector, phase machine, and the
// RTT/fault emissions the recorder unlocks. benchcheck pins its ns/op
// within tolerance of its own baseline and its pkts/simsec exactly equal
// to BenchmarkEmulatedSecond's — the realization must not move.
func BenchmarkEmulatedSecondTelemetry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(
			Config{Rate: units.Mbps(100), Seed: 1, Telemetry: &TelemetryConfig{}},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
		)
		res := n.Run(time.Second)
		pkts := float64(res.Delivered)
		b.ReportMetric(pkts, "pkts/simsec")
	}
}

// BenchmarkPacketRate measures raw packet-forwarding throughput of the
// assembled path (sender → queue → propagation → jitter → receiver → ack).
func BenchmarkPacketRate(b *testing.B) {
	n := New(
		Config{Rate: units.Gbps(1), Seed: 1},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 10 * time.Millisecond},
	)
	for _, f := range n.Flows {
		n.Sim.At(f.Spec.StartAt, f.Sender.Start)
	}
	// Warm to steady state.
	n.Sim.Run(2 * time.Second)
	start := n.Link.Delivered
	b.ResetTimer()
	b.ReportAllocs()
	target := 2*time.Second + time.Duration(b.N)*time.Millisecond
	n.Sim.Run(target)
	b.StopTimer()
	if n.Link.Delivered == start && b.N > 1000 {
		b.Fatal("no packets flowed")
	}
}
