package network

import (
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/units"
)

// BenchmarkEmulatedSecond measures end-to-end emulator speed: how much
// wall-clock time one simulated second of a loaded two-flow path costs.
// The figure-regeneration harness simulates tens of minutes of virtual
// time; this bench is its unit cost.
func BenchmarkEmulatedSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(
			Config{Rate: units.Mbps(100), Seed: 1},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
		)
		res := n.Run(time.Second)
		pkts := float64(res.Delivered)
		b.ReportMetric(pkts, "pkts/simsec")
	}
}

// BenchmarkEmulatedSecondTelemetry is the same workload with the flight
// recorder on: windowed sampler, episode detector, phase machine, and the
// RTT/fault emissions the recorder unlocks. benchcheck pins its ns/op
// within tolerance of its own baseline and its pkts/simsec exactly equal
// to BenchmarkEmulatedSecond's — the realization must not move.
func BenchmarkEmulatedSecondTelemetry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := New(
			Config{Rate: units.Mbps(100), Seed: 1, Telemetry: &TelemetryConfig{}},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
		)
		res := n.Run(time.Second)
		pkts := float64(res.Delivered)
		b.ReportMetric(pkts, "pkts/simsec")
	}
}

// BenchmarkSweepThroughput measures the sweep hot path: the
// BenchmarkEmulatedSecond workload (two Vegas flows, 100 Mbit/s, one
// emulated second) run back-to-back through one recycled Session with
// seeds cycling over a 100-seed sweep, exactly as the sweep drivers do.
// allocs/op is the per-run allocation cost with arena recycling on —
// compare BenchmarkEmulatedSecond, which pays full network construction
// every run. The flowsec/sec metric is emulated flow-seconds per wall
// second (per core: the loop is single-threaded).
func BenchmarkSweepThroughput(b *testing.B) {
	s := NewSession()
	run := func(seed int64) *Result {
		res, err := s.Run(
			Config{Rate: units.Mbps(100), Seed: seed},
			time.Second,
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
			FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
		)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	// Warm pass: build the cached network once so the timed loop measures
	// recycled runs, which is what every sweep iteration after the first is.
	run(1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run(int64(1 + i%100))
	}
	b.StopTimer()
	b.ReportMetric(2*float64(b.N)/b.Elapsed().Seconds(), "flowsec/sec")
}

// BenchmarkPacketRate measures raw packet-forwarding throughput of the
// assembled path (sender → queue → propagation → jitter → receiver → ack).
func BenchmarkPacketRate(b *testing.B) {
	n := New(
		Config{Rate: units.Gbps(1), Seed: 1},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 10 * time.Millisecond},
	)
	for _, f := range n.Flows {
		n.Sim.At(f.Spec.StartAt, f.Sender.Start)
	}
	// Warm to steady state.
	n.Sim.Run(2 * time.Second)
	start := n.Link.Delivered
	b.ResetTimer()
	b.ReportAllocs()
	target := 2*time.Second + time.Duration(b.N)*time.Millisecond
	n.Sim.Run(target)
	b.StopTimer()
	if n.Link.Delivered == start && b.N > 1000 {
		b.Fatal("no packets flowed")
	}
}
