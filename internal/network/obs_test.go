package network

import (
	"bytes"
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/obs"
	"starvation/internal/packet"
	"starvation/internal/units"
)

// runInstrumented runs a two-flow scenario that exercises every lifecycle
// event: a small drop-tail buffer (tail drops), an ECN threshold (marks),
// and a random-loss gate on one flow (gate drops).
func runInstrumented(t *testing.T, probe obs.Probe) *Result {
	t.Helper()
	n := New(
		Config{
			Rate:              units.Mbps(20),
			BufferBytes:       20 * 1500,
			ECNThresholdBytes: 15 * 1500,
			Seed:              2,
			Probe:             probe,
		},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 20 * time.Millisecond},
		FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 40 * time.Millisecond, LossProb: 0.005},
	)
	return n.Run(10 * time.Second)
}

// TestJSONLRoundTripReconciles is the acceptance round trip: run with the
// JSONL exporter, re-read the file, and verify the event counts reconcile
// with the registry snapshot embedded in the Result — including the
// conservation law sent = delivered + dropped (+ packets still in flight
// when the horizon cut the run).
func TestJSONLRoundTripReconciles(t *testing.T) {
	var buf bytes.Buffer
	jw := obs.NewJSONLWriter(&buf)
	reg := obs.NewRegistry()
	res := runInstrumented(t, obs.Multi(reg, jw))
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events exported")
	}

	// Fold the re-read file through a fresh registry: the snapshot must
	// match what the live registry accumulated, field for field.
	reread := obs.NewRegistry()
	for _, e := range events {
		reread.Emit(e)
	}
	fromFile, live := reread.Snapshot(), reg.Snapshot()
	if len(fromFile.Flows) != 2 || len(live.Flows) != 2 {
		t.Fatalf("flow counts: file %d, live %d, want 2", len(fromFile.Flows), len(live.Flows))
	}
	for i := range live.Flows {
		if fromFile.Flows[i] != live.Flows[i] {
			t.Errorf("flow %d: file %+v != live %+v", i, fromFile.Flows[i], live.Flows[i])
		}
	}
	if fromFile.Global != live.Global {
		t.Errorf("global: file %+v != live %+v", fromFile.Global, live.Global)
	}

	// The event-derived registry must agree with the element-derived
	// snapshot in the Result on every event-visible field.
	for i := range res.Obs.Flows {
		want := res.Obs.Flows[i]
		got := fromFile.Flows[i]
		got.Name = want.Name // names travel via the emulator, not events
		if got != want {
			t.Errorf("flow %d: events %+v != snapshot %+v", i, got, want)
		}
	}
	g := fromFile.Global
	w := res.Obs.Global
	g.SimEventsScheduled, g.SimEventsFired = w.SimEventsScheduled, w.SimEventsFired
	if g != w {
		t.Errorf("global: events %+v != snapshot %+v", g, w)
	}

	// Conservation per flow: every sent segment is delivered, dropped, or
	// still inside the path when the horizon halted the run. The in-flight
	// remainder is bounded by what the path can hold (queue + one window).
	for i, f := range res.Obs.Flows {
		inFlight := f.PacketsSent - f.PacketsDelivered - f.PacketsDropped
		if inFlight < 0 {
			t.Errorf("flow %d: delivered+dropped (%d) exceeds sent (%d)",
				i, f.PacketsDelivered+f.PacketsDropped, f.PacketsSent)
		}
		if limit := int64(200); inFlight > limit {
			t.Errorf("flow %d: %d packets unaccounted for (> %d): lifecycle events are leaking",
				i, inFlight, limit)
		}
		if f.PacketsSent != f.PacketsEnqueued+f.PacketsDropped {
			t.Errorf("flow %d: sent %d != enqueued %d + dropped %d",
				i, f.PacketsSent, f.PacketsEnqueued, f.PacketsDropped)
		}
	}

	// The scenario must actually have exercised drops, marks, and ACKs,
	// otherwise the reconciliation above is vacuous.
	if w.PacketsDropped == 0 || w.PacketsMarked == 0 || w.AcksReceived == 0 {
		t.Errorf("degenerate scenario: global counters %+v", w)
	}

	// Event stream timestamps are monotone per the simulator's clock.
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("event %d at %v precedes event %d at %v",
				i, events[i].At, i-1, events[i-1].At)
		}
	}
}

// TestSnapshotWithoutProbe checks the registry snapshot is populated on
// every run even with instrumentation disabled.
func TestSnapshotWithoutProbe(t *testing.T) {
	res := runInstrumented(t, nil)
	if len(res.Obs.Flows) != 2 {
		t.Fatalf("snapshot flows = %d, want 2", len(res.Obs.Flows))
	}
	f0 := res.Obs.Flows[0]
	if f0.PacketsSent == 0 || f0.PacketsDelivered == 0 || f0.BytesAcked == 0 {
		t.Errorf("flow0 counters empty without probe: %+v", f0)
	}
	if f0.Name != "flow0" {
		t.Errorf("flow0 name = %q", f0.Name)
	}
	g := res.Obs.Global
	if g.SimEventsFired == 0 || g.SimEventsScheduled < g.SimEventsFired {
		t.Errorf("sim event gauges = %+v", g)
	}
	if g.MaxQueueBytes != int64(res.MaxQueue) {
		t.Errorf("MaxQueueBytes = %d, want %d", g.MaxQueueBytes, res.MaxQueue)
	}
	// Cwnd updates and rate samples are probe-driven: zero when disabled.
	if f0.CwndUpdates != 0 || f0.RateSamples != 0 {
		t.Errorf("probe-driven counters nonzero without probe: %+v", f0)
	}
}

// TestPrometheusSnapshotExport sanity-checks the text exposition of a real
// run's snapshot (format validation lives in the obs package tests).
func TestPrometheusSnapshotExport(t *testing.T) {
	res := runInstrumented(t, nil)
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, &res.Obs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`starvesim_packets_sent_total{flow="flow0"}`,
		`starvesim_packets_dropped_total{flow="flow1"}`,
		"starvesim_sim_events_fired_total",
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSnapshotFlowGrowth covers out-of-order flow discovery in Snapshot.
func TestSnapshotFlowGrowth(t *testing.T) {
	var s obs.Snapshot
	s.Flow(packet.FlowID(2)).PacketsSent = 7
	if len(s.Flows) != 3 || s.Flows[2].PacketsSent != 7 {
		t.Errorf("snapshot growth: %+v", s.Flows)
	}
}
