package network

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"starvation/internal/endpoint"
	"starvation/internal/guard"
	"starvation/internal/netem/jitter"
	"starvation/internal/obs"
)

// Session is a reusable run context: it owns fully wired networks — event
// arenas, flow/endpoint state, netem elements, trace buffers — and recycles
// them across runs, so a sweep (thousands of short realizations) pays
// construction once instead of once per run. Buffers are grow-only, sized
// by the largest configuration the session has seen.
//
// Networks are cached by *shape*: the properties baked into the wiring at
// construction time (link count, each flow's resolved path, and which
// impairment elements sit on its forward chain). A run whose shape matches
// a cached network resets that network in place; anything else — rates,
// seeds, buffer sizes, CCA instances, jitter policies, ACK policies, ECN,
// markers, rate schedules, guard and telemetry options, durations — is a
// plain parameter, applied fresh on every run. Results are always detached:
// every trace series is cloned out of the recycled buffers, so a Result
// outlives the session's next run untouched.
//
// A Session is single-owner, like the Simulator inside it: one goroutine
// runs it at a time. Sweeps give each worker its own session (see
// SessionPool); sharing one across goroutines corrupts the arenas.
type Session struct {
	nets map[string]*Network
	key  []byte // scratch for shape-key assembly (no per-run alloc)
}

// NewSession returns an empty session.
func NewSession() *Session {
	return &Session{nets: make(map[string]*Network)}
}

// maxCachedShapes bounds the session's network cache. A sweep touches a
// handful of shapes; if a pathological caller cycles through more, the
// cache is dropped wholesale and rebuilt rather than growing without
// bound.
const maxCachedShapes = 32

// Run executes one realization through the session, with the steady-state
// window defaulting to the second half of the run — the session analogue
// of New(cfg, specs...).Run(d), including NewChecked's validation.
func (s *Session) Run(cfg Config, d time.Duration, specs ...FlowSpec) (*Result, error) {
	return s.RunWindow(cfg, d, d/2, d, specs...)
}

// RunWindow executes one realization for duration d with steady-state
// statistics over [from, to), recycling a cached network when the
// configuration's shape matches one the session has already built. The
// returned Result is fully detached from the session's buffers.
func (s *Session) RunWindow(cfg Config, d, from, to time.Duration, specs ...FlowSpec) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	nLinks := len(cfg.linksOf())
	for i, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("network: flow %d %w", i, err)
		}
		if err := validatePath(spec.Path, nLinks); err != nil {
			return nil, fmt.Errorf("network: flow %d: %w", i, err)
		}
	}
	s.key = appendShapeKey(s.key[:0], nLinks, specs)
	n := s.nets[string(s.key)]
	if n == nil {
		if len(s.nets) >= maxCachedShapes {
			s.nets = make(map[string]*Network)
		}
		n = newNetwork(cfg, specs...)
		s.nets[string(s.key)] = n
	} else {
		n.reset(cfg, specs)
	}
	res := n.RunWindow(d, from, to)
	detachTraces(res)
	return res, nil
}

// appendShapeKey encodes the construction-time shape of a configuration:
// the link count, then per flow one flag byte for the impairment elements
// on its forward chain (loss gate, GE gate, reorderer, duplicator) and its
// resolved path. Everything else about a config is resettable and stays
// out of the key.
func appendShapeKey(key []byte, nLinks int, specs []FlowSpec) []byte {
	key = binary.AppendUvarint(key, uint64(nLinks))
	for _, spec := range specs {
		var flags byte
		if spec.LossProb > 0 {
			flags |= 1
		}
		if fs := spec.Faults; fs != nil {
			if fs.GE != nil {
				flags |= 2
			}
			if fs.Reorder != nil {
				flags |= 4
			}
			if fs.Duplicate != nil {
				flags |= 8
			}
		}
		key = append(key, flags)
		if len(spec.Path) > 0 {
			key = binary.AppendUvarint(key, uint64(len(spec.Path)))
			for _, j := range spec.Path {
				key = binary.AppendUvarint(key, uint64(j))
			}
		} else {
			// Nil path resolves to every link in index order (pathOf).
			key = binary.AppendUvarint(key, uint64(nLinks))
			for j := 0; j < nLinks; j++ {
				key = binary.AppendUvarint(key, uint64(j))
			}
		}
	}
	return key
}

// detachTraces clones every trace series of a result out of the network's
// recycled buffers. collect() hands out pointers into network-owned series;
// without this, the session's next run would clobber the previous result.
func detachTraces(res *Result) {
	res.QueueTrace = res.QueueTrace.Clone()
	for i := range res.Links {
		if res.Links[i].Queue != nil {
			res.Links[i].Queue = res.Links[i].Queue.Clone()
		}
	}
	for i := range res.Flows {
		fr := &res.Flows[i]
		fr.RTT = fr.RTT.Clone()
		fr.Rate = fr.Rate.Clone()
		fr.Cwnd = fr.Cwnd.Clone()
	}
}

// reset rewires the network in place for a new configuration of the same
// shape, mirroring newNetwork stage for stage: simulator first (which
// invalidates every outstanding timer handle — element resets zero their
// handles, never cancel them), then the probe chain, links, and flows. A
// reset network is bit-identical in behaviour to a freshly constructed
// one; the golden fresh-vs-reused parity test pins that mechanically.
func (n *Network) reset(cfg Config, specs []FlowSpec) {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
	n.Sim.Reset(cfg.Seed)
	if cfg.Ctx != nil {
		n.Sim.SetContext(cfg.Ctx)
	}
	n.report = guard.Report{}
	if cfg.Guard != nil {
		if n.monitor == nil {
			n.monitor = guard.NewMonitor()
		} else {
			n.monitor.Reset()
		}
		cfg.Probe = obs.Multi(cfg.Probe, n.monitor)
	} else {
		n.monitor = nil
	}
	for i := range specs {
		if specs[i].Name == "" {
			specs[i].Name = fmt.Sprintf("flow%d", i)
		}
	}
	n.telemetry = nil
	if cfg.Telemetry != nil {
		// Rebuilt fresh each run: the recorder is observation-only and its
		// parameters (windows, thresholds, flow labels) may change freely
		// between runs, so recycling its rings buys nothing but hazards.
		var fair float64
		if r := cfg.linksOf()[cfg.Bottleneck].Rate; r > 0 && len(specs) > 0 {
			fair = float64(r) / float64(len(specs))
		}
		n.telemetry = newTelemetryRecorder(cfg.Telemetry, cfg.SampleEvery, fair, cfg.Probe, specs)
		cfg.Probe = obs.Multi(cfg.Probe, n.telemetry)
	}
	n.cfg = cfg

	n.linkSpecs = cfg.linksOf()
	for j := range n.linkSpecs {
		ls := &n.linkSpecs[j]
		if ls.Name == "" {
			ls.Name = fmt.Sprintf("link%d", j)
		}
		link := n.Links[j]
		link.Reset(ls.Rate, ls.BufferBytes)
		if ls.ECNThresholdBytes > 0 {
			link.SetECNThreshold(ls.ECNThresholdBytes)
		}
		if ls.Marker != nil {
			link.SetMarker(ls.Marker)
		}
		link.SetProbe(cfg.Probe)
	}
	n.Link = n.Links[cfg.Bottleneck]
	for j := range n.linkSpecs {
		if sched := n.linkSpecs[j].RateSchedule; sched != nil {
			sched.Apply(n.Sim, n.Links[j])
		}
	}
	n.QueueTrace.Reset()
	for j := range n.LinkQueues {
		n.LinkQueues[j].Reset()
		n.LinkQueues[j].Name = n.linkSpecs[j].Name + "_queue_bytes"
	}

	for i, spec := range specs {
		if spec.MSS <= 0 {
			spec.MSS = endpoint.DefaultMSS
		}
		if spec.FwdJitter == nil {
			spec.FwdJitter = jitter.None{}
		}
		if spec.AckJitter == nil {
			spec.AckJitter = jitter.None{}
		}
		f := n.Flows[i]
		f.Spec = spec
		// f.path and n.nextHop are shape state: the session key pins them
		// equal to this config's resolved paths, so they are kept as-is.
		f.RTTTrace.Reset()
		f.RTTTrace.Name = spec.Name + "_rtt_s"
		f.RateTrace.Reset()
		f.RateTrace.Name = spec.Name + "_rate_bps"
		f.CwndTrace.Reset()
		f.CwndTrace.Name = spec.Name + "_cwnd_bytes"

		f.AckBox.Reset(spec.AckJitter)
		f.Receiver.Reset(spec.Ack)
		f.Receiver.Probe = cfg.Probe
		f.FwdBox.Reset(spec.FwdJitter)
		if f.gate != nil {
			f.gate.Reset(spec.LossProb)
			f.gate.Rng.Seed(derivedSeed(cfg.Seed, i, saltGate))
			f.gate.SetProbe(n.Sim, cfg.Probe)
		}
		if fs := spec.Faults; fs != nil {
			if f.ge != nil {
				f.ge.Reset(*fs.GE, derivedSeed(cfg.Seed, i, saltGE))
				f.ge.SetProbe(n.Sim, cfg.Probe)
			}
			if f.reorder != nil {
				f.reorder.Reset(*fs.Reorder, derivedSeed(cfg.Seed, i, saltReorder))
				f.reorder.SetProbe(cfg.Probe)
			}
			if f.dup != nil {
				f.dup.Reset(*fs.Duplicate, derivedSeed(cfg.Seed, i, saltDup))
				f.dup.SetProbe(n.Sim, cfg.Probe)
			}
		}
		// The sender's trace hook closure was built at construction and
		// captures the flow (whose trace buffers are reset in place), so it
		// survives reuse; Reset clears the field like a fresh sender would,
		// hence the save/restore.
		hook := f.Sender.AckTraceHook
		f.Sender.Reset(spec.Alg, spec.MSS)
		f.Sender.Probe = cfg.Probe
		f.Sender.AckTraceHook = hook
		f.rateSamples = 0
		f.lastSampledAcked = 0
		f.hopTransit = 0
		if n.monitor != nil {
			n.monitor.Track(f.ID, cfg.Guard.StallAfter(spec.Rm), spec.StartAt)
		}
	}
}

// SessionPool hands out single-owner sessions to concurrent workers: Get a
// session, run any number of realizations through it, Put it back. Unlike
// sync.Pool it never discards warm sessions under GC pressure and is fully
// deterministic, which keeps sweep results reproducible run to run.
type SessionPool struct {
	mu   sync.Mutex
	free []*Session
}

// NewSessionPool returns an empty pool.
func NewSessionPool() *SessionPool { return &SessionPool{} }

// Get returns an idle session, creating one if none is free. The caller
// owns it exclusively until Put.
func (p *SessionPool) Get() *Session {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return NewSession()
}

// Put returns a session to the pool. The caller must not use it afterward.
func (p *SessionPool) Put(s *Session) {
	if s == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}
