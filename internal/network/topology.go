package network

import (
	"fmt"
	"time"

	"starvation/internal/netem"
	"starvation/internal/netem/faults"
	"starvation/internal/units"
)

// LinkSpec describes one bottleneck link of a multi-link topology. The
// classic single-bottleneck configuration (Config.Links == nil) is the
// degenerate case: one LinkSpec synthesized from the legacy Config fields,
// wired exactly as before, so existing scenarios are bit-identical.
type LinkSpec struct {
	// Name labels the link in results (defaults to "linkN").
	Name string
	// Rate is the link's drain rate (required, > 0).
	Rate units.Rate
	// BufferBytes is the drop-tail buffer; 0 means effectively infinite.
	BufferBytes int
	// ECNThresholdBytes enables ECN marking above this queue depth.
	ECNThresholdBytes int
	// Marker installs an AQM policy (overrides ECNThresholdBytes).
	Marker netem.Marker
	// RateSchedule varies this link's rate over the run; nil keeps it
	// constant.
	RateSchedule *faults.RateSchedule
	// HopDelay is the propagation delay applied to a packet departing this
	// link on its way to the *next* link of its path (ignored for the last
	// link of a path, where the flow's Rm stage applies instead).
	HopDelay time.Duration
}

// Validate reports the first problem with the link spec.
func (ls LinkSpec) Validate() error {
	if ls.Rate <= 0 {
		return fmt.Errorf("link rate must be positive")
	}
	if ls.BufferBytes < 0 {
		return fmt.Errorf("negative buffer %d bytes", ls.BufferBytes)
	}
	if ls.ECNThresholdBytes < 0 {
		return fmt.Errorf("negative ECN threshold %d bytes", ls.ECNThresholdBytes)
	}
	if ls.HopDelay < 0 {
		return fmt.Errorf("negative hop delay %v", ls.HopDelay)
	}
	if err := ls.RateSchedule.Validate(); err != nil {
		return fmt.Errorf("rate schedule: %w", err)
	}
	return nil
}

// SingleBottleneck is the paper's topology as an explicit link list: one
// shared FIFO. Equivalent to leaving Config.Links nil and setting the
// legacy fields.
func SingleBottleneck(rate units.Rate, bufferBytes int) []LinkSpec {
	return []LinkSpec{{Name: "bottleneck", Rate: rate, BufferBytes: bufferBytes}}
}

// ParkingLot builds the classic n-hop parking-lot chain: n identical
// bottlenecks in series separated by hopDelay. Long flows (nil Path)
// traverse the whole chain; cross-traffic pins Path to a single hop, e.g.
// Path: []int{1}.
func ParkingLot(n int, rate units.Rate, bufferBytes int, hopDelay time.Duration) []LinkSpec {
	links := make([]LinkSpec, n)
	for i := range links {
		links[i] = LinkSpec{
			Name:        fmt.Sprintf("hop%d", i),
			Rate:        rate,
			BufferBytes: bufferBytes,
			HopDelay:    hopDelay,
		}
	}
	return links
}

// FanIn builds a shared-uplink fan-in: n access links (indices 0..n-1)
// feeding one uplink (index n). Assign flows round-robin across access
// links with FanInPath; the uplink is the shared bottleneck, so scenarios
// usually set Config.Bottleneck to n.
func FanIn(n int, access units.Rate, accessBuffer int, hopDelay time.Duration, uplink units.Rate, uplinkBuffer int) []LinkSpec {
	links := make([]LinkSpec, n+1)
	for i := 0; i < n; i++ {
		links[i] = LinkSpec{
			Name:        fmt.Sprintf("access%d", i),
			Rate:        access,
			BufferBytes: accessBuffer,
			HopDelay:    hopDelay,
		}
	}
	links[n] = LinkSpec{Name: "uplink", Rate: uplink, BufferBytes: uplinkBuffer}
	return links
}

// FanInPath returns flow i's path through a FanIn(n, ...) topology: its
// round-robin access link followed by the shared uplink.
func FanInPath(flow, n int) []int {
	return []int{flow % n, n}
}

// linksOf resolves the configured link list: the explicit Links slice, or
// one synthesized from the legacy single-bottleneck fields.
func (cfg Config) linksOf() []LinkSpec {
	if len(cfg.Links) > 0 {
		return cfg.Links
	}
	return []LinkSpec{{
		Name:              "bottleneck",
		Rate:              cfg.Rate,
		BufferBytes:       cfg.BufferBytes,
		ECNThresholdBytes: cfg.ECNThresholdBytes,
		Marker:            cfg.Marker,
		RateSchedule:      cfg.RateSchedule,
	}}
}

// pathOf resolves a flow's path: the explicit Path, or every link in
// index order (the single bottleneck, or the full parking-lot chain).
func pathOf(spec FlowSpec, nLinks int) []int {
	if len(spec.Path) > 0 {
		return spec.Path
	}
	path := make([]int, nLinks)
	for i := range path {
		path[i] = i
	}
	return path
}

// validatePath checks a flow's explicit path against the link count: every
// index in range, no repeats (per-link flow counters are per visit-set, so
// a repeated index would double-count in conservation ledgers).
func validatePath(path []int, nLinks int) error {
	if path == nil {
		return nil
	}
	if len(path) == 0 {
		return fmt.Errorf("empty path")
	}
	seen := make(map[int]bool, len(path))
	for _, j := range path {
		if j < 0 || j >= nLinks {
			return fmt.Errorf("path link %d out of range [0, %d)", j, nLinks)
		}
		if seen[j] {
			return fmt.Errorf("path visits link %d twice", j)
		}
		seen[j] = true
	}
	return nil
}
