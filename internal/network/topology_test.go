package network

import (
	"testing"
	"time"

	"starvation/internal/cca/reno"
	"starvation/internal/cca/vegas"
	"starvation/internal/guard"
	"starvation/internal/units"
)

// TestExplicitSingleLinkMatchesLegacy pins the degenerate topology: one
// explicit LinkSpec must produce the same realization as the legacy
// single-bottleneck fields (same rates, buffers, seed).
func TestExplicitSingleLinkMatchesLegacy(t *testing.T) {
	specs := func() []FlowSpec {
		return []FlowSpec{
			{Alg: vegas.New(vegas.Config{}), Rm: 40 * time.Millisecond},
			{Alg: reno.New(reno.Config{}), Rm: 80 * time.Millisecond, StartAt: 200 * time.Millisecond},
		}
	}
	legacy := New(Config{Rate: units.Mbps(24), BufferBytes: 32 * 1500, Seed: 3}, specs()...).Run(4 * time.Second)
	explicit := New(Config{
		Links: []LinkSpec{{Rate: units.Mbps(24), BufferBytes: 32 * 1500}},
		Seed:  3,
	}, specs()...).Run(4 * time.Second)
	for i := range legacy.Flows {
		lw, ew := legacy.Flows[i].Stat.AckedBytes, explicit.Flows[i].Stat.AckedBytes
		if lw != ew {
			t.Errorf("flow %d: acked bytes diverge: legacy %d, explicit single link %d", i, lw, ew)
		}
	}
	if legacy.Dropped != explicit.Dropped {
		t.Errorf("drops diverge: legacy %d, explicit %d", legacy.Dropped, explicit.Dropped)
	}
	if legacy.Obs.Global != explicit.Obs.Global {
		t.Errorf("global counters diverge:\nlegacy   %+v\nexplicit %+v", legacy.Obs.Global, explicit.Obs.Global)
	}
}

// runParkingLot wires two long flows over a 3-hop chain against one-hop
// cross traffic on the middle hop.
func runParkingLot(t *testing.T, guardOpts *guard.Options) *Result {
	t.Helper()
	n := New(Config{
		Links: ParkingLot(3, units.Mbps(20), 32*1500, 2*time.Millisecond),
		Seed:  5,
		Guard: guardOpts,
	},
		FlowSpec{Name: "long0", Cohort: "long", Alg: vegas.New(vegas.Config{}), Rm: 40 * time.Millisecond},
		FlowSpec{Name: "long1", Cohort: "long", Alg: reno.New(reno.Config{}), Rm: 60 * time.Millisecond},
		FlowSpec{Name: "cross", Cohort: "cross", Alg: reno.New(reno.Config{}), Rm: 20 * time.Millisecond, Path: []int{1}},
	)
	return n.Run(5 * time.Second)
}

// TestParkingLotConservation checks the multi-hop ledger: packets can rest
// between hops or drop mid-path, and every segment equation must still
// balance. The run-guard layer's end-of-run checks must also stay clean.
func TestParkingLotConservation(t *testing.T) {
	res := runParkingLot(t, &guard.Options{})
	if err := res.Ledger.Check(); err != nil {
		t.Fatalf("parking-lot ledger: %v", err)
	}
	if res.Guard == nil || !res.Guard.Ok() {
		t.Fatalf("guard report not clean: %v", res.Guard)
	}
	if len(res.Links) != 3 {
		t.Fatalf("want 3 link results, got %d", len(res.Links))
	}
	// The cross flow shares only hop1; long flows traverse all three. All
	// flows must make progress.
	for i, f := range res.Flows {
		if f.Stat.AckedBytes == 0 {
			t.Errorf("flow %d (%s) made no progress", i, f.Name)
		}
	}
	// Multi-link topologies expose per-link queue traces.
	for j, l := range res.Links {
		if l.Queue == nil || l.Queue.Len() == 0 {
			t.Errorf("link %d (%s): no queue trace", j, l.Name)
		}
	}
	// Cohort labels must flow through to the obs snapshot and aggregate.
	cohorts := res.Obs.Cohorts()
	if len(cohorts) != 2 {
		t.Fatalf("want 2 cohorts, got %d: %+v", len(cohorts), cohorts)
	}
	if cohorts[0].Cohort != "cross" || cohorts[0].Flows != 1 {
		t.Errorf("cohort 0: got %q n=%d, want cross n=1", cohorts[0].Cohort, cohorts[0].Flows)
	}
	if cohorts[1].Cohort != "long" || cohorts[1].Flows != 2 {
		t.Errorf("cohort 1: got %q n=%d, want long n=2", cohorts[1].Cohort, cohorts[1].Flows)
	}
}

// TestFanInConservation checks the shared-uplink fan-in: flows enter on
// round-robin access links and contend at the uplink, where mid-path
// drops land in the DroppedMidPath ledger column.
func TestFanInConservation(t *testing.T) {
	links := FanIn(2, units.Mbps(40), 0, time.Millisecond, units.Mbps(12), 8*1500)
	specs := make([]FlowSpec, 4)
	for i := range specs {
		specs[i] = FlowSpec{
			Cohort: "vegas",
			Alg:    vegas.New(vegas.Config{}),
			Rm:     30 * time.Millisecond,
			Path:   FanInPath(i, 2),
		}
	}
	n := New(Config{Links: links, Bottleneck: 2, Seed: 9}, specs...)
	res := n.Run(5 * time.Second)
	if err := res.Ledger.Check(); err != nil {
		t.Fatalf("fan-in ledger: %v", err)
	}
	if res.LinkRate != units.Mbps(12) {
		t.Errorf("LinkRate should report the uplink: got %v", res.LinkRate)
	}
	// The tight uplink behind fat access links must shed load: those
	// drops are mid-path (hop 1) for every flow.
	var mid int64
	for _, fl := range res.Ledger.Flows {
		mid += fl.DroppedMidPath
		if fl.DroppedAtQueue != 0 {
			t.Errorf("flow %s: unexpected first-hop drop-tail %d (access links are unbuffered-infinite)", fl.Name, fl.DroppedAtQueue)
		}
	}
	if mid == 0 {
		t.Error("expected mid-path drops at the congested uplink, got none")
	}
	if res.Dropped != mid {
		t.Errorf("Result.Dropped (%d) should sum all link drops (%d)", res.Dropped, mid)
	}
}

// TestPathValidation covers the malformed-path diagnostics.
func TestPathValidation(t *testing.T) {
	links := ParkingLot(2, units.Mbps(10), 0, 0)
	base := FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 10 * time.Millisecond}
	for _, tc := range []struct {
		name string
		path []int
	}{
		{"out of range", []int{2}},
		{"revisit", []int{0, 1, 0}},
		{"empty non-nil", []int{}},
	} {
		spec := base
		spec.Path = tc.path
		if tc.path != nil && len(tc.path) == 0 {
			// validatePath distinguishes nil (default) from empty.
			if err := validatePath(tc.path, len(links)); err == nil {
				t.Errorf("%s: validatePath accepted %v", tc.name, tc.path)
			}
			continue
		}
		if _, err := NewChecked(Config{Links: links}, spec); err == nil {
			t.Errorf("%s: NewChecked accepted path %v", tc.name, tc.path)
		}
	}
	// Legacy fields and Links are mutually exclusive.
	if _, err := NewChecked(Config{Rate: units.Mbps(10), Links: links}, base); err == nil {
		t.Error("NewChecked accepted both legacy Rate and Links")
	}
	if _, err := NewChecked(Config{Rate: units.Mbps(10), Bottleneck: 1}, base); err == nil {
		t.Error("NewChecked accepted Bottleneck without Links")
	}
}
