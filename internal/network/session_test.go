package network

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/guard"
	"starvation/internal/units"
)

// sessionScenario builds a small two-flow contest whose realization varies
// with seed and rate, for reuse-vs-fresh comparisons.
func sessionScenario(seed int64, rate units.Rate) goldenConfig {
	return goldenConfig{
		cfg: Config{Rate: rate, BufferBytes: 32 * 1500, Seed: seed},
		specs: []FlowSpec{
			{Alg: vegas.New(vegas.Config{}), Rm: 20 * time.Millisecond},
			{Alg: vegas.New(vegas.Config{}), Rm: 60 * time.Millisecond},
		},
		d: 2 * time.Second,
	}
}

// TestSessionFreshVsReusedParity is the session's correctness contract: a
// realization run through a reused session hashes bit-identically to the
// same configuration run through a fresh network.New — across repeated
// passes, interleaved shapes (the cache cycles between the clean and
// impaired golden scenarios), and with telemetry on. It also pins result
// detachment: an earlier pass's Result must hash the same after later runs
// recycle the session's buffers.
func TestSessionFreshVsReusedParity(t *testing.T) {
	for _, tc := range []*TelemetryConfig{nil, {}} {
		name := "plain"
		if tc != nil {
			name = "telemetry"
		}
		t.Run(name, func(t *testing.T) {
			fresh := map[string]string{}
			for sc, run := range goldenScenarios(tc) {
				fresh[sc] = hashResult(t, run())
			}
			s := NewSession()
			held := map[string]*Result{}
			for pass := 0; pass < 3; pass++ {
				for sc, build := range goldenConfigs(tc) {
					gc := build()
					res, err := s.Run(gc.cfg, gc.d, gc.specs...)
					if err != nil {
						t.Fatalf("pass %d %s: %v", pass, sc, err)
					}
					if h := hashResult(t, res); h != fresh[sc] {
						t.Errorf("pass %d %s: reused session diverged from fresh network: got %s want %s",
							pass, sc, h, fresh[sc])
					}
					if pass == 0 {
						held[sc] = res
					}
				}
			}
			for sc, res := range held {
				if h := hashResult(t, res); h != fresh[sc] {
					t.Errorf("%s: first-pass result was clobbered by later session runs (hash now %s, want %s)",
						sc, h, fresh[sc])
				}
			}
		})
	}
}

// TestSessionParameterChangesReset pins that a shape-stable parameter
// change (seed, rate) fully resets the recycled network: running A, then
// B, then A again through one session reproduces A's fresh hash — no state
// from B leaks into the second A.
func TestSessionParameterChangesReset(t *testing.T) {
	hash := func(gc goldenConfig) string {
		n := New(gc.cfg, gc.specs...)
		return hashResult(t, n.Run(gc.d))
	}
	a := hash(sessionScenario(3, units.Mbps(40)))
	b := hash(sessionScenario(8, units.Mbps(12)))
	if a == b {
		t.Fatal("scenarios A and B should differ")
	}
	s := NewSession()
	for i, want := range []string{a, b, a, b, b, a} {
		gc := sessionScenario(3, units.Mbps(40))
		if want == b {
			gc = sessionScenario(8, units.Mbps(12))
		}
		res, err := s.Run(gc.cfg, gc.d, gc.specs...)
		if err != nil {
			t.Fatal(err)
		}
		if h := hashResult(t, res); h != want {
			t.Errorf("run %d: got %s want %s", i, h, want)
		}
	}
}

// TestSessionGuardParity pins that guarded session runs match guarded
// fresh runs (the monitor is recycled via Reset), and that toggling the
// guard off between runs leaves no monitor behind.
func TestSessionGuardParity(t *testing.T) {
	gopts := &guard.Options{}
	withGuard := func(gc goldenConfig) goldenConfig {
		gc.cfg.Guard = gopts
		return gc
	}
	gc := withGuard(sessionScenario(5, units.Mbps(30)))
	freshRes := New(gc.cfg, gc.specs...).Run(gc.d)
	if freshRes.Guard == nil {
		t.Fatal("fresh guarded run has no guard report")
	}
	fresh := hashResult(t, freshRes)

	s := NewSession()
	for i := 0; i < 3; i++ {
		// Alternate guarded and unguarded runs of the same shape.
		gc := withGuard(sessionScenario(5, units.Mbps(30)))
		res, err := s.Run(gc.cfg, gc.d, gc.specs...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Guard == nil {
			t.Fatalf("run %d: guarded session run has no guard report", i)
		}
		if h := hashResult(t, res); h != fresh {
			t.Errorf("run %d: guarded session diverged: got %s want %s", i, h, fresh)
		}
		plain := sessionScenario(5, units.Mbps(30))
		resPlain, err := s.Run(plain.cfg, plain.d, plain.specs...)
		if err != nil {
			t.Fatal(err)
		}
		if resPlain.Guard != nil {
			t.Fatalf("run %d: unguarded session run reports a guard", i)
		}
	}
}

// TestSessionShapeChangeRebuilds pins the cache key: configurations with
// different construction-time shape (impairment elements present, path
// layout, link count) run on distinct cached networks, and each still
// matches its fresh hash when revisited.
func TestSessionShapeChangeRebuilds(t *testing.T) {
	shapes := []func() goldenConfig{
		func() goldenConfig { return sessionScenario(4, units.Mbps(24)) },
		func() goldenConfig { // adds a loss gate to flow 0: different chain shape
			gc := sessionScenario(4, units.Mbps(24))
			gc.specs[0].LossProb = 0.02
			return gc
		},
		func() goldenConfig { // two-link parking lot: different link count
			gc := sessionScenario(4, units.Mbps(24))
			gc.cfg = Config{
				Links: ParkingLot(2, units.Mbps(24), 32*1500, 2*time.Millisecond),
				Seed:  4,
			}
			return gc
		},
	}
	fresh := make([]string, len(shapes))
	for i, build := range shapes {
		gc := build()
		fresh[i] = hashResult(t, New(gc.cfg, gc.specs...).Run(gc.d))
	}
	s := NewSession()
	for pass := 0; pass < 2; pass++ {
		for i, build := range shapes {
			gc := build()
			res, err := s.Run(gc.cfg, gc.d, gc.specs...)
			if err != nil {
				t.Fatal(err)
			}
			if h := hashResult(t, res); h != fresh[i] {
				t.Errorf("pass %d shape %d: got %s want %s", pass, i, h, fresh[i])
			}
		}
	}
	if got := len(s.nets); got != len(shapes) {
		t.Errorf("session cached %d networks, want %d (one per shape)", got, len(shapes))
	}
}

// TestSessionValidation pins that the session rejects exactly what
// NewChecked rejects, without caching anything for invalid configs.
func TestSessionValidation(t *testing.T) {
	s := NewSession()
	if _, err := s.Run(Config{}, time.Second); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := s.Run(Config{Rate: units.Mbps(10)}, time.Second,
		FlowSpec{Rm: time.Millisecond}); err == nil {
		t.Error("flow without CCA accepted")
	}
	if len(s.nets) != 0 {
		t.Errorf("invalid configs left %d cached networks", len(s.nets))
	}
}

// TestSessionPoolWorkersDeterministic is the concurrency property test:
// many goroutines, one pooled session each, each running every seed of a
// sweep. Under -race this pins single-owner sessions as data-race free,
// and the per-seed hashes must be identical across workers and equal to
// the fresh-network hashes — deterministic results independent of which
// worker (and thus which recycled arena) ran the realization.
func TestSessionPoolWorkersDeterministic(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	fresh := make([]string, len(seeds))
	for i, seed := range seeds {
		gc := sessionScenario(seed, units.Mbps(20))
		fresh[i] = hashResult(t, New(gc.cfg, gc.specs...).Run(gc.d))
	}
	pool := NewSessionPool()
	const workers = 4
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := pool.Get()
			defer pool.Put(s)
			for i, seed := range seeds {
				gc := sessionScenario(seed, units.Mbps(20))
				res, err := s.Run(gc.cfg, gc.d, gc.specs...)
				if err != nil {
					errs <- fmt.Errorf("worker %d seed %d: %w", w, seed, err)
					return
				}
				if h := hashResultQuiet(res); h != fresh[i] {
					errs <- fmt.Errorf("worker %d seed %d: hash %s, want %s", w, seed, h, fresh[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
