package network

import (
	"math/rand"
	"testing"
	"time"

	"starvation/internal/cca/reno"
	"starvation/internal/cca/vegas"
	"starvation/internal/cca/vivace"
	"starvation/internal/endpoint"
	"starvation/internal/netem/jitter"
	"starvation/internal/units"
)

func TestDeterministicRuns(t *testing.T) {
	run := func() *Result {
		n := New(
			Config{Rate: units.Mbps(24), BufferBytes: 60 * 1500, Seed: 42},
			FlowSpec{Name: "a", Alg: reno.New(reno.Config{}), Rm: 50 * time.Millisecond,
				FwdJitter: &jitter.Uniform{Max: 3 * time.Millisecond, Rng: rand.New(rand.NewSource(9))}},
			FlowSpec{Name: "b", Alg: vegas.New(vegas.Config{}), Rm: 70 * time.Millisecond},
		)
		return n.Run(10 * time.Second)
	}
	r1, r2 := run(), run()
	for i := range r1.Flows {
		if r1.Flows[i].Stat.AckedBytes != r2.Flows[i].Stat.AckedBytes {
			t.Errorf("flow %d acked bytes differ across identical runs: %d vs %d",
				i, r1.Flows[i].Stat.AckedBytes, r2.Flows[i].Stat.AckedBytes)
		}
		if r1.Flows[i].Stat.LossEvents != r2.Flows[i].Stat.LossEvents {
			t.Errorf("flow %d loss events differ: %d vs %d",
				i, r1.Flows[i].Stat.LossEvents, r2.Flows[i].Stat.LossEvents)
		}
	}
}

func TestStaggeredStartConverges(t *testing.T) {
	n := New(
		Config{Rate: units.Mbps(24), Seed: 1},
		FlowSpec{Name: "early", Alg: vegas.New(vegas.Config{}), Rm: 60 * time.Millisecond},
		FlowSpec{Name: "late", Alg: vegas.New(vegas.Config{}), Rm: 60 * time.Millisecond,
			StartAt: 10 * time.Second},
	)
	res := n.Run(60 * time.Second)
	if j := res.Jain(); j < 0.9 {
		t.Errorf("late joiner did not converge to fair share: jain %.3f\n%s", j, res)
	}
}

func TestPerFlowLossGatesIndependent(t *testing.T) {
	// Adding a loss gate to flow 1 must not change flow 0's loss pattern:
	// each gate derives its own RNG from the seed and flow index.
	run := func(withSecond bool) int64 {
		specs := []FlowSpec{{
			Name: "lossy0", Alg: reno.New(reno.Config{}),
			Rm: 40 * time.Millisecond, LossProb: 0.01,
		}}
		if withSecond {
			specs = append(specs, FlowSpec{
				Name: "lossy1", Alg: reno.New(reno.Config{}),
				Rm: 40 * time.Millisecond, LossProb: 0.05,
			})
		}
		n := New(Config{Rate: units.Mbps(50), Seed: 3}, specs...)
		res := n.Run(5 * time.Second)
		return res.Flows[0].Stat.SentBytes
	}
	// Flow 0's own gate decisions must be identical; its *behaviour* will
	// differ because it shares the link, so compare only the gate RNG
	// stream indirectly: same seed+index yields the same generator.
	a := newDerivedRand(3, 0)
	b := newDerivedRand(3, 0)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("derived rand not deterministic")
		}
	}
	c := newDerivedRand(3, 1)
	same := true
	d := newDerivedRand(3, 0)
	for i := 0; i < 10; i++ {
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different flow indices produced the same gate stream")
	}
	_ = run
}

func TestAckPathJitter(t *testing.T) {
	// Jitter on the ACK path raises measured RTTs just like data-path
	// jitter: the sender cannot tell the difference (the paper's point).
	mk := func(ackJitter jitter.Policy) *Result {
		n := New(
			Config{Rate: units.Mbps(24), Seed: 1},
			FlowSpec{Name: "f", Alg: vegas.New(vegas.Config{}),
				Rm: 60 * time.Millisecond, AckJitter: ackJitter},
		)
		return n.Run(10 * time.Second)
	}
	clean := mk(nil)
	jittered := mk(jitter.Constant{D: 10 * time.Millisecond})
	dClean := clean.Flows[0].Stat.MinRTT
	dJit := jittered.Flows[0].Stat.MinRTT
	if dJit-dClean < 9*time.Millisecond {
		t.Errorf("ACK jitter invisible in RTT: clean %v vs jittered %v", dClean, dJit)
	}
}

func TestECNThresholdMarksAndReacts(t *testing.T) {
	// An ECN-reacting Reno on a deep queue holds the queue near the mark
	// threshold instead of the full buffer (§6.4's direction).
	n := New(
		Config{Rate: units.Mbps(12), BufferBytes: 300 * 1500,
			ECNThresholdBytes: 20 * 1500, Seed: 1},
		FlowSpec{Name: "ecn", Alg: reno.New(reno.Config{ReactToECN: true}),
			Rm: 40 * time.Millisecond},
	)
	res := n.Run(20 * time.Second)
	if res.Dropped != 0 {
		t.Errorf("drops with ECN reaction on deep buffer: %d", res.Dropped)
	}
	// Queue must stay well below the physical buffer.
	if q, ok := res.QueueTrace.Mean(10*time.Second, 20*time.Second); !ok || q > 60*1500 {
		t.Errorf("mean queue %v bytes, want bounded near the 30000B threshold", q)
	}
	if res.Utilization() < 0.85 {
		t.Errorf("utilization %.3f", res.Utilization())
	}
}

func TestRateBasedFlowNeedsNoWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := New(
		Config{Rate: units.Mbps(24), Seed: 1},
		FlowSpec{Name: "pcc", Alg: vivace.New(vivace.Config{Rng: rng}),
			Rm: 40 * time.Millisecond},
	)
	res := n.Run(20 * time.Second)
	if res.Utilization() < 0.7 {
		t.Errorf("rate-based flow utilization %.3f, want >= 0.7\n%s", res.Utilization(), res)
	}
}

func TestManyFlowsShareFairly(t *testing.T) {
	specs := make([]FlowSpec, 6)
	for i := range specs {
		specs[i] = FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: 60 * time.Millisecond}
	}
	n := New(Config{Rate: units.Mbps(48), Seed: 1}, specs...)
	res := n.Run(60 * time.Second)
	if j := res.Jain(); j < 0.9 {
		t.Errorf("6-flow jain = %.3f\n%s", j, res)
	}
	if res.Utilization() < 0.9 {
		t.Errorf("6-flow utilization %.3f", res.Utilization())
	}
	// The theory predicts RTT = Rm + n·α/C with n=6.
	want := 60*time.Millisecond + time.Duration(6*4*1500*8*1e9/48e6)
	mean := res.Flows[0].Stat.MeanRTT
	if mean < 60*time.Millisecond || mean > want+4*time.Millisecond {
		t.Errorf("6-flow mean RTT %v, want near %v", mean, want)
	}
}

func TestRunWindowStats(t *testing.T) {
	n := New(
		Config{Rate: units.Mbps(12), Seed: 1},
		FlowSpec{Name: "f", Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond},
	)
	res := n.RunWindow(10*time.Second, 8*time.Second, 10*time.Second)
	if res.WindowFrom != 8*time.Second || res.WindowTo != 10*time.Second {
		t.Error("window bounds not propagated")
	}
	// In the final 2s the flow is at equilibrium: steady ≈ link rate.
	if res.Flows[0].Stat.SteadyThpt < units.Mbps(11) {
		t.Errorf("steady thpt %v", res.Flows[0].Stat.SteadyThpt)
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("zero rate", func() {
		New(Config{}, FlowSpec{Alg: vegas.New(vegas.Config{}), Rm: time.Millisecond})
	})
	assertPanics("missing CCA", func() {
		New(Config{Rate: units.Mbps(1)}, FlowSpec{Rm: time.Millisecond})
	})
	assertPanics("missing Rm", func() {
		New(Config{Rate: units.Mbps(1)}, FlowSpec{Alg: vegas.New(vegas.Config{})})
	})
}

func TestDelayedAckKeepsThroughput(t *testing.T) {
	// Delayed ACKs alone (single flow, no competition) must not tank
	// throughput: the sender's bursts still fill the pipe.
	n := New(
		Config{Rate: units.Mbps(12), Seed: 1},
		FlowSpec{Name: "delack", Alg: reno.New(reno.Config{}), Rm: 50 * time.Millisecond,
			Ack: endpoint.AckConfig{DelayCount: 4, DelayTimeout: 100 * time.Millisecond}},
	)
	res := n.Run(20 * time.Second)
	if res.Utilization() < 0.85 {
		t.Errorf("delayed-ACK single flow utilization %.3f\n%s", res.Utilization(), res)
	}
}
