package network

import (
	"context"
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/units"
)

// TestConfigCtxCancelsRun checks Config.Ctx reaches the event loop: a
// run under an expiring context halts early (virtual time frozen short
// of the horizon) instead of simulating to completion — the mechanism
// that lets a batch deadline actually stop abandoned work.
func TestConfigCtxCancelsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	n := New(
		Config{Rate: units.Mbps(12), Seed: 1, Ctx: ctx},
		FlowSpec{Name: "probe", Alg: vegas.New(vegas.Config{}), Rm: 40 * time.Millisecond},
	)
	// Cancel from inside the run so the test is deterministic: the
	// sampler fires every 100 ms of virtual time.
	fired := 0
	var arm func()
	arm = func() {
		fired++
		if fired == 3 {
			cancel()
			return
		}
		n.Sim.After(100*time.Millisecond, arm)
	}
	n.Sim.After(0, arm)

	res := n.Run(time.Hour)
	if !n.Sim.Interrupted() {
		t.Fatalf("run completed despite cancellation")
	}
	// collect() reports the requested duration; the real signal is that
	// the flow only progressed for the ~300 ms before the cancel.
	if got := res.Flows[0].Stat.AckedBytes; got > 10<<20 {
		t.Errorf("flow acked %d bytes; an hour-long run clearly was not cancelled", got)
	}
}

// TestConfigCtxObservationOnly checks a live context never perturbs a
// realization: fixed-seed runs with and without a context produce
// identical flow results.
func TestConfigCtxObservationOnly(t *testing.T) {
	run := func(ctx context.Context) *Result {
		n := New(
			Config{Rate: units.Mbps(24), Seed: 7, Ctx: ctx},
			FlowSpec{Name: "a", Alg: vegas.New(vegas.Config{}), Rm: 30 * time.Millisecond},
			FlowSpec{Name: "b", Alg: vegas.New(vegas.Config{}), Rm: 60 * time.Millisecond},
		)
		return n.Run(20 * time.Second)
	}
	bare := run(nil)
	ctx := run(context.Background())
	for i := range bare.Flows {
		if bare.Flows[i].Stat != ctx.Flows[i].Stat {
			t.Errorf("flow %d stats differ with a context installed:\n bare %+v\n ctx  %+v",
				i, bare.Flows[i].Stat, ctx.Flows[i].Stat)
		}
	}
	if bare.Obs.Global != ctx.Obs.Global {
		t.Errorf("global counters differ with a context installed")
	}
}
