package network

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"starvation/internal/obs"
	"starvation/internal/obs/detect"
	"starvation/internal/obs/timeseries"
	"starvation/internal/packet"
	"starvation/internal/units"
)

// TelemetryConfig enables the flight recorder: windowed per-flow series
// (internal/obs/timeseries), the online starvation detector
// (internal/obs/detect), run-phase spans, and a self-telemetry sampler.
// Like Probe and Guard it is observation-only — the recorder schedules no
// simulator events (phase and self samples piggyback on the existing
// trace-sampling tick) and draws no randomness, so fixed-seed
// realizations are bit-identical with the recorder on or off
// (TestGoldenParityTelemetry pins this).
type TelemetryConfig struct {
	// Window is the sampler stride (default Config.SampleEvery, so every
	// window is guaranteed to close on the next rate sample even for a
	// flow that never delivers a byte).
	Window time.Duration
	// Epsilon is the starvation threshold as a fraction of fair share
	// (<= 0 selects metrics.DefaultStarvationEpsilon, matching the
	// population statistics).
	Epsilon float64
	// OpenAfter/CloseAfter are the detector's hysteresis in windows
	// (defaults 2/2).
	OpenAfter, CloseAfter int
	// MaxWindows caps each flow's retained ring; 0 derives it from the
	// run horizon at RunWindow time (the trace.Series.Reserve idiom).
	MaxWindows int
}

// Phase is one run-phase span of a telemetry result.
type Phase struct {
	Name     string        `json:"name"`
	From, To time.Duration `json:"-"`
	FromNs   int64         `json:"from_ns"`
	ToNs     int64         `json:"to_ns"`
}

// FlowTelemetry summarizes one flow's windowed series.
type FlowTelemetry struct {
	Name   string `json:"name"`
	Cohort string `json:"cohort,omitempty"`
	// Windows is the retained ring, oldest first; WindowsClosed counts
	// every closed window and Evicted the ones the ring aged out, so a
	// truncated series is visible, not silent.
	Windows       []timeseries.Window `json:"windows"`
	WindowsClosed int64               `json:"windows_closed"`
	Evicted       int64               `json:"evicted"`
	// LastRateBps is the delivery rate of the last closed window.
	LastRateBps float64 `json:"last_rate_bps"`
	// MinRTT estimates propagation delay; SRTT is the last window's mean
	// RTT sample and QueueDelay their difference (smoothed queueing +
	// jitter delay).
	MinRTT     time.Duration `json:"min_rtt_ns"`
	SRTT       time.Duration `json:"srtt_ns"`
	QueueDelay time.Duration `json:"queue_delay_ns"`
	// Episodes and StarvedTime summarize the flow's detector verdicts.
	Episodes    int           `json:"episodes"`
	StarvedTime time.Duration `json:"starved_time_ns"`
}

// SelfStats is the recorder's telemetry about the run itself. Queue
// depths are sampled at the trace tick; memory counters come from one
// runtime.ReadMemStats at the end of the run — off the hot path.
type SelfStats struct {
	// Ticks counts self-samples (one per trace-sampling interval).
	Ticks int64 `json:"ticks"`
	// SimQueueMax/SimQueueLast gauge the event-queue depth.
	SimQueueMax  int `json:"sim_queue_max"`
	SimQueueLast int `json:"sim_queue_last"`
	// HeapAllocBytes/TotalAllocs/NumGC are process-wide memory counters
	// at collection time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	TotalAllocs    uint64 `json:"total_allocs"`
	NumGC          uint32 `json:"num_gc"`
}

// TelemetryResult is the flight recorder's output, attached to
// Result.Telemetry when Config.Telemetry was set.
type TelemetryResult struct {
	Window    time.Duration    `json:"window_ns"`
	Epsilon   float64          `json:"epsilon"`
	FairShare float64          `json:"fair_share_bps"`
	Phases    []Phase          `json:"phases"`
	Flows     []FlowTelemetry  `json:"flows"`
	Episodes  []detect.Episode `json:"episodes"`
	Self      SelfStats        `json:"self"`
}

// telemetryRecorder glues the sampler and detector into one probe and
// owns the phase/self samplers. It is wired into the probe chain at
// construction; horizon-dependent sizing happens in begin().
type telemetryRecorder struct {
	sampler *timeseries.Sampler
	det     *detect.Detector
	window  time.Duration

	// phase state, driven by tick() from the trace sampler.
	warmupEnd time.Duration
	horizon   time.Duration
	phase     int
	phases    []Phase
	// downstream receives derived events (phase markers; the detector
	// holds its own reference for episode events).
	downstream obs.Probe

	self SelfStats
}

// newTelemetryRecorder builds the recorder for the given specs. fair is
// the per-flow fair share in bit/s (bottleneck capacity / N).
func newTelemetryRecorder(tc *TelemetryConfig, sampleEvery time.Duration, fair float64, downstream obs.Probe, specs []FlowSpec) *telemetryRecorder {
	window := tc.Window
	if window <= 0 {
		window = sampleEvery
	}
	r := &telemetryRecorder{window: window, phase: -1, downstream: downstream}
	r.det = detect.New(detect.Config{
		FairShare: fair,
		Epsilon:   tc.Epsilon,
		OpenAfter: tc.OpenAfter, CloseAfter: tc.CloseAfter,
		Probe: downstream,
	}, len(specs))
	for i, spec := range specs {
		r.det.Label(packet.FlowID(i), spec.Name, spec.Cohort)
	}
	r.sampler = timeseries.NewSampler(timeseries.Config{
		Stride:     window,
		MaxWindows: tc.MaxWindows,
		OnWindow:   r.det.Observe,
	}, len(specs))
	return r
}

// Emit implements obs.Probe by folding into the windowed sampler.
func (r *telemetryRecorder) Emit(e obs.Event) { r.sampler.Emit(e) }

// begin pre-sizes the rings from the horizon and records the phase plan.
// Must run before the first event of the run.
func (r *telemetryRecorder) begin(d, from, to time.Duration) {
	r.sampler.Reserve(d)
	r.warmupEnd = from
	r.horizon = d
	_ = to
}

// tick advances the phase machine and self-telemetry. Called from the
// network's trace-sampling callback — already scheduled on every run —
// so telemetry adds zero simulator events.
func (r *telemetryRecorder) tick(now time.Duration, simQueue int) {
	r.self.Ticks++
	r.self.SimQueueLast = simQueue
	if simQueue > r.self.SimQueueMax {
		r.self.SimQueueMax = simQueue
	}
	if r.phase < obs.PhaseSetup {
		r.enterPhase(obs.PhaseSetup, now)
		r.enterPhase(obs.PhaseWarmup, now)
	}
	if r.phase < obs.PhaseMeasure && now >= r.warmupEnd {
		r.enterPhase(obs.PhaseMeasure, now)
	}
}

func (r *telemetryRecorder) enterPhase(p int, now time.Duration) {
	if n := len(r.phases); n > 0 {
		r.phases[n-1].To = now
	}
	r.phases = append(r.phases, Phase{Name: obs.PhaseName(p), From: now})
	r.phase = p
	if r.downstream != nil {
		r.downstream.Emit(obs.Event{Type: obs.EvPhase, At: now, Flow: -1,
			Seq: int64(p), Queue: -1})
	}
}

// finish closes partial windows and open episodes at the horizon and
// assembles the result. The single ReadMemStats lives here, after the
// last simulated event.
func (r *telemetryRecorder) finish(d time.Duration, specs []*Flow) *TelemetryResult {
	r.sampler.Flush(d)
	r.det.Flush(d)
	if n := len(r.phases); n > 0 {
		r.phases[n-1].To = d
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.self.HeapAllocBytes = ms.HeapAlloc
	r.self.TotalAllocs = ms.Mallocs
	r.self.NumGC = ms.NumGC

	tr := &TelemetryResult{
		Window:    r.window,
		Epsilon:   r.det.Epsilon(),
		FairShare: r.det.FairShare(),
		Episodes:  r.det.Episodes(),
		Self:      r.self,
	}
	for i := range r.phases {
		r.phases[i].FromNs = int64(r.phases[i].From)
		r.phases[i].ToNs = int64(r.phases[i].To)
	}
	tr.Phases = r.phases
	for _, f := range specs {
		ft := FlowTelemetry{Name: f.Spec.Name, Cohort: f.Spec.Cohort}
		if fs := r.sampler.Flow(f.ID); fs != nil {
			ft.Windows = fs.Windows()
			ft.WindowsClosed = fs.Closed()
			ft.Evicted = fs.Evicted
			ft.MinRTT = fs.MinRTT()
			if n := fs.Len(); n > 0 {
				last := fs.At(n - 1)
				ft.LastRateBps = last.RateBps(r.window)
				ft.SRTT = last.MeanRTT()
				if ft.SRTT > ft.MinRTT && ft.MinRTT > 0 {
					ft.QueueDelay = ft.SRTT - ft.MinRTT
				}
			}
		}
		for _, ep := range tr.Episodes {
			if ep.Flow == f.ID {
				ft.Episodes++
				ft.StarvedTime += ep.Duration()
			}
		}
		tr.Flows = append(tr.Flows, ft)
	}
	return tr
}

// WriteTelemetryPrometheus renders a TelemetryResult in the Prometheus
// text exposition format, extending the counter registry's export with
// episode and series metrics (all HELP/TYPE-annotated; the exposition
// golden test pins the format).
func WriteTelemetryPrometheus(w io.Writer, tr *TelemetryResult) error {
	type metric struct {
		name, help, typ string
		value           func(*FlowTelemetry) float64
	}
	perFlow := []metric{
		{"starvesim_starvation_episodes_total", "Starvation episodes the online detector sealed for the flow.", "counter",
			func(f *FlowTelemetry) float64 { return float64(f.Episodes) }},
		{"starvesim_starved_seconds_total", "Virtual time the flow spent inside starvation episodes.", "counter",
			func(f *FlowTelemetry) float64 { return f.StarvedTime.Seconds() }},
		{"starvesim_telemetry_windows_closed_total", "Sampler windows closed for the flow.", "counter",
			func(f *FlowTelemetry) float64 { return float64(f.WindowsClosed) }},
		{"starvesim_telemetry_windows_evicted_total", "Sampler windows aged out of the flow's ring.", "counter",
			func(f *FlowTelemetry) float64 { return float64(f.Evicted) }},
		{"starvesim_flow_delivery_rate_bps", "Delivery (goodput) rate of the flow's last closed window.", "gauge",
			func(f *FlowTelemetry) float64 { return f.LastRateBps }},
		{"starvesim_flow_srtt_seconds", "Mean RTT sample of the flow's last closed window.", "gauge",
			func(f *FlowTelemetry) float64 { return f.SRTT.Seconds() }},
		{"starvesim_flow_queue_delay_seconds", "Smoothed RTT in excess of the flow's minimum RTT.", "gauge",
			func(f *FlowTelemetry) float64 { return f.QueueDelay.Seconds() }},
	}
	for _, m := range perFlow {
		if err := promHeader(w, m.name, m.help, m.typ); err != nil {
			return err
		}
		for i := range tr.Flows {
			f := &tr.Flows[i]
			name := f.Name
			if name == "" {
				name = fmt.Sprintf("flow%d", i)
			}
			if _, err := fmt.Fprintf(w, "%s{flow=%q} %s\n", m.name, name, promFloat(m.value(f))); err != nil {
				return err
			}
		}
	}
	globals := []struct {
		name, help, typ string
		value           float64
	}{
		{"starvesim_telemetry_window_seconds", "Sampler window stride.", "gauge", tr.Window.Seconds()},
		{"starvesim_telemetry_epsilon", "Starvation threshold as a fraction of fair share.", "gauge", tr.Epsilon},
		{"starvesim_fair_share_bps", "Per-flow fair share of the bottleneck.", "gauge", tr.FairShare},
		{"starvesim_self_ticks_total", "Self-telemetry samples taken.", "counter", float64(tr.Self.Ticks)},
		{"starvesim_self_sim_queue_max", "High-water mark of the simulator's pending-event queue.", "gauge", float64(tr.Self.SimQueueMax)},
		{"starvesim_self_heap_alloc_bytes", "Live heap at end of run (runtime.ReadMemStats, off the hot path).", "gauge", float64(tr.Self.HeapAllocBytes)},
	}
	for _, g := range globals {
		if err := promHeader(w, g.name, g.help, g.typ); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", g.name, promFloat(g.value)); err != nil {
			return err
		}
	}
	return nil
}

func promHeader(w io.Writer, name, help, typ string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	return err
}

// promFloat renders a value the exposition format accepts (no exponent
// surprises for integers, fixed precision otherwise).
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// telemetryString renders the per-flow episode timeline table appended to
// Result.String() when the flight recorder ran.
func (tr *TelemetryResult) String() string {
	out := fmt.Sprintf("telemetry: window %v  eps %.2g  fair %v  episodes %d\n",
		tr.Window, tr.Epsilon, units.Rate(tr.FairShare), len(tr.Episodes))
	if len(tr.Episodes) == 0 {
		return out
	}
	out += fmt.Sprintf("%-12s %10s %10s %10s %8s %9s %5s %6s\n",
		"flow", "onset", "end", "dur", "windows", "minshare", "sev", "fault")
	for i := range tr.Episodes {
		ep := &tr.Episodes[i]
		fault := "-"
		if ep.FaultAtOnset {
			fault = "burst"
		}
		end := ep.End.String()
		if ep.OpenAtEnd {
			end += "+"
		}
		out += fmt.Sprintf("%-12s %10v %10s %10v %8d %9.3f %5.2f %6s\n",
			ep.Name, ep.Onset, end, ep.Duration(), ep.Windows, ep.MinShare, ep.Severity, fault)
	}
	return out
}
