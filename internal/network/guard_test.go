package network

import (
	"reflect"
	"testing"
	"time"

	"starvation/internal/cca/vegas"
	"starvation/internal/guard"
	"starvation/internal/netem/faults"
	"starvation/internal/obs"
	"starvation/internal/units"
)

func vegasSpec(name string) FlowSpec {
	return FlowSpec{Name: name, Alg: vegas.New(vegas.Config{}), Rm: 50 * time.Millisecond}
}

// TestStalledFlowTripsWatchdog is the acceptance case for the progress
// watchdog: a flow whose every packet is dropped (LossProb 1) never
// delivers, so the stall sweep must flag it — while the conservation
// ledger still balances, because the gate reports its drops.
func TestStalledFlowTripsWatchdog(t *testing.T) {
	blackhole := vegasSpec("blackhole")
	blackhole.LossProb = 1
	n := New(
		Config{
			Rate: units.Mbps(12), Seed: 1,
			Guard: &guard.Options{StallK: 10, CheckEvery: 100 * time.Millisecond},
		},
		blackhole,
		vegasSpec("healthy"),
	)
	res := n.Run(5 * time.Second)
	if res.Guard == nil {
		t.Fatal("guarded run has no report")
	}
	var stalls []guard.Violation
	for _, v := range res.Guard.Violations {
		if v.Kind == "stall" {
			stalls = append(stalls, v)
		}
	}
	if len(stalls) == 0 {
		t.Fatalf("no stall violation for a 100%%-loss flow; report: %s", res.Guard)
	}
	for _, v := range stalls {
		if v.Flow != 0 {
			t.Errorf("stall on flow %d, want only the blackhole flow 0: %s", v.Flow, v)
		}
	}
	if err := res.Ledger.Check(); err != nil {
		t.Errorf("ledger unbalanced despite reported drops: %v", err)
	}
	if res.Flows[1].Stat.AckedBytes == 0 {
		t.Errorf("healthy flow made no progress")
	}
}

// TestWallClockDeadlineHaltsRun: a 1ns budget trips at the first watchdog
// check, cutting the run short with a structured deadline error.
func TestWallClockDeadlineHaltsRun(t *testing.T) {
	n := New(
		Config{Rate: units.Mbps(12), Seed: 1, Guard: &guard.Options{WallClock: time.Nanosecond}},
		vegasSpec("v0"),
	)
	res := n.Run(30 * time.Second)
	if res.Guard == nil || res.Guard.Err == nil {
		t.Fatal("no deadline error on a 1ns budget")
	}
	if res.Guard.Err.Kind != guard.KindDeadline {
		t.Errorf("Err.Kind = %q, want deadline", res.Guard.Err.Kind)
	}
	if res.Guard.Err.LastEvent == "" {
		t.Errorf("deadline error carries no last-event context")
	}
	if res.Guard.Ok() {
		t.Errorf("report Ok despite deadline")
	}
}

func faultySpecs() (Config, []FlowSpec) {
	impaired := vegasSpec("impaired")
	impaired.LossProb = 0.005
	impaired.Faults = &faults.Spec{
		GE:        &faults.GEConfig{PGoodToBad: 0.01, PBadToGood: 0.2, PDropBad: 0.5},
		Reorder:   &faults.ReorderConfig{P: 0.02, Delay: 4 * time.Millisecond},
		Duplicate: &faults.DupConfig{P: 0.01},
	}
	cfg := Config{
		Rate: units.Mbps(24), BufferBytes: 60 * 1500, Seed: 7,
		RateSchedule: faults.Flap(3*time.Second, 100*time.Millisecond),
	}
	return cfg, []FlowSpec{impaired, vegasSpec("clean")}
}

// TestFaultPipelineConserves: with every impairment element active at
// once — duplicator, reorderer, GE gate, Bernoulli gate, flapping link —
// the conservation ledger must still balance and the fault counters must
// show each element actually fired.
func TestFaultPipelineConserves(t *testing.T) {
	cfg, specs := faultySpecs()
	res := New(cfg, specs...).Run(12 * time.Second)
	if err := res.Ledger.Check(); err != nil {
		t.Fatalf("ledger: %v", err)
	}
	fc := res.Flows[0].Faults
	if fc.GEDropped == 0 || fc.GEBursts == 0 {
		t.Errorf("GE gate never fired: %+v", fc)
	}
	if fc.GateDropped == 0 {
		t.Errorf("Bernoulli gate never fired: %+v", fc)
	}
	if fc.Reordered == 0 || fc.Duplicated == 0 {
		t.Errorf("reorder/dup never fired: %+v", fc)
	}
	if res.Obs.Global.LinkRateChanges == 0 {
		t.Errorf("no link rate changes recorded under a flap schedule")
	}
	clean := res.Flows[1].Faults
	if clean != (FaultCounters{}) {
		t.Errorf("clean flow has fault counters %+v", clean)
	}
}

// TestFaultsDeterministic: the full fault pipeline is a pure function of
// the seed.
func TestFaultsDeterministic(t *testing.T) {
	run := func() *Result {
		cfg, specs := faultySpecs()
		return New(cfg, specs...).Run(8 * time.Second)
	}
	a, b := run(), run()
	for i := range a.Flows {
		if !reflect.DeepEqual(a.Flows[i].Stat, b.Flows[i].Stat) {
			t.Errorf("flow %d stats diverged:\n%+v\n%+v", i, a.Flows[i].Stat, b.Flows[i].Stat)
		}
		if a.Flows[i].Faults != b.Flows[i].Faults {
			t.Errorf("flow %d fault counters diverged: %+v vs %+v",
				i, a.Flows[i].Faults, b.Flows[i].Faults)
		}
	}
	if !reflect.DeepEqual(a.Ledger, b.Ledger) {
		t.Errorf("ledgers diverged:\n%+v\n%+v", a.Ledger, b.Ledger)
	}
}

// TestGuardsPreserveRealization is the bit-identity acceptance case: the
// guard layer observes but never steers, so flow-visible results must be
// byte-for-byte identical with guards on or off. Only the sim event-loop
// gauges may differ (the sweep itself is scheduled).
func TestGuardsPreserveRealization(t *testing.T) {
	run := func(g *guard.Options) *Result {
		cfg, specs := faultySpecs()
		cfg.Guard = g
		return New(cfg, specs...).Run(10 * time.Second)
	}
	off := run(nil)
	on := run(&guard.Options{CheckEvery: 250 * time.Millisecond})
	if on.Guard == nil {
		t.Fatal("guarded run has no report")
	}
	for i := range off.Flows {
		if !reflect.DeepEqual(off.Flows[i].Stat, on.Flows[i].Stat) {
			t.Errorf("flow %d stats differ with guards on:\n off %+v\n on  %+v",
				i, off.Flows[i].Stat, on.Flows[i].Stat)
		}
		if off.Flows[i].Faults != on.Flows[i].Faults {
			t.Errorf("flow %d fault counters differ with guards on", i)
		}
	}
	if !reflect.DeepEqual(off.Ledger, on.Ledger) {
		t.Errorf("ledger differs with guards on")
	}
	// The obs registries must agree except for the emission gauges: the
	// sim event-loop counts (the sweep schedules events) and the
	// CwndUpdates/RateSamples tallies, which count emitted probe events
	// and so exist only when a probe — here the guard monitor — is
	// installed. Every packet-visible counter must match exactly.
	a, b := off.Obs, on.Obs
	a.Global.SimEventsScheduled, b.Global.SimEventsScheduled = 0, 0
	a.Global.SimEventsFired, b.Global.SimEventsFired = 0, 0
	for _, s := range []*obs.Snapshot{&a, &b} {
		for i := range s.Flows {
			s.Flows[i].CwndUpdates = 0
			s.Flows[i].RateSamples = 0
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("obs snapshots differ with guards on:\n off %+v\n on  %+v", a, b)
	}
	if off.Dropped != on.Dropped || off.Delivered != on.Delivered || off.MaxQueue != on.MaxQueue {
		t.Errorf("link totals differ with guards on")
	}
}
