package packet

import "testing"

func TestPacketEnd(t *testing.T) {
	p := Packet{Seq: 3000, Size: 1500}
	if got := p.End(); got != 4500 {
		t.Errorf("End = %d, want 4500", got)
	}
	var zero Packet
	if zero.End() != 0 {
		t.Error("zero packet End != 0")
	}
}

func TestPacketIsValue(t *testing.T) {
	// Network elements copy packets freely; mutating a copy must not leak.
	p := Packet{Seq: 0, Size: 1500}
	q := p
	q.ECN = true
	q.Retx = true
	if p.ECN || p.Retx {
		t.Error("mutating a copy changed the original")
	}
}
