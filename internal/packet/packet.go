// Package packet defines the data and acknowledgment records exchanged
// between the emulated endpoints. Packets are value types: network elements
// copy them freely, so no aliasing bugs can leak state between flows.
package packet

import "time"

// FlowID identifies a flow within a scenario. Flows are numbered from 0 in
// the order they are added to the network.
type FlowID int

// Packet is a data segment in flight from a sender to a receiver.
type Packet struct {
	Flow FlowID
	// Seq is the byte offset of the first payload byte of this segment.
	Seq int64
	// Size is the segment size in bytes (header overhead is ignored; the
	// paper's model works in MTU-sized packets).
	Size int
	// SentAt is the sender timestamp, echoed on the ACK so the sender can
	// compute an exact RTT sample even across retransmissions.
	SentAt time.Duration
	// Retx marks a retransmitted segment.
	Retx bool
	// ECN is set by the bottleneck when the packet is marked (CE).
	ECN bool
	// Dup marks an extra copy created by a duplication element. Copies are
	// real traffic (they occupy the bottleneck and reach the receiver, which
	// ACKs them like any out-of-window arrival) but are excluded from
	// sent-packet accounting so conservation checks still balance.
	Dup bool
	// Hop counts the bottleneck links the packet has already departed on a
	// multi-link path (0 at the first link). Lifecycle events emitted past
	// the first hop carry it so registries do not re-count the packet as a
	// fresh sender transmission.
	Hop uint8
}

// End returns the byte offset just past this segment.
func (p Packet) End() int64 { return p.Seq + int64(p.Size) }

// Ack acknowledges received data back to the sender.
type Ack struct {
	Flow FlowID
	// CumAck is the next byte the receiver expects: all bytes below it have
	// been received.
	CumAck int64
	// SackSeq is the sequence number of the segment that triggered this ACK
	// (a one-block SACK analogue used for duplicate-ACK loss detection).
	SackSeq int64
	// EchoSentAt echoes Packet.SentAt of the triggering segment.
	EchoSentAt time.Duration
	// EchoRetx reports whether the triggering segment was a retransmission
	// (senders skip RTT sampling on those, Karn's rule).
	EchoRetx bool
	// RecvdAt is the receiver timestamp when the triggering segment arrived.
	RecvdAt time.Duration
	// Count is the number of segments this ACK covers (>1 for delayed or
	// aggregated ACKs).
	Count int
	// NewlyAcked is the number of payload bytes newly acknowledged relative
	// to the receiver's previous cumulative ACK. For ACKs of out-of-order
	// data this is 0.
	NewlyAcked int
	// Delivered is the cumulative count of distinct payload bytes the
	// receiver has accepted, in any order. Rate-based CCAs (PCC, BBR)
	// measure goodput from this, as their UDP-based implementations do,
	// so heavy loss does not stall their bandwidth signal the way
	// cumulative-ACK progress does.
	Delivered int64
	// ECE is the ECN echo: set when any covered segment was marked.
	ECE bool
}
