package sim

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// modelEvent mirrors one live scheduled event in the reference model of
// the property test: its absolute time, its FIFO tie-break rank, and the
// id its callback reports when it fires.
type modelEvent struct {
	at  Time
	seq uint64
	id  int
}

// TestPropertyScheduleCancelStepOrdering drives the pooled heap through
// randomized schedule/cancel/step interleavings against a brute-force
// reference model: whenever an event fires it must be exactly the live
// event with the smallest (at, seq) — the engine's determinism contract —
// including after cancellations have recycled arena slots mid-run.
func TestPropertyScheduleCancelStepOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1)
		var fired []int
		model := map[int]modelEvent{}
		handles := map[int]Handle{}
		nextID := 0
		var seq uint64 // mirrors the engine's schedule counter

		for op := 0; op < 2000; op++ {
			switch rng.Intn(5) {
			case 0, 1: // schedule
				d := time.Duration(rng.Intn(40)) * time.Millisecond
				id := nextID
				nextID++
				model[id] = modelEvent{at: s.Now() + d, seq: seq, id: id}
				handles[id] = s.After(d, func() { fired = append(fired, id) })
				seq++
			case 2: // cancel a live event (recycles its slot)
				for id := range model {
					handles[id].Cancel()
					delete(model, id)
					break
				}
			case 3: // stale cancel: a handle whose event fired or was cancelled
				for id, h := range handles {
					if _, live := model[id]; !live {
						h.Cancel() // must be a no-op on the pooled slot's new tenant
						break
					}
				}
			case 4: // step
				before := len(fired)
				stepped := s.Step()
				if stepped != (len(model) > 0) {
					return false
				}
				if !stepped {
					continue
				}
				if len(fired) != before+1 {
					return false
				}
				// The fired event must be the model's (at, seq) minimum.
				want := -1
				for id, ev := range model {
					if want == -1 {
						want = id
						continue
					}
					w := model[want]
					if ev.at < w.at || (ev.at == w.at && ev.seq < w.seq) {
						want = id
					}
				}
				got := fired[len(fired)-1]
				if got != want {
					return false
				}
				delete(model, got)
			}
			if s.Pending() != len(model) {
				return false
			}
		}
		// Drain: the remainder must fire in (at, seq) order.
		mark := len(fired)
		s.Run(time.Hour)
		tail := fired[mark:]
		if len(tail) != len(model) {
			return false
		}
		for i := 1; i < len(tail); i++ {
			a, b := model[tail[i-1]], model[tail[i]]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestStaleCancelAfterSlotReuse pins the generation-handle contract: a
// handle kept across its event's cancellation must not touch the slot's
// next tenant, even though the free list hands the same slot straight
// back to the next schedule.
func TestStaleCancelAfterSlotReuse(t *testing.T) {
	s := New(1)
	h1 := s.At(10*time.Millisecond, func() { t.Error("cancelled event fired") })
	slot1 := h1.slot
	h1.Cancel()

	fired := false
	h2 := s.At(20*time.Millisecond, func() { fired = true })
	if h2.slot != slot1 {
		t.Fatalf("free list did not recycle slot %d (got %d); test premise broken", slot1, h2.slot)
	}
	if h2.gen == h1.gen {
		t.Fatalf("slot reuse kept generation %d; stale handles would alias", h1.gen)
	}

	h1.Cancel() // stale: must not cancel h2's event
	if !h2.Pending() {
		t.Fatal("stale Cancel killed the slot's new tenant")
	}
	if h1.Pending() {
		t.Error("stale handle reports pending")
	}
	s.Run(time.Second)
	if !fired {
		t.Error("event on reused slot never fired")
	}
	if st := s.Stats(); st.Fired != 1 || st.Cancelled != 1 || st.Scheduled != 2 {
		t.Errorf("Stats = %+v, want fired=1 cancelled=1 scheduled=2", st)
	}
}

// TestStaleCancelAfterFireAndReuse is the same contract for the other
// release path: the slot of a fired event is recycled and the old handle
// must stay inert.
func TestStaleCancelAfterFireAndReuse(t *testing.T) {
	s := New(1)
	h1 := s.At(time.Millisecond, func() {})
	s.Run(5 * time.Millisecond)

	fired := false
	h2 := s.At(20*time.Millisecond, func() { fired = true })
	if h2.slot != h1.slot {
		t.Fatalf("expected fired slot %d to be recycled, got %d", h1.slot, h2.slot)
	}
	h1.Cancel()
	if !h2.Pending() {
		t.Fatal("stale Cancel (after fire) killed the slot's new tenant")
	}
	s.Run(time.Second)
	if !fired {
		t.Error("event on reused slot never fired")
	}
}

// TestCancelThenReuseInsideDispatch exercises slot recycling at its
// tightest: a firing event cancels a sibling and schedules a replacement,
// which must land on a recycled slot and still fire in correct order.
func TestCancelThenReuseInsideDispatch(t *testing.T) {
	s := New(1)
	var order []string
	var victim Handle
	victim = s.At(30*time.Millisecond, func() { order = append(order, "victim") })
	s.At(10*time.Millisecond, func() {
		victim.Cancel()
		s.At(20*time.Millisecond, func() { order = append(order, "replacement") })
	})
	s.At(25*time.Millisecond, func() { order = append(order, "mid") })
	s.Run(time.Second)
	if len(order) != 2 || order[0] != "replacement" || order[1] != "mid" {
		t.Errorf("order = %v, want [replacement mid]", order)
	}
}

// TestStepHonorsContext verifies the Step guard hole is closed: a dead
// context stops a Step-driven loop exactly as it stops Run.
func TestStepHonorsContext(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	s.SetContext(ctx)
	ran := 0
	s.After(0, func() { ran++ })
	s.After(time.Millisecond, func() { ran++ })
	if !s.Step() {
		t.Fatal("live context blocked Step")
	}
	cancel()
	if s.Step() {
		t.Error("Step fired an event under a cancelled context")
	}
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if !s.Interrupted() {
		t.Error("Interrupted() = false after cancelled Step loop")
	}
}

// TestStepHonorsWatchdog verifies a watchdog that demands a halt stops a
// Step-driven loop at its event-count cadence.
func TestStepHonorsWatchdog(t *testing.T) {
	s := New(1)
	s.Watchdog(4, func() bool { return s.Events() < 8 })
	for i := 0; i < 100; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	steps := 0
	for s.Step() {
		steps++
	}
	if steps != 8 {
		t.Errorf("Step loop fired %d events, want 8 (watchdog cadence 4, trip at 8)", steps)
	}
}
