package sim

import (
	"context"
	"testing"
	"time"
)

// TestRunContextCancel checks a cancelled context halts the loop at
// run-tick granularity: a self-rescheduling event chain that would fire
// forever stops within one check interval of the cancellation.
func TestRunContextCancel(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	s.SetContext(ctx)

	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired == 100 {
			cancel()
		}
		s.After(time.Microsecond, tick)
	}
	s.After(0, tick)
	s.Run(time.Hour) // would be ~3.6e9 events without the cancellation
	if fired > 100+ctxCheckEvery {
		t.Errorf("loop fired %d events after cancellation, want ≤ %d", fired-100, ctxCheckEvery)
	}
	if !s.Interrupted() {
		t.Errorf("Interrupted() = false after cancelled run")
	}
}

// TestRunContextPreCancelled checks a run whose context is already dead
// fires nothing.
func TestRunContextPreCancelled(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	ran := false
	s.After(0, func() { ran = true })
	s.Run(time.Second)
	if ran {
		t.Errorf("event fired under a pre-cancelled context")
	}
}

// TestRunContextDeterminism checks the cancellation hook is
// observation-only: with a live (never-cancelled) context installed, a
// run fires exactly the same events as without one.
func TestRunContextDeterminism(t *testing.T) {
	run := func(ctx context.Context) (fired uint64, rand int64) {
		s := New(42)
		if ctx != nil {
			s.SetContext(ctx)
		}
		var chain func()
		n := 0
		chain = func() {
			n++
			if n < 5000 {
				s.After(time.Duration(s.Rand().Intn(50))*time.Microsecond, chain)
			}
		}
		s.After(0, chain)
		s.Run(time.Second)
		return s.Events(), s.Rand().Int63()
	}
	f0, r0 := run(nil)
	f1, r1 := run(context.Background())
	if f0 != f1 || r0 != r1 {
		t.Errorf("installing a context perturbed the run: events %d vs %d, rng %d vs %d",
			f0, f1, r0, r1)
	}
}
