package sim

import "starvation/internal/packet"

// The event queue is an intrusive, index-based 4-ary min-heap over a pooled
// arena of event records. Three properties make it allocation-free on the
// hot path:
//
//   - Records live in one growable slice (the arena) and are recycled
//     through a free list after they fire or are cancelled, so scheduling
//     never allocates once the arena has reached the run's high-water mark.
//   - The heap orders int32 arena indices, not interface values, so there
//     is no container/heap boxing through `any` on push/pop.
//   - Each record stores its own heap position (intrusive), so Cancel
//     removes the record in O(log n) immediately instead of leaving a dead
//     corpse to be skipped at pop time.
//
// Handles carry {slot, generation}: the generation increments every time a
// slot returns to the free list, so a stale Cancel or Pending on a reused
// slot is detected and ignored without keeping the record alive.
//
// Ordering is (at, seq) with seq the global schedule counter — the exact
// FIFO tie-break of the previous container/heap implementation — so a
// fixed-seed run dispatches the identical event sequence.

// Payload kinds. A record carries either a plain thunk or a small typed
// payload (packet or ACK) with a matching handler, which lets hot call
// sites schedule without allocating a capturing closure per event.
const (
	kindFunc uint8 = iota
	kindPacket
	kindAck
)

const noSlot int32 = -1

// eventRec is one pooled event record. Only the fields selected by kind
// are meaningful; fn/pfn/afn are nilled when the slot is freed so the
// arena never pins a closure (and whatever it captures) beyond dispatch.
type eventRec struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps

	fn  func()              // kindFunc
	pfn func(packet.Packet) // kindPacket
	afn func(packet.Ack)    // kindAck
	pkt packet.Packet
	ack packet.Ack

	gen      uint32 // incremented on every free; stale-handle detection
	heapIdx  int32  // position in Simulator.heap; noSlot when not queued
	nextFree int32  // free-list link; meaningful only while free
	kind     uint8
}

// alloc takes a record slot from the free list, growing the arena when the
// list is empty. The returned record keeps its generation (bumped at free
// time), so handles minted against it are distinguishable from handles of
// the slot's previous lives.
func (s *Simulator) alloc() int32 {
	if s.freeHead != noSlot {
		slot := s.freeHead
		s.freeHead = s.arena[slot].nextFree
		return slot
	}
	s.arena = append(s.arena, eventRec{heapIdx: noSlot, nextFree: noSlot})
	return int32(len(s.arena) - 1)
}

// free returns a slot to the free list, invalidating all outstanding
// handles to it and dropping the handler reference.
func (s *Simulator) free(slot int32) {
	rec := &s.arena[slot]
	rec.gen++
	rec.heapIdx = noSlot
	switch rec.kind {
	case kindFunc:
		rec.fn = nil
	case kindPacket:
		rec.pfn = nil
	case kindAck:
		rec.afn = nil
	}
	rec.nextFree = s.freeHead
	s.freeHead = slot
}

// less orders slots by (at, seq). Both fields together are unique, so the
// order is total and the dispatch sequence is deterministic.
func (s *Simulator) less(a, b int32) bool {
	ra, rb := &s.arena[a], &s.arena[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	return ra.seq < rb.seq
}

// heapPush appends slot and restores the heap property.
func (s *Simulator) heapPush(slot int32) {
	s.heap = append(s.heap, slot)
	s.siftUp(len(s.heap) - 1)
}

// heapRemove deletes the element at heap position i (the intrusive analogue
// of container/heap.Remove): the last element replaces it and is sifted in
// whichever direction restores the invariant.
func (s *Simulator) heapRemove(i int32) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if int(i) == n {
		return
	}
	s.heap[i] = last
	s.arena[last].heapIdx = i
	s.siftDown(int(i))
	if s.arena[last].heapIdx == i {
		s.siftUp(int(i))
	}
}

func (s *Simulator) siftUp(i int) {
	slot := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(slot, s.heap[parent]) {
			break
		}
		moved := s.heap[parent]
		s.heap[i] = moved
		s.arena[moved].heapIdx = int32(i)
		i = parent
	}
	s.heap[i] = slot
	s.arena[slot].heapIdx = int32(i)
}

func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	slot := s.heap[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !s.less(s.heap[best], slot) {
			break
		}
		moved := s.heap[best]
		s.heap[i] = moved
		s.arena[moved].heapIdx = int32(i)
		i = best
	}
	s.heap[i] = slot
	s.arena[slot].heapIdx = int32(i)
}

// fireRoot dispatches the earliest event: it removes the root, frees its
// slot (so the record can be reused by anything the handler schedules), and
// invokes the handler. The caller guarantees the heap is non-empty.
func (s *Simulator) fireRoot() {
	slot := s.heap[0]
	rec := &s.arena[slot]
	s.now = rec.at
	s.fired++
	s.live--
	// Copy out by kind before freeing: the handler may schedule new events
	// that reuse this very slot (and growing the arena may move it).
	switch rec.kind {
	case kindFunc:
		fn := rec.fn
		s.heapRemove(0)
		s.free(slot)
		fn()
	case kindPacket:
		pfn, p := rec.pfn, rec.pkt
		s.heapRemove(0)
		s.free(slot)
		pfn(p)
	default: // kindAck
		afn, a := rec.afn, rec.ack
		s.heapRemove(0)
		s.free(slot)
		afn(a)
	}
}
