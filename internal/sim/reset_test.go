package sim

import (
	"testing"
	"time"
)

// eventLog runs a fixed little scenario on s and returns the dispatch
// order with timestamps and RNG draws folded in — any divergence between
// a fresh and a reset simulator shows up here.
func eventLog(s *Simulator) []int64 {
	var log []int64
	note := func(tag int64) {
		log = append(log, tag, int64(s.Now()), s.rng.Int63n(1000))
	}
	s.At(3*time.Millisecond, func() { note(1) })
	s.At(1*time.Millisecond, func() {
		note(2)
		s.After(4*time.Millisecond, func() { note(3) })
	})
	h := s.At(2*time.Millisecond, func() { note(4) })
	s.At(2*time.Millisecond, func() { note(5) }) // FIFO tie with the cancelled one
	h.Cancel()
	s.Run(10 * time.Millisecond)
	st := s.Stats()
	return append(log, int64(st.Scheduled), int64(st.Fired), int64(st.Cancelled), int64(st.Live))
}

// TestSimulatorResetEquivalence pins the reset contract: a simulator that
// has already run (growing its arena and heap) and is then Reset(seed)
// dispatches the identical event sequence, with identical RNG draws and
// identical counters, as New(seed).
func TestSimulatorResetEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		want := eventLog(New(seed))
		reused := New(99)
		_ = eventLog(reused) // dirty it with a different seed's run
		reused.Reset(seed)
		got := eventLog(reused)
		if len(got) != len(want) {
			t.Fatalf("seed %d: log length %d != %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: log[%d] = %d, want %d (reset diverged from fresh)", seed, i, got[i], want[i])
			}
		}
	}
}

// TestResetInvalidatesHandles pins the stale-handle safety: handles minted
// before Reset must be inert afterward — Pending reports false, Cancel is
// a no-op that cannot touch (or panic on) the recycled arena.
func TestResetInvalidatesHandles(t *testing.T) {
	s := New(1)
	fired := 0
	h1 := s.At(time.Millisecond, func() { fired++ })
	h2 := s.At(2*time.Millisecond, func() { fired++ })
	s.Run(1500 * time.Microsecond) // h1 fires, h2 still pending
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	s.Reset(1)
	for _, h := range []Handle{h1, h2} {
		if h.Pending() {
			t.Error("stale handle pending after Reset")
		}
		h.Cancel() // must be a no-op, not a heap corruption or panic
	}
	// The recycled arena must still work: schedule into the same slots.
	ran := false
	s.At(time.Millisecond, func() { ran = true })
	s.Run(2 * time.Millisecond)
	if !ran {
		t.Error("event scheduled after Reset did not fire")
	}
	if got := s.Stats(); got.Scheduled != 1 || got.Fired != 1 || got.Cancelled != 0 {
		t.Errorf("counters after reset run: %+v", got)
	}
}

// TestResetClearsWatchdogAndContext pins that Reset removes the watchdog
// and context like a fresh simulator.
func TestResetClearsWatchdogAndContext(t *testing.T) {
	s := New(3)
	s.Watchdog(1, func() bool { return false })
	s.At(time.Millisecond, func() {})
	s.Run(time.Millisecond)
	s.Reset(3)
	n := 0
	s.At(time.Millisecond, func() { n++ })
	s.At(2*time.Millisecond, func() { n++ })
	s.Run(5 * time.Millisecond)
	if n != 2 {
		t.Errorf("watchdog survived Reset: %d of 2 events fired", n)
	}
	if s.Interrupted() {
		t.Error("context survived Reset")
	}
}
