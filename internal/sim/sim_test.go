package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(time.Second)
	if !sort.IntsAreSorted(got) {
		t.Errorf("equal-timestamp events fired out of scheduling order: %v", got)
	}
}

func TestAfterRelativeToNow(t *testing.T) {
	s := New(1)
	var at Time
	s.At(5*time.Millisecond, func() {
		s.After(3*time.Millisecond, func() { at = s.Now() })
	})
	s.Run(time.Second)
	if at != 8*time.Millisecond {
		t.Errorf("After fired at %v, want 8ms", at)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run(time.Millisecond)
	if !fired {
		t.Error("negative After never fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5*time.Millisecond, func() {})
	})
	s.Run(time.Second)
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	h := s.At(10*time.Millisecond, func() { fired = true })
	if !h.Pending() {
		t.Error("handle should be pending before firing")
	}
	h.Cancel()
	s.Run(time.Second)
	if fired {
		t.Error("cancelled event fired")
	}
	if h.Pending() {
		t.Error("cancelled handle still pending")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New(1)
	h := s.At(time.Millisecond, func() {})
	s.Run(time.Second)
	h.Cancel() // must not panic or corrupt state
	if h.Pending() {
		t.Error("fired handle reports pending")
	}
}

func TestZeroHandleSafe(t *testing.T) {
	var h Handle
	h.Cancel()
	if h.Pending() {
		t.Error("zero handle reports pending")
	}
}

func TestRunHorizonStopsAndAdvancesClock(t *testing.T) {
	s := New(1)
	fired := false
	s.At(2*time.Second, func() { fired = true })
	s.Run(time.Second)
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != time.Second {
		t.Errorf("clock = %v, want horizon 1s", s.Now())
	}
	// Resume: the event is still queued.
	s.Run(3 * time.Second)
	if !fired {
		t.Error("event not fired after extending horizon")
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run(time.Second)
	if count != 3 {
		t.Errorf("events fired = %d, want 3 (halted)", count)
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	n := 0
	s.At(time.Millisecond, func() { n++ })
	s.At(2*time.Millisecond, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	s := New(1)
	h := s.At(time.Millisecond, func() { t.Error("cancelled event ran") })
	fired := false
	s.At(2*time.Millisecond, func() { fired = true })
	h.Cancel()
	if !s.Step() || !fired {
		t.Error("Step did not skip cancelled event")
	}
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	h1 := s.At(time.Millisecond, func() {})
	s.At(2*time.Millisecond, func() {})
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
	h1.Cancel()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending after cancel = %d, want 1", got)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestEventCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run(time.Second)
	if s.Events() != 5 {
		t.Errorf("Events = %d, want 5", s.Events())
	}
}

// Property: N events scheduled at random times fire in non-decreasing time
// order, and every event fires exactly once.
func TestQuickRandomScheduleOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1)
		const n = 200
		var times []Time
		for i := 0; i < n; i++ {
			at := time.Duration(rng.Intn(1000)) * time.Millisecond
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run(2 * time.Second)
		if len(times) != n {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: nested scheduling (events scheduling events) preserves causal
// order: a child never fires before its parent.
func TestQuickNestedCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1)
		ok := true
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth == 0 {
				return
			}
			parent := s.Now()
			s.After(time.Duration(rng.Intn(10))*time.Millisecond, func() {
				if s.Now() < parent {
					ok = false
				}
				spawn(depth - 1)
			})
		}
		s.At(0, func() { spawn(20) })
		s.Run(time.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestStatsAndLiveCounter exercises the O(1) Pending bookkeeping across
// schedule, double-cancel, cancel-after-fire, and dispatch.
func TestStatsAndLiveCounter(t *testing.T) {
	s := New(1)
	h1 := s.At(time.Millisecond, func() {})
	h2 := s.At(2*time.Millisecond, func() {})
	s.At(3*time.Millisecond, func() {})
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	h2.Cancel()
	h2.Cancel() // double cancel must not double-decrement
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending after cancel = %d, want 2", got)
	}
	s.Run(time.Second)
	h1.Cancel() // cancelling a fired event is a no-op for the counters
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending after run = %d, want 0", got)
	}
	st := s.Stats()
	if st.Scheduled != 3 || st.Fired != 2 || st.Cancelled != 1 || st.Live != 0 {
		t.Errorf("Stats = %+v, want {3 2 1 0}", st)
	}
}

// TestPendingMatchesQueueScan cross-checks the maintained counter against a
// brute-force scan under a random schedule/cancel/step workload. Cancelled
// events leave the heap eagerly, so every heap entry is live; the scan also
// verifies the heap/arena cross-links and that heap plus free list account
// for every arena slot.
func TestPendingMatchesQueueScan(t *testing.T) {
	s := New(7)
	rng := rand.New(rand.NewSource(99))
	var handles []Handle
	for i := 0; i < 500; i++ {
		switch rng.Intn(3) {
		case 0:
			handles = append(handles, s.After(time.Duration(rng.Intn(50))*time.Millisecond, func() {}))
		case 1:
			if len(handles) > 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		case 2:
			s.Step()
		}
		if len(s.heap) != s.Pending() {
			t.Fatalf("step %d: Pending = %d, heap len = %d", i, s.Pending(), len(s.heap))
		}
		for pos, slot := range s.heap {
			if got := s.arena[slot].heapIdx; got != int32(pos) {
				t.Fatalf("step %d: slot %d at heap pos %d records heapIdx %d", i, slot, pos, got)
			}
		}
		free := 0
		for f := s.freeHead; f != noSlot; f = s.arena[f].nextFree {
			free++
		}
		if free+len(s.heap) != len(s.arena) {
			t.Fatalf("step %d: %d free + %d queued != %d arena slots", i, free, len(s.heap), len(s.arena))
		}
	}
}
