package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleAndFire measures raw event-loop throughput: one
// schedule + one dispatch per operation.
func BenchmarkScheduleAndFire(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

// BenchmarkDeepQueue measures heap behaviour with many pending events.
func BenchmarkDeepQueue(b *testing.B) {
	s := New(1)
	const depth = 10000
	for i := 0; i < depth; i++ {
		s.At(time.Duration(i)*time.Millisecond, func() {})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.At(time.Duration(depth+i)*time.Millisecond, func() {})
		s.Step()
	}
}

// BenchmarkSelfScheduling measures the common element pattern: each event
// schedules its successor (timers, pacing wheels).
func BenchmarkSelfScheduling(b *testing.B) {
	s := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(100*time.Microsecond, tick)
		}
	}
	b.ReportAllocs()
	s.After(0, tick)
	s.Run(time.Duration(b.N+1) * time.Millisecond)
	if n < b.N {
		b.Fatalf("ticked %d, want %d", n, b.N)
	}
}
