// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate for the link emulator: every network element
// (bottleneck queue, delay boxes, endpoints) schedules callbacks on a shared
// virtual clock. Events with equal timestamps fire in scheduling order, so a
// run is a pure function of the scenario configuration and its RNG seeds.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// Event is a scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   func()
	sim  *Simulator
	dead bool
	idx  int
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	ev := h.ev
	if ev == nil || ev.dead {
		return
	}
	ev.dead = true
	if ev.idx >= 0 {
		// Still in the queue: it leaves the live population now; the heap
		// pop that eventually discards the corpse must not count it again.
		ev.sim.live--
		ev.sim.cancelled++
	}
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool { return h.ev != nil && !h.ev.dead && h.ev.idx >= 0 }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now       Time
	queue     eventHeap
	seq       uint64
	fired     uint64
	cancelled uint64
	live      int // scheduled and not yet fired or cancelled
	rng       *rand.Rand
	halted    bool

	wdEvery uint64
	wdFn    func() bool

	ctx context.Context
}

// New returns a simulator whose RNG is seeded with seed. All stochastic
// behaviour in a scenario must draw from Rand() (or from generators derived
// from it) so runs are reproducible.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Events returns the number of events fired so far (useful for benchmarks).
func (s *Simulator) Events() uint64 { return s.fired }

// Stats summarizes event-loop activity for observability snapshots.
type Stats struct {
	Scheduled uint64 // events ever scheduled
	Fired     uint64 // events executed
	Cancelled uint64 // events cancelled while still queued
	Live      int    // events currently awaiting dispatch
}

// Stats returns the event-loop counters.
func (s *Simulator) Stats() Stats {
	return Stats{Scheduled: s.seq, Fired: s.fired, Cancelled: s.cancelled, Live: s.live}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a network element.
func (s *Simulator) At(t Time, fn func()) Handle {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn, sim: s}
	s.seq++
	s.live++
	heap.Push(&s.queue, ev)
	return Handle{ev}
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Halt stops the run loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// ctxCheckEvery is the event-count cadence of the cancellation check:
// frequent enough that a cancelled run stops within microseconds of real
// time, rare enough that the atomic ctx.Err() load never shows up in
// profiles.
const ctxCheckEvery = 1024

// SetContext installs ctx as the run's cancellation signal: Run halts
// within ctxCheckEvery fired events of ctx being cancelled. The check
// only reads ctx.Err() — it schedules nothing and draws no randomness —
// so a run with a context is event-for-event identical to one without
// until the moment of cancellation. A nil ctx removes the check.
func (s *Simulator) SetContext(ctx context.Context) { s.ctx = ctx }

// Interrupted reports whether the installed context has been cancelled
// (the run, if halted, was cut short rather than completed).
func (s *Simulator) Interrupted() bool { return s.ctx != nil && s.ctx.Err() != nil }

// Watchdog installs fn to be consulted every everyN fired events during
// Run; returning false halts the run. The cadence is event count rather
// than virtual time so a livelocked run (events firing without the clock
// advancing) still reaches the watchdog. Watchdog calls schedule nothing
// and draw no randomness, so enabling one never perturbs a realization.
// A nil fn (or everyN of 0) removes the watchdog.
func (s *Simulator) Watchdog(everyN uint64, fn func() bool) {
	if everyN == 0 {
		fn = nil
	}
	s.wdEvery = everyN
	s.wdFn = fn
}

// Run executes events until the queue is empty, the horizon is reached, or
// Halt is called. The clock is left at the later of its current value and
// the horizon (when the horizon terminated the run).
func (s *Simulator) Run(horizon Time) {
	s.halted = false
	if s.ctx != nil && s.ctx.Err() != nil {
		s.halted = true
	}
	for len(s.queue) > 0 && !s.halted {
		ev := s.queue[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&s.queue)
		if ev.dead {
			continue // already uncounted at Cancel time
		}
		s.now = ev.at
		s.fired++
		s.live--
		ev.fn()
		if s.wdFn != nil && s.fired%s.wdEvery == 0 && !s.wdFn() {
			s.halted = true
		}
		if s.ctx != nil && s.fired%ctxCheckEvery == 0 && s.ctx.Err() != nil {
			s.halted = true
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Step executes exactly one pending event (skipping cancelled ones) and
// reports whether an event fired.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.fired++
		s.live--
		ev.fn()
		return true
	}
	return false
}

// Pending returns the number of live events in the queue. It is O(1): the
// simulator maintains the count across schedule, cancel, and dispatch, so
// elements may poll it in hot paths.
func (s *Simulator) Pending() int { return s.live }
