// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine is the substrate for the link emulator: every network element
// (bottleneck queue, delay boxes, endpoints) schedules callbacks on a shared
// virtual clock. Events with equal timestamps fire in scheduling order, so a
// run is a pure function of the scenario configuration and its RNG seeds.
//
// The event queue is allocation-free on the hot path: records live in a
// pooled arena ordered by an intrusive 4-ary min-heap (see queue.go), and
// the typed entry points (AtPacket/AfterPacket, AtAck/AfterAck) carry a
// packet or ACK payload inline in the record so per-packet call sites need
// no capturing closure.
package sim

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"starvation/internal/packet"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// Handle identifies a scheduled event so it can be cancelled. It names the
// event by arena slot plus the slot's generation at scheduling time, so a
// Handle outliving its event (fired or cancelled, slot since reused) is
// detected as stale and every operation on it is a no-op.
type Handle struct {
	s    *Simulator
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing, releasing its record immediately.
// Cancelling an already-fired or already-cancelled event is a no-op.
func (h Handle) Cancel() {
	s := h.s
	if s == nil {
		return
	}
	rec := &s.arena[h.slot]
	if rec.gen != h.gen {
		return // stale: the event fired or was cancelled, slot may be reused
	}
	s.heapRemove(rec.heapIdx)
	s.free(h.slot)
	s.live--
	s.cancelled++
}

// Pending reports whether the event is still scheduled to fire.
func (h Handle) Pending() bool {
	return h.s != nil && h.s.arena[h.slot].gen == h.gen
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now       Time
	arena     []eventRec // pooled event records
	heap      []int32    // 4-ary min-heap of arena indices, ordered by (at, seq)
	freeHead  int32      // head of the free-slot list (noSlot when empty)
	seq       uint64
	fired     uint64
	cancelled uint64
	live      int // scheduled and not yet fired or cancelled
	rng       *rand.Rand
	halted    bool

	wdEvery uint64
	wdFn    func() bool

	ctx context.Context
}

// New returns a simulator whose RNG is seeded with seed. All stochastic
// behaviour in a scenario must draw from Rand() (or from generators derived
// from it) so runs are reproducible.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), freeHead: noSlot}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Events returns the number of events fired so far (useful for benchmarks).
func (s *Simulator) Events() uint64 { return s.fired }

// Stats summarizes event-loop activity for observability snapshots.
type Stats struct {
	Scheduled uint64 // events ever scheduled
	Fired     uint64 // events executed
	Cancelled uint64 // events cancelled while still queued
	Live      int    // events currently awaiting dispatch
}

// Stats returns the event-loop counters.
func (s *Simulator) Stats() Stats {
	return Stats{Scheduled: s.seq, Fired: s.fired, Cancelled: s.cancelled, Live: s.live}
}

// schedule claims a pooled record for an event at t and queues it. The
// caller fills the kind-specific payload fields of the returned record;
// this is safe because nothing can run between schedule and that fill.
func (s *Simulator) schedule(t Time) (int32, *eventRec) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	slot := s.alloc()
	rec := &s.arena[slot]
	rec.at = t
	rec.seq = s.seq
	s.seq++
	s.live++
	s.heapPush(slot)
	return slot, rec
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: that is always a logic error in a network element.
func (s *Simulator) At(t Time, fn func()) Handle {
	slot, rec := s.schedule(t)
	rec.kind = kindFunc
	rec.fn = fn
	return Handle{s, slot, rec.gen}
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtPacket schedules fn(p) at absolute virtual time t. The packet rides
// inline in the pooled event record, so a call site that passes a stored
// handler (rather than constructing a closure) schedules without
// allocating.
func (s *Simulator) AtPacket(t Time, fn func(packet.Packet), p packet.Packet) Handle {
	slot, rec := s.schedule(t)
	rec.kind = kindPacket
	rec.pfn = fn
	rec.pkt = p
	return Handle{s, slot, rec.gen}
}

// AfterPacket schedules fn(p) to run d after the current virtual time.
func (s *Simulator) AfterPacket(d time.Duration, fn func(packet.Packet), p packet.Packet) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtPacket(s.now+d, fn, p)
}

// AtAck schedules fn(a) at absolute virtual time t, the ACK-path analogue
// of AtPacket.
func (s *Simulator) AtAck(t Time, fn func(packet.Ack), a packet.Ack) Handle {
	slot, rec := s.schedule(t)
	rec.kind = kindAck
	rec.afn = fn
	rec.ack = a
	return Handle{s, slot, rec.gen}
}

// AfterAck schedules fn(a) to run d after the current virtual time.
func (s *Simulator) AfterAck(d time.Duration, fn func(packet.Ack), a packet.Ack) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtAck(s.now+d, fn, a)
}

// Halt stops the run loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// ctxCheckEvery is the event-count cadence of the cancellation check:
// frequent enough that a cancelled run stops within microseconds of real
// time, rare enough that the atomic ctx.Err() load never shows up in
// profiles.
const ctxCheckEvery = 1024

// SetContext installs ctx as the run's cancellation signal: Run halts
// within ctxCheckEvery fired events of ctx being cancelled. The check
// only reads ctx.Err() — it schedules nothing and draws no randomness —
// so a run with a context is event-for-event identical to one without
// until the moment of cancellation. A nil ctx removes the check.
func (s *Simulator) SetContext(ctx context.Context) { s.ctx = ctx }

// Interrupted reports whether the installed context has been cancelled
// (the run, if halted, was cut short rather than completed).
func (s *Simulator) Interrupted() bool { return s.ctx != nil && s.ctx.Err() != nil }

// Watchdog installs fn to be consulted every everyN fired events during
// Run; returning false halts the run. The cadence is event count rather
// than virtual time so a livelocked run (events firing without the clock
// advancing) still reaches the watchdog. Watchdog calls schedule nothing
// and draw no randomness, so enabling one never perturbs a realization.
// A nil fn (or everyN of 0) removes the watchdog.
func (s *Simulator) Watchdog(everyN uint64, fn func() bool) {
	if everyN == 0 {
		fn = nil
	}
	s.wdEvery = everyN
	s.wdFn = fn
}

// guardsTripped applies the watchdog and context checks at their event-
// count cadences; it reports whether either demands a halt. Shared by Run
// and Step so a Step-driven loop honors the same guards as Run.
func (s *Simulator) guardsTripped() bool {
	if s.wdFn != nil && s.fired%s.wdEvery == 0 && !s.wdFn() {
		return true
	}
	if s.ctx != nil && s.fired%ctxCheckEvery == 0 && s.ctx.Err() != nil {
		return true
	}
	return false
}

// Run executes events until the queue is empty, the horizon is reached, or
// Halt is called. The clock is left at the later of its current value and
// the horizon (when the horizon terminated the run).
func (s *Simulator) Run(horizon Time) {
	s.halted = false
	if s.ctx != nil && s.ctx.Err() != nil {
		s.halted = true
	}
	for len(s.heap) > 0 && !s.halted {
		if s.arena[s.heap[0]].at > horizon {
			break
		}
		s.fireRoot()
		if s.guardsTripped() {
			s.halted = true
		}
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Step executes exactly one pending event and reports whether an event
// fired. It honors the same guards as Run: a cancelled context stops the
// loop before the next event fires, the watchdog is consulted at its usual
// event-count cadence, and a halted simulator (Halt, a tripped watchdog, or
// a dead context) steps no further — so a Step-driven driver cannot bypass
// the protections a Run-driven one gets. Run resets the halt latch on
// entry, as before.
func (s *Simulator) Step() bool {
	if s.ctx != nil && s.ctx.Err() != nil {
		s.halted = true
	}
	if s.halted || len(s.heap) == 0 {
		return false
	}
	s.fireRoot()
	if s.guardsTripped() {
		s.halted = true
	}
	return true
}

// Pending returns the number of live events in the queue. It is O(1): the
// simulator maintains the count across schedule, cancel, and dispatch, so
// elements may poll it in hot paths.
func (s *Simulator) Pending() int { return s.live }

// Reset returns the simulator to the state New(seed) would produce while
// keeping the arena and heap capacity, so a reused simulator schedules
// allocation-free up to the previous run's high-water mark.
//
// Every arena record's generation is bumped, which invalidates every
// outstanding Handle: a stale Cancel or Pending after Reset is a safe
// no-op, exactly as if the event had fired. (Truncating the arena instead
// would restart generations and let a pre-reset handle collide with a
// fresh event in the same slot.) The free list is rebuilt in ascending
// slot order so a reset simulator assigns slots in the same order a fresh
// one does.
func (s *Simulator) Reset(seed int64) {
	for i := range s.arena {
		rec := &s.arena[i]
		rec.gen++
		rec.fn, rec.pfn, rec.afn = nil, nil, nil
		rec.heapIdx = noSlot
		rec.nextFree = int32(i + 1)
	}
	if n := len(s.arena); n > 0 {
		s.arena[n-1].nextFree = noSlot
		s.freeHead = 0
	} else {
		s.freeHead = noSlot
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq, s.fired, s.cancelled = 0, 0, 0
	s.live = 0
	s.rng.Seed(seed)
	s.halted = false
	s.wdEvery, s.wdFn = 0, nil
	s.ctx = nil
}
