package ccac

import (
	"testing"
)

func TestAIMDBoundedWithoutInjection(t *testing.T) {
	// The Appendix C claim: over 10-RTT traces with a 1-BDP buffer and
	// losses only from overflow, two AIMD flows cannot be starved — the
	// worst cumulative ratio the adversary can force is bounded.
	res := Search(Params{CPkts: 20, BufferPkts: 20, Depth: 10})
	t.Logf("\n%s", res)
	if res.MaxRatio > 25 {
		t.Errorf("worst ratio %.1f suggests unbounded starvation; "+
			"AIMD under pure overflow loss must stay bounded", res.MaxRatio)
	}
	if res.StatesExplored < 100 {
		t.Errorf("suspiciously small search: %d nodes", res.StatesExplored)
	}
}

func TestAIMDRatioDoesNotGrowWithDepth(t *testing.T) {
	// Starvation per Definition 3 means no finite s bounds the ratio as
	// time grows. For overflow-only AIMD the worst ratio must flatten
	// with depth (the faster flow's own overflow losses give the slower
	// one room — the §5.4 argument).
	r8 := Search(Params{CPkts: 16, BufferPkts: 16, Depth: 8})
	r12 := Search(Params{CPkts: 16, BufferPkts: 16, Depth: 12})
	t.Logf("depth 8: %.2f, depth 12: %.2f", r8.MaxRatio, r12.MaxRatio)
	if r12.MaxRatio > r8.MaxRatio*2 {
		t.Errorf("ratio grows with depth (%.1f -> %.1f): unbounded unfairness",
			r8.MaxRatio, r12.MaxRatio)
	}
}

func TestInjectedLossEnablesStarvation(t *testing.T) {
	// With per-step non-congestive loss against one flow (§5.4's random
	// loss), the adversary can pin flow 1 at its window floor while flow
	// 2 grows: the worst ratio must far exceed the overflow-only bound
	// and keep growing with depth.
	clean := Search(Params{CPkts: 20, BufferPkts: 20, Depth: 10})
	inj := Search(Params{CPkts: 20, BufferPkts: 20, Depth: 10, InjectLoss: true})
	t.Logf("clean %.2f vs injected %.2f", clean.MaxRatio, inj.MaxRatio)
	if inj.MaxRatio <= clean.MaxRatio {
		t.Errorf("loss injection did not worsen the ratio: %.1f vs %.1f",
			inj.MaxRatio, clean.MaxRatio)
	}
	deeper := Search(Params{CPkts: 20, BufferPkts: 20, Depth: 14, InjectLoss: true})
	if deeper.MaxRatio <= inj.MaxRatio {
		t.Errorf("injected-loss ratio did not grow with depth: %.1f vs %.1f",
			deeper.MaxRatio, inj.MaxRatio)
	}
}

func TestWitnessTraceIsConsistent(t *testing.T) {
	res := Search(Params{CPkts: 20, BufferPkts: 20, Depth: 10, InjectLoss: true})
	if len(res.WorstTrace) != 10 {
		t.Fatalf("witness length %d, want 10", len(res.WorstTrace))
	}
	// Replay the trace and verify the recorded states follow the model.
	p := Params{CPkts: 20, BufferPkts: 20, Depth: 10, InjectLoss: true}
	st := res.WorstTrace[0].State
	for i, step := range res.WorstTrace {
		if step.State != st {
			t.Fatalf("step %d state %+v, replay %+v", i, step.State, st)
		}
		served := min(st.W1+st.W2+st.Q, p.CPkts)
		st = applyAIMD(st, step.Victim, step.Injected, served, p)
	}
}

func TestDefaults(t *testing.T) {
	res := Search(Params{})
	if res.MaxRatio <= 0 {
		t.Error("default search produced no ratio")
	}
	states := DefaultInitialStates(20, 20)
	if len(states) == 0 {
		t.Error("no default initial states")
	}
	for _, s := range states {
		if s.W1 < 1 || s.W2 < 1 || s.Q < 0 {
			t.Errorf("invalid default state %+v", s)
		}
	}
}
