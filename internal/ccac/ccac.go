// Package ccac is this repository's stand-in for the paper's Appendix C
// extension of the CCAC verifier to multiple flows. CCAC encodes network
// behaviour as SMT constraints and asks a solver for a counterexample
// trace; offline and stdlib-only, we instead exhaustively search a coarse
// discrete relaxation of the same two-flow model over all adversary
// strategies up to a bounded trace length.
//
// The model matches §5.4's setting: two AIMD flows share a drop-tail FIFO
// with a 1-BDP buffer. Time advances in RTT-sized steps; each flow
// transmits its window per step and grows by one packet per RTT unless it
// lost a packet, in which case it halves. The adversary's power is the
// model's knob:
//
//   - OverflowChoice: when the buffer overflows, the adversary picks which
//     flow's packets are at the tail (burstiness, delayed ACKs — the Fig. 7
//     mechanism). The paper's claim, verified by CCAC for 10-RTT traces,
//     is that this unfairness is bounded: AIMD does not starve.
//   - InjectLoss: the adversary may additionally hand one flow a
//     non-congestive loss each step (§5.4's random-loss element). Here
//     starvation is achievable, and the search finds the witness trace.
package ccac

import (
	"fmt"
	"strings"
)

// Params configures the bounded search.
type Params struct {
	// CPkts is the link capacity in packets per RTT step.
	CPkts int
	// BufferPkts is the drop-tail queue bound (1 BDP = CPkts).
	BufferPkts int
	// Depth is the trace length in RTT steps (CCAC used 10).
	Depth int
	// InjectLoss grants the adversary per-step non-congestive loss
	// against flow 1.
	InjectLoss bool
	// InitialStates optionally overrides the searched start states.
	InitialStates []State
}

// State is one configuration of the discrete two-flow system.
type State struct {
	W1, W2 int // congestion windows in packets
	Q      int // queue occupancy in packets
}

// Step records one transition of the worst-case trace.
type Step struct {
	State
	// Victim reports the adversary's choice: 0 none, 1 flow1, 2 flow2,
	// 3 both (overflow split).
	Victim int
	// Injected marks a non-congestive loss given to flow 1.
	Injected bool
	// Got1 and Got2 are the packets delivered this step.
	Got1, Got2 int
}

// Result is the outcome of a bounded search.
type Result struct {
	// MaxRatio is the worst cumulative throughput ratio (flow2 over
	// flow1) over every adversary strategy and initial state explored.
	MaxRatio float64
	// WorstTrace is a witness achieving MaxRatio.
	WorstTrace []Step
	// WorstStart is the initial state of the witness.
	WorstStart State
	// StatesExplored counts visited search nodes.
	StatesExplored int
}

// DefaultInitialStates returns a representative set of starting conditions,
// including the adversarial one where flow 2 owns the whole pipe.
func DefaultInitialStates(cPkts, buffer int) []State {
	return []State{
		{W1: 1, W2: 1, Q: 0},                  // both starting
		{W1: cPkts / 2, W2: cPkts / 2, Q: 0},  // converged fair share
		{W1: 1, W2: cPkts + buffer - 1, Q: 0}, // late joiner vs hog
		{W1: 1, W2: cPkts, Q: buffer / 2},     // hog with standing queue
		{W1: cPkts / 4, W2: 3 * cPkts / 4, Q: 0},
	}
}

// Search exhaustively explores every adversary strategy from every initial
// state up to Depth steps and returns the worst cumulative throughput
// ratio. Branching occurs only where the adversary has a choice, so the
// tree stays small even at useful depths.
func Search(p Params) *Result {
	if p.CPkts <= 0 {
		p.CPkts = 20
	}
	if p.BufferPkts <= 0 {
		p.BufferPkts = p.CPkts // 1 BDP
	}
	if p.Depth <= 0 {
		p.Depth = 10
	}
	inits := p.InitialStates
	if inits == nil {
		inits = DefaultInitialStates(p.CPkts, p.BufferPkts)
	}
	res := &Result{}
	for _, st := range inits {
		trace := make([]Step, 0, p.Depth)
		explore(p, st, 0, 0, 0, trace, res)
	}
	return res
}

// explore runs the DFS. cum1/cum2 accumulate delivered packets.
func explore(p Params, st State, depth, cum1, cum2 int, trace []Step, res *Result) {
	res.StatesExplored++
	if depth == p.Depth {
		ratio := cumulativeRatio(cum1, cum2, p)
		if ratio > res.MaxRatio {
			res.MaxRatio = ratio
			res.WorstTrace = append([]Step(nil), trace...)
			if len(trace) == p.Depth && p.Depth > 0 {
				res.WorstStart = trace[0].State
			}
		}
		return
	}

	injections := []bool{false}
	if p.InjectLoss {
		injections = []bool{false, true}
	}
	for _, inject := range injections {
		arrivals := st.W1 + st.W2
		served := min(arrivals+st.Q, p.CPkts)
		// Per-flow delivery: FIFO shares service in proportion to queue
		// composition; the coarse relaxation uses window proportion, which
		// over-approximates the adversary's options (any finer split is a
		// special case the SACK... the relaxation keeps the model sound).
		got1, got2 := split(served, st.W1, st.W2)
		overflow := arrivals + st.Q - served - p.BufferPkts
		if overflow > 0 {
			// The adversary chooses whose packets overflow, but cannot
			// blame a flow for more drops than it sent: when the excess
			// exceeds one flow's whole arrival, the other must lose too.
			// This is the physical constraint behind the paper's §5.4
			// boundedness argument — the hog cannot outsource all of its
			// own overflow.
			for victim := 1; victim <= 3; victim++ {
				if victim == 1 && overflow > st.W1 {
					continue
				}
				if victim == 2 && overflow > st.W2 {
					continue
				}
				next := applyAIMD(st, victim, inject, served, p)
				trace = append(trace, Step{State: st, Victim: victim,
					Injected: inject, Got1: got1, Got2: got2})
				explore(p, next, depth+1, cum1+got1, cum2+got2, trace, res)
				trace = trace[:len(trace)-1]
			}
			continue
		}
		next := applyAIMD(st, 0, inject, served, p)
		trace = append(trace, Step{State: st, Victim: 0,
			Injected: inject, Got1: got1, Got2: got2})
		explore(p, next, depth+1, cum1+got1, cum2+got2, trace, res)
		trace = trace[:len(trace)-1]
	}
}

// applyAIMD advances the windows and queue one RTT step.
func applyAIMD(st State, victim int, inject bool, served int, p Params) State {
	lose1 := victim == 1 || victim == 3 || inject
	lose2 := victim == 2 || victim == 3
	next := State{}
	if lose1 {
		next.W1 = max(st.W1/2, 1)
	} else {
		next.W1 = st.W1 + 1
	}
	if lose2 {
		next.W2 = max(st.W2/2, 1)
	} else {
		next.W2 = st.W2 + 1
	}
	q := st.Q + st.W1 + st.W2 - served
	if q < 0 {
		q = 0
	}
	if q > p.BufferPkts {
		q = p.BufferPkts
	}
	next.Q = q
	return next
}

// split divides served packets in proportion w1:w2, rounding to nearest so
// a one-packet window still gets its packet served — a FIFO queue delivers
// every enqueued packet, and truncating a fractional share to zero would
// fabricate starvation the continuous model does not contain.
func split(served, w1, w2 int) (int, int) {
	total := w1 + w2
	if total == 0 {
		return 0, 0
	}
	got1 := (served*w1 + total/2) / total
	if got1 > served {
		got1 = served
	}
	return got1, served - got1
}

func cumulativeRatio(cum1, cum2 int, p Params) float64 {
	hi, lo := cum2, cum1
	if cum1 > cum2 {
		hi, lo = cum1, cum2
	}
	if lo == 0 {
		// Zero delivery over the whole trace: treat as one packet to keep
		// ratios finite and comparable across depths (the starved flow's
		// AIMD floor of w=1 always delivers eventually).
		lo = 1
	}
	return float64(hi) / float64(lo)
}

// String renders the worst trace for inspection.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explored %d nodes, worst ratio %.2f from %+v\n",
		r.StatesExplored, r.MaxRatio, r.WorstStart)
	for i, s := range r.WorstTrace {
		fmt.Fprintf(&b, "  t=%2d w1=%3d w2=%3d q=%3d victim=%d inject=%v got=(%d,%d)\n",
			i, s.W1, s.W2, s.Q, s.Victim, s.Injected, s.Got1, s.Got2)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
